module groupranking

go 1.22
