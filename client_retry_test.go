package groupranking

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"groupranking/internal/api"
)

// The client retry suite: a Client with a RetryPolicy outwaits
// shedding rejections (honoring the daemon's Retry-After as a floor),
// gives up after MaxAttempts, and aborts a backoff sleep the moment
// the caller's context dies.

// shedServer fakes a daemon that rejects the first reject creations
// with the given code, then admits.
func shedServer(t *testing.T, code string, retryAfterSecs string, reject int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := calls.Add(1)
		if n <= reject {
			if retryAfterSecs != "" {
				w.Header().Set("Retry-After", retryAfterSecs)
			}
			status := http.StatusServiceUnavailable
			if code == api.CodeAdmissionFull {
				status = http.StatusTooManyRequests
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(api.Error{Code: code, Message: "go away"})
			return
		}
		json.NewEncoder(w).Encode(api.SessionInfo{ID: "s-ok"})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetrySucceedsAfterShedding(t *testing.T) {
	srv, calls := shedServer(t, api.CodeAdmissionFull, "", 2)
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	id, err := c.CreateSession(context.Background(), SessionSpec{})
	if err != nil {
		t.Fatalf("create through two shed rejections: %v", err)
	}
	if id != "s-ok" || calls.Load() != 3 {
		t.Fatalf("got id %q after %d calls, want s-ok after 3", id, calls.Load())
	}
}

func TestClientRetryGivesUpAfterMaxAttempts(t *testing.T) {
	srv, calls := shedServer(t, "draining", "", 1<<30)
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	_, err := c.CreateSession(context.Background(), SessionSpec{})
	if !IsDraining(err) {
		t.Fatalf("exhausted retries returned %v, want the final draining rejection", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("client made %d attempts, policy allows exactly 3", calls.Load())
	}
}

// TestClientRetryContextCancellation: the daemon's Retry-After hint is
// far longer than the caller is willing to wait; cancelling the
// context must interrupt the backoff sleep immediately instead of
// serving out the hint.
func TestClientRetryContextCancellation(t *testing.T) {
	srv, calls := shedServer(t, "draining", "30", 1<<30)
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{MaxAttempts: 5})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.CreateSession(ctx, SessionSpec{})
	if err != context.Canceled {
		t.Fatalf("cancelled retry returned %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect; it must interrupt the 30s Retry-After sleep", waited)
	}
	if calls.Load() != 1 {
		t.Fatalf("client made %d attempts before cancellation, want 1", calls.Load())
	}
}

// TestClientRetryHonorsRetryAfterFloor: the daemon's hint is a floor
// under the computed backoff — the retry must not land earlier.
func TestClientRetryHonorsRetryAfterFloor(t *testing.T) {
	srv, _ := shedServer(t, api.CodeAdmissionFull, "1", 1)
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	start := time.Now()
	if _, err := c.CreateSession(context.Background(), SessionSpec{}); err != nil {
		t.Fatal(err)
	}
	// The hint was 1s and jitter keeps at least half of it.
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Fatalf("retry landed after %v; the 1s Retry-After floor allows 500ms at the earliest", waited)
	}
}

// TestClientNoRetryWithoutPolicy: a plain client surfaces the first
// rejection untouched.
func TestClientNoRetryWithoutPolicy(t *testing.T) {
	srv, calls := shedServer(t, api.CodeAdmissionFull, "1", 1<<30)
	c := NewClient(srv.URL, srv.Client())
	_, err := c.CreateSession(context.Background(), SessionSpec{})
	if !IsAdmissionFull(err) || calls.Load() != 1 {
		t.Fatalf("plain client: %v after %d calls, want admission_full after 1", err, calls.Load())
	}
	apiErr := err.(*APIError)
	if apiErr.RetryAfter != time.Second {
		t.Fatalf("Retry-After parsed as %v, want 1s", apiErr.RetryAfter)
	}
}
