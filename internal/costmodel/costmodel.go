// Package costmodel encodes the efficiency analysis of Section VI-B and
// calibrates it with measured primitive timings, so the paper-scale
// figures (n up to 100, 1024–3072-bit groups) can be regenerated on a
// laptop without hours of raw exponentiation. The operation counts follow
// the protocol implementations in this repository exactly; tests
// cross-check the synthetic communication traces against traces recorded
// from real small-n protocol runs.
//
// Conventions: "exp" is one group exponentiation (≈1.5·λ group
// multiplications for a λ-bit exponent); "field mult" is one modular
// multiplication in the SS baseline's prime field. The SS comparison
// constant is the paper's published 279·l+5 multiplication-protocol
// invocations per comparison (Nishide–Ohta), applied to the exact
// Batcher comparator count.
package costmodel

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/sssort"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// Setting mirrors one evaluation configuration of Section VII.
type Setting struct {
	N     int // participants
	M     int // attribute dimension
	D1    int // attribute bits
	D2    int // weight bits
	H     int // ρ bits
	Kappa int // SS statistical parameter

	// LOverride, when positive, replaces the paper's l formula in L().
	// The implementation derives l from t (core.Params.BetaBits), which
	// differs slightly from the paper's ⌈log m⌉ bound; cross-validation
	// against real runs sets this to the implementation's value.
	LOverride int
}

// PaperDefaults returns the Section VII baseline setting
// (n=25, m=10, d1=15, h=15; d2 is unstated in the paper, fixed at 10).
func PaperDefaults() Setting {
	return Setting{N: 25, M: 10, D1: 15, D2: 10, H: 15, Kappa: 40}
}

// L returns the β bit width: LOverride when set, otherwise the paper's
// formula l = h + ⌈log m⌉ + d1 + 2·d2 + 2 (Section III-A), which the
// analytic curves use to match the paper's parameter sensitivity.
func (s Setting) L() int {
	if s.LOverride > 0 {
		return s.LOverride
	}
	return workload.PaperBetaBits(s.M, s.D1, s.D2, s.H)
}

// ---- Operation counts: our framework (per participant) ----

// ParticipantExps counts a participant's group exponentiations across
// the unlinkable comparison phase, exactly as implemented (the
// observability registry's group_exp counter matches this number, and
// the cross-validation test asserts it):
//
//	keys + n-verifier proofs (step 5):  2n          (gen 1 + commit 1 + verify 2(n−1))
//	bitwise encryption (step 6):        2l          (EncryptExp = 2 exps per bit)
//	comparison circuit (step 7):        (n−1)(5l+1) (per peer: suffix enc 2 +
//	                                    per bit: scalar-mul 2, weight add 1
//	                                    except the weight-1 bit, re-rand 2)
//	decrypt-shuffle chain (step 8):     3l(n−1)²    ← dominant, O(l·n²)
//	                                    (per ct: partial-decrypt 1 + blind 2)
//	final decryption (step 9):          l(n−1)
func ParticipantExps(n, l int) int64 {
	nn, ll := int64(n), int64(l)
	return 2*nn + 2*ll + (nn-1)*(5*ll+1) + 3*ll*(nn-1)*(nn-1) + ll*(nn-1)
}

// ParticipantCiphertexts counts ciphertexts a participant sends:
// the step-6 broadcast (l to each of n−1 peers), the step-7 hand-off to
// P₁ ((n−1)·l), and one full chain vector (n(n−1)·l).
func ParticipantCiphertexts(n, l int) int64 {
	nn, ll := int64(n), int64(l)
	return ll*(nn-1) + ll*(nn-1) + nn*(nn-1)*ll
}

// OursRounds is the framework's communication rounds: two for the gain
// phase, six for keys/proofs/bits/collection, n−1 chain hops, one final
// distribution and one submission round — O(n) as claimed.
func OursRounds(n int) int64 { return int64(n) + 9 }

// InitiatorFieldMuls approximates the initiator's integer
// multiplications: n dot-product answers over (m+t+1)-dimensional
// vectors against an s×d matrix (O(n·m), Section VI-B).
func InitiatorFieldMuls(n, m int) int64 {
	return int64(n) * int64(m) * 16 // s·d ≈ 8·2m per participant
}

// ---- Operation counts: SS baseline (per party) ----

// SSComparators is the exact Batcher comparator count for n wires.
func SSComparators(n int) int64 { return int64(sssort.Comparators(n)) }

// SSMultsPerComparison is the paper's Nishide–Ohta constant: 279·l+5
// multiplication-protocol invocations per l-bit comparison, plus one for
// the oblivious swap.
func SSMultsPerComparison(l int) int64 { return 279*int64(l) + 5 + 1 }

// SSMultInvocations is the total multiplication-protocol invocations of
// one baseline sort.
func SSMultInvocations(n, l int) int64 {
	return SSComparators(n) * SSMultsPerComparison(l)
}

// SSFieldMultsPerParty converts invocations to per-party field
// multiplications. Each GRR98 invocation makes every party reshare its
// product share — a degree-d Horner evaluation at each of n points
// (n·d multiplications, exactly what shamir.Split performs) — and
// recombine n received pieces (n more), so n·(d+1) per invocation with
// d = (n−1)/2, the maximal-resistance setting the paper analyses. This
// is what makes the baseline grow on "the cubic order of n"
// (Fig. 2(a)): comparators ~ n·log²n times per-invocation work ~ n².
func SSFieldMultsPerParty(n, l int) int64 {
	d := int64((n - 1) / 2)
	return SSMultInvocations(n, l) * int64(n) * (d + 1)
}

// SSBytesPerParty is the per-party traffic: each invocation reshares to
// n−1 peers, one field element each.
func SSBytesPerParty(n, l, fieldBytes int) int64 {
	return SSMultInvocations(n, l) * int64(n-1) * int64(fieldBytes)
}

// SSRoundsSerial is the paper's round bound: one round per
// multiplication-protocol invocation.
func SSRoundsSerial(n, l int) int64 { return SSMultInvocations(n, l) }

// SSRoundsLayered is the round count of our batched implementation:
// every network layer costs one comparison's rounds (≈ l + 8) because
// all comparators in a layer are vectorised. (Our comparison uses an
// O(l)-round prefix circuit; the paper's Nishide–Ohta primitive is
// constant round, see SSRoundsNishideOhta.)
func SSRoundsLayered(n, l int) int64 {
	return int64(sssort.Depth(n))*int64(l+8) + int64(n)
}

// SSRoundsNishideOhta is the round count of the paper's actual baseline
// configuration: the Nishide–Ohta comparison is constant round
// (three parallel interval tests, ≈13 synchronous rounds), so a layered
// sorting network costs 13 rounds per layer regardless of l. Fig. 3(b)
// uses this model — it is what gives the baseline its small-n advantage
// over the chain-serialised DL framework.
func SSRoundsNishideOhta(n int) int64 {
	return int64(sssort.Depth(n))*13 + int64(n)
}

// ---- Measured primitive timings ----

// Timings carries measured per-operation costs.
type Timings struct {
	// ExpSec maps group name to the wall time of one exponentiation
	// with a random full-size scalar.
	ExpSec map[string]float64
	// FieldMulSecPerBit maps a field bit size to one modular
	// multiplication's wall time.
	FieldMulSec map[int]float64
}

// MeasureGroups times one exponentiation in each group. It records the
// minimum of iters samples: the minimum is the robust estimator of the
// true cost under scheduler interference, which matters because these
// numbers scale entire figures.
func MeasureGroups(groups []group.Group, iters int) (*Timings, error) {
	if iters < 1 {
		return nil, fmt.Errorf("costmodel: need at least one iteration")
	}
	t := &Timings{ExpSec: make(map[string]float64, len(groups)), FieldMulSec: make(map[int]float64)}
	rng := fixedbig.NewDRBG("costmodel-measure")
	for _, g := range groups {
		base := g.Generator()
		k, err := g.RandomScalar(rng)
		if err != nil {
			return nil, err
		}
		base = g.Exp(base, k) // warm up
		best := 0.0
		for i := 0; i < iters; i++ {
			k, err := g.RandomScalar(rng)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			base = g.Exp(base, k)
			el := time.Since(start).Seconds()
			if best == 0 || el < best {
				best = el
			}
		}
		t.ExpSec[g.Name()] = best
	}
	return t, nil
}

// MeasureFieldMul times one modular multiplication at the given field
// size and records it in the Timings.
func (t *Timings) MeasureFieldMul(bits, iters int) error {
	if iters < 1 {
		return fmt.Errorf("costmodel: need at least one iteration")
	}
	rng := fixedbig.NewDRBG(fmt.Sprintf("costmodel-field-%d", bits))
	p, err := rand.Prime(rng, bits)
	if err != nil {
		return err
	}
	a, err := fixedbig.RandInt(rng, p)
	if err != nil {
		return err
	}
	b, err := fixedbig.RandInt(rng, p)
	if err != nil {
		return err
	}
	acc := new(big.Int)
	best := 0.0
	for batch := 0; batch < 5; batch++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			acc.Mul(a, b)
			acc.Mod(acc, p)
			a.Set(acc)
		}
		el := time.Since(start).Seconds() / float64(iters)
		if best == 0 || el < best {
			best = el
		}
	}
	t.FieldMulSec[bits] = best
	return nil
}

// OursParticipantSec estimates one participant's computation time in
// our framework over the named group.
func (t *Timings) OursParticipantSec(g group.Group, s Setting) (float64, error) {
	exp, ok := t.ExpSec[g.Name()]
	if !ok {
		return 0, fmt.Errorf("costmodel: group %s not measured", g.Name())
	}
	return float64(ParticipantExps(s.N, s.L())) * exp, nil
}

// SSParticipantSec estimates one party's computation time in the SS
// baseline. fieldBits selects the measured multiplication size.
func (t *Timings) SSParticipantSec(s Setting, fieldBits int) (float64, error) {
	mul, ok := t.FieldMulSec[fieldBits]
	if !ok {
		return 0, fmt.Errorf("costmodel: field size %d not measured", fieldBits)
	}
	return float64(SSFieldMultsPerParty(s.N, s.L())) * mul, nil
}

// SSFieldBits is the baseline's field size for l-bit comparisons with
// statistical parameter κ.
func (s Setting) SSFieldBits() int { return s.L() + s.Kappa + 8 }

// ---- Synthetic communication traces (Fig. 3(b)) ----

// OursTrace builds the framework's message trace analytically for n+1
// parties (party 0 = initiator): the same rounds, endpoints and byte
// sizes the real implementation produces, usable at paper scale without
// running the cryptography. ctBytes is the ciphertext size
// (2·ElementLen), elemBytes the group element size, scalarBytes the
// group scalar size, fieldBytes the dot-product field element size.
func OursTrace(s Setting, ctBytes, elemBytes, scalarBytes, fieldBytes int) []transport.Event {
	n := s.N
	l := s.L()
	var tr []transport.Event
	// Phase 1: dot-product request (s×d matrix + 2 vectors, s≈8,
	// d = m+t+1 with t = m/2) and reply.
	d := s.M + s.M/2 + 1
	flowBytes := (8*d + 2*d) * fieldBytes
	for j := 1; j <= n; j++ {
		tr = append(tr, transport.Event{Round: 1, From: j, To: 0, Bytes: flowBytes})
	}
	for j := 1; j <= n; j++ {
		tr = append(tr, transport.Event{Round: 2, From: 0, To: j, Bytes: 2 * fieldBytes})
	}
	// Phase 2 (offset 10), participants are parties 1..n. The helper
	// emits each broadcast as n−1 unicasts, matching the fabric.
	broadcast := func(round, bytes int) {
		for from := 1; from <= n; from++ {
			for to := 1; to <= n; to++ {
				if to == from {
					continue
				}
				tr = append(tr, transport.Event{Round: round, From: from, To: to, Bytes: bytes})
			}
		}
	}
	broadcast(11, elemBytes)         // key shares
	broadcast(12, elemBytes)         // proof commitments
	broadcast(13, (n-1)*scalarBytes) // challenge vectors
	broadcast(14, scalarBytes)       // responses
	broadcast(15, l*ctBytes)         // bitwise encryptions
	for j := 2; j <= n; j++ {        // τ sets to P₁
		tr = append(tr, transport.Event{Round: 16, From: j, To: 1, Bytes: (n - 1) * l * ctBytes})
	}
	vectorBytes := n * (n - 1) * l * ctBytes
	for hop := 1; hop < n; hop++ { // chain P₁→…→P_n
		tr = append(tr, transport.Event{Round: 16 + hop, From: hop, To: hop + 1, Bytes: vectorBytes})
	}
	for owner := 1; owner < n; owner++ { // final distribution by P_n
		tr = append(tr, transport.Event{Round: 16 + n, From: n, To: owner, Bytes: (n - 1) * l * ctBytes})
	}
	// Phase 3: submissions (everyone sends; top-k bodies, others 1 byte).
	for j := 1; j <= n; j++ {
		bytes := 1
		if j <= 3 {
			bytes = 8 * (1 + s.M)
		}
		tr = append(tr, transport.Event{Round: 1 << 20, From: j, To: 0, Bytes: bytes})
	}
	return tr
}

// OursMessageCounts predicts each party's sent-message count for a full
// framework run with proofs enabled (party 0 = initiator): the number
// of OursTrace events per sender. The synthetic trace mirrors the real
// implementation's message structure event for event, so these counts
// are exact and the cross-validation test asserts them against the
// fabric's per-party counters.
func OursMessageCounts(s Setting) []int64 {
	counts := make([]int64, s.N+1)
	for _, ev := range OursTrace(s, 1, 1, 1, 1) {
		counts[ev.From]++
	}
	return counts
}

// SSRoundTrace builds one representative all-to-all resharing round of
// the SS baseline: every party sends elemsPerMsg field elements to every
// other party. Total baseline network time ≈ per-round time × the round
// count (SSRoundsLayered or SSRoundsSerial); all rounds are structurally
// identical, so simulating one and scaling is exact under the
// round-barrier model.
func SSRoundTrace(n, fieldBytes, elemsPerMsg int) []transport.Event {
	var tr []transport.Event
	for from := 1; from <= n; from++ {
		for to := 1; to <= n; to++ {
			if to == from {
				continue
			}
			tr = append(tr, transport.Event{Round: 1, From: from, To: to, Bytes: elemsPerMsg * fieldBytes})
		}
	}
	return tr
}

// SSWireFraction is the one calibrated constant of the Fig. 3(b)
// reproduction: the fraction of the baseline's 279·l+5 multiplication
// invocations that actually crosses the wire per comparison. The
// Nishide–Ohta bound counts multiplications for the computation
// analysis; a deployed implementation batches, reuses precomputed
// randomness, and keeps shared×public products local, so its payload
// volume is a fraction of the bound. The byte-faithful value 1.0 makes
// the baseline's traffic dominate everywhere (no SS/DL crossover); 1/3
// reproduces the paper's qualitative Fig. 3(b): the baseline beats the
// DL framework at small n through message parallelism and falls behind
// as its ~n³·log²n volume saturates the network. Both variants are
// reported by cmd/benchtab.
const SSWireFraction = 1.0 / 3

// SSElemsPerRound is the average per-message batch size given a round
// count: the per-peer total traffic (one field element per
// multiplication invocation) spread over the rounds.
func SSElemsPerRound(n, l int, rounds int64) int {
	total := SSMultInvocations(n, l) // field elements to each peer overall
	per := total / rounds
	if per < 1 {
		per = 1
	}
	return int(per)
}
