package costmodel

import (
	"math/big"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/unlinksort"
)

func TestPaperDefaults(t *testing.T) {
	s := PaperDefaults()
	if s.N != 25 || s.M != 10 || s.D1 != 15 || s.H != 15 {
		t.Errorf("defaults %+v disagree with Section VII", s)
	}
	if s.L() != 56 {
		t.Errorf("L = %d, want 56 (= 15 + 4 + 15 + 20 + 2)", s.L())
	}
}

func TestParticipantExpsGrowthIsQuadratic(t *testing.T) {
	// Section VI-B: our per-participant cost is O(l²n + l·n²·λ); with l
	// fixed the exponentiation count grows quadratically in n.
	l := 56
	e20 := ParticipantExps(20, l)
	e40 := ParticipantExps(40, l)
	e80 := ParticipantExps(80, l)
	r1 := float64(e40) / float64(e20)
	r2 := float64(e80) / float64(e40)
	if r1 < 3.2 || r1 > 4.8 || r2 < 3.2 || r2 > 4.8 {
		t.Errorf("doubling n scaled exps by %.2f then %.2f, want ≈4 (quadratic)", r1, r2)
	}
}

func TestSSFieldMultsGrowthIsSuperQuadratic(t *testing.T) {
	// The baseline is O(l·t·n²·log²n) with t ≈ n/2, i.e. between n² and
	// n³ — the paper's Fig. 2(a) calls it "approximately cubic".
	l := 56
	m20 := SSFieldMultsPerParty(20, l)
	m40 := SSFieldMultsPerParty(40, l)
	ratio := float64(m40) / float64(m20)
	if ratio < 8 || ratio > 32 {
		t.Errorf("doubling n scaled SS mults by %.2f, want roughly cubic (8×) or above", ratio)
	}
	// And the SS baseline must be asymptotically worse than ours.
	growOurs := float64(ParticipantExps(80, l)) / float64(ParticipantExps(20, l))
	growSS := float64(SSFieldMultsPerParty(80, l)) / float64(SSFieldMultsPerParty(20, l))
	if growSS <= growOurs {
		t.Errorf("SS growth %.1f not worse than ours %.1f", growSS, growOurs)
	}
}

func TestRoundCounts(t *testing.T) {
	// Ours is O(n); the baseline's serial bound is astronomically larger
	// (one round per multiplication invocation, Section VI-B).
	if OursRounds(25) != 34 {
		t.Errorf("OursRounds(25) = %d", OursRounds(25))
	}
	if SSRoundsSerial(25, 56) <= 100*OursRounds(25) {
		t.Error("serial SS rounds should dwarf ours")
	}
	// The layered implementation is far better than serial but still
	// grows with l and depth.
	if SSRoundsLayered(25, 56) >= SSRoundsSerial(25, 56) {
		t.Error("layered rounds must beat serial rounds")
	}
	if SSRoundsLayered(25, 56) <= OursRounds(25) {
		t.Error("even layered SS uses more rounds than the chain")
	}
	if SSRoundsNishideOhta(25) >= SSRoundsLayered(25, 56) {
		t.Error("constant-round comparisons must beat the O(l)-round circuit")
	}
	if SSRoundsNishideOhta(25) <= OursRounds(25) {
		t.Error("the baseline still uses more rounds than the chain")
	}
}

func TestLinearSensitivityInL(t *testing.T) {
	// Fig. 2(c)/(d): execution time grows linearly when d1 or h grows,
	// because only l grows linearly.
	base := Setting{N: 25, M: 10, D1: 15, D2: 10, H: 15}
	wide := base
	wide.D1 = 30
	lRatio := float64(wide.L()) / float64(base.L())
	expRatio := float64(ParticipantExps(25, wide.L())) / float64(ParticipantExps(25, base.L()))
	if diff := expRatio - lRatio; diff > 0.05 || diff < -0.05 {
		t.Errorf("exp count ratio %.3f should track l ratio %.3f", expRatio, lRatio)
	}
}

func TestMeasureGroupsAndEstimates(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("cm-group"))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MeasureGroups([]group.Group{g}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ExpSec[g.Name()] <= 0 {
		t.Fatal("measured exponentiation time not positive")
	}
	s := Setting{N: 10, M: 4, D1: 6, D2: 4, H: 6, Kappa: 40}
	sec, err := tm.OursParticipantSec(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Error("participant estimate not positive")
	}
	if _, err := tm.OursParticipantSec(group.Secp160r1(), s); err == nil {
		t.Error("unmeasured group accepted")
	}

	if err := tm.MeasureFieldMul(s.SSFieldBits(), 1000); err != nil {
		t.Fatal(err)
	}
	ssSec, err := tm.SSParticipantSec(s, s.SSFieldBits())
	if err != nil {
		t.Fatal(err)
	}
	if ssSec <= 0 {
		t.Error("SS estimate not positive")
	}
	if _, err := tm.SSParticipantSec(s, 9999); err == nil {
		t.Error("unmeasured field size accepted")
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := MeasureGroups(nil, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	tm := &Timings{FieldMulSec: map[int]float64{}}
	if err := tm.MeasureFieldMul(64, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestSyntheticTraceMatchesRealProtocol(t *testing.T) {
	// The synthetic phase-2 trace must reproduce the real unlinksort
	// fabric trace: same total bytes and same round structure. This is
	// what justifies replaying synthetic traces at paper scale.
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("cm-trace-group"))
	if err != nil {
		t.Fatal(err)
	}
	s := Setting{N: 4, M: 4, D1: 4, D2: 3, H: 4, Kappa: 40}
	l := s.L()
	betas := make([]*big.Int, s.N)
	for i := range betas {
		betas[i] = big.NewInt(int64(i * 3))
	}
	_, fab, err := unlinksort.Run(unlinksort.Config{Group: g, L: l}, betas, "cm-trace")
	if err != nil {
		t.Fatal(err)
	}
	real := fab.Trace()
	var realBytes int64
	realRounds := map[int]bool{}
	for _, ev := range real {
		realBytes += int64(ev.Bytes)
		realRounds[ev.Round] = true
	}

	ctBytes := 2 * g.ElementLen()
	scalarBytes := (g.Order().BitLen() + 7) / 8
	synth := OursTrace(s, ctBytes, g.ElementLen(), scalarBytes, 8)
	var synthPhase2 int64
	synthRounds := map[int]bool{}
	for _, ev := range synth {
		if ev.Round >= 11 && ev.Round < 1<<20 {
			synthPhase2 += int64(ev.Bytes)
			synthRounds[ev.Round-10] = true // subview offset
		}
	}
	if synthPhase2 != realBytes {
		t.Errorf("synthetic phase-2 bytes %d, real %d", synthPhase2, realBytes)
	}
	if len(synthRounds) != len(realRounds) {
		t.Errorf("synthetic phase-2 rounds %d, real %d", len(synthRounds), len(realRounds))
	}
}

func TestSyntheticTraceEndpoints(t *testing.T) {
	s := Setting{N: 5, M: 4, D1: 4, D2: 3, H: 4}
	tr := OursTrace(s, 64, 32, 16, 8)
	for _, ev := range tr {
		if ev.From < 0 || ev.From > s.N || ev.To < 0 || ev.To > s.N {
			t.Fatalf("event endpoints out of range: %+v", ev)
		}
		if ev.From == ev.To {
			t.Fatalf("self message: %+v", ev)
		}
	}
}

func TestSSRoundTraceShape(t *testing.T) {
	tr := SSRoundTrace(6, 16, 3)
	if len(tr) != 6*5 {
		t.Fatalf("trace has %d events, want all-to-all 30", len(tr))
	}
	for _, ev := range tr {
		if ev.Bytes != 48 {
			t.Errorf("event bytes %d, want 48", ev.Bytes)
		}
	}
	if SSElemsPerRound(6, 20, SSRoundsLayered(6, 20)) < 1 {
		t.Error("batch size must be at least 1")
	}
}
