package costmodel_test

// Cross-validation of the analytic cost model against instrumented
// protocol runs: the observability registry counts every group
// exponentiation and every message a party actually performs, and this
// test asserts those measurements match the model's closed forms
// exactly — ParticipantExps per participant, OursMessageCounts per
// party — for several (n, m) configurations on both a DL and an EC
// group. Byte totals are checked against the synthetic trace within a
// documented tolerance (below), because the phase-1 dot product draws
// its matrix dimension s uniformly from [5, 10] while the synthetic
// trace fixes s = 8: each participant's request can differ by at most
// |s−8|·d ≤ 3d field elements, everything else is byte-exact.

import (
	"context"
	"fmt"
	"testing"

	"groupranking/internal/core"
	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/workload"
)

// crossValConfigs are chosen so phase 3 is predictable: K = 3 bodies
// with distinct gains (checked below), and T = M/2 to match the
// synthetic trace's dot-product dimension d = m + m/2 + 1.
var crossValConfigs = []struct {
	n, m, d1, d2, h int
}{
	{n: 4, m: 2, d1: 4, d2: 3, h: 4},
	{n: 5, m: 4, d1: 5, d2: 3, h: 5},
	{n: 6, m: 2, d1: 4, d2: 4, h: 4},
}

func TestCrossValidation(t *testing.T) {
	toy, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []group.Group{toy, group.Secp160r1()} {
		for _, cfg := range crossValConfigs {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/n=%d,m=%d", g.Name(), cfg.n, cfg.m), func(t *testing.T) {
				crossValidate(t, g, cfg.n, cfg.m, cfg.d1, cfg.d2, cfg.h, 1)
			})
		}
	}
}

// TestCrossValidationParallelWorkers re-runs one configuration per
// group with a multi-goroutine worker pool: the fixed-base
// precomputation and the parallel kernels must not change a single
// exponentiation or message count, so the exact-match assertions below
// hold unchanged.
func TestCrossValidationParallelWorkers(t *testing.T) {
	toy, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []group.Group{toy, group.Secp160r1()} {
		cfg := crossValConfigs[0]
		t.Run(g.Name(), func(t *testing.T) {
			crossValidate(t, g, cfg.n, cfg.m, cfg.d1, cfg.d2, cfg.h, 4)
		})
	}
}

func crossValidate(t *testing.T, g group.Group, n, m, d1, d2, h, workers int) {
	params := core.Params{
		N: n, M: m, T: m / 2, D1: d1, D2: d2, H: h, K: 3,
		Group: g, Workers: workers,
	}
	in := crossValInputs(t, params, "crossval-"+g.Name())
	reg := obsv.NewRegistry()
	ctx := obsv.WithRegistry(context.Background(), reg)
	result, fab, err := core.RunCtx(ctx, params, in, "crossval-run-"+g.Name(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The byte prediction assumes exactly K submission bodies, which
	// needs distinct ranks; the seeds above produce distinct gains.
	seen := make(map[int]bool)
	for _, r := range result.Ranks {
		if seen[r] {
			t.Fatalf("ranks not distinct (%v): pick another workload seed", result.Ranks)
		}
		seen[r] = true
	}

	l := params.BetaBits()
	setting := costmodel.Setting{N: n, M: m, D1: d1, D2: d2, H: h, LOverride: l}
	if setting.L() != l {
		t.Fatalf("LOverride not honoured: %d != %d", setting.L(), l)
	}

	// Exponentiations: exact, per participant. The initiator touches no
	// group at all.
	wantExps := costmodel.ParticipantExps(n, l)
	for j := 1; j <= n; j++ {
		if got := reg.PartyTotal(j, obsv.OpGroupExp); got != wantExps {
			t.Errorf("participant %d: %d group exps, model says %d", j, got, wantExps)
		}
	}
	if got := reg.PartyTotal(0, obsv.OpGroupExp); got != 0 {
		t.Errorf("initiator performed %d group exps, want 0", got)
	}

	// Messages: exact, per party, from the synthetic trace's event
	// counts — and the registry must agree with the fabric's counters.
	stats := fab.Stats()
	wantMsgs := costmodel.OursMessageCounts(setting)
	for p := 0; p <= n; p++ {
		if stats.MessagesSent[p] != wantMsgs[p] {
			t.Errorf("party %d sent %d messages, model says %d", p, stats.MessagesSent[p], wantMsgs[p])
		}
		if got := reg.PartyTotal(p, obsv.OpMsgSent); got != stats.MessagesSent[p] {
			t.Errorf("party %d: registry counted %d msgs, fabric %d", p, got, stats.MessagesSent[p])
		}
		if got := reg.PartyTotal(p, obsv.OpByteSent); got != stats.BytesSent[p] {
			t.Errorf("party %d: registry counted %d bytes, fabric %d", p, got, stats.BytesSent[p])
		}
	}

	// Bytes: total within the documented phase-1 tolerance of
	// n · 3d · fieldBytes (s ∈ [5,10] vs the synthetic s = 8).
	ctBytes := 2 * g.ElementLen()
	elemBytes := g.ElementLen()
	scalarBytes := (g.Order().BitLen() + 7) / 8
	fieldBytes := (l + 33 + 7) / 8
	var predicted int64
	for _, ev := range costmodel.OursTrace(setting, ctBytes, elemBytes, scalarBytes, fieldBytes) {
		predicted += int64(ev.Bytes)
	}
	measured := stats.TotalBytes()
	d := m + m/2 + 1
	tol := int64(n * 3 * d * fieldBytes)
	if diff := measured - predicted; diff > tol || diff < -tol {
		t.Errorf("total bytes %d, model says %d (tolerance ±%d)", measured, predicted, tol)
	}
}

func crossValInputs(t *testing.T, params core.Params, seed string) core.Inputs {
	t.Helper()
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG(seed)
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}
}
