// Package leakcheck is a dependency-free goroutine leak detector for
// tests: Check snapshots the goroutine count when called and, at test
// cleanup, waits for the count to return to the snapshot. Protocol runs
// spawn one goroutine per party plus timer and fault-delay helpers; a
// leak here means a party blocked forever on a receive that will never
// be served — exactly the failure mode the abort protocol exists to
// prevent.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check records the current goroutine count and registers a cleanup
// that fails the test if, after a grace period, more goroutines are
// still alive than at the snapshot. Call it first thing in the test.
func Check(t TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Goroutines wind down asynchronously after cancel; poll with
		// backoff before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, stacks())
		}
	})
}

// stacks dumps all goroutine stacks, trimming the runtime's own.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var keep []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "runtime.gopark") && strings.Contains(g, "runtime.bgsweep") {
			continue
		}
		keep = append(keep, g)
	}
	return fmt.Sprintf("%d goroutine stacks:\n%s", len(keep), strings.Join(keep, "\n\n"))
}
