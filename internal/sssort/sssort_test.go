package sssort

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"sort"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/ssmpc"
)

// applyPlain runs the comparator network on plaintext values.
func applyPlain(layers [][]Comparator, vals []int) []int {
	out := make([]int, len(vals))
	copy(out, vals)
	for _, layer := range layers {
		for _, c := range layer {
			if out[c.Lo] > out[c.Hi] {
				out[c.Lo], out[c.Hi] = out[c.Hi], out[c.Lo]
			}
		}
	}
	return out
}

func TestNetworkSortsEveryN(t *testing.T) {
	rng := mrand.New(mrand.NewSource(7))
	for n := 1; n <= 40; n++ {
		layers := Network(n)
		for trial := 0; trial < 25; trial++ {
			vals := make([]int, n)
			for i := range vals {
				vals[i] = rng.Intn(50)
			}
			got := applyPlain(layers, vals)
			want := make([]int, n)
			copy(want, vals)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial %d: network failed: got %v want %v (input %v)", n, trial, got, want, vals)
				}
			}
		}
	}
}

func TestNetworkLayersAreDisjoint(t *testing.T) {
	for n := 2; n <= 64; n++ {
		for li, layer := range Network(n) {
			seen := make(map[int]bool)
			for _, c := range layer {
				if c.Lo >= c.Hi {
					t.Fatalf("n=%d layer %d: comparator %v not ordered", n, li, c)
				}
				if c.Hi >= n || c.Lo < 0 {
					t.Fatalf("n=%d layer %d: comparator %v out of range", n, li, c)
				}
				if seen[c.Lo] || seen[c.Hi] {
					t.Fatalf("n=%d layer %d: wire reused", n, li)
				}
				seen[c.Lo], seen[c.Hi] = true, true
			}
		}
	}
}

func TestNetworkComplexity(t *testing.T) {
	// Comparator count must grow as O(n·log²n): check the standard exact
	// counts for powers of two, c(n) = n·log n·(log n − 1)/4 + n − 1.
	for _, tc := range []struct{ n, want int }{
		{2, 1}, {4, 5}, {8, 19}, {16, 63}, {32, 191},
	} {
		if got := Comparators(tc.n); got != tc.want {
			t.Errorf("Comparators(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// Depth is log n·(log n + 1)/2 for powers of two.
	for _, tc := range []struct{ n, want int }{
		{2, 1}, {4, 3}, {8, 6}, {16, 10}, {32, 15},
	} {
		if got := Depth(tc.n); got != tc.want {
			t.Errorf("Depth(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestNetworkTrivialSizes(t *testing.T) {
	if layers := Network(0); len(layers) != 0 {
		t.Error("Network(0) not empty")
	}
	if layers := Network(1); len(layers) != 0 {
		t.Error("Network(1) not empty")
	}
}

func testConfig(t *testing.T, n, degree int) ssmpc.Config {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("sssort-prime"), 128)
	if err != nil {
		t.Fatal(err)
	}
	return ssmpc.Config{N: n, Degree: degree, P: p, Kappa: 40}
}

// runSecureSort shares vals from party 0, sorts them with the given bit
// width, and returns the opened result as seen by party 0.
func runSecureSort(t *testing.T, cfg ssmpc.Config, vals []int64, l int, seed string) []*big.Int {
	t.Helper()
	results, _, err := ssmpc.RunProgram(cfg, seed, nil, func(e *ssmpc.Engine) ([]*big.Int, error) {
		shares := make([]ssmpc.Share, len(vals))
		for i, v := range vals {
			var s *big.Int
			if e.Party() == 0 {
				s = big.NewInt(v)
			}
			var err error
			if shares[i], err = e.Share(0, s); err != nil {
				return nil, err
			}
		}
		return SortOpen(e, shares, l)
	})
	if err != nil {
		t.Fatal(err)
	}
	// All parties must see the same opened sequence.
	for _, r := range results[1:] {
		for i := range r.Value {
			if r.Value[i].Cmp(results[0].Value[i]) != 0 {
				t.Fatal("parties disagree on the sorted output")
			}
		}
	}
	return results[0].Value
}

func TestSecureSortSmall(t *testing.T) {
	cfg := testConfig(t, 3, 1)
	cases := []struct {
		name string
		vals []int64
	}{
		{"reverse", []int64{9, 7, 5, 3}},
		{"sorted", []int64{1, 2, 3, 4}},
		{"duplicates", []int64{5, 5, 1, 5}},
		{"single", []int64{8}},
		{"pair", []int64{4, 2}},
		{"odd length", []int64{6, 1, 9, 2, 7}},
		{"zeros", []int64{0, 0, 0}},
		{"max values", []int64{15, 14, 15}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runSecureSort(t, cfg, tc.vals, 4, "secure-"+tc.name)
			want := make([]int64, len(tc.vals))
			copy(want, tc.vals)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i].Int64() != want[i] {
					t.Fatalf("position %d: got %s, want %d (input %v)", i, got[i], want[i], tc.vals)
				}
			}
		})
	}
}

func TestSecureSortWiderValuesMoreParties(t *testing.T) {
	if testing.Short() {
		t.Skip("secure sort with 5 parties is slow in -short mode")
	}
	cfg := testConfig(t, 5, 2)
	vals := []int64{1023, 0, 512, 511, 700, 700, 3}
	got := runSecureSort(t, cfg, vals, 10, "wide")
	want := make([]int64, len(vals))
	copy(want, vals)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i].Int64() != want[i] {
			t.Fatalf("position %d: got %s, want %d", i, got[i], want[i])
		}
	}
}

func TestSortRejectsBadWidth(t *testing.T) {
	cfg := testConfig(t, 3, 1)
	_, _, err := ssmpc.RunProgram(cfg, "bad-width", nil, func(e *ssmpc.Engine) (int, error) {
		sh, err := e.Share(0, big.NewInt(1))
		if err != nil && e.Party() != 0 {
			return 0, err
		}
		if _, err := Sort(e, []ssmpc.Share{sh}, 0); err != nil {
			return 0, err
		}
		return 0, nil
	})
	if err == nil {
		t.Error("zero bit width accepted")
	}
}

func TestRankDescending(t *testing.T) {
	asc := []*big.Int{big.NewInt(1), big.NewInt(3), big.NewInt(3), big.NewInt(8)}
	cases := []struct {
		mine int64
		want int
	}{
		{8, 1}, {3, 2}, {1, 4},
	}
	for _, tc := range cases {
		if got := RankDescending(asc, big.NewInt(tc.mine)); got != tc.want {
			t.Errorf("RankDescending(%d) = %d, want %d", tc.mine, got, tc.want)
		}
	}
}
