// Package sssort implements the paper's secret-sharing baseline sorting
// protocol in the style of Jónsson, Kreitz and Uddin (Section II): a
// Batcher odd-even merge-sort network — "a variant of the merge sort
// algorithm" with O(n·log²n) comparators — whose compare-and-swap gates
// run the SS comparison primitive and the oblivious swap
// max = c·(a−b)+b over the ssmpc engine.
//
// Comparators are grouped into parallel layers; all comparisons in a
// layer are batched, so a layer costs the rounds of a single comparison.
package sssort

import (
	"fmt"
	"math/big"

	"groupranking/internal/ssmpc"
)

// Comparator orders the pair of wires (Lo, Hi): after it fires, wire Lo
// holds the minimum and wire Hi the maximum.
type Comparator struct {
	Lo, Hi int
}

// Network returns the comparator layers of Batcher's odd-even merge sort
// for n wires. Comparators within a layer touch disjoint wires and may
// fire concurrently. The construction handles arbitrary n (not just
// powers of two).
func Network(n int) [][]Comparator {
	var layers [][]Comparator
	for p := 1; p < n; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			var layer []Comparator
			for j := k % p; j+k < n; j += 2 * k {
				for i := 0; i < k && i+j+k < n; i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						layer = append(layer, Comparator{Lo: i + j, Hi: i + j + k})
					}
				}
			}
			if len(layer) > 0 {
				layers = append(layers, layer)
			}
		}
	}
	return layers
}

// Comparators returns the total comparator count of the network for n
// wires — the quantity the Section VI-B cost model multiplies by the
// per-comparison cost.
func Comparators(n int) int {
	total := 0
	for _, layer := range Network(n) {
		total += len(layer)
	}
	return total
}

// Depth returns the number of parallel layers for n wires (O(log²n)).
func Depth(n int) int { return len(Network(n)) }

// Sort obliviously sorts shared l-bit values in ascending order. Every
// party calls it in lockstep with its own shares. The returned shares
// are a sorted permutation of the inputs; nothing is opened.
func Sort(e *ssmpc.Engine, values []ssmpc.Share, l int) ([]ssmpc.Share, error) {
	if l <= 0 {
		return nil, fmt.Errorf("sssort: bit width must be positive, got %d", l)
	}
	out := make([]ssmpc.Share, len(values))
	copy(out, values)
	for _, layer := range Network(len(values)) {
		k := len(layer)
		as := make([]ssmpc.Share, k)
		bs := make([]ssmpc.Share, k)
		for i, c := range layer {
			as[i] = out[c.Lo]
			bs[i] = out[c.Hi]
		}
		// c = [a ≥ b] for each comparator.
		cs, err := e.GTEBatch(as, bs, l)
		if err != nil {
			return nil, fmt.Errorf("sssort: layer comparison: %w", err)
		}
		// max = c·(a−b) + b, min = a + b − max; one batched multiplication.
		diffs := make([]ssmpc.Share, k)
		for i := range layer {
			diffs[i] = e.Sub(as[i], bs[i])
		}
		prods, err := e.MulBatch(cs, diffs)
		if err != nil {
			return nil, fmt.Errorf("sssort: oblivious swap: %w", err)
		}
		for i, c := range layer {
			max := e.Add(prods[i], bs[i])
			min := e.Sub(e.Add(as[i], bs[i]), max)
			out[c.Lo] = min
			out[c.Hi] = max
		}
	}
	return out, nil
}

// SortOpen sorts the shared values and opens the sorted sequence to all
// parties. This is how the baseline group-ranking framework uses the
// sorting protocol: the sorted multiset of masked β values becomes
// public and each participant locates her own β to learn her rank
// (Section VII feeds the β values to the baseline sorter the same way).
func SortOpen(e *ssmpc.Engine, values []ssmpc.Share, l int) ([]*big.Int, error) {
	sorted, err := Sort(e, values, l)
	if err != nil {
		return nil, err
	}
	opened, err := e.OpenBatch(sorted)
	if err != nil {
		return nil, fmt.Errorf("sssort: opening sorted values: %w", err)
	}
	return opened, nil
}

// RankDescending returns the 1-based rank of mine within the ascending
// sorted slice when ranking is by non-increasing value (rank 1 is the
// largest), i.e. 1 + |{v : v > mine}|. Equal values share a rank, the
// paper's tie rule.
func RankDescending(sortedAscending []*big.Int, mine *big.Int) int {
	greater := 0
	for _, v := range sortedAscending {
		if v.Cmp(mine) > 0 {
			greater++
		}
	}
	return greater + 1
}
