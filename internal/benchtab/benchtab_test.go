package benchtab

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// newRunner measures real primitive timings once per test binary.
func newRunner(t *testing.T) (*Runner, *strings.Builder) {
	t.Helper()
	var sb strings.Builder
	r, err := New(&sb)
	if err != nil {
		t.Fatal(err)
	}
	return r, &sb
}

// parseTSV returns the numeric rows of an emitted artifact.
func parseTSV(t *testing.T, out string) [][]float64 {
	t.Helper()
	var rows [][]float64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		row := make([]float64, 0, len(fields))
		numeric := true
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				numeric = false
				break
			}
			row = append(row, v)
		}
		if numeric && len(row) > 1 {
			rows = append(rows, row)
		}
	}
	return rows
}

func TestAllNamesEmit(t *testing.T) {
	names := All()
	if len(names) != 7 {
		t.Fatalf("expected 7 artifacts, got %v", names)
	}
}

func TestUnknownArtifactRejected(t *testing.T) {
	r, _ := newRunner(t)
	if err := r.Emit("fig9z", false); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestFig2aShape(t *testing.T) {
	r, sb := newRunner(t)
	if err := r.Emit("fig2a", false); err != nil {
		t.Fatal(err)
	}
	rows := parseTSV(t, sb.String())
	if len(rows) < 5 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// Columns: n, ecc, dl, ss. The paper's shape: every curve increases
	// with n; ECC below DL everywhere; SS slowest at large n.
	for i := 1; i < len(rows); i++ {
		for col := 1; col <= 3; col++ {
			if rows[i][col] <= rows[i-1][col] {
				t.Errorf("column %d not increasing at row %d", col, i)
			}
		}
	}
	for _, row := range rows {
		if row[1] >= row[2] {
			t.Errorf("n=%v: ECC (%v) not below DL (%v)", row[0], row[1], row[2])
		}
	}
	last := rows[len(rows)-1]
	if last[3] <= last[2] {
		t.Errorf("at n=%v the SS baseline (%v) should be slowest (DL %v)", last[0], last[3], last[2])
	}
	// SS grows faster than quadratic, ours roughly quadratic: compare
	// growth over the sweep.
	first := rows[1] // skip n=5 where SS is still cheap
	growSS := last[3] / first[3]
	growECC := last[1] / first[1]
	if growSS <= growECC {
		t.Errorf("SS growth %.1f must exceed ECC growth %.1f", growSS, growECC)
	}
}

func TestFig2cLinear(t *testing.T) {
	r, sb := newRunner(t)
	if err := r.Emit("fig2c", false); err != nil {
		t.Fatal(err)
	}
	rows := parseTSV(t, sb.String())
	if len(rows) < 4 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// Linearity of the ECC column: second differences near zero.
	for i := 2; i < len(rows); i++ {
		d1 := rows[i-1][1] - rows[i-2][1]
		d2 := rows[i][1] - rows[i-1][1]
		if d1 <= 0 || d2 <= 0 {
			t.Fatalf("ECC column not increasing")
		}
		ratio := d2 / d1
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("ECC growth not linear at row %d: step ratio %.3f", i, ratio)
		}
	}
}

func TestFig3aOrdering(t *testing.T) {
	r, sb := newRunner(t)
	if err := r.Emit("fig3a", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	rows := [][]string{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "security") {
			continue
		}
		rows = append(rows, strings.Split(line, "\t"))
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 security levels, got %d", len(rows))
	}
	var prevDL float64
	for _, row := range rows {
		ecc, err1 := strconv.ParseFloat(row[2], 64)
		dl, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("malformed row %v", row)
		}
		if ecc >= dl {
			t.Errorf("level %s: ECC %.1f not below DL %.1f", row[0], ecc, dl)
		}
		if dl <= prevDL {
			t.Errorf("DL column must grow with the security level")
		}
		prevDL = dl
	}
}

func TestComplexityTable(t *testing.T) {
	r, sb := newRunner(t)
	if err := r.Emit("table-complexity", false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ours-ecc", "ours-dl", "ss-sort", "n-2 = 23", "(n-1)/2 = 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig2bAnd2dEmit(t *testing.T) {
	r, sb := newRunner(t)
	if err := r.Emit("fig2b", false); err != nil {
		t.Fatal(err)
	}
	if err := r.Emit("fig2d", false); err != nil {
		t.Fatal(err)
	}
	rows := parseTSV(t, sb.String())
	if len(rows) < 10 {
		t.Fatalf("expected both sweeps in the output, got %d rows", len(rows))
	}
	for _, row := range rows {
		for _, v := range row[1:] {
			if v <= 0 {
				t.Fatalf("non-positive estimate in %v", row)
			}
		}
	}
}

func TestFig3bSmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("network replay is slow in -short mode")
	}
	r, sb := newRunner(t)
	if err := r.fig3b([]int{6, 12}); err != nil {
		t.Fatal(err)
	}
	rows := parseTSV(t, sb.String())
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, row := range rows {
		// ECC must be the cheapest networked framework at every n, and
		// the byte-faithful SS variant must dominate the calibrated one.
		if !(row[1] < row[2]) {
			t.Errorf("n=%v: ECC %v not below DL %v", row[0], row[1], row[2])
		}
		if !(row[3] < row[4]) {
			t.Errorf("n=%v: calibrated SS %v not below byte-faithful %v", row[0], row[3], row[4])
		}
	}
	// Every column grows with n.
	for col := 1; col <= 4; col++ {
		if rows[1][col] <= rows[0][col] {
			t.Errorf("column %d not increasing", col)
		}
	}
}

func TestRealCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("real protocol runs are slow in -short mode")
	}
	r, sb := newRunner(t)
	if err := r.realCrossCheck(); err != nil {
		t.Fatal(err)
	}
	rows := parseTSV(t, sb.String())
	if len(rows) != 3 {
		t.Fatalf("expected 3 cross-check rows, got %d", len(rows))
	}
	for _, row := range rows {
		if row[1] <= 0 || row[2] <= 0 {
			t.Fatalf("non-positive time in %v", row)
		}
	}
}
