package benchtab

// The machine-readable bench snapshot (BENCH_groupranking.json): a
// fixed set of small-n instrumented runs of the REAL protocol stack,
// each recording wall time next to the observability registry's
// measured exponentiation/message/byte counts and the cost model's
// predictions. Committing the snapshot tracks the bench trajectory
// across commits as a diffable artifact instead of results.txt prose;
// TestBenchSnapshot regenerates it and asserts measured == model.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/workload"
)

// SnapshotSchema identifies the JSON layout; bump on breaking changes
// so downstream diff tooling can refuse to compare across layouts.
const SnapshotSchema = 1

// SnapshotEntry is one instrumented configuration of the snapshot.
type SnapshotEntry struct {
	// Name is the stable configuration key diffs are joined on.
	Name   string `json:"name"`
	Group  string `json:"group"`
	Sorter string `json:"sorter"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// L is the derived comparison bit width l = BetaBits.
	L int `json:"l"`
	// NsPerOp is the wall time of one full framework run, in the
	// go-bench unit so external tooling can plot it alongside
	// `go test -bench` output.
	NsPerOp int64 `json:"ns_per_op"`
	// ExpsPerParticipant is the registry-measured group-exponentiation
	// count of participant 1 (all participants perform the same count —
	// the crossval suite asserts this); ExpsModel is the cost model's
	// closed form, 0 for the secret-sharing sorter which uses no group.
	ExpsPerParticipant int64 `json:"exps_per_participant"`
	ExpsModel          int64 `json:"exps_model"`
	// BytesOnWire / MsgsOnWire / Rounds total the fabric's counters
	// across all parties.
	BytesOnWire int64 `json:"bytes_on_wire"`
	MsgsOnWire  int64 `json:"msgs_on_wire"`
	Rounds      int   `json:"rounds"`
	// BytesPerOp is the average wire cost of one transported message
	// (BytesOnWire / MsgsOnWire, rounded down). The message count is
	// pinned by the drift gate, so this column isolates per-message
	// encoding efficiency — it is what moves when the wire format
	// changes and nothing else does.
	BytesPerOp int64 `json:"bytes_per_op"`
}

// SpeedupEntry records the parallel-kernel comparison: the same
// framework configuration run serially (Workers=1) and with the full
// worker pool (Workers=0 → NumCPU goroutines per party). Randomness is
// drawn serially in both, so the rankings must agree bit for bit —
// RanksEqual is the determinism witness, and the test suite fails on
// false. Speedup is only meaningful when NumCPU > 1; on a single-core
// host the two paths time alike and the field documents that honestly.
type SpeedupEntry struct {
	Name       string  `json:"name"`
	Group      string  `json:"group"`
	N          int     `json:"n"`
	L          int     `json:"l"`
	NumCPU     int     `json:"num_cpu"`
	NsSerial   int64   `json:"ns_serial"`
	NsParallel int64   `json:"ns_parallel"`
	Speedup    float64 `json:"speedup"`
	RanksEqual bool    `json:"ranks_equal"`
}

// Snapshot is the full BENCH_*.json document.
type Snapshot struct {
	Schema  int             `json:"schema"`
	GoOS    string          `json:"goos"`
	GoArch  string          `json:"goarch"`
	Entries []SnapshotEntry `json:"entries"`
	Speedup *SpeedupEntry   `json:"speedup,omitempty"`
}

// snapshotConfigs mirrors the laptop-scale benchmark grid of
// bench_test.go (M=4 T=2 D1=6 D2=4 H=6 K=2): small enough to finish in
// seconds, large enough that the exp/byte counts exercise every phase.
var snapshotConfigs = []struct {
	name      string
	groupName string
	sorter    core.Sorter
	n         int
}{
	{name: "ours-ecc-n4", groupName: "secp160r1", sorter: core.SorterUnlinkable, n: 4},
	{name: "ours-ecc-n6", groupName: "secp160r1", sorter: core.SorterUnlinkable, n: 6},
	{name: "ours-dl-n4", groupName: "toy-dl-256", sorter: core.SorterUnlinkable, n: 4},
	{name: "ss-ecc-n5", groupName: "secp160r1", sorter: core.SorterSecretSharing, n: 5},
}

// CollectSnapshot runs every snapshot configuration and returns the
// document. It needs no primitive-timing calibration, so `benchtab
// -json` skips the expensive startup measurement New performs.
func CollectSnapshot() (*Snapshot, error) {
	snap := &Snapshot{Schema: SnapshotSchema, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, cfg := range snapshotConfigs {
		g, err := group.ByName(cfg.groupName)
		if err != nil {
			return nil, err
		}
		e, err := runSnapshotConfig(cfg.name, g, cfg.sorter, cfg.n)
		if err != nil {
			return nil, fmt.Errorf("benchtab: snapshot %s: %w", cfg.name, err)
		}
		snap.Entries = append(snap.Entries, e)
	}
	sp, err := runSpeedup()
	if err != nil {
		return nil, fmt.Errorf("benchtab: speedup: %w", err)
	}
	snap.Speedup = sp
	return snap, nil
}

// runSpeedup times the acceptance configuration (n=8, l=32, secp160r1)
// serially and with the full worker pool, and checks the two rankings
// agree.
func runSpeedup() (*SpeedupEntry, error) {
	params := core.Params{
		// h + ⌈log₂ m⌉ + 2·d1 + d2 + 3 = 6 + 2 + 16 + 5 + 3 = 32 bits.
		N: 8, M: 4, T: 2, D1: 8, D2: 5, H: 6, K: 2,
		Group: group.Secp160r1(), Sorter: core.SorterUnlinkable,
	}
	in, err := snapshotInputs(params, "bench-speedup")
	if err != nil {
		return nil, err
	}
	run := func(workers int) ([]int, time.Duration, error) {
		p := params
		p.Workers = workers
		start := time.Now()
		res, _, err := core.RunCtx(context.Background(), p, in, "bench-speedup-run", nil)
		if err != nil {
			return nil, 0, err
		}
		return res.Ranks, time.Since(start), nil
	}
	serialRanks, serialWall, err := run(1)
	if err != nil {
		return nil, err
	}
	parRanks, parWall, err := run(0)
	if err != nil {
		return nil, err
	}
	equal := len(serialRanks) == len(parRanks)
	for i := 0; equal && i < len(serialRanks); i++ {
		equal = serialRanks[i] == parRanks[i]
	}
	return &SpeedupEntry{
		Name:       "speedup-ecc-n8-l32",
		Group:      params.Group.Name(),
		N:          params.N,
		L:          params.BetaBits(),
		NumCPU:     runtime.NumCPU(),
		NsSerial:   serialWall.Nanoseconds(),
		NsParallel: parWall.Nanoseconds(),
		Speedup:    float64(serialWall) / float64(parWall),
		RanksEqual: equal,
	}, nil
}

// WriteSnapshot collects the snapshot and writes it as indented JSON.
func WriteSnapshot(w io.Writer) error {
	snap, err := CollectSnapshot()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func runSnapshotConfig(name string, g group.Group, sorter core.Sorter, n int) (SnapshotEntry, error) {
	params := core.Params{
		N: n, M: 4, T: 2, D1: 6, D2: 4, H: 6, K: 2,
		Group: g, Sorter: sorter,
	}
	in, err := snapshotInputs(params, "bench-snapshot-"+name)
	if err != nil {
		return SnapshotEntry{}, err
	}
	reg := obsv.NewRegistry()
	ctx := obsv.WithRegistry(context.Background(), reg)
	start := time.Now()
	_, fab, err := core.RunCtx(ctx, params, in, "bench-snapshot-run-"+name, nil)
	wall := time.Since(start)
	if err != nil {
		return SnapshotEntry{}, err
	}
	stats := fab.Stats()
	var msgs int64
	for _, v := range stats.MessagesSent {
		msgs += v
	}
	l := params.BetaBits()
	var model int64
	if sorter == core.SorterUnlinkable {
		model = costmodel.ParticipantExps(n, l)
	}
	return SnapshotEntry{
		Name:               name,
		Group:              g.Name(),
		Sorter:             sorterName(sorter),
		N:                  n,
		M:                  params.M,
		L:                  l,
		NsPerOp:            wall.Nanoseconds(),
		ExpsPerParticipant: reg.PartyTotal(1, obsv.OpGroupExp),
		ExpsModel:          model,
		BytesOnWire:        stats.TotalBytes(),
		MsgsOnWire:         msgs,
		Rounds:             stats.DistinctRounds,
		BytesPerOp:         stats.TotalBytes() / msgs,
	}, nil
}

func sorterName(s core.Sorter) string {
	if s == core.SorterSecretSharing {
		return "secret-sharing"
	}
	return "unlinkable"
}

func snapshotInputs(params core.Params, seed string) (core.Inputs, error) {
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		return core.Inputs{}, err
	}
	rng := fixedbig.NewDRBG(seed)
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		return core.Inputs{}, err
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		return core.Inputs{}, err
	}
	return core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}, nil
}
