// Package benchtab regenerates the paper's evaluation artifacts: the
// four parameter-sensitivity curves of Fig. 2, the security-level
// comparison of Fig. 3(a), the networked execution times of Fig. 3(b),
// and the Section VI-B complexity table. Computation figures come from
// the calibrated cost model (operation counts × primitive timings
// measured at startup); the networked figure replays synthetic traces
// over the netsim discrete-event simulator. The -real cross-check runs
// the actual protocol stack at small n.
package benchtab

import (
	"fmt"
	"io"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/costmodel"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/netsim"
	"groupranking/internal/workload"
)

// Runner holds the measured timings and the output writer.
type Runner struct {
	w  io.Writer
	tm *costmodel.Timings

	// Workers bounds the goroutines the real cross-check runs fan out
	// on per party (0 = NumCPU, 1 = serial); the model columns are
	// unaffected.
	Workers int

	ecc160, ecc224, ecc256 group.Group
	dl1024, dl2048, dl3072 group.Group
}

// New measures primitive timings on this machine and returns a runner.
func New(w io.Writer) (*Runner, error) {
	r := &Runner{
		w:      w,
		ecc160: group.Secp160r1(),
		ecc224: group.Secp224r1(),
		ecc256: group.Secp256r1(),
		dl1024: group.MODP1024(),
		dl2048: group.MODP2048(),
		dl3072: group.MODP3072(),
	}
	groups := []group.Group{r.ecc160, r.ecc224, r.ecc256, r.dl1024, r.dl2048, r.dl3072}
	// 25 samples per group: the min-of-N estimator only needs ONE
	// uninterrupted sample, but when the whole test suite runs in
	// parallel on a small machine, 7 samples were occasionally all
	// polluted by the scheduler and flipped the ECC-vs-DL ordering.
	tm, err := costmodel.MeasureGroups(groups, 25)
	if err != nil {
		return nil, err
	}
	r.tm = tm
	return r, nil
}

// All lists the available artifact names in paper order.
func All() []string {
	return []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "table-complexity"}
}

// Emit writes one artifact as TSV with a header comment. When real is
// true, a small-n cross-check running the actual protocols is appended
// where applicable.
func (r *Runner) Emit(name string, real bool) error {
	switch name {
	case "fig2a":
		return r.fig2Sweep("Fig. 2(a): participant computation time vs number of participants n",
			"n", []int{5, 10, 15, 20, 25, 30, 35, 40, 45},
			func(v int) costmodel.Setting { s := costmodel.PaperDefaults(); s.N = v; return s }, real)
	case "fig2b":
		return r.fig2Sweep("Fig. 2(b): participant computation time vs attribute dimension m",
			"m", []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50},
			func(v int) costmodel.Setting { s := costmodel.PaperDefaults(); s.M = v; return s }, real)
	case "fig2c":
		return r.fig2Sweep("Fig. 2(c): participant computation time vs attribute bit length d1",
			"d1", []int{5, 10, 15, 20, 25, 30, 35, 40},
			func(v int) costmodel.Setting { s := costmodel.PaperDefaults(); s.D1 = v; return s }, real)
	case "fig2d":
		return r.fig2Sweep("Fig. 2(d): participant computation time vs mask bit length h",
			"h", []int{5, 10, 15, 20, 25, 30, 35, 40},
			func(v int) costmodel.Setting { s := costmodel.PaperDefaults(); s.H = v; return s }, real)
	case "fig3a":
		return r.fig3a()
	case "fig3b":
		return r.fig3b([]int{10, 20, 30, 40, 50, 60, 70, 79})
	case "table-complexity":
		return r.complexityTable()
	default:
		return fmt.Errorf("benchtab: unknown artifact %q (available: %v)", name, All())
	}
}

// fig2Sweep emits one Fig. 2 curve: the swept parameter against the
// per-participant computation time of the ECC, DL and SS frameworks.
func (r *Runner) fig2Sweep(title, param string, values []int, at func(int) costmodel.Setting, real bool) error {
	fmt.Fprintf(r.w, "# %s\n", title)
	fmt.Fprintf(r.w, "# fixed: %+v (except %s)\n", costmodel.PaperDefaults(), param)
	fmt.Fprintf(r.w, "%s\tecc_sec\tdl_sec\tss_sec\n", param)
	for _, v := range values {
		s := at(v)
		ecc, err := r.tm.OursParticipantSec(r.ecc160, s)
		if err != nil {
			return err
		}
		dl, err := r.tm.OursParticipantSec(r.dl1024, s)
		if err != nil {
			return err
		}
		ss, err := r.ssSec(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%d\t%.4f\t%.4f\t%.4f\n", v, ecc, dl, ss)
	}
	if real {
		return r.realCrossCheck()
	}
	return nil
}

// ssSec estimates the SS baseline per-party computation, measuring the
// field multiplication lazily for the setting's field size.
func (r *Runner) ssSec(s costmodel.Setting) (float64, error) {
	bits := s.SSFieldBits()
	if _, ok := r.tm.FieldMulSec[bits]; !ok {
		if err := r.tm.MeasureFieldMul(bits, 20000); err != nil {
			return 0, err
		}
	}
	return r.tm.SSParticipantSec(s, bits)
}

// fig3a emits participant time at the three NIST-equivalent security
// levels with n=70 (Section VII, Fig. 3(a)).
func (r *Runner) fig3a() error {
	fmt.Fprintln(r.w, "# Fig. 3(a): participant computation time vs security level, n=70")
	fmt.Fprintln(r.w, "security_bits\tecc_group\tecc_sec\tdl_group\tdl_sec")
	s := costmodel.PaperDefaults()
	s.N = 70
	for _, pair := range []struct {
		bits   int
		ec, dl group.Group
	}{
		{80, r.ecc160, r.dl1024},
		{112, r.ecc224, r.dl2048},
		{128, r.ecc256, r.dl3072},
	} {
		ecc, err := r.tm.OursParticipantSec(pair.ec, s)
		if err != nil {
			return err
		}
		dl, err := r.tm.OursParticipantSec(pair.dl, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%d\t%s\t%.4f\t%s\t%.4f\n", pair.bits, pair.ec.Name(), ecc, pair.dl.Name(), dl)
	}
	return nil
}

// fig3b replays synthetic traces over the simulated network: the
// paper's random 80-node / 320-edge graph with 2 Mbps, 50 ms duplex
// links, TCP replaced by flow-level store-and-forward queueing.
func (r *Runner) fig3b(ns []int) error {
	fmt.Fprintln(r.w, "# Fig. 3(b): end-to-end execution time on the simulated network (80 nodes, 320 edges)")
	fmt.Fprintln(r.w, "# ss_sec uses the calibrated wire volume (costmodel.SSWireFraction); ss_bytefaithful_sec charges every Nishide-Ohta multiplication to the wire")
	fmt.Fprintln(r.w, "n\tecc_sec\tdl_sec\tss_sec\tss_bytefaithful_sec")
	rng := fixedbig.NewDRBG("fig3b-topology")
	topo, err := netsim.NewRandomTopology(80, 320, rng)
	if err != nil {
		return err
	}
	for _, n := range ns {
		s := costmodel.PaperDefaults()
		s.N = n
		ecc, err := r.oursNetworked(topo, s, r.ecc160)
		if err != nil {
			return err
		}
		dl, err := r.oursNetworked(topo, s, r.dl1024)
		if err != nil {
			return err
		}
		ss, err := r.ssNetworked(topo, s, costmodel.SSWireFraction)
		if err != nil {
			return err
		}
		ssFull, err := r.ssNetworked(topo, s, 1.0)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\n", n, ecc, dl, ss, ssFull)
	}
	return nil
}

// oursNetworked folds per-round computation into the trace replay.
func (r *Runner) oursNetworked(topo *netsim.Topology, s costmodel.Setting, g group.Group) (float64, error) {
	assign, err := netsim.RandomAssignment(topo, s.N+1, fixedbig.NewDRBG(fmt.Sprintf("assign-%d", s.N)))
	if err != nil {
		return 0, err
	}
	rep, err := netsim.NewReplay(topo, netsim.PaperLink(), assign)
	if err != nil {
		return 0, err
	}
	ctBytes := 2 * g.ElementLen()
	scalarBytes := (g.Order().BitLen() + 7) / 8
	trace := costmodel.OursTrace(s, ctBytes, g.ElementLen(), scalarBytes, 16)
	sec, err := r.tm.OursParticipantSec(g, s)
	if err != nil {
		return 0, err
	}
	perRound := make([]float64, s.N+1)
	rounds := float64(costmodel.OursRounds(s.N))
	for p := 1; p <= s.N; p++ {
		perRound[p] = sec / rounds
	}
	return rep.Run(trace, perRound)
}

// ssNetworked simulates one representative resharing round and scales
// by the layered round count, adding per-round computation. wireFraction
// scales the per-message payload (see costmodel.SSWireFraction).
func (r *Runner) ssNetworked(topo *netsim.Topology, s costmodel.Setting, wireFraction float64) (float64, error) {
	n, l := s.N, s.L()
	assign, err := netsim.RandomAssignment(topo, n+1, fixedbig.NewDRBG(fmt.Sprintf("assign-%d", n)))
	if err != nil {
		return 0, err
	}
	rep, err := netsim.NewReplay(topo, netsim.PaperLink(), assign)
	if err != nil {
		return 0, err
	}
	fieldBytes := (s.SSFieldBits() + 7) / 8
	roundCount := costmodel.SSRoundsNishideOhta(n)
	elems := int(float64(costmodel.SSElemsPerRound(n, l, roundCount)) * wireFraction)
	if elems < 1 {
		elems = 1
	}
	trace := costmodel.SSRoundTrace(n, fieldBytes, elems)
	perRoundNet, err := rep.Run(trace, nil)
	if err != nil {
		return 0, err
	}
	rounds := float64(roundCount)
	computeSec, err := r.ssSec(s)
	if err != nil {
		return 0, err
	}
	return rounds*perRoundNet + computeSec, nil
}

// complexityTable prints the Section VI-B comparison at the paper's
// default setting.
func (r *Runner) complexityTable() error {
	s := costmodel.PaperDefaults()
	l := s.L()
	fmt.Fprintln(r.w, "# Section VI-B complexity comparison at n=25, m=10, d1=15, d2=10, h=15 (l=56)")
	fmt.Fprintln(r.w, "framework\tper_party_ops\tops_kind\trounds\tbytes_per_party\tmax_colluders")
	ctBytes := 2 * r.ecc160.ElementLen()
	fmt.Fprintf(r.w, "ours-ecc\t%d\texponentiations\t%d\t%d\tn-2 = %d\n",
		costmodel.ParticipantExps(s.N, l), costmodel.OursRounds(s.N),
		costmodel.ParticipantCiphertexts(s.N, l)*int64(ctBytes), s.N-2)
	ctBytes = 2 * r.dl1024.ElementLen()
	fmt.Fprintf(r.w, "ours-dl\t%d\texponentiations\t%d\t%d\tn-2 = %d\n",
		costmodel.ParticipantExps(s.N, l), costmodel.OursRounds(s.N),
		costmodel.ParticipantCiphertexts(s.N, l)*int64(ctBytes), s.N-2)
	fieldBytes := (s.SSFieldBits() + 7) / 8
	fmt.Fprintf(r.w, "ss-sort\t%d\tfield multiplications\t%d\t%d\t(n-1)/2 = %d\n",
		costmodel.SSFieldMultsPerParty(s.N, l), costmodel.SSRoundsSerial(s.N, l),
		costmodel.SSBytesPerParty(s.N, l, fieldBytes), (s.N-1)/2)
	fmt.Fprintln(r.w, "# asymptotics: ours O(l²n + l·n²·λ) mults, O(n) rounds; SS sort O(l·t·n²·log²n) mults, O((279l+5)·n·log²n) rounds")
	return nil
}

// realCrossCheck runs the full protocol stack at small n and prints
// wall-clock times next to the model's per-participant estimate.
func (r *Runner) realCrossCheck() error {
	fmt.Fprintln(r.w, "# real cross-check: full protocol runs at small n (secp160r1, laptop widths d1=8 d2=5 h=8)")
	fmt.Fprintln(r.w, "n\twall_sec\tmodel_participant_sec")
	for _, n := range []int{3, 4, 5} {
		params := core.Params{
			N: n, M: 4, T: 2, D1: 8, D2: 5, H: 8, K: 2,
			Group: r.ecc160, Workers: r.Workers,
		}
		q, err := workload.Uniform(params.M, params.T)
		if err != nil {
			return err
		}
		rng := fixedbig.NewDRBG(fmt.Sprintf("real-check-%d", n))
		crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
		if err != nil {
			return err
		}
		profiles, err := workload.RandomProfiles(q, n, params.D1, rng)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, _, err := core.Run(params, core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles},
			fmt.Sprintf("real-%d", n)); err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		// The model uses the conservative in-protocol width for a like
		// comparison.
		model := float64(costmodel.ParticipantExps(n, params.BetaBits())) * r.tm.ExpSec[r.ecc160.Name()]
		fmt.Fprintf(r.w, "%d\t%.2f\t%.2f\n", n, wall, model)
	}
	return nil
}
