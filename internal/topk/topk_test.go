package topk

import (
	"crypto/rand"
	"math/big"
	"sort"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/ssmpc"
)

func testConfig(t *testing.T, n int) ssmpc.Config {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("topk-prime"), 96)
	if err != nil {
		t.Fatal(err)
	}
	return ssmpc.Config{N: n, Degree: (n - 1) / 2, P: p, Kappa: 40}
}

// runTopK executes the protocol for the given values and returns every
// party's Result (they must all agree).
func runTopK(t *testing.T, vals []int64, l, k, buckets int, seed string) *Result {
	t.Helper()
	cfg := testConfig(t, len(vals))
	results, _, err := ssmpc.RunProgram(cfg, seed, nil, func(e *ssmpc.Engine) (*Result, error) {
		return Run(e, big.NewInt(vals[e.Party()]), l, k, buckets)
	})
	if err != nil {
		t.Fatal(err)
	}
	first := results[0].Value
	for _, r := range results[1:] {
		if r.Value.Threshold.Cmp(first.Threshold) != 0 || r.Value.Exact != first.Exact ||
			r.Value.AboveCount != first.AboveCount || r.Value.BoundaryCount != first.BoundaryCount {
			t.Fatalf("parties disagree: %+v vs %+v", r.Value, first)
		}
	}
	return first
}

// checkThreshold verifies the threshold isolates a correct top-k set.
func checkThreshold(t *testing.T, vals []int64, k int, res *Result) {
	t.Helper()
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	kth := sorted[k-1]
	// The k-th largest must sit in the final bucket (≥ threshold).
	if kth < res.Threshold.Int64() {
		t.Fatalf("k-th largest %d below threshold %s", kth, res.Threshold)
	}
	above, boundary := 0, 0
	thr := res.Threshold.Int64()
	for _, v := range vals {
		switch {
		case v > thr && res.Exact && v >= kth:
			above++
		case v > thr:
			above++
		}
		if v == thr {
			boundary++
		}
	}
	if res.Exact && res.AboveCount+res.BoundaryCount != k {
		t.Fatalf("exact result isolates %d values, want %d", res.AboveCount+res.BoundaryCount, k)
	}
}

func TestDistinctValuesExact(t *testing.T) {
	cases := []struct {
		name string
		vals []int64
		k    int
	}{
		{"five values k2", []int64{50, 10, 90, 30, 70}, 2},
		{"k1", []int64{3, 15, 8}, 1},
		{"k equals n", []int64{5, 9, 1}, 3},
		{"adjacent values", []int64{10, 11, 12, 13, 14}, 3},
		{"extremes", []int64{0, 255, 128}, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := runTopK(t, tc.vals, 8, tc.k, 4, "distinct-"+tc.name)
			if !res.Exact {
				t.Errorf("distinct values should resolve exactly: %+v", res)
			}
			if res.AboveCount+res.BoundaryCount != tc.k {
				t.Errorf("isolated %d values, want %d", res.AboveCount+res.BoundaryCount, tc.k)
			}
			checkThreshold(t, tc.vals, tc.k, res)
		})
	}
}

func TestDuplicatesAtBoundaryAreAmbiguous(t *testing.T) {
	// Three parties tie at the k-th position: the paper's documented
	// failure mode — the protocol cannot split them.
	vals := []int64{40, 40, 40, 90, 7}
	res := runTopK(t, vals, 8, 2, 4, "dup-boundary")
	if res.Exact {
		t.Fatalf("tie at the boundary must be reported as inexact: %+v", res)
	}
	// 90 is above, and the three 40s share the boundary bucket.
	if res.AboveCount != 1 || res.BoundaryCount != 3 {
		t.Errorf("got above=%d boundary=%d, want 1 and 3", res.AboveCount, res.BoundaryCount)
	}
}

func TestAllEqualValues(t *testing.T) {
	res := runTopK(t, []int64{5, 5, 5}, 4, 2, 2, "all-equal")
	if res.Exact {
		t.Error("all-equal values cannot be split exactly for k=2")
	}
	if res.BoundaryCount != 3 {
		t.Errorf("boundary count %d, want 3", res.BoundaryCount)
	}
}

func TestWideBuckets(t *testing.T) {
	// buckets larger than the range still work (single refinement).
	res := runTopK(t, []int64{1, 2, 3}, 2, 1, 16, "wide")
	if !res.Exact || res.Threshold.Int64() != 3 {
		t.Errorf("got %+v, want exact threshold 3", res)
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// A well-separated top value resolves in one refinement.
	res := runTopK(t, []int64{1 << 20, 77, 12345}, 21, 1, 2, "rounds-fast")
	if !res.Exact || res.Rounds != 1 {
		t.Errorf("separated top value should resolve in one round: %+v", res)
	}
	// Clustered tiny values force a near-full binary descent: the round
	// count is logarithmic in the range, never more.
	res = runTopK(t, []int64{0, 1, 3}, 21, 1, 2, "rounds-slow")
	if res.Rounds > 21 {
		t.Errorf("binary refinement took %d rounds for 21 bits", res.Rounds)
	}
	if res.Rounds < 15 {
		t.Errorf("clustered values resolved implausibly fast: %d rounds", res.Rounds)
	}
	if !res.Exact || res.Threshold.Int64() > 3 {
		t.Errorf("wrong resolution: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	cfg := testConfig(t, 3)
	cases := []struct {
		name    string
		v       int64
		l, k, b int
	}{
		{"zero width", 1, 0, 1, 2},
		{"oversized width", 1, 63, 1, 2},
		{"k zero", 1, 8, 0, 2},
		{"k too big", 1, 8, 4, 2},
		{"one bucket", 1, 8, 1, 1},
		{"value overflow", 300, 8, 1, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ssmpc.RunProgram(cfg, "val-"+tc.name, nil, func(e *ssmpc.Engine) (*Result, error) {
				return Run(e, big.NewInt(tc.v), tc.l, tc.k, tc.b)
			})
			if err == nil {
				t.Error("invalid parameters accepted")
			}
		})
	}
}

func TestAgainstBruteForceQuick(t *testing.T) {
	// Randomised cross-check against plaintext selection.
	rng := fixedbig.NewDRBG("topk-quick")
	for trial := 0; trial < 6; trial++ {
		vals := make([]int64, 5)
		seen := map[int64]bool{}
		for i := range vals {
			for {
				v, err := fixedbig.RandBits(rng, 7)
				if err != nil {
					t.Fatal(err)
				}
				if !seen[v.Int64()] {
					seen[v.Int64()] = true
					vals[i] = v.Int64()
					break
				}
			}
		}
		k := 1 + trial%3
		res := runTopK(t, vals, 7, k, 4, "quick")
		if !res.Exact {
			t.Fatalf("trial %d: distinct values must resolve exactly (%v, k=%d): %+v", trial, vals, k, res)
		}
		checkThreshold(t, vals, k, res)
	}
}
