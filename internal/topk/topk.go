// Package topk implements the second baseline the paper discusses
// (Section II, Burkhart and Dimitropoulos, "Fast privacy-preserving
// top-k queries using secret sharing"): a probabilistic protocol that
// finds a threshold separating the k largest of n privately held
// values by iterative bucketised counting over Shamir shares.
//
// Each round the current candidate range is split into B buckets; every
// party secret-shares the indicator vector of its value's bucket; the
// per-bucket totals are reconstructed publicly and the search recurses
// into the bucket containing the k-th largest value. The protocol is
// fast — O(log_B 2^l) rounds of n sharings — but, exactly as the paper
// notes, "it cannot be guaranteed to terminate with a correct result
// every time": when several values tie at the threshold the selection
// is ambiguous, which the Result reports instead of hiding.
//
// Privacy: the opened bucket histograms reveal coarse distribution
// information by design (that is the protocol's trade-off versus the
// oblivious sorting network); individual values stay hidden inside
// buckets of more than one element.
package topk

import (
	"fmt"
	"math/big"

	"groupranking/internal/ssmpc"
)

// RegisterWire registers this protocol's wire payloads with gob for
// serialising transports: every flow is an ssmpc share batch. Safe to
// call repeatedly.
func RegisterWire() { ssmpc.RegisterWire() }

// Result is the public outcome every party computes.
type Result struct {
	// Threshold is the lower edge of the final bucket: every value
	// strictly above it is among the top k.
	Threshold *big.Int
	// AboveCount is the number of values strictly above Threshold
	// (≤ k).
	AboveCount int
	// BoundaryCount is the number of values inside the final bucket;
	// AboveCount + BoundaryCount ≥ k. When AboveCount + BoundaryCount
	// exceeds k, the boundary values tie and the selection is ambiguous
	// — the probabilistic failure mode the paper attributes to this
	// protocol.
	BoundaryCount int
	// Exact reports whether exactly k values were isolated.
	Exact bool
	// Rounds is how many refinement iterations ran.
	Rounds int
}

// Run executes the protocol among the engine's parties: every party
// contributes its l-bit value, k is the selection size and buckets the
// histogram width per refinement round (≥ 2). All parties receive the
// same Result.
func Run(e *ssmpc.Engine, myValue *big.Int, l, k, buckets int) (*Result, error) {
	n := e.Config().N
	switch {
	case l <= 0 || l > 62:
		return nil, fmt.Errorf("topk: bit width %d outside (0, 62]", l)
	case k < 1 || k > n:
		return nil, fmt.Errorf("topk: k=%d outside [1, %d]", k, n)
	case buckets < 2:
		return nil, fmt.Errorf("topk: need at least two buckets, got %d", buckets)
	case myValue.Sign() < 0 || myValue.BitLen() > l:
		return nil, fmt.Errorf("topk: value does not fit in %d bits", l)
	}
	v := myValue.Int64()

	lo, hi := int64(0), int64(1)<<uint(l) // candidate range [lo, hi)
	need := k                             // how many of the top k remain inside [lo, hi)
	res := &Result{}
	for hi-lo > 1 {
		res.Rounds++
		width := (hi - lo + int64(buckets) - 1) / int64(buckets)
		nBuckets := int((hi - lo + width - 1) / width)

		// Local indicator vector of my value's bucket (zero vector when
		// my value left the candidate range in an earlier round).
		indicator := make([]*big.Int, nBuckets)
		for i := range indicator {
			indicator[i] = big.NewInt(0)
		}
		if v >= lo && v < hi {
			indicator[int((v-lo)/width)] = big.NewInt(1)
		}

		// Every party deals its indicator; shares are summed and the
		// histogram opened.
		sums := make([]ssmpc.Share, nBuckets)
		for dealer := 0; dealer < n; dealer++ {
			var payload []*big.Int
			if dealer == e.Party() {
				payload = indicator
			}
			shares, err := e.ShareBatch(dealer, payload, nBuckets)
			if err != nil {
				return nil, fmt.Errorf("topk: sharing histogram: %w", err)
			}
			for i, s := range shares {
				if dealer == 0 {
					sums[i] = s
					continue
				}
				sums[i] = e.Add(sums[i], s)
			}
		}
		counts, err := e.OpenBatch(sums)
		if err != nil {
			return nil, fmt.Errorf("topk: opening histogram: %w", err)
		}
		// Receive-boundary check: each opened bucket total is a sum of n
		// 0/1 indicators, so anything outside [0, n] means a party dealt
		// garbage shares (the value would otherwise be truncated silently
		// by the Int64 conversions below).
		nBig := big.NewInt(int64(n))
		for i, c := range counts {
			if c.Sign() < 0 || c.Cmp(nBig) > 0 {
				return nil, fmt.Errorf("topk: opened histogram count at bucket %d outside [0, %d]", i, n)
			}
		}

		// Walk buckets from the top until the remaining quota is met.
		remaining := need
		target := -1
		for i := nBuckets - 1; i >= 0; i-- {
			c := int(counts[i].Int64())
			if c >= remaining {
				target = i
				need = remaining
				break
			}
			remaining -= c
		}
		if target < 0 {
			return nil, fmt.Errorf("topk: fewer than k values in range; inconsistent inputs")
		}
		newLo := lo + int64(target)*width
		newHi := newLo + width
		if newHi > hi {
			newHi = hi
		}
		inBucket := int(counts[target].Int64())
		lo, hi = newLo, newHi
		res.BoundaryCount = inBucket
		if hi-lo == 1 || inBucket == need {
			// Either the bucket is a single value or it holds exactly
			// the remainder of the quota; both terminate.
			break
		}
	}

	res.Threshold = big.NewInt(lo)
	res.AboveCount = k - need
	res.Exact = res.AboveCount+res.BoundaryCount == k
	return res, nil
}
