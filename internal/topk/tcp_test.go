package topk

import (
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/ssmpc"
	"groupranking/internal/transport"
)

// TestTopKOverTCP runs the threshold protocol over a real loopback TCP
// mesh: it exercises the gob wire registration (RegisterWire) and the
// receive-boundary checks on the deployment transport, not just the
// in-memory fabric.
func TestTopKOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test skipped in short mode")
	}
	RegisterWire()
	vals := []int64{9, 3, 14}
	const l, k, buckets = 4, 1, 4
	cfg := testConfig(t, len(vals))
	addrs, err := transport.FreeLoopbackAddrs(len(vals))
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, len(vals))
	errs := make([]error, len(vals))
	var wg sync.WaitGroup
	for me := range vals {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			fab, err := transport.NewTCPFabric(addrs, me, 10*time.Second)
			if err != nil {
				errs[me] = err
				return
			}
			defer fab.Close()
			e, err := ssmpc.NewEngine(cfg, me, fab, fixedbig.NewDRBG(fmt.Sprintf("topk-tcp-%d", me)))
			if err != nil {
				errs[me] = err
				return
			}
			results[me], errs[me] = Run(e, big.NewInt(vals[me]), l, k, buckets)
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	first := results[0]
	for me, r := range results[1:] {
		if r.Threshold.Cmp(first.Threshold) != 0 || r.Exact != first.Exact {
			t.Fatalf("party %d disagrees over TCP: %+v vs %+v", me+1, r, first)
		}
	}
	checkThreshold(t, vals, k, first)
}
