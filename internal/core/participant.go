package core

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/obsv"
	"groupranking/internal/ssmpc"
	"groupranking/internal/sssort"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
	"groupranking/internal/workload"
)

// ParticipantOutput is what RunParticipant reports to the harness.
type ParticipantOutput struct {
	// Rank is the participant's self-computed rank (1 = best).
	Rank int
	// Beta is the masked partial gain (unsigned l-bit form).
	Beta *big.Int
}

// RunParticipant executes participant j's side (fabric index j with
// 1 ≤ j ≤ n; index 0 is the initiator).
func RunParticipant(params Params, j int, q *workload.Questionnaire, profile workload.Profile, fab transport.Net, rng io.Reader) (ParticipantOutput, error) {
	return RunParticipantCtx(context.Background(), params, j, q, profile, fab, rng)
}

// RunParticipantCtx is RunParticipant with cancellation threaded
// through every phase, including the phase-2 sorting subprotocol.
func RunParticipantCtx(ctx context.Context, params Params, j int, q *workload.Questionnaire, profile workload.Profile, fab transport.Net, rng io.Reader) (ParticipantOutput, error) {
	var out ParticipantOutput
	if err := params.Validate(); err != nil {
		return out, err
	}
	if j < 1 || j > params.N {
		return out, fmt.Errorf("core: participant index %d outside [1, %d]", j, params.N)
	}
	// Observability: core's own sends go through the wrapped handle
	// ofab; the phase-2 SubView below is built over the RAW fabric
	// because the sorting subprotocols install their own counting
	// wrapper at the leaf (see obsv.ObservedNet).
	obs := obsv.PartyFrom(ctx)
	ofab := obsv.ObservedNet(fab, obs)
	defer obs.End()
	prime, err := params.fieldPrime()
	if err != nil {
		return out, err
	}
	dp := dotprod.DefaultSRange(prime)
	dp.Obs = obs
	dp.Workers = params.Workers
	l := params.BetaBits()

	// Phase 1: dot product with the initiator, recover β.
	obs.Begin(PhaseGain)
	wPrime, err := q.ParticipantVector(profile)
	if err != nil {
		return out, err
	}
	bob, flow, err := dotprod.NewBob(dp, wPrime, rng)
	if err != nil {
		return out, err
	}
	if err := ofab.Send(roundGainRequest, j, 0, flow.WireBytes(dp), flow); err != nil {
		return out, transport.AnnotatePhase(err, "gain")
	}
	payload, err := ofab.RecvCtx(ctx, j, 0, roundGainReply)
	if err != nil {
		return out, transport.AnnotatePhase(err, "gain")
	}
	reply, ok := payload.(*dotprod.AliceReply)
	if !ok {
		return out, transport.Abort(0, roundGainReply, PhaseGain,
			fmt.Errorf("core: initiator sent a malformed gain reply"))
	}
	betaField, err := bob.Finish(reply)
	if err != nil {
		return out, err
	}
	betaSigned := fixedbig.CentredMod(betaField, prime)
	betaU, err := fixedbig.ToUnsigned(betaSigned, l)
	if err != nil {
		return out, fmt.Errorf("core: masked gain exceeds the configured width: %w", err)
	}
	out.Beta = betaU

	// Phase 2 among the participants only.
	members := make([]int, params.N)
	for i := range members {
		members[i] = i + 1
	}
	sub, err := transport.NewSubView(fab, members, phase2RoundOffset)
	if err != nil {
		return out, err
	}
	switch params.Sorter {
	case SorterUnlinkable:
		res, err := unlinksort.PartyCtx(ctx, unlinksort.Config{
			Group:           params.Group,
			L:               l,
			SkipProofs:      params.SkipProofs,
			ProveDecryption: params.ProveDecryption,
			Workers:         params.Workers,
		}, j-1, sub, betaU, rng)
		if err != nil {
			return out, err
		}
		out.Rank = res.Rank
	case SorterSecretSharing:
		rank, err := ssBaselineRank(ctx, params, j-1, sub, betaU, rng)
		if err != nil {
			return out, err
		}
		out.Rank = rank
	default:
		return out, fmt.Errorf("core: unknown sorter %v", params.Sorter)
	}

	// Phase 3: submit if ranked in the top k, decline otherwise.
	obs.Begin(PhaseSubmission)
	msg := submissionMsg{Declined: true}
	bytes := 1
	if out.Rank <= params.K {
		msg = submissionMsg{Rank: out.Rank, Values: append([]int64(nil), profile.Values...)}
		bytes = 8 * (1 + len(msg.Values))
	}
	if err := ofab.Send(roundSubmission, j, 0, bytes, msg); err != nil {
		return out, transport.AnnotatePhase(err, "submission")
	}
	return out, nil
}

// ssBaselineRank runs the baseline phase 2: all β values are secret
// shared, sorted with the Batcher network, opened, and each participant
// locates her own β in the sorted sequence.
func ssBaselineRank(ctx context.Context, params Params, me int, net transport.Net, betaU *big.Int, rng io.Reader) (int, error) {
	obsv.PartyFrom(ctx).Begin(PhaseSSSort)
	prime, err := params.ssFieldPrime()
	if err != nil {
		return 0, err
	}
	cfg := ssmpc.Config{
		N:       params.N,
		Degree:  (params.N - 1) / 2, // the baseline's maximum resistance
		P:       prime,
		Kappa:   params.Kappa,
		Workers: params.Workers,
	}
	eng, err := ssmpc.NewEngineCtx(ctx, cfg, me, net, rng)
	if err != nil {
		return 0, err
	}
	shares := make([]ssmpc.Share, params.N)
	for dealer := 0; dealer < params.N; dealer++ {
		var secret *big.Int
		if dealer == me {
			secret = betaU
		}
		if shares[dealer], err = eng.Share(dealer, secret); err != nil {
			return 0, err
		}
	}
	opened, err := sssort.SortOpen(eng, shares, params.BetaBits())
	if err != nil {
		return 0, err
	}
	return sssort.RankDescending(opened, betaU), nil
}
