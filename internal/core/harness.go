package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"groupranking/internal/fixedbig"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// Inputs bundles all private inputs for an in-process run.
type Inputs struct {
	Questionnaire *workload.Questionnaire
	Criterion     workload.Criterion
	Profiles      []workload.Profile
}

// Run executes the whole framework in-process: the initiator and all
// participants as goroutines over one fabric. seed derives each party's
// deterministic randomness; pass distinct seeds for independent runs.
func Run(params Params, in Inputs, seed string, opts ...transport.Option) (*Result, *transport.Fabric, error) {
	return RunCtx(context.Background(), params, in, seed, nil, opts...)
}

// RunCtx is Run with cancellation and an optional transport wrapper.
// The first party to fail cancels every sibling, so a crash or fault
// never leaves the run hanging: the returned error is always a typed
// *AbortError naming the first failing party, phase and round. wrap, if
// non-nil, decorates the fabric every party talks through (e.g. with a
// transport.FaultNet for chaos testing); the undecorated fabric is still
// returned for trace and stats inspection.
//
// RunCtx is a thin harness over the per-role runners RunInitiatorCtx
// and RunParticipantCtx — the same state machines the distributed entry
// points run over a TCP mesh. It skips the session-establishment round
// (EstablishSessionCtx): all goroutines share one Params value by
// construction, and skipping keeps in-process message and operation
// counts identical to the pre-distributed framework.
func RunCtx(ctx context.Context, params Params, in Inputs, seed string, wrap func(transport.Net) transport.Net, opts ...transport.Option) (*Result, *transport.Fabric, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if in.Questionnaire == nil {
		return nil, nil, fmt.Errorf("core: missing questionnaire")
	}
	if len(in.Profiles) != params.N {
		return nil, nil, fmt.Errorf("core: %d profiles for %d participants", len(in.Profiles), params.N)
	}
	if in.Questionnaire.M() != params.M || in.Questionnaire.T() != params.T {
		return nil, nil, fmt.Errorf("core: questionnaire shape (m=%d, t=%d) disagrees with params (m=%d, t=%d)",
			in.Questionnaire.M(), in.Questionnaire.T(), params.M, params.T)
	}
	fab, err := transport.New(params.N+1, opts...)
	if err != nil {
		return nil, nil, err
	}
	var net transport.Net = fab
	if wrap != nil {
		net = wrap(fab)
	}
	// One failed party cancels its siblings so nobody blocks forever on a
	// message that will never arrive.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type initOut struct {
		subs    []Submission
		flagged []int
		err     error
	}
	reg := obsv.RegistryFrom(ctx)

	initCh := make(chan initOut, 1)
	go func() {
		pctx := obsv.WithParty(runCtx, reg.Party(0))
		obsv.Do(pctx, 0, func(ctx context.Context) {
			rng := fixedbig.NewDRBG(InitiatorSeed(seed))
			subs, flagged, err := RunInitiatorCtx(ctx, params, in.Questionnaire, in.Criterion, net, rng)
			if err != nil {
				cancel()
			}
			initCh <- initOut{subs: subs, flagged: flagged, err: err}
		})
	}()

	type partOut struct {
		j   int
		out ParticipantOutput
		err error
	}
	partCh := make(chan partOut, params.N)
	for j := 1; j <= params.N; j++ {
		j := j
		go func() {
			pctx := obsv.WithParty(runCtx, reg.Party(j))
			obsv.Do(pctx, j, func(ctx context.Context) {
				rng := fixedbig.NewDRBG(ParticipantSeed(seed, j))
				out, err := RunParticipantCtx(ctx, params, j, in.Questionnaire, in.Profiles[j-1], net, rng)
				if err != nil {
					cancel()
				}
				partCh <- partOut{j: j, out: out, err: err}
			})
		}()
	}

	result := &Result{
		Ranks: make([]int, params.N),
		Betas: make([]*big.Int, params.N),
	}
	// Prefer the root-cause error: cancellation aborts are secondary
	// effects of the first real failure.
	var firstErr error
	keep := func(err error) {
		if err == nil {
			return
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	for i := 0; i < params.N; i++ {
		po := <-partCh
		keep(po.err)
		if po.err == nil {
			result.Ranks[po.j-1] = po.out.Rank
			result.Betas[po.j-1] = po.out.Beta
		}
	}
	io := <-initCh
	keep(io.err)
	if firstErr != nil {
		return nil, fab, transport.EnsureAbort(firstErr, -1, "framework")
	}
	result.Submissions = io.subs
	result.Suspicious = io.flagged
	return result, fab, nil
}

// InitiatorSeed derives the initiator's deterministic RNG label from a
// run seed. The distributed entry points use the same derivation, so a
// seed-fixed distributed run is transcript-identical to the in-process
// harness.
func InitiatorSeed(seed string) string { return seed + "-initiator" }

// ParticipantSeed derives participant j's deterministic RNG label
// (1 ≤ j ≤ n), matching the in-process harness exactly.
func ParticipantSeed(seed string, j int) string {
	return fmt.Sprintf("%s-participant-%d", seed, j)
}
