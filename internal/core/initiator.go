package core

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sort"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// initiatorState carries what the initiator remembers between phases.
type initiatorState struct {
	rho  *big.Int
	rhoJ []*big.Int // per participant
}

// RunInitiator executes the initiator's side over the fabric (party
// index 0 of n+1). It returns the received submissions and the flagged
// participants.
func RunInitiator(params Params, q *workload.Questionnaire, crit workload.Criterion, fab transport.Net, rng io.Reader) ([]Submission, []int, error) {
	return RunInitiatorCtx(context.Background(), params, q, crit, fab, rng)
}

// RunInitiatorCtx is RunInitiator with cancellation: every blocking
// receive honours ctx and failures surface as typed *AbortError values
// naming the peer, phase and round being waited on.
func RunInitiatorCtx(ctx context.Context, params Params, q *workload.Questionnaire, crit workload.Criterion, fab transport.Net, rng io.Reader) ([]Submission, []int, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	obs := obsv.PartyFrom(ctx)
	fab = obsv.ObservedNet(fab, obs)
	defer obs.End()
	prime, err := params.fieldPrime()
	if err != nil {
		return nil, nil, err
	}
	dp := dotprod.DefaultSRange(prime)
	dp.Obs = obs
	dp.Workers = params.Workers

	obs.Begin(PhaseGain)
	// Step 1: pick the h-bit masking factor ρ ≥ 1 (top bit set so every
	// ρ_j < ρ preserves the partial-gain order).
	rhoLow, err := fixedbig.RandBits(rng, params.H-1)
	if err != nil {
		return nil, nil, err
	}
	rho := new(big.Int).SetBit(rhoLow, params.H-1, 1)

	vPrime, err := q.InitiatorVector(crit, rho)
	if err != nil {
		return nil, nil, err
	}

	// Steps 3-4: answer each participant's dot-product flow with her own
	// random offset ρ_j.
	st := initiatorState{rho: rho, rhoJ: make([]*big.Int, params.N)}
	flows, err := fab.GatherAllCtx(ctx, 0, roundGainRequest)
	if err != nil {
		return nil, nil, transport.AnnotatePhase(err, "gain")
	}
	for j := 1; j <= params.N; j++ {
		msg, ok := flows[j].(*dotprod.BobMessage)
		if !ok {
			return nil, nil, transport.Abort(j, roundGainRequest, PhaseGain,
				fmt.Errorf("core: participant %d sent a malformed gain flow", j))
		}
		if err := msg.Validate(dp); err != nil {
			return nil, nil, transport.Abort(j, roundGainRequest, PhaseGain,
				fmt.Errorf("core: participant %d sent an invalid gain flow: %w", j, err))
		}
		rhoJ, err := fixedbig.RandInt(rng, rho)
		if err != nil {
			return nil, nil, err
		}
		st.rhoJ[j-1] = rhoJ
		reply, err := dotprod.AliceRespond(dp, msg, vPrime, rhoJ)
		if err != nil {
			return nil, nil, fmt.Errorf("core: answering participant %d: %w", j, err)
		}
		if err := fab.Send(roundGainReply, 0, j, reply.WireBytes(dp), reply); err != nil {
			return nil, nil, transport.AnnotatePhase(err, "gain")
		}
	}

	// Phase 3: collect one submission or decline from every participant.
	obs.Begin(PhaseSubmission)
	subs, err := fab.GatherAllCtx(ctx, 0, roundSubmission)
	if err != nil {
		return nil, nil, transport.AnnotatePhase(err, "submission")
	}
	var submissions []Submission
	for j := 1; j <= params.N; j++ {
		msg, ok := subs[j].(submissionMsg)
		if !ok {
			return nil, nil, transport.Abort(j, roundSubmission, PhaseSubmission,
				fmt.Errorf("core: participant %d sent a malformed submission", j))
		}
		if err := msg.validate(params); err != nil {
			return nil, nil, transport.Abort(j, roundSubmission, PhaseSubmission,
				fmt.Errorf("core: participant %d sent an invalid submission: %w", j, err))
		}
		if msg.Declined {
			continue
		}
		profile := workload.Profile{Values: msg.Values}
		gain, err := q.Gain(crit, profile)
		if err != nil {
			return nil, nil, fmt.Errorf("core: recomputing gain of participant %d: %w", j, err)
		}
		submissions = append(submissions, Submission{
			Participant: j - 1,
			ClaimedRank: msg.Rank,
			Profile:     profile,
			Gain:        gain,
		})
	}
	sort.Slice(submissions, func(a, b int) bool {
		if submissions[a].ClaimedRank != submissions[b].ClaimedRank {
			return submissions[a].ClaimedRank < submissions[b].ClaimedRank
		}
		return submissions[a].Participant < submissions[b].Participant
	})

	// Over-claim detection: recompute β̂ = ρ·p̂ + ρ_j from each submitted
	// profile and flag every pair whose claimed-rank order contradicts
	// the recomputed gain order.
	suspicious := map[int]bool{}
	betaHat := make([]*big.Int, len(submissions))
	for i, s := range submissions {
		pg, err := q.PartialGain(crit, s.Profile)
		if err != nil {
			return nil, nil, err
		}
		betaHat[i] = new(big.Int).Mul(rho, pg)
		betaHat[i].Add(betaHat[i], st.rhoJ[s.Participant])
	}
	for a := range submissions {
		for b := a + 1; b < len(submissions); b++ {
			rankCmp := compareInt(submissions[a].ClaimedRank, submissions[b].ClaimedRank)
			betaCmp := betaHat[b].Cmp(betaHat[a]) // descending: higher β ⇒ lower rank
			// Inconsistent when the claimed order contradicts the
			// recomputed order, or when two distinct β values claim the
			// same rank (honest equal ranks only arise from equal β).
			if (rankCmp != 0 && betaCmp != 0 && rankCmp != betaCmp) ||
				(rankCmp == 0 && betaCmp != 0) {
				suspicious[submissions[a].Participant] = true
				suspicious[submissions[b].Participant] = true
			}
		}
	}
	flagged := make([]int, 0, len(suspicious))
	for p := range suspicious {
		flagged = append(flagged, p)
	}
	sort.Ints(flagged)
	return submissions, flagged, nil
}
