package core

import (
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

func testGroup(t *testing.T) group.Group {
	t.Helper()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("core-group"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// smallParams returns a laptop-fast framework configuration.
func smallParams(t *testing.T, n int) Params {
	t.Helper()
	return Params{
		N: n, M: 4, T: 2, D1: 6, D2: 4, H: 6, K: 2,
		Group: testGroup(t),
	}
}

func testInputs(t *testing.T, params Params, seed string) Inputs {
	t.Helper()
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG(seed)
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}
}

// checkRanksConsistent verifies the ranking guarantee: strictly larger
// gain implies strictly better (smaller) rank. Gain ties may be split
// arbitrarily by the masking offsets ρ_j, which the paper accepts.
func checkRanksConsistent(t *testing.T, in Inputs, ranks []int) {
	t.Helper()
	gains := make([]*big.Int, len(in.Profiles))
	for i, p := range in.Profiles {
		g, err := in.Questionnaire.Gain(in.Criterion, p)
		if err != nil {
			t.Fatal(err)
		}
		gains[i] = g
	}
	for a := range gains {
		for b := range gains {
			if gains[a].Cmp(gains[b]) > 0 && ranks[a] >= ranks[b] {
				t.Errorf("participant %d (gain %s, rank %d) vs %d (gain %s, rank %d): order violated",
					a, gains[a], ranks[a], b, gains[b], ranks[b])
			}
		}
	}
}

func TestFrameworkEndToEnd(t *testing.T) {
	params := smallParams(t, 4)
	in := testInputs(t, params, "e2e")
	res, fab, err := Run(params, in, "e2e-run")
	if err != nil {
		t.Fatal(err)
	}
	checkRanksConsistent(t, in, res.Ranks)
	if len(res.Suspicious) != 0 {
		t.Errorf("honest run flagged participants %v", res.Suspicious)
	}
	// Everyone ranked ≤ k must have submitted, nobody else.
	want := map[int]bool{}
	for j, r := range res.Ranks {
		if r <= params.K {
			want[j] = true
		}
	}
	got := map[int]bool{}
	for _, s := range res.Submissions {
		got[s.Participant] = true
		if s.ClaimedRank != res.Ranks[s.Participant] {
			t.Errorf("participant %d claimed rank %d, computed %d", s.Participant, s.ClaimedRank, res.Ranks[s.Participant])
		}
		// The initiator's recomputed gain must match the ground truth.
		g, err := in.Questionnaire.Gain(in.Criterion, in.Profiles[s.Participant])
		if err != nil {
			t.Fatal(err)
		}
		if s.Gain.Cmp(g) != 0 {
			t.Errorf("participant %d recomputed gain %s, want %s", s.Participant, s.Gain, g)
		}
	}
	for j := range want {
		if !got[j] {
			t.Errorf("top-k participant %d did not submit", j)
		}
	}
	for j := range got {
		if !want[j] {
			t.Errorf("low-ranking participant %d submitted", j)
		}
	}
	if fab.Stats().TotalBytes() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestFrameworkBetaOrderMatchesGainOrder(t *testing.T) {
	params := smallParams(t, 5)
	in := testInputs(t, params, "beta-order")
	res, _, err := Run(params, in, "beta-run")
	if err != nil {
		t.Fatal(err)
	}
	for a := range in.Profiles {
		ga, err := in.Questionnaire.Gain(in.Criterion, in.Profiles[a])
		if err != nil {
			t.Fatal(err)
		}
		for b := range in.Profiles {
			gb, err := in.Questionnaire.Gain(in.Criterion, in.Profiles[b])
			if err != nil {
				t.Fatal(err)
			}
			if ga.Cmp(gb) > 0 && res.Betas[a].Cmp(res.Betas[b]) <= 0 {
				t.Errorf("β order broken between %d and %d", a, b)
			}
		}
	}
}

func TestFrameworkSecretSharingBaseline(t *testing.T) {
	params := smallParams(t, 5) // odd n keeps (n−1)/2 degree meaningful
	params.Sorter = SorterSecretSharing
	in := testInputs(t, params, "ss-base")
	res, _, err := Run(params, in, "ss-run")
	if err != nil {
		t.Fatal(err)
	}
	checkRanksConsistent(t, in, res.Ranks)
}

func TestSortersAgree(t *testing.T) {
	paramsU := smallParams(t, 5)
	in := testInputs(t, paramsU, "agree")
	resU, _, err := Run(paramsU, in, "agree-run")
	if err != nil {
		t.Fatal(err)
	}
	paramsS := paramsU
	paramsS.Sorter = SorterSecretSharing
	resS, _, err := Run(paramsS, in, "agree-run")
	if err != nil {
		t.Fatal(err)
	}
	for j := range resU.Ranks {
		if resU.Ranks[j] != resS.Ranks[j] {
			t.Errorf("participant %d: unlinkable rank %d, SS rank %d", j, resU.Ranks[j], resS.Ranks[j])
		}
	}
}

func TestDeterministicSeedsReproduce(t *testing.T) {
	params := smallParams(t, 3)
	in := testInputs(t, params, "det")
	r1, _, err := Run(params, in, "det-run")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(params, in, "det-run")
	if err != nil {
		t.Fatal(err)
	}
	for j := range r1.Ranks {
		if r1.Ranks[j] != r2.Ranks[j] || r1.Betas[j].Cmp(r2.Betas[j]) != 0 {
			t.Errorf("participant %d not reproducible", j)
		}
	}
}

func TestTiedGainsShareOrSplitConsistently(t *testing.T) {
	// Identical profiles have identical gains; their β values differ only
	// in ρ_j, so ranks may split, but the set of ranks must still be
	// consistent: every participant's rank equals 1 + number of strictly
	// larger βs.
	params := smallParams(t, 3)
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	crit := workload.Criterion{Values: []int64{10, 20, 30, 40}, Weights: []int64{1, 2, 3, 4}}
	same := workload.Profile{Values: []int64{10, 20, 35, 45}}
	in := Inputs{
		Questionnaire: q,
		Criterion:     crit,
		Profiles:      []workload.Profile{same, same, same},
	}
	res, _, err := Run(params, in, "tied")
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range res.Ranks {
		wantRank := 1
		for i := range res.Betas {
			if res.Betas[i].Cmp(res.Betas[j]) > 0 {
				wantRank++
			}
		}
		if r != wantRank {
			t.Errorf("participant %d: rank %d, β order says %d", j, r, wantRank)
		}
	}
}

func TestExpectedRanks(t *testing.T) {
	q, err := workload.Uniform(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	crit := workload.Criterion{Values: []int64{0, 0}, Weights: []int64{1, 1}}
	profiles := []workload.Profile{
		{Values: []int64{5, 5}}, // gain 10
		{Values: []int64{9, 9}}, // gain 18
		{Values: []int64{5, 5}}, // gain 10 (tie)
		{Values: []int64{1, 1}}, // gain 2
	}
	ranks, err := ExpectedRanks(q, crit, profiles)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 2, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	g := testGroup(t)
	valid := Params{N: 3, M: 2, T: 1, D1: 8, D2: 8, H: 8, K: 1, Group: g}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.T = 3 },
		func(p *Params) { p.T = -1 },
		func(p *Params) { p.D1 = 0 },
		func(p *Params) { p.D2 = 31 },
		func(p *Params) { p.H = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = 4 },
		func(p *Params) { p.Group = nil },
	}
	for i, mutate := range mutations {
		p := valid
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	params := smallParams(t, 3)
	in := testInputs(t, params, "val")

	if _, _, err := Run(params, Inputs{}, "x"); err == nil {
		t.Error("missing questionnaire accepted")
	}
	short := in
	short.Profiles = in.Profiles[:1]
	if _, _, err := Run(params, short, "x"); err == nil {
		t.Error("wrong profile count accepted")
	}
	mis := in
	var err error
	mis.Questionnaire, err = workload.Uniform(params.M+1, params.T)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(params, mis, "x"); err == nil {
		t.Error("questionnaire shape mismatch accepted")
	}
}

func TestOverClaimDetection(t *testing.T) {
	// Three forged participants run phase 1 honestly and then submit
	// claimed ranks that contradict their actual gains; the initiator
	// must flag the inconsistency (the paper's over-claim argument).
	params := smallParams(t, 3)
	params.K = 3
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	crit := workload.Criterion{Values: []int64{10, 20, 30, 40}, Weights: []int64{1, 2, 3, 4}}
	// Distinct gains: profile 0 best, 2 worst.
	profiles := []workload.Profile{
		{Values: []int64{10, 20, 60, 60}},
		{Values: []int64{10, 20, 40, 40}},
		{Values: []int64{10, 20, 31, 31}},
	}
	claims := []int{2, 3, 1} // worst participant claims rank 1

	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	prime, err := params.fieldPrime()
	if err != nil {
		t.Fatal(err)
	}
	dp := dotprod.DefaultSRange(prime)

	initDone := make(chan struct {
		flagged []int
		err     error
	}, 1)
	go func() {
		rng := fixedbig.NewDRBG("overclaim-initiator")
		_, flagged, err := RunInitiator(params, q, crit, fab, rng)
		initDone <- struct {
			flagged []int
			err     error
		}{flagged, err}
	}()
	for j := 1; j <= params.N; j++ {
		j := j
		go func() {
			rng := fixedbig.NewDRBG(fmt.Sprintf("overclaim-%d", j))
			w, err := q.ParticipantVector(profiles[j-1])
			if err != nil {
				t.Error(err)
				return
			}
			bob, flow, err := dotprod.NewBob(dp, w, rng)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fab.Send(roundGainRequest, j, 0, flow.WireBytes(dp), flow); err != nil {
				t.Error(err)
				return
			}
			payload, err := fab.Recv(j, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := bob.Finish(payload.(*dotprod.AliceReply)); err != nil {
				t.Error(err)
				return
			}
			// Skip phase 2 entirely and submit a forged rank.
			msg := submissionMsg{Rank: claims[j-1], Values: profiles[j-1].Values}
			if err := fab.Send(roundSubmission, j, 0, 32, msg); err != nil {
				t.Error(err)
			}
		}()
	}
	out := <-initDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.flagged) == 0 {
		t.Fatal("over-claim went undetected")
	}
	// The worst participant (index 2) must be among the flagged.
	found := false
	for _, p := range out.flagged {
		if p == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("flagged %v does not include the over-claimer 2", out.flagged)
	}
}

func TestSorterString(t *testing.T) {
	if SorterUnlinkable.String() != "unlinkable" || SorterSecretSharing.String() != "secret-sharing" {
		t.Error("sorter labels wrong")
	}
	if Sorter(9).String() == "" {
		t.Error("unknown sorter must still print")
	}
}

func TestTraceCoversAllPhases(t *testing.T) {
	params := smallParams(t, 3)
	in := testInputs(t, params, "trace")
	_, fab, err := Run(params, in, "trace-run")
	if err != nil {
		t.Fatal(err)
	}
	var sawGain, sawPhase2, sawSubmission bool
	for _, ev := range fab.Trace() {
		switch {
		case ev.Round == roundGainRequest || ev.Round == roundGainReply:
			sawGain = true
		case ev.Round >= phase2RoundOffset && ev.Round < roundSubmission:
			sawPhase2 = true
		case ev.Round == roundSubmission:
			sawSubmission = true
		}
	}
	if !sawGain || !sawPhase2 || !sawSubmission {
		t.Errorf("trace misses phases: gain=%v phase2=%v submission=%v", sawGain, sawPhase2, sawSubmission)
	}
}

// TestFrameworkOverRealTCP runs the complete three-phase framework —
// initiator and participants — over real TCP loopback connections with
// gob-serialised messages, the deployment shape of the paper's fully
// distributed setting.
func TestFrameworkOverRealTCP(t *testing.T) {
	RegisterWire()
	params := smallParams(t, 3)
	in := testInputs(t, params, "tcp-framework")
	addrs, err := transport.FreeLoopbackAddrs(params.N + 1)
	if err != nil {
		t.Fatal(err)
	}

	type initOut struct {
		subs []Submission
		err  error
	}
	initCh := make(chan initOut, 1)
	ranks := make([]int, params.N)
	errs := make([]error, params.N)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		fab, err := transport.NewTCPFabric(addrs, 0, 30*time.Second)
		if err != nil {
			initCh <- initOut{err: err}
			return
		}
		defer fab.Close()
		rng := fixedbig.NewDRBG("tcp-framework-initiator")
		subs, _, err := RunInitiator(params, in.Questionnaire, in.Criterion, fab, rng)
		initCh <- initOut{subs: subs, err: err}
	}()
	for j := 1; j <= params.N; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			fab, err := transport.NewTCPFabric(addrs, j, 30*time.Second)
			if err != nil {
				errs[j-1] = err
				return
			}
			defer fab.Close()
			rng := fixedbig.NewDRBG(fmt.Sprintf("tcp-framework-participant-%d", j))
			out, err := RunParticipant(params, j, in.Questionnaire, in.Profiles[j-1], fab, rng)
			if err != nil {
				errs[j-1] = err
				return
			}
			ranks[j-1] = out.Rank
		}()
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", j+1, err)
		}
	}
	io := <-initCh
	if io.err != nil {
		t.Fatalf("initiator: %v", io.err)
	}
	checkRanksConsistent(t, in, ranks)
	if len(io.subs) == 0 {
		t.Fatal("initiator received no submissions over TCP")
	}
	for _, s := range io.subs {
		if s.ClaimedRank != ranks[s.Participant] {
			t.Errorf("submission rank %d disagrees with participant rank %d", s.ClaimedRank, ranks[s.Participant])
		}
	}
}
