// Package core assembles the paper's privacy-preserving group-ranking
// framework (Fig. 1): an initiator P₀ and n participants P₁..P_n run
//
//  1. secure gain computation — each participant obtains its masked
//     partial gain β_j = ρ·p_j + ρ_j through the secure two-party
//     dot-product protocol with the initiator;
//  2. unlinkable gain comparison — the participants rank the β values
//     with the identity-unlinkable multiparty sorting protocol (or, for
//     the paper's baseline comparison, the secret-sharing sorting
//     network);
//  3. ranking submission — participants ranked in the top k submit their
//     information vectors; the initiator recomputes their gains and
//     flags inconsistent rank claims (the paper's over-claim defence).
//
// Each role is a standalone state machine callable against any
// transport.Net: RunInitiatorCtx and RunParticipantCtx run one real
// party (the deployment entry points drive them over a TCP mesh, after
// the EstablishSessionCtx parameter handshake), while the RunCtx
// harness runs every party as a goroutine over one shared in-memory
// fabric, so the recorded trace covers the whole framework and can be
// replayed over the simulated network of Fig. 3(b).
package core

import (
	"encoding/gob"
	"fmt"
	"math/big"
	"sync"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/ssmpc"
	"groupranking/internal/unlinksort"
	"groupranking/internal/workload"
)

// Sorter selects the phase-2 protocol.
type Sorter int

const (
	// SorterUnlinkable is the paper's contribution (default).
	SorterUnlinkable Sorter = iota
	// SorterSecretSharing is the Jónsson-style baseline: Batcher network
	// over the SS comparison, sorted multiset opened to all participants.
	SorterSecretSharing
)

// String implements fmt.Stringer.
func (s Sorter) String() string {
	switch s {
	case SorterUnlinkable:
		return "unlinkable"
	case SorterSecretSharing:
		return "secret-sharing"
	default:
		return fmt.Sprintf("Sorter(%d)", int(s))
	}
}

// Params fixes a framework instance. The defaults mirror Section VII:
// n=25, m=10, d1=15, h=15 (d2 is not stated in the paper; we use 10).
type Params struct {
	N  int // participants (excluding the initiator)
	M  int // attribute dimension
	T  int // number of "equal to" attributes (first T of M)
	D1 int // attribute value bits
	D2 int // weight bits
	H  int // bits of the masking factor ρ
	K  int // top-k cut

	// Group is the DDH group for the unlinkable comparison phase.
	Group group.Group
	// Sorter selects the phase-2 protocol.
	Sorter Sorter
	// SkipProofs disables the key-knowledge proofs in phase 2
	// (benchmark-only).
	SkipProofs bool
	// ProveDecryption enables the decryption-integrity extension of the
	// phase-2 chain: hash commitments plus Chaum–Pedersen strip proofs,
	// verified hop by hop (see internal/unlinksort).
	ProveDecryption bool
	// Kappa is the statistical parameter of the SS comparison
	// (default 40).
	Kappa int
	// Workers bounds the goroutines each party's crypto hot loops fan
	// out on (0 = NumCPU, 1 = serial). Results are bit-identical at
	// every worker count: randomness is always drawn serially.
	Workers int
	// WireCodec overrides the wire-codec version this party announces
	// during session establishment (0 = wirecodec.Version, the build's
	// native format). Parties announcing different codec versions
	// refuse each other with ErrSessionMismatch naming the codec field
	// before any crypto is spent. The override exists for exactly that
	// refusal path — deployments have no reason to set it.
	WireCodec int
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("core: need at least two participants, got %d", p.N)
	case p.M < 1:
		return fmt.Errorf("core: need at least one attribute, got %d", p.M)
	case p.T < 0 || p.T > p.M:
		return fmt.Errorf("core: t=%d outside [0, %d]", p.T, p.M)
	case p.D1 < 1 || p.D1 > 30:
		return fmt.Errorf("core: d1=%d outside [1, 30]", p.D1)
	case p.D2 < 1 || p.D2 > 30:
		return fmt.Errorf("core: d2=%d outside [1, 30]", p.D2)
	case p.H < 1 || p.H > 62:
		return fmt.Errorf("core: h=%d outside [1, 62]", p.H)
	case p.K < 1 || p.K > p.N:
		return fmt.Errorf("core: k=%d outside [1, n=%d]", p.K, p.N)
	case p.Group == nil:
		return fmt.Errorf("core: missing group")
	}
	return nil
}

// BetaBits returns the bit width l of the masked partial gains.
func (p Params) BetaBits() int {
	return workload.BetaBits(p.M, p.D1, p.D2, p.H)
}

// fieldPrime derives the phase-1 dot-product field deterministically
// from the required width, so all parties agree without negotiation.
func (p Params) fieldPrime() (*big.Int, error) {
	bits := p.BetaBits() + 33
	prime, err := fixedbig.Prime(fixedbig.NewDRBG(fmt.Sprintf("groupranking-dot-field-%d", bits)), bits)
	if err != nil {
		return nil, fmt.Errorf("core: deriving dot-product field: %w", err)
	}
	return prime, nil
}

// ssFieldPrime derives the SS baseline's field the same way.
func (p Params) ssFieldPrime() (*big.Int, error) {
	kappa := p.Kappa
	if kappa <= 0 {
		kappa = 40
	}
	bits := p.BetaBits() + kappa + 8
	prime, err := fixedbig.Prime(fixedbig.NewDRBG(fmt.Sprintf("groupranking-ss-field-%d", bits)), bits)
	if err != nil {
		return nil, fmt.Errorf("core: deriving SS field: %w", err)
	}
	return prime, nil
}

// Round tags for the shared trace.
const (
	// The distributed session-establishment handshake runs below every
	// protocol round (the in-process harness skips it).
	roundSession     = 0
	roundGainRequest = 1 // participant → initiator: dot-product flow 1
	roundGainReply   = 2 // initiator → participant: dot-product flow 2
	// Phase 2 runs in a SubView with this offset.
	phase2RoundOffset = 10
	// Phase 3 submissions use a tag above any phase-2 round.
	roundSubmission = 1 << 20
)

// Span names of the framework's own phases. Phase 2 spans come from
// the sorting subprotocol (unlinksort.Phases, or PhaseSSSort for the
// secret-sharing baseline). PhaseSession appears only in distributed
// runs (the in-process harness skips the handshake).
const (
	PhaseSession    = "session"
	PhaseGain       = "gain"
	PhaseSSSort     = "ssmpc"
	PhaseSubmission = "submission"
)

// Phases lists the framework-level span names every in-process run
// records (the guard test checks them against a real trace).
var Phases = []string{PhaseGain, PhaseSubmission}

// Submission is what a top-k participant hands to the initiator.
type Submission struct {
	// Participant is the participant index (0-based within 0..n−1).
	Participant int
	// ClaimedRank is the rank the participant reported.
	ClaimedRank int
	// Profile is the submitted information vector.
	Profile workload.Profile
	// Gain is the initiator's recomputation from the submitted profile
	// (Definition 1).
	Gain *big.Int
}

// Result is the framework outcome as observed by the simulation harness.
type Result struct {
	// Ranks holds each participant's self-computed rank (1 = best).
	Ranks []int
	// Submissions are the top-k submissions in claimed-rank order.
	Submissions []Submission
	// Suspicious lists participants whose claimed rank is inconsistent
	// with the gain the initiator recomputed from their submission.
	Suspicious []int
	// Betas exposes the masked partial gains for analysis and testing
	// (a real deployment never pools them; the harness may).
	Betas []*big.Int
}

// submissionMsg is the phase-3 wire format (fields exported for the
// TCP transport's gob encoding; the type stays package-private).
type submissionMsg struct {
	Declined bool
	Rank     int
	Values   []int64
}

// validate is the receive-boundary check the initiator applies to every
// submission before touching its contents: over a real network a peer
// can send anything, so the claimed rank must be a possible rank, the
// profile must have the questionnaire's dimension, and every value must
// fit the d1-bit attribute width all profiles are bound to.
func (m submissionMsg) validate(p Params) error {
	if m.Declined {
		return nil
	}
	if m.Rank < 1 || m.Rank > p.N {
		return fmt.Errorf("core: claimed rank %d outside [1, %d]", m.Rank, p.N)
	}
	if len(m.Values) != p.M {
		return fmt.Errorf("core: submitted profile has %d values, questionnaire has %d attributes", len(m.Values), p.M)
	}
	bound := int64(1) << uint(p.D1)
	for i, v := range m.Values {
		if v < 0 || v >= bound {
			return fmt.Errorf("core: submitted value %d at attribute %d outside [0, 2^%d)", v, i, p.D1)
		}
	}
	return nil
}

var _wireOnce sync.Once

// RegisterWire registers every type the framework sends over a
// serialising transport (transport.TCPFabric), including all phase
// subprotocol types. Safe to call repeatedly.
func RegisterWire() {
	_wireOnce.Do(func() {
		unlinksort.RegisterWire()
		dotprod.RegisterWire()
		ssmpc.RegisterWire()
		gob.Register(sessionMsg{})
		gob.Register(submissionMsg{})
	})
}

// ExpectedRanks computes the ground-truth descending ranks from the
// plaintext gains (test and example helper; a deployment cannot do
// this).
func ExpectedRanks(q *workload.Questionnaire, crit workload.Criterion, profiles []workload.Profile) ([]int, error) {
	gains := make([]*big.Int, len(profiles))
	for i, p := range profiles {
		g, err := q.Gain(crit, p)
		if err != nil {
			return nil, err
		}
		gains[i] = g
	}
	ranks := make([]int, len(profiles))
	for i := range gains {
		rank := 1
		for j := range gains {
			if gains[j].Cmp(gains[i]) > 0 {
				rank++
			}
		}
		ranks[i] = rank
	}
	return ranks, nil
}

func compareInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
