// Package core assembles the paper's privacy-preserving group-ranking
// framework (Fig. 1): an initiator P₀ and n participants P₁..P_n run
//
//  1. secure gain computation — each participant obtains its masked
//     partial gain β_j = ρ·p_j + ρ_j through the secure two-party
//     dot-product protocol with the initiator;
//  2. unlinkable gain comparison — the participants rank the β values
//     with the identity-unlinkable multiparty sorting protocol (or, for
//     the paper's baseline comparison, the secret-sharing sorting
//     network);
//  3. ranking submission — participants ranked in the top k submit their
//     information vectors; the initiator recomputes their gains and
//     flags inconsistent rank claims (the paper's over-claim defence).
//
// Every party is a goroutine over one shared transport fabric, so the
// recorded trace covers the whole framework and can be replayed over the
// simulated network of Fig. 3(b).
package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/obsv"
	"groupranking/internal/ssmpc"
	"groupranking/internal/sssort"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
	"groupranking/internal/workload"
)

// Sorter selects the phase-2 protocol.
type Sorter int

const (
	// SorterUnlinkable is the paper's contribution (default).
	SorterUnlinkable Sorter = iota
	// SorterSecretSharing is the Jónsson-style baseline: Batcher network
	// over the SS comparison, sorted multiset opened to all participants.
	SorterSecretSharing
)

// String implements fmt.Stringer.
func (s Sorter) String() string {
	switch s {
	case SorterUnlinkable:
		return "unlinkable"
	case SorterSecretSharing:
		return "secret-sharing"
	default:
		return fmt.Sprintf("Sorter(%d)", int(s))
	}
}

// Params fixes a framework instance. The defaults mirror Section VII:
// n=25, m=10, d1=15, h=15 (d2 is not stated in the paper; we use 10).
type Params struct {
	N  int // participants (excluding the initiator)
	M  int // attribute dimension
	T  int // number of "equal to" attributes (first T of M)
	D1 int // attribute value bits
	D2 int // weight bits
	H  int // bits of the masking factor ρ
	K  int // top-k cut

	// Group is the DDH group for the unlinkable comparison phase.
	Group group.Group
	// Sorter selects the phase-2 protocol.
	Sorter Sorter
	// SkipProofs disables the key-knowledge proofs in phase 2
	// (benchmark-only).
	SkipProofs bool
	// ProveDecryption enables the decryption-integrity extension of the
	// phase-2 chain: hash commitments plus Chaum–Pedersen strip proofs,
	// verified hop by hop (see internal/unlinksort).
	ProveDecryption bool
	// Kappa is the statistical parameter of the SS comparison
	// (default 40).
	Kappa int
	// Workers bounds the goroutines each party's crypto hot loops fan
	// out on (0 = NumCPU, 1 = serial). Results are bit-identical at
	// every worker count: randomness is always drawn serially.
	Workers int
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("core: need at least two participants, got %d", p.N)
	case p.M < 1:
		return fmt.Errorf("core: need at least one attribute, got %d", p.M)
	case p.T < 0 || p.T > p.M:
		return fmt.Errorf("core: t=%d outside [0, %d]", p.T, p.M)
	case p.D1 < 1 || p.D1 > 30:
		return fmt.Errorf("core: d1=%d outside [1, 30]", p.D1)
	case p.D2 < 1 || p.D2 > 30:
		return fmt.Errorf("core: d2=%d outside [1, 30]", p.D2)
	case p.H < 1 || p.H > 62:
		return fmt.Errorf("core: h=%d outside [1, 62]", p.H)
	case p.K < 1 || p.K > p.N:
		return fmt.Errorf("core: k=%d outside [1, n=%d]", p.K, p.N)
	case p.Group == nil:
		return fmt.Errorf("core: missing group")
	}
	return nil
}

// BetaBits returns the bit width l of the masked partial gains.
func (p Params) BetaBits() int {
	return workload.BetaBits(p.M, p.D1, p.D2, p.H)
}

// fieldPrime derives the phase-1 dot-product field deterministically
// from the required width, so all parties agree without negotiation.
func (p Params) fieldPrime() (*big.Int, error) {
	bits := p.BetaBits() + 33
	prime, err := fixedbig.Prime(fixedbig.NewDRBG(fmt.Sprintf("groupranking-dot-field-%d", bits)), bits)
	if err != nil {
		return nil, fmt.Errorf("core: deriving dot-product field: %w", err)
	}
	return prime, nil
}

// ssFieldPrime derives the SS baseline's field the same way.
func (p Params) ssFieldPrime() (*big.Int, error) {
	kappa := p.Kappa
	if kappa <= 0 {
		kappa = 40
	}
	bits := p.BetaBits() + kappa + 8
	prime, err := fixedbig.Prime(fixedbig.NewDRBG(fmt.Sprintf("groupranking-ss-field-%d", bits)), bits)
	if err != nil {
		return nil, fmt.Errorf("core: deriving SS field: %w", err)
	}
	return prime, nil
}

// Round tags for the shared trace.
const (
	roundGainRequest = 1 // participant → initiator: dot-product flow 1
	roundGainReply   = 2 // initiator → participant: dot-product flow 2
	// Phase 2 runs in a SubView with this offset.
	phase2RoundOffset = 10
	// Phase 3 submissions use a tag above any phase-2 round.
	roundSubmission = 1 << 20
)

// Span names of the framework's own phases. Phase 2 spans come from
// the sorting subprotocol (unlinksort.Phases, or PhaseSSSort for the
// secret-sharing baseline).
const (
	PhaseGain       = "gain"
	PhaseSSSort     = "ssmpc"
	PhaseSubmission = "submission"
)

// Phases lists the framework-level span names for the guard test.
var Phases = []string{PhaseGain, PhaseSubmission}

// Submission is what a top-k participant hands to the initiator.
type Submission struct {
	// Participant is the participant index (0-based within 0..n−1).
	Participant int
	// ClaimedRank is the rank the participant reported.
	ClaimedRank int
	// Profile is the submitted information vector.
	Profile workload.Profile
	// Gain is the initiator's recomputation from the submitted profile
	// (Definition 1).
	Gain *big.Int
}

// Result is the framework outcome as observed by the simulation harness.
type Result struct {
	// Ranks holds each participant's self-computed rank (1 = best).
	Ranks []int
	// Submissions are the top-k submissions in claimed-rank order.
	Submissions []Submission
	// Suspicious lists participants whose claimed rank is inconsistent
	// with the gain the initiator recomputed from their submission.
	Suspicious []int
	// Betas exposes the masked partial gains for analysis and testing
	// (a real deployment never pools them; the harness may).
	Betas []*big.Int
}

// submissionMsg is the phase-3 wire format (fields exported for the
// TCP transport's gob encoding; the type stays package-private).
type submissionMsg struct {
	Declined bool
	Rank     int
	Values   []int64
}

var _wireOnce sync.Once

// RegisterWire registers every type the framework sends over a
// serialising transport (transport.TCPFabric), including the phase-2
// subprotocol types. Safe to call repeatedly.
func RegisterWire() {
	_wireOnce.Do(func() {
		unlinksort.RegisterWire()
		gob.Register(&dotprod.BobMessage{})
		gob.Register(&dotprod.AliceReply{})
		gob.Register(submissionMsg{})
		gob.Register([]*big.Int{}) // ssmpc share batches
	})
}

// initiatorState carries what the initiator remembers between phases.
type initiatorState struct {
	rho  *big.Int
	rhoJ []*big.Int // per participant
}

// RunInitiator executes the initiator's side over the fabric (party
// index 0 of n+1). It returns the received submissions and the flagged
// participants.
func RunInitiator(params Params, q *workload.Questionnaire, crit workload.Criterion, fab transport.Net, rng io.Reader) ([]Submission, []int, error) {
	return RunInitiatorCtx(context.Background(), params, q, crit, fab, rng)
}

// RunInitiatorCtx is RunInitiator with cancellation: every blocking
// receive honours ctx and failures surface as typed *AbortError values
// naming the peer, phase and round being waited on.
func RunInitiatorCtx(ctx context.Context, params Params, q *workload.Questionnaire, crit workload.Criterion, fab transport.Net, rng io.Reader) ([]Submission, []int, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	obs := obsv.PartyFrom(ctx)
	fab = obsv.ObservedNet(fab, obs)
	defer obs.End()
	prime, err := params.fieldPrime()
	if err != nil {
		return nil, nil, err
	}
	dp := dotprod.DefaultSRange(prime)
	dp.Obs = obs
	dp.Workers = params.Workers

	obs.Begin(PhaseGain)
	// Step 1: pick the h-bit masking factor ρ ≥ 1 (top bit set so every
	// ρ_j < ρ preserves the partial-gain order).
	rhoLow, err := fixedbig.RandBits(rng, params.H-1)
	if err != nil {
		return nil, nil, err
	}
	rho := new(big.Int).SetBit(rhoLow, params.H-1, 1)

	vPrime, err := q.InitiatorVector(crit, rho)
	if err != nil {
		return nil, nil, err
	}

	// Steps 3-4: answer each participant's dot-product flow with her own
	// random offset ρ_j.
	st := initiatorState{rho: rho, rhoJ: make([]*big.Int, params.N)}
	flows, err := fab.GatherAllCtx(ctx, 0, roundGainRequest)
	if err != nil {
		return nil, nil, transport.AnnotatePhase(err, "gain")
	}
	for j := 1; j <= params.N; j++ {
		msg, ok := flows[j].(*dotprod.BobMessage)
		if !ok {
			return nil, nil, fmt.Errorf("core: participant %d sent a malformed gain flow", j)
		}
		rhoJ, err := fixedbig.RandInt(rng, rho)
		if err != nil {
			return nil, nil, err
		}
		st.rhoJ[j-1] = rhoJ
		reply, err := dotprod.AliceRespond(dp, msg, vPrime, rhoJ)
		if err != nil {
			return nil, nil, fmt.Errorf("core: answering participant %d: %w", j, err)
		}
		if err := fab.Send(roundGainReply, 0, j, reply.WireBytes(dp), reply); err != nil {
			return nil, nil, transport.AnnotatePhase(err, "gain")
		}
	}

	// Phase 3: collect one submission or decline from every participant.
	obs.Begin(PhaseSubmission)
	subs, err := fab.GatherAllCtx(ctx, 0, roundSubmission)
	if err != nil {
		return nil, nil, transport.AnnotatePhase(err, "submission")
	}
	var submissions []Submission
	for j := 1; j <= params.N; j++ {
		msg, ok := subs[j].(submissionMsg)
		if !ok {
			return nil, nil, fmt.Errorf("core: participant %d sent a malformed submission", j)
		}
		if msg.Declined {
			continue
		}
		profile := workload.Profile{Values: msg.Values}
		gain, err := q.Gain(crit, profile)
		if err != nil {
			return nil, nil, fmt.Errorf("core: recomputing gain of participant %d: %w", j, err)
		}
		submissions = append(submissions, Submission{
			Participant: j - 1,
			ClaimedRank: msg.Rank,
			Profile:     profile,
			Gain:        gain,
		})
	}
	sort.Slice(submissions, func(a, b int) bool {
		if submissions[a].ClaimedRank != submissions[b].ClaimedRank {
			return submissions[a].ClaimedRank < submissions[b].ClaimedRank
		}
		return submissions[a].Participant < submissions[b].Participant
	})

	// Over-claim detection: recompute β̂ = ρ·p̂ + ρ_j from each submitted
	// profile and flag every pair whose claimed-rank order contradicts
	// the recomputed gain order.
	suspicious := map[int]bool{}
	betaHat := make([]*big.Int, len(submissions))
	for i, s := range submissions {
		pg, err := q.PartialGain(crit, s.Profile)
		if err != nil {
			return nil, nil, err
		}
		betaHat[i] = new(big.Int).Mul(rho, pg)
		betaHat[i].Add(betaHat[i], st.rhoJ[s.Participant])
	}
	for a := range submissions {
		for b := a + 1; b < len(submissions); b++ {
			rankCmp := compareInt(submissions[a].ClaimedRank, submissions[b].ClaimedRank)
			betaCmp := betaHat[b].Cmp(betaHat[a]) // descending: higher β ⇒ lower rank
			// Inconsistent when the claimed order contradicts the
			// recomputed order, or when two distinct β values claim the
			// same rank (honest equal ranks only arise from equal β).
			if (rankCmp != 0 && betaCmp != 0 && rankCmp != betaCmp) ||
				(rankCmp == 0 && betaCmp != 0) {
				suspicious[submissions[a].Participant] = true
				suspicious[submissions[b].Participant] = true
			}
		}
	}
	flagged := make([]int, 0, len(suspicious))
	for p := range suspicious {
		flagged = append(flagged, p)
	}
	sort.Ints(flagged)
	return submissions, flagged, nil
}

// ParticipantOutput is what RunParticipant reports to the harness.
type ParticipantOutput struct {
	// Rank is the participant's self-computed rank (1 = best).
	Rank int
	// Beta is the masked partial gain (unsigned l-bit form).
	Beta *big.Int
}

// RunParticipant executes participant j's side (fabric index j with
// 1 ≤ j ≤ n; index 0 is the initiator).
func RunParticipant(params Params, j int, q *workload.Questionnaire, profile workload.Profile, fab transport.Net, rng io.Reader) (ParticipantOutput, error) {
	return RunParticipantCtx(context.Background(), params, j, q, profile, fab, rng)
}

// RunParticipantCtx is RunParticipant with cancellation threaded
// through every phase, including the phase-2 sorting subprotocol.
func RunParticipantCtx(ctx context.Context, params Params, j int, q *workload.Questionnaire, profile workload.Profile, fab transport.Net, rng io.Reader) (ParticipantOutput, error) {
	var out ParticipantOutput
	if err := params.Validate(); err != nil {
		return out, err
	}
	if j < 1 || j > params.N {
		return out, fmt.Errorf("core: participant index %d outside [1, %d]", j, params.N)
	}
	// Observability: core's own sends go through the wrapped handle
	// ofab; the phase-2 SubView below is built over the RAW fabric
	// because the sorting subprotocols install their own counting
	// wrapper at the leaf (see obsv.ObservedNet).
	obs := obsv.PartyFrom(ctx)
	ofab := obsv.ObservedNet(fab, obs)
	defer obs.End()
	prime, err := params.fieldPrime()
	if err != nil {
		return out, err
	}
	dp := dotprod.DefaultSRange(prime)
	dp.Obs = obs
	dp.Workers = params.Workers
	l := params.BetaBits()

	// Phase 1: dot product with the initiator, recover β.
	obs.Begin(PhaseGain)
	wPrime, err := q.ParticipantVector(profile)
	if err != nil {
		return out, err
	}
	bob, flow, err := dotprod.NewBob(dp, wPrime, rng)
	if err != nil {
		return out, err
	}
	if err := ofab.Send(roundGainRequest, j, 0, flow.WireBytes(dp), flow); err != nil {
		return out, transport.AnnotatePhase(err, "gain")
	}
	payload, err := ofab.RecvCtx(ctx, j, 0, roundGainReply)
	if err != nil {
		return out, transport.AnnotatePhase(err, "gain")
	}
	reply, ok := payload.(*dotprod.AliceReply)
	if !ok {
		return out, fmt.Errorf("core: initiator sent a malformed gain reply")
	}
	betaField, err := bob.Finish(reply)
	if err != nil {
		return out, err
	}
	betaSigned := fixedbig.CentredMod(betaField, prime)
	betaU, err := fixedbig.ToUnsigned(betaSigned, l)
	if err != nil {
		return out, fmt.Errorf("core: masked gain exceeds the configured width: %w", err)
	}
	out.Beta = betaU

	// Phase 2 among the participants only.
	members := make([]int, params.N)
	for i := range members {
		members[i] = i + 1
	}
	sub, err := transport.NewSubView(fab, members, phase2RoundOffset)
	if err != nil {
		return out, err
	}
	switch params.Sorter {
	case SorterUnlinkable:
		res, err := unlinksort.PartyCtx(ctx, unlinksort.Config{
			Group:           params.Group,
			L:               l,
			SkipProofs:      params.SkipProofs,
			ProveDecryption: params.ProveDecryption,
			Workers:         params.Workers,
		}, j-1, sub, betaU, rng)
		if err != nil {
			return out, err
		}
		out.Rank = res.Rank
	case SorterSecretSharing:
		rank, err := ssBaselineRank(ctx, params, j-1, sub, betaU, rng)
		if err != nil {
			return out, err
		}
		out.Rank = rank
	default:
		return out, fmt.Errorf("core: unknown sorter %v", params.Sorter)
	}

	// Phase 3: submit if ranked in the top k, decline otherwise.
	obs.Begin(PhaseSubmission)
	msg := submissionMsg{Declined: true}
	bytes := 1
	if out.Rank <= params.K {
		msg = submissionMsg{Rank: out.Rank, Values: append([]int64(nil), profile.Values...)}
		bytes = 8 * (1 + len(msg.Values))
	}
	if err := ofab.Send(roundSubmission, j, 0, bytes, msg); err != nil {
		return out, transport.AnnotatePhase(err, "submission")
	}
	return out, nil
}

// ssBaselineRank runs the baseline phase 2: all β values are secret
// shared, sorted with the Batcher network, opened, and each participant
// locates her own β in the sorted sequence.
func ssBaselineRank(ctx context.Context, params Params, me int, net transport.Net, betaU *big.Int, rng io.Reader) (int, error) {
	obsv.PartyFrom(ctx).Begin(PhaseSSSort)
	prime, err := params.ssFieldPrime()
	if err != nil {
		return 0, err
	}
	cfg := ssmpc.Config{
		N:       params.N,
		Degree:  (params.N - 1) / 2, // the baseline's maximum resistance
		P:       prime,
		Kappa:   params.Kappa,
		Workers: params.Workers,
	}
	eng, err := ssmpc.NewEngineCtx(ctx, cfg, me, net, rng)
	if err != nil {
		return 0, err
	}
	shares := make([]ssmpc.Share, params.N)
	for dealer := 0; dealer < params.N; dealer++ {
		var secret *big.Int
		if dealer == me {
			secret = betaU
		}
		if shares[dealer], err = eng.Share(dealer, secret); err != nil {
			return 0, err
		}
	}
	opened, err := sssort.SortOpen(eng, shares, params.BetaBits())
	if err != nil {
		return 0, err
	}
	return sssort.RankDescending(opened, betaU), nil
}

// Inputs bundles all private inputs for an in-process run.
type Inputs struct {
	Questionnaire *workload.Questionnaire
	Criterion     workload.Criterion
	Profiles      []workload.Profile
}

// Run executes the whole framework in-process: the initiator and all
// participants as goroutines over one fabric. seed derives each party's
// deterministic randomness; pass distinct seeds for independent runs.
func Run(params Params, in Inputs, seed string, opts ...transport.Option) (*Result, *transport.Fabric, error) {
	return RunCtx(context.Background(), params, in, seed, nil, opts...)
}

// RunCtx is Run with cancellation and an optional transport wrapper.
// The first party to fail cancels every sibling, so a crash or fault
// never leaves the run hanging: the returned error is always a typed
// *AbortError naming the first failing party, phase and round. wrap, if
// non-nil, decorates the fabric every party talks through (e.g. with a
// transport.FaultNet for chaos testing); the undecorated fabric is still
// returned for trace and stats inspection.
func RunCtx(ctx context.Context, params Params, in Inputs, seed string, wrap func(transport.Net) transport.Net, opts ...transport.Option) (*Result, *transport.Fabric, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if in.Questionnaire == nil {
		return nil, nil, fmt.Errorf("core: missing questionnaire")
	}
	if len(in.Profiles) != params.N {
		return nil, nil, fmt.Errorf("core: %d profiles for %d participants", len(in.Profiles), params.N)
	}
	if in.Questionnaire.M() != params.M || in.Questionnaire.T() != params.T {
		return nil, nil, fmt.Errorf("core: questionnaire shape (m=%d, t=%d) disagrees with params (m=%d, t=%d)",
			in.Questionnaire.M(), in.Questionnaire.T(), params.M, params.T)
	}
	fab, err := transport.New(params.N+1, opts...)
	if err != nil {
		return nil, nil, err
	}
	var net transport.Net = fab
	if wrap != nil {
		net = wrap(fab)
	}
	// One failed party cancels its siblings so nobody blocks forever on a
	// message that will never arrive.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type initOut struct {
		subs    []Submission
		flagged []int
		err     error
	}
	reg := obsv.RegistryFrom(ctx)

	initCh := make(chan initOut, 1)
	go func() {
		pctx := obsv.WithParty(runCtx, reg.Party(0))
		obsv.Do(pctx, 0, func(ctx context.Context) {
			rng := fixedbig.NewDRBG(seed + "-initiator")
			subs, flagged, err := RunInitiatorCtx(ctx, params, in.Questionnaire, in.Criterion, net, rng)
			if err != nil {
				cancel()
			}
			initCh <- initOut{subs: subs, flagged: flagged, err: err}
		})
	}()

	type partOut struct {
		j   int
		out ParticipantOutput
		err error
	}
	partCh := make(chan partOut, params.N)
	for j := 1; j <= params.N; j++ {
		j := j
		go func() {
			pctx := obsv.WithParty(runCtx, reg.Party(j))
			obsv.Do(pctx, j, func(ctx context.Context) {
				rng := fixedbig.NewDRBG(fmt.Sprintf("%s-participant-%d", seed, j))
				out, err := RunParticipantCtx(ctx, params, j, in.Questionnaire, in.Profiles[j-1], net, rng)
				if err != nil {
					cancel()
				}
				partCh <- partOut{j: j, out: out, err: err}
			})
		}()
	}

	result := &Result{
		Ranks: make([]int, params.N),
		Betas: make([]*big.Int, params.N),
	}
	// Prefer the root-cause error: cancellation aborts are secondary
	// effects of the first real failure.
	var firstErr error
	keep := func(err error) {
		if err == nil {
			return
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	for i := 0; i < params.N; i++ {
		po := <-partCh
		keep(po.err)
		if po.err == nil {
			result.Ranks[po.j-1] = po.out.Rank
			result.Betas[po.j-1] = po.out.Beta
		}
	}
	io := <-initCh
	keep(io.err)
	if firstErr != nil {
		return nil, fab, transport.EnsureAbort(firstErr, -1, "framework")
	}
	result.Submissions = io.subs
	result.Suspicious = io.flagged
	return result, fab, nil
}

// ExpectedRanks computes the ground-truth descending ranks from the
// plaintext gains (test and example helper; a deployment cannot do
// this).
func ExpectedRanks(q *workload.Questionnaire, crit workload.Criterion, profiles []workload.Profile) ([]int, error) {
	gains := make([]*big.Int, len(profiles))
	for i, p := range profiles {
		g, err := q.Gain(crit, p)
		if err != nil {
			return nil, err
		}
		gains[i] = g
	}
	ranks := make([]int, len(profiles))
	for i := range gains {
		rank := 1
		for j := range gains {
			if gains[j].Cmp(gains[i]) > 0 {
				rank++
			}
		}
		ranks[i] = rank
	}
	return ranks, nil
}

func compareInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
