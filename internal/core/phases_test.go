package core

import (
	"context"
	"testing"

	"groupranking/internal/obsv"
	"groupranking/internal/unlinksort"
)

// TestEveryPhaseObserved is the observability guard: every named
// protocol phase in core and the phase-2 sorters must appear in the
// emitted trace, so no phase can silently fall out of observation when
// code moves.
func TestEveryPhaseObserved(t *testing.T) {
	runAndCollect := func(t *testing.T, sorter Sorter) map[string]bool {
		t.Helper()
		params := smallParams(t, 4)
		params.Sorter = sorter // proofs stay enabled: key-proof must show up
		// Multi-worker pools must not lose spans: every exponentiation a
		// kernel goroutine performs is still charged to the party's
		// current phase, because the span is opened before the fan-out.
		params.Workers = 3
		in := testInputs(t, params, "phase-guard")
		reg := obsv.NewRegistry()
		ctx := obsv.WithRegistry(context.Background(), reg)
		if _, _, err := RunCtx(ctx, params, in, "phase-guard-run", nil); err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, phase := range reg.Phases() {
			seen[phase] = true
		}
		return seen
	}

	t.Run("unlinkable", func(t *testing.T) {
		seen := runAndCollect(t, SorterUnlinkable)
		for _, phase := range append(append([]string{}, Phases...), unlinksort.Phases...) {
			if !seen[phase] {
				t.Errorf("phase %q missing from the trace (saw %v)", phase, keys(seen))
			}
		}
	})
	t.Run("secret-sharing", func(t *testing.T) {
		seen := runAndCollect(t, SorterSecretSharing)
		for _, phase := range append(append([]string{}, Phases...), PhaseSSSort) {
			if !seen[phase] {
				t.Errorf("phase %q missing from the trace (saw %v)", phase, keys(seen))
			}
		}
	})
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
