package core

import (
	"testing"

	"groupranking/internal/transport"
)

// TestRoundTagBandsDisjoint is the SubView round-offset collision
// regression test. The crash-recovery runtime journals and deduplicates
// messages by (peer, seq) but replays them by round tag, and the
// distributed session handshake reserves tag 0 — so the framework's
// round-tag space must stay partitioned: gain rounds in {1, 2}, every
// phase-2 sort round inside the SubView band [phase2RoundOffset, 1<<20),
// and the submission alone at 1<<20. A sorter that outgrew its band (or
// a shrunk offset) would let two different logical messages share a tag,
// which journal replay would then serve to the wrong receive. Both
// sorters run here so neither can drift out of the band unnoticed.
func TestRoundTagBandsDisjoint(t *testing.T) {
	for _, sorter := range []Sorter{SorterUnlinkable, SorterSecretSharing} {
		sorter := sorter
		t.Run(sorter.String(), func(t *testing.T) {
			params := smallParams(t, 4)
			params.Sorter = sorter
			in := testInputs(t, params, "round-bands")
			_, fab, err := Run(params, in, "round-bands-run")
			if err != nil {
				t.Fatal(err)
			}
			stats := fab.Stats()
			var gain, sort, submission int64
			for round, rs := range stats.PerRound {
				switch {
				case round == roundGainRequest || round == roundGainReply:
					gain += rs.Messages
				case round >= phase2RoundOffset && round < roundSubmission:
					sort += rs.Messages
				case round == roundSubmission:
					submission += rs.Messages
				default:
					// roundSession never appears in-process (the harness skips
					// the handshake), and nothing may ever sit between the
					// bands — that is the collision this test exists to catch.
					t.Errorf("round tag %d (%d messages) outside every band: not gain {%d,%d}, sort [%d,%d), or submission %d",
						round, rs.Messages, roundGainRequest, roundGainReply,
						phase2RoundOffset, roundSubmission, roundSubmission)
				}
			}
			for name, got := range map[string]int64{"gain": gain, "sort": sort, "submission": submission} {
				if got == 0 {
					t.Errorf("no messages in the %s band — the partition check covered nothing", name)
				}
			}
			if stats.MaxRound != roundSubmission {
				t.Errorf("max round %d, want the submission tag %d", stats.MaxRound, roundSubmission)
			}
			// The echo band (round + 1<<24) is derived per broadcast round,
			// so every protocol tag must stay below it or an echo sub-round
			// would collide with a protocol round.
			if transport.IsEchoRound(stats.MaxRound) {
				t.Errorf("max round %d reaches into the reserved echo band", stats.MaxRound)
			}
		})
	}
}
