package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/transport"
)

// establishAll runs the session round for every party whose params are
// given (indexed by party) and returns each party's error.
func establishAll(t *testing.T, params []Params) []error {
	t.Helper()
	fab, err := transport.New(len(params), transport.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, len(params))
	var wg sync.WaitGroup
	for i := range params {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = EstablishSession(params[i], i, fab)
		}()
	}
	wg.Wait()
	return errs
}

func TestEstablishSessionAgreement(t *testing.T) {
	params := smallParams(t, 3)
	all := make([]Params, params.N+1)
	for i := range all {
		all[i] = params
	}
	for i, err := range establishAll(t, all) {
		if err != nil {
			t.Errorf("party %d: %v", i, err)
		}
	}
}

func TestEstablishSessionMismatch(t *testing.T) {
	params := smallParams(t, 3)
	all := make([]Params, params.N+1)
	for i := range all {
		all[i] = params
	}
	all[2].K++ // party 2 was configured with a different top-k cut
	errs := establishAll(t, all)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("party %d accepted the session despite the mismatch", i)
		}
		if !errors.Is(err, ErrSessionMismatch) {
			t.Errorf("party %d: error %v does not carry ErrSessionMismatch", i, err)
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("party %d: error %v is not a typed abort", i, err)
		}
		if abort.Phase != PhaseSession {
			t.Errorf("party %d: abort phase %q, want %q", i, abort.Phase, PhaseSession)
		}
		// Every honest party names the misconfigured one; the
		// misconfigured party names the first honest peer.
		want := 2
		if i == 2 {
			want = 0
		}
		if abort.Party != want {
			t.Errorf("party %d: abort names party %d, want %d", i, abort.Party, want)
		}
		if i != 2 && !strings.Contains(err.Error(), "top-k cut") {
			t.Errorf("party %d: diagnosis %q does not name the disagreeing parameter", i, err)
		}
	}
}

// TestEstablishSessionCodecMismatch: a party built with a different
// wire-codec version is refused during establishment with an abort
// naming the codec field — not left to fail on an undecodable frame
// deep inside a crypto phase.
func TestEstablishSessionCodecMismatch(t *testing.T) {
	params := smallParams(t, 3)
	all := make([]Params, params.N+1)
	for i := range all {
		all[i] = params
	}
	all[1].WireCodec = 99 // party 1 speaks a future codec
	errs := establishAll(t, all)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("party %d accepted the session despite the codec skew", i)
		}
		if !errors.Is(err, ErrSessionMismatch) {
			t.Errorf("party %d: error %v does not carry ErrSessionMismatch", i, err)
		}
		if i != 1 && !strings.Contains(err.Error(), "codec version") {
			t.Errorf("party %d: diagnosis %q does not name the codec field", i, err)
		}
	}
}

// TestEstablishSessionMalformed covers a peer that talks on the session
// round without sending a session announcement at all.
func TestEstablishSessionMalformed(t *testing.T) {
	params := smallParams(t, 3)
	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rogue := params.N // party 3 broadcasts garbage instead
	if err := fab.Broadcast(roundSession, rogue, 4, "hello"); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, rogue)
	var wg sync.WaitGroup
	for i := 0; i < rogue; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = EstablishSession(params, i, fab)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("party %d accepted a malformed session announcement", i)
		}
		if !errors.Is(err, ErrSessionMismatch) {
			t.Errorf("party %d: error %v does not carry ErrSessionMismatch", i, err)
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("party %d: error %v is not a typed abort", i, err)
		}
		if abort.Party != rogue {
			t.Errorf("party %d: abort names party %d, want %d", i, abort.Party, rogue)
		}
	}
}

func TestEstablishSessionRejectsInvalidParams(t *testing.T) {
	fab, err := transport.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := EstablishSession(Params{}, 0, fab); err == nil {
		t.Fatal("invalid params accepted")
	}
}
