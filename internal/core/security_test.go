package core

import (
	"testing"

	"groupranking/internal/workload"
)

// TestTranscriptShapeIndependentOfInputs is the operational counterpart
// of the indistinguishability definitions (Definitions 5 and 7): the
// observable communication pattern — every message's round, endpoints
// and byte size — must be identical regardless of which private inputs
// the honest parties hold. If any message's presence or size depended
// on an input value, an adversary could distinguish transcripts without
// breaking any cryptography. We run the framework twice with the
// profiles of two participants swapped and require byte-for-byte equal
// traces.
func TestTranscriptShapeIndependentOfInputs(t *testing.T) {
	params := smallParams(t, 4)
	in := testInputs(t, params, "shape-base")

	swapped := in
	swapped.Profiles = append([]workload.Profile(nil), in.Profiles...)
	swapped.Profiles[1], swapped.Profiles[2] = in.Profiles[2], in.Profiles[1]

	_, fabA, err := Run(params, in, "shape-run")
	if err != nil {
		t.Fatal(err)
	}
	_, fabB, err := Run(params, swapped, "shape-run")
	if err != nil {
		t.Fatal(err)
	}
	trA, trB := fabA.Trace(), fabB.Trace()
	if len(trA) != len(trB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trA), len(trB))
	}
	// Event order may interleave across concurrent parties; compare the
	// multiset of (round, from, to, bytes) events. Phase 3 is excluded:
	// submission sizes intentionally reveal which participants are in
	// the top k (that disclosure is the protocol's output, Definition 2);
	// there we only require the multiset of sizes to match, not the
	// senders.
	count := map[[4]int]int{}
	subsA := map[int]int{}
	for _, ev := range trA {
		if ev.Round == roundSubmission {
			subsA[ev.Bytes]++
			continue
		}
		count[[4]int{ev.Round, ev.From, ev.To, ev.Bytes}]++
	}
	for _, ev := range trB {
		if ev.Round == roundSubmission {
			subsA[ev.Bytes]--
			continue
		}
		key := [4]int{ev.Round, ev.From, ev.To, ev.Bytes}
		count[key]--
		if count[key] < 0 {
			t.Fatalf("event %+v appears in the swapped run but not the base run", ev)
		}
	}
	for key, c := range count {
		if c != 0 {
			t.Fatalf("event %v missing from the swapped run", key)
		}
	}
	for size, c := range subsA {
		if c != 0 {
			t.Fatalf("submission size %d appears %+d times more in one run", size, c)
		}
	}
}

// TestTranscriptShapeIndependentOfValuesMagnitude repeats the check with
// extreme value spreads: all-minimum vs all-maximum profiles. Sizes on
// the wire are fixed-width, so magnitude must not show.
func TestTranscriptShapeIndependentOfValuesMagnitude(t *testing.T) {
	params := smallParams(t, 3)
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	crit := workload.Criterion{Values: []int64{1, 2, 3, 4}, Weights: []int64{1, 1, 1, 1}}
	low := make([]workload.Profile, params.N)
	high := make([]workload.Profile, params.N)
	maxVal := int64(1)<<uint(params.D1) - 1
	for i := range low {
		low[i] = workload.Profile{Values: []int64{0, 0, 0, 0}}
		high[i] = workload.Profile{Values: []int64{maxVal, maxVal, maxVal, maxVal}}
	}
	_, fabLow, err := Run(params, Inputs{Questionnaire: q, Criterion: crit, Profiles: low}, "mag-run")
	if err != nil {
		t.Fatal(err)
	}
	_, fabHigh, err := Run(params, Inputs{Questionnaire: q, Criterion: crit, Profiles: high}, "mag-run")
	if err != nil {
		t.Fatal(err)
	}
	a, b := fabLow.Stats(), fabHigh.Stats()
	for p := range a.BytesSent {
		if a.BytesSent[p] != b.BytesSent[p] {
			t.Errorf("party %d: %d bytes with low values, %d with high", p, a.BytesSent[p], b.BytesSent[p])
		}
	}
	if a.DistinctRounds != b.DistinctRounds {
		t.Errorf("round counts differ: %d vs %d", a.DistinctRounds, b.DistinctRounds)
	}
}

// TestBetasHideGainMagnitude checks the masking property behind
// Definition 4/5 at the framework level: the observable β values are
// masked by ρ and ρ_j, so the initiator's recomputation aside, a β value
// alone must not reveal the partial gain (β/ρ is unknown without ρ).
// Operationally: rerunning with a different seed (hence different ρ)
// yields entirely different β values for identical inputs, while ranks
// are unchanged.
func TestBetasHideGainMagnitude(t *testing.T) {
	params := smallParams(t, 3)
	in := testInputs(t, params, "mask")
	r1, _, err := Run(params, in, "mask-seed-1")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(params, in, "mask-seed-2")
	if err != nil {
		t.Fatal(err)
	}
	sameBetas := 0
	for j := range r1.Betas {
		if r1.Ranks[j] != r2.Ranks[j] {
			t.Errorf("participant %d: rank changed across seeds (%d vs %d)", j, r1.Ranks[j], r2.Ranks[j])
		}
		if r1.Betas[j].Cmp(r2.Betas[j]) == 0 {
			sameBetas++
		}
	}
	if sameBetas == len(r1.Betas) {
		t.Error("β values identical across masking seeds; ρ masking looks inert")
	}
}
