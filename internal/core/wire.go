package core

import (
	"fmt"

	"groupranking/internal/wirecodec"
)

// Hand-rolled wire codecs for the session layer's own messages. The
// announcement is the first frame a party ever sends, so its codec is
// deliberately flat fixed-width fields — any build that can parse a
// frame header at all can parse it far enough for the version
// comparison in diff() to produce a named mismatch.

func appendSessionMsg(dst []byte, m sessionMsg) []byte {
	for _, v := range []int{m.Version, m.Codec, m.N, m.M, m.T, m.D1, m.D2, m.H, m.K, m.L, m.Sorter, m.Kappa} {
		dst = wirecodec.AppendI64(dst, int64(v))
	}
	dst = wirecodec.AppendString(dst, m.Group)
	dst = wirecodec.AppendBool(dst, m.SkipProofs)
	dst = wirecodec.AppendBool(dst, m.ProveDecryption)
	dst = wirecodec.AppendString(dst, m.TraceID)
	return dst
}

func decodeSessionMsg(data []byte) (sessionMsg, error) {
	r := wirecodec.NewReader(data)
	var m sessionMsg
	for _, p := range []*int{&m.Version, &m.Codec, &m.N, &m.M, &m.T, &m.D1, &m.D2, &m.H, &m.K, &m.L, &m.Sorter, &m.Kappa} {
		*p = r.Int()
	}
	m.Group = r.String()
	m.SkipProofs = r.Bool()
	m.ProveDecryption = r.Bool()
	m.TraceID = r.String()
	if err := r.Finish(); err != nil {
		return sessionMsg{}, fmt.Errorf("core: session announcement: %w", err)
	}
	return m, nil
}

func init() {
	wirecodec.Register(wirecodec.IDRangeCore, "session announcement",
		[]any{sessionMsg{}},
		func(dst []byte, v any) ([]byte, error) { return appendSessionMsg(dst, v.(sessionMsg)), nil },
		func(data []byte) (any, error) { return decodeSessionMsg(data) })

	wirecodec.Register(wirecodec.IDRangeCore+1, "profile submission",
		[]any{submissionMsg{}},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(submissionMsg)
			dst = wirecodec.AppendBool(dst, m.Declined)
			dst = wirecodec.AppendI64(dst, int64(m.Rank))
			dst = wirecodec.AppendU32(dst, uint32(len(m.Values)))
			for _, val := range m.Values {
				dst = wirecodec.AppendI64(dst, val)
			}
			return dst, nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			var m submissionMsg
			m.Declined = r.Bool()
			m.Rank = r.Int()
			n := r.Count(8)
			m.Values = make([]int64, 0, n)
			for i := 0; i < n; i++ {
				m.Values = append(m.Values, r.I64())
			}
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("core: submission: %w", err)
			}
			return m, nil
		})
}
