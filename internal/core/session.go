package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/wirecodec"
)

// ErrSessionMismatch is the cause carried by the typed abort when the
// session-establishment round finds two parties configured with
// incompatible protocol parameters (different group, bit widths, k,
// sorter, ...). Matching it with errors.Is distinguishes "we never
// agreed what to run" from mid-protocol failures.
var ErrSessionMismatch = errors.New("core: session parameters disagree")

// sessionVersion guards the wire format itself: parties running
// incompatible builds abort in the handshake instead of failing with
// a gob decode error deep inside a crypto phase. Version 2 added the
// TraceID field to the announcement; version 3 added the pinned codec
// version when the binary wire codecs replaced gob.
const sessionVersion = 3

// sessionMsg is the session-establishment announcement every party
// broadcasts before any crypto is spent. It pins every parameter whose
// disagreement would otherwise surface as garbage (wrong field sizes,
// undecodable group elements, diverging rankings) rather than an error.
type sessionMsg struct {
	Version int
	// Codec is the wire-codec version (wirecodec.Version unless the
	// deployment overrides it). Pinning it here turns a cross-build
	// codec skew into a named session abort during establishment
	// instead of an undecodable frame mid-protocol.
	Codec           int
	N, M, T         int
	D1, D2, H, K    int
	L               int // derived masked-gain width, double-checked explicitly
	Group           string
	Sorter          int
	SkipProofs      bool
	ProveDecryption bool
	Kappa           int
	// TraceID is the run-level trace identifier proposal. Unlike every
	// other field it is deliberately excluded from diff(): party 0's
	// proposal wins and the others adopt it, so all parties stamp their
	// telemetry spans with one shared ID without an extra round.
	TraceID string
}

// sessionFromParams builds the canonical announcement for params,
// normalising defaulted fields so equivalent configurations compare
// equal.
func sessionFromParams(p Params) sessionMsg {
	kappa := p.Kappa
	if kappa <= 0 {
		kappa = 40
	}
	codec := p.WireCodec
	if codec == 0 {
		codec = wirecodec.Version
	}
	return sessionMsg{
		Version: sessionVersion,
		Codec:   codec,
		N:       p.N, M: p.M, T: p.T,
		D1: p.D1, D2: p.D2, H: p.H, K: p.K,
		L:               p.BetaBits(),
		Group:           p.Group.Name(),
		Sorter:          int(p.Sorter),
		SkipProofs:      p.SkipProofs,
		ProveDecryption: p.ProveDecryption,
		Kappa:           kappa,
	}
}

// diff returns "" when the announcements agree, otherwise a description
// of the first disagreeing parameter.
func (m sessionMsg) diff(o sessionMsg) string {
	switch {
	case m.Version != o.Version:
		return fmt.Sprintf("wire version (mine %d, theirs %d)", m.Version, o.Version)
	case m.Codec != o.Codec:
		return fmt.Sprintf("codec version (mine %d, theirs %d)", m.Codec, o.Codec)
	case m.N != o.N:
		return fmt.Sprintf("party count n (mine %d, theirs %d)", m.N, o.N)
	case m.M != o.M:
		return fmt.Sprintf("attribute dimension m (mine %d, theirs %d)", m.M, o.M)
	case m.T != o.T:
		return fmt.Sprintf("equal-to count t (mine %d, theirs %d)", m.T, o.T)
	case m.D1 != o.D1:
		return fmt.Sprintf("attribute bits d1 (mine %d, theirs %d)", m.D1, o.D1)
	case m.D2 != o.D2:
		return fmt.Sprintf("weight bits d2 (mine %d, theirs %d)", m.D2, o.D2)
	case m.H != o.H:
		return fmt.Sprintf("mask bits h (mine %d, theirs %d)", m.H, o.H)
	case m.K != o.K:
		return fmt.Sprintf("top-k cut (mine %d, theirs %d)", m.K, o.K)
	case m.L != o.L:
		return fmt.Sprintf("masked-gain width l (mine %d, theirs %d)", m.L, o.L)
	case m.Group != o.Group:
		return fmt.Sprintf("group (mine %s, theirs %s)", m.Group, o.Group)
	case m.Sorter != o.Sorter:
		return fmt.Sprintf("sorter (mine %s, theirs %s)", Sorter(m.Sorter), Sorter(o.Sorter))
	case m.SkipProofs != o.SkipProofs:
		return fmt.Sprintf("SkipProofs (mine %t, theirs %t)", m.SkipProofs, o.SkipProofs)
	case m.ProveDecryption != o.ProveDecryption:
		return fmt.Sprintf("ProveDecryption (mine %t, theirs %t)", m.ProveDecryption, o.ProveDecryption)
	case m.Kappa != o.Kappa:
		return fmt.Sprintf("statistical parameter kappa (mine %d, theirs %d)", m.Kappa, o.Kappa)
	}
	return ""
}

// wireBytes is the nominal announcement size for the transport stats.
func (m sessionMsg) wireBytes() int { return 64 + len(m.Group) }

// DeriveTraceID maps a party's resolved seed to the trace identifier
// it proposes in the session round. The derivation is deterministic so
// a crash-recovered party (same journaled seed) proposes the same ID
// and the merged trace stays coherent across restarts.
func DeriveTraceID(seed string) string {
	sum := sha256.Sum256([]byte("groupranking-trace-v1|" + seed))
	return hex.EncodeToString(sum[:8])
}

// EstablishSession runs EstablishSessionCtx without cancellation or a
// trace-ID proposal.
func EstablishSession(params Params, me int, fab transport.Net) error {
	_, err := EstablishSessionCtx(context.Background(), params, me, fab, "")
	return err
}

// EstablishSessionCtx runs the session-establishment round: every party
// broadcasts its view of the protocol parameters and checks everyone
// else's against it, so a misconfigured deployment aborts with a typed
// *transport.AbortError (cause ErrSessionMismatch, naming the
// disagreeing party and parameter) before any crypto is spent. It uses
// round tag 0, below every protocol round, and must run on the same
// fabric as the subsequent phases. The in-process harness (RunCtx)
// skips it — all goroutines share one Params value by construction —
// so in-process message and operation counts are unchanged; the
// distributed entry points always run it.
//
// The round doubles as trace-ID agreement: each party's announcement
// carries its proposal (usually DeriveTraceID of its seed), party 0's
// proposal wins, and the agreed ID is returned so the caller can stamp
// its telemetry. No extra message or byte is spent on it.
func EstablishSessionCtx(ctx context.Context, params Params, me int, fab transport.Net, propose string) (string, error) {
	if err := params.Validate(); err != nil {
		return "", err
	}
	obs := obsv.PartyFrom(ctx)
	net := obsv.ObservedNet(fab, obs)
	obs.Begin(PhaseSession)
	mine := sessionFromParams(params)
	mine.TraceID = propose
	// Echo broadcast: on real fabrics the announcement is followed by a
	// digest sub-round, so an initiator that tells different parties to
	// run different protocols is identified instead of producing n
	// mutually confusing mismatch aborts. In-process nets skip the echo
	// entirely (one memory space cannot equivocate).
	all, err := transport.EchoBroadcastCtx(ctx, net, me, roundSession, mine.wireBytes(), mine)
	if err != nil {
		return "", transport.AnnotatePhase(err, PhaseSession)
	}
	for j, payload := range all {
		if j == me {
			continue
		}
		theirs, ok := payload.(sessionMsg)
		if !ok {
			return "", transport.Abort(j, roundSession, PhaseSession,
				fmt.Errorf("%w: party %d sent a malformed session announcement", ErrSessionMismatch, j))
		}
		if d := mine.diff(theirs); d != "" {
			return "", transport.Abort(j, roundSession, PhaseSession,
				fmt.Errorf("%w: party %d disagrees on %s", ErrSessionMismatch, j, d))
		}
	}
	traceID := propose
	if me != 0 {
		if m0, ok := all[0].(sessionMsg); ok {
			traceID = m0.TraceID
		}
	}
	return traceID, nil
}
