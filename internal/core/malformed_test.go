package core

import (
	"fmt"
	"math/big"
	"testing"
	"time"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
	"groupranking/internal/transport"
)

// These tests pin down the framework's behaviour against malformed
// messages: every protocol role must reject garbage with a descriptive
// error instead of panicking or deadlocking (the fabric timeout converts
// the resulting stalls of other parties into clean errors).

func TestInitiatorRejectsMalformedGainFlow(t *testing.T) {
	params := smallParams(t, 2)
	q := testInputs(t, params, "mal-flow").Questionnaire
	crit := testInputs(t, params, "mal-flow").Criterion
	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rng := fixedbig.NewDRBG("mal-flow-init")
		_, _, err := RunInitiator(params, q, crit, fab, rng)
		done <- err
	}()
	// Participant 1 sends garbage instead of a dot-product flow;
	// participant 2 sends nothing (timeout covers it).
	if err := fab.Send(roundGainRequest, 1, 0, 4, "garbage"); err != nil {
		t.Fatal(err)
	}
	if err := fab.Send(roundGainRequest, 2, 0, 4, 42); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("initiator accepted a malformed gain flow")
	}
}

func TestParticipantRejectsMalformedGainReply(t *testing.T) {
	params := smallParams(t, 2)
	in := testInputs(t, params, "mal-reply")
	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rng := fixedbig.NewDRBG("mal-reply-part")
		_, err := RunParticipant(params, 1, in.Questionnaire, in.Profiles[0], fab, rng)
		done <- err
	}()
	// Play a fake initiator: absorb the flow, answer with garbage.
	if _, err := fab.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := fab.Send(roundGainReply, 0, 1, 4, "not a reply"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("participant accepted a malformed gain reply")
	}
}

func TestInitiatorRejectsMalformedSubmission(t *testing.T) {
	params := smallParams(t, 2)
	in := testInputs(t, params, "mal-sub")
	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	prime, err := params.fieldPrime()
	if err != nil {
		t.Fatal(err)
	}
	dp := dotprod.DefaultSRange(prime)
	done := make(chan error, 1)
	go func() {
		rng := fixedbig.NewDRBG("mal-sub-init")
		_, _, err := RunInitiator(params, in.Questionnaire, in.Criterion, fab, rng)
		done <- err
	}()
	// Both participants run an honest phase 1 and then submit garbage
	// instead of a submissionMsg.
	for j := 1; j <= params.N; j++ {
		j := j
		go func() {
			rng := fixedbig.NewDRBG(fmt.Sprintf("mal-sub-%d", j))
			w, err := in.Questionnaire.ParticipantVector(in.Profiles[j-1])
			if err != nil {
				t.Error(err)
				return
			}
			bob, flow, err := dotprod.NewBob(dp, w, rng)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fab.Send(roundGainRequest, j, 0, 8, flow); err != nil {
				t.Error(err)
				return
			}
			payload, err := fab.Recv(j, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := bob.Finish(payload.(*dotprod.AliceReply)); err != nil {
				t.Error(err)
				return
			}
			if err := fab.Send(roundSubmission, j, 0, 4, big.NewInt(99)); err != nil {
				t.Error(err)
			}
		}()
	}
	if err := <-done; err == nil {
		t.Fatal("initiator accepted a malformed submission")
	}
}

func TestInitiatorRejectsSubmissionWithWrongDimensions(t *testing.T) {
	params := smallParams(t, 2)
	in := testInputs(t, params, "mal-dim")
	fab, err := transport.New(params.N+1, transport.WithRecvTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	prime, err := params.fieldPrime()
	if err != nil {
		t.Fatal(err)
	}
	dp := dotprod.DefaultSRange(prime)
	done := make(chan error, 1)
	go func() {
		rng := fixedbig.NewDRBG("mal-dim-init")
		_, _, err := RunInitiator(params, in.Questionnaire, in.Criterion, fab, rng)
		done <- err
	}()
	for j := 1; j <= params.N; j++ {
		j := j
		go func() {
			rng := fixedbig.NewDRBG(fmt.Sprintf("mal-dim-%d", j))
			w, err := in.Questionnaire.ParticipantVector(in.Profiles[j-1])
			if err != nil {
				t.Error(err)
				return
			}
			bob, flow, err := dotprod.NewBob(dp, w, rng)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fab.Send(roundGainRequest, j, 0, 8, flow); err != nil {
				t.Error(err)
				return
			}
			payload, err := fab.Recv(j, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := bob.Finish(payload.(*dotprod.AliceReply)); err != nil {
				t.Error(err)
				return
			}
			// A submission whose profile has the wrong dimension must be
			// rejected when the initiator recomputes the gain.
			msg := submissionMsg{Rank: 1, Values: []int64{1}}
			if err := fab.Send(roundSubmission, j, 0, 16, msg); err != nil {
				t.Error(err)
			}
		}()
	}
	if err := <-done; err == nil {
		t.Fatal("initiator accepted a submission with wrong dimensions")
	}
}

func TestRunParticipantIndexValidation(t *testing.T) {
	params := smallParams(t, 2)
	in := testInputs(t, params, "idx")
	fab, err := transport.New(params.N + 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG("idx")
	if _, err := RunParticipant(params, 0, in.Questionnaire, in.Profiles[0], fab, rng); err == nil {
		t.Error("participant index 0 (the initiator) accepted")
	}
	if _, err := RunParticipant(params, params.N+1, in.Questionnaire, in.Profiles[0], fab, rng); err == nil {
		t.Error("out-of-range participant index accepted")
	}
}
