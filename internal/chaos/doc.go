// Package chaos holds the randomized fault-injection test suite for the
// protocol runtime. Each test drives a full protocol run — the complete
// three-phase framework or the standalone unlinkable sort — under a
// seeded, reproducible fault schedule (message drops, delays,
// duplicates, reorders, corruption, link severs and party crashes) and
// asserts the runtime's safety contract:
//
//   - a run either produces the correct ranking or fails with a clean
//     typed *transport.AbortError — never a wrong ranking;
//   - no run hangs: cancellation, receive timeouts and crash detection
//     bound every wait;
//   - no run leaks goroutines: every party winds down after abort.
//
// There is no non-test code here; the package exists so the chaos suite
// has a home that is independent of any one protocol package.
package chaos
