package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/leakcheck"
	"groupranking/internal/obsv"
	"groupranking/internal/telemetry"
	"groupranking/internal/tracemerge"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// httpGet fetches one admin endpoint and returns status plus body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAbortHealthzAndPartialTrace is the abort-path observability
// contract over a real recovering TCP mesh: when a party dies
// mid-protocol, the survivors' /healthz must flip non-200 naming the
// dead peer BEFORE the blame abort fires (the grace window is exactly
// when an operator can still act), the mid-run trace must already
// carry the open span at the failure point, and after the abort the
// peer is reported dead.
func TestAbortHealthzAndPartialTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh test skipped in short mode")
	}
	leakcheck.Check(t)
	core.RegisterWire()
	g := chaosGroup(t)
	params := core.Params{
		N: 3, M: 2, T: 1, D1: 4, D2: 3, H: 4, K: 2,
		Group: g, SkipProofs: true,
	}
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG("chaos-telemetry-abort")
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	const (
		seed    = "chaos-telemetry-abort"
		victim  = 2
		timeout = 30 * time.Second
		grace   = 2 * time.Second
	)
	nParties := params.N + 1
	addrs, err := transport.FreeLoopbackAddrs(nParties)
	if err != nil {
		t.Fatal(err)
	}

	// Party 0 runs with live telemetry and an observer, exactly as
	// `rankparty -admin -trace` wires them.
	obs := obsv.NewRegistry()
	tel := telemetry.NewRegistry()

	fabrics := make([]*transport.RecoveringTCPFabric, nParties)
	ferrs := make([]error, nParties)
	var fwg sync.WaitGroup
	for me := 0; me < nParties; me++ {
		me := me
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			opts := transport.RecoverOptions{
				SessionID: "telemetry-abort", Epoch: 1,
				Grace: grace, Heartbeat: 25 * time.Millisecond,
			}
			if me == 0 {
				opts.Telemetry = tel
			}
			fabrics[me], ferrs[me] = transport.NewRecoveringTCPFabric(addrs, me, timeout, opts)
		}()
	}
	fwg.Wait()
	for me, err := range ferrs {
		if err != nil {
			t.Fatalf("party %d fabric: %v", me, err)
		}
	}
	defer func() {
		for _, f := range fabrics {
			f.Close()
		}
	}()
	tel.SetHealthSource(fabrics[0])
	srv := httptest.NewServer(telemetry.AdminMux(tel, obs.WritePrometheus))
	defer srv.Close()

	if code, body := httpGet(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz with the mesh fully up = %d %q, want 200", code, body)
	}

	roleErrs := make([]error, nParties)
	p0done := make(chan struct{})
	var wg sync.WaitGroup
	for me := 0; me < nParties; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			var net transport.Net = fabrics[me]
			if me == victim {
				net = &killNet{Net: net, after: 5} // dies in the gain phase
			}
			if me == 0 {
				defer close(p0done)
				ctx = obsv.WithRegistry(ctx, obs)
				ctx = obsv.WithParty(ctx, obs.Party(0))
			}
			// A party whose role fails behaves like the real deployment: the
			// process exits and its sockets die with it, so the abort
			// cascades through peers' grace windows instead of leaving them
			// to run out the full protocol timeout.
			defer func() {
				if roleErrs[me] != nil {
					fabrics[me].Close()
				}
			}()
			traceID, err := core.EstablishSessionCtx(ctx, params, me, net, core.DeriveTraceID(seed))
			if err != nil {
				roleErrs[me] = err
				return
			}
			if me == 0 {
				obs.SetTraceID(traceID)
				_, _, roleErrs[me] = core.RunInitiatorCtx(ctx, params, q, crit, net,
					fixedbig.NewDRBG(core.InitiatorSeed(seed)))
				return
			}
			_, roleErrs[me] = core.RunParticipantCtx(ctx, params, me, q, profiles[me-1], net,
				fixedbig.NewDRBG(core.ParticipantSeed(seed, me)))
		}()
	}

	// The victim dies ~immediately; survivors sit in the grace window
	// for 2s before blaming. /healthz must flip inside that window.
	var flippedBody string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpGet(t, srv.URL+"/healthz")
		if code != 200 && strings.Contains(body, fmt.Sprintf(`"peer":%d`, victim)) &&
			(strings.Contains(body, telemetry.StateReconnecting) || strings.Contains(body, telemetry.StateDead)) {
			flippedBody = body
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if flippedBody == "" {
		t.Fatal("healthz never flipped non-200 naming the dead peer")
	}
	select {
	case <-p0done:
		t.Error("healthz flipped only after the abort already fired; operators need the signal during the grace window")
	default:
	}

	// The mid-run trace must already carry the failure point: party 0 is
	// blocked in a phase right now, so its current span exports open.
	var mid bytes.Buffer
	if err := obs.WriteJSONL(&mid); err != nil {
		t.Fatal(err)
	}
	midSpans, err := tracemerge.Load(bytes.NewReader(mid.Bytes()))
	if err != nil {
		t.Fatalf("mid-run trace is not valid JSONL: %v", err)
	}
	foundOpen := false
	for _, s := range midSpans {
		if s.Party == 0 && s.Open {
			foundOpen = true
			if s.TraceID == "" {
				t.Error("open span carries no trace ID")
			}
		}
	}
	if !foundOpen {
		t.Errorf("mid-run trace has no open span for the blocked party; spans: %+v", midSpans)
	}

	wg.Wait()

	if !errors.Is(roleErrs[victim], errKilled) {
		t.Errorf("victim's error = %v, want the scheduled kill", roleErrs[victim])
	}
	// Every survivor must end in a typed abort; the ones blocked on the
	// victim directly must blame it (peers blocked on a survivor that
	// already aborted and exited legitimately blame that survivor — the
	// cascade names the proximate dead peer, healthz named the first).
	sawVictimBlame := false
	for me, err := range roleErrs {
		if me == victim {
			continue
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("survivor %d: no typed abort, got %v", me, err)
		}
		if abort.Party == victim {
			sawVictimBlame = true
		}
	}
	if !sawVictimBlame {
		t.Error("no survivor blamed the party that actually died")
	}

	// After the blame window the peer is dead, and the partial trace
	// still names the aborted phase (the existing contract).
	code, body := httpGet(t, srv.URL+"/healthz")
	if code == 200 || !strings.Contains(body, telemetry.StateDead) {
		t.Errorf("healthz after the abort = %d %q, want non-200 with a dead peer", code, body)
	}
	var abort *transport.AbortError
	errors.As(roleErrs[0], &abort)
	phases := make(map[string]bool)
	for _, sp := range obs.Spans() {
		phases[sp.Phase] = true
	}
	if abort != nil && !phases[abort.Phase] {
		t.Errorf("abort names phase %q but the final trace only has %v", abort.Phase, phases)
	}

	// The metrics endpoint serves both registries' counters to the end.
	code, body = httpGet(t, srv.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "transport_msgs_total") ||
		!strings.Contains(body, "grouprank_ops_total") {
		t.Errorf("metrics after the abort = %d; missing transport or protocol counters", code)
	}
}
