package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"groupranking/internal/blame"
	"groupranking/internal/fixedbig"
	"groupranking/internal/leakcheck"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
)

// Sub-round composition under active tampering: the framework runs its
// sort sub-protocol over a SubView (round-offset window) of the outer
// fabric, so corruption injected at a sub-round boundary must still
// surface as a typed abort naming the TRUE sender in sub-view
// coordinates — whether the sub-view sits over an in-process FaultNet
// or over a real recovering TCP mesh.

// assertSubViewBlame checks every honest member's error: failures must
// be typed aborts, and every abort carrying evidence (a certificate)
// must name the cheater in SUB-VIEW coordinates and survive offline
// verification. Cert-less aborts are secondary effects — a gather cut
// short by a sibling's cancellation — and carry no accusation.
func assertSubViewBlame(t *testing.T, errs []error, cheater int) {
	t.Helper()
	blamed := 0
	for p, err := range errs {
		if p == cheater || err == nil {
			continue
		}
		ae, ok := transport.IsAbort(err)
		if !ok {
			if errors.Is(err, context.Canceled) {
				continue
			}
			t.Fatalf("sub-view party %d failed without a typed abort: %v", p, err)
		}
		cert := transport.CertOf(err)
		if cert == nil {
			continue
		}
		if cert.Accused != cheater {
			t.Fatalf("sub-view party %d's certificate accuses %d, cheater is %d — FALSE ACCUSATION\nabort: %v\ncert: %s",
				p, cert.Accused, cheater, ae, cert)
		}
		if ae.Party != cheater {
			t.Fatalf("sub-view party %d's abort names party %d, cheater is %d: %v", p, ae.Party, cheater, ae)
		}
		if verr := blame.Verify(cert); verr != nil {
			t.Fatalf("sub-view party %d's certificate fails offline verification: %v\ncert: %s", p, verr, cert)
		}
		blamed++
	}
	if blamed == 0 {
		t.Fatalf("no honest sub-view member blamed the cheater with a certificate; errors: %v", errs)
	}
}

// TestSubViewOverFaultNetTamper corrupts one member's outgoing key
// share inside a sub-round window of a larger in-process fabric: the
// abort must name the cheater by its SUB-VIEW index, not its parent
// index, and carry a verifiable certificate.
func TestSubViewOverFaultNetTamper(t *testing.T) {
	leakcheck.Check(t)
	unlinksort.RegisterWire()
	g := chaosGroup(t)
	const offset = 20
	members := []int{1, 2, 3} // parent indices; cheater is parent 2 = sub-view 1
	cheater := 1
	fab, err := transport.New(5, transport.WithRecvTimeout(byzRecvWindow))
	if err != nil {
		t.Fatal(err)
	}
	plan := transport.FaultPlan{
		Seed: 7,
		// Parent coordinates: sub-view round 1 (key shares) maps to
		// parent round offset+1; the cheater's parent index is 2.
		Rules: []transport.FaultRule{{Kind: transport.FaultCorrupt, Round: offset + roundKeys, From: 2, To: -1}},
	}
	fn := transport.NewFaultNet(fab, plan)
	sv, err := transport.NewSubView(fn, members, offset)
	if err != nil {
		t.Fatal(err)
	}
	cfg := unlinksort.Config{Group: g, L: 4, SkipProofs: true}
	vals := []int64{9, 5, 12}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for p := range members {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := fixedbig.NewDRBG(fmt.Sprintf("sv-faultnet-%d", p))
			_, err := unlinksort.PartyCtx(ctx, cfg, p, sv, big.NewInt(vals[p]), rng)
			if err != nil {
				errs[p] = err
				cancel()
			}
		}()
	}
	wg.Wait()
	fn.Flush()
	fn.Wait()
	assertSubViewBlame(t, errs, cheater)
}

// TestSubViewOverRecoveringMeshTamper runs the same attack over a real
// recovering TCP mesh: the cheater's endpoint corrupts its outgoing
// key-share legs inside the sub-round window, and the echo sub-round
// (active on real fabrics) must attribute the tampering to the cheater
// at every honest member — a party is responsible for its own links.
func TestSubViewOverRecoveringMeshTamper(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP mesh")
	}
	leakcheck.Check(t)
	unlinksort.RegisterWire()
	g := chaosGroup(t)
	const offset = byzSubOffset
	const n = 3
	const cheater = 1
	addrs, err := transport.FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := unlinksort.Config{Group: g, L: 4, SkipProofs: true}
	vals := []int64{9, 5, 12}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			fab, err := transport.NewRecoveringTCPFabric(addrs, p, byzRecvWindow,
				transport.RecoverOptions{SessionID: "sv-byz-mesh", Grace: 2 * time.Second})
			if err != nil {
				errs[p] = err
				cancel()
				return
			}
			defer fab.Close()
			var net transport.Net = fab
			var fn *transport.FaultNet
			if p == cheater {
				// Corrupt the leg to member 0 only: the honest members'
				// digests of the same broadcast then disagree with each
				// other, so the honest echoes alone convict the cheater —
				// no reliance on the cheater's own echo surviving its exit.
				fn = transport.NewFaultNet(fab, transport.FaultPlan{
					Seed:  11,
					Rules: []transport.FaultRule{{Kind: transport.FaultCorrupt, Round: offset + roundKeys, From: cheater, To: 0}},
				})
				net = fn
			}
			sv, err := transport.NewSubView(net, []int{0, 1, 2}, offset)
			if err != nil {
				errs[p] = err
				cancel()
				return
			}
			rng := fixedbig.NewDRBG(fmt.Sprintf("sv-mesh-%d", p))
			_, err = unlinksort.PartyCtx(ctx, cfg, p, sv, big.NewInt(vals[p]), rng)
			if err != nil {
				errs[p] = err
				if p == cheater {
					// The cheater often detects its own equivocation first
					// (the honest echoes disagree with its claim). Its exit
					// must not cut the honest members off mid-verdict: drain
					// so its in-flight echo frames reach them, and leave
					// cancellation to the honest aborts.
					fab.Drain(0)
				} else {
					cancel()
				}
			}
			if fn != nil {
				fn.Flush()
				fn.Wait()
			}
		}()
	}
	wg.Wait()
	assertSubViewBlame(t, errs, cheater)
}
