package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"groupranking/internal/blame"
	"groupranking/internal/fixedbig"
	"groupranking/internal/leakcheck"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
)

// Byzantine chaos suite: every schedule injects one actively malicious
// party — a crypto-level deviation (bad key proof, wrong-key strip,
// own-set tampering), a wire-level attack (equivocated broadcast,
// tampered ciphertext, replayed stale round) or both — and asserts the
// covert-security contract:
//
//  1. honest parties never emit a wrong ranking (they abort, or their
//     output is correct);
//  2. at least one honest party's abort carries a blame certificate;
//  3. every certificate accuses the injected adversary — never an
//     honest party — and the offline verifier (internal/blame)
//     confirms it from the recorded evidence alone.

// Protocol round tags of the unlinkable sort, fixed by its wire format
// (the package keeps them unexported; the suite targets them by value).
const (
	roundKeys     = 1
	roundBits     = 5
	roundTaus     = 6
	roundChain    = 7 // chain hop j sends at roundChain + j
	byzSubOffset  = 64
	byzParties    = 4
	byzRecvWindow = 5 * time.Second
)

var byzVals = []int64{20, 7, 29, 13}
var byzRanks = []int{2, 4, 1, 3}

// runByz executes one schedule: all parties run the unlinkable sort
// over a shared in-process fabric, optionally wrapped in a FaultNet,
// and every party's error is returned (unlike RunCtx, which collapses
// them to one) so the suite can assert no certificate anywhere accuses
// an honest party.
func runByz(t *testing.T, cfg unlinksort.Config, seed string, plan *transport.FaultPlan) ([]unlinksort.Result, []error) {
	t.Helper()
	// The echo sub-round digests payloads through gob even in-process
	// once a FaultNet injects Byzantine behaviour.
	unlinksort.RegisterWire()
	n := len(byzVals)
	fab, err := transport.New(n, transport.WithRecvTimeout(byzRecvWindow))
	if err != nil {
		t.Fatal(err)
	}
	var net transport.Net = fab
	var fn *transport.FaultNet
	if plan != nil {
		fn = transport.NewFaultNet(fab, *plan)
		net = fn
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := make([]unlinksort.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := fixedbig.NewDRBG(fmt.Sprintf("%s-party-%d", seed, p))
			res, err := unlinksort.PartyCtx(ctx, cfg, p, net, big.NewInt(byzVals[p]), rng)
			if err != nil {
				errs[p] = err
				cancel() // unblock the siblings promptly
				return
			}
			results[p] = res
		}()
	}
	wg.Wait()
	if fn != nil {
		fn.Flush()
		fn.Wait()
	}
	return results, errs
}

// assertBlamed enforces the contract on one adversarial schedule's
// outcome: no honest party finished with a wrong rank, at least one
// certificate was issued, and every certificate accuses the adversary
// and survives offline verification. wantCheck, when non-empty,
// additionally pins the check every certificate must carry.
func assertBlamed(t *testing.T, results []unlinksort.Result, errs []error, adversary int, wantCheck string) {
	t.Helper()
	certs := 0
	for p, err := range errs {
		if err == nil {
			if p != adversary && results[p].Rank != byzRanks[p] {
				t.Fatalf("honest party %d finished with rank %d, want %d — wrong ranking under attack",
					p, results[p].Rank, byzRanks[p])
			}
			continue
		}
		ae, ok := transport.IsAbort(err)
		if !ok {
			if errors.Is(err, context.Canceled) {
				continue
			}
			t.Fatalf("party %d failed without a typed abort: %v", p, err)
		}
		cert := transport.CertOf(err)
		if cert == nil {
			continue // secondary effect (cancellation, timeout): carries no evidence
		}
		certs++
		if cert.Accused != adversary {
			t.Fatalf("party %d's certificate accuses party %d, adversary is %d — FALSE ACCUSATION\nabort: %v\ncert: %s",
				p, cert.Accused, adversary, ae, cert)
		}
		if ae.Party != adversary {
			t.Fatalf("party %d's abort names party %d, adversary is %d: %v", p, ae.Party, adversary, ae)
		}
		if wantCheck != "" && cert.Check != wantCheck {
			t.Fatalf("party %d's certificate carries check %q, want %q: %s", p, cert.Check, wantCheck, cert)
		}
		if verr := blame.Verify(cert); verr != nil {
			t.Fatalf("party %d's certificate fails offline verification: %v\ncert: %s", p, verr, cert)
		}
	}
	if certs == 0 {
		t.Fatalf("no party issued a blame certificate; errors: %v", errs)
	}
}

// TestByzCryptoDeviations injects the protocol-level deviations: a key
// proof that cannot verify, a chain hop stripping with an unregistered
// key, and a hop tampering with its own pass-through set. The chain
// deviations run under ProveDecryption and only on parties before the
// last hop — the final hop's strip has no successor to verify it
// (documented protocol limitation, DESIGN.md §3.6).
func TestByzCryptoDeviations(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	seeds := 4
	if testing.Short() {
		seeds = 1
	}
	type deviation struct {
		behavior   unlinksort.ByzBehavior
		adversarys []int
		check      string
		proofs     bool // run with key proofs enabled
		proveDec   bool
	}
	deviations := []deviation{
		{unlinksort.ByzBadKeyProof, []int{0, 1, 2, 3}, transport.CheckKeyProof, true, false},
		{unlinksort.ByzWrongDecryption, []int{0, 1, 2}, transport.CheckPartialDecryption, false, true},
		{unlinksort.ByzTamperOwnSet, []int{0, 1, 2}, transport.CheckOwnSetTampered, false, true},
	}
	for _, d := range deviations {
		for _, adv := range d.adversarys {
			for s := 0; s < seeds; s++ {
				d, adv, s := d, adv, s
				t.Run(fmt.Sprintf("%s-adv%d-seed%d", d.behavior, adv, s), func(t *testing.T) {
					t.Parallel()
					cfg := unlinksort.Config{
						Group: g, L: 5,
						SkipProofs:      !d.proofs,
						ProveDecryption: d.proveDec,
						Byz:             &unlinksort.Byz{Party: adv, Behavior: d.behavior},
					}
					results, errs := runByz(t, cfg, fmt.Sprintf("byz-%s-%d-%d", d.behavior, adv, s), nil)
					assertBlamed(t, results, errs, adv, d.check)
				})
			}
		}
	}
}

// TestByzEquivocation has the adversary announce different payloads to
// different parties in a broadcast round; the echo sub-round must pin
// the blame on the sender at every honest party.
func TestByzEquivocation(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	rounds := []struct {
		name     string
		round    int
		proveDec bool
	}{
		{"keys", roundKeys, false},
		{"bits", roundBits, false},
		{"anchors", roundTaus, true},
	}
	for _, rc := range rounds {
		for adv := 0; adv < byzParties; adv++ {
			if rc.proveDec && adv >= byzParties-1 {
				continue // chain integrity checks need a successor hop
			}
			for s := 0; s < seeds; s++ {
				rc, adv, s := rc, adv, s
				t.Run(fmt.Sprintf("%s-adv%d-seed%d", rc.name, adv, s), func(t *testing.T) {
					t.Parallel()
					cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true, ProveDecryption: rc.proveDec}
					plan := transport.FaultPlan{
						Seed:  int64(1000*adv + s),
						Rules: []transport.FaultRule{{Kind: transport.FaultEquivocate, Round: rc.round, From: adv, To: -1}},
					}
					results, errs := runByz(t, cfg, fmt.Sprintf("byz-eq-%s-%d-%d", rc.name, adv, s), &plan)
					// The equivocated leg may surface either as a digest
					// mismatch (equivocation) or as the substituted payload
					// failing the shape check (malformed) — both accuse the
					// sender, so the check kind is left open here.
					assertBlamed(t, results, errs, adv, "")
				})
			}
		}
	}
}

// TestByzTamperedCiphertexts corrupts the adversary's outgoing payloads
// at one protocol round (a party is responsible for its own links, so
// tampering there is attributed to it).
func TestByzTamperedCiphertexts(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	cases := []struct {
		name       string
		round      func(adv int) int
		to         func(adv int) int // -1 = every leg
		adversarys []int
	}{
		{"key-share", func(int) int { return roundKeys }, func(int) int { return -1 }, []int{0, 1, 2, 3}},
		{"bit-vector", func(int) int { return roundBits }, func(int) int { return -1 }, []int{0, 1, 2, 3}},
		{"tau-set", func(int) int { return roundTaus }, func(int) int { return 0 }, []int{1, 2, 3}},
		{"chain-vector", func(adv int) int { return roundChain + adv }, func(adv int) int { return adv + 1 }, []int{0, 1, 2}},
		{"final-set", func(int) int { return roundChain + 3 }, func(int) int { return -1 }, []int{3}},
	}
	for _, c := range cases {
		for _, adv := range c.adversarys {
			c, adv := c, adv
			t.Run(fmt.Sprintf("%s-adv%d", c.name, adv), func(t *testing.T) {
				t.Parallel()
				cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true}
				plan := transport.FaultPlan{
					Seed:  int64(adv),
					Rules: []transport.FaultRule{{Kind: transport.FaultCorrupt, Round: c.round(adv), From: adv, To: c.to(adv)}},
				}
				results, errs := runByz(t, cfg, fmt.Sprintf("byz-tamper-%s-%d", c.name, adv), &plan)
				assertBlamed(t, results, errs, adv, transport.CheckMalformed)
			})
		}
	}
}

// TestByzReplayStale has the adversary re-send its previous round's
// message in place of the current one; the round-tag check must abort
// naming the sender with a round-replay certificate.
func TestByzReplayStale(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for adv := 0; adv < byzParties; adv++ {
		for s := 0; s < seeds; s++ {
			adv, s := adv, s
			t.Run(fmt.Sprintf("adv%d-seed%d", adv, s), func(t *testing.T) {
				t.Parallel()
				cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true}
				plan := transport.FaultPlan{
					Seed:  int64(100*adv + s),
					Rules: []transport.FaultRule{{Kind: transport.FaultReplayStale, Round: roundBits, From: adv, To: -1}},
				}
				results, errs := runByz(t, cfg, fmt.Sprintf("byz-replay-%d-%d", adv, s), &plan)
				assertBlamed(t, results, errs, adv, transport.CheckRoundReplay)
			})
		}
	}
}

// TestByzHonestControl is the no-adversary arm: the same harness with
// no deviation must complete with the correct ranking in every
// configuration the adversarial schedules run under.
func TestByzHonestControl(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	cases := []struct {
		name     string
		proofs   bool
		proveDec bool
	}{
		{"plain", false, false},
		{"proofs", true, false},
		{"provedec", false, true},
		{"full", true, true},
	}
	for _, c := range cases {
		for s := 0; s < 2; s++ {
			c, s := c, s
			t.Run(fmt.Sprintf("%s-seed%d", c.name, s), func(t *testing.T) {
				t.Parallel()
				cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: !c.proofs, ProveDecryption: c.proveDec}
				results, errs := runByz(t, cfg, fmt.Sprintf("byz-honest-%s-%d", c.name, s), nil)
				for p, err := range errs {
					if err != nil {
						t.Fatalf("honest run failed at party %d: %v", p, err)
					}
					if results[p].Rank != byzRanks[p] {
						t.Fatalf("party %d ranked %d, want %d", p, results[p].Rank, byzRanks[p])
					}
				}
			})
		}
	}
}
