package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/journal"
	"groupranking/internal/leakcheck"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// The kill-and-restart schedules: one party of a real loopback TCP
// session dies mid-protocol — after a scheduled number of transport
// operations — and a "restarted process" (same seed, same journal,
// fresh fabric at the next epoch) takes over. The session must complete
// with results identical to the fault-free run: the journal replay
// plus seed-fixed determinism make the crash invisible to everyone.

// errKilled simulates the process dying: the scheduled operation never
// reaches the transport (exactly like a crash just before the call).
var errKilled = errors.New("chaos: scheduled process death")

// killNet counts the party's transport operations and kills the
// process at the scheduled one.
type killNet struct {
	transport.Net
	mu    sync.Mutex
	ops   int
	after int
	fired bool
}

func (k *killNet) step() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ops++
	if k.ops > k.after {
		k.fired = true
		return errKilled
	}
	return nil
}

func (k *killNet) Send(round, from, to, bytes int, payload any) error {
	if err := k.step(); err != nil {
		return err
	}
	return k.Net.Send(round, from, to, bytes, payload)
}

func (k *killNet) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if err := k.step(); err != nil {
		return nil, err
	}
	return k.Net.RecvCtx(ctx, to, from, round)
}

// EchoRequired forwards the capability probe: a wrapper that hides it
// would make the wrapped party silently skip echo sub-rounds the rest
// of the mesh runs, desynchronising the session.
func (k *killNet) EchoRequired() bool { return transport.NeedsEcho(k.Net) }

// restartResult is one completed session's outcome, in comparable form.
type restartResult struct {
	mu      sync.Mutex
	ranks   map[int]int // participant -> rank
	subs    string      // initiator's submissions, rendered
	flagged int
}

// killSpec schedules one party's death.
type killSpec struct {
	party int // 0 = initiator
	after int // transport ops before the crash
}

// runRestartSession runs the full framework (initiator + N
// participants) over recovering TCP fabrics, killing and restarting
// kill.party mid-run when kill is non-nil.
func runRestartSession(t *testing.T, params core.Params, q *workload.Questionnaire,
	crit workload.Criterion, profiles []workload.Profile, seed, sid string, kill *killSpec) *restartResult {
	t.Helper()
	core.RegisterWire()
	nParties := params.N + 1
	addrs, err := transport.FreeLoopbackAddrs(nParties)
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	const timeout = 60 * time.Second

	res := &restartResult{ranks: make(map[int]int)}
	errs := make([]error, nParties)
	var wg sync.WaitGroup
	for me := 0; me < nParties; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[me] = runRestartParty(params, q, crit, profiles, seed, sid, addrs, me, jdir, timeout, kill, res)
		}()
	}
	wg.Wait()
	failed := false
	for me, err := range errs {
		if err != nil {
			t.Errorf("party %d: %v", me, err)
			failed = true
		}
	}
	if failed {
		t.FailNow()
	}
	return res
}

// runRestartParty runs one party, dying and restarting per kill.
func runRestartParty(params core.Params, q *workload.Questionnaire, crit workload.Criterion,
	profiles []workload.Profile, seed, sid string, addrs []string, me int,
	jdir string, timeout time.Duration, kill *killSpec, res *restartResult) error {
	victim := kill != nil && kill.party == me
	var j *journal.Journal
	epoch := 1
	if victim {
		var err error
		if j, err = journal.Open(journal.SessionPath(jdir, sid, me)); err != nil {
			return err
		}
		if epoch, err = j.BeginEpoch(); err != nil {
			return err
		}
	}
	for life := 0; ; life++ {
		var jnl transport.Journaler
		if j != nil {
			jnl = j
		}
		fab, err := transport.NewRecoveringTCPFabric(addrs, me, timeout, transport.RecoverOptions{
			SessionID: sid, Epoch: epoch, Journal: jnl,
			Grace: 20 * time.Second, Heartbeat: 25 * time.Millisecond,
		})
		if err != nil {
			return fmt.Errorf("life %d: %w", life, err)
		}
		var net transport.Net = fab
		if victim && life == 0 {
			net = &killNet{Net: fab, after: kill.after}
		}
		err = runRestartRole(params, q, crit, profiles, seed, me, net, res)
		if err == nil {
			// A finished party drains before leaving, exactly as the
			// deployment harness does, so a crashed peer's replacement can
			// still collect what it missed.
			fab.Drain(0)
			fab.Close()
			if j != nil {
				j.Close()
			}
			return nil
		}
		fab.Close()
		if !errors.Is(err, errKilled) {
			if j != nil {
				j.Close()
			}
			return fmt.Errorf("life %d: %w", life, err)
		}
		// The "restarted process": reopen the journal, advance the epoch,
		// and rerun the whole deterministic computation from scratch.
		j.Close()
		if j, err = journal.Open(journal.SessionPath(jdir, sid, me)); err != nil {
			return err
		}
		if epoch, err = j.BeginEpoch(); err != nil {
			return err
		}
	}
}

// runRestartRole is one life of one party's role, with randomness
// re-derived from the seed exactly as a restarted process would.
func runRestartRole(params core.Params, q *workload.Questionnaire, crit workload.Criterion,
	profiles []workload.Profile, seed string, me int, net transport.Net, res *restartResult) error {
	ctx := context.Background()
	if _, err := core.EstablishSessionCtx(ctx, params, me, net, core.DeriveTraceID(seed)); err != nil {
		return err
	}
	if me == 0 {
		rng := fixedbig.NewDRBG(core.InitiatorSeed(seed))
		subs, flagged, err := core.RunInitiatorCtx(ctx, params, q, crit, net, rng)
		if err != nil {
			return err
		}
		rendered := ""
		for _, s := range subs {
			rendered += fmt.Sprintf("rank %d: participant %d profile %v gain %v; ",
				s.ClaimedRank, s.Participant, s.Profile.Values, s.Gain)
		}
		res.mu.Lock()
		res.subs, res.flagged = rendered, len(flagged)
		res.mu.Unlock()
		return nil
	}
	rng := fixedbig.NewDRBG(core.ParticipantSeed(seed, me))
	out, err := core.RunParticipantCtx(ctx, params, me, q, profiles[me-1], net, rng)
	if err != nil {
		return err
	}
	res.mu.Lock()
	res.ranks[me] = out.Rank
	res.mu.Unlock()
	return nil
}

// TestRestartSchedules kills one party at a range of points across the
// protocol — session establishment, the gain phase, mid-sort — restarts
// it from its journal, and demands results identical to the fault-free
// baseline, for both a participant and the initiator as the victim.
func TestRestartSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("restart schedules skipped in short mode")
	}
	leakcheck.Check(t)
	g := chaosGroup(t)
	params := core.Params{
		N: 3, M: 2, T: 1, D1: 4, D2: 3, H: 4, K: 2,
		Group: g, SkipProofs: true,
	}
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG("chaos-restart-inputs")
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = "chaos-restart-seed"

	baseline := runRestartSession(t, params, q, crit, profiles, seed, "restart-base", nil)
	if len(baseline.ranks) != params.N || baseline.subs == "" {
		t.Fatalf("baseline incomplete: ranks %v, subs %q", baseline.ranks, baseline.subs)
	}

	schedules := []killSpec{
		{party: 2, after: 2},  // during session establishment
		{party: 2, after: 5},  // in the gain phase
		{party: 2, after: 9},  // entering the sort
		{party: 2, after: 14}, // mid-sort
		{party: 0, after: 5},  // the initiator itself, in the gain phase
	}
	for i, sc := range schedules {
		sc := sc
		t.Run(fmt.Sprintf("kill-p%d-after-%d", sc.party, sc.after), func(t *testing.T) {
			got := runRestartSession(t, params, q, crit, profiles, seed,
				fmt.Sprintf("restart-%d", i), &sc)
			for p, want := range baseline.ranks {
				if got.ranks[p] != want {
					t.Errorf("participant %d ranked %d, fault-free baseline says %d",
						p, got.ranks[p], want)
				}
			}
			if got.subs != baseline.subs {
				t.Errorf("initiator submissions diverged:\n got %q\nwant %q", got.subs, baseline.subs)
			}
			if got.flagged != baseline.flagged {
				t.Errorf("flagged count %d, baseline %d", got.flagged, baseline.flagged)
			}
		})
	}
}
