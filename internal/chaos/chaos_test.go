package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"time"

	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/leakcheck"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/unlinksort"
	"groupranking/internal/workload"
)

// buildPlan derives one reproducible fault schedule from a seed. About
// half the schedules leave each fault kind off entirely, so a healthy
// fraction of runs completes and exercises the correct-ranking arm of
// the safety contract; the rest mix low per-message probabilities, and
// some add a targeted party crash or link sever.
func buildPlan(seed int64, parties int) transport.FaultPlan {
	r := rand.New(rand.NewSource(seed ^ 0x5eedc0de))
	pick := func(max float64) float64 {
		if r.Float64() < 0.5 {
			return 0
		}
		return r.Float64() * max
	}
	pl := transport.FaultPlan{
		Seed:      seed,
		Drop:      pick(0.04),
		Corrupt:   pick(0.04),
		Duplicate: pick(0.05),
		Reorder:   pick(0.05),
		Delay:     pick(0.30),
		MaxDelay:  3 * time.Millisecond,
	}
	if r.Float64() < 0.10 {
		pl.Sever = r.Float64() * 0.01
	}
	if r.Float64() < 0.15 {
		pl.Rules = append(pl.Rules,
			transport.CrashAt(int(r.Int63n(int64(parties))), int(r.Int63n(40))))
	}
	return pl
}

// checkOutcome enforces the safety contract on one finished run.
func checkOutcome(t *testing.T, err error, pl transport.FaultPlan, verify func(t *testing.T)) {
	t.Helper()
	if err == nil {
		verify(t)
		return
	}
	var abort *transport.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("plan %+v: failure is not a typed abort: %v", pl, err)
	}
	if abort.Cause == nil {
		t.Fatalf("plan %+v: abort without cause: %v", pl, err)
	}
}

func chaosGroup(t *testing.T) group.Group {
	t.Helper()
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChaosUnlinkableSort runs the standalone identity-unlinkable sort
// under randomized fault schedules: every run must end in the correct
// ranking or a clean typed abort, with no hang and no leaked goroutine.
func TestChaosUnlinkableSort(t *testing.T) {
	leakcheck.Check(t)
	schedules := 140
	if testing.Short() {
		schedules = 30
	}
	g := chaosGroup(t)
	values := []int64{20, 7, 29, 13}
	expected := []int{2, 4, 1, 3}
	cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true}
	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("seed-%03d", s), func(t *testing.T) {
			t.Parallel()
			pl := buildPlan(int64(s), len(values))
			betas := make([]*big.Int, len(values))
			for i, v := range values {
				betas[i] = big.NewInt(v)
			}
			var fn *transport.FaultNet
			wrap := func(n transport.Net) transport.Net {
				fn = transport.NewFaultNet(n, pl)
				return fn
			}
			results, _, err := unlinksort.RunCtx(context.Background(), cfg, betas,
				fmt.Sprintf("chaos-sort-%d", s), wrap,
				transport.WithRecvTimeout(500*time.Millisecond))
			fn.Flush()
			fn.Wait()
			checkOutcome(t, err, pl, func(t *testing.T) {
				for i, r := range results {
					if r.Rank != expected[i] {
						t.Fatalf("plan %+v: party %d ranked %d, want %d — wrong ranking under faults",
							pl, i, r.Rank, expected[i])
					}
				}
			})
		})
	}
}

// TestChaosFramework runs the full three-phase framework (gain
// computation, phase-2 sort, submission with over-claim detection)
// under randomized fault schedules, alternating between the unlinkable
// sorter and the secret-sharing baseline.
func TestChaosFramework(t *testing.T) {
	leakcheck.Check(t)
	schedules := 80
	if testing.Short() {
		schedules = 20
	}
	g := chaosGroup(t)
	params := core.Params{
		N: 4, M: 2, T: 1, D1: 4, D2: 3, H: 4, K: 2,
		Group: g, SkipProofs: true,
	}
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG("chaos-framework-inputs")
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}
	gains := make([]*big.Int, params.N)
	for i, p := range profiles {
		if gains[i], err = q.Gain(crit, p); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("seed-%03d", s), func(t *testing.T) {
			t.Parallel()
			p := params
			if s%4 == 3 {
				p.Sorter = core.SorterSecretSharing
			}
			pl := buildPlan(int64(1000+s), p.N+1)
			var fn *transport.FaultNet
			wrap := func(n transport.Net) transport.Net {
				fn = transport.NewFaultNet(n, pl)
				return fn
			}
			res, _, err := core.RunCtx(context.Background(), p, in,
				fmt.Sprintf("chaos-fw-%d", s), wrap,
				transport.WithRecvTimeout(500*time.Millisecond))
			fn.Flush()
			fn.Wait()
			checkOutcome(t, err, pl, func(t *testing.T) {
				// Strictly larger gain must get a strictly better rank;
				// gain ties may be split arbitrarily by the masking
				// offsets, which the paper accepts.
				for a := range gains {
					for b := range gains {
						if gains[a].Cmp(gains[b]) > 0 && res.Ranks[a] >= res.Ranks[b] {
							t.Fatalf("plan %+v: ranks %v violate gain order at (%d, %d) — wrong ranking under faults",
								pl, res.Ranks, a, b)
						}
					}
				}
			})
		})
	}
}

// TestAbortLeavesPartialTrace crashes one participant from its first
// send and asserts the observability registry outlives the abort: the
// spans recorded up to the failure are still there, and the phase the
// typed abort names is among them — the contract the CLIs rely on when
// they dump a partial trace next to the abort diagnosis.
func TestAbortLeavesPartialTrace(t *testing.T) {
	leakcheck.Check(t)
	g := chaosGroup(t)
	params := core.Params{
		N: 4, M: 2, T: 1, D1: 4, D2: 3, H: 4, K: 2,
		Group: g, SkipProofs: true,
	}
	q, err := workload.Uniform(params.M, params.T)
	if err != nil {
		t.Fatal(err)
	}
	rng := fixedbig.NewDRBG("chaos-partial-trace")
	crit, err := workload.RandomCriterion(q, params.D1, params.D2, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.RandomProfiles(q, params.N, params.D1, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Inputs{Questionnaire: q, Criterion: crit, Profiles: profiles}
	var fn *transport.FaultNet
	wrap := func(n transport.Net) transport.Net {
		fn = transport.NewFaultNet(n, transport.FaultPlan{
			Rules: []transport.FaultRule{transport.CrashAt(2, -1)},
		})
		return fn
	}
	reg := obsv.NewRegistry()
	ctx := obsv.WithRegistry(context.Background(), reg)
	_, _, err = core.RunCtx(ctx, params, in, "chaos-partial-trace", wrap,
		transport.WithRecvTimeout(500*time.Millisecond))
	fn.Flush()
	fn.Wait()
	var abort *transport.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("crash did not produce a typed abort: %v", err)
	}
	spans := reg.Spans()
	if len(spans) == 0 {
		t.Fatal("aborted run left an empty registry; partial spans must survive")
	}
	phases := make(map[string]bool)
	for _, sp := range spans {
		phases[sp.Phase] = true
	}
	if !phases[abort.Phase] {
		t.Errorf("abort names phase %q but the trace only has %v", abort.Phase, phases)
	}
}

// TestCrashPropagationFabric crashes one party at its very first send
// over the in-memory fabric and asserts that every survivor aborts with
// a typed error naming the crashed party, its protocol phase and the
// round it was waiting on.
func TestCrashPropagationFabric(t *testing.T) {
	leakcheck.Check(t)
	const n, crashed = 4, 2
	g := chaosGroup(t)
	cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true}
	fab, err := transport.New(n, transport.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	fn := transport.NewFaultNet(fab, transport.FaultPlan{
		Rules: []transport.FaultRule{transport.CrashAt(crashed, -1)},
	})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := fixedbig.NewDRBG(fmt.Sprintf("crash-fabric-%d", me))
			_, errs[me] = unlinksort.PartyCtx(context.Background(), cfg, me, fn,
				big.NewInt(int64(me+1)), rng)
		}()
	}
	wg.Wait()
	for me, err := range errs {
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("party %d: no typed abort, got %v", me, err)
		}
		if abort.Party != crashed {
			t.Errorf("party %d abort names party %d, want %d", me, abort.Party, crashed)
		}
		if abort.Phase == "" {
			t.Errorf("party %d abort has no phase: %v", me, abort)
		}
		if abort.Round < 0 {
			t.Errorf("party %d abort has no round: %v", me, abort)
		}
		want := transport.ErrPeerDown
		if me == crashed {
			want = transport.ErrCrashed
		}
		if !errors.Is(err, want) {
			t.Errorf("party %d abort cause = %v, want %v", me, abort.Cause, want)
		}
	}
}

// TestCrashPropagationTCP kills one party of a real loopback TCP mesh
// mid-protocol and asserts that both survivors abort with a typed error
// naming the dead party rather than hanging or panicking in the codec.
func TestCrashPropagationTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP mesh test skipped in short mode")
	}
	leakcheck.Check(t)
	const n, victim = 3, 1
	g := chaosGroup(t)
	cfg := unlinksort.Config{Group: g, L: 5, SkipProofs: true}
	unlinksort.RegisterWire()
	addrs, err := transport.FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*transport.TCPFabric, n)
	dialErrs := make([]error, n)
	var dial sync.WaitGroup
	for me := 0; me < n; me++ {
		me := me
		dial.Add(1)
		go func() {
			defer dial.Done()
			fabrics[me], dialErrs[me] = transport.NewTCPFabric(addrs, me, 5*time.Second)
		}()
	}
	dial.Wait()
	for me, err := range dialErrs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabrics {
			f.Close()
		}
	})

	errs := make([]error, n)
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		if me == victim {
			continue
		}
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := fixedbig.NewDRBG(fmt.Sprintf("crash-tcp-%d", me))
			_, errs[me] = unlinksort.PartyCtx(context.Background(), cfg, me, fabrics[me],
				big.NewInt(int64(me+1)), rng)
		}()
	}
	// The victim connects, then dies without sending a single protocol
	// message: its peers must detect the closed connections.
	fabrics[victim].Close()
	wg.Wait()
	for me, err := range errs {
		if me == victim {
			continue
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("party %d: no typed abort, got %v", me, err)
		}
		if abort.Party != victim {
			t.Errorf("party %d abort names party %d, want %d", me, abort.Party, victim)
		}
		if abort.Phase == "" {
			t.Errorf("party %d abort has no phase: %v", me, abort)
		}
		if !errors.Is(err, transport.ErrPeerDown) {
			t.Errorf("party %d abort cause = %v, want peer-down", me, abort.Cause)
		}
	}
}

// TestChaosReproducible asserts that the same seed injects the same
// faults: the identical send script through two FaultNets with one plan
// must produce identical injected-fault tallies, so any chaos failure
// can be replayed from its seed alone.
func TestChaosReproducible(t *testing.T) {
	leakcheck.Check(t)
	pl := transport.FaultPlan{Seed: 42, Drop: 0.1, Corrupt: 0.1, Duplicate: 0.1,
		Reorder: 0.1, Delay: 0.2, MaxDelay: time.Millisecond}
	script := func() transport.FaultCounts {
		fab, err := transport.New(3)
		if err != nil {
			t.Fatal(err)
		}
		fn := transport.NewFaultNet(fab, pl)
		for round := 1; round <= 25; round++ {
			for from := 0; from < 3; from++ {
				for to := 0; to < 3; to++ {
					if to == from {
						continue
					}
					_ = fn.Send(round, from, to, 8, round)
				}
			}
		}
		fn.Flush()
		fn.Wait()
		return fn.Counts()
	}
	a, b := script(), script()
	if a == (transport.FaultCounts{}) {
		t.Fatal("plan injected no faults at all")
	}
	if a != b {
		t.Fatalf("same seed, different faults: %+v vs %+v", a, b)
	}
}
