package zkp

import (
	"math/big"
	"testing"

	"groupranking/internal/elgamal"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
)

func cpScalar(t *testing.T, g group.Group, rng *fixedbig.DRBG) *big.Int {
	t.Helper()
	k, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatalf("RandomScalar: %v", err)
	}
	return k
}

func TestEqualityProofHonest(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("cp-honest")
	x, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	hBase := group.ExpGen(g, cpScalar(t, g, rng))
	st := EqualityStatement{
		Y: group.ExpGen(g, x),
		H: hBase,
		Z: g.Exp(hBase, x),
	}
	tr, err := ProveEquality(g, x, st, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyEquality(g, st, tr) {
		t.Error("honest equality proof rejected")
	}
}

func TestEqualityProofWrongExponent(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("cp-wrong")
	x := cpScalar(t, g, rng)
	other := cpScalar(t, g, rng)
	hBase := group.ExpGen(g, cpScalar(t, g, rng))
	// z uses a different exponent than y: the statement is false.
	st := EqualityStatement{
		Y: group.ExpGen(g, x),
		H: hBase,
		Z: g.Exp(hBase, other),
	}
	tr, err := ProveEquality(g, x, st, rng)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyEquality(g, st, tr) {
		t.Error("proof over a false statement accepted")
	}
}

func TestEqualityProofTampered(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("cp-tamper")
	x := cpScalar(t, g, rng)
	hBase := group.ExpGen(g, cpScalar(t, g, rng))
	st := EqualityStatement{Y: group.ExpGen(g, x), H: hBase, Z: g.Exp(hBase, x)}
	tr, err := ProveEquality(g, x, st, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := tr
	bad.Response = new(big.Int).Add(tr.Response, big.NewInt(1))
	if VerifyEquality(g, st, bad) {
		t.Error("tampered response accepted")
	}
	bad = tr
	bad.Challenge = new(big.Int).Add(tr.Challenge, big.NewInt(1))
	if VerifyEquality(g, st, bad) {
		t.Error("tampered challenge accepted")
	}
}

func TestPartialDecryptionProof(t *testing.T) {
	// End-to-end: a chain processor strips its ElGamal layer and proves
	// it used its registered key share.
	g := testGroup(t)
	rng := fixedbig.NewDRBG("cp-partial")
	scheme := elgamal.NewScheme(g)
	k1, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	joint := scheme.JointPublicKey([]group.Element{k1.Y, k2.Y})
	ct, err := scheme.EncryptExp(joint, big.NewInt(0), rng)
	if err != nil {
		t.Fatal(err)
	}

	stripped := scheme.PartialDecrypt(k1.X, ct)
	proof, err := ProvePartialDecryption(g, k1.X, k1.Y, ct.C1, ct.C, stripped.C, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyPartialDecryption(g, k1.Y, ct.C1, ct.C, stripped.C, proof) {
		t.Error("honest partial decryption rejected")
	}

	// A cheating processor that replaces the ciphertext (e.g. swapping
	// someone's zero for garbage) cannot produce an accepting proof.
	garbage := scheme.PartialDecrypt(k2.X, ct) // wrong share
	forged, err := ProvePartialDecryption(g, k1.X, k1.Y, ct.C1, ct.C, garbage.C, rng)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyPartialDecryption(g, k1.Y, ct.C1, ct.C, garbage.C, forged) {
		t.Error("forged partial decryption accepted")
	}
	// And a valid proof does not transfer to a different ciphertext.
	other, err := scheme.EncryptExp(joint, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	otherStripped := scheme.PartialDecrypt(k1.X, other)
	if VerifyPartialDecryption(g, k1.Y, other.C1, other.C, otherStripped.C, proof) {
		t.Error("proof replayed across ciphertexts accepted")
	}
}

func TestPartialDecryptionProofOverEC(t *testing.T) {
	g := group.Secp160r1()
	rng := fixedbig.NewDRBG("cp-ec")
	scheme := elgamal.NewScheme(g)
	kp, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := scheme.EncryptExp(kp.Y, big.NewInt(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	stripped := scheme.PartialDecrypt(kp.X, ct)
	proof, err := ProvePartialDecryption(g, kp.X, kp.Y, ct.C1, ct.C, stripped.C, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyPartialDecryption(g, kp.Y, ct.C1, ct.C, stripped.C, proof) {
		t.Error("EC partial decryption proof rejected")
	}
}
