package zkp

import (
	"math/big"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
)

func testGroup(t *testing.T) group.Group {
	t.Helper()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("zkp-group"))
	if err != nil {
		t.Fatalf("GenerateDLGroup: %v", err)
	}
	return g
}

func TestProveVerifySingleVerifier(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-1")
	x, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	y := group.ExpGen(g, x)
	tr, err := Prove(g, x, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTranscript(g, y, tr) {
		t.Error("honest proof rejected")
	}
}

func TestProveVerifyManyVerifiers(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-n")
	for _, n := range []int{2, 5, 16} {
		x, err := g.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		y := group.ExpGen(g, x)
		tr, err := Prove(g, x, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Challenges) != n {
			t.Fatalf("%d verifiers: %d challenges", n, len(tr.Challenges))
		}
		if !VerifyTranscript(g, y, tr) {
			t.Errorf("%d-verifier proof rejected", n)
		}
	}
}

func TestWrongSecretRejected(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-wrong")
	x, _ := g.RandomScalar(rng)
	xBad, _ := g.RandomScalar(rng)
	y := group.ExpGen(g, x)
	tr, err := Prove(g, xBad, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyTranscript(g, y, tr) {
		t.Error("proof with wrong secret accepted")
	}
}

func TestTamperedTranscriptRejected(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-tamper")
	x, _ := g.RandomScalar(rng)
	y := group.ExpGen(g, x)
	tr, err := Prove(g, x, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	tampered := tr
	tampered.Response = new(big.Int).Add(tr.Response, big.NewInt(1))
	if VerifyTranscript(g, y, tampered) {
		t.Error("tampered response accepted")
	}
	tampered = tr
	tampered.Challenges = []*big.Int{new(big.Int).Add(tr.Challenges[0], big.NewInt(1)), tr.Challenges[1]}
	if VerifyTranscript(g, y, tampered) {
		t.Error("tampered challenge accepted")
	}
}

func TestExtractor(t *testing.T) {
	// Special soundness: two accepting transcripts with a shared
	// commitment reveal the secret.
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-extract")
	x, _ := g.RandomScalar(rng)
	y := group.ExpGen(g, x)

	p := NewProver(g, x)
	h, err := p.Commit(rng)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := NewChallenge(g, rng)
	c2, _ := NewChallenge(g, rng)
	z1, err := p.Respond([]*big.Int{c1})
	if err != nil {
		t.Fatal(err)
	}
	// Rewind: answer a second challenge with the same commitment, as the
	// extractor in the security proof does. Recreate the prover with the
	// same randomness by replaying the DRBG.
	rng2 := fixedbig.NewDRBG("zkp-extract")
	xx, _ := g.RandomScalar(rng2) // replay x draw
	_ = xx
	p2 := NewProver(g, x)
	h2, err := p2.Commit(rng2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h, h2) {
		t.Fatal("replayed commitment differs; rewinding broken")
	}
	z2, err := p2.Respond([]*big.Int{c2})
	if err != nil {
		t.Fatal(err)
	}
	t1 := Transcript{Commitment: h, Challenges: []*big.Int{c1}, Response: z1}
	t2 := Transcript{Commitment: h2, Challenges: []*big.Int{c2}, Response: z2}
	if !VerifyTranscript(g, y, t1) || !VerifyTranscript(g, y, t2) {
		t.Fatal("extractor inputs must verify")
	}
	got, err := Extract(g, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(x) != 0 {
		t.Errorf("extracted %s, want %s", got, x)
	}
}

func TestExtractErrors(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-exterr")
	x, _ := g.RandomScalar(rng)
	t1, err := Prove(g, x, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Prove(g, x, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Extract(g, t1, t2); err == nil {
		t.Error("extraction with distinct commitments should fail")
	}
	if _, err := Extract(g, t1, t1); err == nil {
		t.Error("extraction with equal challenges should fail")
	}
}

func TestSimulatedTranscriptVerifies(t *testing.T) {
	// HVZK: the simulator produces accepting transcripts without the
	// secret, so transcripts carry zero knowledge.
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-sim")
	x, _ := g.RandomScalar(rng)
	y := group.ExpGen(g, x)
	for _, n := range []int{1, 4} {
		tr, err := SimulateTranscript(g, y, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyTranscript(g, y, tr) {
			t.Errorf("simulated %d-verifier transcript rejected", n)
		}
	}
}

func TestProverSingleUse(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-single")
	x, _ := g.RandomScalar(rng)
	p := NewProver(g, x)
	if _, err := p.Respond([]*big.Int{big.NewInt(1)}); err == nil {
		t.Error("respond before commit should fail")
	}
	if _, err := p.Commit(rng); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(rng); err == nil {
		t.Error("double commit should fail")
	}
	if _, err := p.Respond([]*big.Int{big.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Respond([]*big.Int{big.NewInt(1)}); err == nil {
		t.Error("double respond should fail")
	}
}

func TestProveRejectsZeroVerifiers(t *testing.T) {
	g := testGroup(t)
	rng := fixedbig.NewDRBG("zkp-zero")
	x, _ := g.RandomScalar(rng)
	if _, err := Prove(g, x, 0, rng); err == nil {
		t.Error("zero verifiers accepted")
	}
}

func TestOverEllipticCurve(t *testing.T) {
	g := group.Secp160r1()
	rng := fixedbig.NewDRBG("zkp-ec")
	x, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	y := group.ExpGen(g, x)
	tr, err := Prove(g, x, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTranscript(g, y, tr) {
		t.Error("EC proof rejected")
	}
}
