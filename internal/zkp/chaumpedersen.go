package zkp

import (
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/group"
	"groupranking/internal/obsv"
)

// Chaum–Pedersen proof of discrete-logarithm equality: the prover shows
// log_g(y) = log_h(z) without revealing the exponent. Instantiated with
// g = the group generator, y = a party's public key share, h = a
// ciphertext's randomness component c₁ and z = c₁^x, it proves that a
// partial decryption was computed with the registered key share — the
// building block for hardening the decrypt-and-shuffle chain beyond the
// honest-but-curious model (full malicious security would additionally
// need shuffle proofs, which the paper leaves out of scope).
//
// The protocol is the standard sigma protocol: commit (g^r, h^r),
// challenge c, response s = r + c·x; verify g^s = a·y^c and
// h^s = b·z^c. It is honest-verifier zero-knowledge, matching the
// paper's HBC setting.

// EqualityTranscript records one Chaum–Pedersen interaction.
type EqualityTranscript struct {
	CommitG   group.Element // a = g^r
	CommitH   group.Element // b = h^r
	Challenge *big.Int
	Response  *big.Int // s = r + c·x mod q
}

// EqualityStatement is the public statement (g is the group generator).
type EqualityStatement struct {
	Y group.Element // y = g^x
	H group.Element // second base
	Z group.Element // z = h^x
}

// ProveEquality produces an accepting transcript for the statement
// using secret x and an honest verifier's uniform challenge.
func ProveEquality(g group.Group, x *big.Int, st EqualityStatement, rng io.Reader) (EqualityTranscript, error) {
	r, err := g.RandomScalar(rng)
	if err != nil {
		return EqualityTranscript{}, fmt.Errorf("zkp: equality commit: %w", err)
	}
	c, err := NewChallenge(g, rng)
	if err != nil {
		return EqualityTranscript{}, err
	}
	return ProveEqualityR(g, x, st, r, c), nil
}

// ProveEqualityR is ProveEquality with caller-supplied commit randomness
// r and challenge c (drawn in that order by ProveEquality). The parallel
// chain kernels pre-draw both serially and fan the transcript arithmetic
// out across workers.
func ProveEqualityR(g group.Group, x *big.Int, st EqualityStatement, r, c *big.Int) EqualityTranscript {
	obsv.PartyOf(g).Add(obsv.OpProofMade, 1)
	q := g.Order()
	s := new(big.Int).Mul(c, x)
	s.Add(s, r)
	s.Mod(s, q)
	return EqualityTranscript{
		CommitG:   group.ExpGen(g, r),
		CommitH:   g.Exp(st.H, r),
		Challenge: c,
		Response:  s,
	}
}

// VerifyEquality checks a transcript against the statement.
func VerifyEquality(g group.Group, st EqualityStatement, t EqualityTranscript) bool {
	obsv.PartyOf(g).Add(obsv.OpProofChecked, 1)
	// g^s = a · y^c
	if !g.Equal(group.ExpGen(g, t.Response), g.Op(t.CommitG, g.Exp(st.Y, t.Challenge))) {
		return false
	}
	// h^s = b · z^c
	return g.Equal(g.Exp(st.H, t.Response), g.Op(t.CommitH, g.Exp(st.Z, t.Challenge)))
}

// ProvePartialDecryption proves that stripped = c / c1^x was derived
// from ciphertext component c1 with the key share behind public key y:
// the statement is log_g(y) = log_{c1}(c1^x), where c1^x is recomputed
// by the verifier as original/stripped.
func ProvePartialDecryption(g group.Group, x *big.Int, y, c1, originalC, strippedC group.Element, rng io.Reader) (EqualityTranscript, error) {
	z := g.Op(originalC, g.Inv(strippedC)) // c1^x
	return ProveEquality(g, x, EqualityStatement{Y: y, H: c1, Z: z}, rng)
}

// ProvePartialDecryptionR is ProvePartialDecryption with caller-supplied
// commit randomness and challenge.
func ProvePartialDecryptionR(g group.Group, x *big.Int, y, c1, originalC, strippedC group.Element, r, c *big.Int) EqualityTranscript {
	z := g.Op(originalC, g.Inv(strippedC)) // c1^x
	return ProveEqualityR(g, x, EqualityStatement{Y: y, H: c1, Z: z}, r, c)
}

// VerifyPartialDecryption checks a partial-decryption proof.
func VerifyPartialDecryption(g group.Group, y, c1, originalC, strippedC group.Element, t EqualityTranscript) bool {
	z := g.Op(originalC, g.Inv(strippedC))
	return VerifyEquality(g, EqualityStatement{Y: y, H: c1, Z: z}, t)
}
