// Package zkp implements the Schnorr honest-verifier zero-knowledge proof
// of discrete-logarithm knowledge, in the single-verifier form and the
// paper's n-verifier extension (Section IV-E): every verifier contributes
// a challenge share c_j, the prover answers z = r + x·Σc_j, and each
// verifier checks g^z = h·y^(Σc_j).
//
// The package also exposes the special-soundness knowledge extractor used
// in the paper's security proofs; the test suite exercises it, and the
// gain-hiding simulator argument relies on its existence.
package zkp

import (
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/group"
	"groupranking/internal/obsv"
)

// Transcript records one complete proof interaction.
type Transcript struct {
	Commitment group.Element // h = g^r
	Challenges []*big.Int    // one share per verifier
	Response   *big.Int      // z = r + x·Σc_j mod q
}

// Prover holds the secret and per-proof randomness of one Schnorr proof.
// A Prover is single use: Commit once, Respond once.
type Prover struct {
	g         group.Group
	x         *big.Int
	r         *big.Int
	committed bool
	responded bool
}

// NewProver prepares a proof of knowledge of x = log_g(y).
func NewProver(g group.Group, x *big.Int) *Prover {
	return &Prover{g: g, x: x}
}

// Commit samples the proof randomness and returns h = g^r.
func (p *Prover) Commit(rng io.Reader) (group.Element, error) {
	if p.committed {
		return nil, fmt.Errorf("zkp: prover already committed")
	}
	r, err := p.g.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("zkp: committing: %w", err)
	}
	p.r = r
	p.committed = true
	return group.ExpGen(p.g, r), nil
}

// Respond answers the verifiers' challenge shares with
// z = r + x·Σc_j mod q.
func (p *Prover) Respond(challenges []*big.Int) (*big.Int, error) {
	if !p.committed {
		return nil, fmt.Errorf("zkp: respond before commit")
	}
	if p.responded {
		return nil, fmt.Errorf("zkp: prover already responded")
	}
	p.responded = true
	obsv.PartyOf(p.g).Add(obsv.OpProofMade, 1)
	q := p.g.Order()
	z := new(big.Int).Mul(p.x, sumMod(challenges, q))
	z.Add(z, p.r)
	return z.Mod(z, q), nil
}

// NewChallenge samples one verifier's challenge share.
func NewChallenge(g group.Group, rng io.Reader) (*big.Int, error) {
	c, err := g.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("zkp: sampling challenge: %w", err)
	}
	return c, nil
}

// Verify checks g^z = h·y^(Σc_j) for public key y, commitment h,
// challenge shares and response z.
func Verify(g group.Group, y, h group.Element, challenges []*big.Int, z *big.Int) bool {
	obsv.PartyOf(g).Add(obsv.OpProofChecked, 1)
	lhs := group.ExpGen(g, z)
	rhs := g.Op(h, g.Exp(y, sumMod(challenges, g.Order())))
	return g.Equal(lhs, rhs)
}

// VerifyTranscript checks a complete recorded interaction.
func VerifyTranscript(g group.Group, y group.Element, t Transcript) bool {
	return Verify(g, y, t.Commitment, t.Challenges, t.Response)
}

// Prove runs a complete honest-verifier interaction with nVerifiers
// verifiers in one call and returns the accepted transcript. It is the
// convenience entry point used by the framework when all parties are
// simulated in-process.
func Prove(g group.Group, x *big.Int, nVerifiers int, rng io.Reader) (Transcript, error) {
	if nVerifiers < 1 {
		return Transcript{}, fmt.Errorf("zkp: need at least one verifier, got %d", nVerifiers)
	}
	p := NewProver(g, x)
	h, err := p.Commit(rng)
	if err != nil {
		return Transcript{}, err
	}
	challenges := make([]*big.Int, nVerifiers)
	for j := range challenges {
		if challenges[j], err = NewChallenge(g, rng); err != nil {
			return Transcript{}, err
		}
	}
	z, err := p.Respond(challenges)
	if err != nil {
		return Transcript{}, err
	}
	return Transcript{Commitment: h, Challenges: challenges, Response: z}, nil
}

// Extract is the special-soundness knowledge extractor: given two
// accepting transcripts that share a commitment but differ in total
// challenge, it recovers x = (z − z')/(Σc − Σc') mod q.
func Extract(g group.Group, t1, t2 Transcript) (*big.Int, error) {
	if !g.Equal(t1.Commitment, t2.Commitment) {
		return nil, fmt.Errorf("zkp: transcripts do not share a commitment")
	}
	q := g.Order()
	dc := new(big.Int).Sub(sumMod(t1.Challenges, q), sumMod(t2.Challenges, q))
	dc.Mod(dc, q)
	if dc.Sign() == 0 {
		return nil, fmt.Errorf("zkp: transcripts have equal total challenge")
	}
	dz := new(big.Int).Sub(t1.Response, t2.Response)
	dz.Mod(dz, q)
	return dz.Mul(dz, new(big.Int).ModInverse(dc, q)).Mod(dz, q), nil
}

// SimulateTranscript produces an accepting transcript for public key y
// without knowledge of the secret — the standard HVZK simulator. It
// exists so tests can check transcripts carry no knowledge beyond
// validity (simulated and real transcripts verify identically).
func SimulateTranscript(g group.Group, y group.Element, nVerifiers int, rng io.Reader) (Transcript, error) {
	z, err := g.RandomScalar(rng)
	if err != nil {
		return Transcript{}, err
	}
	challenges := make([]*big.Int, nVerifiers)
	for j := range challenges {
		if challenges[j], err = NewChallenge(g, rng); err != nil {
			return Transcript{}, err
		}
	}
	// h = g^z · y^(−Σc) makes the verification equation hold by design.
	h := g.Op(group.ExpGen(g, z), g.Inv(g.Exp(y, sumMod(challenges, g.Order()))))
	return Transcript{Commitment: h, Challenges: challenges, Response: z}, nil
}

func sumMod(values []*big.Int, q *big.Int) *big.Int {
	s := new(big.Int)
	for _, v := range values {
		s.Add(s, v)
	}
	return s.Mod(s, q)
}
