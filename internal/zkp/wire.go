package zkp

import (
	"fmt"
	"io"

	"groupranking/internal/group"
	"groupranking/internal/wirecodec"
)

// Binary wire form of an equality transcript:
//
//	CommitG ‖ CommitH ‖ Challenge ‖ Response
//
// with elements in the structural group.AppendElementWire form and
// scalars as sign ‖ u32 len ‖ magnitude. Decoding is structural only;
// VerifyEquality re-derives everything that matters, so a forged
// transcript fails verification rather than deserialisation.

// AppendBinary appends the wire form to dst.
func (t EqualityTranscript) AppendBinary(dst []byte) ([]byte, error) {
	var err error
	if dst, err = group.AppendElementWire(dst, t.CommitG); err != nil {
		return nil, fmt.Errorf("zkp: transcript commit a: %w", err)
	}
	if dst, err = group.AppendElementWire(dst, t.CommitH); err != nil {
		return nil, fmt.Errorf("zkp: transcript commit b: %w", err)
	}
	if dst, err = wirecodec.AppendBigInt(dst, t.Challenge); err != nil {
		return nil, fmt.Errorf("zkp: transcript challenge: %w", err)
	}
	if dst, err = wirecodec.AppendBigInt(dst, t.Response); err != nil {
		return nil, fmt.Errorf("zkp: transcript response: %w", err)
	}
	return dst, nil
}

// MarshalBinary implements encoding.BinaryMarshaler (gob picks this up
// for nested transcript fields as well).
func (t EqualityTranscript) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(make([]byte, 0, 128))
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *EqualityTranscript) UnmarshalBinary(data []byte) error {
	r := wirecodec.NewReader(data)
	*t = ReadTranscript(r)
	if err := r.Finish(); err != nil {
		return fmt.Errorf("zkp: transcript: %w", err)
	}
	return nil
}

// WriteTo implements io.WriterTo.
func (t EqualityTranscript) WriteTo(w io.Writer) (int64, error) {
	b, err := t.MarshalBinary()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadTranscript parses one transcript from a wirecodec Reader; errors
// latch on the Reader. Protocol-message codecs embed transcripts
// through it and AppendBinary.
func ReadTranscript(r *wirecodec.Reader) EqualityTranscript {
	return EqualityTranscript{
		CommitG:   r.Element(),
		CommitH:   r.Element(),
		Challenge: r.BigInt(),
		Response:  r.BigInt(),
	}
}

func init() {
	wirecodec.Register(wirecodec.IDRangeCrypto+1, "zkp equality transcript",
		[]any{EqualityTranscript{}},
		func(dst []byte, v any) ([]byte, error) {
			return v.(EqualityTranscript).AppendBinary(dst)
		},
		func(data []byte) (any, error) {
			var t EqualityTranscript
			if err := t.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			return t, nil
		})
}
