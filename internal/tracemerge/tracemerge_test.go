package tracemerge

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var fixtureFiles = []string{
	"testdata/straggler-p0.jsonl",
	"testdata/straggler-p1.jsonl",
	"testdata/straggler-p2.jsonl",
	"testdata/straggler-p3.jsonl",
}

func loadFixture(t *testing.T) *Timeline {
	t.Helper()
	traces, err := LoadFiles(fixtureFiles)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Merge(traces)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestMergeStragglerGolden pins the analyzer's output byte-for-byte on
// a committed 4-party run whose party 2 was injected with a ~200ms
// per-phase delay. The fixture's traces are skewed by 7s per party, so
// a passing test also proves the session-barrier clock alignment: a
// regression that merges raw clocks moves every number.
func TestMergeStragglerGolden(t *testing.T) {
	tl := loadFixture(t)
	for _, g := range []struct {
		name  string
		write func(*Timeline, *bytes.Buffer) error
	}{
		{"testdata/straggler.golden.txt", func(tl *Timeline, b *bytes.Buffer) error { return tl.WriteText(b) }},
		{"testdata/straggler.golden.json", func(tl *Timeline, b *bytes.Buffer) error { return tl.WriteJSON(b) }},
	} {
		want, err := os.ReadFile(g.name)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := g.write(tl, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s drifted:\n--- got ---\n%s\n--- want ---\n%s", filepath.Base(g.name), got.Bytes(), want)
		}
	}
}

// TestMergeStragglerVerdict asserts the analysis itself — the part the
// golden files render: the injected straggler is named, per phase and
// overall, and the critical path sums the per-phase straggler compute.
func TestMergeStragglerVerdict(t *testing.T) {
	tl := loadFixture(t)
	if tl.Straggler != 2 {
		t.Fatalf("overall straggler = party %d, want party 2 (the injected one)", tl.Straggler)
	}
	var critical int64
	for _, ph := range tl.Phases {
		critical += ph.StragglerComputeUS
		if ph.Phase == "session" {
			continue // the handshake predates the injected delay
		}
		if ph.Straggler != 2 {
			t.Errorf("phase %s straggler = party %d, want party 2", ph.Phase, ph.Straggler)
		}
		// Every other party's span is stretched to the straggler's pace,
		// so duration alone must NOT identify it — that is the point of
		// the wait-vs-compute split.
		for _, pp := range ph.Parties {
			if pp.Party != 2 && pp.Party != 0 && pp.DurUS < ph.StragglerComputeUS-20000 {
				t.Errorf("phase %s: party %d's wall %dus is not stretched by the straggler", ph.Phase, pp.Party, pp.DurUS)
			}
		}
	}
	if tl.CriticalPathUS != critical {
		t.Errorf("critical path %dus != sum of per-phase straggler compute %dus", tl.CriticalPathUS, critical)
	}
	if tl.CriticalPathUS != 628200 {
		t.Errorf("critical path = %dus, want 628200", tl.CriticalPathUS)
	}
}

// TestMergeClockAlignment pins the re-anchoring rule: after the merge,
// every party's session span ends at time zero, regardless of the 7s
// clock skew baked into the fixtures.
func TestMergeClockAlignment(t *testing.T) {
	tl := loadFixture(t)
	for _, ph := range tl.Phases {
		if ph.Phase != "session" {
			continue
		}
		for _, pp := range ph.Parties {
			if end := pp.StartUS + pp.DurUS; end != 0 {
				t.Errorf("party %d's session span ends at %dus, want 0 (alignment barrier)", pp.Party, end)
			}
		}
	}
}

// TestMergeRejectsMismatchedRuns covers the merge guards: traces from
// different runs (different trace IDs) and the same party fed twice
// are errors, not silently wrong timelines.
func TestMergeRejectsMismatchedRuns(t *testing.T) {
	a := []Span{{TraceID: "aaa", Party: 0, Phase: "gain", StartUS: 0, DurUS: 10}}
	b := []Span{{TraceID: "bbb", Party: 1, Phase: "gain", StartUS: 0, DurUS: 10}}
	if _, err := Merge([][]Span{a, b}); err == nil || !strings.Contains(err.Error(), "trace ID mismatch") {
		t.Errorf("mismatched trace IDs merged: %v", err)
	}
	if _, err := Merge([][]Span{a, a}); err == nil || !strings.Contains(err.Error(), "two traces") {
		t.Errorf("duplicated party merged: %v", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge succeeded")
	}
}

// TestMergeSingleFileSharedClock pins that a one-file input (an
// in-process run's combined trace) is not re-anchored: all parties
// already share a clock.
func TestMergeSingleFileSharedClock(t *testing.T) {
	one := []Span{
		{Party: 0, Phase: "session", StartUS: 100, DurUS: 50},
		{Party: 1, Phase: "session", StartUS: 110, DurUS: 40},
		{Party: 0, Phase: "gain", StartUS: 150, DurUS: 30},
	}
	tl, err := Merge([][]Span{one})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range tl.Phases {
		for _, pp := range ph.Parties {
			if pp.StartUS < 100 {
				t.Errorf("single-file span start %dus was shifted", pp.StartUS)
			}
		}
	}
}
