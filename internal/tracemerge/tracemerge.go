// Package tracemerge turns per-party JSONL span traces into one
// cross-party timeline. Each distributed party writes its own trace
// against its own clock; the merger aligns them on the session
// handshake (the one span every party provably finishes together — the
// echo broadcast is a barrier), verifies they carry the same run-level
// trace ID, and reports the per-phase critical path, the straggler of
// each phase, and every party's wait-vs-compute split.
//
// The wait-vs-compute split is what makes straggler identification
// honest: in a lockstep protocol the slowest party inflates everyone
// else's wall time, so per-phase durations look identical across
// parties. Receive-wait time (the obsv recv_wait_us counter) separates
// the party that was computing from the parties that were blocked on
// it — the straggler of a phase is the party with the most compute,
// not the one with the longest span.
package tracemerge

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Span is one line of a party's JSONL trace (obsv.SpanSnapshot's wire
// shape).
type Span struct {
	TraceID string           `json:"trace_id,omitempty"`
	Party   int              `json:"party"`
	Phase   string           `json:"phase"`
	Seq     int              `json:"seq"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Open    bool             `json:"open,omitempty"`
	Counts  map[string]int64 `json:"counts,omitempty"`
}

// recvWaitKey is the counter name countingNet charges blocking receive
// time to (kept in sync by the obsv op-name guard test).
const recvWaitKey = "recv_wait_us"

// sessionPhase is the alignment barrier's span name (core.PhaseSession;
// not imported to keep the analyzer dependency-free of the protocol).
const sessionPhase = "session"

// Load reads one JSONL trace. Blank lines are skipped; a malformed
// line is an error naming its number.
func Load(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// LoadFiles reads one trace per path ("-" reads stdin).
func LoadFiles(paths []string) ([][]Span, error) {
	out := make([][]Span, 0, len(paths))
	for _, path := range paths {
		var (
			spans []Span
			err   error
		)
		if path == "-" {
			spans, err = Load(os.Stdin)
		} else {
			f, oerr := os.Open(path)
			if oerr != nil {
				return nil, oerr
			}
			spans, err = Load(f)
			f.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		out = append(out, spans)
	}
	return out, nil
}

// PartyPhase is one party's share of one phase.
type PartyPhase struct {
	Party     int   `json:"party"`
	StartUS   int64 `json:"start_us"` // aligned to the session barrier
	DurUS     int64 `json:"dur_us"`
	WaitUS    int64 `json:"wait_us"`    // time blocked in receives
	ComputeUS int64 `json:"compute_us"` // DurUS − WaitUS
	Open      bool  `json:"open,omitempty"`
}

// PhaseReport is one phase of the merged timeline.
type PhaseReport struct {
	Phase string `json:"phase"`
	// WallUS spans the earliest aligned start to the latest aligned end
	// across parties.
	WallUS int64 `json:"wall_us"`
	// Straggler is the party with the most compute in this phase — the
	// one the others were waiting on.
	Straggler          int          `json:"straggler"`
	StragglerComputeUS int64        `json:"straggler_compute_us"`
	Parties            []PartyPhase `json:"parties"`
}

// PartyReport is one party's totals over the whole run.
type PartyReport struct {
	Party     int   `json:"party"`
	BusyUS    int64 `json:"busy_us"` // sum of its span durations
	WaitUS    int64 `json:"wait_us"`
	ComputeUS int64 `json:"compute_us"`
}

// Timeline is the merged cross-party view of one run.
type Timeline struct {
	TraceID string        `json:"trace_id,omitempty"`
	Parties []PartyReport `json:"parties"`
	Phases  []PhaseReport `json:"phases"`
	// CriticalPathUS sums each phase's straggler compute: the serial
	// core of the run that no amount of peer speed-up removes.
	CriticalPathUS int64 `json:"critical_path_us"`
	// Straggler is the party with the most total compute.
	Straggler          int   `json:"straggler"`
	StragglerComputeUS int64 `json:"straggler_compute_us"`
}

// Merge builds the timeline from one trace per process. With several
// traces each is re-anchored so its session span ends at time zero —
// the handshake's echo broadcast is a barrier, so those instants
// coincide in real time even though the processes' clocks do not. A
// single trace (an in-process run, or one party alone) already has one
// clock and is left unshifted. Traces must agree on the trace ID, and
// no party may appear in two traces.
func Merge(traces [][]Span) (*Timeline, error) {
	var (
		all     []Span
		traceID string
		seen    = make(map[int]int) // party → trace index
	)
	for ti, trace := range traces {
		anchor := int64(0)
		if len(traces) > 1 {
			anchor = anchorOf(trace)
		}
		for _, s := range trace {
			if s.TraceID != "" {
				if traceID == "" {
					traceID = s.TraceID
				} else if s.TraceID != traceID {
					return nil, fmt.Errorf("trace ID mismatch: %s vs %s (traces from different runs?)", traceID, s.TraceID)
				}
			}
			if prev, ok := seen[s.Party]; ok && prev != ti {
				return nil, fmt.Errorf("party %d appears in two traces (same file given twice, or traces overlap)", s.Party)
			}
			seen[s.Party] = ti
			s.StartUS -= anchor
			all = append(all, s)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no spans to merge")
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].StartUS < all[j].StartUS })

	tl := &Timeline{TraceID: traceID, Straggler: -1}
	phaseIdx := make(map[string]int)
	partyIdx := make(map[int]int)
	for _, s := range all {
		pi, ok := phaseIdx[s.Phase]
		if !ok {
			pi = len(tl.Phases)
			phaseIdx[s.Phase] = pi
			tl.Phases = append(tl.Phases, PhaseReport{Phase: s.Phase, Straggler: -1})
		}
		wait := s.Counts[recvWaitKey]
		if wait > s.DurUS {
			wait = s.DurUS // a receive can outlive its span by a tick
		}
		tl.Phases[pi].Parties = append(tl.Phases[pi].Parties, PartyPhase{
			Party: s.Party, StartUS: s.StartUS, DurUS: s.DurUS,
			WaitUS: wait, ComputeUS: s.DurUS - wait, Open: s.Open,
		})
		bi, ok := partyIdx[s.Party]
		if !ok {
			bi = len(tl.Parties)
			partyIdx[s.Party] = bi
			tl.Parties = append(tl.Parties, PartyReport{Party: s.Party})
		}
		tl.Parties[bi].BusyUS += s.DurUS
		tl.Parties[bi].WaitUS += wait
		tl.Parties[bi].ComputeUS += s.DurUS - wait
	}
	sort.Slice(tl.Parties, func(i, j int) bool { return tl.Parties[i].Party < tl.Parties[j].Party })
	for pi := range tl.Phases {
		ph := &tl.Phases[pi]
		sort.Slice(ph.Parties, func(i, j int) bool { return ph.Parties[i].Party < ph.Parties[j].Party })
		var minStart, maxEnd int64
		for i, pp := range ph.Parties {
			if i == 0 || pp.StartUS < minStart {
				minStart = pp.StartUS
			}
			if end := pp.StartUS + pp.DurUS; i == 0 || end > maxEnd {
				maxEnd = end
			}
			if pp.ComputeUS > ph.StragglerComputeUS || ph.Straggler < 0 {
				ph.Straggler, ph.StragglerComputeUS = pp.Party, pp.ComputeUS
			}
		}
		ph.WallUS = maxEnd - minStart
		tl.CriticalPathUS += ph.StragglerComputeUS
	}
	for _, pr := range tl.Parties {
		if pr.ComputeUS > tl.StragglerComputeUS || tl.Straggler < 0 {
			tl.Straggler, tl.StragglerComputeUS = pr.Party, pr.ComputeUS
		}
	}
	return tl, nil
}

// anchorOf finds one trace's alignment instant: the end of its session
// span (first closed one), falling back to its earliest span start for
// traces from runs without a handshake.
func anchorOf(trace []Span) int64 {
	var minStart int64
	for i, s := range trace {
		if s.Phase == sessionPhase && !s.Open {
			return s.StartUS + s.DurUS
		}
		if i == 0 || s.StartUS < minStart {
			minStart = s.StartUS
		}
	}
	return minStart
}

func fmtUS(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}
