package tracemerge

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteText renders the timeline as the two benchtab-style tables the
// repository's other tooling uses: per-phase (wall clock, straggler and
// its compute) and per-party (busy/wait/compute split), topped by the
// run-level verdict.
func (tl *Timeline) WriteText(w io.Writer) error {
	id := tl.TraceID
	if id == "" {
		id = "(none)"
	}
	fmt.Fprintf(w, "trace %s: %d parties, %d phases\n", id, len(tl.Parties), len(tl.Phases))
	fmt.Fprintf(w, "critical path %s (sum of per-phase straggler compute)\n", fmtUS(tl.CriticalPathUS))
	fmt.Fprintf(w, "straggler: party %d (%s compute)\n\n", tl.Straggler, fmtUS(tl.StragglerComputeUS))

	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\twall\tparties\tstraggler\tcompute\tnote")
	for _, ph := range tl.Phases {
		note := ""
		for _, pp := range ph.Parties {
			if pp.Open {
				note = fmt.Sprintf("party %d never finished", pp.Party)
				break
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\tparty %d\t%s\t%s\n",
			ph.Phase, fmtUS(ph.WallUS), len(ph.Parties), ph.Straggler, fmtUS(ph.StragglerComputeUS), note)
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "party\tbusy\twait\tcompute\twait%")
	for _, pr := range tl.Parties {
		pct := int64(0)
		if pr.BusyUS > 0 {
			pct = pr.WaitUS * 100 / pr.BusyUS
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d%%\n",
			pr.Party, fmtUS(pr.BusyUS), fmtUS(pr.WaitUS), fmtUS(pr.ComputeUS), pct)
	}
	return tw.Flush()
}

// WriteJSON renders the timeline as indented JSON for downstream
// tooling.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}
