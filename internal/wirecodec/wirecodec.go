// Package wirecodec is the framework's wire format: hand-rolled
// fixed-width binary codecs for every message that crosses a transport
// or journal boundary, replacing encoding/gob. Gob re-emits type
// descriptors per encoder and its reflection walk dominates hot-path
// encode cost; these codecs write length-prefixed versioned frames with
// deterministic layouts, so the same value always produces the same
// bytes — which is also what lets the transport digest layer hash
// encodings directly instead of re-walking structures.
//
// Frame layout (all integers big-endian):
//
//	offset 0: magic 'G','W'         (2 bytes)
//	offset 2: codec version         (1 byte, currently 1)
//	offset 3: type ID               (u16, registry key)
//	offset 5: payload length        (u32, ≤ MaxPayload)
//	offset 9: payload               (length bytes, codec-specific)
//
// The version byte is a transport-level tripwire; the authoritative
// compatibility check is the codec-version field pinned during session
// establishment, which turns a mismatch into a typed session abort
// naming the parameter instead of a mid-protocol decode error.
//
// Protocol packages register their message codecs from init via
// Register; registration is not safe for concurrent use and must
// finish before any encode/decode traffic. Types without a codec fall
// back to a gob-encoded frame (type ID 1), so auxiliary values — test
// scaffolding, one-off diagnostics — keep working unchanged.
package wirecodec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"reflect"
	"sync"

	"groupranking/internal/group"
)

const (
	// Version is the wire-format version this build speaks. Peers pin
	// it during session establishment; frames carrying any other value
	// are rejected at the boundary.
	Version = 1

	// headerLen is the fixed frame header size.
	headerLen = 9

	// MaxPayload bounds a single frame's payload (64 MiB). The largest
	// legitimate message — a permuted ciphertext matrix with proofs —
	// is well under 1 MiB at production parameters.
	MaxPayload = 1 << 26
)

// Reserved type IDs. Protocol packages allocate from the documented
// ranges below; collisions panic at init.
const (
	idGob     uint16 = 1 // fallback: payload is a gob stream of `any`
	idNil     uint16 = 2
	IDElement uint16 = 3
	idBigInt  uint16 = 4
	idBigInts uint16 = 5
	idInt     uint16 = 6
	idString  uint16 = 7
	idBytes   uint16 = 8

	// IDRangeCrypto is the base ID for crypto-layer payloads
	// (elgamal, zkp): 16–31.
	IDRangeCrypto uint16 = 16
	// IDRangeProtocol is the base ID for protocol messages
	// (unlinksort, dotprod, ssmpc, topk): 32–63.
	IDRangeProtocol uint16 = 32
	// IDRangeCore is the base ID for session-layer messages: 64–79.
	IDRangeCore uint16 = 64
	// IDRangeTransport is the base ID for transport envelopes and
	// control frames: 80–95.
	IDRangeTransport uint16 = 80
)

var frameMagic = [2]byte{'G', 'W'}

// Boundary errors. Decode failures are reported, never panicked, so a
// hostile peer cannot crash the receive loop.
var (
	ErrBadMagic       = errors.New("wirecodec: bad frame magic")
	ErrTruncatedFrame = errors.New("wirecodec: truncated frame")
	ErrOversizedFrame = errors.New("wirecodec: frame exceeds size cap")
)

// VersionError reports a frame speaking a different wire-format
// version than this build.
type VersionError struct {
	Got, Want uint8
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wirecodec: frame version %d, this build speaks %d", e.Got, e.Want)
}

// UnknownTypeError reports a frame whose type ID has no registered
// decoder in this build.
type UnknownTypeError struct {
	ID uint16
}

func (e *UnknownTypeError) Error() string {
	return fmt.Sprintf("wirecodec: no codec registered for type ID %d", e.ID)
}

// EncodeFunc appends v's payload bytes to dst. It must be
// deterministic: one value, one encoding.
type EncodeFunc func(dst []byte, v any) ([]byte, error)

// DecodeFunc parses a complete payload back into a value. It must
// consume every byte (end with Reader.Finish) and must not retain
// data, which may be a pooled buffer.
type DecodeFunc func(data []byte) (any, error)

type codec struct {
	id   uint16
	name string
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	encByType = map[reflect.Type]*codec{}
	decByID   = map[uint16]*codec{}
)

// Register installs a codec for the concrete dynamic types of the
// given prototypes. Several types may share one ID (the element codec
// covers every group's element type). Call from init only; duplicate
// IDs or types panic immediately rather than corrupting traffic later.
func Register(id uint16, name string, prototypes []any, enc EncodeFunc, dec DecodeFunc) {
	if id == 0 || id == idGob || id == idNil {
		panic(fmt.Sprintf("wirecodec: type ID %d is reserved", id))
	}
	if _, dup := decByID[id]; dup {
		panic(fmt.Sprintf("wirecodec: type ID %d registered twice", id))
	}
	c := &codec{id: id, name: name, enc: enc, dec: dec}
	decByID[id] = c
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		if t == nil {
			panic("wirecodec: nil prototype")
		}
		if _, dup := encByType[t]; dup {
			panic(fmt.Sprintf("wirecodec: type %v registered twice", t))
		}
		encByType[t] = c
	}
}

// lookup resolves v's codec, falling back to gob for unregistered
// types.
func lookup(v any) *codec {
	if v == nil {
		return decByID[idNil]
	}
	if c, ok := encByType[reflect.TypeOf(v)]; ok {
		return c
	}
	return decByID[idGob]
}

// AppendValue appends one complete frame encoding v to dst.
func AppendValue(dst []byte, v any) ([]byte, error) {
	c := lookup(v)
	start := len(dst)
	dst = append(dst, frameMagic[0], frameMagic[1], Version)
	dst = AppendU16(dst, c.id)
	dst = AppendU32(dst, 0) // length backfilled below
	out, err := c.enc(dst, v)
	if err != nil {
		return nil, fmt.Errorf("wirecodec: encoding %s: %w", c.name, err)
	}
	n := len(out) - start - headerLen
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %s payload is %d bytes", ErrOversizedFrame, c.name, n)
	}
	binary.BigEndian.PutUint32(out[start+5:], uint32(n))
	return out, nil
}

// Marshal encodes v as one frame in a fresh buffer.
func Marshal(v any) ([]byte, error) {
	return AppendValue(nil, v)
}

// MarshalRegistered encodes v only if a hand-rolled codec covers its
// type; it reports false for gob-fallback types. The transport digest
// layer uses it to hash canonical encodings directly — all or nothing,
// so a digest never mixes binary and gob forms for one value.
func MarshalRegistered(v any) ([]byte, bool) {
	c := lookup(v)
	if c.id == idGob {
		return nil, false
	}
	b, err := AppendValue(nil, v)
	if err != nil {
		return nil, false
	}
	return b, true
}

// ConsumeValue parses one frame from the front of data, returning the
// value and the bytes consumed.
func ConsumeValue(data []byte) (any, int, error) {
	if len(data) < headerLen {
		return nil, 0, ErrTruncatedFrame
	}
	if data[0] != frameMagic[0] || data[1] != frameMagic[1] {
		return nil, 0, ErrBadMagic
	}
	if data[2] != Version {
		return nil, 0, &VersionError{Got: data[2], Want: Version}
	}
	id := binary.BigEndian.Uint16(data[3:5])
	n := int(binary.BigEndian.Uint32(data[5:9]))
	if n > MaxPayload {
		return nil, 0, fmt.Errorf("%w: %d-byte payload", ErrOversizedFrame, n)
	}
	if len(data) < headerLen+n {
		return nil, 0, ErrTruncatedFrame
	}
	c, ok := decByID[id]
	if !ok {
		return nil, 0, &UnknownTypeError{ID: id}
	}
	v, err := c.dec(data[headerLen : headerLen+n])
	if err != nil {
		return nil, 0, fmt.Errorf("wirecodec: decoding %s: %w", c.name, err)
	}
	return v, headerLen + n, nil
}

// Unmarshal parses exactly one frame spanning all of data.
func Unmarshal(data []byte) (any, error) {
	v, n, err := ConsumeValue(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("wirecodec: %d trailing bytes after frame", len(data)-n)
	}
	return v, nil
}

// Pooled encode/decode buffers. Oversized buffers are dropped rather
// than returned so one pathological message cannot pin memory.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) {
	if cap(*b) <= maxPooledBuf {
		*b = (*b)[:0]
		bufPool.Put(b)
	}
}

// WriteValue encodes v into a pooled buffer and writes the frame to w
// in a single Write call, so stream transports emit one packet per
// message without an allocation per send.
func WriteValue(w io.Writer, v any) error {
	b := getBuf()
	defer putBuf(b)
	out, err := AppendValue((*b)[:0], v)
	if err != nil {
		return err
	}
	*b = out
	_, err = w.Write(out)
	return err
}

// ReadValue reads one frame from r and decodes it. Short reads and
// malformed headers surface as errors; the payload passes through a
// pooled buffer, which is safe because decoders copy what they keep.
func ReadValue(r io.Reader) (any, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return nil, ErrBadMagic
	}
	if hdr[2] != Version {
		return nil, &VersionError{Got: hdr[2], Want: Version}
	}
	id := binary.BigEndian.Uint16(hdr[3:5])
	n := int(binary.BigEndian.Uint32(hdr[5:9]))
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d-byte payload", ErrOversizedFrame, n)
	}
	c, ok := decByID[id]
	if !ok {
		return nil, &UnknownTypeError{ID: id}
	}
	b := getBuf()
	defer putBuf(b)
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	payload := (*b)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wirecodec: reading %s payload: %w", c.name, err)
	}
	v, err := c.dec(payload)
	if err != nil {
		return nil, fmt.Errorf("wirecodec: decoding %s: %w", c.name, err)
	}
	return v, nil
}

// Builtin codecs: the gob fallback, nil, group elements, and the
// scalar types protocol messages are built from.
func init() {
	decByID[idGob] = &codec{id: idGob, name: "gob", enc: encGob, dec: decGob}
	decByID[idNil] = &codec{
		id: idNil, name: "nil",
		enc: func(dst []byte, v any) ([]byte, error) { return dst, nil },
		dec: func(data []byte) (any, error) {
			if len(data) != 0 {
				return nil, fmt.Errorf("nil frame carries %d payload bytes", len(data))
			}
			return nil, nil
		},
	}

	protos := make([]any, 0, 2)
	for _, e := range group.ElementPrototypes() {
		protos = append(protos, e)
	}
	Register(IDElement, "group element", protos,
		func(dst []byte, v any) ([]byte, error) {
			return group.AppendElementWire(dst, v.(group.Element))
		},
		func(data []byte) (any, error) {
			e, n, err := group.DecodeElementWire(data)
			if err != nil {
				return nil, err
			}
			if n != len(data) {
				return nil, fmt.Errorf("%d trailing bytes after element", len(data)-n)
			}
			return e, nil
		})

	Register(idBigInt, "big integer", []any{new(big.Int)},
		func(dst []byte, v any) ([]byte, error) { return AppendBigInt(dst, v.(*big.Int)) },
		func(data []byte) (any, error) {
			r := NewReader(data)
			v := r.BigInt()
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return v, nil
		})

	Register(idBigInts, "big integer slice", []any{[]*big.Int{}},
		func(dst []byte, v any) ([]byte, error) { return AppendBigInts(dst, v.([]*big.Int)) },
		func(data []byte) (any, error) {
			r := NewReader(data)
			v := r.BigInts()
			if err := r.Finish(); err != nil {
				return nil, err
			}
			if v == nil {
				v = []*big.Int{}
			}
			return v, nil
		})

	Register(idInt, "int", []any{int(0)},
		func(dst []byte, v any) ([]byte, error) { return AppendI64(dst, int64(v.(int))), nil },
		func(data []byte) (any, error) {
			r := NewReader(data)
			v := r.Int()
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return v, nil
		})

	Register(idString, "string", []any{""},
		func(dst []byte, v any) ([]byte, error) { return AppendString(dst, v.(string)), nil },
		func(data []byte) (any, error) {
			r := NewReader(data)
			v := r.String()
			if err := r.Finish(); err != nil {
				return nil, err
			}
			return v, nil
		})

	Register(idBytes, "byte slice", []any{[]byte{}},
		func(dst []byte, v any) ([]byte, error) { return AppendBytes(dst, v.([]byte)), nil },
		func(data []byte) (any, error) {
			r := NewReader(data)
			v := r.Bytes()
			if err := r.Finish(); err != nil {
				return nil, err
			}
			if v == nil {
				v = []byte{}
			}
			return v, nil
		})
}

// encGob is the fallback encoder for unregistered types. It spends a
// fresh gob encoder (type descriptors and all) per value — exactly the
// cost profile the registered codecs exist to avoid — but keeps
// auxiliary traffic working without a hand-written layout.
func encGob(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

func decGob(data []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}
