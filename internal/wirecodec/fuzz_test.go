package wirecodec

import (
	"bytes"
	"math/big"
	"testing"
)

// Receive-boundary contract: arbitrary bytes from a peer must produce
// errors, never panics, and every accepted value must re-encode.

func fuzzSeeds(f *testing.F) {
	seeds := []any{
		nil,
		int(42),
		"seed",
		[]byte{1, 2, 3},
		big.NewInt(-77),
		new(big.Int).Lsh(big.NewInt(5), 500),
		[]*big.Int{big.NewInt(1), big.NewInt(2)},
	}
	for _, v := range seeds {
		b, err := Marshal(v)
		if err != nil {
			f.Fatalf("seed %#v: %v", v, err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{'G', 'W', Version, 0, 3, 0, 0, 0, 0})
	f.Add([]byte{'G', 'W', Version + 1, 0, 6, 0, 0, 0, 8})
}

func FuzzConsumeValue(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := ConsumeValue(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted values must survive a re-encode; gob-fallback values
		// may legitimately lack a concrete re-encoding (nil interfaces
		// inside), so only registered codecs are held to it.
		if enc, ok := MarshalRegistered(v); ok {
			if _, err := Unmarshal(enc); err != nil {
				t.Fatalf("re-encoded value failed to decode: %v", err)
			}
		}
	})
}

func FuzzReadValue(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadValue(bytes.NewReader(data))
		if err != nil {
			return
		}
		if enc, ok := MarshalRegistered(v); ok {
			if _, err := Unmarshal(enc); err != nil {
				t.Fatalf("re-encoded value failed to decode: %v", err)
			}
		}
	})
}

func FuzzReaderPrimitives(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.I64()
		_ = r.Bool()
		_ = r.Bytes()
		_ = r.String()
		_ = r.BigInt()
		_ = r.BigInts()
		_ = r.Element()
		_ = r.Err()
	})
}
