package wirecodec

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"groupranking/internal/group"
)

// Reader parses the fixed-width primitives codecs are built from. It
// latches the first error: every accessor after a failure returns a
// zero value and does nothing, so decoders read a whole structure
// straight through and check Err once at the end. A Reader never
// panics on truncated, oversized or garbage input — that is the
// receive-boundary contract fuzzed by this package's tests.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader reads from data. The Reader aliases data; accessors that
// return byte slices copy, so the caller may reuse data afterwards.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Err returns the first parse error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the unread byte count.
func (r *Reader) Len() int { return len(r.data) - r.off }

// Consumed returns how many bytes have been read.
func (r *Reader) Consumed() int { return r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wirecodec: "+format, args...)
	}
}

// take returns the next n raw bytes without copying, or nil on
// truncation.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail("truncated input: need %d bytes, have %d", n, r.Len())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int stored as I64, rejecting values that do not fit.
func (r *Reader) Int() int {
	v := r.I64()
	n := int(v)
	if int64(n) != v {
		r.fail("integer %d overflows int", v)
		return 0
	}
	return n
}

// Bool reads one byte as a bool, rejecting anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("malformed bool")
		return false
	}
}

// Bytes reads a u32-length-prefixed byte string, returning a copy.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Count reads a u32 element count and validates it against the bytes
// remaining: a count that could not possibly fit (each element needs at
// least minBytes) is rejected before any allocation, so a hostile
// 4-byte header cannot demand a multi-gigabyte slice.
func (r *Reader) Count(minBytes int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > r.Len()/minBytes {
		r.fail("implausible element count %d for %d remaining bytes", n, r.Len())
		return 0
	}
	return n
}

// BigInt reads a sign byte plus u32-length-prefixed magnitude.
func (r *Reader) BigInt() *big.Int {
	neg := r.U8()
	if neg > 1 {
		r.fail("malformed big.Int sign")
		return nil
	}
	n := int(r.U32())
	if n > maxBigIntBytes {
		r.fail("oversized big.Int (%d bytes)", n)
		return nil
	}
	b := r.take(n)
	if r.err != nil {
		return nil
	}
	v := new(big.Int).SetBytes(b)
	if neg == 1 {
		if v.Sign() == 0 {
			r.fail("malformed big.Int: negative zero")
			return nil
		}
		v.Neg(v)
	}
	return v
}

// BigInts reads a count-prefixed []*big.Int.
func (r *Reader) BigInts() []*big.Int {
	n := r.Count(5)
	if r.err != nil {
		return nil
	}
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = r.BigInt()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Element reads one structural group-element form (group.binwire).
// Membership is NOT checked here — the protocol layer validates every
// foreign element via group.Validate, exactly as on the gob path.
func (r *Reader) Element() group.Element {
	if r.err != nil {
		return nil
	}
	e, n, err := group.DecodeElementWire(r.data[r.off:])
	if err != nil {
		r.fail("%v", err)
		return nil
	}
	r.off += n
	return e
}

// Value reads one nested self-describing value frame.
func (r *Reader) Value() any {
	if r.err != nil {
		return nil
	}
	v, n, err := ConsumeValue(r.data[r.off:])
	if err != nil {
		r.fail("nested value: %v", err)
		return nil
	}
	r.off += n
	return v
}

// Finish returns the latched error, or an error if unread bytes
// remain. Every codec decoder ends with it so a frame whose payload
// carries trailing garbage is rejected rather than silently accepted.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return fmt.Errorf("wirecodec: %d trailing bytes after value", r.Len())
	}
	return nil
}

// maxBigIntBytes bounds one integer payload, mirroring the group
// layer's 8192-bit structural cap.
const maxBigIntBytes = 8192 / 8

// Append helpers: the encode-side counterparts, all appending to dst
// and returning the extended slice so codecs compose without
// intermediate allocations.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// AppendU16 appends a big-endian uint16.
func AppendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// AppendI64 appends a big-endian two's-complement int64.
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendBool appends a bool as one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends a u32-length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a u32-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendBigInt appends sign ‖ u32 len ‖ magnitude. A nil *big.Int is a
// programming error on the send side and is reported, not encoded.
func AppendBigInt(dst []byte, v *big.Int) ([]byte, error) {
	if v == nil {
		return nil, fmt.Errorf("wirecodec: nil *big.Int has no wire form")
	}
	if v.Sign() < 0 {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	b := v.Bytes()
	if len(b) > maxBigIntBytes {
		return nil, fmt.Errorf("wirecodec: oversized big.Int (%d bytes)", len(b))
	}
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

// AppendBigInts appends a count-prefixed []*big.Int.
func AppendBigInts(dst []byte, vs []*big.Int) ([]byte, error) {
	dst = AppendU32(dst, uint32(len(vs)))
	var err error
	for _, v := range vs {
		if dst, err = AppendBigInt(dst, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// AppendElement appends one structural group-element form.
func AppendElement(dst []byte, e group.Element) ([]byte, error) {
	return group.AppendElementWire(dst, e)
}
