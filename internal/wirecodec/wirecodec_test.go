package wirecodec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/big"
	"reflect"
	"testing"

	"groupranking/internal/group"
)

func testGroups(t *testing.T) []group.Group {
	t.Helper()
	dl, err := group.ToyDL256()
	if err != nil {
		t.Fatalf("ToyDL256: %v", err)
	}
	return []group.Group{dl, group.Secp160r1()}
}

func TestRoundtripScalars(t *testing.T) {
	cases := []any{
		nil,
		int(0),
		int(-42),
		int(1 << 40),
		"",
		"hello wire",
		[]byte{},
		[]byte{0, 1, 2, 255},
		big.NewInt(0),
		big.NewInt(-12345),
		new(big.Int).Lsh(big.NewInt(1), 1000),
		[]*big.Int{},
		[]*big.Int{big.NewInt(7), big.NewInt(-9), big.NewInt(0)},
	}
	for _, v := range cases {
		b, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%#v): %v", v, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%#v): %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("roundtrip %#v: got %#v", v, got)
		}
	}
}

func TestRoundtripElements(t *testing.T) {
	for _, g := range testGroups(t) {
		k := big.NewInt(123456789)
		for _, e := range []group.Element{g.Identity(), g.Generator(), group.ExpGen(g, k)} {
			b, err := Marshal(e)
			if err != nil {
				t.Fatalf("%s: Marshal: %v", g.Name(), err)
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("%s: Unmarshal: %v", g.Name(), err)
			}
			ge, ok := got.(group.Element)
			if !ok {
				t.Fatalf("%s: decoded %T, want element", g.Name(), got)
			}
			if !g.Equal(ge, e) {
				t.Fatalf("%s: element changed across roundtrip", g.Name())
			}
		}
	}
}

func TestGobFallback(t *testing.T) {
	type oddball struct {
		A string
		B int
	}
	// gob needs interface registration for the fallback's `any` slot
	gob.Register(map[string]int{})
	v := map[string]int{"x": 3}
	b, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal fallback: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal fallback: %v", err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("fallback roundtrip: got %#v want %#v", got, v)
	}
	if _, ok := MarshalRegistered(oddball{A: "q", B: 1}); ok {
		t.Fatal("MarshalRegistered claimed coverage for an unregistered type")
	}
	if _, ok := MarshalRegistered(big.NewInt(9)); !ok {
		t.Fatal("MarshalRegistered refused a registered type")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	v := []*big.Int{big.NewInt(42), new(big.Int).Lsh(big.NewInt(3), 300)}
	a, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same value produced different encodings")
	}
}

func TestFrameErrors(t *testing.T) {
	good, err := Marshal(big.NewInt(77))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			if _, _, err := ConsumeValue(good[:i]); err == nil {
				t.Fatalf("accepted %d-byte prefix of a %d-byte frame", i, len(good))
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, _, err := ConsumeValue(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[2] = Version + 1
		_, _, err := ConsumeValue(b)
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("got %v, want VersionError", err)
		}
		if ve.Got != Version+1 || ve.Want != Version {
			t.Fatalf("VersionError fields got=%d want=%d", ve.Got, ve.Want)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[3], b[4] = 0xFF, 0xFF
		_, _, err := ConsumeValue(b)
		var ue *UnknownTypeError
		if !errors.As(err, &ue) {
			t.Fatalf("got %v, want UnknownTypeError", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[5], b[6], b[7], b[8] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, _, err := ConsumeValue(b); !errors.Is(err, ErrOversizedFrame) {
			t.Fatalf("got %v, want ErrOversizedFrame", err)
		}
	})
	t.Run("trailing payload garbage", func(t *testing.T) {
		// Extend the payload by one byte and fix up the length so the
		// frame parses but the int codec sees 9 payload bytes.
		b := append(append([]byte(nil), good...), 0)
		b[8]++
		if _, _, err := ConsumeValue(b); err == nil {
			t.Fatal("accepted payload with trailing bytes")
		}
	})
	t.Run("trailing frame garbage", func(t *testing.T) {
		if _, err := Unmarshal(append(append([]byte(nil), good...), 1, 2, 3)); err == nil {
			t.Fatal("Unmarshal accepted trailing bytes")
		}
	})
}

func TestStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	vals := []any{int(5), "stream", big.NewInt(1 << 30), nil}
	for _, v := range vals {
		if err := WriteValue(&buf, v); err != nil {
			t.Fatalf("WriteValue(%#v): %v", v, err)
		}
	}
	for _, want := range vals {
		got, err := ReadValue(&buf)
		if err != nil {
			t.Fatalf("ReadValue: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream roundtrip: got %#v want %#v", got, want)
		}
	}
	if _, err := ReadValue(&buf); err == nil {
		t.Fatal("ReadValue on empty stream succeeded")
	}
}

func TestReaderHostileCounts(t *testing.T) {
	// A 4-byte count header demanding millions of entries must fail
	// before allocating, not after.
	b := AppendU32(nil, 1<<31-1)
	r := NewReader(b)
	if got := r.Count(5); got != 0 || r.Err() == nil {
		t.Fatalf("Count accepted implausible header: n=%d err=%v", got, r.Err())
	}
	r2 := NewReader(AppendU32(nil, 1<<30))
	if r2.BigInts() != nil || r2.Err() == nil {
		t.Fatal("BigInts accepted implausible count")
	}
}

func TestNestedValueReader(t *testing.T) {
	inner, err := AppendValue(nil, big.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(inner)
	v := r.Value()
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if v.(*big.Int).Int64() != 99 {
		t.Fatalf("nested value: got %v", v)
	}
}
