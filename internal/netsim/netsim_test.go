package netsim

import (
	"math"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/transport"
)

func TestRandomTopologyInvariants(t *testing.T) {
	rng := fixedbig.NewDRBG("topo")
	cases := []struct{ nodes, edges int }{
		{5, 4}, {10, 15}, {20, 30}, {80, 320},
	}
	for _, tc := range cases {
		topo, err := NewRandomTopology(tc.nodes, tc.edges, rng)
		if err != nil {
			t.Fatalf("nodes=%d edges=%d: %v", tc.nodes, tc.edges, err)
		}
		if topo.Edges() != tc.edges {
			t.Errorf("got %d edges, want %d", topo.Edges(), tc.edges)
		}
		if !topo.Connected() {
			t.Errorf("nodes=%d edges=%d: graph disconnected", tc.nodes, tc.edges)
		}
		// Edge count by direct inspection must match.
		count := 0
		for a := 0; a < tc.nodes; a++ {
			for b := a + 1; b < tc.nodes; b++ {
				if topo.HasEdge(a, b) {
					count++
				}
			}
		}
		if count != tc.edges {
			t.Errorf("adjacency count %d, want %d", count, tc.edges)
		}
	}
}

func TestRandomTopologyErrors(t *testing.T) {
	rng := fixedbig.NewDRBG("topo-err")
	if _, err := NewRandomTopology(1, 0, rng); err == nil {
		t.Error("single node accepted")
	}
	if _, err := NewRandomTopology(5, 3, rng); err == nil {
		t.Error("edge count below spanning tree accepted")
	}
	if _, err := NewRandomTopology(5, 11, rng); err == nil {
		t.Error("edge count above complete graph accepted")
	}
}

func TestSpanningTreeEdgeCase(t *testing.T) {
	// Deleting down to exactly nodes−1 edges must yield a tree.
	rng := fixedbig.NewDRBG("tree")
	topo, err := NewRandomTopology(8, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() || topo.Edges() != 7 {
		t.Error("spanning tree construction failed")
	}
}

func TestPathsAreShortest(t *testing.T) {
	rng := fixedbig.NewDRBG("paths")
	topo, err := NewRandomTopology(12, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	paths := topo.Paths()
	for a := 0; a < 12; a++ {
		if len(paths[a][a]) != 1 || paths[a][a][0] != a {
			t.Fatalf("self path of %d is %v", a, paths[a][a])
		}
		for b := 0; b < 12; b++ {
			p := paths[a][b]
			if p[0] != a || p[len(p)-1] != b {
				t.Fatalf("path %d→%d has wrong endpoints: %v", a, b, p)
			}
			for h := 0; h+1 < len(p); h++ {
				if !topo.HasEdge(p[h], p[h+1]) {
					t.Fatalf("path %d→%d uses missing edge %d-%d", a, b, p[h], p[h+1])
				}
			}
			// Symmetric distance (undirected graph).
			if len(paths[b][a]) != len(p) {
				t.Fatalf("asymmetric distances %d→%d", a, b)
			}
			// Direct neighbours must use the single-hop path.
			if topo.HasEdge(a, b) && len(p) != 2 {
				t.Fatalf("neighbours %d,%d routed over %d hops", a, b, len(p)-1)
			}
		}
	}
}

func fullMesh(t *testing.T, nodes int) *Topology {
	t.Helper()
	topo, err := NewRandomTopology(nodes, nodes*(nodes-1)/2, fixedbig.NewDRBG("mesh"))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestReplaySingleMessage(t *testing.T) {
	topo := fullMesh(t, 3)
	rep, err := NewReplay(topo, LinkSpec{BandwidthBps: 1e6, LatencySec: 0.1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB over a 1 Mbps direct link: 8 s serialisation + 0.1 s latency.
	trace := []transport.Event{{Round: 1, From: 0, To: 1, Bytes: 1_000_000}}
	got, err := rep.Run(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 + 0.1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %f s, want %f s", got, want)
	}
}

func TestReplayCongestionSerialises(t *testing.T) {
	topo := fullMesh(t, 3)
	link := LinkSpec{BandwidthBps: 1e6, LatencySec: 0}
	rep, err := NewReplay(topo, link, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two messages on the same directed link in the same round must
	// queue: 2 × 1 s serialisation.
	trace := []transport.Event{
		{Round: 1, From: 0, To: 1, Bytes: 125_000},
		{Round: 1, From: 0, To: 1, Bytes: 125_000},
	}
	got, err := rep.Run(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0) > 1e-9 {
		t.Errorf("got %f s, want 2.0 s", got)
	}
	// Opposite directions are duplex: no queueing.
	trace = []transport.Event{
		{Round: 1, From: 0, To: 1, Bytes: 125_000},
		{Round: 1, From: 1, To: 0, Bytes: 125_000},
	}
	got, err = rep.Run(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("duplex: got %f s, want 1.0 s", got)
	}
}

func TestReplayRoundBarrier(t *testing.T) {
	topo := fullMesh(t, 3)
	link := LinkSpec{BandwidthBps: 1e6, LatencySec: 0.5}
	rep, err := NewReplay(topo, link, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two rounds of one latency-only message each: barriers add up.
	trace := []transport.Event{
		{Round: 1, From: 0, To: 1, Bytes: 0},
		{Round: 2, From: 1, To: 2, Bytes: 0},
	}
	got, err := rep.Run(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("got %f s, want 1.0 s (two 0.5 s rounds)", got)
	}
}

func TestReplayComputeTime(t *testing.T) {
	topo := fullMesh(t, 2)
	rep, err := NewReplay(topo, LinkSpec{BandwidthBps: 1e9, LatencySec: 0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	trace := []transport.Event{
		{Round: 1, From: 0, To: 1, Bytes: 1},
		{Round: 2, From: 0, To: 1, Bytes: 1},
	}
	got, err := rep.Run(trace, []float64{0.25, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.5 {
		t.Errorf("compute time not folded in: %f s", got)
	}
}

func TestReplayMultiHopLatency(t *testing.T) {
	// A path graph 0-1-2 forces two hops between parties at 0 and 2.
	rng := fixedbig.NewDRBG("multihop")
	var topo *Topology
	for {
		candidate, err := NewRandomTopology(3, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Want the path topology with node 1 in the middle.
		if candidate.HasEdge(0, 1) && candidate.HasEdge(1, 2) && !candidate.HasEdge(0, 2) {
			topo = candidate
			break
		}
	}
	rep, err := NewReplay(topo, LinkSpec{BandwidthBps: 1e9, LatencySec: 0.1}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	trace := []transport.Event{{Round: 1, From: 0, To: 1, Bytes: 0}}
	got, err := rep.Run(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-6 {
		t.Errorf("two-hop latency: got %f s, want 0.2 s", got)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	topo := fullMesh(t, 2)
	rep, err := NewReplay(topo, PaperLink(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty trace took %f s", got)
	}
}

func TestNewReplayValidation(t *testing.T) {
	topo := fullMesh(t, 3)
	if _, err := NewReplay(topo, LinkSpec{}, []int{0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewReplay(topo, PaperLink(), []int{0, 0}); err == nil {
		t.Error("duplicate assignment accepted")
	}
	if _, err := NewReplay(topo, PaperLink(), []int{0, 9}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestRandomAssignment(t *testing.T) {
	topo := fullMesh(t, 10)
	rng := fixedbig.NewDRBG("assign")
	assign, err := RandomAssignment(topo, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 6 {
		t.Fatalf("got %d assignments", len(assign))
	}
	seen := make(map[int]bool)
	for _, node := range assign {
		if node < 0 || node >= 10 || seen[node] {
			t.Fatalf("bad assignment %v", assign)
		}
		seen[node] = true
	}
	if _, err := RandomAssignment(topo, 11, rng); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestPaperTopologyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("80-node topology generation is slow in -short mode")
	}
	rng := fixedbig.NewDRBG("paper-scale")
	topo, err := NewRandomTopology(80, 320, rng)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Edges() != 320 || !topo.Connected() {
		t.Error("paper topology invariants violated")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	topo := fullMesh(t, 3)
	link := LinkSpec{BandwidthBps: 1e6, LatencySec: 0}
	rep, err := NewReplay(topo, link, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two messages on one link (queueing), one on another.
	trace := []transport.Event{
		{Round: 1, From: 0, To: 1, Bytes: 125_000}, // 1 s
		{Round: 1, From: 0, To: 1, Bytes: 125_000}, // 1 s, queued
		{Round: 1, From: 2, To: 1, Bytes: 125_000}, // 1 s, parallel link
	}
	stats, err := rep.RunStats(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 3 {
		t.Errorf("messages = %d", stats.Messages)
	}
	if math.Abs(stats.TotalSec-2.0) > 1e-9 {
		t.Errorf("total %f, want 2.0", stats.TotalSec)
	}
	if math.Abs(stats.BusiestLinkSec-2.0) > 1e-9 {
		t.Errorf("busiest link %f, want 2.0 (two queued seconds)", stats.BusiestLinkSec)
	}
	// Two used links: 2.0/2.0 and 1.0/2.0 → mean 0.75.
	if math.Abs(stats.MeanLinkUtilisation-0.75) > 1e-9 {
		t.Errorf("mean utilisation %f, want 0.75", stats.MeanLinkUtilisation)
	}
	// The empty trace yields zeroed stats.
	empty, err := rep.RunStats(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.TotalSec != 0 || empty.Messages != 0 {
		t.Errorf("empty trace stats %+v", empty)
	}
}
