// Package netsim is a discrete-event, flow-level network simulator
// standing in for the NS2 setup of the paper's Section VII: a random
// connected graph built by deleting edges from a complete graph, duplex
// links with fixed bandwidth and propagation delay, shortest-path (hop
// count) routing, and per-link FIFO queueing so concurrent transfers
// congest each other. Protocol executions recorded as transport traces
// are replayed over the simulated network with synchronous round
// barriers, yielding the end-to-end execution times of Fig. 3(b).
//
// The substitution versus the paper: NS2 simulates TCP packet dynamics;
// we simulate store-and-forward message flows with link serialisation
// and queueing. Both models make round count × message size interact
// with congestion, which is the effect the experiment measures.
package netsim

import (
	"fmt"
	"io"
	"math/big"
	"sort"

	"groupranking/internal/fixedbig"
	"groupranking/internal/transport"
)

// Topology is an undirected connected graph.
type Topology struct {
	nodes int
	adj   [][]bool
	edges int
}

// NewRandomTopology builds the paper's random graph: start from the
// complete graph on nodes vertices and delete uniformly random edges —
// skipping any whose removal would disconnect the graph — until exactly
// targetEdges remain.
func NewRandomTopology(nodes, targetEdges int, rng io.Reader) (*Topology, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("netsim: need at least two nodes, got %d", nodes)
	}
	complete := nodes * (nodes - 1) / 2
	if targetEdges < nodes-1 || targetEdges > complete {
		return nil, fmt.Errorf("netsim: target edge count %d outside [%d, %d]", targetEdges, nodes-1, complete)
	}
	t := &Topology{nodes: nodes, adj: make([][]bool, nodes), edges: complete}
	for i := range t.adj {
		t.adj[i] = make([]bool, nodes)
		for j := range t.adj[i] {
			t.adj[i][j] = i != j
		}
	}
	type edge struct{ a, b int }
	var candidates []edge
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			candidates = append(candidates, edge{a, b})
		}
	}
	for t.edges > targetEdges {
		if len(candidates) == 0 {
			return nil, fmt.Errorf("netsim: no deletable edge left at %d edges", t.edges)
		}
		kBig, err := fixedbig.RandInt(rng, big.NewInt(int64(len(candidates))))
		if err != nil {
			return nil, err
		}
		k := int(kBig.Int64())
		e := candidates[k]
		candidates[k] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
		if !t.adj[e.a][e.b] {
			continue
		}
		t.adj[e.a][e.b], t.adj[e.b][e.a] = false, false
		if t.connected() {
			t.edges--
		} else {
			t.adj[e.a][e.b], t.adj[e.b][e.a] = true, true
		}
	}
	return t, nil
}

// Nodes returns the vertex count.
func (t *Topology) Nodes() int { return t.nodes }

// Edges returns the current undirected edge count.
func (t *Topology) Edges() int { return t.edges }

// HasEdge reports whether a and b are directly linked.
func (t *Topology) HasEdge(a, b int) bool {
	return a >= 0 && b >= 0 && a < t.nodes && b < t.nodes && t.adj[a][b]
}

// connected reports whether the graph is connected (BFS from node 0).
func (t *Topology) connected() bool {
	seen := make([]bool, t.nodes)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < t.nodes; w++ {
			if t.adj[v][w] && !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == t.nodes
}

// Connected reports whether the topology is connected.
func (t *Topology) Connected() bool { return t.connected() }

// Paths returns, for every ordered node pair, the minimum-hop path as a
// node sequence (inclusive of both endpoints), computed by BFS.
func (t *Topology) Paths() [][][]int {
	paths := make([][][]int, t.nodes)
	for src := 0; src < t.nodes; src++ {
		prev := make([]int, t.nodes)
		for i := range prev {
			prev[i] = -1
		}
		prev[src] = src
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < t.nodes; w++ {
				if t.adj[v][w] && prev[w] == -1 {
					prev[w] = v
					queue = append(queue, w)
				}
			}
		}
		paths[src] = make([][]int, t.nodes)
		for dst := 0; dst < t.nodes; dst++ {
			if prev[dst] == -1 {
				continue // unreachable (cannot happen in a connected graph)
			}
			var rev []int
			for v := dst; v != src; v = prev[v] {
				rev = append(rev, v)
			}
			rev = append(rev, src)
			path := make([]int, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			paths[src][dst] = path
		}
	}
	return paths
}

// LinkSpec fixes the per-link characteristics (the paper: 2 Mbps duplex,
// 50 ms latency).
type LinkSpec struct {
	BandwidthBps float64 // bits per second
	LatencySec   float64 // propagation delay per hop
}

// PaperLink returns the Section VII link parameters.
func PaperLink() LinkSpec { return LinkSpec{BandwidthBps: 2e6, LatencySec: 0.050} }

// Replay carries a prepared simulation environment.
type Replay struct {
	topo  *Topology
	link  LinkSpec
	paths [][][]int
	// assign maps party index to topology node.
	assign []int
}

// NewReplay prepares a replayer that places party i at node assign[i].
// Assignments must be distinct valid nodes.
func NewReplay(topo *Topology, link LinkSpec, assign []int) (*Replay, error) {
	if link.BandwidthBps <= 0 || link.LatencySec < 0 {
		return nil, fmt.Errorf("netsim: invalid link spec %+v", link)
	}
	seen := make(map[int]bool, len(assign))
	for i, node := range assign {
		if node < 0 || node >= topo.Nodes() {
			return nil, fmt.Errorf("netsim: party %d assigned to invalid node %d", i, node)
		}
		if seen[node] {
			return nil, fmt.Errorf("netsim: node %d assigned twice", node)
		}
		seen[node] = true
	}
	return &Replay{topo: topo, link: link, paths: topo.Paths(), assign: assign}, nil
}

// RandomAssignment places n parties on distinct random nodes.
func RandomAssignment(topo *Topology, n int, rng io.Reader) ([]int, error) {
	if n > topo.Nodes() {
		return nil, fmt.Errorf("netsim: %d parties exceed %d nodes", n, topo.Nodes())
	}
	perm := make([]int, topo.Nodes())
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		jBig, err := fixedbig.RandInt(rng, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, err
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:n], nil
}

// RunStats carries the replay outcome beyond the headline time.
type RunStats struct {
	// TotalSec is the simulated end-to-end time.
	TotalSec float64
	// BusiestLinkSec is the cumulative serialisation time of the most
	// loaded directed link — the congestion hot spot.
	BusiestLinkSec float64
	// MeanLinkUtilisation is the average busy fraction over directed
	// links that carried at least one message.
	MeanLinkUtilisation float64
	// Messages is the number of replayed events.
	Messages int
}

// Run replays a transport trace over the network and returns the
// simulated end-to-end time in seconds. Events are grouped by round;
// round r+1 begins only after every round-r message has been delivered
// (the synchronous barrier of the protocols). computeSecPerRound[p], if
// non-nil, is added before party p's sends in every round it
// participates in, folding computation time into the timeline.
func (r *Replay) Run(trace []transport.Event, computeSecPerRound []float64) (float64, error) {
	stats, err := r.RunStats(trace, computeSecPerRound)
	if err != nil {
		return 0, err
	}
	return stats.TotalSec, nil
}

// RunStats is Run with link-level accounting, used to analyse where the
// Fig. 3(b) time goes (latency vs congestion).
func (r *Replay) RunStats(trace []transport.Event, computeSecPerRound []float64) (RunStats, error) {
	if len(trace) == 0 {
		return RunStats{}, nil
	}
	rounds := make(map[int][]transport.Event)
	var roundIDs []int
	for _, ev := range trace {
		if _, ok := rounds[ev.Round]; !ok {
			roundIDs = append(roundIDs, ev.Round)
		}
		rounds[ev.Round] = append(rounds[ev.Round], ev)
	}
	sort.Ints(roundIDs)

	// linkFree[a][b] is the time the directed link a→b finishes its
	// current transmission (duplex: both directions independent).
	linkFree := make([][]float64, r.topo.Nodes())
	linkBusy := make([][]float64, r.topo.Nodes())
	for i := range linkFree {
		linkFree[i] = make([]float64, r.topo.Nodes())
		linkBusy[i] = make([]float64, r.topo.Nodes())
	}

	now := 0.0
	for _, round := range roundIDs {
		roundEnd := now
		for _, ev := range rounds[round] {
			if ev.From >= len(r.assign) || ev.To >= len(r.assign) {
				return RunStats{}, fmt.Errorf("netsim: trace references party %d beyond assignment", max(ev.From, ev.To))
			}
			release := now
			if computeSecPerRound != nil && ev.From < len(computeSecPerRound) {
				release += computeSecPerRound[ev.From]
			}
			src, dst := r.assign[ev.From], r.assign[ev.To]
			t := release
			path := r.paths[src][dst]
			serialise := float64(ev.Bytes) * 8 / r.link.BandwidthBps
			for h := 0; h+1 < len(path); h++ {
				a, b := path[h], path[h+1]
				start := t
				if linkFree[a][b] > start {
					start = linkFree[a][b] // queue behind the current transfer
				}
				linkFree[a][b] = start + serialise
				linkBusy[a][b] += serialise
				t = start + serialise + r.link.LatencySec
			}
			if t > roundEnd {
				roundEnd = t
			}
		}
		now = roundEnd
	}
	stats := RunStats{TotalSec: now, Messages: len(trace)}
	used, utilSum := 0, 0.0
	for a := range linkBusy {
		for b := range linkBusy[a] {
			if linkBusy[a][b] == 0 {
				continue
			}
			used++
			if linkBusy[a][b] > stats.BusiestLinkSec {
				stats.BusiestLinkSec = linkBusy[a][b]
			}
			if now > 0 {
				utilSum += linkBusy[a][b] / now
			}
		}
	}
	if used > 0 {
		stats.MeanLinkUtilisation = utilSum / float64(used)
	}
	return stats, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
