// Package shamir implements Shamir secret sharing over a prime field,
// the substrate of the paper's secret-sharing baseline (Section II). A
// secret is embedded as the constant term of a uniformly random degree-d
// polynomial; any d+1 shares reconstruct it by Lagrange interpolation and
// any d shares are information-theoretically independent of it.
//
// Share x-coordinates are the party indices shifted by one (party i holds
// the evaluation at x = i+1), the convention the ssmpc engine relies on.
package shamir

import (
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/fixedbig"
)

// Share is one party's evaluation point of the sharing polynomial.
type Share struct {
	X int      // evaluation abscissa (party index + 1), > 0
	Y *big.Int // polynomial value mod p
}

// Split shares secret with a uniformly random polynomial of the given
// degree among n parties. Reconstruction requires degree+1 shares;
// any `degree` shares reveal nothing.
func Split(secret *big.Int, degree, n int, p *big.Int, rng io.Reader) ([]Share, error) {
	if degree < 0 {
		return nil, fmt.Errorf("shamir: negative degree %d", degree)
	}
	if n < degree+1 {
		return nil, fmt.Errorf("shamir: %d parties cannot carry a degree-%d sharing", n, degree)
	}
	coeffs := make([]*big.Int, degree+1)
	coeffs[0] = new(big.Int).Mod(secret, p)
	for i := 1; i <= degree; i++ {
		c, err := fixedbig.RandInt(rng, p)
		if err != nil {
			return nil, fmt.Errorf("shamir: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := big.NewInt(int64(i + 1))
		shares[i] = Share{X: i + 1, Y: evalPoly(coeffs, x, p)}
	}
	return shares, nil
}

// evalPoly evaluates the polynomial at x via Horner's rule.
func evalPoly(coeffs []*big.Int, x, p *big.Int) *big.Int {
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, p)
	}
	return acc
}

// Reconstruct interpolates the secret (the polynomial at 0) from the
// given shares. The shares must have distinct positive abscissae; the
// caller must supply at least degree+1 of them for a correct result.
func Reconstruct(shares []Share, p *big.Int) (*big.Int, error) {
	xs := make([]int, len(shares))
	for i, s := range shares {
		xs[i] = s.X
	}
	lambdas, err := LagrangeAtZero(xs, p)
	if err != nil {
		return nil, err
	}
	secret := new(big.Int)
	for i, s := range shares {
		secret.Add(secret, new(big.Int).Mul(lambdas[i], s.Y))
	}
	return secret.Mod(secret, p), nil
}

// LagrangeAtZero returns the interpolation coefficients λ_i such that
// f(0) = Σ λ_i·f(x_i) for any polynomial of degree < len(xs). The ssmpc
// degree-reduction step uses these directly.
func LagrangeAtZero(xs []int, p *big.Int) ([]*big.Int, error) {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("shamir: abscissa %d must be positive", x)
		}
		if seen[x] {
			return nil, fmt.Errorf("shamir: duplicate abscissa %d", x)
		}
		seen[x] = true
	}
	lambdas := make([]*big.Int, len(xs))
	for i, xi := range xs {
		num := big.NewInt(1)
		den := big.NewInt(1)
		for j, xj := range xs {
			if j == i {
				continue
			}
			num.Mul(num, big.NewInt(int64(-xj)))
			num.Mod(num, p)
			den.Mul(den, big.NewInt(int64(xi-xj)))
			den.Mod(den, p)
		}
		denInv := new(big.Int).ModInverse(den, p)
		if denInv == nil {
			return nil, fmt.Errorf("shamir: abscissae collide modulo p")
		}
		lambdas[i] = num.Mul(num, denInv).Mod(num, p)
	}
	return lambdas, nil
}

// AddShares adds two shares of the same abscissa pointwise; the result
// shares the sum of the secrets.
func AddShares(a, b Share, p *big.Int) (Share, error) {
	if a.X != b.X {
		return Share{}, fmt.Errorf("shamir: adding shares with abscissae %d and %d", a.X, b.X)
	}
	y := new(big.Int).Add(a.Y, b.Y)
	return Share{X: a.X, Y: y.Mod(y, p)}, nil
}

// ScaleShare multiplies a share by a public scalar; the result shares
// k times the secret.
func ScaleShare(a Share, k, p *big.Int) Share {
	y := new(big.Int).Mul(a.Y, k)
	return Share{X: a.X, Y: y.Mod(y, p)}
}

// AddConst adds a public constant to a share; the result shares
// secret + k. (The constant term shifts; higher coefficients are
// untouched, so only the secret changes.)
func AddConst(a Share, k, p *big.Int) Share {
	y := new(big.Int).Add(a.Y, k)
	return Share{X: a.X, Y: y.Mod(y, p)}
}
