package shamir

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/fixedbig"
)

func testPrime(t *testing.T) *big.Int {
	t.Helper()
	p, err := rand.Prime(fixedbig.NewDRBG("shamir-prime"), 96)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSplitReconstruct(t *testing.T) {
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-basic")
	cases := []struct {
		name      string
		secret    int64
		degree, n int
	}{
		{"deg1 n3", 42, 1, 3},
		{"deg2 n5", 7, 2, 5},
		{"deg0 n1", 9, 0, 1},
		{"deg4 n9", 123456, 4, 9},
		{"zero secret", 0, 3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			secret := big.NewInt(tc.secret)
			shares, err := Split(secret, tc.degree, tc.n, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(shares) != tc.n {
				t.Fatalf("got %d shares", len(shares))
			}
			// Reconstruct from exactly degree+1 shares.
			got, err := Reconstruct(shares[:tc.degree+1], p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(secret) != 0 {
				t.Errorf("minimal set: got %s, want %s", got, secret)
			}
			// And from all shares.
			got, err = Reconstruct(shares, p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(secret) != 0 {
				t.Errorf("full set: got %s, want %s", got, secret)
			}
		})
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-subset")
	secret := big.NewInt(777)
	shares, err := Split(secret, 2, 6, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {0, 1, 2, 3, 4}}
	for _, idx := range subsets {
		sub := make([]Share, len(idx))
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Reconstruct(sub, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Errorf("subset %v: got %s", idx, got)
		}
	}
}

func TestTooFewSharesRevealNothing(t *testing.T) {
	// With degree shares, every candidate secret is equally consistent:
	// reconstructing from d shares plus a forged share at x=n+1 can hit
	// any value. We verify the weaker operational fact that d shares
	// reconstruct to something different from the secret almost surely.
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-hiding")
	secret := big.NewInt(1234)
	mismatches := 0
	for trial := 0; trial < 20; trial++ {
		shares, err := Split(secret, 3, 7, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reconstruct(shares[:3], p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Error("degree shares reconstructed the secret every time; hiding is broken")
	}
}

func TestLinearity(t *testing.T) {
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-linear")
	f := func(a, b int32, k uint8) bool {
		sa, err := Split(big.NewInt(int64(a)), 2, 5, p, rng)
		if err != nil {
			return false
		}
		sb, err := Split(big.NewInt(int64(b)), 2, 5, p, rng)
		if err != nil {
			return false
		}
		sum := make([]Share, 5)
		for i := range sum {
			s, err := AddShares(sa[i], sb[i], p)
			if err != nil {
				return false
			}
			s = ScaleShare(s, big.NewInt(int64(k)), p)
			sum[i] = AddConst(s, big.NewInt(3), p)
		}
		got, err := Reconstruct(sum, p)
		if err != nil {
			return false
		}
		want := new(big.Int).SetInt64((int64(a) + int64(b)) * int64(k))
		want.Add(want, big.NewInt(3))
		want.Mod(want, p)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProductOfSharesHasDoubledDegree(t *testing.T) {
	// Pointwise share products reconstruct the product when 2d+1 shares
	// are used, and generally fail with only d+1 — the fact that forces
	// the degree-reduction step of the multiplication protocol.
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-product")
	a, b := big.NewInt(21), big.NewInt(2)
	sa, err := Split(a, 1, 5, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Split(b, 1, 5, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	prod := make([]Share, 5)
	for i := range prod {
		y := new(big.Int).Mul(sa[i].Y, sb[i].Y)
		prod[i] = Share{X: sa[i].X, Y: y.Mod(y, p)}
	}
	got, err := Reconstruct(prod[:3], p) // 2d+1 = 3 shares suffice
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(42)) != 0 {
		t.Errorf("2d+1 shares: got %s, want 42", got)
	}
}

func TestSplitErrors(t *testing.T) {
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-errors")
	if _, err := Split(big.NewInt(1), -1, 3, p, rng); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := Split(big.NewInt(1), 3, 3, p, rng); err == nil {
		t.Error("n < degree+1 accepted")
	}
}

func TestLagrangeErrors(t *testing.T) {
	p := testPrime(t)
	if _, err := LagrangeAtZero([]int{1, 1}, p); err == nil {
		t.Error("duplicate abscissae accepted")
	}
	if _, err := LagrangeAtZero([]int{0, 1}, p); err == nil {
		t.Error("zero abscissa accepted")
	}
}

func TestAddSharesMismatchedAbscissae(t *testing.T) {
	p := testPrime(t)
	_, err := AddShares(Share{X: 1, Y: big.NewInt(1)}, Share{X: 2, Y: big.NewInt(1)}, p)
	if err == nil {
		t.Error("mismatched abscissae accepted")
	}
}

func TestSecretReducedModP(t *testing.T) {
	p := testPrime(t)
	rng := fixedbig.NewDRBG("shamir-mod")
	over := new(big.Int).Add(p, big.NewInt(5))
	shares, err := Split(over, 1, 3, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(5)) != 0 {
		t.Errorf("got %s, want 5", got)
	}
}
