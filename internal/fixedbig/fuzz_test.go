package fixedbig

import (
	"math/big"
	"testing"
)

func FuzzBitsRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint(1))
	f.Add(uint64(0xA5), uint(8))
	f.Add(uint64(1)<<62, uint(63))
	f.Fuzz(func(t *testing.T, v uint64, width uint) {
		if width == 0 || width > 64 {
			return
		}
		x := new(big.Int).SetUint64(v)
		bits, err := Bits(x, int(width))
		if err != nil {
			// Legitimate rejection: v does not fit. Verify that claim.
			if x.BitLen() <= int(width) {
				t.Fatalf("Bits rejected fitting value %d/%d: %v", v, width, err)
			}
			return
		}
		if got := FromBits(bits); got.Cmp(x) != 0 {
			t.Fatalf("round trip %d/%d: got %s", v, width, got)
		}
	})
}

func FuzzToUnsignedRoundTrip(f *testing.F) {
	f.Add(int64(0), uint(8))
	f.Add(int64(-128), uint(8))
	f.Add(int64(127), uint(8))
	f.Fuzz(func(t *testing.T, v int64, width uint) {
		if width < 2 || width > 62 {
			return
		}
		x := big.NewInt(v)
		u, err := ToUnsigned(x, int(width))
		if err != nil {
			return // out of range, fine
		}
		s, err := ToSigned(u, int(width))
		if err != nil {
			t.Fatalf("ToSigned rejected ToUnsigned output: %v", err)
		}
		if s.Cmp(x) != 0 {
			t.Fatalf("round trip %d/%d: got %s", v, width, s)
		}
	})
}

func FuzzCentredMod(f *testing.F) {
	f.Add(int64(-50), uint64(101))
	f.Add(int64(50), uint64(101))
	f.Fuzz(func(t *testing.T, x int64, p uint64) {
		if p < 3 || p%2 == 0 {
			return
		}
		pb := new(big.Int).SetUint64(p)
		r := CentredMod(big.NewInt(x), pb)
		// Result must be congruent to x and within (−p/2, p/2].
		diff := new(big.Int).Sub(r, big.NewInt(x))
		if new(big.Int).Mod(diff, pb).Sign() != 0 {
			t.Fatalf("CentredMod(%d, %d) = %s not congruent", x, p, r)
		}
		half := new(big.Int).Rsh(pb, 1)
		negHalf := new(big.Int).Neg(half)
		if r.Cmp(negHalf) < 0 || r.Cmp(half) > 0 {
			t.Fatalf("CentredMod(%d, %d) = %s out of centred range", x, p, r)
		}
	})
}
