// Package fixedbig provides small numeric helpers shared by the protocol
// packages: bit decomposition of big integers, signed/unsigned fixed-width
// conversions, random sampling, and a deterministic DRBG used by tests.
//
// All protocol values in this repository are non-negative big.Ints carried
// together with an explicit bit width; this package centralises the
// conversions so width bookkeeping mistakes surface in exactly one place.
package fixedbig

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// Bits decomposes x into width little-endian bits (bits[0] is the least
// significant). It returns an error if x is negative or does not fit in
// width bits.
func Bits(x *big.Int, width int) ([]uint8, error) {
	if x.Sign() < 0 {
		return nil, fmt.Errorf("fixedbig: cannot decompose negative value %s", x)
	}
	if x.BitLen() > width {
		return nil, fmt.Errorf("fixedbig: value %s does not fit in %d bits", x, width)
	}
	bits := make([]uint8, width)
	for i := 0; i < width; i++ {
		bits[i] = uint8(x.Bit(i))
	}
	return bits, nil
}

// FromBits reassembles a little-endian bit slice into an integer.
func FromBits(bits []uint8) *big.Int {
	x := new(big.Int)
	for i, b := range bits {
		if b != 0 {
			x.SetBit(x, i, 1)
		}
	}
	return x
}

// ToUnsigned maps a signed integer in [-2^(width-1), 2^(width-1)) to an
// unsigned integer in [0, 2^width) by adding 2^(width-1). The mapping is
// strictly order preserving, which is the property the framework relies on
// (Section III-A of the paper).
func ToUnsigned(x *big.Int, width int) (*big.Int, error) {
	half := new(big.Int).Lsh(big.NewInt(1), uint(width-1))
	u := new(big.Int).Add(x, half)
	if u.Sign() < 0 || u.BitLen() > width {
		return nil, fmt.Errorf("fixedbig: signed value %s out of range for width %d", x, width)
	}
	return u, nil
}

// ToSigned inverts ToUnsigned.
func ToSigned(u *big.Int, width int) (*big.Int, error) {
	if u.Sign() < 0 || u.BitLen() > width {
		return nil, fmt.Errorf("fixedbig: unsigned value %s out of range for width %d", u, width)
	}
	half := new(big.Int).Lsh(big.NewInt(1), uint(width-1))
	return new(big.Int).Sub(u, half), nil
}

// RandInt returns a uniform integer in [0, max). It is a thin wrapper over
// crypto/rand.Int that accepts any entropy source.
func RandInt(rng io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, fmt.Errorf("fixedbig: RandInt max must be positive, got %s", max)
	}
	v, err := rand.Int(rng, max)
	if err != nil {
		return nil, fmt.Errorf("fixedbig: sampling random integer: %w", err)
	}
	return v, nil
}

// RandBits returns a uniform integer of at most width bits, i.e. in
// [0, 2^width).
func RandBits(rng io.Reader, width int) (*big.Int, error) {
	max := new(big.Int).Lsh(big.NewInt(1), uint(width))
	return RandInt(rng, max)
}

// RandNonZero returns a uniform integer in [1, max).
func RandNonZero(rng io.Reader, max *big.Int) (*big.Int, error) {
	one := big.NewInt(1)
	if max.Cmp(one) <= 0 {
		return nil, fmt.Errorf("fixedbig: RandNonZero max must exceed 1, got %s", max)
	}
	span := new(big.Int).Sub(max, one)
	v, err := RandInt(rng, span)
	if err != nil {
		return nil, err
	}
	return v.Add(v, one), nil
}

// CentredMod returns x mod p represented in the centred interval
// (-p/2, p/2]. Protocol packages use it to recover signed results from
// prime-field arithmetic.
func CentredMod(x, p *big.Int) *big.Int {
	r := new(big.Int).Mod(x, p)
	half := new(big.Int).Rsh(p, 1)
	if r.Cmp(half) > 0 {
		r.Sub(r, p)
	}
	return r
}

// Prime returns a probable prime of exactly the given bit length, drawn
// deterministically from rng (unlike crypto/rand.Prime, which
// deliberately desynchronises from its reader and therefore cannot be
// used when independent parties must derive the same prime from a
// shared seed).
func Prime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, fmt.Errorf("fixedbig: prime needs at least 2 bits, got %d", bits)
	}
	for {
		c, err := RandBits(rng, bits)
		if err != nil {
			return nil, err
		}
		c.SetBit(c, bits-1, 1) // exact bit length
		c.SetBit(c, 0, 1)      // odd
		if c.ProbablyPrime(32) {
			return c, nil
		}
	}
}
