package fixedbig

import (
	"crypto/sha256"
	"encoding/binary"
)

// DRBG is a deterministic random byte stream derived from a seed via
// SHA-256 in counter mode. It implements io.Reader and exists so tests and
// reproducible simulations can drive the protocol stack with replayable
// randomness. It is NOT a secure randomness source for production use;
// production call sites pass crypto/rand.Reader.
type DRBG struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

// NewDRBG returns a deterministic reader seeded from the given string.
func NewDRBG(seed string) *DRBG {
	return &DRBG{seed: sha256.Sum256([]byte(seed))}
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var block [40]byte
			copy(block[:32], d.seed[:])
			binary.BigEndian.PutUint64(block[32:], d.ctr)
			d.ctr++
			h := sha256.Sum256(block[:])
			d.buf = h[:]
		}
		k := copy(p, d.buf)
		d.buf = d.buf[k:]
		p = p[k:]
	}
	return n, nil
}
