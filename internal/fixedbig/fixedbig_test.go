package fixedbig

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBitsRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		value int64
		width int
	}{
		{"zero", 0, 8},
		{"one", 1, 1},
		{"byte", 0xA5, 8},
		{"exact width", 0xFF, 8},
		{"wide", 123456789, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := big.NewInt(tc.value)
			bits, err := Bits(x, tc.width)
			if err != nil {
				t.Fatalf("Bits(%d, %d): %v", tc.value, tc.width, err)
			}
			if len(bits) != tc.width {
				t.Fatalf("got %d bits, want %d", len(bits), tc.width)
			}
			if got := FromBits(bits); got.Cmp(x) != 0 {
				t.Fatalf("round trip: got %s, want %s", got, x)
			}
		})
	}
}

func TestBitsErrors(t *testing.T) {
	if _, err := Bits(big.NewInt(-1), 8); err == nil {
		t.Error("expected error for negative value")
	}
	if _, err := Bits(big.NewInt(256), 8); err == nil {
		t.Error("expected error for overflow value")
	}
}

func TestBitsLittleEndianOrder(t *testing.T) {
	bits, err := Bits(big.NewInt(0b1101), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 0, 1, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d: got %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestToUnsignedOrderPreserving(t *testing.T) {
	const width = 16
	prev := new(big.Int)
	first := true
	for _, v := range []int64{-32768, -1000, -1, 0, 1, 999, 32767} {
		u, err := ToUnsigned(big.NewInt(v), width)
		if err != nil {
			t.Fatalf("ToUnsigned(%d): %v", v, err)
		}
		if !first && u.Cmp(prev) <= 0 {
			t.Fatalf("order not preserved at %d", v)
		}
		prev.Set(u)
		first = false
		s, err := ToSigned(u, width)
		if err != nil {
			t.Fatalf("ToSigned: %v", err)
		}
		if s.Int64() != v {
			t.Fatalf("round trip: got %d, want %d", s.Int64(), v)
		}
	}
}

func TestToUnsignedRange(t *testing.T) {
	if _, err := ToUnsigned(big.NewInt(1<<15), 16); err == nil {
		t.Error("expected error above range")
	}
	if _, err := ToUnsigned(big.NewInt(-(1<<15)-1), 16); err == nil {
		t.Error("expected error below range")
	}
}

func TestToUnsignedQuick(t *testing.T) {
	f := func(a, b int32) bool {
		const width = 33
		ua, err1 := ToUnsigned(big.NewInt(int64(a)), width)
		ub, err2 := ToUnsigned(big.NewInt(int64(b)), width)
		if err1 != nil || err2 != nil {
			return false
		}
		return (a < b) == (ua.Cmp(ub) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandIntBounds(t *testing.T) {
	rng := NewDRBG("bounds")
	max := big.NewInt(97)
	for i := 0; i < 200; i++ {
		v, err := RandInt(rng, max)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("value %s out of [0, %s)", v, max)
		}
	}
}

func TestRandNonZero(t *testing.T) {
	rng := NewDRBG("nonzero")
	max := big.NewInt(5)
	for i := 0; i < 100; i++ {
		v, err := RandNonZero(rng, max)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() <= 0 || v.Cmp(max) >= 0 {
			t.Fatalf("value %s out of [1, %s)", v, max)
		}
	}
}

func TestRandErrors(t *testing.T) {
	rng := NewDRBG("err")
	if _, err := RandInt(rng, big.NewInt(0)); err == nil {
		t.Error("expected error for max = 0")
	}
	if _, err := RandNonZero(rng, big.NewInt(1)); err == nil {
		t.Error("expected error for max = 1")
	}
}

func TestCentredMod(t *testing.T) {
	p := big.NewInt(101)
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {50, 50}, {51, -50}, {100, -1}, {-1, -1}, {-50, -50}, {-51, 50},
	}
	for _, tc := range cases {
		if got := CentredMod(big.NewInt(tc.in), p); got.Int64() != tc.want {
			t.Errorf("CentredMod(%d, 101) = %d, want %d", tc.in, got.Int64(), tc.want)
		}
	}
}

func TestDRBGDeterministic(t *testing.T) {
	a, b := NewDRBG("seed"), NewDRBG("seed")
	bufA, bufB := make([]byte, 1000), make([]byte, 1000)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Error("same seed produced different streams")
	}
	c := NewDRBG("other")
	bufC := make([]byte, 1000)
	if _, err := c.Read(bufC); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA, bufC) {
		t.Error("different seeds produced identical streams")
	}
}

func TestDRBGPartialReads(t *testing.T) {
	a := NewDRBG("partial")
	b := NewDRBG("partial")
	one := make([]byte, 100)
	if _, err := a.Read(one); err != nil {
		t.Fatal(err)
	}
	var pieces []byte
	for len(pieces) < 100 {
		chunk := make([]byte, 7)
		if len(pieces)+7 > 100 {
			chunk = make([]byte, 100-len(pieces))
		}
		if _, err := b.Read(chunk); err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, chunk...)
	}
	if !bytes.Equal(one, pieces) {
		t.Error("chunked reads disagree with a single read")
	}
}

func TestPrimeDeterministicAndValid(t *testing.T) {
	a, err := Prime(NewDRBG("prime-seed"), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prime(NewDRBG("prime-seed"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Fatalf("same seed produced %s and %s; parties could disagree on the field", a, b)
	}
	if a.BitLen() != 64 {
		t.Errorf("bit length %d, want exactly 64", a.BitLen())
	}
	if !a.ProbablyPrime(32) {
		t.Errorf("%s is not prime", a)
	}
	c, err := Prime(NewDRBG("other-seed"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(c) == 0 {
		t.Error("different seeds produced the same prime")
	}
	if _, err := Prime(NewDRBG("x"), 1); err == nil {
		t.Error("1-bit prime accepted")
	}
}
