package blame

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"math/big"
	"strings"
	"testing"

	"groupranking/internal/elgamal"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
	"groupranking/internal/zkp"
)

const testGroup = "toy-dl-256"

func mustGroup(t *testing.T) group.Group {
	t.Helper()
	g, err := group.ByName(testGroup)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cert(check, groupName string, items ...transport.BlameItem) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion,
		Accused: 2, Reporter: 0, Round: 7, Check: check,
		Group: groupName, Items: items,
	}
}

func TestVerifyRejectsNilAndUnknown(t *testing.T) {
	if err := Verify(nil); err == nil {
		t.Fatal("nil certificate verified")
	}
	if err := Verify(cert("no-such-check", "")); err == nil {
		t.Fatal("unknown check verified")
	}
	bad := cert(transport.CheckEquivocation, "")
	bad.Version = 99
	if err := Verify(bad); err == nil {
		t.Fatal("wrong version verified")
	}
	anon := cert(transport.CheckEquivocation, "")
	anon.Accused = -1
	if err := Verify(anon); err == nil {
		t.Fatal("certificate accusing nobody verified")
	}
}

func TestVerifyEquivocation(t *testing.T) {
	a := sha256.Sum256([]byte("payload-to-party-1"))
	b := sha256.Sum256([]byte("payload-to-party-2"))
	ok := cert(transport.CheckEquivocation, "",
		transport.BlameItem{Name: "digest-local", Data: a[:]},
		transport.BlameItem{Name: "digest-echoed", Data: b[:]})
	if err := Verify(ok); err != nil {
		t.Fatalf("conflicting digests rejected: %v", err)
	}
	same := cert(transport.CheckEquivocation, "",
		transport.BlameItem{Name: "digest-local", Data: a[:]},
		transport.BlameItem{Name: "digest-echoed", Data: a[:]})
	if err := Verify(same); err == nil {
		t.Fatal("agreeing digests confirmed an equivocation")
	}
	short := cert(transport.CheckEquivocation, "",
		transport.BlameItem{Name: "digest-local", Data: a[:8]},
		transport.BlameItem{Name: "digest-echoed", Data: b[:]})
	if err := Verify(short); err == nil {
		t.Fatal("truncated digest verified")
	}
}

func TestVerifyRoundReplayAndMalformed(t *testing.T) {
	replay := cert(transport.CheckRoundReplay, "",
		transport.BlameItem{Name: "round-want", Data: []byte("7")},
		transport.BlameItem{Name: "round-got", Data: []byte("3")})
	if err := Verify(replay); err != nil {
		t.Fatalf("round replay rejected: %v", err)
	}
	replay.Items[1].Data = []byte("7")
	if err := Verify(replay); err == nil {
		t.Fatal("matching rounds confirmed a replay")
	}
	mal := cert(transport.CheckMalformed, "",
		transport.BlameItem{Name: "type-got", Data: []byte("string")},
		transport.BlameItem{Name: "type-want", Data: []byte("group element")})
	if err := Verify(mal); err != nil {
		t.Fatalf("malformed payload rejected: %v", err)
	}
	mal.Items[0].Data = []byte("group element")
	if err := Verify(mal); err == nil {
		t.Fatal("matching shapes confirmed a malformed payload")
	}
}

func TestVerifyInvalidElement(t *testing.T) {
	g := mustGroup(t)
	garbage := cert(transport.CheckInvalidElement, testGroup,
		transport.BlameItem{Name: "element", Data: []byte("not an element")})
	if err := Verify(garbage); err != nil {
		t.Fatalf("undecodable element evidence rejected: %v", err)
	}
	valid := cert(transport.CheckInvalidElement, testGroup,
		transport.BlameItem{Name: "element", Data: g.Encode(g.Generator())})
	if err := Verify(valid); err == nil {
		t.Fatal("a valid group element confirmed an invalid-element accusation")
	}
	noGroup := cert(transport.CheckInvalidElement, "",
		transport.BlameItem{Name: "element", Data: []byte("x")})
	if err := Verify(noGroup); err == nil || !strings.Contains(err.Error(), "group") {
		t.Fatalf("missing group name not reported: %v", err)
	}
}

// keyProofCert builds a key-proof certificate from a genuine Schnorr
// run, with the response optionally perturbed the way the ByzBadKeyProof
// deviation does.
func keyProofCert(t *testing.T, g group.Group, perturb bool) *transport.BlameCert {
	t.Helper()
	rng := fixedbig.NewDRBG("blame-keyproof")
	x, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatal(err)
	}
	y := group.ExpGen(g, x)
	prover := zkp.NewProver(g, x)
	h, err := prover.Commit(rng)
	if err != nil {
		t.Fatal(err)
	}
	challenges := make([]*big.Int, 2)
	for i := range challenges {
		if challenges[i], err = zkp.NewChallenge(g, rng); err != nil {
			t.Fatal(err)
		}
	}
	z, err := prover.Respond(challenges)
	if err != nil {
		t.Fatal(err)
	}
	if perturb {
		z = new(big.Int).Add(z, big.NewInt(1))
	}
	return cert(transport.CheckKeyProof, testGroup,
		transport.BlameItem{Name: "y", Data: g.Encode(y)},
		transport.BlameItem{Name: "h", Data: g.Encode(h)},
		transport.BlameItem{Name: "challenges", Data: encodeChallenges(t, challenges)},
		transport.BlameItem{Name: "z", Data: z.Bytes()})
}

func TestVerifyKeyProof(t *testing.T) {
	g := mustGroup(t)
	if err := Verify(keyProofCert(t, g, true)); err != nil {
		t.Fatalf("failing key proof rejected: %v", err)
	}
	if err := Verify(keyProofCert(t, g, false)); err == nil {
		t.Fatal("a correct key proof confirmed the accusation")
	}
}

func TestVerifyPartialDecryption(t *testing.T) {
	g := mustGroup(t)
	rng := fixedbig.NewDRBG("blame-pd")
	scheme := elgamal.NewScheme(g)
	key, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := scheme.EncryptExp(key.Y, big.NewInt(1), rng)
	if err != nil {
		t.Fatal(err)
	}
	build := func(x *big.Int, yClaim group.Element) *transport.BlameCert {
		st := scheme.PartialDecrypt(x, ct)
		r, err := g.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		c, err := zkp.NewChallenge(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		// The transcript is honest for x; the certificate binds it to the
		// claimed registered share yClaim.
		tr := zkp.ProvePartialDecryptionR(g, x, group.ExpGen(g, x), ct.C1, ct.C, st.C, r, c)
		return cert(transport.CheckPartialDecryption, testGroup,
			transport.BlameItem{Name: "y", Data: g.Encode(yClaim)},
			transport.BlameItem{Name: "c1", Data: g.Encode(ct.C1)},
			transport.BlameItem{Name: "orig-c", Data: g.Encode(ct.C)},
			transport.BlameItem{Name: "stripped-c", Data: g.Encode(st.C)},
			transport.BlameItem{Name: "commit-g", Data: g.Encode(tr.CommitG)},
			transport.BlameItem{Name: "commit-h", Data: g.Encode(tr.CommitH)},
			transport.BlameItem{Name: "challenge", Data: tr.Challenge.Bytes()},
			transport.BlameItem{Name: "response", Data: tr.Response.Bytes()})
	}
	// A strip with the wrong key, claimed against the registered share:
	// the proof fails, confirming the accusation.
	wrongX := new(big.Int).Add(key.X, big.NewInt(1))
	if err := Verify(build(wrongX, key.Y)); err != nil {
		t.Fatalf("wrong-key strip rejected: %v", err)
	}
	// An honest strip with the registered key: the proof verifies, so the
	// accusation is unsupported.
	if err := Verify(build(key.X, key.Y)); err == nil {
		t.Fatal("an honest strip confirmed the accusation")
	}
}

func TestVerifyStrippedRandomness(t *testing.T) {
	g := mustGroup(t)
	a := g.Generator()
	b := g.Exp(a, big.NewInt(2))
	diff := cert(transport.CheckStrippedRandomness, testGroup,
		transport.BlameItem{Name: "orig-c1", Data: g.Encode(a)},
		transport.BlameItem{Name: "stripped-c1", Data: g.Encode(b)})
	if err := Verify(diff); err != nil {
		t.Fatalf("altered randomness rejected: %v", err)
	}
	same := cert(transport.CheckStrippedRandomness, testGroup,
		transport.BlameItem{Name: "orig-c1", Data: g.Encode(a)},
		transport.BlameItem{Name: "stripped-c1", Data: g.Encode(a)})
	if err := Verify(same); err == nil {
		t.Fatal("identical randomness confirmed the accusation")
	}
}

func TestVerifySetAnchorAndOwnSet(t *testing.T) {
	set := []byte("ciphertext-bytes-ciphertext-bytes")
	right := sha256.Sum256(set)
	wrong := sha256.Sum256([]byte("some other set"))
	bad := cert(transport.CheckSetAnchor, "",
		transport.BlameItem{Name: "anchor", Data: wrong[:]},
		transport.BlameItem{Name: "set", Data: set})
	if err := Verify(bad); err != nil {
		t.Fatalf("anchor mismatch rejected: %v", err)
	}
	good := cert(transport.CheckSetAnchor, "",
		transport.BlameItem{Name: "anchor", Data: right[:]},
		transport.BlameItem{Name: "set", Data: set})
	if err := Verify(good); err == nil {
		t.Fatal("a set matching its anchor confirmed the accusation")
	}
	tampered := cert(transport.CheckOwnSetTampered, "",
		transport.BlameItem{Name: "input-set", Data: set},
		transport.BlameItem{Name: "passed-set", Data: []byte("tampered")})
	if err := Verify(tampered); err != nil {
		t.Fatalf("own-set tampering rejected: %v", err)
	}
	tampered.Items[1].Data = set
	if err := Verify(tampered); err == nil {
		t.Fatal("identical pass-through confirmed the accusation")
	}
}

// encodeChallenges mirrors the protocol's challenge-evidence encoding.
func encodeChallenges(t *testing.T, list []*big.Int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(list); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerifyJSONRoundTrip(t *testing.T) {
	g := mustGroup(t)
	orig := keyProofCert(t, g, true)
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := VerifyJSON(data)
	if err != nil {
		t.Fatalf("serialised certificate failed verification: %v", err)
	}
	if back.Accused != orig.Accused || back.Check != orig.Check {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if _, err := VerifyJSON([]byte("{")); err == nil {
		t.Fatal("garbage JSON verified")
	}
}
