// Package blame is the standalone offline verifier for blame
// certificates (transport.BlameCert): it re-runs the violated check
// from the recorded evidence alone, with no access to the protocol run
// that produced the certificate, and confirms or rejects the
// accusation. A party, operator or auditor holding only the serialised
// certificate (e.g. the file rankparty writes to -blame-out) can
// therefore validate an abort without trusting the accuser's protocol
// state.
//
// Trust model: a certificate is evidence, not a signature. Transcripts
// are not authenticated, so Verify confirms "IF the recorded bytes are
// what the accused sent, the accused cheated" — it cannot rule out a
// reporter that fabricated the recorded bytes. See DESIGN.md §3.6.
package blame

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"math/big"

	"groupranking/internal/group"
	"groupranking/internal/transport"
	"groupranking/internal/zkp"
)

// Verify re-runs cert's check against its recorded evidence. It
// returns nil when the evidence confirms the accusation, and a
// descriptive error when the certificate is malformed, names an
// unknown check or group, or — decisively — when the evidence does NOT
// show a violation (the accused behaved correctly on these bytes, so
// the accusation is unsupported).
func Verify(cert *transport.BlameCert) error {
	if cert == nil {
		return fmt.Errorf("blame: nil certificate")
	}
	if cert.Version != transport.BlameCertVersion {
		return fmt.Errorf("blame: certificate version %d, this build verifies %d", cert.Version, transport.BlameCertVersion)
	}
	if cert.Accused < 0 {
		return fmt.Errorf("blame: certificate accuses no party (accused %d)", cert.Accused)
	}
	switch cert.Check {
	case transport.CheckEquivocation:
		return verifyEquivocation(cert)
	case transport.CheckRoundReplay:
		return verifyRoundReplay(cert)
	case transport.CheckMalformed:
		return verifyMalformed(cert)
	case transport.CheckInvalidElement:
		return verifyInvalidElement(cert)
	case transport.CheckKeyProof:
		return verifyKeyProof(cert)
	case transport.CheckPartialDecryption:
		return verifyPartialDecryption(cert)
	case transport.CheckStrippedRandomness:
		return verifyStrippedRandomness(cert)
	case transport.CheckSetAnchor:
		return verifySetAnchor(cert)
	case transport.CheckOwnSetTampered:
		return verifyOwnSetTampered(cert)
	default:
		return fmt.Errorf("blame: unknown check %q", cert.Check)
	}
}

// VerifyJSON decodes a certificate serialised by BlameCert.MarshalJSON
// (the -blame-out format) and verifies it.
func VerifyJSON(data []byte) (*transport.BlameCert, error) {
	cert, err := transport.DecodeBlameCert(data)
	if err != nil {
		return nil, err
	}
	if err := Verify(cert); err != nil {
		return cert, err
	}
	return cert, nil
}

// item fetches one named evidence entry or fails descriptively.
func item(cert *transport.BlameCert, name string) ([]byte, error) {
	data, ok := cert.Item(name)
	if !ok {
		return nil, fmt.Errorf("blame: certificate lacks %q evidence", name)
	}
	return data, nil
}

// certGroup resolves the group the evidence elements are encoded in.
func certGroup(cert *transport.BlameCert) (group.Group, error) {
	if cert.Group == "" {
		return nil, fmt.Errorf("blame: certificate names no group for check %q", cert.Check)
	}
	g, err := group.ByName(cert.Group)
	if err != nil {
		return nil, fmt.Errorf("blame: %w", err)
	}
	return g, nil
}

// element decodes one named evidence entry as a group element,
// enforcing membership (Decode validates).
func element(cert *transport.BlameCert, g group.Group, name string) (group.Element, error) {
	data, err := item(cert, name)
	if err != nil {
		return nil, err
	}
	e, err := g.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("blame: evidence %q does not decode in group %s: %w", name, cert.Group, err)
	}
	return e, nil
}

// scalar decodes one named evidence entry as a big-endian scalar.
func scalar(cert *transport.BlameCert, name string) (*big.Int, error) {
	data, err := item(cert, name)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(data), nil
}

// verifyEquivocation confirms the two recorded digests of the accused
// sender's broadcast actually disagree.
func verifyEquivocation(cert *transport.BlameCert) error {
	local, err := item(cert, "digest-local")
	if err != nil {
		return err
	}
	echoed, err := item(cert, "digest-echoed")
	if err != nil {
		return err
	}
	if len(local) != sha256.Size || len(echoed) != sha256.Size {
		return fmt.Errorf("blame: equivocation digests must be %d bytes, got %d and %d", sha256.Size, len(local), len(echoed))
	}
	if bytes.Equal(local, echoed) {
		return fmt.Errorf("blame: recorded digests agree — no equivocation shown")
	}
	return nil
}

// verifyRoundReplay confirms the recorded round tags disagree.
func verifyRoundReplay(cert *transport.BlameCert) error {
	want, err := item(cert, "round-want")
	if err != nil {
		return err
	}
	got, err := item(cert, "round-got")
	if err != nil {
		return err
	}
	if bytes.Equal(want, got) {
		return fmt.Errorf("blame: recorded round tags agree — no replay shown")
	}
	return nil
}

// verifyMalformed confirms the observed wire shape differs from the
// expected one. This is the weakest check — shape names are the
// reporter's rendering, not raw bytes — but it still rejects
// certificates whose own evidence shows nothing wrong.
func verifyMalformed(cert *transport.BlameCert) error {
	got, err := item(cert, "type-got")
	if err != nil {
		return err
	}
	want, err := item(cert, "type-want")
	if err != nil {
		return err
	}
	if bytes.Equal(got, want) {
		return fmt.Errorf("blame: observed shape equals expected shape — no violation shown")
	}
	return nil
}

// verifyInvalidElement re-runs decode + membership validation on the
// recorded element encoding; the accusation holds iff it is rejected.
func verifyInvalidElement(cert *transport.BlameCert) error {
	g, err := certGroup(cert)
	if err != nil {
		return err
	}
	data, err := item(cert, "element")
	if err != nil {
		return err
	}
	e, err := g.Decode(data)
	if err != nil {
		return nil // does not even decode: confirmed invalid
	}
	if err := group.Validate(g, e); err != nil {
		return nil // decodes but fails membership: confirmed invalid
	}
	return fmt.Errorf("blame: recorded element is a valid member of %s — no violation shown", cert.Group)
}

// verifyKeyProof re-runs the multi-verifier Schnorr verification from
// the recorded statement; the accusation holds iff the proof fails.
func verifyKeyProof(cert *transport.BlameCert) error {
	g, err := certGroup(cert)
	if err != nil {
		return err
	}
	y, err := element(cert, g, "y")
	if err != nil {
		return err
	}
	h, err := element(cert, g, "h")
	if err != nil {
		return err
	}
	chalBytes, err := item(cert, "challenges")
	if err != nil {
		return err
	}
	var challenges []*big.Int
	if err := gob.NewDecoder(bytes.NewReader(chalBytes)).Decode(&challenges); err != nil {
		return fmt.Errorf("blame: undecodable challenge evidence: %w", err)
	}
	z, err := scalar(cert, "z")
	if err != nil {
		return err
	}
	if zkp.Verify(g, y, h, challenges, z) {
		return fmt.Errorf("blame: recorded key-knowledge proof verifies — no violation shown")
	}
	return nil
}

// verifyPartialDecryption re-runs the Chaum–Pedersen verification from
// the recorded strip step; the accusation holds iff the proof fails.
func verifyPartialDecryption(cert *transport.BlameCert) error {
	g, err := certGroup(cert)
	if err != nil {
		return err
	}
	y, err := element(cert, g, "y")
	if err != nil {
		return err
	}
	c1, err := element(cert, g, "c1")
	if err != nil {
		return err
	}
	origC, err := element(cert, g, "orig-c")
	if err != nil {
		return err
	}
	strippedC, err := element(cert, g, "stripped-c")
	if err != nil {
		return err
	}
	commitG, err := element(cert, g, "commit-g")
	if err != nil {
		return err
	}
	commitH, err := element(cert, g, "commit-h")
	if err != nil {
		return err
	}
	challenge, err := scalar(cert, "challenge")
	if err != nil {
		return err
	}
	response, err := scalar(cert, "response")
	if err != nil {
		return err
	}
	t := zkp.EqualityTranscript{CommitG: commitG, CommitH: commitH, Challenge: challenge, Response: response}
	if zkp.VerifyPartialDecryption(g, y, c1, origC, strippedC, t) {
		return fmt.Errorf("blame: recorded partial-decryption proof verifies — no violation shown")
	}
	return nil
}

// verifyStrippedRandomness confirms the recorded before/after
// randomness components actually differ (a strip must leave C1
// untouched).
func verifyStrippedRandomness(cert *transport.BlameCert) error {
	g, err := certGroup(cert)
	if err != nil {
		return err
	}
	in, err := element(cert, g, "orig-c1")
	if err != nil {
		return err
	}
	st, err := element(cert, g, "stripped-c1")
	if err != nil {
		return err
	}
	if g.Equal(in, st) {
		return fmt.Errorf("blame: randomness components agree — no violation shown")
	}
	return nil
}

// verifySetAnchor re-hashes the recorded ciphertext-set bytes and
// confirms they do not match the recorded binding commitment. The set
// evidence is exactly the byte stream the protocol's hashSet digests
// (concatenated fixed-length ciphertext encodings), so no group
// arithmetic is needed.
func verifySetAnchor(cert *transport.BlameCert) error {
	anchor, err := item(cert, "anchor")
	if err != nil {
		return err
	}
	set, err := item(cert, "set")
	if err != nil {
		return err
	}
	if len(anchor) != sha256.Size {
		return fmt.Errorf("blame: anchor must be %d bytes, got %d", sha256.Size, len(anchor))
	}
	sum := sha256.Sum256(set)
	if bytes.Equal(sum[:], anchor) {
		return fmt.Errorf("blame: recorded set hashes to its anchor — no violation shown")
	}
	return nil
}

// verifyOwnSetTampered confirms the recorded pass-through set differs
// from the recorded input set (hops must forward their own set
// byte-identical).
func verifyOwnSetTampered(cert *transport.BlameCert) error {
	in, err := item(cert, "input-set")
	if err != nil {
		return err
	}
	passed, err := item(cert, "passed-set")
	if err != nil {
		return err
	}
	if bytes.Equal(in, passed) {
		return fmt.Errorf("blame: input and pass-through sets are identical — no violation shown")
	}
	return nil
}
