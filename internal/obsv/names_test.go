package obsv

import (
	"testing"

	"groupranking/internal/telemetry"
)

// TestOpNamesExhaustive pins the exported name of every operation
// counter. The names are a wire format: traces, summaries and the
// Prometheus bridge all key on them, so adding an Op without a name —
// or renaming one — must fail loudly here, not silently export
// "unknown" or break downstream dashboards.
func TestOpNamesExhaustive(t *testing.T) {
	want := []string{
		"group_exp", "group_op", "group_inv",
		"elgamal_enc", "elgamal_dec",
		"proofs_made", "proofs_checked",
		"ss_mul", "ss_open", "ss_round",
		"field_mul",
		"msgs_sent", "bytes_sent",
		"echo_msgs_sent", "echo_bytes_sent",
		"recv_wait_us",
	}
	if got := NumOps(); got != len(want) {
		t.Fatalf("NumOps() = %d but %d names are pinned — name the new Op here and in every exporter", got, len(want))
	}
	seen := make(map[string]bool)
	for op := Op(0); op < Op(NumOps()); op++ {
		name := op.String()
		if name != want[op] {
			t.Errorf("Op(%d).String() = %q, want %q", op, name, want[op])
		}
		if name == "unknown" || name == "" {
			t.Errorf("Op(%d) has no stable name", op)
		}
		if !telemetry.ValidName(name) {
			t.Errorf("Op(%d) name %q is not a valid metric name", op, name)
		}
		if seen[name] {
			t.Errorf("Op name %q is duplicated", name)
		}
		seen[name] = true
	}
	if got := Op(NumOps()).String(); got != "unknown" {
		t.Errorf("out-of-range Op stringifies to %q, want \"unknown\"", got)
	}
	if got := Op(-1).String(); got != "unknown" {
		t.Errorf("negative Op stringifies to %q, want \"unknown\"", got)
	}
}
