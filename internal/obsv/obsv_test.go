package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
)

func TestNilFastPath(t *testing.T) {
	var r *Registry
	p := r.Party(3)
	if p != nil {
		t.Fatal("nil registry must hand out nil parties")
	}
	// Every operation on the disabled handles must be a no-op, not a panic.
	p.Add(OpGroupExp, 1)
	p.Begin("x")
	p.End()
	if p.Total(OpGroupExp) != 0 || p.Index() != -1 {
		t.Error("nil party reported state")
	}
	if r.Total(OpGroupExp) != 0 || r.PartyTotal(0, OpGroupExp) != 0 {
		t.Error("nil registry reported totals")
	}
	if r.Spans() != nil || r.Phases() != nil {
		t.Error("nil registry reported spans")
	}
	ctx := WithRegistry(context.Background(), nil)
	if RegistryFrom(ctx) != nil || PartyFrom(ctx) != nil {
		t.Error("disabled context carried observability state")
	}
}

func TestWrappersIdentityWhenDisabled(t *testing.T) {
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	if Group(g, nil) != g {
		t.Error("Group(g, nil) must return g unchanged")
	}
	fab, err := transport.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if ObservedNet(fab, nil) != transport.Net(fab) {
		t.Error("ObservedNet(n, nil) must return n unchanged")
	}
	if PartyOf(g) != nil {
		t.Error("PartyOf on an unwrapped group must be nil")
	}
}

func TestWrapperIdempotent(t *testing.T) {
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	p := reg.Party(0)
	w := Group(g, p)
	if Group(w, p) != w {
		t.Error("re-wrapping for the same party must be the identity")
	}
	if PartyOf(w) != p {
		t.Error("PartyOf lost the party")
	}
}

func TestCountingGroup(t *testing.T) {
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	p := reg.Party(1)
	w := Group(g, p)
	p.Begin("phase-a")
	k, err := w.RandomScalar(fixedbig.NewDRBG("obsv-test"))
	if err != nil {
		t.Fatal(err)
	}
	e := group.ExpGen(w, k) // delegates to w.Exp → counted
	e = w.Op(e, e)
	_ = w.Inv(e)
	p.End()
	if got := p.Total(OpGroupExp); got != 1 {
		t.Errorf("exp count %d, want 1", got)
	}
	if got := p.Total(OpGroupOp); got != 1 {
		t.Errorf("op count %d, want 1", got)
	}
	if got := p.Total(OpGroupInv); got != 1 {
		t.Errorf("inv count %d, want 1", got)
	}
}

func TestObservedNetCounts(t *testing.T) {
	fab, err := transport.New(3)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	p := reg.Party(0)
	net := ObservedNet(fab, p)
	if err := net.Send(1, 0, 1, 10, "x"); err != nil {
		t.Fatal(err)
	}
	if err := net.Broadcast(2, 0, 7, "y"); err != nil {
		t.Fatal(err)
	}
	if got := p.Total(OpMsgSent); got != 3 { // 1 send + 2 broadcast legs
		t.Errorf("msgs %d, want 3", got)
	}
	if got := p.Total(OpByteSent); got != 24 { // 10 + 2·7
		t.Errorf("bytes %d, want 24", got)
	}
	s := fab.Stats()
	if s.MessagesSent[0] != 3 || s.BytesSent[0] != 24 {
		t.Errorf("fabric disagrees: %d msgs, %d bytes", s.MessagesSent[0], s.BytesSent[0])
	}
}

func TestOrphanSpan(t *testing.T) {
	reg := NewRegistry()
	p := reg.Party(2)
	p.Add(OpEncrypt, 5) // no span open
	spans := reg.Spans()
	if len(spans) != 1 || spans[0].Phase != "(unattributed)" || spans[0].Counts["elgamal_enc"] != 5 {
		t.Errorf("orphan span missing or wrong: %+v", spans)
	}
	if p.Total(OpEncrypt) != 5 {
		t.Errorf("orphan counts not in totals")
	}
}

// TestRegistryConcurrent exercises the registry the way a protocol run
// does — every party adding, beginning and ending spans concurrently
// while the main goroutine snapshots — and relies on -race (wired into
// make check) to prove the hot path is data-race free.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const parties, iters = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := reg.Party(i)
			for k := 0; k < iters; k++ {
				switch k % 3 {
				case 0:
					p.Begin("alpha")
				case 1:
					p.Add(OpGroupExp, 1)
					p.Add(OpByteSent, 32)
				case 2:
					p.End()
				}
			}
			p.End()
		}()
	}
	// Snapshot mid-flight: Spans and totals must be safe during the run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := 0; j < 50; j++ {
			reg.Spans()
			reg.Total(OpGroupExp)
		}
	}()
	wg.Wait()
	<-done
	perParty := 0
	for k := 0; k < iters; k++ {
		if k%3 == 1 {
			perParty++
		}
	}
	want := int64(parties * perParty)
	if got := reg.Total(OpGroupExp); got != want {
		t.Errorf("total exps %d, want %d", got, want)
	}
}

func TestExporters(t *testing.T) {
	reg := NewRegistry()
	p := reg.Party(0)
	p.Begin("keygen")
	p.Add(OpGroupExp, 4)
	p.Begin("chain")
	p.Add(OpMsgSent, 2)
	p.Add(OpByteSent, 100)
	p.End()

	var jsonl bytes.Buffer
	if err := reg.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL spans, got %d: %q", len(lines), jsonl.String())
	}
	var snap SpanSnapshot
	if err := json.Unmarshal([]byte(lines[0]), &snap); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if snap.Phase != "keygen" || snap.Counts["group_exp"] != 4 {
		t.Errorf("first span wrong: %+v", snap)
	}

	var sum bytes.Buffer
	if err := reg.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	out := sum.String()
	for _, want := range []string{"keygen", "chain", "phase", "party"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestDisabledAddsNoAllocations is the zero-overhead contract: with
// observability off, the hooks in the hot path must not allocate.
func TestDisabledAddsNoAllocations(t *testing.T) {
	var p *Party
	if n := testing.AllocsPerRun(100, func() {
		p.Add(OpGroupExp, 1)
	}); n != 0 {
		t.Errorf("nil-party Add allocates %.1f objects/op", n)
	}
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if Group(g, nil) != g {
			t.Fatal("wrapper not identity")
		}
	}); n != 0 {
		t.Errorf("disabled Group wrap allocates %.1f objects/op", n)
	}
}
