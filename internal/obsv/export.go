package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// WriteJSONL exports every span as one JSON object per line, ordered by
// start time. Still-open spans (e.g. at the moment of an abort) are
// included with "open": true, so a partial trace carries the timeline
// up to the failure.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// phaseAgg accumulates one phase row of the summary.
type phaseAgg struct {
	phase   string
	wallUS  int64 // max per-party duration (parties run concurrently)
	parties int
	counts  [numOps]int64
}

func (r *Registry) aggregate() []*phaseAgg {
	byPhase := make(map[string]*phaseAgg)
	var order []*phaseAgg
	for _, s := range r.Spans() {
		a, ok := byPhase[s.Phase]
		if !ok {
			a = &phaseAgg{phase: s.Phase}
			byPhase[s.Phase] = a
			order = append(order, a)
		}
		if s.DurUS > a.wallUS {
			a.wallUS = s.DurUS
		}
		a.parties++
		for op := Op(0); op < numOps; op++ {
			a.counts[op] += s.Counts[op.String()]
		}
	}
	return order
}

func fmtWall(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

// WriteSummary renders two human-readable tables in the repository's
// tab-separated benchtab style: a per-phase table (wall time is the
// maximum across parties, since parties run concurrently; operation
// counts are summed) and a per-party totals table.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\twall\tparties\texp\tenc\tdec\tproofs+\tproofs?\tss-mul\tmsgs\tbytes")
	for _, a := range r.aggregate() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			a.phase, fmtWall(a.wallUS), a.parties,
			a.counts[OpGroupExp], a.counts[OpEncrypt], a.counts[OpDecrypt],
			a.counts[OpProofMade], a.counts[OpProofChecked], a.counts[OpSSMul],
			a.counts[OpMsgSent], a.counts[OpByteSent])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "party\twall\texp\tenc\tdec\tproofs+\tproofs?\tss-mul\tfield-mul\tmsgs\tbytes")
	for _, p := range r.partyList() {
		var wall int64
		p.mu.Lock()
		done := make([]*Span, len(p.done))
		copy(done, p.done)
		p.mu.Unlock()
		for _, s := range done {
			if end, closed := s.endTime(); closed {
				wall += end.Sub(s.start).Microseconds()
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.idx, fmtWall(wall),
			p.Total(OpGroupExp), p.Total(OpEncrypt), p.Total(OpDecrypt),
			p.Total(OpProofMade), p.Total(OpProofChecked), p.Total(OpSSMul),
			p.Total(OpFieldMul), p.Total(OpMsgSent), p.Total(OpByteSent))
	}
	return tw.Flush()
}
