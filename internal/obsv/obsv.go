// Package obsv is the protocol-wide observability layer: a per-party,
// phase-scoped span tracer plus a lock-cheap metrics registry counting
// crypto operations (group exponentiations/additions, ElGamal
// encryptions/decryptions, proofs made and checked) and communication
// (messages and bytes per phase per party).
//
// The design centres on a nil-registry fast path: every method on a nil
// *Registry, *Party or *Span is a no-op, so protocol code calls the
// observability hooks unconditionally and a disabled run pays only a
// nil check. Counters are plain atomic adds on a fixed-size array — no
// maps, no locks on the hot path — so enabling observability perturbs
// the measured protocol as little as possible.
//
// Attribution flows through two mechanisms:
//
//   - context: orchestrators install the registry with WithRegistry and
//     each party goroutine's handle with WithParty; protocol layers
//     recover them with RegistryFrom/PartyFrom.
//   - wrappers: Group wraps a group.Group so every Exp/Op/Inv is
//     counted, and ObservedNet wraps a transport.Net so every sent
//     message and byte is counted. Lower layers (elgamal, zkp) recover
//     the party from a wrapped group with PartyOf, which keeps their
//     signatures unchanged.
//
// Counts land on the party's current span, so per-phase breakdowns fall
// out of the same counters; operations outside any span accumulate on a
// catch-all span with phase "(unattributed)".
package obsv

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Op enumerates the counted operation kinds.
type Op int

// Counter taxonomy. Group-level ops are counted by the Group wrapper
// (an exponentiation by ExpGen also lands on OpGroupExp, since ExpGen
// delegates to Exp); ElGamal and proof ops are counted by their
// packages via PartyOf; SS ops by the ssmpc engine; field
// multiplications by dotprod; messages/bytes by the net wrapper.
const (
	OpGroupExp Op = iota // group exponentiations
	OpGroupOp            // group multiplications / point additions
	OpGroupInv           // group inversions
	OpEncrypt            // ElGamal encryptions (incl. re-randomisations)
	OpDecrypt            // ElGamal (partial) decryptions
	OpProofMade          // Schnorr / Chaum–Pedersen proofs produced
	OpProofChecked       // proofs verified
	OpSSMul              // SS multiplication-protocol invocations
	OpSSOpen             // SS openings
	OpSSRound            // SS communication rounds
	OpFieldMul           // dot-product field multiplications
	OpMsgSent            // messages sent
	OpByteSent           // bytes sent
	OpEchoMsgSent        // echo sub-round messages sent (consistency overhead)
	OpEchoByteSent       // echo sub-round bytes sent
	OpRecvWait           // microseconds spent blocked in receives
	numOps
)

var opNames = [numOps]string{
	"group_exp", "group_op", "group_inv",
	"elgamal_enc", "elgamal_dec",
	"proofs_made", "proofs_checked",
	"ss_mul", "ss_open", "ss_round",
	"field_mul",
	"msgs_sent", "bytes_sent",
	"echo_msgs_sent", "echo_bytes_sent",
	"recv_wait_us",
}

// NumOps returns the number of counted operation kinds; Op values
// [0, NumOps) are valid. Exporters use it to iterate the taxonomy.
func NumOps() int { return int(numOps) }

// String returns the stable snake_case name used in exports.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return "unknown"
	}
	return opNames[o]
}

// Span is one phase-scoped measurement interval of one party. Its
// counters are updated with atomic adds; identity fields are immutable
// after creation. The end timestamp is atomic because a still-open span
// can be snapshotted (mid-run trace export, the admin endpoint) at the
// same moment the party's own goroutine closes it.
type Span struct {
	party  int
	phase  string
	seq    int // per-party span ordinal (1-based; 0 = catch-all)
	start  time.Time
	endNS  atomic.Int64 // UnixNano; 0 while open
	counts [numOps]int64
}

// end returns the close time and whether the span is closed.
func (s *Span) endTime() (time.Time, bool) {
	ns := s.endNS.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

func (s *Span) add(op Op, n int64) {
	atomic.AddInt64(&s.counts[op], n)
}

// Count reads one counter (atomically, so it is safe on open spans).
func (s *Span) Count(op Op) int64 {
	if s == nil || op < 0 || op >= numOps {
		return 0
	}
	return atomic.LoadInt64(&s.counts[op])
}

// Party is one party's handle into the registry. Begin/End must be
// called from the party's own goroutine; Add may be called from any
// goroutine. All methods are no-ops on a nil receiver.
type Party struct {
	idx     int
	reg     *Registry
	cur     atomic.Pointer[Span]
	nextSeq int // only touched from the party's goroutine (Begin)

	mu     sync.Mutex
	done   []*Span
	orphan Span // operations outside any span
}

// Index returns the party's index in the registry.
func (p *Party) Index() int {
	if p == nil {
		return -1
	}
	return p.idx
}

// Add charges n operations of the given kind to the party's current
// span (or to the catch-all span when none is open).
func (p *Party) Add(op Op, n int64) {
	if p == nil || op < 0 || op >= numOps {
		return
	}
	if s := p.cur.Load(); s != nil {
		s.add(op, n)
		return
	}
	p.orphan.add(op, n)
}

// Begin closes the current span (if any) and opens a new one with the
// given phase name.
func (p *Party) Begin(phase string) {
	if p == nil {
		return
	}
	p.End()
	p.nextSeq++
	s := &Span{party: p.idx, phase: phase, seq: p.nextSeq, start: time.Now()}
	p.cur.Store(s)
	// The hook runs after the span opens, so time it spends (fault
	// injection, straggler delays) is attributed to the span as compute.
	if hook := p.reg.beginHook(); hook != nil {
		hook(p.idx, phase)
	}
}

// End closes the current span. Calling End with no open span is a
// no-op, so a deferred End after a sequence of Begins is always safe.
func (p *Party) End() {
	if p == nil {
		return
	}
	s := p.cur.Swap(nil)
	if s == nil {
		return
	}
	s.endNS.Store(time.Now().UnixNano())
	p.mu.Lock()
	p.done = append(p.done, s)
	p.mu.Unlock()
}

// Total sums one counter over all of the party's spans, including the
// open one and the catch-all.
func (p *Party) Total(op Op) int64 {
	if p == nil {
		return 0
	}
	var t int64
	p.mu.Lock()
	for _, s := range p.done {
		t += s.Count(op)
	}
	p.mu.Unlock()
	t += p.orphan.Count(op)
	t += p.cur.Load().Count(op)
	return t
}

// Registry collects spans and counters for all parties of one run.
// A nil *Registry is the disabled state; every method is nil-safe.
type Registry struct {
	start time.Time

	mu      sync.Mutex
	parties map[int]*Party
	traceID string
	onBegin func(party int, phase string)
}

// SetTraceID pins the run-level trace identifier every exported span
// carries. The orchestrator sets it once the session-establishment
// round has agreed on it, so traces from different parties of the same
// run can be correlated by ID alone.
func (r *Registry) SetTraceID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID = id
	r.mu.Unlock()
}

// TraceID returns the pinned trace identifier ("" until set).
func (r *Registry) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// SetBeginHook installs fn to run inside every Party.Begin, after the
// new span has opened. Test harnesses use it to inject per-phase
// behaviour (e.g. a straggler's delay) that the trace attributes to the
// span like any other compute.
func (r *Registry) SetBeginHook(fn func(party int, phase string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onBegin = fn
	r.mu.Unlock()
}

func (r *Registry) beginHook() func(party int, phase string) {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.onBegin
}

// NewRegistry creates an empty registry; party handles are created on
// first use.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), parties: make(map[int]*Party)}
}

// Party returns (creating if needed) the handle for party idx. It
// returns nil on a nil registry, so the result is always safe to use.
func (r *Registry) Party(idx int) *Party {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.parties[idx]
	if !ok {
		p = &Party{idx: idx, reg: r}
		p.orphan.party = idx
		p.orphan.phase = "(unattributed)"
		p.orphan.start = r.start
		r.parties[idx] = p
	}
	return p
}

// Total sums one counter over every party.
func (r *Registry) Total(op Op) int64 {
	if r == nil {
		return 0
	}
	var t int64
	for _, p := range r.partyList() {
		t += p.Total(op)
	}
	return t
}

// PartyTotal sums one counter for one party (0 if the party never
// reported).
func (r *Registry) PartyTotal(idx int, op Op) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	p := r.parties[idx]
	r.mu.Unlock()
	return p.Total(op)
}

// partyList snapshots the party handles sorted by index.
func (r *Registry) partyList() []*Party {
	r.mu.Lock()
	out := make([]*Party, 0, len(r.parties))
	for _, p := range r.parties {
		out = append(out, p)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// SpanSnapshot is one exported span: identity, timing relative to
// registry creation, and the non-zero counters.
type SpanSnapshot struct {
	TraceID string           `json:"trace_id,omitempty"`
	Party   int              `json:"party"`
	Phase   string           `json:"phase"`
	Seq     int              `json:"seq"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Open    bool             `json:"open,omitempty"`
	Counts  map[string]int64 `json:"counts,omitempty"`
}

func (r *Registry) snapshotSpan(s *Span, open bool) SpanSnapshot {
	// A span grabbed from p.cur may be closed by the party's goroutine
	// between the load and this snapshot; trust the span's own state over
	// the caller's view so the race resolves to the closed duration.
	end, closed := s.endTime()
	if !closed {
		end = time.Now()
	} else {
		open = false
	}
	snap := SpanSnapshot{
		TraceID: r.TraceID(),
		Party:   s.party,
		Phase:   s.phase,
		Seq:     s.seq,
		StartUS: s.start.Sub(r.start).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Open:    open,
	}
	for op := Op(0); op < numOps; op++ {
		if c := s.Count(op); c != 0 {
			if snap.Counts == nil {
				snap.Counts = make(map[string]int64)
			}
			snap.Counts[op.String()] = c
		}
	}
	return snap
}

// Spans snapshots every span of every party — closed spans, still-open
// spans (marked Open, with duration up to now) and non-empty catch-all
// spans — ordered by start time. It is safe to call while the run is in
// flight, which is what makes partial traces on abort possible.
func (r *Registry) Spans() []SpanSnapshot {
	if r == nil {
		return nil
	}
	var out []SpanSnapshot
	for _, p := range r.partyList() {
		p.mu.Lock()
		done := make([]*Span, len(p.done))
		copy(done, p.done)
		p.mu.Unlock()
		for _, s := range done {
			out = append(out, r.snapshotSpan(s, false))
		}
		if s := p.cur.Load(); s != nil {
			out = append(out, r.snapshotSpan(s, true))
		}
		orphan := r.snapshotSpan(&p.orphan, false)
		if len(orphan.Counts) > 0 {
			orphan.DurUS = 0
			out = append(out, orphan)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUS < out[j].StartUS })
	return out
}

// Phases returns the distinct phase names seen across all spans, in
// order of first appearance.
func (r *Registry) Phases() []string {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, s := range r.Spans() {
		if !seen[s.Phase] {
			seen[s.Phase] = true
			out = append(out, s.Phase)
		}
	}
	return out
}

// ---- context propagation ----

type ctxKey int

const (
	regKey ctxKey = iota
	partyKey
)

// WithRegistry installs the registry into the context; a nil registry
// leaves the context unchanged (the disabled fast path).
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, regKey, r)
}

// RegistryFrom recovers the registry, or nil when observability is off.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(regKey).(*Registry)
	return r
}

// WithParty installs a party handle into the context; nil leaves the
// context unchanged.
func WithParty(ctx context.Context, p *Party) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, partyKey, p)
}

// PartyFrom recovers the current goroutine's party handle, or nil.
func PartyFrom(ctx context.Context) *Party {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(partyKey).(*Party)
	return p
}
