package obsv

import (
	"context"
	"math/big"
	"runtime/pprof"
	"strconv"
	"time"

	"groupranking/internal/group"
	"groupranking/internal/transport"
)

// countingGroup counts Exp/Op/Inv on a party while delegating all group
// arithmetic. Elements pass through unchanged, so wrapped and unwrapped
// views of the same group interoperate freely (both DL and EC backends,
// including the secp160r1 limb field).
type countingGroup struct {
	group.Group
	party *Party
}

// Group wraps g so its exponentiations, multiplications and inversions
// are charged to p. ExpGen calls are counted too, since group.ExpGen
// delegates to Exp. A nil party returns g unchanged (zero overhead
// disabled path); wrapping an already-wrapped group for the same party
// is a no-op, so layered call sites cannot double-count.
func Group(g group.Group, p *Party) group.Group {
	if p == nil {
		return g
	}
	if c, ok := g.(countingGroup); ok && c.party == p {
		return g
	}
	return countingGroup{Group: g, party: p}
}

// PartyOf recovers the party a group was wrapped for, or nil. Packages
// below the protocol layer (elgamal, zkp) use it to attribute their own
// operation counts without any signature change.
func PartyOf(g group.Group) *Party {
	if c, ok := g.(countingGroup); ok {
		return c.party
	}
	return nil
}

// Underlying implements group.Unwrapper, so group.Raw can reach the
// concrete group: fixed-base tables must build and evaluate on raw
// arithmetic, not through the counters.
func (c countingGroup) Underlying() group.Group { return c.Group }

func (c countingGroup) Exp(a group.Element, k *big.Int) group.Element {
	c.party.Add(OpGroupExp, 1)
	return c.Group.Exp(a, k)
}

func (c countingGroup) Op(a, b group.Element) group.Element {
	c.party.Add(OpGroupOp, 1)
	return c.Group.Op(a, b)
}

func (c countingGroup) Inv(a group.Element) group.Element {
	c.party.Add(OpGroupInv, 1)
	return c.Group.Inv(a)
}

// countingNet counts sender-side messages and bytes on a party while
// delegating to the underlying net.
type countingNet struct {
	transport.Net
	party *Party
}

// ObservedNet wraps n so every message and byte this party sends is
// charged to p's current span. A nil party returns n unchanged. Receive
// paths are untouched: traffic is attributed once, at its sender, so
// per-party counts sum to the fabric totals.
//
// Convention: the wrapper is installed at the protocol leaf that owns
// the sends (unlinksort.PartyCtx, the ssmpc engine, core's own
// phase-1/3 sends), over the raw fabric or sub-view — never stacked.
func ObservedNet(n transport.Net, p *Party) transport.Net {
	if p == nil {
		return n
	}
	if c, ok := n.(countingNet); ok && c.party == p {
		return n
	}
	return countingNet{Net: n, party: p}
}

func (c countingNet) Send(round, from, to, bytes int, payload any) error {
	if transport.IsEchoRound(round) {
		// Consistency-layer overhead: charged to its own counters so the
		// protocol's message/byte counts (which the crossval suite pins
		// exactly) are identical with and without echo broadcasts.
		c.party.Add(OpEchoMsgSent, 1)
		c.party.Add(OpEchoByteSent, int64(bytes))
	} else {
		c.party.Add(OpMsgSent, 1)
		c.party.Add(OpByteSent, int64(bytes))
	}
	return c.Net.Send(round, from, to, bytes, payload)
}

func (c countingNet) Broadcast(round, from, bytes int, payload any) error {
	legs := int64(c.Net.N() - 1)
	if transport.IsEchoRound(round) {
		c.party.Add(OpEchoMsgSent, legs)
		c.party.Add(OpEchoByteSent, legs*int64(bytes))
	} else {
		c.party.Add(OpMsgSent, legs)
		c.party.Add(OpByteSent, legs*int64(bytes))
	}
	return c.Net.Broadcast(round, from, bytes, payload)
}

// Recv times the blocking wait and charges it (in microseconds) to the
// party's current span. Together with the span's wall time this gives
// the wait-vs-compute split the trace analyzer uses to tell a slow
// party from a party stuck waiting on a slow peer.
func (c countingNet) Recv(to, from int) (any, error) {
	start := time.Now()
	p, err := c.Net.Recv(to, from)
	c.party.Add(OpRecvWait, time.Since(start).Microseconds())
	return p, err
}

// RecvCtx is the cancellable form of Recv; same wait accounting.
func (c countingNet) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	start := time.Now()
	p, err := c.Net.RecvCtx(ctx, to, from, round)
	c.party.Add(OpRecvWait, time.Since(start).Microseconds())
	return p, err
}

// GatherAll must be restated so gathering uses the wrapper's Recv chain
// rather than the embedded implementation's receiver.
func (c countingNet) GatherAll(to int) ([]any, error) {
	n := c.Net.N()
	out := make([]any, n)
	for from := 0; from < n; from++ {
		if from == to {
			continue
		}
		p, err := c.Recv(to, from)
		if err != nil {
			return nil, err
		}
		out[from] = p
	}
	return out, nil
}

// EchoRequired forwards the consistency layer's capability probe to the
// wrapped net. The probe method is not part of the Net interface, so an
// embedded-interface wrapper would otherwise hide it and silently
// disable equivocation detection on real fabrics.
func (c countingNet) EchoRequired() bool { return transport.NeedsEcho(c.Net) }

// GatherAllCtx must be restated so gathering uses the wrapper's RecvCtx
// chain rather than the embedded implementation's receiver.
func (c countingNet) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	n := c.Net.N()
	out := make([]any, n)
	for from := 0; from < n; from++ {
		if from == to {
			continue
		}
		p, err := c.RecvCtx(ctx, to, from, round)
		if err != nil {
			return nil, err
		}
		out[from] = p
	}
	return out, nil
}

// Do runs fn labelled with the party index in runtime/pprof profiles
// when observability is enabled, and calls it directly (no label
// allocation) otherwise. Orchestrators wrap each protocol goroutine's
// body in it.
func Do(ctx context.Context, party int, fn func(context.Context)) {
	if RegistryFrom(ctx) == nil {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("grouprank_party", strconv.Itoa(party)), fn)
}
