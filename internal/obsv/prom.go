package obsv

import (
	"fmt"
	"io"
)

// WritePrometheus renders the registry's per-party operation totals in
// the Prometheus text exposition format, as one counter family
// grouprank_ops_total{party,op}. It is shaped to slot into
// telemetry.AdminMux as an extra collector, so the admin endpoint's
// /metrics serves the protocol's counters next to the runtime's.
//
// Totals include the open span, so a mid-run scrape sees counters that
// only ever increase. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := io.WriteString(w,
		"# HELP grouprank_ops_total Protocol operations by party and kind.\n# TYPE grouprank_ops_total counter\n"); err != nil {
		return err
	}
	for _, p := range r.partyList() {
		for op := Op(0); op < numOps; op++ {
			if _, err := fmt.Fprintf(w, "grouprank_ops_total{party=\"%d\",op=%q} %d\n",
				p.idx, op.String(), p.Total(op)); err != nil {
				return err
			}
		}
	}
	return nil
}
