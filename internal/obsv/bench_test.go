package obsv

import (
	"testing"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
)

// BenchmarkGroupExp quantifies the observability tax on the hot
// primitive. "disabled" must match "raw" exactly — Group(g, nil) is the
// identity, so a run without a registry pays nothing — and "enabled" is
// one atomic add per exponentiation.
func BenchmarkGroupExp(b *testing.B) {
	g, err := group.ByName("toy-dl-256")
	if err != nil {
		b.Fatal(err)
	}
	rng := fixedbig.NewDRBG("obsv-bench")
	k, err := g.RandomScalar(rng)
	if err != nil {
		b.Fatal(err)
	}
	base := group.ExpGen(g, k)

	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Exp(base, k)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		w := Group(g, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Exp(base, k)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		reg := NewRegistry()
		p := reg.Party(0)
		p.Begin("bench")
		w := Group(g, p)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.Exp(base, k)
		}
		p.End()
	})
}
