package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"groupranking/internal/transport"
)

func open(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j
}

// TestRoundTrip covers the full first-run-then-restart lifecycle: pin,
// seed, epoch, message appends, close, reopen, replay.
func TestRoundTrip(t *testing.T) {
	path := SessionPath(t.TempDir(), "sess", 1)
	j := open(t, path)
	if err := j.PinSession([]byte("fingerprint-1")); err != nil {
		t.Fatalf("PinSession: %v", err)
	}
	seed, err := j.SessionSeed("demo-seed")
	if err != nil || seed != "demo-seed" {
		t.Fatalf("SessionSeed: %q, %v", seed, err)
	}
	if ep, err := j.BeginEpoch(); err != nil || ep != 1 {
		t.Fatalf("BeginEpoch: %d, %v", ep, err)
	}
	if err := j.LogSend(0, 3, 40, 0, "hello"); err != nil {
		t.Fatalf("LogSend: %v", err)
	}
	if err := j.LogSend(0, 4, 41, 1, "world"); err != nil {
		t.Fatalf("LogSend: %v", err)
	}
	if err := j.LogRecv(2, 5, 42, 0, 99); err != nil {
		t.Fatalf("LogRecv: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The restarted process sees everything back.
	j2 := open(t, path)
	defer j2.Close()
	if err := j2.PinSession([]byte("fingerprint-1")); err != nil {
		t.Fatalf("PinSession on reopen: %v", err)
	}
	// Empty seed on restart resolves to the journaled one.
	if seed, err := j2.SessionSeed(""); err != nil || seed != "demo-seed" {
		t.Fatalf("SessionSeed on reopen: %q, %v", seed, err)
	}
	if ep := j2.Epoch(); ep != 1 {
		t.Fatalf("Epoch on reopen: %d, want 1", ep)
	}
	if ep, err := j2.BeginEpoch(); err != nil || ep != 2 {
		t.Fatalf("BeginEpoch on reopen: %d, %v", ep, err)
	}
	sent, err := j2.SentTo(0)
	if err != nil {
		t.Fatalf("SentTo: %v", err)
	}
	want := []transport.JournalMsg{
		{Round: 3, Seq: 0, Bytes: 40, Payload: "hello"},
		{Round: 4, Seq: 1, Bytes: 41, Payload: "world"},
	}
	if len(sent) != len(want) {
		t.Fatalf("SentTo(0): %d messages, want %d", len(sent), len(want))
	}
	for i, m := range sent {
		if m != want[i] {
			t.Errorf("SentTo(0)[%d] = %+v, want %+v", i, m, want[i])
		}
	}
	recv, err := j2.RecvFrom(2)
	if err != nil {
		t.Fatalf("RecvFrom: %v", err)
	}
	if len(recv) != 1 || recv[0].Payload != 99 || recv[0].Round != 5 {
		t.Fatalf("RecvFrom(2) = %+v", recv)
	}
	if s, err := j2.SentTo(2); err != nil || len(s) != 0 {
		t.Fatalf("SentTo(2) = %v, %v; want empty", s, err)
	}
}

// TestTornTail simulates a crash mid-append: trailing garbage and a
// half-written frame must be truncated away on reopen, keeping every
// intact record.
func TestTornTail(t *testing.T) {
	for name, tail := range map[string][]byte{
		"short header":   {0x50},
		"truncated body": {0xff, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 0x01, 0x02},
	} {
		t.Run(name, func(t *testing.T) {
			path := SessionPath(t.TempDir(), "torn", 0)
			j := open(t, path)
			if err := j.PinSession([]byte("fp")); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := j.LogSend(1, i, 10, uint64(i), "msg"); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			j2 := open(t, path)
			defer j2.Close()
			sent, err := j2.SentTo(1)
			if err != nil {
				t.Fatalf("SentTo after torn tail: %v", err)
			}
			if len(sent) != 3 {
				t.Fatalf("got %d intact sends, want 3", len(sent))
			}
			// The tail is gone for good: appending works and a further
			// reopen sees four records.
			if err := j2.LogSend(1, 9, 10, 3, "after"); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			j2.Close()
			j3 := open(t, path)
			defer j3.Close()
			if sent, _ := j3.SentTo(1); len(sent) != 4 {
				t.Fatalf("got %d sends after recovery append, want 4", len(sent))
			}
		})
	}
}

// TestCorruptTailTruncated flips a byte in the final record: the
// checksum catches it and the record is dropped.
func TestCorruptTailTruncated(t *testing.T) {
	path := SessionPath(t.TempDir(), "corrupt", 0)
	j := open(t, path)
	for i := 0; i < 2; i++ {
		if err := j.LogSend(1, i, 10, uint64(i), "msg"); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := open(t, path)
	defer j2.Close()
	if sent, _ := j2.SentTo(1); len(sent) != 1 {
		t.Fatalf("got %d sends after corrupt tail, want 1", len(sent))
	}
}

// TestPinSessionMismatch: a journal can never be resumed into a
// different session (changed flags change the fingerprint).
func TestPinSessionMismatch(t *testing.T) {
	path := SessionPath(t.TempDir(), "pin", 0)
	j := open(t, path)
	if err := j.PinSession([]byte("original")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := open(t, path)
	defer j2.Close()
	if err := j2.PinSession([]byte("different")); err == nil {
		t.Fatal("PinSession accepted a different fingerprint")
	}
}

// TestSessionSeed covers seed resolution: explicit conflicts fail,
// empty first runs fail, restarts inherit.
func TestSessionSeed(t *testing.T) {
	path := SessionPath(t.TempDir(), "seed", 0)
	j := open(t, path)
	if _, err := j.SessionSeed(""); err == nil {
		t.Fatal("empty seed on a fresh journal must fail")
	}
	if _, err := j.SessionSeed("alpha"); err != nil {
		t.Fatal(err)
	}
	// Same explicit seed is fine; a different one is not.
	if s, err := j.SessionSeed("alpha"); err != nil || s != "alpha" {
		t.Fatalf("re-resolving same seed: %q, %v", s, err)
	}
	if _, err := j.SessionSeed("beta"); err == nil {
		t.Fatal("conflicting explicit seed must fail")
	}
	j.Close()
}

// TestOpenRejectsForeignFile: Open must not wade into a file that is
// not a journal.
func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "not a session journal") {
		t.Fatalf("Open on foreign file: %v", err)
	}
}

// TestScan reads records without write access and tolerates a torn
// tail, so tests can watch a live journal from outside the process.
func TestScan(t *testing.T) {
	path := SessionPath(t.TempDir(), "scan", 2)
	j := open(t, path)
	j.PinSession([]byte("fp"))
	j.BeginEpoch()
	j.LogSend(0, 7, 10, 0, "x")
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0x01, 0x02}) // torn tail
	f.Close()

	recs, err := Scan(path)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	kinds := make([]Kind, len(recs))
	for i, r := range recs {
		kinds[i] = r.Kind
	}
	want := []Kind{KindSession, KindEpoch, KindSent}
	if len(kinds) != len(want) {
		t.Fatalf("Scan kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("Scan kinds = %v, want %v", kinds, want)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// Scan on a missing file surfaces the os error.
	if _, err := Scan(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Scan(missing): %v", err)
	}
}

// TestAppendAfterClose: appends to a closed journal fail loudly rather
// than writing to a closed file.
func TestAppendAfterClose(t *testing.T) {
	j := open(t, SessionPath(t.TempDir(), "closed", 0))
	j.Close()
	if err := j.LogSend(1, 0, 10, 0, "late"); err == nil {
		t.Fatal("LogSend after Close must fail")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("Sync after Close must fail")
	}
}

// TestConcurrentAppend: the transport's reader pumps journal receives
// while the protocol goroutine journals sends; both must be safe.
func TestConcurrentAppend(t *testing.T) {
	path := SessionPath(t.TempDir(), "conc", 0)
	j := open(t, path)
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 200; i++ {
			if err := j.LogSend(1, i, 8, uint64(i), "s"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 200; i++ {
			if err := j.LogRecv(2, i, 8, uint64(i), "r"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2 := open(t, path)
	defer j2.Close()
	sent, _ := j2.SentTo(1)
	recv, _ := j2.RecvFrom(2)
	if len(sent) != 200 || len(recv) != 200 {
		t.Fatalf("got %d sends / %d recvs, want 200/200", len(sent), len(recv))
	}
	for i, m := range sent {
		if m.Seq != uint64(i) {
			t.Fatalf("send order broken at %d: seq %d", i, m.Seq)
		}
	}
}

// TestRecordSizePinned pins the on-disk cost of one journaled message.
// The gob-era journal re-emitted the payload type's full descriptor set
// in EVERY record (a fresh encoder per record), so small messages paid
// a multiple of their size in framing; the binary record layout plus
// the wirecodec payload frame is descriptor-free. The numbers below are
// exact — the encoding is fixed-width and deterministic — so any
// regression that reintroduces per-record type tables fails this test
// by a wide margin, not a flaky threshold.
func TestRecordSizePinned(t *testing.T) {
	path := SessionPath(t.TempDir(), "size", 0)
	j := open(t, path)
	defer j.Close()
	base, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	const (
		payloadLen = 64
		records    = 100
		// frame header 8 (len+crc) + record body 37 (kind 1, peer 8,
		// round 8, seq 8, bytes 8, data length prefix 4) + payload frame
		// 77 (wirecodec header 9 + byte-slice body 4+64).
		wantPerRecord = 8 + 37 + 9 + 4 + payloadLen
	)
	payload := make([]byte, payloadLen)
	for i := 0; i < records; i++ {
		if err := j.LogSend(1, 7, payloadLen, uint64(i), payload); err != nil {
			t.Fatalf("LogSend %d: %v", i, err)
		}
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	perRecord := (grown.Size() - base.Size()) / records
	if perRecord != wantPerRecord {
		t.Errorf("bytes per journaled record: %d, want %d", perRecord, wantPerRecord)
	}

	// Every record must cost the same: a first-record-only discount (or
	// surcharge) is the signature of stateful framing creeping back in.
	if total, want := grown.Size()-base.Size(), int64(records*wantPerRecord); total != want {
		t.Errorf("total growth %d bytes, want %d", total, want)
	}
}
