// Package journal is the durable write-ahead log of the crash-recovery
// runtime: one append-only, checksummed file per party per session that
// records the pinned session identity, the party's drawn seed, every
// restart (epoch), and every round-tagged protocol message the party
// sent or received. Because all of a party's randomness is pre-drawn
// from its seed (the framework's transcripts are byte-identical given
// the seed), the journal plus the seed is a complete recovery image: a
// restarted process re-derives its computation deterministically,
// serves every journaled receive without touching the network, and
// resumes live at the first un-journaled message.
//
// Records are framed as length ‖ CRC32 ‖ body, where the body is a
// fixed-width binary encoding of the Record (kind, coordinates, then
// the payload as a self-contained wirecodec frame). Earlier versions
// gobbed each record independently, which re-emitted the full gob type
// descriptor set in EVERY record — for small protocol messages the
// descriptors outweighed the payload several times over. The binary
// form carries no per-record type tables; TestRecordSizePinned pins the
// bytes-per-record cost so a regression cannot creep back in. A crash
// can tear the final record mid-write; Open detects the torn tail
// (short frame or checksum mismatch) and truncates back to the last
// intact record, so the journal is always consistent up to the most
// recent completed append. Appends are flushed to the OS before
// returning — a killed process loses nothing it acted on — and Sync
// forces them to stable storage for machine-crash durability.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"groupranking/internal/telemetry"
	"groupranking/internal/transport"
	"groupranking/internal/wirecodec"
)

// Kind discriminates journal records.
type Kind uint8

// Record kinds.
const (
	// KindSession pins the session identity (Data holds the
	// fingerprint). It must be the first record of every journal;
	// reopening with a different fingerprint fails, so a journal can
	// never be replayed into the wrong session.
	KindSession Kind = iota + 1
	// KindSeed records the party's resolved seed so a restart with an
	// empty -seed flag re-derives the same randomness.
	KindSeed
	// KindEpoch marks one process (re)start; the epoch number is the
	// count of these records and is carried in the reconnect handshake.
	KindEpoch
	// KindSent records one protocol message this party sent (Peer = to).
	KindSent
	// KindRecv records one protocol message this party received and
	// acted on (Peer = from). It is appended before the receive is
	// acknowledged to the sender, so an un-journaled message is always
	// still retransmittable.
	KindRecv
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSession:
		return "session"
	case KindSeed:
		return "seed"
	case KindEpoch:
		return "epoch"
	case KindSent:
		return "sent"
	case KindRecv:
		return "recv"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry. Sent/recv records carry the message's
// transport coordinates plus its encoded payload; the other kinds use
// Data (session fingerprint, seed) or Seq (epoch number) alone.
type Record struct {
	Kind  Kind
	Peer  int    // sent: destination; recv: source
	Round int    // protocol round tag
	Seq   uint64 // per-link sequence number (epoch records: epoch)
	Bytes int    // nominal wire bytes, preserved for exact stats replay
	Data  []byte // wirecodec payload frame (sent/recv), fingerprint (session), seed
}

// appendRecord writes the fixed-width binary body of one record: kind,
// coordinates, then the Data bytes. No type information — the layout IS
// the schema, and fileMagic versions it.
func appendRecord(dst []byte, rec Record) []byte {
	dst = wirecodec.AppendU8(dst, uint8(rec.Kind))
	dst = wirecodec.AppendI64(dst, int64(rec.Peer))
	dst = wirecodec.AppendI64(dst, int64(rec.Round))
	dst = wirecodec.AppendU64(dst, rec.Seq)
	dst = wirecodec.AppendI64(dst, int64(rec.Bytes))
	return wirecodec.AppendBytes(dst, rec.Data)
}

// decodeRecord parses one record body (the bytes appendRecord produced).
func decodeRecord(body []byte) (Record, error) {
	r := wirecodec.NewReader(body)
	var rec Record
	rec.Kind = Kind(r.U8())
	rec.Peer = r.Int()
	rec.Round = r.Int()
	rec.Seq = r.U64()
	rec.Bytes = r.Int()
	rec.Data = r.Bytes()
	if err := r.Finish(); err != nil {
		return Record{}, fmt.Errorf("journal: undecodable record: %w", err)
	}
	return rec, nil
}

// fileMagic guards against feeding an arbitrary file to Open, and
// versions the record layout: GRJL1 framed gob-encoded records, GRJL2
// frames the binary encoding above. There is no cross-version reader —
// a journal only ever needs to outlive the build that wrote it when
// that exact build restarts.
var fileMagic = []byte("GRJL2\n")

// Journal is an open per-party session journal. All methods are safe
// for concurrent use (the transport's reader pumps append receives
// while the protocol goroutine appends sends).
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path    string
	closed  bool
	tm      *journalMetrics
	scratch []byte // reused appendLocked encode buffer, guarded by mu

	fingerprint []byte
	seed        string
	epoch       int
	sent        map[int][]Record // per peer, in append order
	recv        map[int][]Record
}

// journalMetrics exports the durability cost of the write-ahead log:
// how often the party journals, how much it writes, and how long the
// flush-per-append and fsync paths take. Nil (telemetry disabled)
// costs a single nil check per append.
type journalMetrics struct {
	appends       *telemetry.Counter
	bytes         *telemetry.Counter
	appendSeconds *telemetry.Histogram
	fsyncSeconds  *telemetry.Histogram
}

// SetTelemetry connects the journal to a live metrics registry. Call
// before the session starts; a nil registry disables instrumentation.
func (j *Journal) SetTelemetry(reg *telemetry.Registry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if reg == nil {
		j.tm = nil
		return
	}
	j.tm = &journalMetrics{
		appends: reg.Counter("journal_appends_total", "Records appended to the session journal."),
		bytes:   reg.Counter("journal_bytes_total", "Bytes appended to the session journal (frame headers included)."),
		appendSeconds: reg.Histogram("journal_append_seconds",
			"Latency of one journal append, including the flush to the OS.",
			telemetry.ExpBuckets(0.00001, 4, 10)), // 10µs .. ~2.6s
		fsyncSeconds: reg.Histogram("journal_fsync_seconds",
			"Latency of forcing the journal to stable storage.",
			telemetry.ExpBuckets(0.0001, 4, 10)), // 100µs .. ~26s
	}
}

// SessionPath names the journal file for one party of one session
// inside dir. Distinct sessions and parties never share a file.
func SessionPath(dir, sessionID string, party int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-p%d.journal", sessionID, party))
}

// Open creates the journal at path, or reopens an existing one and
// replays its records into memory. A torn final record (crash mid-
// append) is truncated away; corruption before the tail is an error.
func Open(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	j := &Journal{
		f:    f,
		path: path,
		sent: make(map[int][]Record),
		recv: make(map[int][]Record),
	}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load replays the file into memory, writing the magic into an empty
// file and truncating a torn tail.
func (j *Journal) load() error {
	info, err := j.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		if _, err := j.f.Write(fileMagic); err != nil {
			return fmt.Errorf("journal: writing header: %w", err)
		}
		return nil
	}
	r := bufio.NewReader(io.NewSectionReader(j.f, 0, info.Size()))
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, fileMagic) {
		return fmt.Errorf("journal: %s is not a session journal", j.path)
	}
	good := int64(len(fileMagic))
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn or checksum-failed frame at the tail is the signature
			// of a crash mid-append: drop it and resume from the last
			// intact record. (Anything after a torn frame is unframeable,
			// so truncation at the first bad record is the only safe cut.)
			if terr := j.f.Truncate(good); terr != nil {
				return fmt.Errorf("journal: truncating torn tail: %v (after %v)", terr, err)
			}
			break
		}
		good += int64(n)
		j.apply(rec)
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// apply folds one record into the in-memory state.
func (j *Journal) apply(rec Record) {
	switch rec.Kind {
	case KindSession:
		j.fingerprint = rec.Data
	case KindSeed:
		j.seed = string(rec.Data)
	case KindEpoch:
		j.epoch = int(rec.Seq)
	case KindSent:
		j.sent[rec.Peer] = append(j.sent[rec.Peer], rec)
	case KindRecv:
		j.recv[rec.Peer] = append(j.recv[rec.Peer], rec)
	}
}

// readRecord decodes one length ‖ crc ‖ body frame, returning the frame
// size. Any short read or checksum mismatch is an error (the caller
// decides whether it is a truncatable tail).
func readRecord(r io.Reader) (Record, int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Record{}, 0, io.EOF // clean end
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, fmt.Errorf("journal: torn frame header")
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if size > 1<<30 {
		return Record{}, 0, fmt.Errorf("journal: implausible record size %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, fmt.Errorf("journal: torn record body")
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, 0, fmt.Errorf("journal: record checksum mismatch")
	}
	rec, err := decodeRecord(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, 8 + int(size), nil
}

// append frames, writes and flushes one record under the lock.
func (j *Journal) append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec)
}

func (j *Journal) appendLocked(rec Record) error {
	if j.closed {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	var start time.Time
	if j.tm != nil {
		start = time.Now()
	}
	// The scratch buffer is reused across appends (safe: appendLocked
	// holds j.mu), so steady-state appends allocate nothing.
	body := appendRecord(j.scratch[:0], rec)
	j.scratch = body[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	if _, err := j.w.Write(body); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	// Flush to the OS on every append: a SIGKILL'd process then loses at
	// most the record being written (which Open truncates away), never
	// one it already acted on.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flushing: %w", err)
	}
	if j.tm != nil {
		j.tm.appends.Inc()
		j.tm.bytes.Add(int64(len(hdr) + len(body)))
		j.tm.appendSeconds.Observe(time.Since(start).Seconds())
	}
	j.apply(rec)
	return nil
}

// PinSession records the session fingerprint on first open and verifies
// it on every reopen, so a journal cannot be resumed with different
// flags, addresses or parameters than the session it belongs to.
func (j *Journal) PinSession(fingerprint []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fingerprint == nil {
		return j.appendLocked(Record{Kind: KindSession, Data: append([]byte(nil), fingerprint...)})
	}
	if !bytes.Equal(j.fingerprint, fingerprint) {
		return fmt.Errorf("journal: %s belongs to a different session (was this party restarted with different flags?)", j.path)
	}
	return nil
}

// SessionSeed resolves the party's seed against the journal: the first
// run records the given (drawn or explicit) seed; a restart returns the
// journaled one, so recovery works even when the operator never chose a
// seed. An explicit seed that contradicts the journal is an error.
func (j *Journal) SessionSeed(seed string) (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seed != "" {
		if seed != "" && seed != j.seed {
			return "", fmt.Errorf("journal: %s was started with a different seed", j.path)
		}
		return j.seed, nil
	}
	if seed == "" {
		return "", fmt.Errorf("journal: refusing to journal an empty seed")
	}
	return seed, j.appendLocked(Record{Kind: KindSeed, Data: []byte(seed)})
}

// BeginEpoch marks one process start and returns the new epoch number
// (1 on the first run). The reconnect handshake carries it so peers can
// tell a restarted party from a stale connection.
func (j *Journal) BeginEpoch() (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	next := j.epoch + 1
	if err := j.appendLocked(Record{Kind: KindEpoch, Seq: uint64(next)}); err != nil {
		return 0, err
	}
	return next, nil
}

// Epoch returns the current epoch (0 before any BeginEpoch).
func (j *Journal) Epoch() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// LogSend implements transport.Journaler: it durably records one sent
// message (write-ahead: the transport journals before the first wire
// write, so a crash can never lose a message peers might be owed).
func (j *Journal) LogSend(peer, round, bytes int, seq uint64, payload any) error {
	data, err := encodePayload(payload)
	if err != nil {
		return err
	}
	return j.append(Record{Kind: KindSent, Peer: peer, Round: round, Seq: seq, Bytes: bytes, Data: data})
}

// LogRecv implements transport.Journaler: it durably records one
// received message before the transport acknowledges it, so every
// acknowledged message survives a crash of the receiver.
func (j *Journal) LogRecv(peer, round, bytes int, seq uint64, payload any) error {
	data, err := encodePayload(payload)
	if err != nil {
		return err
	}
	return j.append(Record{Kind: KindRecv, Peer: peer, Round: round, Seq: seq, Bytes: bytes, Data: data})
}

// SentTo implements transport.Journaler: the messages this party
// journaled to peer, in send order, decoded and ready to retransmit.
func (j *Journal) SentTo(peer int) ([]transport.JournalMsg, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return decodeMsgs(j.sent[peer])
}

// RecvFrom implements transport.Journaler: the messages this party
// journaled from peer, in receive order, served to the restarted
// protocol before any live traffic.
func (j *Journal) RecvFrom(peer int) ([]transport.JournalMsg, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return decodeMsgs(j.recv[peer])
}

func decodeMsgs(recs []Record) ([]transport.JournalMsg, error) {
	out := make([]transport.JournalMsg, len(recs))
	for i, rec := range recs {
		payload, err := decodePayload(rec.Data)
		if err != nil {
			return nil, fmt.Errorf("journal: decoding journaled message (round %d, seq %d): %w", rec.Round, rec.Seq, err)
		}
		out[i] = transport.JournalMsg{Round: rec.Round, Seq: rec.Seq, Bytes: rec.Bytes, Payload: payload}
	}
	return out, nil
}

// Sync forces all appended records to stable storage (fsync). Appends
// already survive process death; Sync extends that to machine crashes.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	var start time.Time
	if j.tm != nil {
		start = time.Now()
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if j.tm != nil {
		j.tm.fsyncSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Scan reads every intact record from a journal file without opening it
// for writing — the tooling and test view. A torn tail is skipped, not
// an error, so Scan is safe on a journal another process is appending.
func Scan(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, head); err != nil || !bytes.Equal(head, fileMagic) {
		return nil, fmt.Errorf("journal: %s is not a session journal", path)
	}
	var recs []Record
	for {
		rec, _, err := readRecord(r)
		if err != nil {
			break // io.EOF, torn tail, or in-flight append: return what's intact
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// encodePayload encodes an arbitrary payload as one self-contained
// wirecodec frame — the same bytes the transport puts on the wire.
// Registered types get their fixed-width codec; anything else rides
// the codec's gob-fallback frame (and must then be gob-registered,
// e.g. via core.RegisterWire). Earlier versions gobbed each payload
// with a FRESH encoder, so every record paid for the payload type's
// full descriptor set again; the wirecodec frame is descriptor-free.
func encodePayload(p any) ([]byte, error) {
	data, err := wirecodec.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding payload: %w", err)
	}
	return data, nil
}

func decodePayload(b []byte) (any, error) {
	return wirecodec.Unmarshal(b)
}
