package unlinksort

import (
	"fmt"
	"math/big"
	"sort"
	"testing"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
)

func testConfig(t *testing.T, l int) Config {
	t.Helper()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("unlink-group"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Group: g, L: l}
}

func bigs(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

// wantRanks computes the expected descending ranks with the paper's tie
// rule: rank = 1 + number of strictly larger values.
func wantRanks(vals []int64) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		for _, w := range vals {
			if w > v {
				out[i]++
			}
		}
		out[i]++
	}
	return out
}

func TestRanksBasic(t *testing.T) {
	cfg := testConfig(t, 6)
	cases := []struct {
		name string
		vals []int64
	}{
		{"distinct", []int64{5, 17, 2, 63}},
		{"two parties", []int64{9, 4}},
		{"already sorted desc", []int64{60, 40, 20}},
		{"ascending", []int64{1, 2, 3, 4, 5}},
		{"with zero", []int64{0, 33, 12}},
		{"max value", []int64{63, 0, 31}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			results, _, err := Run(cfg, bigs(tc.vals...), "basic-"+tc.name)
			if err != nil {
				t.Fatal(err)
			}
			want := wantRanks(tc.vals)
			for j, r := range results {
				if r.Rank != want[j] {
					t.Errorf("party %d (value %d): rank %d, want %d", j, tc.vals[j], r.Rank, want[j])
				}
			}
		})
	}
}

func TestRanksWithTies(t *testing.T) {
	cfg := testConfig(t, 5)
	vals := []int64{10, 7, 10, 3, 7}
	results, _, err := Run(cfg, bigs(vals...), "ties")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks(vals) // [1 3 1 5 3]
	for j, r := range results {
		if r.Rank != want[j] {
			t.Errorf("party %d (value %d): rank %d, want %d", j, vals[j], r.Rank, want[j])
		}
	}
}

func TestAllEqual(t *testing.T) {
	cfg := testConfig(t, 4)
	results, _, err := Run(cfg, bigs(6, 6, 6), "all-equal")
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range results {
		if r.Rank != 1 {
			t.Errorf("party %d: rank %d, want 1 (all values equal)", j, r.Rank)
		}
	}
}

func TestZerosMatchRank(t *testing.T) {
	cfg := testConfig(t, 8)
	results, _, err := Run(cfg, bigs(200, 100, 150, 50), "zeros")
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range results {
		if r.Rank != r.Zeros+1 {
			t.Errorf("party %d: rank %d but zeros %d", j, r.Rank, r.Zeros)
		}
	}
}

func TestSkipProofsStillRanksCorrectly(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.SkipProofs = true
	results, _, err := Run(cfg, bigs(3, 9, 6), "skip-proofs")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks([]int64{3, 9, 6})
	for j, r := range results {
		if r.Rank != want[j] {
			t.Errorf("party %d: rank %d, want %d", j, r.Rank, want[j])
		}
	}
}

func TestOverEllipticCurve(t *testing.T) {
	cfg := Config{Group: group.Secp160r1(), L: 4}
	results, _, err := Run(cfg, bigs(11, 2, 7), "ec-run")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks([]int64{11, 2, 7})
	for j, r := range results {
		if r.Rank != want[j] {
			t.Errorf("party %d: rank %d, want %d", j, r.Rank, want[j])
		}
	}
}

func TestValueOutOfRange(t *testing.T) {
	cfg := testConfig(t, 4)
	if _, _, err := Run(cfg, bigs(16, 1), "overflow"); err == nil {
		t.Error("value exceeding L bits accepted")
	}
	if _, _, err := Run(cfg, bigs(-1, 1), "negative"); err == nil {
		t.Error("negative value accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Run(Config{L: 4}, bigs(1, 2), "no-group"); err == nil {
		t.Error("missing group accepted")
	}
	cfg := testConfig(t, 0)
	if _, _, err := Run(cfg, bigs(1, 2), "zero-l"); err == nil {
		t.Error("zero bit width accepted")
	}
}

func TestSinglePartyRejected(t *testing.T) {
	cfg := testConfig(t, 4)
	if _, _, err := Run(cfg, bigs(3), "single"); err == nil {
		t.Error("single party accepted")
	}
}

func TestCommunicationShape(t *testing.T) {
	// Per-party traffic must be O(l·n²) ciphertexts and the chain O(n)
	// rounds (Section VI-B).
	cfg := testConfig(t, 4)
	vals := bigs(1, 5, 9, 13, 7)
	_, fab, err := Run(cfg, vals, "shape")
	if err != nil {
		t.Fatal(err)
	}
	n := len(vals)
	stats := fab.Stats()
	if stats.MaxRound < roundChainBase+n-1 {
		t.Errorf("max round %d, want at least %d (chain of length n)", stats.MaxRound, roundChainBase+n-1)
	}
	// The heaviest single transfer is the chain vector:
	// n(n−1)·L ciphertexts. Each chain party sends roughly one vector.
	ctBytes := 2 * cfg.Group.ElementLen()
	vectorBytes := int64(n * (n - 1) * cfg.L * ctBytes)
	for p, b := range stats.BytesSent {
		if b > 4*vectorBytes {
			t.Errorf("party %d sent %d bytes, far above the O(l·n²) bound %d", p, b, vectorBytes)
		}
	}
}

func TestRankUnaffectedByChainOrder(t *testing.T) {
	// Determinised reruns with different seeds (hence different shuffles
	// and blindings) must produce identical ranks.
	cfg := testConfig(t, 6)
	vals := bigs(33, 21, 45, 8)
	var first []int
	for trial := 0; trial < 3; trial++ {
		results, _, err := Run(cfg, vals, fmt.Sprintf("order-%d", trial))
		if err != nil {
			t.Fatal(err)
		}
		ranks := make([]int, len(results))
		for j, r := range results {
			ranks[j] = r.Rank
		}
		if trial == 0 {
			first = ranks
			continue
		}
		for j := range ranks {
			if ranks[j] != first[j] {
				t.Fatalf("trial %d: ranks %v differ from %v", trial, ranks, first)
			}
		}
	}
}

func TestManyValuesRandomised(t *testing.T) {
	if testing.Short() {
		t.Skip("8-party run is slow in -short mode")
	}
	cfg := testConfig(t, 10)
	vals := []int64{513, 12, 1023, 0, 768, 256, 255, 700}
	results, _, err := Run(cfg, bigs(vals...), "many")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks(vals)
	got := make([]int, len(results))
	for j, r := range results {
		got[j] = r.Rank
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("ranks %v, want %v", got, want)
		}
	}
	// Ranks must be a permutation of 1..n for distinct values.
	sorted := append([]int(nil), got...)
	sort.Ints(sorted)
	for i, r := range sorted {
		if r != i+1 {
			t.Fatalf("ranks are not a permutation: %v", got)
		}
	}
}

func TestCheatingProverIsRejected(t *testing.T) {
	// A party that publishes a key share it cannot prove knowledge of
	// must be rejected by every honest verifier. The cheater publishes
	// y = g^x but answers the challenge with a different secret.
	cfg := testConfig(t, 4)
	g := cfg.Group
	n := 3
	fab, err := transport.New(n, transport.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, n)

	// Honest parties 0 and 1.
	for p := 0; p < 2; p++ {
		p := p
		go func() {
			rng := fixedbig.NewDRBG(fmt.Sprintf("cheat-honest-%d", p))
			_, err := Party(cfg, p, fab, big.NewInt(int64(p+1)), rng)
			errCh <- err
		}()
	}
	// Cheater party 2: follows the wire format but proves the wrong key.
	go func() {
		rng := fixedbig.NewDRBG("cheater")
		x, _ := g.RandomScalar(rng)
		wrong, _ := g.RandomScalar(rng)
		y := group.ExpGen(g, x)
		if err := fab.Broadcast(roundPublishKeys, 2, g.ElementLen(), y); err != nil {
			errCh <- err
			return
		}
		if _, err := fab.GatherAll(2); err != nil {
			errCh <- err
			return
		}
		// Commitment with the wrong secret.
		r, _ := g.RandomScalar(rng)
		h := group.ExpGen(g, r)
		if err := fab.Broadcast(roundProofCommit, 2, g.ElementLen(), h); err != nil {
			errCh <- err
			return
		}
		if _, err := fab.GatherAll(2); err != nil {
			errCh <- err
			return
		}
		chals := make([]*big.Int, n)
		for j := 0; j < n; j++ {
			if j == 2 {
				continue
			}
			chals[j], _ = g.RandomScalar(rng)
		}
		if err := fab.Broadcast(roundProofChallenge, 2, 64, chals); err != nil {
			errCh <- err
			return
		}
		msgs, err := fab.GatherAll(2)
		if err != nil {
			errCh <- err
			return
		}
		sum := new(big.Int)
		for j := 0; j < n; j++ {
			if j == 2 {
				continue
			}
			cs := msgs[j].([]*big.Int)
			sum.Add(sum, cs[2])
		}
		z := new(big.Int).Mul(wrong, sum) // wrong secret
		z.Add(z, r)
		z.Mod(z, g.Order())
		if err := fab.Broadcast(roundProofResponse, 2, 64, z); err != nil {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	rejected := 0
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			rejected++
		}
	}
	if rejected < 2 {
		t.Errorf("only %d parties rejected the cheating prover, want the 2 honest ones", rejected)
	}
}

func TestDroppedMessageFailsCleanly(t *testing.T) {
	// Failure injection: if the chain vector is dropped, parties must
	// return timeout errors instead of wrong ranks or deadlock.
	cfg := testConfig(t, 4)
	opts := []transport.Option{
		transport.WithRecvTimeout(200 * time.Millisecond),
		transport.WithDropFilter(func(e transport.Event) bool {
			return e.Round >= roundChainBase // kill the whole chain
		}),
	}
	_, _, err := Run(cfg, bigs(1, 2, 3), "dropped", opts...)
	if err == nil {
		t.Fatal("dropped chain messages must surface as an error")
	}
}

func TestUnlinkabilityShuffleUniformity(t *testing.T) {
	// Operational check on Definition 7's mechanism: across many runs,
	// the zero counts are identical (ranks stable) while the chain's
	// shuffles and blindings differ — verified indirectly by checking
	// that repeated runs exercise different transcripts (trace byte
	// pattern is equal, but the ciphertexts differ, which we observe via
	// the deterministic DRBG: different seeds give different shuffles yet
	// identical ranks). The heavier statistical test lives in the core
	// framework's identity-unlinkability test.
	cfg := testConfig(t, 5)
	vals := bigs(20, 10)
	ranksSeen := make(map[string]bool)
	for trial := 0; trial < 5; trial++ {
		results, _, err := Run(cfg, vals, fmt.Sprintf("uniform-%d", trial))
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("%d-%d", results[0].Rank, results[1].Rank)
		ranksSeen[key] = true
	}
	if len(ranksSeen) != 1 {
		t.Errorf("ranks varied across reruns: %v", ranksSeen)
	}
	if !ranksSeen["1-2"] {
		t.Errorf("wrong ranks: %v", ranksSeen)
	}
}
