package unlinksort

// Covert-adversary test harness: seeded protocol-level deviations the
// Byzantine chaos suite injects into one party, and the blame
// certificates honest parties issue when a check catches a cheater.
// The deviations are the crypto-level counterparts of FaultNet's
// wire-level behaviours (equivocate, replay): a bad key-knowledge
// proof, a chain hop stripping with the wrong key, and a hop tampering
// with its own τ set in transit — each chosen because the protocol
// carries a verifiable check for it, so every schedule must end in a
// certificate the offline verifier (internal/blame) confirms.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"

	"groupranking/internal/elgamal"
	"groupranking/internal/group"
	"groupranking/internal/transport"
	"groupranking/internal/zkp"
)

// ByzBehavior enumerates the supported protocol-level deviations.
type ByzBehavior int

const (
	// ByzNone: honest behaviour.
	ByzNone ByzBehavior = iota
	// ByzBadKeyProof perturbs the Schnorr response so the multi-verifier
	// key-knowledge proof fails at every honest verifier.
	ByzBadKeyProof
	// ByzWrongDecryption strips chain key layers (and builds the
	// Chaum–Pedersen transcripts) with a key other than the registered
	// share — the silent rank-corruption attack ProveDecryption exists
	// to catch. Detected by the hop's successor, so the chaos suite
	// schedules it on parties before the last hop and only in
	// ProveDecryption mode.
	ByzWrongDecryption
	// ByzTamperOwnSet modifies the party's own τ set while passing it
	// through the chain (hops must forward their own set untouched).
	// Detected by the successor's pass-through check, with the same
	// scheduling constraints as ByzWrongDecryption.
	ByzTamperOwnSet
)

// String implements fmt.Stringer.
func (b ByzBehavior) String() string {
	switch b {
	case ByzNone:
		return "none"
	case ByzBadKeyProof:
		return "bad-key-proof"
	case ByzWrongDecryption:
		return "wrong-partial-decryption"
	case ByzTamperOwnSet:
		return "tamper-own-set"
	default:
		return fmt.Sprintf("ByzBehavior(%d)", int(b))
	}
}

// Byz selects one party's deviation. It exists for the chaos suite and
// robustness tests; deployments never set it.
type Byz struct {
	Party    int
	Behavior ByzBehavior
}

// byzFor returns the deviation configured for party me, if any.
func (c Config) byzFor(me int) ByzBehavior {
	if c.Byz != nil && c.Byz.Party == me {
		return c.Byz.Behavior
	}
	return ByzNone
}

// malformedAbort is the typed abort for a payload that fails the
// receiver's shape check: it names the actual sender (never the
// observer — the runner's fallback attribution would otherwise blame
// the honest party that noticed) and carries a CheckMalformed
// certificate recording the observed and expected shapes.
func malformedAbort(accused, reporter, round int, phase, got, want string) error {
	return transport.Abort(accused, round, phase,
		fmt.Errorf("unlinksort: party %d sent %s, want %s", accused, got, want)).
		WithCert(&transport.BlameCert{
			Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
			Round: round, Phase: phase, Check: transport.CheckMalformed,
			Detail: fmt.Sprintf("party %d sent %s where %s was expected", accused, got, want),
			Items: []transport.BlameItem{
				{Name: "type-got", Data: []byte(got)},
				{Name: "type-want", Data: []byte(want)},
			},
		})
}

// certInvalidElement records an off-group element (invalid-curve
// attack attempt): the offline verifier re-runs decode+validate on the
// recorded encoding and confirms it is rejected.
func certInvalidElement(g group.Group, accused, reporter, round int, phase string, e group.Element) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: round, Phase: phase, Check: transport.CheckInvalidElement,
		Detail: fmt.Sprintf("party %d sent a group element that fails membership validation", accused),
		Group:  g.Name(),
		Items:  []transport.BlameItem{{Name: "element", Data: g.Encode(e)}},
	}
}

// certKeyProof records a failed multi-verifier Schnorr proof: the full
// statement (key share y, commitment h, every verifier's challenge,
// response z), so internal/blame can re-run zkp.Verify offline.
func certKeyProof(g group.Group, accused, reporter int, y, h group.Element, challenges []*big.Int, z *big.Int) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: roundProofResponse, Phase: PhaseKeyProof, Check: transport.CheckKeyProof,
		Detail: fmt.Sprintf("party %d's key-knowledge proof does not verify", accused),
		Group:  g.Name(),
		Items: []transport.BlameItem{
			{Name: "y", Data: g.Encode(y)},
			{Name: "h", Data: g.Encode(h)},
			{Name: "challenges", Data: encodeScalars(challenges)},
			{Name: "z", Data: z.Bytes()},
		},
	}
}

// certPartialDecryption records a failed Chaum–Pedersen strip proof:
// the registered key share, the ciphertext before and after the strip,
// and the transcript, so the verifier can re-run
// zkp.VerifyPartialDecryption offline.
func certPartialDecryption(g group.Group, accused, reporter, round int, in, st elgamal.Ciphertext, t zkp.EqualityTranscript, y group.Element) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: round, Phase: PhaseChain, Check: transport.CheckPartialDecryption,
		Detail: fmt.Sprintf("party %d's partial-decryption proof does not verify against its registered key share", accused),
		Group:  g.Name(),
		Items: []transport.BlameItem{
			{Name: "y", Data: g.Encode(y)},
			{Name: "c1", Data: g.Encode(in.C1)},
			{Name: "orig-c", Data: g.Encode(in.C)},
			{Name: "stripped-c", Data: g.Encode(st.C)},
			{Name: "commit-g", Data: g.Encode(t.CommitG)},
			{Name: "commit-h", Data: g.Encode(t.CommitH)},
			{Name: "challenge", Data: t.Challenge.Bytes()},
			{Name: "response", Data: t.Response.Bytes()},
		},
	}
}

// certStrippedRandomness records a strip step that altered a
// ciphertext's randomness component (C1 must pass through a strip
// unchanged; the proofs only bind C).
func certStrippedRandomness(g group.Group, accused, reporter, round int, in, st elgamal.Ciphertext) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: round, Phase: PhaseChain, Check: transport.CheckStrippedRandomness,
		Detail: fmt.Sprintf("party %d altered a ciphertext's randomness component during its strip step", accused),
		Group:  g.Name(),
		Items: []transport.BlameItem{
			{Name: "orig-c1", Data: g.Encode(in.C1)},
			{Name: "stripped-c1", Data: g.Encode(st.C1)},
		},
	}
}

// certSetAnchor records a ciphertext set that does not hash to its
// binding commitment (owner anchor, previous hop's broadcast
// commitment, or the final-set commitment). The set rides along as the
// concatenation of its fixed-length ciphertext encodings — exactly the
// byte stream hashSet digests — so the verifier just re-hashes.
func certSetAnchor(accused, reporter, round int, detail string, anchor, setBytes []byte) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: round, Phase: PhaseChain, Check: transport.CheckSetAnchor,
		Detail: detail,
		Items: []transport.BlameItem{
			{Name: "anchor", Data: anchor},
			{Name: "set", Data: setBytes},
		},
	}
}

// certOwnSetTampered records a hop that forwarded its own τ set
// modified: the set it received (bound to the previous commitment) and
// the set it passed on, which must be byte-identical.
func certOwnSetTampered(accused, reporter, round int, inputSet, passedSet []byte) *transport.BlameCert {
	return &transport.BlameCert{
		Version: transport.BlameCertVersion, Accused: accused, Reporter: reporter,
		Round: round, Phase: PhaseChain, Check: transport.CheckOwnSetTampered,
		Detail: fmt.Sprintf("party %d modified its own τ set in transit (hops must pass their own set through untouched)", accused),
		Items: []transport.BlameItem{
			{Name: "input-set", Data: inputSet},
			{Name: "passed-set", Data: passedSet},
		},
	}
}

// encodeScalars serialises a challenge list for certificate evidence.
func encodeScalars(list []*big.Int) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(list); err != nil {
		// A []*big.Int always gob-encodes; a failure here is a broken
		// runtime, not bad peer input.
		panic(fmt.Sprintf("unlinksort: encoding challenge evidence: %v", err))
	}
	return buf.Bytes()
}

// encodeSetBytes concatenates a set's fixed-length ciphertext
// encodings — the exact byte stream hashSet digests — as certificate
// evidence.
func encodeSetBytes(scheme *elgamal.Scheme, set []elgamal.Ciphertext) []byte {
	out := make([]byte, 0, len(set)*scheme.EncodedLen())
	for _, ct := range set {
		out = scheme.AppendEncode(out, ct)
	}
	return out
}
