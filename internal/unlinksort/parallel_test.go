package unlinksort

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"reflect"
	"sync"
	"testing"
	"time"

	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
)

// TestWorkerCountInvariance is the determinism contract of the parallel
// kernels: the same seed must produce bit-identical results — ranks,
// zero counts AND the shuffled zero positions — at every worker count,
// because all randomness is pre-drawn serially in the reference order
// and only the pure group arithmetic fans out.
func TestWorkerCountInvariance(t *testing.T) {
	g := group.Secp160r1()
	betas := []*big.Int{
		big.NewInt(7), big.NewInt(3), big.NewInt(11),
		big.NewInt(3), big.NewInt(0), big.NewInt(12),
	}
	run := func(t *testing.T, cfg Config) []Result {
		t.Helper()
		res, _, err := RunCtx(context.Background(), cfg, betas, "worker-invariance", nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, proofs := range []bool{false, true} {
		name := "plain"
		if proofs {
			name = "prove-decryption"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Group: g, L: 5, ProveDecryption: proofs, Workers: 1}
			serial := run(t, cfg)
			for _, w := range []int{2, 8} {
				cfg.Workers = w
				got := run(t, cfg)
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("workers=%d diverged from the serial reference:\nserial   %+v\nparallel %+v",
						w, serial, got)
				}
			}
		})
	}
}

// TestInvalidCurveKeyShareAbortsOverTCP is the invalid-curve regression
// over the real serialising transport: a malicious party gob-sends a
// structurally well-formed but off-curve point as its key share. Before
// the fix the honest parties would fold it into the joint public key
// (gob decoding cannot check membership); now every honest party must
// reject it at the receive boundary with a typed abort naming the
// attacker.
func TestInvalidCurveKeyShareAbortsOverTCP(t *testing.T) {
	RegisterWire()
	g := group.Secp160r1()
	evil, err := group.UnsafeElementFromCoords(g, big.NewInt(1), big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if group.Validate(g, evil) == nil {
		t.Fatal("test point is unexpectedly on the curve; pick other coordinates")
	}

	const n = 3
	addrs, err := transport.FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	honestDone := make(chan struct{})
	errs := make([]error, n)
	var wg, honestWG sync.WaitGroup
	wg.Add(n)
	honestWG.Add(n - 1)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			fab, err := transport.NewTCPFabric(addrs, i, 20*time.Second)
			if err != nil {
				errs[i] = err
				if i != 0 {
					honestWG.Done()
				}
				return
			}
			defer fab.Close()
			if i == 0 {
				// The attacker: broadcast the off-curve share where the
				// protocol publishes key shares, then idle until the
				// honest parties have aborted (closing earlier could
				// turn their failure into a peer-down abort instead).
				errs[i] = fab.Broadcast(roundPublishKeys, 0, g.ElementLen(), evil)
				<-honestDone
				return
			}
			defer honestWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			rng := fixedbig.NewDRBG(fmt.Sprintf("invalid-curve-party-%d", i))
			_, errs[i] = PartyCtx(ctx, Config{Group: g, L: 4}, i, fab, big.NewInt(int64(i)), rng)
		}()
	}
	go func() {
		honestWG.Wait()
		close(honestDone)
	}()
	wg.Wait()

	if errs[0] != nil {
		t.Fatalf("attacker failed to send: %v", errs[0])
	}
	for i := 1; i < n; i++ {
		err := errs[i]
		if err == nil {
			t.Fatalf("honest party %d accepted an off-curve key share", i)
		}
		var abort *transport.AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("honest party %d returned an untyped error: %v", i, err)
		}
		if abort.Party != 0 {
			t.Errorf("honest party %d blamed party %d, want the attacker (0): %v", i, abort.Party, err)
		}
	}
}
