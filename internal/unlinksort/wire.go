package unlinksort

import (
	"fmt"

	"groupranking/internal/elgamal"
	"groupranking/internal/wirecodec"
	"groupranking/internal/zkp"
)

// Hand-rolled wire codecs for every round payload, replacing the gob
// forms (which remain registered by RegisterWire as the fallback for
// auxiliary traffic). All layouts are count-prefixed concatenations of
// the elgamal/zkp wire forms; decoding is structural, with membership
// of every ciphertext component still validated by the receive paths
// via group.Validate.

func appendCts(dst []byte, cts []elgamal.Ciphertext) ([]byte, error) {
	dst = wirecodec.AppendU32(dst, uint32(len(cts)))
	var err error
	for _, ct := range cts {
		if dst, err = elgamal.AppendCiphertextWire(dst, ct); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func readCts(r *wirecodec.Reader) []elgamal.Ciphertext {
	n := r.Count(2) // smallest ciphertext: two 1-byte infinity elements
	out := make([]elgamal.Ciphertext, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, elgamal.ReadCiphertext(r))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func appendCtMatrix(dst []byte, m [][]elgamal.Ciphertext) ([]byte, error) {
	dst = wirecodec.AppendU32(dst, uint32(len(m)))
	var err error
	for _, row := range m {
		if dst, err = appendCts(dst, row); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func readCtMatrix(r *wirecodec.Reader) [][]elgamal.Ciphertext {
	n := r.Count(4) // each row carries at least its u32 count
	out := make([][]elgamal.Ciphertext, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, readCts(r))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func appendProofMatrix(dst []byte, m [][]zkp.EqualityTranscript) ([]byte, error) {
	dst = wirecodec.AppendU32(dst, uint32(len(m)))
	var err error
	for _, row := range m {
		dst = wirecodec.AppendU32(dst, uint32(len(row)))
		for _, t := range row {
			if dst, err = t.AppendBinary(dst); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

func readProofMatrix(r *wirecodec.Reader) [][]zkp.EqualityTranscript {
	n := r.Count(4)
	out := make([][]zkp.EqualityTranscript, 0, n)
	for i := 0; i < n; i++ {
		k := r.Count(12) // two elements + two scalars, each ≥1 byte framed
		row := make([]zkp.EqualityTranscript, 0, k)
		for j := 0; j < k; j++ {
			row = append(row, zkp.ReadTranscript(r))
			if r.Err() != nil {
				return nil
			}
		}
		out = append(out, row)
	}
	return out
}

func appendHashes(dst []byte, hs [][]byte) []byte {
	dst = wirecodec.AppendU32(dst, uint32(len(hs)))
	for _, h := range hs {
		dst = wirecodec.AppendBytes(dst, h)
	}
	return dst
}

func readHashes(r *wirecodec.Reader) [][]byte {
	n := r.Count(4)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Bytes())
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func finishMsg(r *wirecodec.Reader, kind string) error {
	if err := r.Finish(); err != nil {
		return fmt.Errorf("unlinksort: %s: %w", kind, err)
	}
	return nil
}

func init() {
	base := wirecodec.IDRangeProtocol + 2 // 32/33 are dotprod's

	wirecodec.Register(base, "unlinksort bits", []any{bitsMsg{}},
		func(dst []byte, v any) ([]byte, error) { return appendCts(dst, v.(bitsMsg).Cts) },
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := bitsMsg{Cts: readCts(r)}
			return m, finishMsg(r, "bits message")
		})

	wirecodec.Register(base+1, "unlinksort tau set", []any{tauSetMsg{}},
		func(dst []byte, v any) ([]byte, error) { return appendCts(dst, v.(tauSetMsg).Set) },
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := tauSetMsg{Set: readCts(r)}
			return m, finishMsg(r, "tau set")
		})

	wirecodec.Register(base+2, "unlinksort vector", []any{vectorMsg{}},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(vectorMsg)
			var err error
			if dst, err = appendCtMatrix(dst, m.V); err != nil {
				return nil, err
			}
			if dst, err = appendCtMatrix(dst, m.Input); err != nil {
				return nil, err
			}
			if dst, err = appendCtMatrix(dst, m.Stripped); err != nil {
				return nil, err
			}
			return appendProofMatrix(dst, m.Proofs)
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := vectorMsg{
				V:        readCtMatrix(r),
				Input:    readCtMatrix(r),
				Stripped: readCtMatrix(r),
				Proofs:   readProofMatrix(r),
			}
			return m, finishMsg(r, "vector message")
		})

	wirecodec.Register(base+3, "unlinksort anchor", []any{anchorMsg{}},
		func(dst []byte, v any) ([]byte, error) {
			return wirecodec.AppendBytes(dst, v.(anchorMsg).Hash), nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := anchorMsg{Hash: r.Bytes()}
			return m, finishMsg(r, "anchor")
		})

	wirecodec.Register(base+4, "unlinksort commitment", []any{commitMsg{}},
		func(dst []byte, v any) ([]byte, error) {
			return appendHashes(dst, v.(commitMsg).Hashes), nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := commitMsg{Hashes: readHashes(r)}
			return m, finishMsg(r, "commitment")
		})

	wirecodec.Register(base+5, "unlinksort final set", []any{finalMsg{}},
		func(dst []byte, v any) ([]byte, error) { return appendCts(dst, v.(finalMsg).Set) },
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			m := finalMsg{Set: readCts(r)}
			return m, finishMsg(r, "final set")
		})
}
