package unlinksort

import (
	"fmt"
	"math/big"
	"testing"
	"time"

	"groupranking/internal/elgamal"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
)

// Malformed-message robustness: honest parties must reject wire garbage
// with descriptive errors, never panic or produce wrong ranks. Each test
// plays one cheating role against honest Party goroutines; fabric
// timeouts turn the resulting stalls into clean errors.

// runWithCheater spawns n−1 honest parties (indices ≠ cheaterIdx) and
// the given cheater, returning every party's error.
func runWithCheater(t *testing.T, cfg Config, vals []int64, cheaterIdx int, cheater func(fab transport.Net) error) []error {
	t.Helper()
	n := len(vals)
	fab, err := transport.New(n, transport.WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, n)
	done := make(chan int, n)
	for me := 0; me < n; me++ {
		me := me
		go func() {
			defer func() { done <- me }()
			if me == cheaterIdx {
				errs[me] = cheater(fab)
				return
			}
			rng := fixedbig.NewDRBG(fmt.Sprintf("mal-honest-%d", me))
			_, errs[me] = Party(cfg, me, fab, big.NewInt(vals[me]), rng)
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return errs
}

func malformedConfig(t *testing.T) Config {
	t.Helper()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("mal-group"))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Group: g, L: 4, SkipProofs: true}
}

func countErrors(errs []error, skip int) int {
	n := 0
	for i, err := range errs {
		if i == skip {
			continue
		}
		if err != nil {
			n++
		}
	}
	return n
}

func TestHonestPartiesRejectGarbageKeyShare(t *testing.T) {
	cfg := malformedConfig(t)
	vals := []int64{3, 7, 11}
	errs := runWithCheater(t, cfg, vals, 2, func(fab transport.Net) error {
		return fab.Broadcast(roundPublishKeys, 2, 4, "not a key")
	})
	if countErrors(errs, 2) == 0 {
		t.Fatal("garbage key share went unrejected")
	}
}

func TestHonestPartiesRejectWrongLengthBitVector(t *testing.T) {
	cfg := malformedConfig(t)
	vals := []int64{3, 7, 11}
	g := cfg.Group
	errs := runWithCheater(t, cfg, vals, 2, func(fab transport.Net) error {
		rng := fixedbig.NewDRBG("mal-bits")
		scheme := elgamal.NewScheme(g)
		key, err := scheme.GenerateKey(rng)
		if err != nil {
			return err
		}
		if err := fab.Broadcast(roundPublishKeys, 2, g.ElementLen(), key.Y); err != nil {
			return err
		}
		if _, err := fab.GatherAll(2); err != nil {
			return err
		}
		// Publish a bit vector that is one ciphertext short.
		short := make([]elgamal.Ciphertext, cfg.L-1)
		for i := range short {
			if short[i], err = scheme.EncryptExp(key.Y, big.NewInt(0), rng); err != nil {
				return err
			}
		}
		return fab.Broadcast(roundPublishBits, 2, 1, bitsMsg{Cts: short})
	})
	if countErrors(errs, 2) == 0 {
		t.Fatal("short bit vector went unrejected")
	}
}

func TestCollectorRejectsWrongSizeTauSet(t *testing.T) {
	cfg := malformedConfig(t)
	vals := []int64{3, 7, 11}
	g := cfg.Group
	errs := runWithCheater(t, cfg, vals, 2, func(fab transport.Net) error {
		rng := fixedbig.NewDRBG("mal-tau")
		scheme := elgamal.NewScheme(g)
		key, err := scheme.GenerateKey(rng)
		if err != nil {
			return err
		}
		if err := fab.Broadcast(roundPublishKeys, 2, g.ElementLen(), key.Y); err != nil {
			return err
		}
		if _, err := fab.GatherAll(2); err != nil {
			return err
		}
		// Publish a well-formed bit vector so the honest parties reach
		// the chain phase...
		bits := make([]elgamal.Ciphertext, cfg.L)
		for i := range bits {
			if bits[i], err = scheme.EncryptExp(key.Y, big.NewInt(0), rng); err != nil {
				return err
			}
		}
		if err := fab.Broadcast(roundPublishBits, 2, 1, bitsMsg{Cts: bits}); err != nil {
			return err
		}
		if _, err := fab.GatherAll(2); err != nil {
			return err
		}
		// ...then hand P_0 a τ set of the wrong size.
		return fab.Send(roundCollectTaus, 2, 0, 1, tauSetMsg{Set: bits[:1]})
	})
	// P_0 must reject; downstream honest parties stall into timeouts.
	if errs[0] == nil {
		t.Fatal("collector accepted a wrong-size τ set")
	}
}
