package unlinksort

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"groupranking/internal/elgamal"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/transport"
)

// candidateTauDiff computes what τ_t ⊖ τ_{t+1} must equal under the
// no-re-randomisation ablation, for candidate victim bits (bt, bt1),
// from the counterpart's public ciphertexts. See the derivation in
// TestMissingReRandomizationLeaksBits.
func candidateTauDiff(scheme *elgamal.Scheme, cts []elgamal.Ciphertext, l, t int, bt, bt1 uint8) elgamal.Ciphertext {
	gamma := func(tt int, b uint8) elgamal.Ciphertext {
		if b == 0 {
			return cts[tt]
		}
		return scheme.AddPlain(scheme.Neg(cts[tt]), big.NewInt(1))
	}
	wt := int64(l - t)
	wt1 := int64(l - (t + 1))
	d := scheme.ScalarMul(gamma(t, bt), big.NewInt(-wt))
	d = scheme.Add(d, scheme.ScalarMul(gamma(t+1, bt1), big.NewInt(wt1+1)))
	return scheme.AddPlain(d, big.NewInt(wt+int64(bt)-wt1-int64(bt1)))
}

func ctEqual(g group.Group, a, b elgamal.Ciphertext) bool {
	return g.Equal(a.C, b.C) && g.Equal(a.C1, b.C1)
}

// TestMissingReRandomizationLeaksBits carries out the linkage attack
// that motivates the re-randomisation in step 7: without it, every τ
// ciphertext is a deterministic affine transform of the counterpart's
// published bit encryptions, and the fresh E(0) hidden in the suffix
// sums cancels in τ_t ⊖ τ_{t+1}:
//
//	τ_t ⊖ τ_{t+1} = (−w_t)·γ_t ⊕ (w_{t+1}+1)·γ_{t+1}
//	               ⊕ plain(w_t + b_t − w_{t+1} − b_{t+1}),
//
// where γ depends only on the victim's bit choice and the public
// ciphertexts. An adversary therefore tests the four candidate bit
// pairs by ciphertext equality and reads off the victim's bits. The
// test asserts the attack recovers every bit under the ablation and
// recovers nothing when re-randomisation is on.
func TestMissingReRandomizationLeaksBits(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("attack-group"))
	if err != nil {
		t.Fatal(err)
	}
	scheme := elgamal.NewScheme(g)
	rng := fixedbig.NewDRBG("attack-rng")
	key, err := scheme.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	joint := key.Y

	const l = 6
	victimBeta := big.NewInt(0b101101)
	victimBits, err := fixedbig.Bits(victimBeta, l)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary (counterpart) publishes her bit encryptions.
	adversaryBits := []uint8{1, 0, 0, 1, 1, 0}
	cts := make([]elgamal.Ciphertext, l)
	for i, b := range adversaryBits {
		if cts[i], err = scheme.EncryptExp(joint, big.NewInt(int64(b)), rng); err != nil {
			t.Fatal(err)
		}
	}
	theirCts := [][]elgamal.Ciphertext{nil, cts} // victim is party 0, adversary party 1

	attack := func(set []elgamal.Ciphertext) (recovered []uint8, matches int) {
		recovered = make([]uint8, l)
		seen := make([]bool, l)
		for t2 := 0; t2+1 < l; t2++ {
			observed := scheme.Sub(set[t2], set[t2+1])
			for _, cand := range [][2]uint8{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
				want := candidateTauDiff(scheme, cts, l, t2, cand[0], cand[1])
				if ctEqual(g, observed, want) {
					matches++
					recovered[t2], recovered[t2+1] = cand[0], cand[1]
					seen[t2], seen[t2+1] = true, true
				}
			}
		}
		for _, s := range seen {
			if !s {
				return nil, matches
			}
		}
		return recovered, matches
	}

	// Ablation: no re-randomisation ⇒ full recovery. Note compareAll
	// indexes τ by bit position from the LSB, matching the candidates.
	unsafeCfg := Config{Group: g, L: l, UnsafeNoReRandomize: true}
	leakySet, err := compareAll(context.Background(), unsafeCfg, scheme, joint, victimBits, theirCts, rng)
	if err != nil {
		t.Fatal(err)
	}
	recovered, matches := attack(leakySet)
	if recovered == nil {
		t.Fatalf("attack failed to recover all bits under the ablation (matches=%d)", matches)
	}
	for i := range victimBits {
		if recovered[i] != victimBits[i] {
			t.Fatalf("attack recovered wrong bits %v, victim has %v", recovered, victimBits)
		}
	}

	// Real protocol: re-randomisation on ⇒ zero matches.
	safeCfg := Config{Group: g, L: l}
	safeSet, err := compareAll(context.Background(), safeCfg, scheme, joint, victimBits, theirCts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, matches := attack(safeSet); matches != 0 {
		t.Fatalf("attack matched %d pairs despite re-randomisation", matches)
	}
}

// TestUnsafeAblationStillRanksCorrectly pins down that the ablation
// changes privacy, not correctness — the benchmark comparing the two
// configurations measures the same computation.
func TestUnsafeAblationStillRanksCorrectly(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("ablation-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 5, UnsafeNoReRandomize: true, SkipProofs: true}
	results, _, err := Run(cfg, bigs(9, 22, 4), "ablation")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks([]int64{9, 22, 4})
	for j, r := range results {
		if r.Rank != want[j] {
			t.Errorf("party %d: rank %d, want %d", j, r.Rank, want[j])
		}
	}
}

// TestZeroPositionsUniformAcrossRuns is the operational check behind
// Definition 7: the chain's random permutations must place an honest
// party's zeros uniformly within its returned set, so the position
// carries no information about which counterpart outranked it.
func TestZeroPositionsUniformAcrossRuns(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("uniform-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 4, SkipProofs: true}
	// Party 0 holds the middle value: exactly one zero among
	// (n−1)·L = 8 positions.
	vals := bigs(7, 2, 13)
	const runs = 48
	counts := make(map[int]int)
	for trial := 0; trial < runs; trial++ {
		results, _, err := Run(cfg, vals, fmt.Sprintf("uniform-%d", trial))
		if err != nil {
			t.Fatal(err)
		}
		r := results[0]
		if r.Rank != 2 || len(r.ZeroPositions) != 1 {
			t.Fatalf("trial %d: rank %d positions %v", trial, r.Rank, r.ZeroPositions)
		}
		counts[r.ZeroPositions[0]]++
	}
	// Loose uniformity: with 48 runs over 8 slots, expect ≈6 per slot;
	// require broad coverage and no dominating slot.
	if len(counts) < 5 {
		t.Errorf("zero landed in only %d distinct positions: %v", len(counts), counts)
	}
	for pos, c := range counts {
		if c > runs/2 {
			t.Errorf("position %d absorbed %d/%d runs; shuffle looks biased: %v", pos, c, runs, counts)
		}
	}
}

// TestProtocolOverRealTCP runs the complete protocol across real TCP
// loopback connections with gob-serialised messages — the deployment
// shape of the paper's "fully distributed framework". Every ciphertext,
// proof and chain vector crosses an actual socket.
func TestProtocolOverRealTCP(t *testing.T) {
	RegisterWire()
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("tcp-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 5}
	vals := []int64{19, 3, 27}
	addrs, err := transport.FreeLoopbackAddrs(len(vals))
	if err != nil {
		t.Fatal(err)
	}
	results := make([]Result, len(vals))
	errs := make([]error, len(vals))
	var wg sync.WaitGroup
	for me := range vals {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			fab, err := transport.NewTCPFabric(addrs, me, 20*time.Second)
			if err != nil {
				errs[me] = err
				return
			}
			defer fab.Close()
			rng := fixedbig.NewDRBG(fmt.Sprintf("tcp-party-%d", me))
			results[me], errs[me] = Party(cfg, me, fab, big.NewInt(vals[me]), rng)
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	want := wantRanks(vals)
	for me, r := range results {
		if r.Rank != want[me] {
			t.Errorf("party %d: rank %d over TCP, want %d", me, r.Rank, want[me])
		}
	}
}

// TestProveDecryptionHonestRun: the integrity-extended chain must
// produce the same ranks as the plain protocol.
func TestProveDecryptionHonestRun(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("pd-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 5, ProveDecryption: true}
	vals := []int64{21, 4, 30, 17}
	results, fab, err := Run(cfg, bigs(vals...), "pd-honest")
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks(vals)
	for j, r := range results {
		if r.Rank != want[j] {
			t.Errorf("party %d: rank %d, want %d", j, r.Rank, want[j])
		}
	}
	// The evidence inflates traffic: compare with a plain run.
	_, fabPlain, err := Run(Config{Group: g, L: 5}, bigs(vals...), "pd-honest")
	if err != nil {
		t.Fatal(err)
	}
	if fab.Stats().TotalBytes() <= fabPlain.Stats().TotalBytes() {
		t.Error("integrity evidence should cost extra bytes")
	}
}

// TestProveDecryptionTwoParties exercises the smallest chain.
func TestProveDecryptionTwoParties(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("pd2-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 4, ProveDecryption: true}
	results, _, err := Run(cfg, bigs(9, 2), "pd-two")
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Rank != 1 || results[1].Rank != 2 {
		t.Errorf("ranks %d, %d", results[0].Rank, results[1].Rank)
	}
}

// TestProveDecryptionCatchesWrongKeyStrip: a chain hop that strips with
// a key other than its registered share is rejected by its successor.
// The cheater follows the entire protocol except that it swaps in a
// fresh private key for the chain phase.
func TestProveDecryptionCatchesWrongKeyStrip(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("pd-cheat-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 4, ProveDecryption: true, SkipProofs: true}
	vals := bigs(11, 6, 14)
	n := len(vals)
	fab, err := transport.New(n, transport.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	scheme := elgamal.NewScheme(g)
	errCh := make(chan error, n)
	for me := 0; me < n; me++ {
		me := me
		go func() {
			rng := fixedbig.NewDRBG(fmt.Sprintf("pd-cheat-%d", me))
			if me != 1 {
				_, err := Party(cfg, me, fab, vals[me], rng)
				errCh <- err
				return
			}
			// The cheater: honest key phase and comparison circuit, but
			// the chain uses a swapped private key, so its strip proofs
			// cannot verify against its registered share.
			key, joint, ys, err := keyPhase(context.Background(), cfg, scheme, me, fab, rng)
			if err != nil {
				errCh <- err
				return
			}
			myBits, theirCts, err := publishBits(context.Background(), cfg, scheme, me, fab, joint, vals[me], rng)
			if err != nil {
				errCh <- err
				return
			}
			mySet, err := compareAll(context.Background(), cfg, scheme, joint, myBits, theirCts, rng)
			if err != nil {
				errCh <- err
				return
			}
			wrongX, err := g.RandomScalar(rng)
			if err != nil {
				errCh <- err
				return
			}
			forged := &elgamal.KeyPair{X: wrongX, Y: key.Y}
			_, err = chainPhase(context.Background(), cfg, scheme, me, fab, forged, ys, mySet, rng)
			errCh <- err
			return
		}()
	}
	var rejections int
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			rejections++
		}
	}
	if rejections == 0 {
		t.Fatal("wrong-key strip went undetected")
	}
}

// TestRandomValuesQuick is the property-based check on the sorting
// protocol: for random triples, the computed ranks equal the plaintext
// descending ranks with the paper's tie rule.
func TestRandomValuesQuick(t *testing.T) {
	g, err := group.GenerateDLGroup(128, fixedbig.NewDRBG("quick-group"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Group: g, L: 6, SkipProofs: true}
	trial := 0
	f := func(a, b, c uint8) bool {
		trial++
		vals := []int64{int64(a % 64), int64(b % 64), int64(c % 64)}
		results, _, err := Run(cfg, bigs(vals...), fmt.Sprintf("quick-%d", trial))
		if err != nil {
			return false
		}
		want := wantRanks(vals)
		for j, r := range results {
			if r.Rank != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
