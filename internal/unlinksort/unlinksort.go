// Package unlinksort implements the paper's central contribution: the
// identity-unlinkable multiparty sorting protocol (Fig. 1, steps 5–9,
// "unlinkable gain comparison" and ranking extraction). Each of n parties
// holds one l-bit unsigned value β_j; at the end each party learns only
// the rank of its own value (1 = largest), and — provided at least two
// parties are honest — no coalition of up to n−2 colluders can link an
// inferred value interval to its owner's identity.
//
// The construction follows the paper exactly:
//
//  1. Every party generates an ElGamal key share and proves knowledge of
//     it to all others with the multi-verifier Schnorr proof.
//  2. Every party publishes the bitwise exponent-ElGamal encryption of
//     its value under the joint key y = Π y_j.
//  3. Every party homomorphically evaluates the comparison circuit
//     γ, ω, τ of step 7 against every other party's ciphertext using its
//     own bits in the clear: the resulting τ vector for pair (j, i)
//     contains a zero iff β_j < β_i.
//  4. The τ ciphertexts travel a decrypt-and-shuffle chain (step 8):
//     each party strips its own key layer, exponent-blinds every
//     ciphertext so non-zero plaintexts become uniformly random, and
//     randomly permutes every set it does not own.
//  5. Each owner decrypts its own returned set with its remaining key
//     layer and counts zeros d; its rank is d+1.
//
// The package runs one party per goroutine over a transport.Fabric, so
// byte and round accounting reflect the real message complexity
// (O(l·n²) ciphertexts per party, O(n) rounds).
package unlinksort

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"groupranking/internal/elgamal"
	"groupranking/internal/fixedbig"
	"groupranking/internal/group"
	"groupranking/internal/kernel"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
	"groupranking/internal/zkp"
)

// Span names of this protocol's phases, in execution order. The
// observability guard test asserts every one of them appears in an
// emitted trace (PhaseKeyProof only when proofs are enabled), so no
// phase can silently fall out of observation.
const (
	PhaseKeygen      = "keygen"
	PhaseKeyProof    = "key-proof"
	PhasePublishBits = "publish-bits"
	PhaseCompare     = "compare"
	PhaseChain       = "chain"
	PhaseFinalSet    = "final-set"
)

// Phases lists the span names above for the guard test.
var Phases = []string{PhaseKeygen, PhaseKeyProof, PhasePublishBits, PhaseCompare, PhaseChain, PhaseFinalSet}

// Config fixes the protocol parameters shared by all parties.
type Config struct {
	// Group is the DDH-hard group for the ElGamal layer.
	Group group.Group
	// L is the bit width of the compared values.
	L int
	// SkipProofs disables the key-knowledge proofs (benchmarks that
	// isolate comparison cost use it; the framework never does).
	SkipProofs bool
	// UnsafeNoReRandomize skips the re-randomisation of the τ
	// ciphertexts in step 7. It exists ONLY for the ablation benchmark
	// and the regression test that demonstrates the linkage attack this
	// re-randomisation prevents (an adversary can otherwise recover an
	// honest party's bits by comparing ciphertext components; see
	// TestMissingReRandomizationLeaksBits). Never enable it in a
	// deployment.
	UnsafeNoReRandomize bool
	// ProveDecryption makes every chain processor attach Chaum–Pedersen
	// proofs that each key layer it strips uses its registered key
	// share, verified by the next hop. This is an extension beyond the
	// paper's honest-but-curious model: it catches wrong-key partial
	// decryption (which would silently corrupt ranks) but not
	// substitution during blinding or shuffling — full malicious
	// security would additionally need verifiable-shuffle proofs, which
	// the paper leaves out of scope.
	ProveDecryption bool
	// Workers bounds the goroutines each party fans its crypto kernels
	// out on (bitwise encryption, the per-peer comparison circuit, the
	// chain's strip-blind-shuffle, the final zero scan). 0 means
	// runtime.NumCPU, 1 forces the serial reference path. Results are
	// bit-identical at every worker count: all randomness is pre-drawn
	// serially in the reference draw order, workers get pure arithmetic.
	Workers int
	// Byz makes one party deviate from the protocol (see ByzBehavior).
	// It exists ONLY for the Byzantine chaos suite and robustness tests,
	// which assert that every deviation ends in a blame certificate
	// accusing the deviating party. Never set in a deployment.
	Byz *Byz
}

func (c Config) validate() error {
	if c.Group == nil {
		return fmt.Errorf("unlinksort: missing group")
	}
	if c.L <= 0 {
		return fmt.Errorf("unlinksort: bit width must be positive, got %d", c.L)
	}
	return nil
}

// Result is one party's protocol output.
type Result struct {
	// Rank is the party's 1-based rank, 1 = largest value. Ties share
	// the same rank (the paper's tie rule).
	Rank int
	// Zeros is the number of zero plaintexts found, i.e. the number of
	// parties with a strictly larger value; Rank = Zeros + 1.
	Zeros int
	// ZeroPositions are the indices within the returned (shuffled) set
	// where the zeros appeared. The owner legitimately sees them; the
	// unlinkability tests check they are uniformly distributed across
	// reruns, which is what the chain's permutations guarantee.
	ZeroPositions []int
}

// Protocol round tags for the transport trace (netsim replay groups
// messages by these).
const (
	roundPublishKeys = iota + 1
	roundProofCommit
	roundProofChallenge
	roundProofResponse
	roundPublishBits
	roundCollectTaus
	roundChainBase // chain hop j uses roundChainBase + j
)

// Payload types exchanged over the fabric. Fields are exported so the
// TCP transport can gob-encode them; the types themselves stay
// package-private and are registered by RegisterWire.
type (
	bitsMsg struct {
		Cts []elgamal.Ciphertext
	}
	tauSetMsg struct {
		Set []elgamal.Ciphertext // (n−1)·L ciphertexts owned by the sender
	}
	vectorMsg struct {
		V [][]elgamal.Ciphertext // indexed by owner
		// The fields below are present only under Config.ProveDecryption.
		// Input is the vector the sender received (bound to the
		// hop-before-last's broadcast commitment, so the sender cannot
		// fabricate it); Stripped is Input with the sender's key layer
		// removed, in Input order (already known to the previous hop, so
		// no permutation information leaks); Proofs[owner][i] is the
		// Chaum–Pedersen transcript tying Input[owner][i] to
		// Stripped[owner][i] under the sender's registered key share.
		Input    [][]elgamal.Ciphertext
		Stripped [][]elgamal.Ciphertext
		Proofs   [][]zkp.EqualityTranscript
	}
	// anchorMsg commits every owner's original τ set before the chain
	// starts (ProveDecryption mode).
	anchorMsg struct {
		Hash []byte
	}
	// commitMsg commits a chain hop's output vector, one hash per owner
	// set (ProveDecryption mode).
	commitMsg struct {
		Hashes [][]byte
	}
	finalMsg struct {
		Set []elgamal.Ciphertext
	}
)

var _wireOnce sync.Once

// RegisterWire registers every type this protocol sends over a
// serialising transport (transport.TCPFabric). Safe to call repeatedly;
// in-memory fabrics do not need it.
func RegisterWire() {
	_wireOnce.Do(func() {
		group.RegisterGob()
		gob.Register(zkp.EqualityTranscript{})
		gob.Register(bitsMsg{})
		gob.Register(tauSetMsg{})
		gob.Register(vectorMsg{})
		gob.Register(finalMsg{})
		gob.Register(anchorMsg{})
		gob.Register(commitMsg{})
		gob.Register(new(big.Int))
		gob.Register([]*big.Int{})
	})
}

// Party runs one party's side of the protocol over the fabric: me is the
// party index in [0, n), beta the party's l-bit value. Every party must
// call Party concurrently with the same Config.
func Party(cfg Config, me int, fab transport.Net, beta *big.Int, rng io.Reader) (Result, error) {
	return PartyCtx(context.Background(), cfg, me, fab, beta, rng)
}

// PartyCtx is Party with cancellation: every blocking receive honours
// ctx, so when a sibling party fails and the runner cancels, this party
// unblocks promptly with a typed *AbortError instead of hanging on a
// channel that will never deliver.
func PartyCtx(ctx context.Context, cfg Config, me int, fab transport.Net, beta *big.Int, rng io.Reader) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := fab.N()
	if n < 2 {
		return Result{}, fmt.Errorf("unlinksort: need at least two parties, got %d", n)
	}
	if beta.Sign() < 0 || beta.BitLen() > cfg.L {
		return Result{}, fmt.Errorf("unlinksort: value does not fit in %d bits", cfg.L)
	}
	// Observability: the party handle (if any) rides in on the context.
	// Wrapping the group charges every exponentiation below — including
	// those inside elgamal and zkp — to this party's current span, and
	// wrapping the net charges its sends; both wrappers are nil no-ops
	// when observability is off.
	obs := obsv.PartyFrom(ctx)
	cfg.Group = obsv.Group(cfg.Group, obs)
	fab = obsv.ObservedNet(fab, obs)
	defer obs.End()
	scheme := elgamal.NewScheme(cfg.Group)

	// Step 5: key generation and knowledge proofs.
	obs.Begin(PhaseKeygen)
	key, joint, ys, err := keyPhase(ctx, cfg, scheme, me, fab, rng)
	if err != nil {
		return Result{}, err
	}
	// The joint key is now fixed for the rest of the run and masks every
	// ciphertext this party will produce: switch to a scheme with a
	// fixed-base table for it. (The generator's table is cached inside
	// the group itself.)
	scheme = scheme.WithPrecomp(joint)

	// Step 6: publish the bitwise encryption of beta.
	obs.Begin(PhasePublishBits)
	myBits, theirCts, err := publishBits(ctx, cfg, scheme, me, fab, joint, beta, rng)
	if err != nil {
		return Result{}, err
	}

	// Step 7: homomorphic comparison circuit against every other party.
	obs.Begin(PhaseCompare)
	mySet, err := compareAll(ctx, cfg, scheme, joint, myBits, theirCts, rng)
	if err != nil {
		return Result{}, err
	}

	// Step 8: decrypt-and-shuffle chain.
	obs.Begin(PhaseChain)
	finalSet, err := chainPhase(ctx, cfg, scheme, me, fab, key, ys, mySet, rng)
	if err != nil {
		return Result{}, err
	}

	// Step 9: strip the last layer and count zeros.
	isZero := make([]bool, len(finalSet))
	if err := kernel.Map(ctx, cfg.Workers, len(finalSet), func(idx int) error {
		isZero[idx] = scheme.IsZero(key.X, finalSet[idx])
		return nil
	}); err != nil {
		return Result{}, transport.AnnotatePhase(err, PhaseFinalSet)
	}
	var positions []int
	for idx, z := range isZero {
		if z {
			positions = append(positions, idx)
		}
	}
	zeros := len(positions)
	return Result{Rank: zeros + 1, Zeros: zeros, ZeroPositions: positions}, nil
}

// keyPhase publishes key shares, runs the n-verifier knowledge proofs,
// and returns this party's key pair, the joint public key and every
// party's key share (needed to verify chain decryption proofs).
func keyPhase(ctx context.Context, cfg Config, scheme *elgamal.Scheme, me int, fab transport.Net, rng io.Reader) (*elgamal.KeyPair, group.Element, []group.Element, error) {
	g := cfg.Group
	n := fab.N()
	key, err := scheme.GenerateKey(rng)
	if err != nil {
		return nil, nil, nil, err
	}
	// Key shares go out as a consistent broadcast: on real fabrics the
	// echo sub-round catches an initiator announcing different shares to
	// different parties (which would give each victim a different joint
	// key); in-process fabrics skip the echo entirely.
	received, err := transport.EchoBroadcastCtx(ctx, fab, me, roundPublishKeys, g.ElementLen(), key.Y)
	if err != nil {
		return nil, nil, nil, transport.AnnotatePhase(err, PhaseKeygen)
	}
	ys := make([]group.Element, n)
	for j := 0; j < n; j++ {
		if j == me {
			ys[j] = key.Y
			continue
		}
		y, ok := received[j].(group.Element)
		if !ok {
			return nil, nil, nil, malformedAbort(j, me, roundPublishKeys, PhaseKeygen,
				fmt.Sprintf("a malformed key share (%T)", received[j]), "group element")
		}
		// Gob decoding reconstructs raw coordinates without a group
		// context; membership MUST be checked here, or an off-curve key
		// share mounts an invalid-curve attack through the joint key.
		if err := group.Validate(g, y); err != nil {
			return nil, nil, nil, transport.Abort(j, roundPublishKeys, PhaseKeygen,
				fmt.Errorf("unlinksort: party %d sent an invalid key share: %w", j, err)).
				WithCert(certInvalidElement(g, j, me, roundPublishKeys, PhaseKeygen, y))
		}
		ys[j] = y
	}

	if !cfg.SkipProofs {
		obsv.PartyOf(cfg.Group).Begin(PhaseKeyProof)
		if err := proofPhase(ctx, cfg, me, fab, key, ys, rng); err != nil {
			return nil, nil, nil, err
		}
	}
	return key, scheme.JointPublicKey(ys), ys, nil
}

// proofPhase interleaves all n multi-verifier Schnorr proofs: every
// party is simultaneously the prover of its own key share and a verifier
// of everyone else's, in three broadcast rounds.
func proofPhase(ctx context.Context, cfg Config, me int, fab transport.Net, key *elgamal.KeyPair, ys []group.Element, rng io.Reader) error {
	g := cfg.Group
	n := fab.N()
	scalarBytes := (g.Order().BitLen() + 7) / 8

	// All three proof rounds are consistent broadcasts: the proof is only
	// sound against all verifiers at once if every verifier saw the same
	// commitment, challenge vector and response.
	prover := zkp.NewProver(g, key.X)
	h, err := prover.Commit(rng)
	if err != nil {
		return err
	}
	commits, err := transport.EchoBroadcastCtx(ctx, fab, me, roundProofCommit, g.ElementLen(), h)
	if err != nil {
		return transport.AnnotatePhase(err, PhaseKeyProof)
	}

	// One challenge share per foreign prover, broadcast as a slice
	// indexed by prover. The self slot is never read (no party
	// challenges itself); an explicit zero keeps the wire value free of
	// nil pointers (the echo digest would normalise a nil to the same
	// zero, but a receiver decodes an allocated zero anyway).
	myChallenges := make([]*big.Int, n)
	for j := 0; j < n; j++ {
		if j == me {
			myChallenges[j] = big.NewInt(0)
			continue
		}
		if myChallenges[j], err = zkp.NewChallenge(g, rng); err != nil {
			return err
		}
	}
	challengeMsgs, err := transport.EchoBroadcastCtx(ctx, fab, me, roundProofChallenge, (n-1)*scalarBytes, myChallenges)
	if err != nil {
		return transport.AnnotatePhase(err, PhaseKeyProof)
	}
	// Challenges addressed to me, one from each verifier.
	toMe := make([]*big.Int, 0, n-1)
	for j := 0; j < n; j++ {
		if j == me {
			continue
		}
		cs, ok := challengeMsgs[j].([]*big.Int)
		if !ok || len(cs) != n || cs[me] == nil {
			return malformedAbort(j, me, roundProofChallenge, PhaseKeyProof,
				"a malformed challenge vector", fmt.Sprintf("%d challenge scalars", n-1))
		}
		toMe = append(toMe, cs[me])
	}
	z, err := prover.Respond(toMe)
	if err != nil {
		return err
	}
	if cfg.byzFor(me) == ByzBadKeyProof {
		// Covert deviation: the perturbed response fails verification at
		// every honest verifier, which must pin the blame on this party.
		z = new(big.Int).Add(z, big.NewInt(1))
	}
	responses, err := transport.EchoBroadcastCtx(ctx, fab, me, roundProofResponse, scalarBytes, z)
	if err != nil {
		return transport.AnnotatePhase(err, PhaseKeyProof)
	}

	// Verify every foreign proof against the challenge shares all
	// verifiers published.
	for j := 0; j < n; j++ {
		if j == me {
			continue
		}
		hj, ok := commits[j].(group.Element)
		if !ok {
			return malformedAbort(j, me, roundProofCommit, PhaseKeyProof,
				fmt.Sprintf("a malformed proof commitment (%T)", commits[j]), "group element")
		}
		if err := group.Validate(g, hj); err != nil {
			return transport.Abort(j, roundProofCommit, PhaseKeyProof,
				fmt.Errorf("unlinksort: party %d sent an invalid proof commitment: %w", j, err)).
				WithCert(certInvalidElement(g, j, me, roundProofCommit, PhaseKeyProof, hj))
		}
		zj, ok := responses[j].(*big.Int)
		if !ok {
			return malformedAbort(j, me, roundProofResponse, PhaseKeyProof,
				fmt.Sprintf("a malformed proof response (%T)", responses[j]), "scalar")
		}
		var chalForJ []*big.Int
		for v := 0; v < n; v++ {
			if v == j {
				continue
			}
			if v == me {
				chalForJ = append(chalForJ, myChallenges[j])
				continue
			}
			cs, ok := challengeMsgs[v].([]*big.Int)
			if !ok || len(cs) != n || cs[j] == nil {
				return malformedAbort(v, me, roundProofChallenge, PhaseKeyProof,
					"a malformed challenge vector", fmt.Sprintf("%d challenge scalars", n-1))
			}
			chalForJ = append(chalForJ, cs[j])
		}
		if !zkp.Verify(cfg.Group, ys[j], hj, chalForJ, zj) {
			return transport.Abort(j, roundProofResponse, PhaseKeyProof,
				fmt.Errorf("unlinksort: party %d failed the key-knowledge proof", j)).
				WithCert(certKeyProof(g, j, me, ys[j], hj, chalForJ, zj))
		}
	}
	return nil
}

// publishBits broadcasts E(β)_B and gathers everyone else's, returning
// this party's plaintext bits and the foreign ciphertext vectors indexed
// by party.
func publishBits(ctx context.Context, cfg Config, scheme *elgamal.Scheme, me int, fab transport.Net, joint group.Element, beta *big.Int, rng io.Reader) ([]uint8, [][]elgamal.Ciphertext, error) {
	n := fab.N()
	bits, err := fixedbig.Bits(beta, cfg.L)
	if err != nil {
		return nil, nil, err
	}
	// Pre-draw the per-bit encryption randomness serially (reference
	// draw order), then fan the pure encryption arithmetic out.
	rs := make([]*big.Int, cfg.L)
	for t := range rs {
		if rs[t], err = scheme.Group().RandomScalar(rng); err != nil {
			return nil, nil, err
		}
	}
	mine := make([]elgamal.Ciphertext, cfg.L)
	if err := kernel.Map(ctx, cfg.Workers, cfg.L, func(t int) error {
		mine[t] = scheme.EncryptExpR(joint, big.NewInt(int64(bits[t])), rs[t])
		return nil
	}); err != nil {
		return nil, nil, transport.AnnotatePhase(err, "publish-bits")
	}
	// The bit vectors feed every party's comparison circuit: a consistent
	// broadcast stops a cheater from giving different parties different
	// encryptions of its value (which would let it occupy a different
	// rank in each victim's view).
	gathered, err := transport.EchoBroadcastCtx(ctx, fab, me, roundPublishBits, cfg.L*scheme.EncodedLen(), bitsMsg{Cts: mine})
	if err != nil {
		return nil, nil, transport.AnnotatePhase(err, PhasePublishBits)
	}
	theirs := make([][]elgamal.Ciphertext, n)
	for j := 0; j < n; j++ {
		if j == me {
			continue
		}
		msg, ok := gathered[j].(bitsMsg)
		if !ok || len(msg.Cts) != cfg.L {
			return nil, nil, malformedAbort(j, me, roundPublishBits, PhasePublishBits,
				"a malformed bit vector", fmt.Sprintf("%d ciphertexts", cfg.L))
		}
		if err := validateSet(cfg.Group, j, msg.Cts); err != nil {
			return nil, nil, err
		}
		theirs[j] = msg.Cts
	}
	return bits, theirs, nil
}

// validateSet checks every component of a received ciphertext set for
// group membership (see group.Validate); from names the sender for the
// typed abort.
func validateSet(g group.Group, from int, set []elgamal.Ciphertext) error {
	for _, ct := range set {
		if err := group.Validate(g, ct.C); err != nil {
			return transport.EnsureAbort(
				fmt.Errorf("unlinksort: party %d sent an invalid ciphertext: %w", from, err), from, "unlinksort")
		}
		if err := group.Validate(g, ct.C1); err != nil {
			return transport.EnsureAbort(
				fmt.Errorf("unlinksort: party %d sent an invalid ciphertext: %w", from, err), from, "unlinksort")
		}
	}
	return nil
}

// compareAll evaluates the step-7 circuit of Fig. 1 against every other
// party and returns this party's flattened τ set ((n−1)·L ciphertexts).
// For each counterpart i and bit position t (1-based from the LSB):
//
//	γ^t = β_j^t ⊕ β_i^t            (affine in the ciphertext, β_j public to j)
//	ω^t = (l−t+1)·(1−γ^t) + Σ_{v>t} γ^v
//	τ^t = ω^t + β_j^t
//
// τ^t = 0 exactly at the most significant differing bit when that bit is
// 1 in β_i and 0 in β_j, i.e. the set contains a zero iff β_j < β_i.
func compareAll(ctx context.Context, cfg Config, scheme *elgamal.Scheme, joint group.Element, myBits []uint8, theirCts [][]elgamal.Ciphertext, rng io.Reader) ([]elgamal.Ciphertext, error) {
	l := cfg.L
	// Pre-draw each peer circuit's randomness serially in the reference
	// order — one scalar for the suffix-sum zero encryption, then one
	// re-randomiser per bit — so the fan-out below is pure arithmetic
	// and the output is identical at every worker count.
	type peerWork struct {
		cts  []elgamal.Ciphertext
		zero *big.Int
		rr   []*big.Int
	}
	var peers []peerWork
	for _, cts := range theirCts {
		if cts == nil {
			continue // self slot
		}
		w := peerWork{cts: cts}
		var err error
		if w.zero, err = scheme.Group().RandomScalar(rng); err != nil {
			return nil, err
		}
		if !cfg.UnsafeNoReRandomize {
			w.rr = make([]*big.Int, l)
			for t := range w.rr {
				if w.rr[t], err = scheme.Group().RandomScalar(rng); err != nil {
					return nil, err
				}
			}
		}
		peers = append(peers, w)
	}

	outs := make([][]elgamal.Ciphertext, len(peers))
	if err := kernel.Map(ctx, cfg.Workers, len(peers), func(pi int) error {
		w := peers[pi]
		// E(γ^t): if my bit is 0, γ = β_i^t; if 1, γ = 1 − β_i^t.
		gammas := make([]elgamal.Ciphertext, l)
		for t := 0; t < l; t++ {
			if myBits[t] == 0 {
				gammas[t] = w.cts[t]
			} else {
				gammas[t] = scheme.AddPlain(scheme.Neg(w.cts[t]), big.NewInt(1))
			}
		}
		// Suffix sums S_t = Σ_{v>t} γ^v (0-based index t ⇒ bits above t).
		suffix := make([]elgamal.Ciphertext, l+1)
		suffix[l] = scheme.EncryptExpR(joint, big.NewInt(0), w.zero)
		for t := l - 1; t >= 0; t-- {
			suffix[t] = scheme.Add(suffix[t+1], gammas[t])
		}
		taus := make([]elgamal.Ciphertext, l)
		for t := 0; t < l; t++ {
			// Positions are 1-based in the paper; weight = l − t with
			// 0-based t counting from the LSB... the paper's (l−t+1) with
			// t ∈ [1, l] equals our (l−t) + 1 with t ∈ [0, l−1].
			weight := big.NewInt(int64(l - t))
			// ω = weight·(1−γ) + S_t  =  weight − weight·γ + S_t.
			om := scheme.ScalarMul(gammas[t], new(big.Int).Neg(weight))
			om = scheme.Add(om, suffix[t+1])
			om = scheme.AddPlain(om, weight)
			// τ = ω + β_j^t.
			tau := scheme.AddPlain(om, big.NewInt(int64(myBits[t])))
			// Re-randomise so the published τ is not a deterministic
			// function of the published E(β_i) bits (which would leak
			// β_j's bits by ciphertext comparison; the regression test
			// TestMissingReRandomizationLeaksBits carries out that
			// attack against the UnsafeNoReRandomize ablation).
			if !cfg.UnsafeNoReRandomize {
				tau = scheme.ReRandomizeR(joint, tau, w.rr[t])
			}
			taus[t] = tau
		}
		outs[pi] = taus
		return nil
	}); err != nil {
		return nil, transport.AnnotatePhase(err, PhaseCompare)
	}

	set := make([]elgamal.Ciphertext, 0, len(peers)*l)
	for _, taus := range outs {
		set = append(set, taus...)
	}
	return set, nil
}

// chainPhase implements step 8: all sets travel P_0 → P_1 → … → P_{n−1};
// each party strips its key layer from, exponent-blinds, and permutes
// every set it does not own; the last party returns each set to its
// owner.
//
// Under Config.ProveDecryption the chain additionally carries integrity
// evidence for the strip step: owners broadcast hash anchors of their
// original sets, every hop broadcasts a hash commitment of its output
// vector, and every hop's message includes the vector it received (bound
// to the previous commitment) together with Chaum–Pedersen proofs that
// each key layer was stripped with the registered share. Each hop
// verifies its predecessor before processing.
func chainPhase(ctx context.Context, cfg Config, scheme *elgamal.Scheme, me int, fab transport.Net, key *elgamal.KeyPair, ys []group.Element, mySet []elgamal.Ciphertext, rng io.Reader) ([]elgamal.Ciphertext, error) {
	n := fab.N()
	ctBytes := scheme.EncodedLen()

	// Owners anchor their sets (ProveDecryption) and hand them to P_0.
	// The anchor exchange is a consistent broadcast — the anchors are the
	// root of the whole chain-integrity argument, so a cheater must not
	// be able to show different anchors to different verifiers — and it
	// completes in full (data plus echo sub-round) before any τ set goes
	// out, preserving per-channel round order.
	anchors := make([][]byte, n)
	if cfg.ProveDecryption {
		all, err := transport.EchoBroadcastCtx(ctx, fab, me, roundCollectTaus, 32, anchorMsg{Hash: hashSet(scheme, mySet)})
		if err != nil {
			return nil, transport.AnnotatePhase(err, "collect-taus")
		}
		for j := 0; j < n; j++ {
			if j == me {
				anchors[me] = hashSet(scheme, mySet)
				continue
			}
			msg, ok := all[j].(anchorMsg)
			if !ok || len(msg.Hash) != sha256.Size {
				return nil, malformedAbort(j, me, roundCollectTaus, "collect-taus",
					"a malformed set anchor", "32-byte digest")
			}
			anchors[j] = msg.Hash
		}
	}
	var v [][]elgamal.Ciphertext
	if me == 0 {
		v = make([][]elgamal.Ciphertext, n)
		v[0] = mySet
		for j := 1; j < n; j++ {
			payload, err := fab.RecvCtx(ctx, 0, j, roundCollectTaus)
			if err != nil {
				return nil, transport.AnnotatePhase(err, "collect-taus")
			}
			msg, ok := payload.(tauSetMsg)
			if !ok || len(msg.Set) != (n-1)*cfg.L {
				return nil, malformedAbort(j, 0, roundCollectTaus, "collect-taus",
					"a malformed τ set", fmt.Sprintf("%d ciphertexts", (n-1)*cfg.L))
			}
			if cfg.ProveDecryption && !bytes.Equal(hashSet(scheme, msg.Set), anchors[j]) {
				return nil, transport.Abort(j, roundCollectTaus, "collect-taus",
					fmt.Errorf("unlinksort: party %d's τ set does not match its anchor", j)).
					WithCert(certSetAnchor(j, 0, roundCollectTaus,
						fmt.Sprintf("party %d's τ set does not hash to the anchor it broadcast", j),
						anchors[j], encodeSetBytes(scheme, msg.Set)))
			}
			if err := validateSet(cfg.Group, j, msg.Set); err != nil {
				return nil, err
			}
			v[j] = msg.Set
		}
	} else {
		if err := fab.Send(roundCollectTaus, me, 0, len(mySet)*ctBytes, tauSetMsg{Set: mySet}); err != nil {
			return nil, transport.AnnotatePhase(err, "collect-taus")
		}
	}

	// The chain. Party me receives V from me−1 (except P_0 who starts),
	// verifies its predecessor in ProveDecryption mode, processes every
	// set it does not own, and forwards.
	if me > 0 {
		var prevCommit [][]byte
		if cfg.ProveDecryption {
			// The binding for the predecessor's claimed input: owners'
			// anchors at the first hop, the hop-before-last's broadcast
			// commitment afterwards.
			if me == 1 {
				prevCommit = anchors
			} else {
				payload, err := fab.RecvCtx(ctx, me, me-2, roundChainBase+me-2)
				if err != nil {
					return nil, transport.AnnotatePhase(err, "chain")
				}
				msg, ok := payload.(commitMsg)
				if !ok || len(msg.Hashes) != n {
					return nil, malformedAbort(me-2, me, roundChainBase+me-2, PhaseChain,
						"a malformed output commitment", fmt.Sprintf("%d digests", n))
				}
				prevCommit = msg.Hashes
			}
			// The predecessor's own commitment precedes its vector on
			// the same channel.
			payload, err := fab.RecvCtx(ctx, me, me-1, roundChainBase+me-1)
			if err != nil {
				return nil, transport.AnnotatePhase(err, "chain")
			}
			if msg, ok := payload.(commitMsg); !ok || len(msg.Hashes) != n {
				return nil, malformedAbort(me-1, me, roundChainBase+me-1, PhaseChain,
					"a malformed output commitment", fmt.Sprintf("%d digests", n))
			}
		}
		payload, err := fab.RecvCtx(ctx, me, me-1, roundChainBase+me-1)
		if err != nil {
			return nil, transport.AnnotatePhase(err, "chain")
		}
		msg, ok := payload.(vectorMsg)
		if !ok || len(msg.V) != n {
			return nil, malformedAbort(me-1, me, roundChainBase+me-1, PhaseChain,
				fmt.Sprintf("a malformed chain vector (%T)", payload), fmt.Sprintf("vector of %d owner sets", n))
		}
		for owner := range msg.V {
			if err := validateSet(cfg.Group, me-1, msg.V[owner]); err != nil {
				return nil, err
			}
		}
		if cfg.ProveDecryption {
			for owner := range msg.Stripped {
				if err := validateSet(cfg.Group, me-1, msg.Stripped[owner]); err != nil {
					return nil, err
				}
			}
			if err := verifyChainHop(cfg, scheme, me, me-1, roundChainBase+me-1, ys[me-1], prevCommit, msg); err != nil {
				return nil, err
			}
		}
		v = msg.V
	}

	out := vectorMsg{V: make([][]elgamal.Ciphertext, n)}
	if cfg.ProveDecryption {
		out.Input = v
		out.Stripped = make([][]elgamal.Ciphertext, n)
		out.Proofs = make([][]zkp.EqualityTranscript, n)
	}
	stripKey := key
	if cfg.byzFor(me) == ByzWrongDecryption {
		// Covert deviation: strip with a key other than the registered
		// share — the silent rank corruption ProveDecryption exists to
		// catch. The transcripts are internally consistent for the wrong
		// key, so only verification against the REGISTERED share (by the
		// next hop) exposes it.
		stripKey = &elgamal.KeyPair{X: new(big.Int).Add(key.X, big.NewInt(1)), Y: key.Y}
	}
	for owner := 0; owner < n; owner++ {
		if owner == me {
			out.V[owner] = v[owner]
			continue
		}
		if cfg.ProveDecryption {
			stripped, proofs, err := stripWithProofs(ctx, cfg, scheme, stripKey, v[owner], rng)
			if err != nil {
				return nil, err
			}
			out.Stripped[owner] = stripped
			out.Proofs[owner] = proofs
			if out.V[owner], err = blindAndShuffle(ctx, cfg, scheme, stripped, rng); err != nil {
				return nil, err
			}
			continue
		}
		processed, err := processSet(ctx, cfg, scheme, stripKey.X, v[owner], rng)
		if err != nil {
			return nil, err
		}
		out.V[owner] = processed
	}
	if cfg.byzFor(me) == ByzTamperOwnSet && len(out.V[me]) > 0 {
		// Covert deviation: re-blind one ciphertext of the set this hop
		// must pass through untouched. The copy matters — in-process runs
		// share set memory across goroutines, and the deviation must
		// corrupt only this party's outgoing message, not the honest
		// copies upstream.
		tampered := append([]elgamal.Ciphertext(nil), out.V[me]...)
		tampered[0] = scheme.ExponentBlindR(tampered[0], big.NewInt(3))
		out.V[me] = tampered
	}

	vectorBytes := n * (n - 1) * cfg.L * ctBytes
	if cfg.ProveDecryption {
		// Input + Stripped + 4 proof values per ciphertext ≈ 5× payload.
		vectorBytes *= 5
		hashes := make([][]byte, n)
		for owner := range out.V {
			hashes[owner] = hashSet(scheme, out.V[owner])
		}
		if err := fab.Broadcast(roundChainBase+me, me, n*32, commitMsg{Hashes: hashes}); err != nil {
			return nil, transport.AnnotatePhase(err, "chain")
		}
	}
	if me < n-1 {
		if err := fab.Send(roundChainBase+me, me, me+1, vectorBytes, out); err != nil {
			return nil, transport.AnnotatePhase(err, "chain")
		}
	} else {
		// Last hop: return each set to its owner.
		for owner := 0; owner < n-1; owner++ {
			if err := fab.Send(roundChainBase+me, me, owner, len(out.V[owner])*ctBytes, finalMsg{Set: out.V[owner]}); err != nil {
				return nil, transport.AnnotatePhase(err, "chain")
			}
		}
	}

	// Receive my fully processed set.
	obsv.PartyOf(cfg.Group).Begin(PhaseFinalSet)
	if me == n-1 {
		return out.V[me], nil
	}
	if cfg.ProveDecryption {
		// The last hop's commitment broadcast precedes the final set on
		// the same channel: consume it and verify the final set against
		// it. Other hops' commitment broadcasts to non-successors stay
		// queued unread, which is harmless on per-pair channels.
		payload, err := fab.RecvCtx(ctx, me, n-1, roundChainBase+n-1)
		if err != nil {
			return nil, transport.AnnotatePhase(err, "final-set")
		}
		commit, ok := payload.(commitMsg)
		if !ok || len(commit.Hashes) != n {
			return nil, malformedAbort(n-1, me, roundChainBase+n-1, PhaseFinalSet,
				"a malformed final commitment", fmt.Sprintf("%d digests", n))
		}
		payload, err = fab.RecvCtx(ctx, me, n-1, roundChainBase+n-1)
		if err != nil {
			return nil, transport.AnnotatePhase(err, "final-set")
		}
		msg, ok := payload.(finalMsg)
		if !ok || len(msg.Set) != len(mySet) {
			return nil, malformedAbort(n-1, me, roundChainBase+n-1, PhaseFinalSet,
				"a malformed final set", fmt.Sprintf("%d ciphertexts", len(mySet)))
		}
		if !bytes.Equal(hashSet(scheme, msg.Set), commit.Hashes[me]) {
			return nil, transport.Abort(n-1, roundChainBase+n-1, PhaseFinalSet,
				fmt.Errorf("unlinksort: final set does not match party %d's commitment", n-1)).
				WithCert(certSetAnchor(n-1, me, roundChainBase+n-1,
					fmt.Sprintf("party %d delivered a final set that does not hash to its own broadcast commitment", n-1),
					commit.Hashes[me], encodeSetBytes(scheme, msg.Set)))
		}
		if err := validateSet(cfg.Group, n-1, msg.Set); err != nil {
			return nil, err
		}
		return msg.Set, nil
	}
	payload, err := fab.RecvCtx(ctx, me, n-1, roundChainBase+n-1)
	if err != nil {
		return nil, transport.AnnotatePhase(err, "final-set")
	}
	msg, ok := payload.(finalMsg)
	if !ok || len(msg.Set) != len(mySet) {
		return nil, malformedAbort(n-1, me, roundChainBase+n-1, PhaseFinalSet,
			"a malformed final set", fmt.Sprintf("%d ciphertexts", len(mySet)))
	}
	if err := validateSet(cfg.Group, n-1, msg.Set); err != nil {
		return nil, err
	}
	return msg.Set, nil
}

// hashSet commits a ciphertext set (SHA-256 over the encoded sequence).
// One reused buffer feeds the hash, so committing a whole set allocates
// a single ciphertext-sized scratch slice instead of one per entry.
func hashSet(scheme *elgamal.Scheme, set []elgamal.Ciphertext) []byte {
	h := sha256.New()
	buf := make([]byte, 0, scheme.EncodedLen())
	for _, ct := range set {
		buf = scheme.AppendEncode(buf[:0], ct)
		h.Write(buf)
	}
	return h.Sum(nil)
}

// verifyChainHop checks a predecessor's message in ProveDecryption mode:
// its claimed Input matches the previous commitment; every strip proof
// verifies under the predecessor's registered key share; the untouched
// own set passed through unmodified. Every failure is a typed abort
// naming prev and carrying a blame certificate the offline verifier in
// internal/blame can re-check; me and round locate the evidence.
func verifyChainHop(cfg Config, scheme *elgamal.Scheme, me, prev, round int, prevKey group.Element, prevCommit [][]byte, msg vectorMsg) error {
	n := len(msg.V)
	if len(msg.Input) != n || len(msg.Stripped) != n || len(msg.Proofs) != n {
		return malformedAbort(prev, me, round, PhaseChain,
			"a chain vector with missing decryption evidence", "input, stripped and proof vectors")
	}
	for owner := 0; owner < n; owner++ {
		if !bytes.Equal(hashSet(scheme, msg.Input[owner]), prevCommit[owner]) {
			return transport.Abort(prev, round, PhaseChain,
				fmt.Errorf("unlinksort: party %d's claimed input for owner %d does not match the committed vector", prev, owner)).
				WithCert(certSetAnchor(prev, me, round,
					fmt.Sprintf("party %d's claimed chain input for owner %d does not hash to the committed vector", prev, owner),
					prevCommit[owner], encodeSetBytes(scheme, msg.Input[owner])))
		}
		if owner == prev {
			// The predecessor does not process its own set; it must pass
			// through byte-identical.
			if !bytes.Equal(hashSet(scheme, msg.V[owner]), hashSet(scheme, msg.Input[owner])) {
				return transport.Abort(prev, round, PhaseChain,
					fmt.Errorf("unlinksort: party %d modified its own set in transit", prev)).
					WithCert(certOwnSetTampered(prev, me, round,
						encodeSetBytes(scheme, msg.Input[owner]), encodeSetBytes(scheme, msg.V[owner])))
			}
			continue
		}
		if len(msg.Proofs[owner]) != len(msg.Input[owner]) || len(msg.Stripped[owner]) != len(msg.Input[owner]) {
			return malformedAbort(prev, me, round, PhaseChain,
				fmt.Sprintf("mismatched decryption evidence for owner %d", owner),
				fmt.Sprintf("%d stripped ciphertexts and proofs", len(msg.Input[owner])))
		}
		for i := range msg.Input[owner] {
			in, st := msg.Input[owner][i], msg.Stripped[owner][i]
			if !cfg.Group.Equal(in.C1, st.C1) {
				return transport.Abort(prev, round, PhaseChain,
					fmt.Errorf("unlinksort: party %d altered ciphertext randomness for owner %d", prev, owner)).
					WithCert(certStrippedRandomness(cfg.Group, prev, me, round, in, st))
			}
			if !zkp.VerifyPartialDecryption(cfg.Group, prevKey, in.C1, in.C, st.C, msg.Proofs[owner][i]) {
				return transport.Abort(prev, round, PhaseChain,
					fmt.Errorf("unlinksort: party %d failed decryption proof %d of owner %d", prev, i, owner)).
					WithCert(certPartialDecryption(cfg.Group, prev, me, round, in, st, msg.Proofs[owner][i], prevKey))
			}
		}
	}
	return nil
}

// processSet strips this party's key layer from every ciphertext,
// exponent-blinds it (zero plaintexts stay zero, everything else becomes
// uniformly random), and applies a fresh random permutation. The strip
// and blind — four random-base exponentiations per ciphertext, the bulk
// of the protocol's serial chain cost — fan out across workers; the
// blinding scalars are pre-drawn in index order and the shuffle draws
// after them, exactly the reference sequence.
func processSet(ctx context.Context, cfg Config, scheme *elgamal.Scheme, x *big.Int, set []elgamal.Ciphertext, rng io.Reader) ([]elgamal.Ciphertext, error) {
	blinds, err := drawScalars(scheme, len(set), rng)
	if err != nil {
		return nil, err
	}
	out := make([]elgamal.Ciphertext, len(set))
	if err := kernel.Map(ctx, cfg.Workers, len(set), func(i int) error {
		out[i] = scheme.ExponentBlindR(scheme.PartialDecrypt(x, set[i]), blinds[i])
		return nil
	}); err != nil {
		return nil, transport.AnnotatePhase(err, PhaseChain)
	}
	if err := shuffle(out, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// stripWithProofs strips the key layer from every ciphertext and proves
// each strip with a Chaum–Pedersen transcript, in the set's received
// order so no permutation information leaks. Each proof pre-draws its
// commit randomness and challenge (in ProveEquality's order) serially;
// the strip and transcript arithmetic fan out.
func stripWithProofs(ctx context.Context, cfg Config, scheme *elgamal.Scheme, key *elgamal.KeyPair, set []elgamal.Ciphertext, rng io.Reader) ([]elgamal.Ciphertext, []zkp.EqualityTranscript, error) {
	g := cfg.Group
	rs := make([]*big.Int, len(set))
	cs := make([]*big.Int, len(set))
	for i := range set {
		var err error
		if rs[i], err = g.RandomScalar(rng); err != nil {
			return nil, nil, err
		}
		if cs[i], err = zkp.NewChallenge(g, rng); err != nil {
			return nil, nil, err
		}
	}
	stripped := make([]elgamal.Ciphertext, len(set))
	proofs := make([]zkp.EqualityTranscript, len(set))
	if err := kernel.Map(ctx, cfg.Workers, len(set), func(i int) error {
		ct := set[i]
		stripped[i] = scheme.PartialDecrypt(key.X, ct)
		proofs[i] = zkp.ProvePartialDecryptionR(g, key.X, key.Y, ct.C1, ct.C, stripped[i].C, rs[i], cs[i])
		return nil
	}); err != nil {
		return nil, nil, transport.AnnotatePhase(err, PhaseChain)
	}
	return stripped, proofs, nil
}

// blindAndShuffle exponent-blinds and permutes an already-stripped set.
func blindAndShuffle(ctx context.Context, cfg Config, scheme *elgamal.Scheme, set []elgamal.Ciphertext, rng io.Reader) ([]elgamal.Ciphertext, error) {
	blinds, err := drawScalars(scheme, len(set), rng)
	if err != nil {
		return nil, err
	}
	out := make([]elgamal.Ciphertext, len(set))
	if err := kernel.Map(ctx, cfg.Workers, len(set), func(i int) error {
		out[i] = scheme.ExponentBlindR(set[i], blinds[i])
		return nil
	}); err != nil {
		return nil, transport.AnnotatePhase(err, PhaseChain)
	}
	if err := shuffle(out, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// drawScalars draws k scalars from rng in order.
func drawScalars(scheme *elgamal.Scheme, k int, rng io.Reader) ([]*big.Int, error) {
	out := make([]*big.Int, k)
	for i := range out {
		var err error
		if out[i], err = scheme.Group().RandomScalar(rng); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// shuffle is a Fisher–Yates permutation driven by the protocol RNG.
func shuffle(set []elgamal.Ciphertext, rng io.Reader) error {
	for i := len(set) - 1; i > 0; i-- {
		jBig, err := fixedbig.RandInt(rng, big.NewInt(int64(i+1)))
		if err != nil {
			return err
		}
		j := int(jBig.Int64())
		set[i], set[j] = set[j], set[i]
	}
	return nil
}

// Run executes the whole protocol in-process, one goroutine per party,
// with deterministic per-party randomness derived from seed. It returns
// the per-party results (indexed by party) and the fabric for stats and
// trace inspection.
func Run(cfg Config, betas []*big.Int, seed string, opts ...transport.Option) ([]Result, *transport.Fabric, error) {
	return RunCtx(context.Background(), cfg, betas, seed, nil, opts...)
}

// RunCtx is Run with cancellation and an optional net wrapper (fault
// injection hooks in here: wrap receives the shared fabric and returns
// the Net the parties actually use). The first party to fail cancels
// every sibling, so no goroutine is left blocked on a receive that will
// never complete; the returned error is always a typed *AbortError.
func RunCtx(ctx context.Context, cfg Config, betas []*big.Int, seed string, wrap func(transport.Net) transport.Net, opts ...transport.Option) ([]Result, *transport.Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	n := len(betas)
	if n < 2 {
		return nil, nil, fmt.Errorf("unlinksort: need at least two parties, got %d", n)
	}
	// Validate inputs before spawning: a party that fails before its
	// first send would leave the others blocked on a receive.
	for j, beta := range betas {
		if beta.Sign() < 0 || beta.BitLen() > cfg.L {
			return nil, nil, fmt.Errorf("unlinksort: party %d value does not fit in %d bits", j, cfg.L)
		}
	}
	fab, err := transport.New(n, opts...)
	if err != nil {
		return nil, nil, err
	}
	var net transport.Net = fab
	if wrap != nil {
		net = wrap(fab)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	reg := obsv.RegistryFrom(ctx)
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx := obsv.WithParty(runCtx, reg.Party(p))
			obsv.Do(pctx, p, func(ctx context.Context) {
				rng := fixedbig.NewDRBG(fmt.Sprintf("%s-party-%d", seed, p))
				res, err := PartyCtx(ctx, cfg, p, net, betas[p], rng)
				if err != nil {
					errs[p] = fmt.Errorf("party %d: %w", p, err)
					cancel() // unblock every sibling promptly
					return
				}
				results[p] = res
			})
		}()
	}
	wg.Wait()
	if p, err := firstRealError(errs); err != nil {
		return nil, fab, transport.EnsureAbort(err, p, "unlinksort")
	}
	return results, fab, nil
}

// firstRealError picks the root-cause failure out of a per-party error
// slice: cancellation aborts are secondary effects of the first real
// failure (the canceller), so a non-cancel error is preferred.
func firstRealError(errs []error) (int, error) {
	party, pick := -1, error(nil)
	for p, err := range errs {
		if err == nil {
			continue
		}
		if pick == nil {
			party, pick = p, err
			continue
		}
		if errors.Is(pick, context.Canceled) && !errors.Is(err, context.Canceled) {
			party, pick = p, err
		}
	}
	return party, pick
}
