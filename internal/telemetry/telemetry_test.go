package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsDisabled pins the package contract: every handle
// obtained from a nil registry is usable and a no-op, so instrumented
// code never branches on "is telemetry on".
func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("g", "")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("h", "", ExpBuckets(0.001, 10, 3))
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	if cv := r.CounterVec("cv", "", "peer"); cv.With("1") != nil {
		t.Fatal("nil CounterVec.With returned a live counter")
	}
	if gv := r.GaugeVec("gv", "", "peer"); gv.With("1") != nil {
		t.Fatal("nil GaugeVec.With returned a live gauge")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
	r.SetHealthSource(nil)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestCountersGaugesHistograms exercises the value semantics of each
// metric kind.
func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-1) // counters never go down; negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again.Value() != 5 {
		t.Fatal("re-registering a counter did not return the same series")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.535) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.535", got)
	}

	cv := r.CounterVec("sends_total", "sends", "peer")
	cv.With("1").Add(3)
	cv.With("2").Inc()
	cv.With("1").Inc()
	if got := cv.With("1").Value(); got != 4 {
		t.Fatalf("labelled counter = %d, want 4", got)
	}
}

// TestInvalidNamesPanic pins that a malformed metric or label name is
// rejected at registration, never exported.
func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "Upper", "1num", "has-dash", "has space", "dotted.name"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("registering a bad label name did not panic")
			}
		}()
		r.CounterVec("ok_name", "", "Bad-Label")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("redefining a counter as a gauge did not panic")
			}
		}()
		r.Counter("twice", "")
		r.Gauge("twice", "")
	}()
}

// TestWritePrometheus pins the exposition format: HELP/TYPE comments,
// label rendering, cumulative histogram buckets with the +Inf series.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", "Messages sent.").Add(42)
	r.GaugeVec("link_up", "Link state.", "peer").With("2").Set(1)
	h := r.Histogram("rtt_seconds", "Heartbeat RTT.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP msgs_total Messages sent.\n",
		"# TYPE msgs_total counter\n",
		"msgs_total 42\n",
		"# TYPE link_up gauge\n",
		`link_up{peer="2"} 1` + "\n",
		"# TYPE rtt_seconds histogram\n",
		`rtt_seconds_bucket{le="0.001"} 1` + "\n",
		`rtt_seconds_bucket{le="0.01"} 2` + "\n",
		`rtt_seconds_bucket{le="+Inf"} 3` + "\n",
		"rtt_seconds_sum 2.0055\n",
		"rtt_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, name := range r.Names() {
		if !ValidName(name) {
			t.Errorf("registered name %q fails ValidName", name)
		}
	}
}

// TestConcurrentUpdatesAndScrapes hammers one registry from many
// goroutines while scraping it — the mid-run /metrics contract, and the
// race-detector target for the hot path.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat_seconds", "", ExpBuckets(0.001, 10, 4))
	gv := r.GaugeVec("lag", "", "peer")
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := gv.With("0")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 0.003)
				g.Set(float64(w*iters + i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// fakeHealth is a scriptable HealthSource.
type fakeHealth struct {
	mu    sync.Mutex
	peers []PeerHealth
}

func (f *fakeHealth) Health() []PeerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]PeerHealth(nil), f.peers...)
}

// TestAdminMux pins the endpoint contract: /metrics serves the
// exposition plus extra collectors, /healthz is 503 while starting,
// 200 with every peer connected, and 503 naming the degraded peer.
func TestAdminMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", "").Add(7)
	mux := AdminMux(r, func(w io.Writer) error {
		_, err := w.Write([]byte("extra_metric 1\n"))
		return err
	})

	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "msgs_total 7") || !strings.Contains(body, "extra_metric 1") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "starting") {
		t.Fatalf("/healthz before a source = %d %q, want 503 starting", code, body)
	}

	src := &fakeHealth{peers: []PeerHealth{
		{Peer: 1, State: StateConnected, LastContactMS: 3},
		{Peer: 2, State: StateConnected, LastContactMS: 5},
	}}
	r.SetHealthSource(src)
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz all-connected = %d %q, want 200 ok", code, body)
	}

	src.mu.Lock()
	src.peers[1].State = StateDead
	src.mu.Unlock()
	code, body := get("/healthz")
	if code != 503 || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("/healthz with a dead peer = %d %q, want 503 degraded", code, body)
	}
	if !strings.Contains(body, `"peer":2`) || !strings.Contains(body, `"dead"`) {
		t.Fatalf("/healthz does not name the dead peer: %q", body)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", code)
	}
}
