package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
)

// The admin endpoint contract (DESIGN.md §3.7):
//
//	GET /metrics      Prometheus text exposition of the registry plus
//	                  any extra collectors (e.g. obsv's per-party op
//	                  totals). Always 200; scrape-safe mid-run.
//	GET /healthz      JSON per-peer link state. 200 when every link is
//	                  connected, 503 while starting, degraded or dead —
//	                  so a load balancer or supervisor can act on it.
//	GET /debug/pprof  the standard Go profiler surface.

// healthReport is the /healthz response body.
type healthReport struct {
	Status  string         `json:"status"` // ok | degraded | draining | starting
	Peers   []PeerHealth   `json:"peers,omitempty"`
	Service *ServiceStatus `json:"service,omitempty"`
}

// AdminMux builds the admin HTTP handler over a registry. Extra
// collectors are appended to the /metrics output after the registry's
// own families; a failing collector aborts the scrape with a 500 so
// partial exposition is never served as complete.
func AdminMux(reg *Registry, collect ...func(io.Writer) error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// Render into a buffer first: an error mid-stream must become a
		// clean 500, not a truncated 200.
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, c := range collect {
			if c == nil {
				continue
			}
			if err := c(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		report := healthReport{Status: "starting"}
		code := http.StatusServiceUnavailable
		if src := reg.HealthSource(); src != nil {
			report.Status = "ok"
			report.Peers = src.Health()
			code = http.StatusOK
			for _, p := range report.Peers {
				if p.State != StateConnected {
					report.Status = "degraded"
					code = http.StatusServiceUnavailable
					break
				}
			}
		}
		if src := reg.ServiceStatusSource(); src != nil {
			st := src()
			report.Service = &st
			// A draining daemon is deliberately non-200: load balancers
			// must stop routing new sessions here while the running ones
			// finish.
			if st.Draining {
				report.Status = "draining"
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(report)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
