// Package telemetry is the runtime's live metrics layer: a streaming
// registry of counters, gauges and fixed-bucket latency histograms that
// the transport, journal and deployment layers feed while a session is
// in flight, and that the admin HTTP endpoint exports in Prometheus
// text exposition format for scraping mid-run.
//
// It deliberately mirrors internal/obsv's design contract: a nil
// *Registry is the disabled state and every handle obtained from it is
// nil too, so instrumented code calls its metric hooks unconditionally
// and a disabled run pays exactly one nil check per hook. The hot path
// is lock-free — counters and gauges are single atomic words, histogram
// observations are an atomic bucket increment plus a CAS-looped sum —
// so enabling telemetry does not perturb the protocol it measures.
//
// Where obsv answers "what did the protocol compute and send, per phase,
// per party", telemetry answers "how is the runtime underneath it
// doing": per-round wall time, redials, retransmissions, ack lag,
// heartbeat RTT, journal append and fsync latency. obsv traces are
// per-run artifacts merged offline by cmd/ranktrace; telemetry is the
// live surface /metrics and /healthz are built on.
//
// The package is a stdlib-only leaf: transport, journal and obsv all
// import it, never the reverse.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// metricNamePattern is the exposition-format-safe shape every metric
// name (and label key) must match. It is exported via ValidName so the
// guard tests in the instrumented packages can enforce it on the names
// they actually register.
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidName reports whether name is a legal metric or label name:
// lower-snake-case, starting with a letter — the subset of the
// Prometheus data model this package permits, so every registered
// metric is guaranteed to export cleanly.
func ValidName(name string) bool { return metricNamePattern.MatchString(name) }

// kind discriminates metric families.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one named metric family: all children share the name, help
// text, kind, label key and (for histograms) bucket layout.
type family struct {
	name    string
	help    string
	kind    kind
	label   string    // label key, "" for unlabelled families
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu       sync.Mutex
	order    []string // label values in first-use order, for stable export
	children map[string]*metric
}

// metric is one concrete series. Exactly one of the field groups is
// live, selected by the family kind; keeping them in one struct lets
// the typed handles stay single-pointer wrappers.
type metric struct {
	fam        *family
	labelValue string

	val  int64  // counter value / histogram observation count
	bits uint64 // gauge float64 bits / unused

	hcounts []int64 // histogram per-bucket counts, len(buckets)+1 (+Inf last)
	hsum    uint64  // histogram sum, float64 bits, CAS-updated
}

func (f *family) child(labelValue string) *metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[labelValue]
	if !ok {
		m = &metric{fam: f, labelValue: labelValue}
		if f.kind == kindHistogram {
			m.hcounts = make([]int64, len(f.buckets)+1)
		}
		f.children[labelValue] = m
		f.order = append(f.order, labelValue)
	}
	return m
}

// Registry holds one process's metric families. A nil *Registry is the
// disabled state: every method is nil-safe and every handle it returns
// is itself a no-op. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family

	health    HealthSource
	svcStatus func() ServiceStatus
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family registers (or retrieves) a family, panicking on an invalid
// name or a redefinition with a different shape — both are programmer
// errors that would otherwise corrupt the exposition output silently.
func (r *Registry) family(name, help string, k kind, label string, buckets []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("telemetry: metric name %q does not match %s", name, metricNamePattern))
	}
	if label != "" && !ValidName(label) {
		panic(fmt.Sprintf("telemetry: label name %q does not match %s", label, metricNamePattern))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || f.label != label || len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("telemetry: metric %q redefined as a different %s", name, k))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k, label: label,
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*metric),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Names returns every registered family name, sorted. The guard tests
// use it to check that everything a run registers is exposition-safe.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// ---- counters ----

// Counter is a monotonically increasing count. A nil Counter (from a
// nil registry) is a no-op.
type Counter struct{ m *metric }

// Counter registers (or retrieves) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{m: r.family(name, help, kindCounter, "", nil).child("")}
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ fam *family }

// CounterVec registers (or retrieves) a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.family(name, help, kindCounter, label, nil)}
}

// With returns the child counter for one label value.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{m: v.fam.child(labelValue)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	atomic.AddInt64(&c.m.val, n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.m.val)
}

// ---- gauges ----

// Gauge is an instantaneous value that can go up and down. A nil Gauge
// is a no-op.
type Gauge struct{ m *metric }

// Gauge registers (or retrieves) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{m: r.family(name, help, kindGauge, "", nil).child("")}
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or retrieves) a gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.family(name, help, kindGauge, label, nil)}
}

// With returns the child gauge for one label value.
func (v *GaugeVec) With(labelValue string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{m: v.fam.child(labelValue)}
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.m.bits, math.Float64bits(v))
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.m.bits))
}

// ---- histograms ----

// Histogram is a fixed-bucket latency/size distribution. A nil
// Histogram is a no-op.
type Histogram struct{ m *metric }

// Histogram registers (or retrieves) an unlabelled histogram with the
// given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{m: r.family(name, help, kindHistogram, "", buckets).child("")}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	m := h.m
	i := sort.SearchFloat64s(m.fam.buckets, v) // first bucket with bound >= v
	atomic.AddInt64(&m.hcounts[i], 1)
	atomic.AddInt64(&m.val, 1)
	for {
		old := atomic.LoadUint64(&m.hsum)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&m.hsum, old, next) {
			return
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.m.val)
}

// Sum reads the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.m.hsum))
}

// ExpBuckets builds n exponentially growing bucket bounds starting at
// start: start, start*factor, start*factor², … — the standard latency
// histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
