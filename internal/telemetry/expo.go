package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prometheus text exposition (format version 0.0.4): HELP and TYPE
// comment lines followed by one sample line per series, histograms
// expanded into cumulative _bucket{le=...} series plus _sum and _count.
// Families export in registration order and children in first-use
// order, so successive scrapes diff cleanly.

// WritePrometheus renders every registered family. It reads all values
// atomically but not as one snapshot: a scrape racing live updates sees
// each series at some point during the write, which is the normal
// Prometheus contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	children := make([]*metric, 0, len(f.order))
	for _, lv := range f.order {
		children = append(children, f.children[lv])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, m := range children {
		if err := f.writeChild(w, m); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, m *metric) error {
	labels := ""
	if f.label != "" {
		labels = fmt.Sprintf("{%s=%q}", f.label, m.labelValue)
	}
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, atomic.LoadInt64(&m.val))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels,
			fmtFloat(math.Float64frombits(atomic.LoadUint64(&m.bits))))
		return err
	case kindHistogram:
		// Cumulative buckets: each le series counts everything at or
		// below its bound, ending with the mandatory +Inf total.
		var cum int64
		for i, bound := range f.buckets {
			cum += atomic.LoadInt64(&m.hcounts[i])
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, fmtFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += atomic.LoadInt64(&m.hcounts[len(f.buckets)])
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", f.name,
			fmtFloat(math.Float64frombits(atomic.LoadUint64(&m.hsum)))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", f.name, atomic.LoadInt64(&m.val))
		return err
	}
	return fmt.Errorf("telemetry: family %q has unknown kind", f.name)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes the two characters the format forbids raw in HELP
// text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
