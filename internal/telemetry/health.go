package telemetry

// Peer link states as /healthz reports them. The transport maps its
// internal link machinery onto three operator-facing states: a link
// that is up, a link that is down but still inside the reconnect grace
// window, and a link that is gone for good (blame fired, a fatal
// protocol error, or a fail-fast fabric's connection loss).
const (
	StateConnected    = "connected"
	StateReconnecting = "reconnecting"
	StateDead         = "dead"
)

// PeerHealth is one peer link's live state, as reported by a fabric's
// Health method and rendered by /healthz.
type PeerHealth struct {
	// Peer is the remote party's index.
	Peer int `json:"peer"`
	// State is one of StateConnected, StateReconnecting, StateDead.
	State string `json:"state"`
	// LastContactMS is how many milliseconds ago this endpoint last
	// heard anything (data, ack or heartbeat) from the peer; -1 before
	// first contact.
	LastContactMS int64 `json:"last_contact_ms"`
	// HeartbeatRTTMS is the most recent heartbeat round-trip time in
	// milliseconds, 0 until one has been measured (recovering fabric
	// only).
	HeartbeatRTTMS float64 `json:"heartbeat_rtt_ms,omitempty"`
}

// HealthSource is implemented by the transport fabrics: a live per-peer
// link state snapshot. The admin endpoint resolves it through the
// registry at request time, because the fabric is constructed after the
// admin server starts listening.
type HealthSource interface {
	Health() []PeerHealth
}

// SetHealthSource installs (or replaces) the fabric the /healthz
// endpoint reports on. Safe to call at any time, including never — the
// endpoint reports "starting" until a source exists.
func (r *Registry) SetHealthSource(h HealthSource) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.health = h
	r.mu.Unlock()
}

// HealthSource returns the installed source, or nil.
func (r *Registry) HealthSource() HealthSource {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// ServiceStatus is the service-tier block a daemon contributes to
// /healthz on top of the per-peer link states: its session lifecycle
// census and whether it is draining. A draining daemon reports
// non-200 so load balancers stop routing new work to it while its
// running sessions finish.
type ServiceStatus struct {
	// Draining is true once graceful shutdown began: admission is
	// closed and only already-running sessions continue.
	Draining bool `json:"draining"`
	// Epoch counts the daemon's process lives (durable mode only;
	// omitted when zero).
	Epoch int `json:"epoch,omitempty"`
	// Sessions counts hosted sessions per lifecycle state.
	Sessions map[string]int `json:"sessions"`
}

// SetServiceStatus installs the callback /healthz uses to render the
// service block. Nil-registry and nil-callback safe.
func (r *Registry) SetServiceStatus(f func() ServiceStatus) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.svcStatus = f
	r.mu.Unlock()
}

// ServiceStatusSource returns the installed callback, or nil.
func (r *Registry) ServiceStatusSource() func() ServiceStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.svcStatus
}
