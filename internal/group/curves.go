package group

import (
	"fmt"
	"math/big"
	"sync"
)

// SEC2 / NIST domain parameters for the curves used in the paper's
// evaluation: secp160r1 (the "160-bit ECC group" of Section VII) plus
// P-224 and P-256 for the 112- and 128-bit security levels of Fig. 3(a).
// All parameters are validated by NewECGroup (prime field, prime order,
// base point on curve, n·G = ∞) when first used.

type curveDef struct {
	name          string
	p, a, b       string // hex; a == "" means a = p − 3
	gx, gy, n     string
	securityBits  int
	fieldBitsHint int
}

var _curveDefs = []curveDef{
	{
		name:         "secp160r1",
		p:            "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF",
		b:            "1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45",
		gx:           "4A96B5688EF573284664698968C38BB913CBFC82",
		gy:           "23A628553168947D59DCC912042351377AC5FB32",
		n:            "0100000000000000000001F4C8F927AED3CA752257",
		securityBits: 80,
	},
	{
		name:         "secp224r1",
		p:            "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF000000000000000000000001",
		b:            "B4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4",
		gx:           "B70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21",
		gy:           "BD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34",
		n:            "FFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D",
		securityBits: 112,
	},
	{
		name:         "secp256r1",
		p:            "FFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF",
		b:            "5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B",
		gx:           "6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296",
		gy:           "4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5",
		n:            "FFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551",
		securityBits: 128,
	},
}

var (
	_curveOnce   sync.Once
	_curveGroups map[string]*ECGroup
)

func mustHex(name, field, s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic(fmt.Sprintf("group: malformed %s constant for curve %s", field, name))
	}
	return v
}

func curveGroups() map[string]*ECGroup {
	_curveOnce.Do(func() {
		_curveGroups = make(map[string]*ECGroup, len(_curveDefs))
		for _, d := range _curveDefs {
			p := mustHex(d.name, "p", d.p)
			a := new(big.Int).Sub(p, big.NewInt(3))
			if d.a != "" {
				a = mustHex(d.name, "a", d.a)
			}
			g, err := NewECGroup(CurveSpec{
				Name:         d.name,
				P:            p,
				A:            a,
				B:            mustHex(d.name, "b", d.b),
				Gx:           mustHex(d.name, "gx", d.gx),
				Gy:           mustHex(d.name, "gy", d.gy),
				N:            mustHex(d.name, "n", d.n),
				SecurityBits: d.securityBits,
			})
			if err != nil {
				panic(fmt.Sprintf("group: invalid curve %s: %v", d.name, err))
			}
			_curveGroups[d.name] = g
		}
	})
	return _curveGroups
}

// Secp160r1 returns the 160-bit SEC2 curve used by the paper's ECC
// framework (80-bit security), with the fast limb-arithmetic scalar
// multiplication of secp160fast.go.
func Secp160r1() Group { return fastSecp160{ECGroup: curveGroups()["secp160r1"]} }

// Secp160r1Generic returns the same curve with the generic math/big
// arithmetic; tests and the ablation benchmark compare the two.
func Secp160r1Generic() *ECGroup { return curveGroups()["secp160r1"] }

// Secp224r1 returns NIST P-224 (112-bit security).
func Secp224r1() *ECGroup { return curveGroups()["secp224r1"] }

// Secp256r1 returns NIST P-256 (128-bit security).
func Secp256r1() *ECGroup { return curveGroups()["secp256r1"] }

// ByName resolves a group by its canonical name. Recognised names:
// modp-1024, modp-2048, modp-3072, secp160r1, secp224r1, secp256r1, and
// the demo-only toy-dl-256.
func ByName(name string) (Group, error) {
	switch name {
	case "modp-1024":
		return MODP1024(), nil
	case "modp-2048":
		return MODP2048(), nil
	case "modp-3072":
		return MODP3072(), nil
	case "secp160r1", "secp224r1", "secp256r1":
		return curveGroups()[name], nil
	case "toy-dl-256":
		return ToyDL256()
	default:
		return nil, fmt.Errorf("group: unknown group %q", name)
	}
}

// SecurityLevels enumerates the matched DL/ECC pairs of Fig. 3(a):
// the NIST-equivalent 80-, 112- and 128-bit symmetric security levels.
func SecurityLevels() []struct {
	Bits int
	DL   string
	EC   string
} {
	return []struct {
		Bits int
		DL   string
		EC   string
	}{
		{80, "modp-1024", "secp160r1"},
		{112, "modp-2048", "secp224r1"},
		{128, "modp-3072", "secp256r1"},
	}
}
