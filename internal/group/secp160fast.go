package group

import (
	"math/big"
	"math/bits"
)

// Fast scalar multiplication for secp160r1. The generic ECGroup keeps
// every field element in math/big form and pays a division on every
// reduction; at the 160-bit size that makes one scalar multiplication
// slower than a 1024-bit Montgomery modexp, inverting the paper's
// ECC-vs-DL comparison. This file implements the secp160r1 field
// p = 2^160 − 2^31 − 1 on three uint64 limbs with pseudo-Mersenne
// folding (2^160 ≡ 2^31 + 1 mod p), and Jacobian point arithmetic with
// the a = −3 doubling, restoring the hardware-realistic ordering. The
// test suite checks every operation against the generic implementation.

// fe160 is a field element in little-endian limbs, always < 2^160.
type fe160 [3]uint64

var (
	// p160 is 2^160 − 2^31 − 1.
	fe160P = fe160{0xFFFFFFFF7FFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x00000000FFFFFFFF}
)

func fe160FromBig(x *big.Int) fe160 {
	var out fe160
	words := x.Bits()
	for i := 0; i < len(words) && i < 3; i++ {
		out[i] = uint64(words[i])
	}
	return out
}

func (f fe160) big() *big.Int {
	buf := make([]byte, 24)
	for i := 0; i < 3; i++ {
		for b := 0; b < 8; b++ {
			buf[23-(i*8+b)] = byte(f[i] >> (8 * b))
		}
	}
	return new(big.Int).SetBytes(buf)
}

func (f fe160) isZero() bool { return f[0]|f[1]|f[2] == 0 }

func fe160Eq(a, b fe160) bool { return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] }

// fe160Add returns a+b mod p.
func fe160Add(a, b fe160) fe160 {
	var r fe160
	var c uint64
	r[0], c = bits.Add64(a[0], b[0], 0)
	r[1], c = bits.Add64(a[1], b[1], c)
	r[2], c = bits.Add64(a[2], b[2], c)
	// r < 2^161: fold the carry (2^160 ≡ 2^31+1) then normalise.
	if c != 0 || r[2]>>32 != 0 {
		hi := (r[2] >> 32) | (c << 32)
		r[2] &= 0xFFFFFFFF
		r = fe160AddSmall(r, hi)
	}
	return fe160Norm(r)
}

// fe160AddSmall adds hi·(2^31+1) into a 160-bit value (hi < 2^33).
func fe160AddSmall(a fe160, hi uint64) fe160 {
	carryMul, lo := bits.Mul64(hi, (1<<31)+1) // hi·(2^31+1) < 2^65
	var r fe160
	var c uint64
	r[0], c = bits.Add64(a[0], lo, 0)
	r[1], c = bits.Add64(a[1], carryMul, c)
	r[2], c = bits.Add64(a[2], 0, c)
	if c != 0 || r[2]>>32 != 0 {
		hi2 := (r[2] >> 32) | (c << 32)
		r[2] &= 0xFFFFFFFF
		var c2 uint64
		r[0], c2 = bits.Add64(r[0], hi2*((1<<31)+1), 0)
		r[1], c2 = bits.Add64(r[1], 0, c2)
		r[2] += c2
	}
	return r
}

// fe160Norm subtracts p once if needed (input < 2^160 + small).
func fe160Norm(a fe160) fe160 {
	var r fe160
	var borrow uint64
	r[0], borrow = bits.Sub64(a[0], fe160P[0], 0)
	r[1], borrow = bits.Sub64(a[1], fe160P[1], borrow)
	r[2], borrow = bits.Sub64(a[2], fe160P[2], borrow)
	if borrow != 0 {
		return a
	}
	return r
}

// fe160Sub returns a−b mod p.
func fe160Sub(a, b fe160) fe160 {
	var r fe160
	var borrow uint64
	r[0], borrow = bits.Sub64(a[0], b[0], 0)
	r[1], borrow = bits.Sub64(a[1], b[1], borrow)
	r[2], borrow = bits.Sub64(a[2], b[2], borrow)
	if borrow != 0 {
		var c uint64
		r[0], c = bits.Add64(r[0], fe160P[0], 0)
		r[1], c = bits.Add64(r[1], fe160P[1], c)
		r[2], _ = bits.Add64(r[2], fe160P[2], c)
	}
	return r
}

// fe160Mul returns a·b mod p via schoolbook multiplication and two
// pseudo-Mersenne folds.
func fe160Mul(a, b fe160) fe160 {
	// t = a·b, 6 limbs (only 5 carry data: a, b < 2^160).
	var t [6]uint64
	for i := 0; i < 3; i++ {
		var carry uint64
		for j := 0; j < 3; j++ {
			hi, lo := bits.Mul64(a[i], b[j])
			var c uint64
			t[i+j], c = bits.Add64(t[i+j], lo, 0)
			hi += c
			t[i+j], c = bits.Add64(t[i+j], carry, 0)
			hi += c
			carry = hi
		}
		t[i+3] += carry
	}
	// Split at bit 160: lo = t mod 2^160, hi = t >> 160 (< 2^160).
	var lo, hi fe160
	lo[0], lo[1] = t[0], t[1]
	lo[2] = t[2] & 0xFFFFFFFF
	hi[0] = t[2]>>32 | t[3]<<32
	hi[1] = t[3]>>32 | t[4]<<32
	hi[2] = t[4]>>32 | t[5]<<32
	// r = lo + hi·(2^31+1); hi·(2^31+1) < 2^192.
	var m [4]uint64
	var carry uint64
	for i := 0; i < 3; i++ {
		h, l := bits.Mul64(hi[i], (1<<31)+1)
		var c uint64
		m[i], c = bits.Add64(m[i], l, 0)
		h += c
		m[i], c = bits.Add64(m[i], carry, 0)
		carry = h + c
	}
	m[3] = carry
	var r fe160
	var c uint64
	r[0], c = bits.Add64(lo[0], m[0], 0)
	r[1], c = bits.Add64(lo[1], m[1], c)
	r[2], c = bits.Add64(lo[2], m[2], c)
	top := m[3] + c // ≤ 2^33-ish
	// Fold bits ≥ 160 once more.
	hi2 := (r[2] >> 32) | (top << 32)
	r[2] &= 0xFFFFFFFF
	r = fe160AddSmall(r, hi2)
	return fe160Norm(r)
}

// fe160Sqr squares (schoolbook; the mul is cheap enough to reuse).
func fe160Sqr(a fe160) fe160 { return fe160Mul(a, a) }

// fe160Inv computes a^(p−2) mod p with a simple square-and-multiply
// ladder (one inversion per scalar multiplication, so clarity wins).
func fe160Inv(a fe160) fe160 {
	exp := new(big.Int).Sub(fe160P.big(), big.NewInt(2))
	r := fe160{1, 0, 0}
	for i := exp.BitLen() - 1; i >= 0; i-- {
		r = fe160Sqr(r)
		if exp.Bit(i) == 1 {
			r = fe160Mul(r, a)
		}
	}
	return r
}

// jac160 is a Jacobian point; z = 0 encodes infinity.
type jac160 struct {
	x, y, z fe160
}

// double160 doubles with the a = −3 formula:
// M = 3(X−Z²)(X+Z²), S = 4XY², X' = M²−2S, Y' = M(S−X')−8Y⁴, Z' = 2YZ.
func double160(p jac160) jac160 {
	if p.z.isZero() || p.y.isZero() {
		return jac160{}
	}
	z2 := fe160Sqr(p.z)
	m := fe160Mul(fe160Sub(p.x, z2), fe160Add(p.x, z2))
	m = fe160Add(fe160Add(m, m), m) // 3(X−Z²)(X+Z²)
	y2 := fe160Sqr(p.y)
	s := fe160Mul(p.x, y2)
	s = fe160Add(s, s)
	s = fe160Add(s, s) // 4XY²
	var r jac160
	r.x = fe160Sub(fe160Sqr(m), fe160Add(s, s))
	y4 := fe160Sqr(y2)
	y4 = fe160Add(y4, y4)
	y4 = fe160Add(y4, y4)
	y4 = fe160Add(y4, y4) // 8Y⁴
	r.y = fe160Sub(fe160Mul(m, fe160Sub(s, r.x)), y4)
	zy := fe160Mul(p.y, p.z)
	r.z = fe160Add(zy, zy)
	return r
}

// add160 adds two Jacobian points.
func add160(p, q jac160) jac160 {
	if p.z.isZero() {
		return q
	}
	if q.z.isZero() {
		return p
	}
	z1z1 := fe160Sqr(p.z)
	z2z2 := fe160Sqr(q.z)
	u1 := fe160Mul(p.x, z2z2)
	u2 := fe160Mul(q.x, z1z1)
	s1 := fe160Mul(fe160Mul(p.y, z2z2), q.z)
	s2 := fe160Mul(fe160Mul(q.y, z1z1), p.z)
	if fe160Eq(u1, u2) {
		if !fe160Eq(s1, s2) {
			return jac160{}
		}
		return double160(p)
	}
	h := fe160Sub(u2, u1)
	r := fe160Sub(s2, s1)
	h2 := fe160Sqr(h)
	h3 := fe160Mul(h2, h)
	u1h2 := fe160Mul(u1, h2)
	var out jac160
	out.x = fe160Sub(fe160Sub(fe160Sqr(r), h3), fe160Add(u1h2, u1h2))
	out.y = fe160Sub(fe160Mul(r, fe160Sub(u1h2, out.x)), fe160Mul(s1, h3))
	out.z = fe160Mul(fe160Mul(h, p.z), q.z)
	return out
}

// fastSecp160 wraps the generic secp160r1 group, overriding Exp with
// the limb implementation.
type fastSecp160 struct {
	*ECGroup
}

// Exp implements Group with the fast field.
func (f fastSecp160) Exp(a Element, k *big.Int) Element {
	pt := f.ECGroup.unwrap(a)
	if !pt.inf && pt.x.Cmp(f.ECGroup.gx) == 0 && pt.y.Cmp(f.ECGroup.gy) == 0 {
		// Fixed-base fast path: the cached comb lives in the limb
		// field, keyed separately from the generic group's table.
		return generatorTable(f).Exp(k)
	}
	e := new(big.Int).Mod(k, f.ECGroup.n)
	if pt.inf || e.Sign() == 0 {
		return ecPoint{inf: true}
	}
	base := jac160{x: fe160FromBig(pt.x), y: fe160FromBig(pt.y), z: fe160{1, 0, 0}}
	var acc jac160
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc = double160(acc)
		if e.Bit(i) == 1 {
			acc = add160(acc, base)
		}
	}
	if acc.z.isZero() {
		return ecPoint{inf: true}
	}
	zInv := fe160Inv(acc.z)
	zInv2 := fe160Sqr(zInv)
	x := fe160Mul(acc.x, zInv2)
	y := fe160Mul(acc.y, fe160Mul(zInv2, zInv))
	return ecPoint{x: x.big(), y: y.big()}
}
