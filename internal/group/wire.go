package group

import (
	"encoding/gob"
	"fmt"
	"math/big"
	"sync"
)

// Gob support so group elements can cross process boundaries inside
// protocol messages (the TCP transport gob-encodes payloads carrying
// Element interface values). Elements encode as raw coordinates. Gob
// decoding has no group context, so it can only enforce structural
// sanity (non-negative, bounded coordinates); full membership — curve
// equation, residue class — is checked by group.Validate, which the
// protocol layer calls on every element received from a peer.

// GobEncode implements gob.GobEncoder.
func (e dlElement) GobEncode() ([]byte, error) {
	return e.v.GobEncode()
}

// GobDecode implements gob.GobDecoder.
func (e *dlElement) GobDecode(data []byte) error {
	e.v = new(big.Int)
	if err := e.v.GobDecode(data); err != nil {
		return err
	}
	if e.v.Sign() <= 0 {
		return fmt.Errorf("group: residue out of range")
	}
	return nil
}

// GobEncode implements gob.GobEncoder.
func (p ecPoint) GobEncode() ([]byte, error) {
	if p.inf {
		return []byte{0}, nil
	}
	xb, err := p.x.GobEncode()
	if err != nil {
		return nil, err
	}
	yb, err := p.y.GobEncode()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 5+len(xb)+len(yb))
	out = append(out, 1, byte(len(xb)>>8), byte(len(xb)))
	out = append(out, xb...)
	return append(out, yb...), nil
}

// GobDecode implements gob.GobDecoder.
func (p *ecPoint) GobDecode(data []byte) error {
	if len(data) == 1 && data[0] == 0 {
		p.inf = true
		return nil
	}
	if len(data) < 3 || data[0] != 1 {
		return fmt.Errorf("group: malformed point encoding")
	}
	xLen := int(data[1])<<8 | int(data[2])
	if 3+xLen > len(data) {
		return fmt.Errorf("group: truncated point encoding")
	}
	p.x = new(big.Int)
	if err := p.x.GobDecode(data[3 : 3+xLen]); err != nil {
		return err
	}
	p.y = new(big.Int)
	if err := p.y.GobDecode(data[3+xLen:]); err != nil {
		return err
	}
	// Structural sanity only — a hostile encoder controls these bytes.
	// Negative coordinates would silently flow into math/big modular
	// arithmetic; an absurd bit length is a memory-pressure vector.
	// On-curve membership is the protocol layer's job (group.Validate).
	if p.x.Sign() < 0 || p.y.Sign() < 0 {
		return fmt.Errorf("group: negative point coordinate")
	}
	if p.x.BitLen() > 8192 || p.y.BitLen() > 8192 {
		return fmt.Errorf("group: oversized point coordinate")
	}
	return nil
}

var _gobOnce sync.Once

// RegisterGob registers the concrete Element implementations with
// encoding/gob so they can travel inside interface-typed message
// fields. Safe to call repeatedly.
func RegisterGob() {
	_gobOnce.Do(func() {
		gob.Register(dlElement{})
		gob.Register(ecPoint{})
	})
}
