package group

import (
	"encoding/gob"
	"fmt"
	"math/big"
	"sync"
)

// Gob support so group elements can cross process boundaries inside
// protocol messages (the TCP transport gob-encodes payloads carrying
// Element interface values). Elements encode as raw coordinates; the
// receiving side revalidates group membership at the protocol layer
// where the group is known.

// GobEncode implements gob.GobEncoder.
func (e dlElement) GobEncode() ([]byte, error) {
	return e.v.GobEncode()
}

// GobDecode implements gob.GobDecoder.
func (e *dlElement) GobDecode(data []byte) error {
	e.v = new(big.Int)
	return e.v.GobDecode(data)
}

// GobEncode implements gob.GobEncoder.
func (p ecPoint) GobEncode() ([]byte, error) {
	if p.inf {
		return []byte{0}, nil
	}
	xb, err := p.x.GobEncode()
	if err != nil {
		return nil, err
	}
	yb, err := p.y.GobEncode()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 5+len(xb)+len(yb))
	out = append(out, 1, byte(len(xb)>>8), byte(len(xb)))
	out = append(out, xb...)
	return append(out, yb...), nil
}

// GobDecode implements gob.GobDecoder.
func (p *ecPoint) GobDecode(data []byte) error {
	if len(data) == 1 && data[0] == 0 {
		p.inf = true
		return nil
	}
	if len(data) < 3 || data[0] != 1 {
		return fmt.Errorf("group: malformed point encoding")
	}
	xLen := int(data[1])<<8 | int(data[2])
	if 3+xLen > len(data) {
		return fmt.Errorf("group: truncated point encoding")
	}
	p.x = new(big.Int)
	if err := p.x.GobDecode(data[3 : 3+xLen]); err != nil {
		return err
	}
	p.y = new(big.Int)
	return p.y.GobDecode(data[3+xLen:])
}

var _gobOnce sync.Once

// RegisterGob registers the concrete Element implementations with
// encoding/gob so they can travel inside interface-typed message
// fields. Safe to call repeatedly.
func RegisterGob() {
	_gobOnce.Do(func() {
		gob.Register(dlElement{})
		gob.Register(ecPoint{})
	})
}
