package group

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"

	"groupranking/internal/fixedbig"
)

// DLGroup is the multiplicative group of quadratic residues modulo a safe
// prime p = 2q+1 ("DL" in the paper's terminology, Section IV-B). The
// subgroup of quadratic residues has prime order q, and DDH is believed
// hard in it.
type DLGroup struct {
	name     string
	p        *big.Int // safe prime modulus
	q        *big.Int // (p-1)/2, prime group order
	g        *big.Int // generator of the order-q subgroup
	elemLen  int      // byte length of p
	secLevel int
}

// dlElement wraps a residue in [1, p).
type dlElement struct {
	v *big.Int
}

func (dlElement) groupElement() {}

var _ Group = (*DLGroup)(nil)

// NewDLGroup builds a DL group from a safe prime p, verifying that p and
// q=(p-1)/2 are (probable) primes and that the generator has order q. The
// generator is 2 when 2 is a quadratic residue mod p (true for p ≡ 7 mod 8,
// which holds for all the RFC MODP primes) and 4 otherwise.
func NewDLGroup(name string, p *big.Int, secLevel int) (*DLGroup, error) {
	if !p.ProbablyPrime(32) {
		return nil, fmt.Errorf("group: %s modulus is not prime", name)
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	if !q.ProbablyPrime(32) {
		return nil, fmt.Errorf("group: %s modulus is not a safe prime", name)
	}
	g := big.NewInt(2)
	if big.Jacobi(g, p) != 1 {
		g = big.NewInt(4) // 4 = 2² is always a quadratic residue
	}
	return &DLGroup{
		name:     name,
		p:        p,
		q:        q,
		g:        g,
		elemLen:  (p.BitLen() + 7) / 8,
		secLevel: secLevel,
	}, nil
}

// GenerateDLGroup creates a fresh safe-prime group of the given bit size.
// It is intended for tests, which use small (e.g. 256-bit) groups so the
// full protocol stack runs quickly; production configurations use the fixed
// MODP groups.
func GenerateDLGroup(bits int, rng io.Reader) (*DLGroup, error) {
	if bits < 16 {
		return nil, fmt.Errorf("group: safe prime size %d too small", bits)
	}
	for {
		q, err := rand.Prime(rng, bits-1)
		if err != nil {
			return nil, fmt.Errorf("group: generating safe prime: %w", err)
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, big.NewInt(1))
		if p.ProbablyPrime(32) {
			return NewDLGroup(fmt.Sprintf("dl-%d-generated", bits), p, bits/12)
		}
	}
}

// Name implements Group.
func (d *DLGroup) Name() string { return d.name }

// Order implements Group.
func (d *DLGroup) Order() *big.Int { return d.q }

// Modulus returns the safe prime p.
func (d *DLGroup) Modulus() *big.Int { return d.p }

// Generator implements Group.
func (d *DLGroup) Generator() Element { return dlElement{v: d.g} }

// Identity implements Group.
func (d *DLGroup) Identity() Element { return dlElement{v: big.NewInt(1)} }

func (d *DLGroup) unwrap(e Element) *big.Int {
	de, ok := e.(dlElement)
	if !ok {
		panic(mismatchPanic(d.name, e))
	}
	return de.v
}

// Op implements Group.
func (d *DLGroup) Op(a, b Element) Element {
	r := new(big.Int).Mul(d.unwrap(a), d.unwrap(b))
	return dlElement{v: r.Mod(r, d.p)}
}

// Inv implements Group.
func (d *DLGroup) Inv(a Element) Element {
	return dlElement{v: new(big.Int).ModInverse(d.unwrap(a), d.p)}
}

// Exp implements Group.
func (d *DLGroup) Exp(a Element, k *big.Int) Element {
	v := d.unwrap(a)
	if v.Cmp(d.g) == 0 {
		// Fixed-base fast path: every generator exponentiation (ExpGen,
		// proof commitments, exponent encodings, the C1 half of every
		// encryption) shares one cached comb table. Sitting below the
		// obsv counting wrapper, the substitution is invisible to the
		// cost-model census.
		return generatorTable(d).Exp(k)
	}
	e := new(big.Int).Mod(k, d.q) // element order divides q
	return dlElement{v: new(big.Int).Exp(v, e, d.p)}
}

// Equal implements Group.
func (d *DLGroup) Equal(a, b Element) bool {
	return d.unwrap(a).Cmp(d.unwrap(b)) == 0
}

// IsIdentity implements Group.
func (d *DLGroup) IsIdentity(a Element) bool {
	return d.unwrap(a).Cmp(big.NewInt(1)) == 0
}

// Encode implements Group. Elements are fixed-width big-endian residues.
func (d *DLGroup) Encode(a Element) []byte {
	return d.unwrap(a).FillBytes(make([]byte, d.elemLen))
}

// AppendElement implements Group without allocating when dst has
// capacity: the residue is written directly into the grown tail.
func (d *DLGroup) AppendElement(dst []byte, a Element) []byte {
	v := d.unwrap(a)
	n := len(dst)
	dst = append(dst, make([]byte, d.elemLen)...)
	v.FillBytes(dst[n:])
	return dst
}

// Decode implements Group. It rejects values outside [1, p) and values
// that are not quadratic residues, so decoded elements always lie in the
// order-q subgroup.
func (d *DLGroup) Decode(data []byte) (Element, error) {
	if len(data) != d.elemLen {
		return nil, fmt.Errorf("group: %s element must be %d bytes, got %d", d.name, d.elemLen, len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Sign() == 0 || v.Cmp(d.p) >= 0 {
		return nil, fmt.Errorf("group: %s element out of range", d.name)
	}
	if big.Jacobi(v, d.p) != 1 {
		return nil, fmt.Errorf("group: %s element is not in the quadratic-residue subgroup", d.name)
	}
	return dlElement{v: v}, nil
}

// ElementLen implements Group.
func (d *DLGroup) ElementLen() int { return d.elemLen }

// RandomScalar implements Group.
func (d *DLGroup) RandomScalar(rng io.Reader) (*big.Int, error) {
	return randomScalar(rng, d.q)
}

// SecurityBits implements Group.
func (d *DLGroup) SecurityBits() int { return d.secLevel }

var (
	_toyOnce sync.Once
	_toyDL   *DLGroup
	_toyErr  error
)

// ToyDL256 returns a deterministically generated 256-bit safe-prime
// group. It is far below any real security level and exists so examples
// and demos run in seconds; production configurations use the fixed
// MODP or SEC2 groups.
func ToyDL256() (*DLGroup, error) {
	_toyOnce.Do(func() {
		q, err := fixedbig.Prime(fixedbig.NewDRBG("groupranking-toy-dl-256"), 255)
		for err == nil {
			p := new(big.Int).Lsh(q, 1)
			p.Add(p, big.NewInt(1))
			if p.ProbablyPrime(32) {
				_toyDL, _toyErr = NewDLGroup("toy-dl-256", p, 40)
				return
			}
			q, err = fixedbig.Prime(fixedbig.NewDRBG(fmt.Sprintf("groupranking-toy-dl-256-%s", q)), 255)
		}
		_toyErr = err
	})
	return _toyDL, _toyErr
}
