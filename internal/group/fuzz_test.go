package group

import (
	"bytes"
	"math/big"
	"testing"
)

func FuzzDLDecode(f *testing.F) {
	g := MODP1024()
	f.Add(g.Encode(g.Generator()))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xFF}, g.ElementLen()))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := g.Decode(data)
		if err != nil {
			return
		}
		// Any accepted element must re-encode to the same bytes and be a
		// quadratic residue of full order (validated via q-exponent).
		if !bytes.Equal(g.Encode(e), data) {
			t.Fatal("decode/encode not idempotent")
		}
		if !g.IsIdentity(g.Exp(e, g.Order())) {
			t.Fatal("accepted element outside the order-q subgroup")
		}
	})
}

func FuzzECDecode(f *testing.F) {
	g := Secp160r1Generic()
	f.Add(g.Encode(g.Generator()))
	f.Add([]byte{0x00})
	f.Add([]byte{0x04, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := g.Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(g.Encode(e), data) {
			t.Fatal("decode/encode not idempotent")
		}
	})
}

func FuzzFe160MulAgainstBig(f *testing.F) {
	p := fe160P.big()
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6))
	f.Add(^uint64(0), ^uint64(0), uint64(0xFFFFFFFF), ^uint64(0), ^uint64(0), uint64(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, a0, a1, a2, b0, b1, b2 uint64) {
		a := fe160{a0, a1, a2 & 0xFFFFFFFF}
		b := fe160{b0, b1, b2 & 0xFFFFFFFF}
		ab, bb := a.big(), b.big()
		if ab.Cmp(p) >= 0 || bb.Cmp(p) >= 0 {
			return // inputs must be reduced field elements
		}
		want := new(big.Int).Mul(ab, bb)
		want.Mod(want, p)
		if got := fe160Mul(a, b).big(); got.Cmp(want) != 0 {
			t.Fatalf("mul(%x, %x): got %x want %x", ab, bb, got, want)
		}
		wantAdd := new(big.Int).Add(ab, bb)
		wantAdd.Mod(wantAdd, p)
		if got := fe160Add(a, b).big(); got.Cmp(wantAdd) != 0 {
			t.Fatalf("add(%x, %x): got %x want %x", ab, bb, got, wantAdd)
		}
		wantSub := new(big.Int).Sub(ab, bb)
		wantSub.Mod(wantSub, p)
		if got := fe160Sub(a, b).big(); got.Cmp(wantSub) != 0 {
			t.Fatalf("sub(%x, %x): got %x want %x", ab, bb, got, wantSub)
		}
	})
}
