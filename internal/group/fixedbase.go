package group

import (
	"math/big"
	"sync"
)

// Fixed-base precomputation: a windowed table for a base that never
// changes within a run. The two such bases in the protocol are the
// group generator g (every ExpGen: key generation, bitwise encryption
// C1 components, proof commitments, exponent encodings) and the joint
// public key y (the y^r mask of every encryption and re-randomisation).
// A radix-2^w table stores base^(d·2^(i·w)) for every window i and
// digit d, turning one exponentiation into at most ⌈l/w⌉ group
// operations with no doublings at all — the classic fixed-base comb.
//
// Counting contract: tables are built and evaluated on the RAW group
// (see Raw), never through the obsv counting wrapper, so a table lookup
// performs zero counted operations by itself. Callers that substitute a
// table evaluation for a Group.Exp call are responsible for keeping the
// observability census identical — either the call still flows through
// the wrapper's Exp (the per-group generator fast path below Exp's
// counting layer), or the caller charges one OpGroupExp manually
// (elgamal.Scheme.WithPrecomp). This is what keeps the cost model's
// closed forms exact under precomputation.

// Unwrapper is implemented by instrumentation wrappers (obsv's counting
// group) that decorate a Group while delegating its arithmetic.
type Unwrapper interface {
	// Underlying returns the wrapped group.
	Underlying() Group
}

// Raw strips every instrumentation wrapper and returns the concrete
// group. Table internals must use it: arithmetic performed while
// building or evaluating a precomputed table is not a protocol
// operation and must not be charged to any party.
func Raw(g Group) Group {
	for {
		u, ok := g.(Unwrapper)
		if !ok {
			return g
		}
		g = u.Underlying()
	}
}

// Window widths. EC combs accumulate in Jacobian coordinates where a
// lookup-add costs ~12 field multiplications, so a narrow window keeps
// the table small at no real cost; DL combs pay a full big.Int modular
// multiplication per window, so a wider window amortises better against
// math/big's Montgomery exponentiation.
const (
	ecCombWindow = 5
	dlCombWindow = 6
)

// FixedBaseTable is a precomputed fixed-base exponentiation table. It
// is safe for concurrent use once built (all state is read-only after
// construction).
type FixedBaseTable struct {
	g    Group // raw group, for Equal/Identity and order reduction
	base Element
	eval func(e *big.Int) Element // e already reduced mod order, e > 0
}

// NewFixedBaseTable precomputes powers of base in g. The group may be
// wrapped (obsv counting); the table always operates on the raw group.
func NewFixedBaseTable(g Group, base Element) *FixedBaseTable {
	raw := Raw(g)
	t := &FixedBaseTable{g: raw, base: base}
	switch cg := raw.(type) {
	case *DLGroup:
		t.eval = newDLComb(cg, base, dlCombWindow)
	case fastSecp160:
		t.eval = newFe160Comb(cg.ECGroup, base, ecCombWindow)
	case *ECGroup:
		t.eval = newECComb(cg, base, ecCombWindow)
	default:
		t.eval = newOpComb(raw, base, ecCombWindow)
	}
	return t
}

// Base returns the element the table was built for.
func (t *FixedBaseTable) Base() Element { return t.base }

// Exp returns base^k. Negative and over-order exponents are reduced
// exactly as Group.Exp does.
func (t *FixedBaseTable) Exp(k *big.Int) Element {
	e := new(big.Int).Mod(k, t.g.Order())
	if e.Sign() == 0 {
		return t.g.Identity()
	}
	return t.eval(e)
}

// combDigits splits e (already reduced, positive) into base-2^w digits,
// little-endian.
func combDigits(e *big.Int, w uint) []uint {
	bits := e.BitLen()
	digits := make([]uint, (bits+int(w)-1)/int(w))
	for i := range digits {
		var d uint
		for b := 0; b < int(w); b++ {
			d |= e.Bit(i*int(w)+b) << b
		}
		digits[i] = d
	}
	return digits
}

// newDLComb builds windows[i][d-1] = base^(d·2^(i·w)) as residues.
func newDLComb(g *DLGroup, base Element, w uint) func(*big.Int) Element {
	b := new(big.Int).Set(g.unwrap(base))
	nWin := (g.q.BitLen() + int(w) - 1) / int(w)
	size := (1 << w) - 1
	windows := make([][]*big.Int, nWin)
	for i := 0; i < nWin; i++ {
		windows[i] = make([]*big.Int, size)
		windows[i][0] = new(big.Int).Set(b)
		for d := 1; d < size; d++ {
			v := new(big.Int).Mul(windows[i][d-1], b)
			windows[i][d] = v.Mod(v, g.p)
		}
		// Next window's base is b^(2^w).
		b = new(big.Int).Mul(windows[i][size-1], b)
		b.Mod(b, g.p)
	}
	return func(e *big.Int) Element {
		acc := big.NewInt(1)
		for i, d := range combDigits(e, w) {
			if d == 0 {
				continue
			}
			acc.Mul(acc, windows[i][d-1])
			acc.Mod(acc, g.p)
		}
		return dlElement{v: acc}
	}
}

// newECComb builds Jacobian windows for the generic curve group. Table
// entries stay in Jacobian coordinates (jacAdd handles arbitrary Z), so
// neither construction nor evaluation needs a field inversion until the
// single final affine projection.
func newECComb(g *ECGroup, base Element, w uint) func(*big.Int) Element {
	b := g.toJac(g.unwrap(base))
	nWin := (g.n.BitLen() + int(w) - 1) / int(w)
	size := (1 << w) - 1
	windows := make([][]jacPoint, nWin)
	for i := 0; i < nWin; i++ {
		windows[i] = make([]jacPoint, size)
		windows[i][0] = b
		for d := 1; d < size; d++ {
			windows[i][d] = g.jacAdd(windows[i][d-1], b)
		}
		b = g.jacAdd(windows[i][size-1], b)
	}
	return func(e *big.Int) Element {
		acc := jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
		for i, d := range combDigits(e, w) {
			if d != 0 {
				acc = g.jacAdd(acc, windows[i][d-1])
			}
		}
		return g.toAffine(acc)
	}
}

// newFe160Comb is the comb over the dedicated secp160r1 limb field.
func newFe160Comb(g *ECGroup, base Element, w uint) func(*big.Int) Element {
	pt := g.unwrap(base)
	if pt.inf {
		// A table for the identity is degenerate; fall back to the
		// generic path (identity^k is the identity anyway).
		return func(*big.Int) Element { return ecPoint{inf: true} }
	}
	b := jac160{x: fe160FromBig(pt.x), y: fe160FromBig(pt.y), z: fe160{1, 0, 0}}
	nWin := (g.n.BitLen() + int(w) - 1) / int(w)
	size := (1 << w) - 1
	windows := make([][]jac160, nWin)
	for i := 0; i < nWin; i++ {
		windows[i] = make([]jac160, size)
		windows[i][0] = b
		for d := 1; d < size; d++ {
			windows[i][d] = add160(windows[i][d-1], b)
		}
		b = add160(windows[i][size-1], b)
	}
	return func(e *big.Int) Element {
		var acc jac160
		for i, d := range combDigits(e, w) {
			if d != 0 {
				acc = add160(acc, windows[i][d-1])
			}
		}
		if acc.z.isZero() {
			return ecPoint{inf: true}
		}
		zInv := fe160Inv(acc.z)
		zInv2 := fe160Sqr(zInv)
		x := fe160Mul(acc.x, zInv2)
		y := fe160Mul(acc.y, fe160Mul(zInv2, zInv))
		return ecPoint{x: x.big(), y: y.big()}
	}
}

// newOpComb is the family-agnostic fallback over Group.Op, used only
// for group implementations without a native comb.
func newOpComb(g Group, base Element, w uint) func(*big.Int) Element {
	b := base
	nWin := (g.Order().BitLen() + int(w) - 1) / int(w)
	size := (1 << w) - 1
	windows := make([][]Element, nWin)
	for i := 0; i < nWin; i++ {
		windows[i] = make([]Element, size)
		windows[i][0] = b
		for d := 1; d < size; d++ {
			windows[i][d] = g.Op(windows[i][d-1], b)
		}
		b = g.Op(windows[i][size-1], b)
	}
	return func(e *big.Int) Element {
		acc := g.Identity()
		for i, d := range combDigits(e, w) {
			if d != 0 {
				acc = g.Op(acc, windows[i][d-1])
			}
		}
		return acc
	}
}

// genTables caches one generator table per concrete group value, so
// every ExpGen — and any Exp whose base turns out to be the generator —
// hits the comb. The named groups are process-wide singletons
// (curveGroups, the MODP vars, ToyDL256), so each table is built exactly
// once per process. The fast secp160r1 wrapper keys separately from the
// generic group it embeds: same curve, different comb backend.
var genTables sync.Map // map[Group]*FixedBaseTable

// generatorTable returns the cached fixed-base table for g's generator,
// building it on first use. Concrete groups (pointer or small struct)
// are comparable, which is all sync.Map needs.
func generatorTable(g Group) *FixedBaseTable {
	raw := Raw(g)
	if t, ok := genTables.Load(raw); ok {
		return t.(*FixedBaseTable)
	}
	t, _ := genTables.LoadOrStore(raw, NewFixedBaseTable(raw, raw.Generator()))
	return t.(*FixedBaseTable)
}
