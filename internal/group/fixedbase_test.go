package group

import (
	"math/big"
	"testing"

	"groupranking/internal/fixedbig"
)

// refExp is a square-and-multiply reference built only on Op, so it is
// independent of both the comb tables and each family's native ladder.
func refExp(g Group, base Element, k *big.Int) Element {
	e := new(big.Int).Mod(k, g.Order())
	acc := g.Identity()
	cur := base
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			acc = g.Op(acc, cur)
		}
		cur = g.Op(cur, cur)
	}
	return acc
}

func fixedBaseGroups(t *testing.T) map[string]Group {
	t.Helper()
	toy, err := ToyDL256()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Group{
		"toy-dl-256":        toy,
		"secp160r1-fast":    Secp160r1(),
		"secp160r1-generic": Secp160r1Generic(),
		"secp224r1":         mustByName(t, "secp224r1"),
	}
}

func mustByName(t *testing.T, name string) Group {
	t.Helper()
	g, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFixedBaseTableMatchesReference(t *testing.T) {
	for name, g := range fixedBaseGroups(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			rng := fixedbig.NewDRBG("fixed-base-" + name)
			scalars := []*big.Int{
				big.NewInt(0),
				big.NewInt(1),
				big.NewInt(2),
				new(big.Int).Set(g.Order()),                       // ≡ 0
				new(big.Int).Sub(g.Order(), big.NewInt(1)),        // inverse of base
				new(big.Int).Neg(big.NewInt(3)),                   // negative reduces mod q
				new(big.Int).Add(g.Order(), big.NewInt(12345678)), // over-order
			}
			for i := 0; i < 5; i++ {
				k, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				scalars = append(scalars, k)
			}

			gen := g.Generator()
			// A random non-generator base exercises the per-base table
			// construction path used for joint public keys.
			r, err := g.RandomScalar(rng)
			if err != nil {
				t.Fatal(err)
			}
			randBase := refExp(g, gen, r)
			for _, base := range []Element{gen, randBase} {
				tab := NewFixedBaseTable(g, base)
				for _, k := range scalars {
					want := refExp(g, base, k)
					if got := tab.Exp(k); !g.Equal(got, want) {
						t.Fatalf("table base/%v scalar %s: comb disagrees with reference", base, k)
					}
					// Group.Exp must agree too: for the generator this is
					// the cached-table fast path inside the concrete Exp.
					if got := g.Exp(base, k); !g.Equal(got, want) {
						t.Fatalf("Exp base/%v scalar %s: group exp disagrees with reference", base, k)
					}
				}
			}
		})
	}
}

func TestFixedBaseTableIdentityBase(t *testing.T) {
	for name, g := range fixedBaseGroups(t) {
		tab := NewFixedBaseTable(g, g.Identity())
		for _, k := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(97)} {
			if !g.IsIdentity(tab.Exp(k)) {
				t.Fatalf("%s: identity^%s != identity", name, k)
			}
		}
	}
}

func TestRawUnwraps(t *testing.T) {
	g := Secp160r1()
	if Raw(g) != g {
		t.Fatal("Raw of a concrete group must be the group itself")
	}
	wrapped := testWrapper{g}
	if Raw(wrapped) != g {
		t.Fatal("Raw must strip Unwrapper layers")
	}
	if Raw(testWrapper{wrapped}) != g {
		t.Fatal("Raw must strip nested Unwrapper layers")
	}
}

type testWrapper struct{ Group }

func (w testWrapper) Underlying() Group { return w.Group }
