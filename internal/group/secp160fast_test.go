package group

import (
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/fixedbig"
)

func TestFe160RoundTrip(t *testing.T) {
	p := fe160P.big()
	want, _ := new(big.Int).SetString("FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF", 16)
	if p.Cmp(want) != 0 {
		t.Fatalf("fe160P constant wrong: %x", p)
	}
	rng := fixedbig.NewDRBG("fe160-rt")
	for i := 0; i < 50; i++ {
		v, err := fixedbig.RandInt(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fe160FromBig(v).big(); got.Cmp(v) != 0 {
			t.Fatalf("round trip: got %x, want %x", got, v)
		}
	}
}

func TestFe160ArithmeticAgainstBig(t *testing.T) {
	p := fe160P.big()
	rng := fixedbig.NewDRBG("fe160-arith")
	for i := 0; i < 300; i++ {
		a, _ := fixedbig.RandInt(rng, p)
		b, _ := fixedbig.RandInt(rng, p)
		fa, fb := fe160FromBig(a), fe160FromBig(b)

		sum := new(big.Int).Add(a, b)
		sum.Mod(sum, p)
		if got := fe160Add(fa, fb).big(); got.Cmp(sum) != 0 {
			t.Fatalf("add: got %x want %x (a=%x b=%x)", got, sum, a, b)
		}
		diff := new(big.Int).Sub(a, b)
		diff.Mod(diff, p)
		if got := fe160Sub(fa, fb).big(); got.Cmp(diff) != 0 {
			t.Fatalf("sub: got %x want %x", got, diff)
		}
		prod := new(big.Int).Mul(a, b)
		prod.Mod(prod, p)
		if got := fe160Mul(fa, fb).big(); got.Cmp(prod) != 0 {
			t.Fatalf("mul: got %x want %x (a=%x b=%x)", got, prod, a, b)
		}
	}
}

func TestFe160EdgeValues(t *testing.T) {
	p := fe160P.big()
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	edges := []*big.Int{big.NewInt(0), big.NewInt(1), pm1, new(big.Int).Rsh(p, 1)}
	for _, a := range edges {
		for _, b := range edges {
			fa, fb := fe160FromBig(a), fe160FromBig(b)
			prod := new(big.Int).Mul(a, b)
			prod.Mod(prod, p)
			if got := fe160Mul(fa, fb).big(); got.Cmp(prod) != 0 {
				t.Fatalf("mul edge: a=%x b=%x got %x want %x", a, b, got, prod)
			}
			sum := new(big.Int).Add(a, b)
			sum.Mod(sum, p)
			if got := fe160Add(fa, fb).big(); got.Cmp(sum) != 0 {
				t.Fatalf("add edge: a=%x b=%x got %x want %x", a, b, got, sum)
			}
		}
	}
}

func TestFe160Inv(t *testing.T) {
	p := fe160P.big()
	rng := fixedbig.NewDRBG("fe160-inv")
	for i := 0; i < 10; i++ {
		a, _ := fixedbig.RandNonZero(rng, p)
		inv := fe160Inv(fe160FromBig(a))
		want := new(big.Int).ModInverse(a, p)
		if inv.big().Cmp(want) != 0 {
			t.Fatalf("inv: got %x want %x", inv.big(), want)
		}
	}
}

func TestFastExpMatchesGeneric(t *testing.T) {
	fast := Secp160r1()
	slow := Secp160r1Generic()
	rng := fixedbig.NewDRBG("fast-vs-generic")
	base := fast.Generator()
	for i := 0; i < 15; i++ {
		k, err := fast.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		a := fast.Exp(base, k)
		b := slow.Exp(base, k)
		if !slow.Equal(a, b) {
			t.Fatalf("fast and generic Exp disagree for k=%x", k)
		}
		base = a // walk through varied points
	}
	// Small scalars and identities.
	f := func(k uint8) bool {
		a := fast.Exp(fast.Generator(), big.NewInt(int64(k)))
		b := slow.Exp(slow.Generator(), big.NewInt(int64(k)))
		return slow.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if !fast.IsIdentity(fast.Exp(fast.Generator(), big.NewInt(0))) {
		t.Error("k=0 must give the identity")
	}
	if !fast.IsIdentity(fast.Exp(fast.Identity(), big.NewInt(5))) {
		t.Error("identity base must stay identity")
	}
	// Order annihilates.
	if !fast.IsIdentity(fast.Exp(fast.Generator(), fast.Order())) {
		t.Error("n·G must be the identity")
	}
	// Negative exponents.
	neg := fast.Exp(fast.Generator(), big.NewInt(-3))
	pos := slow.Inv(slow.Exp(slow.Generator(), big.NewInt(3)))
	if !slow.Equal(neg, pos) {
		t.Error("negative exponent disagrees")
	}
}

func BenchmarkExpFast160(b *testing.B) {
	g := Secp160r1()
	k, _ := g.RandomScalar(fixedbig.NewDRBG("bench-fast"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Exp(g.Generator(), k)
	}
}

func BenchmarkExpGeneric160(b *testing.B) {
	g := Secp160r1Generic()
	k, _ := g.RandomScalar(fixedbig.NewDRBG("bench-slow"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Exp(g.Generator(), k)
	}
}

func BenchmarkExpDL1024(b *testing.B) {
	g := MODP1024()
	k, _ := g.RandomScalar(fixedbig.NewDRBG("bench-dl"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Exp(g.Generator(), k)
	}
}
