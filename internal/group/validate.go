package group

import (
	"fmt"
	"math/big"
)

// Validate checks that an element received from an untrusted peer is a
// well-formed member of g. Gob decoding (wire.go) reconstructs elements
// from raw coordinates without knowing which group they belong to, so
// the protocol layer MUST call Validate on every foreign element before
// using it: an off-curve point or a non-residue silently degrades the
// DDH group to one where the attacker can solve discrete logs on a
// small-order twist (the classic invalid-curve attack).
func Validate(g Group, e Element) error {
	if e == nil {
		return fmt.Errorf("group: %s received nil element", g.Name())
	}
	switch cg := Raw(g).(type) {
	case *DLGroup:
		return cg.validateElement(e)
	case fastSecp160:
		return cg.ECGroup.validateElement(e)
	case *ECGroup:
		return cg.validateElement(e)
	default:
		// Unknown group implementation: fall back to the canonical
		// encoding round trip, which runs the group's own membership
		// checks in Decode.
		if _, err := g.Decode(g.Encode(e)); err != nil {
			return fmt.Errorf("group: %s received invalid element: %w", g.Name(), err)
		}
		return nil
	}
}

// UnsafeElementFromCoords fabricates an elliptic-curve element from raw
// affine coordinates with NO membership check, exactly as gob decoding
// reconstructs a point a peer sent over the wire. It exists solely so
// tests can impersonate a malicious peer mounting an invalid-curve
// attack against Validate's call sites; protocol code must never use
// it.
func UnsafeElementFromCoords(g Group, x, y *big.Int) (Element, error) {
	switch Raw(g).(type) {
	case fastSecp160, *ECGroup:
		return ecPoint{x: new(big.Int).Set(x), y: new(big.Int).Set(y)}, nil
	default:
		return nil, fmt.Errorf("group: %s is not an elliptic-curve group", g.Name())
	}
}

// validateElement checks residue range and quadratic residuosity, the
// membership test for the order-q subgroup of Z_p^*.
func (d *DLGroup) validateElement(e Element) error {
	de, ok := e.(dlElement)
	if !ok {
		return fmt.Errorf("group: element of type %T received for %s group", e, d.name)
	}
	v := de.v
	if v == nil || v.Sign() <= 0 || v.Cmp(d.p) >= 0 {
		return fmt.Errorf("group: %s element out of range", d.name)
	}
	if big.Jacobi(v, d.p) != 1 {
		return fmt.Errorf("group: %s element is not in the quadratic-residue subgroup", d.name)
	}
	return nil
}

// validateElement checks coordinate range and the curve equation. The
// curves in this repository all have cofactor 1, so on-curve already
// implies membership in the prime-order group.
func (g *ECGroup) validateElement(e Element) error {
	pt, ok := e.(ecPoint)
	if !ok {
		return fmt.Errorf("group: element of type %T received for %s group", e, g.name)
	}
	if pt.inf {
		return nil
	}
	if pt.x == nil || pt.y == nil ||
		pt.x.Sign() < 0 || pt.y.Sign() < 0 ||
		pt.x.Cmp(g.p) >= 0 || pt.y.Cmp(g.p) >= 0 {
		return fmt.Errorf("group: %s point coordinate out of range", g.name)
	}
	if !g.onCurve(pt.x, pt.y) {
		return fmt.Errorf("group: %s point is not on the curve", g.name)
	}
	return nil
}
