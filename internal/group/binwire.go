package group

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Hand-rolled binary wire form for group elements, the wirecodec
// replacement for the gob coordinate encoding in wire.go. Like gob
// decoding it runs with no group context, so it enforces structural
// sanity only (bounded, non-negative coordinates); full membership —
// curve equation, residue class — remains the protocol layer's job via
// group.Validate on every element received from a peer.
//
// Layout (all lengths big-endian):
//
//	DL residue:   0x01 ‖ u16 len ‖ magnitude bytes (minimal, value ≥ 1)
//	EC point:     0x02 ‖ u16 xlen ‖ X ‖ u16 ylen ‖ Y (minimal magnitudes)
//	EC infinity:  0x03
//
// Magnitudes are emitted by big.Int.Bytes, so every value has exactly
// one encoding and the form is safe to hash for the canonical echo
// digest.
const (
	elemWireDL    = 0x01
	elemWireEC    = 0x02
	elemWireECInf = 0x03
)

// maxElemWireCoord bounds one coordinate's byte length, mirroring the
// 8192-bit cap the gob path enforces against memory-pressure payloads.
const maxElemWireCoord = 8192 / 8

// AppendElementWire appends e's structural wire form to dst. It fails
// on foreign Element implementations rather than guessing a layout.
func AppendElementWire(dst []byte, e Element) ([]byte, error) {
	switch v := e.(type) {
	case dlElement:
		b := v.v.Bytes()
		if len(b) == 0 || len(b) > maxElemWireCoord {
			return nil, fmt.Errorf("group: residue out of range")
		}
		dst = append(dst, elemWireDL)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
		return append(dst, b...), nil
	case ecPoint:
		if v.inf {
			return append(dst, elemWireECInf), nil
		}
		xb, yb := v.x.Bytes(), v.y.Bytes()
		if len(xb) > maxElemWireCoord || len(yb) > maxElemWireCoord {
			return nil, fmt.Errorf("group: oversized point coordinate")
		}
		dst = append(dst, elemWireEC)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(xb)))
		dst = append(dst, xb...)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(yb)))
		return append(dst, yb...), nil
	default:
		return nil, fmt.Errorf("group: element type %T has no wire form", e)
	}
}

// DecodeElementWire parses one structural element form from the front
// of data, returning the element and the bytes consumed. Truncated or
// malformed input is an error, never a panic.
func DecodeElementWire(data []byte) (Element, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("group: truncated element encoding")
	}
	switch data[0] {
	case elemWireDL:
		b, n, err := readCoord(data[1:])
		if err != nil {
			return nil, 0, err
		}
		v := new(big.Int).SetBytes(b)
		if v.Sign() <= 0 {
			return nil, 0, fmt.Errorf("group: residue out of range")
		}
		return dlElement{v: v}, 1 + n, nil
	case elemWireEC:
		xb, nx, err := readCoord(data[1:])
		if err != nil {
			return nil, 0, err
		}
		yb, ny, err := readCoord(data[1+nx:])
		if err != nil {
			return nil, 0, err
		}
		return ecPoint{x: new(big.Int).SetBytes(xb), y: new(big.Int).SetBytes(yb)}, 1 + nx + ny, nil
	case elemWireECInf:
		return ecPoint{inf: true}, 1, nil
	default:
		return nil, 0, fmt.Errorf("group: unknown element wire tag 0x%02x", data[0])
	}
}

// readCoord parses one u16-length-prefixed magnitude.
func readCoord(data []byte) ([]byte, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("group: truncated element encoding")
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > maxElemWireCoord {
		return nil, 0, fmt.Errorf("group: oversized point coordinate")
	}
	if len(data) < 2+n {
		return nil, 0, fmt.Errorf("group: truncated element encoding")
	}
	return data[2 : 2+n], 2 + n, nil
}

// ElementPrototypes returns one zero value per concrete Element
// implementation, so the wirecodec registry can key its encoder table
// by dynamic type without this package importing it.
func ElementPrototypes() []Element {
	return []Element{dlElement{}, ecPoint{}}
}
