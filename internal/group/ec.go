package group

import (
	"fmt"
	"io"
	"math/big"
)

// ECGroup is a prime-order group of points on a short-Weierstrass curve
// y² = x³ + ax + b over F_p ("ECC" in the paper's terminology). The curve
// arithmetic is implemented from scratch with Jacobian projective
// coordinates; no crypto/elliptic machinery is used.
type ECGroup struct {
	name     string
	p        *big.Int // field prime
	a, b     *big.Int // curve coefficients
	gx, gy   *big.Int // base point
	n        *big.Int // (prime) order of the base point
	elemLen  int      // compressed point encoding length
	secLevel int
}

// ecPoint is an affine point; inf marks the point at infinity.
type ecPoint struct {
	x, y *big.Int
	inf  bool
}

func (ecPoint) groupElement() {}

// jacPoint is an internal Jacobian-coordinate point (X/Z², Y/Z³).
// Z = 0 encodes the point at infinity.
type jacPoint struct {
	x, y, z *big.Int
}

var _ Group = (*ECGroup)(nil)

// CurveSpec carries the domain parameters for NewECGroup.
type CurveSpec struct {
	Name         string
	P, A, B      *big.Int
	Gx, Gy       *big.Int
	N            *big.Int
	SecurityBits int
}

// NewECGroup validates a curve specification (prime field, prime order,
// base point on curve, n·G = ∞) and returns the group.
func NewECGroup(spec CurveSpec) (*ECGroup, error) {
	if !spec.P.ProbablyPrime(32) {
		return nil, fmt.Errorf("group: %s field modulus is not prime", spec.Name)
	}
	if !spec.N.ProbablyPrime(32) {
		return nil, fmt.Errorf("group: %s order is not prime", spec.Name)
	}
	g := &ECGroup{
		name:     spec.Name,
		p:        spec.P,
		a:        new(big.Int).Mod(spec.A, spec.P),
		b:        new(big.Int).Mod(spec.B, spec.P),
		gx:       spec.Gx,
		gy:       spec.Gy,
		n:        spec.N,
		elemLen:  1 + (spec.P.BitLen()+7)/8,
		secLevel: spec.SecurityBits,
	}
	if !g.onCurve(spec.Gx, spec.Gy) {
		return nil, fmt.Errorf("group: %s base point is not on the curve", spec.Name)
	}
	if !g.IsIdentity(g.Exp(g.Generator(), spec.N)) {
		return nil, fmt.Errorf("group: %s base point order is not n", spec.Name)
	}
	return g, nil
}

// onCurve reports whether (x, y) satisfies the curve equation.
func (g *ECGroup) onCurve(x, y *big.Int) bool {
	lhs := new(big.Int).Mul(y, y)
	lhs.Mod(lhs, g.p)
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, new(big.Int).Mul(g.a, x))
	rhs.Add(rhs, g.b)
	rhs.Mod(rhs, g.p)
	return lhs.Cmp(rhs) == 0
}

// Name implements Group.
func (g *ECGroup) Name() string { return g.name }

// Order implements Group.
func (g *ECGroup) Order() *big.Int { return g.n }

// FieldPrime returns the underlying field modulus p.
func (g *ECGroup) FieldPrime() *big.Int { return g.p }

// Generator implements Group.
func (g *ECGroup) Generator() Element { return ecPoint{x: g.gx, y: g.gy} }

// Identity implements Group.
func (g *ECGroup) Identity() Element { return ecPoint{inf: true} }

func (g *ECGroup) unwrap(e Element) ecPoint {
	pt, ok := e.(ecPoint)
	if !ok {
		panic(mismatchPanic(g.name, e))
	}
	return pt
}

// toJac lifts an affine point to Jacobian coordinates.
func (g *ECGroup) toJac(pt ecPoint) jacPoint {
	if pt.inf {
		return jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	return jacPoint{x: new(big.Int).Set(pt.x), y: new(big.Int).Set(pt.y), z: big.NewInt(1)}
}

// toAffine projects a Jacobian point back to affine coordinates.
func (g *ECGroup) toAffine(j jacPoint) ecPoint {
	if j.z.Sign() == 0 {
		return ecPoint{inf: true}
	}
	zinv := new(big.Int).ModInverse(j.z, g.p)
	zinv2 := new(big.Int).Mul(zinv, zinv)
	zinv2.Mod(zinv2, g.p)
	x := new(big.Int).Mul(j.x, zinv2)
	x.Mod(x, g.p)
	zinv3 := zinv2.Mul(zinv2, zinv)
	zinv3.Mod(zinv3, g.p)
	y := new(big.Int).Mul(j.y, zinv3)
	y.Mod(y, g.p)
	return ecPoint{x: x, y: y}
}

// jacDouble returns 2P using the general-a Jacobian doubling formula.
func (g *ECGroup) jacDouble(pt jacPoint) jacPoint {
	if pt.z.Sign() == 0 || pt.y.Sign() == 0 {
		return jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	p := g.p
	y2 := new(big.Int).Mul(pt.y, pt.y) // Y²
	y2.Mod(y2, p)
	s := new(big.Int).Mul(pt.x, y2) // X·Y²
	s.Lsh(s, 2)                     // S = 4·X·Y²
	s.Mod(s, p)
	x2 := new(big.Int).Mul(pt.x, pt.x) // X²
	x2.Mod(x2, p)
	m := new(big.Int).Lsh(x2, 1)
	m.Add(m, x2) // 3X²
	z2 := new(big.Int).Mul(pt.z, pt.z)
	z2.Mod(z2, p)
	z4 := new(big.Int).Mul(z2, z2)
	z4.Mod(z4, p)
	m.Add(m, z4.Mul(z4, g.a)) // M = 3X² + a·Z⁴
	m.Mod(m, p)
	x3 := new(big.Int).Mul(m, m)
	x3.Sub(x3, new(big.Int).Lsh(s, 1)) // X' = M² − 2S
	x3.Mod(x3, p)
	y4 := y2.Mul(y2, y2) // Y⁴ (reuses y2)
	y4.Lsh(y4, 3)        // 8Y⁴
	y3 := new(big.Int).Sub(s, x3)
	y3.Mul(y3, m)
	y3.Sub(y3, y4) // Y' = M(S−X') − 8Y⁴
	y3.Mod(y3, p)
	z3 := new(big.Int).Mul(pt.y, pt.z)
	z3.Lsh(z3, 1) // Z' = 2YZ
	z3.Mod(z3, p)
	return jacPoint{x: x3, y: y3, z: z3}
}

// jacAdd returns P+Q.
func (g *ECGroup) jacAdd(p1, p2 jacPoint) jacPoint {
	if p1.z.Sign() == 0 {
		return p2
	}
	if p2.z.Sign() == 0 {
		return p1
	}
	p := g.p
	z1z1 := new(big.Int).Mul(p1.z, p1.z)
	z1z1.Mod(z1z1, p)
	z2z2 := new(big.Int).Mul(p2.z, p2.z)
	z2z2.Mod(z2z2, p)
	u1 := new(big.Int).Mul(p1.x, z2z2)
	u1.Mod(u1, p)
	u2 := new(big.Int).Mul(p2.x, z1z1)
	u2.Mod(u2, p)
	s1 := new(big.Int).Mul(p1.y, z2z2)
	s1.Mul(s1, p2.z)
	s1.Mod(s1, p)
	s2 := new(big.Int).Mul(p2.y, z1z1)
	s2.Mul(s2, p1.z)
	s2.Mod(s2, p)
	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			return jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
		}
		return g.jacDouble(p1)
	}
	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, p)
	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, p)
	h2 := new(big.Int).Mul(h, h)
	h2.Mod(h2, p)
	h3 := new(big.Int).Mul(h2, h)
	h3.Mod(h3, p)
	u1h2 := new(big.Int).Mul(u1, h2)
	u1h2.Mod(u1h2, p)
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, h3)
	x3.Sub(x3, new(big.Int).Lsh(u1h2, 1)) // X3 = R² − H³ − 2·U1·H²
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(u1h2, x3)
	y3.Mul(y3, r)
	y3.Sub(y3, new(big.Int).Mul(s1, h3)) // Y3 = R(U1H² − X3) − S1·H³
	y3.Mod(y3, p)
	z3 := new(big.Int).Mul(h, p1.z)
	z3.Mul(z3, p2.z)
	z3.Mod(z3, p)
	return jacPoint{x: x3, y: y3, z: z3}
}

// Op implements Group (point addition).
func (g *ECGroup) Op(a, b Element) Element {
	return g.toAffine(g.jacAdd(g.toJac(g.unwrap(a)), g.toJac(g.unwrap(b))))
}

// Inv implements Group (point negation).
func (g *ECGroup) Inv(a Element) Element {
	pt := g.unwrap(a)
	if pt.inf {
		return pt
	}
	return ecPoint{x: new(big.Int).Set(pt.x), y: new(big.Int).Sub(g.p, pt.y)}
}

// jacNeg negates a Jacobian point.
func (g *ECGroup) jacNeg(p jacPoint) jacPoint {
	if p.z.Sign() == 0 {
		return p
	}
	return jacPoint{x: p.x, y: new(big.Int).Sub(g.p, p.y), z: p.z}
}

// Exp implements Group (scalar multiplication). It uses a width-4
// signed-digit (wNAF) ladder: eight precomputed odd multiples cut the
// expected additions from l/2 to about l/5, which matters because the
// unlinkable comparison phase performs O(l·n²) of these.
func (g *ECGroup) Exp(a Element, k *big.Int) Element {
	pt := g.unwrap(a)
	if !pt.inf && pt.x.Cmp(g.gx) == 0 && pt.y.Cmp(g.gy) == 0 {
		// Fixed-base fast path for the generator (see dl.go): one
		// cached comb table replaces the wNAF ladder, below the obsv
		// counting layer so exp counts are unchanged.
		return generatorTable(g).Exp(k)
	}
	e := new(big.Int).Mod(k, g.n)
	if e.Sign() == 0 || pt.inf {
		return ecPoint{inf: true}
	}
	base := g.toJac(pt)
	// Odd multiples 1P, 3P, …, 15P.
	var pre [8]jacPoint
	pre[0] = base
	dbl := g.jacDouble(base)
	for i := 1; i < 8; i++ {
		pre[i] = g.jacAdd(pre[i-1], dbl)
	}
	digits := wnafDigits(e, 4)
	acc := jacPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	for i := len(digits) - 1; i >= 0; i-- {
		acc = g.jacDouble(acc)
		switch d := digits[i]; {
		case d > 0:
			acc = g.jacAdd(acc, pre[d>>1])
		case d < 0:
			acc = g.jacAdd(acc, g.jacNeg(pre[(-d)>>1]))
		}
	}
	return g.toAffine(acc)
}

// wnafDigits returns the width-w non-adjacent form of e (little-endian):
// each digit is zero or odd in (−2^w/2, 2^w/2), with at most one non-zero
// digit in any w consecutive positions.
func wnafDigits(e *big.Int, w uint) []int8 {
	mod := int64(1) << w
	x := new(big.Int).Set(e)
	out := make([]int8, 0, x.BitLen()+1)
	tmp := new(big.Int)
	for x.Sign() > 0 {
		var d int64
		if x.Bit(0) == 1 {
			d = tmp.And(x, big.NewInt(mod-1)).Int64()
			if d >= mod/2 {
				d -= mod
			}
			x.Sub(x, big.NewInt(d))
		}
		out = append(out, int8(d))
		x.Rsh(x, 1)
	}
	return out
}

// Equal implements Group.
func (g *ECGroup) Equal(a, b Element) bool {
	pa, pb := g.unwrap(a), g.unwrap(b)
	if pa.inf || pb.inf {
		return pa.inf == pb.inf
	}
	return pa.x.Cmp(pb.x) == 0 && pa.y.Cmp(pb.y) == 0
}

// IsIdentity implements Group.
func (g *ECGroup) IsIdentity(a Element) bool { return g.unwrap(a).inf }

// Encode implements Group using the compressed SEC1 encoding
// (0x02 | parity(Y)) ‖ X: one byte of Y-parity tag plus the fixed-width
// X coordinate, 1+⌈log₂p/8⌉ bytes — roughly half the uncompressed form,
// which is the unit every nominal byte count on the wire is charged in.
// The point at infinity encodes as ElementLen() zero bytes (a padded
// SEC1 0x00 prefix), keeping every element — identity included — at the
// fixed width the Group contract promises; the identity arises
// legitimately whenever an exponent hits zero (τ = 0, the comparison
// circuit's signal value, after the last decryption layer).
func (g *ECGroup) Encode(a Element) []byte {
	return g.AppendElement(make([]byte, 0, g.elemLen), a)
}

// AppendElement implements Group without allocating when dst has
// capacity: the compressed point is written directly into the grown
// tail.
func (g *ECGroup) AppendElement(dst []byte, a Element) []byte {
	pt := g.unwrap(a)
	n := len(dst)
	dst = append(dst, make([]byte, g.elemLen)...)
	if pt.inf {
		return dst
	}
	dst[n] = 0x02 | byte(pt.y.Bit(0))
	pt.x.FillBytes(dst[n+1:])
	return dst
}

// Decode implements Group, decompressing the Y coordinate (a modular
// square root — big.Int.ModSqrt handles both p ≡ 3 (mod 4) and the
// Tonelli–Shanks case) and thereby verifying the point lies on the
// curve: an X with no square root on the right-hand side is exactly an
// off-curve point. Only fixed-width encodings are accepted, so every
// element has exactly one valid encoding.
func (g *ECGroup) Decode(data []byte) (Element, error) {
	if len(data) != g.elemLen {
		return nil, fmt.Errorf("group: malformed %s point encoding", g.name)
	}
	if data[0] == 0x00 {
		for _, b := range data[1:] {
			if b != 0 {
				return nil, fmt.Errorf("group: malformed %s point encoding", g.name)
			}
		}
		return ecPoint{inf: true}, nil
	}
	if data[0] != 0x02 && data[0] != 0x03 {
		return nil, fmt.Errorf("group: malformed %s point encoding", g.name)
	}
	x := new(big.Int).SetBytes(data[1:])
	if x.Cmp(g.p) >= 0 {
		return nil, fmt.Errorf("group: %s point is not on the curve", g.name)
	}
	// y² = x³ + ax + b
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, new(big.Int).Mul(g.a, x))
	rhs.Add(rhs, g.b)
	rhs.Mod(rhs, g.p)
	y := new(big.Int).ModSqrt(rhs, g.p)
	if y == nil {
		return nil, fmt.Errorf("group: %s point is not on the curve", g.name)
	}
	if uint(data[0]&1) != y.Bit(0) {
		if y.Sign() == 0 {
			// y = 0 would be a point of order 2, impossible in a
			// prime-order group; its only valid tag is the even one.
			return nil, fmt.Errorf("group: %s point is not on the curve", g.name)
		}
		y.Sub(g.p, y)
	}
	return ecPoint{x: x, y: y}, nil
}

// ElementLen implements Group.
func (g *ECGroup) ElementLen() int { return g.elemLen }

// RandomScalar implements Group.
func (g *ECGroup) RandomScalar(rng io.Reader) (*big.Int, error) {
	return randomScalar(rng, g.n)
}

// SecurityBits implements Group.
func (g *ECGroup) SecurityBits() int { return g.secLevel }
