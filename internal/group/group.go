// Package group provides the prime-order cyclic groups underlying the
// framework's cryptography: quadratic-residue subgroups of safe primes
// ("DL" groups, Section IV-B of the paper) and short-Weierstrass elliptic
// curves ("ECC" groups). Both families are implemented from scratch over
// math/big.
//
// The decisional Diffie-Hellman problem is believed hard in every group
// constructed here, which is the assumption the framework's security proofs
// rest on. The implementations favour clarity over side-channel resistance:
// scalar arithmetic is not constant time. That is adequate for the
// honest-but-curious simulations in this repository and is called out in
// the README.
package group

import (
	"fmt"
	"io"
	"math/big"

	"groupranking/internal/fixedbig"
)

// Element is an opaque element of a Group. Elements are immutable; all
// operations allocate fresh results. An Element must only be used with the
// Group that produced it — mixing elements across groups is a programming
// error and panics with a descriptive message.
type Element interface {
	groupElement()
}

// Group is a cyclic group of prime order in which DDH is assumed hard.
type Group interface {
	// Name identifies the concrete group (e.g. "modp-1024", "secp160r1").
	Name() string
	// Order returns the (prime) group order q. Callers must not mutate it.
	Order() *big.Int
	// Generator returns the fixed generator g.
	Generator() Element
	// Identity returns the neutral element.
	Identity() Element
	// Op returns a∘b.
	Op(a, b Element) Element
	// Inv returns a⁻¹.
	Inv(a Element) Element
	// Exp returns a^k for any integer k (negative exponents allowed).
	Exp(a Element, k *big.Int) Element
	// Equal reports whether two elements are the same group element.
	Equal(a, b Element) bool
	// IsIdentity reports whether a is the neutral element.
	IsIdentity(a Element) bool
	// Encode serialises an element into exactly ElementLen bytes.
	// Every element, the identity included, has one fixed-width
	// canonical encoding.
	Encode(a Element) []byte
	// AppendElement appends the canonical encoding of a to dst and
	// returns the extended slice, exactly ElementLen bytes longer. It
	// is the allocation-free form of Encode for hot serialisation
	// paths: a caller that reuses dst across elements amortises every
	// buffer to zero allocations.
	AppendElement(dst []byte, a Element) []byte
	// Decode parses an encoded element, verifying group membership.
	Decode(data []byte) (Element, error)
	// ElementLen is the encoded length in bytes of every element; it is
	// the ciphertext-size unit used by the communication cost model.
	ElementLen() int
	// RandomScalar returns a uniform scalar in [1, q).
	RandomScalar(rng io.Reader) (*big.Int, error)
	// SecurityBits is the symmetric-equivalent security level following
	// the NIST FIPS 140-2 implementation guidance cited by the paper
	// (e.g. modp-1024 and secp160r1 are both 80-bit).
	SecurityBits() int
}

// ExpGen returns g^k in the given group. It is a convenience wrapper used
// pervasively by the ElGamal and ZKP layers.
func ExpGen(g Group, k *big.Int) Element {
	return g.Exp(g.Generator(), k)
}

// randomScalar implements the shared RandomScalar logic.
func randomScalar(rng io.Reader, q *big.Int) (*big.Int, error) {
	k, err := fixedbig.RandNonZero(rng, q)
	if err != nil {
		return nil, fmt.Errorf("group: sampling scalar: %w", err)
	}
	return k, nil
}

// mismatchPanic reports use of a foreign element type with a group.
func mismatchPanic(group string, e Element) string {
	return fmt.Sprintf("group: element of type %T used with %s group", e, group)
}
