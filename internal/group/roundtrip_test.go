package group

import (
	"bytes"
	"math/big"
	"testing"
)

// allNamedGroups returns every registered group plus the generic
// (non-assembly-path) secp160r1 implementation.
func allNamedGroups(t *testing.T) []Group {
	t.Helper()
	names := []string{"modp-1024", "modp-2048", "modp-3072", "toy-dl-256",
		"secp160r1", "secp224r1", "secp256r1"}
	groups := make([]Group, 0, len(names)+1)
	for _, name := range names {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, g)
	}
	return append(groups, Secp160r1Generic())
}

// TestEncodeDecodeRoundTrip is the satellite property test for the
// fixed-width encoding contract: for EVERY group — the identity
// included — Encode emits exactly ElementLen bytes and Decode accepts
// them back to an equal element. Before the EC identity fix, the
// identity of the curve groups encoded as a single 0x00 byte, breaking
// the fixed-width invariant that the chain commitment hash and the
// elgamal plaintext padding both rely on.
func TestEncodeDecodeRoundTripAllGroups(t *testing.T) {
	for _, g := range allNamedGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			q := g.Order()
			scalars := []*big.Int{
				big.NewInt(0), // identity
				big.NewInt(1), // generator
				big.NewInt(2),
				big.NewInt(12345678901),
				new(big.Int).Sub(q, big.NewInt(1)),
				new(big.Int).Rsh(q, 1),
			}
			for _, k := range scalars {
				e := ExpGen(g, k)
				enc := g.Encode(e)
				if len(enc) != g.ElementLen() {
					t.Fatalf("g^%v encodes to %d bytes, ElementLen is %d", k, len(enc), g.ElementLen())
				}
				dec, err := g.Decode(enc)
				if err != nil {
					t.Fatalf("decoding g^%v's own encoding: %v", k, err)
				}
				if !g.Equal(dec, e) {
					t.Fatalf("g^%v does not round-trip through Encode/Decode", k)
				}
			}
		})
	}
}

// TestECIdentityEncodingRegression pins the identity-encoding bugfix:
// the point at infinity must encode as ElementLen zero bytes (so every
// element has one fixed-width canonical form), and the legacy one-byte
// {0x00} form must be rejected rather than silently widened.
func TestECIdentityEncodingRegression(t *testing.T) {
	for _, gg := range []Group{Secp160r1(), Secp160r1Generic(), Secp224r1(), Secp256r1()} {
		enc := gg.Encode(gg.Identity())
		if len(enc) != gg.ElementLen() {
			t.Errorf("%s: identity encodes to %d bytes, want ElementLen %d",
				gg.Name(), len(enc), gg.ElementLen())
		}
		if !bytes.Equal(enc, make([]byte, gg.ElementLen())) {
			t.Errorf("%s: identity encoding is not all-zero", gg.Name())
		}
		dec, err := gg.Decode(enc)
		if err != nil {
			t.Errorf("%s: fixed-width identity rejected: %v", gg.Name(), err)
		} else if !gg.IsIdentity(dec) {
			t.Errorf("%s: fixed-width identity decodes to a non-identity", gg.Name())
		}
		if _, err := gg.Decode([]byte{0x00}); err == nil {
			t.Errorf("%s: legacy one-byte identity encoding accepted", gg.Name())
		}
	}
}

// TestValidateRejectsOffCurvePoint covers the invalid-curve satellite
// at the group layer: a structurally well-formed point that is not on
// the curve must fail Validate for both secp160r1 implementations.
func TestValidateRejectsOffCurvePoint(t *testing.T) {
	for _, g := range []Group{Secp160r1(), Secp160r1Generic(), Secp224r1()} {
		evil, err := UnsafeElementFromCoords(g, big.NewInt(1), big.NewInt(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, evil); err == nil {
			t.Errorf("%s: off-curve point (1,1) passed Validate", g.Name())
		}
		if err := Validate(g, g.Generator()); err != nil {
			t.Errorf("%s: generator failed Validate: %v", g.Name(), err)
		}
		if err := Validate(g, g.Identity()); err != nil {
			t.Errorf("%s: identity failed Validate: %v", g.Name(), err)
		}
	}
}
