package group

import (
	"bytes"
	"encoding/gob"
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/fixedbig"
)

// testGroups returns one small generated DL group (fast) plus the fixed
// production groups that are cheap enough to exercise in unit tests.
func testGroups(t *testing.T) []Group {
	t.Helper()
	dl, err := GenerateDLGroup(128, fixedbig.NewDRBG("group-test"))
	if err != nil {
		t.Fatalf("GenerateDLGroup: %v", err)
	}
	return []Group{dl, MODP1024(), Secp160r1(), Secp224r1(), Secp256r1()}
}

func TestGroupAxioms(t *testing.T) {
	for _, g := range testGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rng := fixedbig.NewDRBG("axioms-" + g.Name())
			a := ExpGen(g, mustScalar(t, g, rng))
			b := ExpGen(g, mustScalar(t, g, rng))
			c := ExpGen(g, mustScalar(t, g, rng))

			// Associativity.
			if !g.Equal(g.Op(g.Op(a, b), c), g.Op(a, g.Op(b, c))) {
				t.Error("associativity failed")
			}
			// Identity.
			if !g.Equal(g.Op(a, g.Identity()), a) {
				t.Error("right identity failed")
			}
			if !g.Equal(g.Op(g.Identity(), a), a) {
				t.Error("left identity failed")
			}
			// Inverse.
			if !g.IsIdentity(g.Op(a, g.Inv(a))) {
				t.Error("inverse failed")
			}
			// Commutativity (all our groups are abelian).
			if !g.Equal(g.Op(a, b), g.Op(b, a)) {
				t.Error("commutativity failed")
			}
			// Generator order: g^q = identity.
			if !g.IsIdentity(ExpGen(g, g.Order())) {
				t.Error("generator order is not q")
			}
			if g.IsIdentity(g.Generator()) {
				t.Error("generator is the identity")
			}
		})
	}
}

func TestExpLaws(t *testing.T) {
	for _, g := range testGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rng := fixedbig.NewDRBG("exp-" + g.Name())
			x := mustScalar(t, g, rng)
			y := mustScalar(t, g, rng)
			base := ExpGen(g, mustScalar(t, g, rng))

			// a^(x+y) = a^x ∘ a^y.
			sum := new(big.Int).Add(x, y)
			if !g.Equal(g.Exp(base, sum), g.Op(g.Exp(base, x), g.Exp(base, y))) {
				t.Error("exponent addition law failed")
			}
			// (a^x)^y = a^(xy).
			prod := new(big.Int).Mul(x, y)
			if !g.Equal(g.Exp(g.Exp(base, x), y), g.Exp(base, prod)) {
				t.Error("exponent multiplication law failed")
			}
			// a^0 = identity, a^1 = a.
			if !g.IsIdentity(g.Exp(base, big.NewInt(0))) {
				t.Error("a^0 is not identity")
			}
			if !g.Equal(g.Exp(base, big.NewInt(1)), base) {
				t.Error("a^1 is not a")
			}
			// a^(-x) = (a^x)^{-1}.
			neg := new(big.Int).Neg(x)
			if !g.Equal(g.Exp(base, neg), g.Inv(g.Exp(base, x))) {
				t.Error("negative exponent law failed")
			}
		})
	}
}

func TestExpSmallScalarsQuick(t *testing.T) {
	// For small scalars, exponentiation agrees with repeated Op.
	for _, g := range []Group{Secp160r1(), MODP1024()} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			f := func(k uint8) bool {
				want := g.Identity()
				for i := 0; i < int(k); i++ {
					want = g.Op(want, g.Generator())
				}
				got := ExpGen(g, big.NewInt(int64(k)))
				return g.Equal(got, want)
			}
			cfg := &quick.Config{MaxCount: 20}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, g := range testGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rng := fixedbig.NewDRBG("encode-" + g.Name())
			for i := 0; i < 5; i++ {
				e := ExpGen(g, mustScalar(t, g, rng))
				data := g.Encode(e)
				if len(data) != g.ElementLen() {
					t.Fatalf("encoded length %d, want %d", len(data), g.ElementLen())
				}
				back, err := g.Decode(data)
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				if !g.Equal(e, back) {
					t.Fatal("round trip mismatch")
				}
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, g := range testGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			if _, err := g.Decode([]byte{1, 2, 3}); err == nil {
				t.Error("short input accepted")
			}
			junk := make([]byte, g.ElementLen())
			for i := range junk {
				junk[i] = 0xFF
			}
			if _, err := g.Decode(junk); err == nil {
				t.Error("out-of-range input accepted")
			}
		})
	}
}

func TestDLDecodeRejectsNonResidue(t *testing.T) {
	g := MODP1024()
	// Find a quadratic non-residue and check Decode rejects it.
	v := big.NewInt(2)
	for big.Jacobi(v, g.Modulus()) == 1 {
		v.Add(v, big.NewInt(1))
	}
	data := v.FillBytes(make([]byte, g.ElementLen()))
	if _, err := g.Decode(data); err == nil {
		t.Error("non-residue accepted by Decode")
	}
}

func TestECDecodeRejectsOffCurve(t *testing.T) {
	g := Secp160r1()
	e := g.Generator()
	data := g.Encode(e)
	data[len(data)-1] ^= 1 // perturb Y
	if _, err := g.Decode(data); err == nil {
		t.Error("off-curve point accepted by Decode")
	}
}

func TestECIdentityEncoding(t *testing.T) {
	g := Secp160r1()
	id := g.Identity()
	back, err := g.Decode(g.Encode(id))
	if err != nil {
		t.Fatalf("Decode identity: %v", err)
	}
	if !g.IsIdentity(back) {
		t.Error("identity round trip failed")
	}
}

func TestRandomScalarRange(t *testing.T) {
	for _, g := range testGroups(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			rng := fixedbig.NewDRBG("scalar-" + g.Name())
			for i := 0; i < 20; i++ {
				k, err := g.RandomScalar(rng)
				if err != nil {
					t.Fatal(err)
				}
				if k.Sign() <= 0 || k.Cmp(g.Order()) >= 0 {
					t.Fatalf("scalar %s out of [1, q)", k)
				}
			}
		})
	}
}

func TestMODPGroupsAreSafePrimes(t *testing.T) {
	for _, g := range []*DLGroup{MODP1024(), MODP2048(), MODP3072()} {
		p := g.Modulus()
		if !p.ProbablyPrime(32) {
			t.Errorf("%s: p not prime", g.Name())
		}
		if !g.Order().ProbablyPrime(32) {
			t.Errorf("%s: q not prime", g.Name())
		}
		wantBits := map[string]int{"modp-1024": 1024, "modp-2048": 2048, "modp-3072": 3072}[g.Name()]
		if p.BitLen() != wantBits {
			t.Errorf("%s: %d bits, want %d", g.Name(), p.BitLen(), wantBits)
		}
		// Generator must be a quadratic residue so its order is exactly q.
		ge := g.unwrap(g.Generator())
		if big.Jacobi(ge, p) != 1 {
			t.Errorf("%s: generator not a quadratic residue", g.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"modp-1024", "modp-2048", "modp-3072", "secp160r1", "secp224r1", "secp256r1"} {
		g, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if g.Name() != name {
			t.Errorf("ByName(%q) returned %q", name, g.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSecurityLevelsMatchGroups(t *testing.T) {
	for _, lvl := range SecurityLevels() {
		dl, err := ByName(lvl.DL)
		if err != nil {
			t.Fatal(err)
		}
		ec, err := ByName(lvl.EC)
		if err != nil {
			t.Fatal(err)
		}
		if dl.SecurityBits() != lvl.Bits || ec.SecurityBits() != lvl.Bits {
			t.Errorf("level %d: groups report %d and %d", lvl.Bits, dl.SecurityBits(), ec.SecurityBits())
		}
	}
}

func TestECAddDoubleConsistency(t *testing.T) {
	g := Secp160r1()
	p1 := g.Generator()
	// 2P via Op(P, P) must equal Exp(P, 2).
	if !g.Equal(g.Op(p1, p1), g.Exp(p1, big.NewInt(2))) {
		t.Error("doubling via Op disagrees with Exp")
	}
	// P + (−P) = ∞.
	if !g.IsIdentity(g.Op(p1, g.Inv(p1))) {
		t.Error("P + (−P) is not the identity")
	}
	// ∞ + P = P.
	if !g.Equal(g.Op(g.Identity(), p1), p1) {
		t.Error("identity addition failed")
	}
}

func TestGenerateDLGroupRejectsTiny(t *testing.T) {
	if _, err := GenerateDLGroup(8, fixedbig.NewDRBG("tiny")); err == nil {
		t.Error("expected error for tiny group size")
	}
}

func TestMixedElementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when mixing elements across groups")
		}
	}()
	MODP1024().Op(MODP1024().Generator(), Secp160r1().Generator())
}

func mustScalar(t *testing.T, g Group, rng *fixedbig.DRBG) *big.Int {
	t.Helper()
	k, err := g.RandomScalar(rng)
	if err != nil {
		t.Fatalf("RandomScalar: %v", err)
	}
	return k
}

func TestToyDL256(t *testing.T) {
	g, err := ToyDL256()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "toy-dl-256" || g.Modulus().BitLen() != 256 {
		t.Errorf("toy group malformed: %s, %d bits", g.Name(), g.Modulus().BitLen())
	}
	// Deterministic across calls and reachable via ByName.
	g2, err := ByName("toy-dl-256")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != g.Name() || g2.Order().Cmp(g.Order()) != 0 {
		t.Error("ByName returned a different toy group")
	}
	// Usable for the protocol stack.
	k, err := g.RandomScalar(fixedbig.NewDRBG("toy"))
	if err != nil {
		t.Fatal(err)
	}
	if g.IsIdentity(ExpGen(g, k)) {
		t.Error("toy group exponentiation degenerate")
	}
}

func TestGobRoundTripElements(t *testing.T) {
	RegisterGob()
	for _, g := range []Group{MODP1024(), Secp160r1()} {
		rng := fixedbig.NewDRBG("gob-" + g.Name())
		k, err := g.RandomScalar(rng)
		if err != nil {
			t.Fatal(err)
		}
		e := ExpGen(g, k)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
			t.Fatalf("%s: encode: %v", g.Name(), err)
		}
		var back Element
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatalf("%s: decode: %v", g.Name(), err)
		}
		if !g.Equal(e, back) {
			t.Errorf("%s: gob round trip changed the element", g.Name())
		}
	}
	// The EC identity also round-trips.
	g := Secp160r1()
	id := g.Identity()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&id); err != nil {
		t.Fatal(err)
	}
	var back Element
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !g.IsIdentity(back) {
		t.Error("identity did not survive gob")
	}
}

func TestWNAFDigits(t *testing.T) {
	// Reconstruction: Σ d_i·2^i = e; digits odd or zero, |d| < 8; no two
	// non-zero digits within 4 positions.
	rng := fixedbig.NewDRBG("wnaf")
	for trial := 0; trial < 100; trial++ {
		e, err := fixedbig.RandBits(rng, 80)
		if err != nil {
			t.Fatal(err)
		}
		if e.Sign() == 0 {
			continue
		}
		digits := wnafDigits(e, 4)
		sum := new(big.Int)
		lastNonZero := -10
		for i, d := range digits {
			if d != 0 {
				if d%2 == 0 || d > 7 || d < -7 {
					t.Fatalf("digit %d at %d out of wNAF range", d, i)
				}
				if i-lastNonZero < 4 {
					t.Fatalf("non-zero digits at %d and %d violate the NAF property", lastNonZero, i)
				}
				lastNonZero = i
			}
			term := new(big.Int).Lsh(big.NewInt(int64(d)), uint(i))
			sum.Add(sum, term)
		}
		if sum.Cmp(e) != 0 {
			t.Fatalf("wNAF reconstruction: got %s, want %s", sum, e)
		}
	}
}

func TestGenericExpMatchesRepeatedOp(t *testing.T) {
	// The wNAF ladder must agree with naive repeated addition across a
	// range of scalars, including NAF boundary values.
	g := Secp160r1Generic()
	for _, k := range []int64{1, 2, 3, 7, 8, 15, 16, 17, 31, 255, 256, 1000} {
		want := g.Identity()
		for i := int64(0); i < k; i++ {
			want = g.Op(want, g.Generator())
		}
		got := g.Exp(g.Generator(), big.NewInt(k))
		if !g.Equal(got, want) {
			t.Fatalf("Exp(%d) disagrees with repeated Op", k)
		}
	}
}
