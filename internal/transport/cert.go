package transport

import (
	"encoding/json"
	"fmt"
)

// BlameCertVersion is the serialised certificate format version.
const BlameCertVersion = 1

// Check names a verifiable predicate a BlameCert claims the accused
// party violated. The constants live here (they are pure strings) so
// both the protocol layers that issue certificates and the offline
// verifier in internal/blame can share them without an import cycle.
const (
	// CheckEquivocation: two parties received different payloads for the
	// same broadcast — the local digest of the accused sender's payload
	// disagrees with the digest another party echoed back.
	CheckEquivocation = "equivocation"
	// CheckRoundReplay: a message arrived carrying a stale round tag,
	// evidence that the sender replayed (or shifted) its stream.
	CheckRoundReplay = "round-replay"
	// CheckMalformed: a payload failed the receiver's type check. The
	// recorded evidence is the observed and expected wire type names.
	CheckMalformed = "malformed-payload"
	// CheckInvalidElement: a received group element fails decode or
	// curve-membership validation (invalid-curve attack attempt).
	CheckInvalidElement = "invalid-element"
	// CheckKeyProof: the accused party's multi-verifier Schnorr proof of
	// key-share knowledge does not verify against the recorded
	// statement, commitment, challenges and response.
	CheckKeyProof = "key-proof"
	// CheckPartialDecryption: a Chaum–Pedersen transcript fails to prove
	// that the accused chain hop stripped a key layer with its
	// registered share.
	CheckPartialDecryption = "partial-decryption"
	// CheckOwnSetTampered: a chain hop passed through its own τ set
	// modified (hops must forward their own set byte-identical).
	CheckOwnSetTampered = "own-set-tampered"
	// CheckSetAnchor: a τ set does not hash to the anchor its owner
	// broadcast before the chain started.
	CheckSetAnchor = "set-anchor"
	// CheckStrippedRandomness: a chain hop altered a ciphertext's
	// randomness component during its strip step (C1 must pass through a
	// partial decryption unchanged; the strip proofs only bind C).
	CheckStrippedRandomness = "stripped-randomness"
)

// BlameItem is one named piece of certificate evidence: an encoded
// group element, ciphertext sequence, digest, scalar or wire-type name.
// Data marshals as base64 under encoding/json.
type BlameItem struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// BlameCert is the serialisable evidence attached to an AbortError when
// a protocol check fails in a way that identifies a cheating party. It
// captures the failed check, the offending wire material and the proof
// transcript or digest pair, so a third party — the offline verifier in
// internal/blame, or a future coordinator — can re-run the check and
// confirm the accusation without trusting the accuser's protocol state.
//
// The certificate is deliberately a pure data type with no crypto
// dependencies: transport issues the transport-level certificates
// (equivocation, round replay) and the protocol layers attach theirs,
// while verification lives in internal/blame, which may import the
// whole crypto stack.
//
// Scope: a certificate is evidence, not a signature. Without authenticated
// transcripts the accuser could fabricate the recorded wire material, so a
// confirmed certificate means "IF these bytes are what the accused sent,
// the accused cheated" — see DESIGN.md §3.6 for the trust model.
type BlameCert struct {
	Version int `json:"version"`
	// Accused is the party the evidence incriminates.
	Accused int `json:"accused"`
	// Reporter is the party that detected the violation and issued the
	// certificate.
	Reporter int `json:"reporter"`
	// Phase and Round locate the violation in the protocol.
	Phase string `json:"phase,omitempty"`
	Round int    `json:"round"`
	// Check names the violated predicate (one of the Check* constants).
	Check string `json:"check"`
	// Detail is the human-readable description of the violation.
	Detail string `json:"detail,omitempty"`
	// Group names the algebraic group evidence elements are encoded in
	// (empty for checks that need no group arithmetic).
	Group string `json:"group,omitempty"`
	// Items is the evidence the verifier re-runs the check over.
	Items []BlameItem `json:"items,omitempty"`
}

// Item returns the named evidence entry.
func (c *BlameCert) Item(name string) ([]byte, bool) {
	for _, it := range c.Items {
		if it.Name == name {
			return it.Data, true
		}
	}
	return nil, false
}

// String summarises the certificate for logs.
func (c *BlameCert) String() string {
	return fmt.Sprintf("blame cert v%d: party %d accused by party %d of %s (round %d): %s",
		c.Version, c.Accused, c.Reporter, c.Check, c.Round, c.Detail)
}

// MarshalJSON is the canonical serialisation written by -blame-out.
// (BlameCert marshals with the standard library; this method exists so
// the format is an explicit API, not an accident of field tags.)
func (c *BlameCert) MarshalJSON() ([]byte, error) {
	type alias BlameCert // drop the method set to avoid recursion
	return json.Marshal((*alias)(c))
}

// DecodeBlameCert parses a certificate serialised by MarshalJSON and
// rejects versions this build does not understand.
func DecodeBlameCert(data []byte) (*BlameCert, error) {
	var c BlameCert
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("transport: undecodable blame cert: %w", err)
	}
	if c.Version != BlameCertVersion {
		return nil, fmt.Errorf("transport: blame cert version %d, this build verifies %d", c.Version, BlameCertVersion)
	}
	return &c, nil
}

// CertOf extracts the blame certificate carried by err's AbortError
// chain, or nil when the abort carries no machine-verifiable evidence
// (timeouts, crashes and cancellations identify no cheater).
func CertOf(err error) *BlameCert {
	if ae, ok := IsAbort(err); ok {
		return ae.Cert
	}
	return nil
}
