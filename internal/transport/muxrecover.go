package transport

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"groupranking/internal/wirecodec"
)

// Recovering mode for the SessionMux: the daemon-grade generalization of
// RecoveringTCPFabric's epoch/retransmit/replay semantics to N sessions
// sharing one link per peer pair.
//
// The division of labor differs from the single-session fabric in one
// structural way: there is no in-memory retransmit buffer or ack
// machinery. Each recovering session's journal IS its retransmit buffer
// — every send is journaled (write-ahead) before its first wire write,
// so any suffix of a session's traffic can be re-served at any time.
// After an outage the side that is missing frames asks for them with a
// resume frame ("I hold Seq frames of yours for SID"), and the owner
// replays its journal from that cursor. Resume requests fire on every
// link re-attach and when a restarted daemon re-adopts a session, so
// both directions of every interrupted conversation self-heal without
// per-frame acknowledgements.
//
// Because retransmitted frames interleave with live sends on the shared
// link, recovering receivers order frames by per-(session,peer)
// sequence number: duplicates are dropped, gaps are stashed in a
// bounded reorder buffer until the missing frame arrives. A link that
// stays down past the recovery grace blames the peer and fails every
// open session's receives from it with the same typed ErrPeerDown a
// single-session fabric would surface.

// defaultMuxGrace bounds a recovering link outage when the caller does
// not choose one.
const defaultMuxGrace = 30 * time.Second

// muxRecovery is the recovering-mode state hanging off a SessionMux.
// Mutable fields are guarded by the mux's own mu.
type muxRecovery struct {
	epoch int
	grace time.Duration

	ln net.Listener

	// peerEpoch is the highest boot epoch seen from each accepted peer;
	// a hello announcing an older epoch is a stale connection and is
	// rejected. (Dialed links carry our epoch outward instead.)
	peerEpoch []int
	// graceTimers holds the per-link blame timer armed while that link
	// is down; re-attaching stops it.
	graceTimers []*time.Timer
	// blamed marks links whose grace expired (health reports them dead,
	// not reconnecting).
	blamed []bool
	// upOnce closes firstUp exactly once per peer for formation.
	firstUp []chan struct{}
	upDone  []bool

	// resumable maps session ids to their journals for serving resume
	// requests after the session's goroutine is gone: a terminal
	// session still owes peers retransmissions until the service layer
	// purges it with DropResumable.
	resumable map[string]Journaler
	// serving dedupes concurrent registry-served retransmit runs, keyed
	// "sid|peer".
	serving map[string]bool
	// handshakes tracks accepted connections still inside the hello
	// read, so Close can cut them loose without waiting the deadline.
	handshakes map[net.Conn]bool
}

func (r *muxRecovery) closeLocked() {
	if r.ln != nil {
		r.ln.Close()
	}
	for _, t := range r.graceTimers {
		if t != nil {
			t.Stop()
		}
	}
	for c := range r.handshakes {
		c.Close()
	}
}

// formRecovering builds the recovering mesh: a lifetime accept loop for
// higher-indexed peers, a redial maintainer per lower-indexed peer, and
// an initial formation wait so callers still get the all-links-up
// guarantee NewSessionMux promises.
func (m *SessionMux) formRecovering(addrs []string, opts MuxRecovery) error {
	r := &muxRecovery{
		epoch:       opts.Epoch,
		grace:       opts.Grace,
		peerEpoch:   make([]int, m.n),
		graceTimers: make([]*time.Timer, m.n),
		blamed:      make([]bool, m.n),
		firstUp:     make([]chan struct{}, m.n),
		upDone:      make([]bool, m.n),
		resumable:   make(map[string]Journaler),
		serving:     make(map[string]bool),
		handshakes:  make(map[net.Conn]bool),
	}
	if r.epoch <= 0 {
		r.epoch = 1
	}
	if r.grace <= 0 {
		r.grace = defaultMuxGrace
	}
	for i := range r.firstUp {
		r.firstUp[i] = make(chan struct{})
	}
	m.rec = r

	ln, err := net.Listen("tcp", addrs[m.me])
	if err != nil {
		return fmt.Errorf("transport: listening on %s: %w", addrs[m.me], err)
	}
	r.ln = ln
	m.pumps.Add(1)
	go m.acceptLoop(ln)
	for peer := 0; peer < m.me; peer++ {
		m.pumps.Add(1)
		go m.maintainLink(peer, addrs[peer])
	}

	deadline := time.NewTimer(dialDeadline)
	defer deadline.Stop()
	for peer := 0; peer < m.n; peer++ {
		if peer == m.me {
			continue
		}
		select {
		case <-r.firstUp[peer]:
		case <-deadline.C:
			return fmt.Errorf("transport: mux link to party %d did not form within %v", peer, dialDeadline)
		case <-m.closeCh:
			return fmt.Errorf("transport: mux closed during formation")
		}
	}
	return nil
}

// acceptLoop accepts mux links for the mux's whole lifetime — the
// structural difference from the one-shot formation: a restarted or
// reconnecting peer can always re-join the mesh.
func (m *SessionMux) acceptLoop(ln net.Listener) {
	defer m.pumps.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (mux shutdown) or broken beyond use
		}
		m.pumps.Add(1)
		go func() {
			defer m.pumps.Done()
			m.handleAccept(conn)
		}()
	}
}

// handleAccept runs one inbound handshake. A malformed or stale hello
// just drops the connection — the mesh's health is the dialer's problem
// to fix by redialing.
func (m *SessionMux) handleAccept(conn net.Conn) {
	m.mu.Lock()
	m.rec.handshakes[conn] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.rec.handshakes, conn)
		m.mu.Unlock()
	}()
	conn.SetReadDeadline(time.Now().Add(handshakeDeadline))
	rd := bufio.NewReader(conn)
	v, err := wirecodec.ReadValue(rd)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	hello, ok := v.(muxHello)
	if !ok || hello.Party <= m.me || hello.Party >= m.n {
		conn.Close()
		return
	}
	m.attachRecovering(hello.Party, hello.Epoch, conn, rd)
}

// maintainLink keeps the dialed link to one lower-indexed peer alive:
// dial, handshake, pump until the connection dies, redial with backoff.
// The first dial is deadline-bounded so initial formation can fail the
// constructor; after that the maintainer retries until the mux closes.
func (m *SessionMux) maintainLink(peer int, addr string) {
	defer m.pumps.Done()
	jitter := rand.New(rand.NewSource(int64(m.me)<<16 | int64(peer)))
	first := true
	firstDeadline := time.Now().Add(dialDeadline)
	for {
		select {
		case <-m.closeCh:
			return
		default:
		}
		backoff := dialBackoffBase
		var conn net.Conn
		for conn == nil {
			c, err := net.Dial("tcp", addr)
			if err == nil {
				conn = c
				break
			}
			if first && time.Now().After(firstDeadline) {
				return // formation fails via the firstUp wait
			}
			d := backoff/2 + time.Duration(jitter.Int63n(int64(backoff)))
			select {
			case <-time.After(d):
			case <-m.closeCh:
				return
			}
			if backoff *= 2; backoff > dialBackoffMax {
				backoff = dialBackoffMax
			}
		}
		conn.SetWriteDeadline(time.Now().Add(handshakeDeadline))
		err := wirecodec.WriteValue(conn, muxHello{Party: m.me, Epoch: m.rec.epoch})
		conn.SetWriteDeadline(time.Time{})
		if err != nil {
			conn.Close()
			continue
		}
		first = false
		done := m.attachRecovering(peer, -1, conn, bufio.NewReader(conn))
		if done == nil {
			return // mux closed during attach
		}
		select {
		case <-done:
		case <-m.closeCh:
			return
		}
	}
}

// attachRecovering wires one handshaken link, replacing any previous
// connection to that peer, and starts its pump. epoch is the peer's
// announced boot epoch (-1 on dialed links, where only we announce).
// Returns a channel closed when the pump exits, or nil if the
// connection was rejected.
func (m *SessionMux) attachRecovering(peer, epoch int, conn net.Conn, rd *bufio.Reader) chan struct{} {
	m.mu.Lock()
	select {
	case <-m.closeCh:
		m.mu.Unlock()
		conn.Close()
		return nil
	default:
	}
	r := m.rec
	if epoch >= 0 {
		if epoch < r.peerEpoch[peer] {
			m.mu.Unlock()
			conn.Close()
			return nil // stale connection from before the peer's restart
		}
		r.peerEpoch[peer] = epoch
	}
	if old := m.conns[peer]; old != nil {
		old.Close() // its pump sees the conn mismatch and exits quietly
	}
	m.conns[peer] = conn
	if t := r.graceTimers[peer]; t != nil {
		t.Stop()
		r.graceTimers[peer] = nil
	}
	r.blamed[peer] = false
	if !r.upDone[peer] {
		r.upDone[peer] = true
		close(r.firstUp[peer])
	}
	// Every open journal-backed session asks the re-attached peer for
	// the frames it missed during the outage.
	var resumes []*MuxSession
	for _, s := range m.sessions {
		if s.j != nil {
			resumes = append(resumes, s)
		}
	}
	m.mu.Unlock()
	lm := m.mm.link(peer)
	lm.connects.inc()
	lm.linkUp.Set(1)
	done := make(chan struct{})
	m.pumps.Add(1)
	go m.recPump(peer, conn, rd, done)
	for _, s := range resumes {
		go s.sendResume(peer)
	}
	return done
}

// recPump reads one recovering link until it dies. Unlike the one-shot
// pump, any failure — connection loss, malformed frame — marks the link
// down and arms the blame grace instead of permanently failing every
// session: the maintainer (or the peer's redial) gets a chance to bring
// the link back first.
func (m *SessionMux) recPump(peer int, conn net.Conn, rd *bufio.Reader, done chan struct{}) {
	defer m.pumps.Done()
	defer close(done)
	for {
		v, err := wirecodec.ReadValue(rd)
		if err != nil {
			m.markLinkDown(peer, conn, err)
			return
		}
		env, ok := v.(muxEnv)
		if !ok {
			m.markLinkDown(peer, conn, fmt.Errorf("transport: party %d sent a %T frame, want mux envelope", peer, v))
			return
		}
		atomicStoreLastSeen(m, peer)
		switch env.Kind {
		case muxKindControl:
			m.mm.ctrlFrames.inc()
			select {
			case m.ctrl <- ControlMsg{From: peer, Payload: env.Payload}:
			case <-m.closeCh:
				return
			}
		case muxKindData:
			m.mm.dataFrames.inc()
			m.routeData(peer, env)
		case muxKindResume:
			m.mm.resumeFrames.inc()
			m.routeResume(peer, env)
		default:
			m.markLinkDown(peer, conn, fmt.Errorf("transport: party %d sent mux frame kind %d", peer, env.Kind))
			return
		}
	}
}

// markLinkDown clears a dead connection and arms the blame grace. The
// conn parameter fences stale pumps: a pump whose connection was
// already replaced must not tear down its successor.
func (m *SessionMux) markLinkDown(peer int, conn net.Conn, cause error) {
	m.mu.Lock()
	if m.conns[peer] != conn {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.conns[peer] = nil
	conn.Close()
	r := m.rec
	closed := false
	select {
	case <-m.closeCh:
		closed = true
	default:
	}
	if !closed {
		if t := r.graceTimers[peer]; t != nil {
			t.Stop()
		}
		grace := r.grace
		r.graceTimers[peer] = time.AfterFunc(grace, func() {
			m.blamePeer(peer, grace, cause)
		})
	}
	m.mu.Unlock()
	m.mm.link(peer).linkUp.Set(0)
}

// blamePeer fires when a link outage outlives the grace: every open
// session's receives from that peer fail with the typed ErrPeerDown a
// non-recovering mux would have surfaced immediately.
func (m *SessionMux) blamePeer(peer int, grace time.Duration, cause error) {
	m.mu.Lock()
	if m.conns[peer] != nil {
		m.mu.Unlock()
		return // the link came back while the timer was firing
	}
	select {
	case <-m.closeCh:
		m.mu.Unlock()
		return
	default:
	}
	m.rec.blamed[peer] = true
	open := make([]*MuxSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	err := fmt.Errorf("%w: party %d did not reconnect within the %v grace: %v", ErrPeerDown, peer, grace, cause)
	for _, s := range open {
		s.failPeer(peer, err)
	}
}

// routeResume routes one resume frame: to its open session, to the
// resumable registry when the session is already terminal here, or into
// the pending buffer so a not-yet-re-adopted session serves it at open.
func (m *SessionMux) routeResume(from int, env muxEnv) {
	m.mu.Lock()
	_, open := m.sessions[env.SID]
	var j Journaler
	var key string
	if !open {
		if j = m.rec.resumable[env.SID]; j != nil {
			key = env.SID + "|" + strconv.Itoa(from)
			if m.rec.serving[key] {
				m.mu.Unlock()
				return
			}
			m.rec.serving[key] = true
		}
	}
	m.mu.Unlock()
	if open || j == nil {
		// routeData's open path hands the frame to deliver, which
		// recognizes the resume kind; otherwise it pends or tombstones.
		m.routeData(from, env)
		return
	}
	go func() {
		m.retransmitFromJournal(env.SID, from, env.Seq, j)
		m.mu.Lock()
		delete(m.rec.serving, key)
		m.mu.Unlock()
	}()
}

// retransmitFromJournal re-serves a session's journaled sends to one
// peer starting after the peer's cursor. A write failure just stops the
// run — the peer re-requests on the next attach.
func (m *SessionMux) retransmitFromJournal(sid string, to int, have uint64, j Journaler) {
	msgs, err := j.SentTo(to)
	if err != nil || uint64(len(msgs)) <= have {
		return
	}
	for _, msg := range msgs[have:] {
		env := muxEnv{SID: sid, Kind: muxKindData, Round: msg.Round, Bytes: msg.Bytes, Seq: msg.Seq, Payload: msg.Payload}
		if m.writeFrame(to, m.timeout, env) != nil {
			return
		}
		m.mm.retransmits.inc()
	}
}

// ServeResumable registers a journal to answer resume requests for a
// session that will not be re-opened here (it already reached its
// terminal state in a previous life): a restarted daemon still owes its
// peers the retransmissions that finish their halves.
func (m *SessionMux) ServeResumable(sid string, j Journaler) {
	m.mu.Lock()
	if m.rec != nil && m.sessions[sid] == nil {
		m.rec.resumable[sid] = j
	}
	m.mu.Unlock()
}

// DropResumable forgets a terminal session's resume registration. The
// service layer calls it when it purges the session (its peers are
// terminal too by then, so nobody will ask again).
func (m *SessionMux) DropResumable(sid string) {
	m.mu.Lock()
	if m.rec != nil {
		delete(m.rec.resumable, sid)
	}
	m.mu.Unlock()
}

// OpenRecovering registers a journal-backed session on a recovering
// mux. The journal must hold this session's records (freshly created on
// a first run, reopened on a restart); its contents seed the replay
// queues exactly like a RecoveringTCPFabric restart: journaled receives
// are re-served to the protocol before any live traffic, journaled
// sends suppress the recomputation's first len(sent) writes, and peers
// are asked to retransmit anything past our receive cursors.
func (m *SessionMux) OpenRecovering(sid string, timeout time.Duration, j Journaler) (*MuxSession, error) {
	if m.rec == nil {
		return nil, fmt.Errorf("transport: OpenRecovering needs a mux built with MuxOptions.Recovery")
	}
	if j == nil {
		return nil, fmt.Errorf("transport: OpenRecovering needs a journal")
	}
	return m.open(sid, timeout, j)
}

// loadJournal seeds a session's recovery state from its journal.
func (s *MuxSession) loadJournal(j Journaler) error {
	n := s.m.n
	s.j = j
	s.sendSeq = make([]uint64, n)
	s.replaySends = make([][]JournalMsg, n)
	s.resuming = make([]bool, n)
	s.recvNext = make([]uint64, n)
	s.replayRecvs = make([][]JournalMsg, n)
	s.stash = make([]map[uint64]muxEnv, n)
	for p := 0; p < n; p++ {
		if p == s.m.me {
			continue
		}
		sent, err := j.SentTo(p)
		if err != nil {
			return fmt.Errorf("transport: mux session %s: reading journaled sends: %w", s.sid, err)
		}
		recv, err := j.RecvFrom(p)
		if err != nil {
			return fmt.Errorf("transport: mux session %s: reading journaled receives: %w", s.sid, err)
		}
		s.replaySends[p] = sent
		s.sendSeq[p] = uint64(len(sent))
		s.replayRecvs[p] = recv
		s.recvNext[p] = uint64(len(recv))
		s.stash[p] = make(map[uint64]muxEnv)
	}
	return nil
}

// announceResume asks every currently-connected peer to retransmit this
// session's missing frames; peers attaching later are asked on attach.
func (s *MuxSession) announceResume() {
	m := s.m
	m.mu.Lock()
	var up []int
	for p := 0; p < m.n; p++ {
		if p != m.me && m.conns[p] != nil {
			up = append(up, p)
		}
	}
	m.mu.Unlock()
	for _, p := range up {
		go s.sendResume(p)
	}
}

// sendResume tells one peer how much of its traffic we hold. Errors are
// ignored: a failed resume is retried on the next link attach.
func (s *MuxSession) sendResume(to int) {
	s.recvMu.Lock()
	have := s.recvNext[to]
	s.recvMu.Unlock()
	s.m.writeFrame(to, s.m.timeout, muxEnv{SID: s.sid, Kind: muxKindResume, Seq: have})
}

// serveResume starts (at most one per peer) a retransmit run for this
// open session.
func (s *MuxSession) serveResume(from int, have uint64) {
	if s.j == nil {
		return // we are not journal-backed; nothing to serve
	}
	s.sendMu.Lock()
	if s.resuming[from] {
		s.sendMu.Unlock()
		return
	}
	s.resuming[from] = true
	s.sendMu.Unlock()
	go func() {
		s.m.retransmitFromJournal(s.sid, from, have, s.j)
		s.sendMu.Lock()
		s.resuming[from] = false
		s.sendMu.Unlock()
	}()
}

// sendRecovering is Send's tail for journal-backed sessions: replay
// suppression, write-ahead journaling, then a best-effort wire write.
func (s *MuxSession) sendRecovering(round, to, bytes int, payload any) error {
	s.sendMu.Lock()
	if q := s.replaySends[to]; len(q) > 0 {
		msg := q[0]
		s.replaySends[to] = q[1:]
		s.sendMu.Unlock()
		if msg.Round != round {
			return Abort(to, round, "", fmt.Errorf("%w: recomputed send to party %d is for round %d, journal holds round %d",
				ErrReplayDiverged, to, round, msg.Round))
		}
		// The peer already holds (or can resume-request) this frame;
		// re-sending it would only create wire noise.
		return nil
	}
	seq := s.sendSeq[to] + 1
	if err := s.j.LogSend(to, round, bytes, seq, payload); err != nil {
		s.sendMu.Unlock()
		return Abort(to, round, "", fmt.Errorf("journaling send to party %d: %w", to, err))
	}
	s.sendSeq[to] = seq
	s.sendMu.Unlock()
	// The journal is the retransmit buffer: a write onto a down or
	// dying link is not an error — the peer recovers the frame with a
	// resume request once the link is back.
	s.m.writeFrame(to, s.timeout, muxEnv{SID: s.sid, Kind: muxKindData, Round: round, Bytes: bytes, Seq: seq, Payload: payload})
	return nil
}

// recvRecovering is RecvCtx's body for journal-backed sessions:
// journaled receives replay first, then live frames are accepted in
// per-peer sequence order through the reorder stash.
func (s *MuxSession) recvRecovering(ctx context.Context, from, round int) (any, error) {
	s.recvMu.Lock()
	if q := s.replayRecvs[from]; len(q) > 0 {
		msg := q[0]
		s.replayRecvs[from] = q[1:]
		s.recvMu.Unlock()
		if round >= 0 && msg.Round != round {
			return nil, Abort(from, round, "", fmt.Errorf("%w: journaled receive from party %d is for round %d, recomputation wants round %d",
				ErrReplayDiverged, from, msg.Round, round))
		}
		return msg.Payload, nil
	}
	if env, ok := s.stash[from][s.recvNext[from]+1]; ok {
		delete(s.stash[from], env.Seq)
		payload, accepted, err := s.acceptLocked(from, round, env)
		s.recvMu.Unlock()
		if err != nil || accepted {
			return payload, err
		}
	} else {
		s.recvMu.Unlock()
	}

	var timerC <-chan time.Time
	if s.timeout > 0 {
		tm := time.NewTimer(s.timeout)
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		select {
		case env := <-s.inbox[from]:
			payload, accepted, err := s.filterFrame(from, round, env)
			if err != nil {
				return nil, err
			}
			if accepted {
				return payload, nil
			}
		case <-s.peerDown[from]:
			// Drain frames that raced the failure into the queue.
			for {
				select {
				case env := <-s.inbox[from]:
					payload, accepted, err := s.filterFrame(from, round, env)
					if err != nil {
						return nil, err
					}
					if accepted {
						return payload, nil
					}
					continue
				default:
				}
				break
			}
			s.peerMu.Lock()
			cause := s.peerErr[from]
			s.peerMu.Unlock()
			return nil, Abort(from, round, "", cause)
		case <-done:
			return nil, Abort(from, round, "", ctx.Err())
		case <-timerC:
			return nil, Abort(from, round, "", ErrTimeout)
		case <-s.closeCh:
			return nil, Abort(from, round, "", ErrClosed)
		case <-s.m.closeCh:
			return nil, Abort(from, round, "", ErrClosed)
		}
	}
}

// filterFrame classifies one dequeued frame against the sequence
// cursor: duplicate (dropped), out-of-order (stashed), or next-expected
// (journaled and accepted). Returns accepted=false for frames that were
// absorbed without satisfying the receive.
func (s *MuxSession) filterFrame(from, round int, env muxEnv) (payload any, accepted bool, err error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	return s.acceptLocked(from, round, env)
}

func (s *MuxSession) acceptLocked(from, round int, env muxEnv) (payload any, accepted bool, err error) {
	if env.Seq == 0 {
		err = Abort(from, round, "", fmt.Errorf("%w: party %d sent an unsequenced frame into recovering session %s",
			ErrDesync, from, s.sid))
		s.failPeer(from, err)
		return nil, false, err
	}
	next := s.recvNext[from] + 1
	switch {
	case env.Seq < next:
		return nil, false, nil // duplicate of an already-journaled frame
	case env.Seq > next:
		if len(s.stash[from]) >= cap(s.inbox[from]) {
			err = Abort(from, round, "", fmt.Errorf("mux session %s: reorder stash for party %d overflowed its %d-frame budget",
				s.sid, from, cap(s.inbox[from])))
			s.failPeer(from, err)
			return nil, false, err
		}
		s.stash[from][env.Seq] = env
		return nil, false, nil
	}
	if lerr := s.j.LogRecv(from, env.Round, env.Bytes, env.Seq, env.Payload); lerr != nil {
		err = Abort(from, round, "", fmt.Errorf("journaling receive from party %d: %w", from, lerr))
		s.failPeer(from, err)
		return nil, false, err
	}
	s.recvNext[from] = env.Seq
	if round >= 0 && env.Round != round {
		return nil, false, roundMismatchAbort(from, round, env.Round)
	}
	return env.Payload, true, nil
}

// atomicStoreLastSeen mirrors the one-shot pump's last-contact stamp.
func atomicStoreLastSeen(m *SessionMux, peer int) {
	atomic.StoreInt64(&m.lastSeen[peer], time.Now().UnixNano())
}
