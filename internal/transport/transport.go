// Package transport provides the in-memory secure-channel fabric the
// protocol stack runs over. The paper assumes a secure pairwise channel
// between every pair of parties (Section III-A); this package supplies
// that abstraction for in-process simulation, instruments every message
// with its logical round and byte size, and captures a trace that the
// netsim package can replay over a simulated network to reproduce
// Fig. 3(b).
//
// Parties are identified by dense indices 0..n-1. Per-pair channels are
// FIFO and buffered, mimicking an asynchronous reliable network. Round
// numbers are assigned explicitly by protocol code at Send call sites:
// the protocols in this repository have static round structure, and an
// explicit tag is both simpler and more faithful than inferring rounds
// from runtime interleavings.
package transport

import (
	"fmt"
	"sync"
	"time"
)

// Event records one message for tracing and replay.
type Event struct {
	Round int
	From  int
	To    int
	Bytes int
}

// Stats summarises per-party traffic.
type Stats struct {
	MessagesSent []int64
	BytesSent    []int64
	// MaxRound is the highest round tag seen (tags may be sparse).
	MaxRound int
	// DistinctRounds is the number of distinct round tags used — the
	// framework's actual communication-round count.
	DistinctRounds int
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithQueueCapacity sets the per-pair channel buffer (default 4096).
func WithQueueCapacity(c int) Option {
	return func(f *Fabric) { f.capacity = c }
}

// WithRecvTimeout makes Recv fail after d instead of blocking forever.
// Failure-injection tests use it to turn dropped messages into clean
// errors.
func WithRecvTimeout(d time.Duration) Option {
	return func(f *Fabric) { f.timeout = d }
}

// WithDropFilter installs a predicate that silently drops matching
// messages, for failure-injection tests.
func WithDropFilter(drop func(Event) bool) Option {
	return func(f *Fabric) { f.drop = drop }
}

// WithoutTrace disables trace capture (benchmarks at large n avoid the
// allocation).
func WithoutTrace() Option {
	return func(f *Fabric) { f.traceOff = true }
}

// Fabric is a complete graph of instrumented FIFO channels among n
// parties. All methods are safe for concurrent use by the party
// goroutines.
type Fabric struct {
	n        int
	capacity int
	timeout  time.Duration
	drop     func(Event) bool
	traceOff bool

	queues [][]chan message // queues[from][to]

	mu       sync.Mutex
	trace    []Event
	msgs     []int64
	bytes    []int64
	maxRound int
	rounds   map[int]struct{}
}

type message struct {
	payload any
	bytes   int
}

// New creates a fabric for n parties.
func New(n int, opts ...Option) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least one party, got %d", n)
	}
	f := &Fabric{n: n, capacity: 4096, msgs: make([]int64, n), bytes: make([]int64, n), rounds: make(map[int]struct{})}
	for _, opt := range opts {
		opt(f)
	}
	f.queues = make([][]chan message, n)
	for i := range f.queues {
		f.queues[i] = make([]chan message, n)
		for j := range f.queues[i] {
			f.queues[i][j] = make(chan message, f.capacity)
		}
	}
	return f, nil
}

// N returns the number of parties.
func (f *Fabric) N() int { return f.n }

// Send delivers payload from one party to another, charging the given
// byte size to the sender and tagging the message with the protocol
// round. It returns an error for invalid endpoints or a full queue.
func (f *Fabric) Send(round, from, to, bytes int, payload any) error {
	if err := f.check(from, to); err != nil {
		return err
	}
	ev := Event{Round: round, From: from, To: to, Bytes: bytes}
	f.mu.Lock()
	f.msgs[from]++
	f.bytes[from] += int64(bytes)
	if round > f.maxRound {
		f.maxRound = round
	}
	f.rounds[round] = struct{}{}
	if !f.traceOff {
		f.trace = append(f.trace, ev)
	}
	dropped := f.drop != nil && f.drop(ev)
	f.mu.Unlock()
	if dropped {
		return nil
	}
	select {
	case f.queues[from][to] <- message{payload: payload, bytes: bytes}:
		return nil
	default:
		return fmt.Errorf("transport: queue %d→%d full (capacity %d)", from, to, f.capacity)
	}
}

// Recv blocks until a message from the given peer arrives (or the
// configured timeout expires).
func (f *Fabric) Recv(to, from int) (any, error) {
	if err := f.check(from, to); err != nil {
		return nil, err
	}
	if f.timeout <= 0 {
		m := <-f.queues[from][to]
		return m.payload, nil
	}
	select {
	case m := <-f.queues[from][to]:
		return m.payload, nil
	case <-time.After(f.timeout):
		return nil, fmt.Errorf("transport: timeout waiting for message %d→%d", from, to)
	}
}

// Broadcast sends the same payload from one party to every other party,
// charging bytes once per recipient (the paper's model has no physical
// broadcast medium; a broadcast is n−1 unicasts).
func (f *Fabric) Broadcast(round, from, bytes int, payload any) error {
	for to := 0; to < f.n; to++ {
		if to == from {
			continue
		}
		if err := f.Send(round, from, to, bytes, payload); err != nil {
			return err
		}
	}
	return nil
}

// GatherAll receives one message from every other party, returned as a
// slice indexed by sender (the self slot is nil).
func (f *Fabric) GatherAll(to int) ([]any, error) {
	out := make([]any, f.n)
	for from := 0; from < f.n; from++ {
		if from == to {
			continue
		}
		p, err := f.Recv(to, from)
		if err != nil {
			return nil, err
		}
		out[from] = p
	}
	return out, nil
}

// Stats returns a snapshot of the per-party counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		MessagesSent:   make([]int64, f.n),
		BytesSent:      make([]int64, f.n),
		MaxRound:       f.maxRound,
		DistinctRounds: len(f.rounds),
	}
	copy(s.MessagesSent, f.msgs)
	copy(s.BytesSent, f.bytes)
	return s
}

// Trace returns a copy of the recorded message trace, ordered by send
// time. Replay consumers group events by Round.
func (f *Fabric) Trace() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, len(f.trace))
	copy(out, f.trace)
	return out
}

// TotalBytes sums bytes sent by all parties.
func (s Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.BytesSent {
		t += b
	}
	return t
}

func (f *Fabric) check(a, b int) error {
	if a < 0 || a >= f.n || b < 0 || b >= f.n {
		return fmt.Errorf("transport: party index out of range (%d, %d) with n=%d", a, b, f.n)
	}
	if a == b {
		return fmt.Errorf("transport: party %d cannot message itself", a)
	}
	return nil
}
