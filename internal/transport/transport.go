// Package transport provides the in-memory secure-channel fabric the
// protocol stack runs over. The paper assumes a secure pairwise channel
// between every pair of parties (Section III-A); this package supplies
// that abstraction for in-process simulation, instruments every message
// with its logical round and byte size, and captures a trace that the
// netsim package can replay over a simulated network to reproduce
// Fig. 3(b).
//
// Parties are identified by dense indices 0..n-1. Per-pair channels are
// FIFO and buffered, mimicking an asynchronous reliable network. Round
// numbers are assigned explicitly by protocol code at Send call sites:
// the protocols in this repository have static round structure, and an
// explicit tag is both simpler and more faithful than inferring rounds
// from runtime interleavings.
package transport

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Event records one message for tracing and replay.
type Event struct {
	Round int
	From  int
	To    int
	Bytes int
}

// RoundStats aggregates the traffic of one logical round across all
// senders.
type RoundStats struct {
	Messages int64
	Bytes    int64
}

// Stats summarises per-party traffic. Both fabric implementations
// return the same shape: the in-memory Fabric observes every party,
// a TCP endpoint fills only its own slot (a real endpoint cannot see
// its peers' counters).
type Stats struct {
	MessagesSent []int64
	BytesSent    []int64
	// MaxRound is the highest round tag seen (tags may be sparse).
	MaxRound int
	// DistinctRounds is the number of distinct round tags used — the
	// framework's actual communication-round count.
	DistinctRounds int
	// PerRound breaks traffic down by round tag, summed over the
	// observed senders.
	PerRound map[int]RoundStats
	// EchoMessages/EchoBytes tally the consistency layer's echo
	// sub-round traffic (round tags in the reserved echo band). Echo
	// digests are transport overhead of the active-adversary hardening,
	// not protocol traffic, so they are counted here and excluded from
	// MessagesSent/BytesSent/PerRound — the protocol cost model and the
	// bench snapshot stay comparable whether echoes run or not.
	EchoMessages int64
	EchoBytes    int64
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithQueueCapacity sets the per-pair channel buffer (default 4096).
func WithQueueCapacity(c int) Option {
	return func(f *Fabric) { f.capacity = c }
}

// WithRecvTimeout makes Recv fail after d instead of blocking forever.
// Failure-injection tests use it to turn dropped messages into clean
// errors.
func WithRecvTimeout(d time.Duration) Option {
	return func(f *Fabric) { f.timeout = d }
}

// WithDropFilter installs a predicate that silently drops matching
// messages, for failure-injection tests.
func WithDropFilter(drop func(Event) bool) Option {
	return func(f *Fabric) { f.drop = drop }
}

// WithoutTrace disables trace capture (benchmarks at large n avoid the
// allocation).
func WithoutTrace() Option {
	return func(f *Fabric) { f.traceOff = true }
}

// Fabric is a complete graph of instrumented FIFO channels among n
// parties. All methods are safe for concurrent use by the party
// goroutines.
type Fabric struct {
	n        int
	capacity int
	timeout  time.Duration
	drop     func(Event) bool
	traceOff bool

	queues [][]chan message // queues[from][to]
	// down[p] is closed when party p is known to have crashed
	// (MarkDown); receives from p then fail immediately with
	// ErrPeerDown instead of waiting out a timeout, mirroring the
	// connection-loss detection a real TCP mesh provides.
	down     []chan struct{}
	downOnce []sync.Once

	mu        sync.Mutex
	trace     []Event
	msgs      []int64
	bytes     []int64
	maxRound  int
	rounds    map[int]RoundStats
	echoMsgs  int64
	echoBytes int64
}

type message struct {
	payload any
	bytes   int
	round   int
}

// New creates a fabric for n parties.
func New(n int, opts ...Option) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least one party, got %d", n)
	}
	f := &Fabric{n: n, capacity: 4096, msgs: make([]int64, n), bytes: make([]int64, n), rounds: make(map[int]RoundStats)}
	for _, opt := range opts {
		opt(f)
	}
	if f.capacity < 1 {
		return nil, fmt.Errorf("transport: queue capacity must be at least 1, got %d", f.capacity)
	}
	f.queues = make([][]chan message, n)
	for i := range f.queues {
		f.queues[i] = make([]chan message, n)
		for j := range f.queues[i] {
			f.queues[i][j] = make(chan message, f.capacity)
		}
	}
	f.down = make([]chan struct{}, n)
	f.downOnce = make([]sync.Once, n)
	for i := range f.down {
		f.down[i] = make(chan struct{})
	}
	return f, nil
}

// MarkDown declares party p crashed: every pending and future receive
// from p fails immediately with an AbortError carrying ErrPeerDown
// (after draining messages p sent before crashing). The fault-injection
// harness calls it when a crash schedule fires; it is idempotent.
func (f *Fabric) MarkDown(p int) {
	if p < 0 || p >= f.n {
		return
	}
	f.downOnce[p].Do(func() { close(f.down[p]) })
}

// N returns the number of parties.
func (f *Fabric) N() int { return f.n }

// Send delivers payload from one party to another, charging the given
// byte size to the sender and tagging the message with the protocol
// round. It returns an error for invalid endpoints or a full queue.
func (f *Fabric) Send(round, from, to, bytes int, payload any) error {
	if err := f.check(from, to); err != nil {
		return err
	}
	ev := Event{Round: round, From: from, To: to, Bytes: bytes}
	f.mu.Lock()
	if IsEchoRound(round) {
		// Echo digests are consistency-layer overhead: tallied apart so
		// the protocol counters (and the trace netsim replays) match a
		// semi-honest run exactly.
		f.echoMsgs++
		f.echoBytes += int64(bytes)
	} else {
		f.msgs[from]++
		f.bytes[from] += int64(bytes)
		if round > f.maxRound {
			f.maxRound = round
		}
		rs := f.rounds[round]
		rs.Messages++
		rs.Bytes += int64(bytes)
		f.rounds[round] = rs
		if !f.traceOff {
			f.trace = append(f.trace, ev)
		}
	}
	dropped := f.drop != nil && f.drop(ev)
	f.mu.Unlock()
	if dropped {
		return nil
	}
	select {
	case f.queues[from][to] <- message{payload: payload, bytes: bytes, round: round}:
		return nil
	default:
		return fmt.Errorf("transport: queue %d→%d full (capacity %d)", from, to, f.capacity)
	}
}

// Recv blocks until a message from the given peer arrives (or the
// configured timeout expires). It accepts any round tag; new code
// should prefer RecvCtx, which is cancellable and validates the tag.
func (f *Fabric) Recv(to, from int) (any, error) {
	return f.RecvCtx(context.Background(), to, from, -1)
}

// RecvCtx blocks until a message from the given peer arrives, the
// context is cancelled, the configured timeout expires, or the peer is
// marked down. If round is non-negative the received message's round
// tag must match it: protocols have static round structure, so a
// mismatch proves the stream was shifted by a dropped, duplicated or
// reordered message, and the receive fails with a typed AbortError
// instead of silently consuming a stale payload.
func (f *Fabric) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if err := f.check(from, to); err != nil {
		return nil, err
	}
	q := f.queues[from][to]
	// Fast path — and drain preference: messages the peer sent before
	// crashing are still delivered, like buffered TCP data before EOF.
	select {
	case m := <-q:
		return f.accept(m, from, round)
	default:
	}
	var timerC <-chan time.Time
	if f.timeout > 0 {
		tm := time.NewTimer(f.timeout)
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case m := <-q:
		return f.accept(m, from, round)
	case <-f.down[from]:
		// Drain once more: the crash may have raced a final send.
		select {
		case m := <-q:
			return f.accept(m, from, round)
		default:
		}
		return nil, Abort(from, round, "", ErrPeerDown)
	case <-done:
		return nil, Abort(from, round, "", ctx.Err())
	case <-timerC:
		return nil, Abort(from, round, "", ErrTimeout)
	}
}

func (f *Fabric) accept(m message, from, round int) (any, error) {
	if round >= 0 && m.round != round {
		return nil, roundMismatchAbort(from, round, m.round)
	}
	return m.payload, nil
}

// roundMismatchAbort is the shared typed abort for a message arriving
// with the wrong round tag. The stream was shifted — by a dropped,
// duplicated or reordered message, or by a sender replaying a stale
// round — so the abort names the sender and carries a CheckRoundReplay
// certificate recording the expected and observed tags.
func roundMismatchAbort(from, want, got int) error {
	return Abort(from, want, "",
		fmt.Errorf("%w: got %d from party %d, want %d", ErrRoundMismatch, got, from, want)).
		WithCert(&BlameCert{
			Version: BlameCertVersion, Accused: from, Reporter: -1,
			Round: want, Check: CheckRoundReplay,
			Detail: fmt.Sprintf("message from party %d carried round tag %d where %d was expected", from, got, want),
			Items: []BlameItem{
				{Name: "round-want", Data: []byte(fmt.Sprintf("%d", want))},
				{Name: "round-got", Data: []byte(fmt.Sprintf("%d", got))},
			},
		})
}

// Broadcast sends the same payload from one party to every other party,
// charging bytes once per recipient (the paper's model has no physical
// broadcast medium; a broadcast is n−1 unicasts). It is best-effort:
// every leg is attempted even when one fails, and the first error is
// returned after all legs, so one full queue or dead peer does not keep
// the message from the other parties.
func (f *Fabric) Broadcast(round, from, bytes int, payload any) error {
	return broadcastAll(f.n, from, func(to int) error {
		return f.Send(round, from, to, bytes, payload)
	})
}

// GatherAll receives one message from every other party, returned as a
// slice indexed by sender (the self slot is nil).
func (f *Fabric) GatherAll(to int) ([]any, error) {
	return f.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx is the cancellable, round-checked form of GatherAll.
func (f *Fabric) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, f, to, round)
}

// gatherAll implements GatherAllCtx over any Net's RecvCtx.
func gatherAll(ctx context.Context, net Net, to, round int) ([]any, error) {
	n := net.N()
	out := make([]any, n)
	for from := 0; from < n; from++ {
		if from == to {
			continue
		}
		p, err := net.RecvCtx(ctx, to, from, round)
		if err != nil {
			return nil, err
		}
		out[from] = p
	}
	return out, nil
}

// Stats returns a snapshot of the per-party counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		MessagesSent:   make([]int64, f.n),
		BytesSent:      make([]int64, f.n),
		MaxRound:       f.maxRound,
		DistinctRounds: len(f.rounds),
		PerRound:       make(map[int]RoundStats, len(f.rounds)),
		EchoMessages:   f.echoMsgs,
		EchoBytes:      f.echoBytes,
	}
	copy(s.MessagesSent, f.msgs)
	copy(s.BytesSent, f.bytes)
	for r, rs := range f.rounds {
		s.PerRound[r] = rs
	}
	return s
}

// Trace returns a copy of the recorded message trace, ordered by send
// time. Replay consumers group events by Round.
func (f *Fabric) Trace() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, len(f.trace))
	copy(out, f.trace)
	return out
}

// TotalBytes sums bytes sent by all parties.
func (s Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.BytesSent {
		t += b
	}
	return t
}

func (f *Fabric) check(a, b int) error {
	if a < 0 || a >= f.n || b < 0 || b >= f.n {
		return fmt.Errorf("transport: party index out of range (%d, %d) with n=%d", a, b, f.n)
	}
	if a == b {
		return fmt.Errorf("transport: party %d cannot message itself", a)
	}
	return nil
}
