package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	f, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(1, 0, 2, 10, "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := f.Recv(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "hello" {
		t.Errorf("got %v", got)
	}
}

func TestFIFOOrdering(t *testing.T) {
	f, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := f.Send(0, 0, 1, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := f.Recv(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.(int) != i {
			t.Fatalf("message %d arrived out of order as %v", i, got)
		}
	}
}

func TestBroadcastAndGather(t *testing.T) {
	const n = 5
	f, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(2, 1, 8, "b"); err != nil {
		t.Fatal(err)
	}
	for to := 0; to < n; to++ {
		if to == 1 {
			continue
		}
		got, err := f.Recv(to, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.(string) != "b" {
			t.Errorf("party %d got %v", to, got)
		}
	}

	// GatherAll from concurrent senders.
	var wg sync.WaitGroup
	for from := 1; from < n; from++ {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Send(3, from, 0, 4, from*10); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	all, err := f.GatherAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for from := 1; from < n; from++ {
		if all[from].(int) != from*10 {
			t.Errorf("slot %d = %v", from, all[from])
		}
	}
	if all[0] != nil {
		t.Error("self slot should be nil")
	}
}

func TestStatsAndTrace(t *testing.T) {
	f, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(1, 0, 1, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 0, 2, 50, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, 1, 2, 25, nil); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.BytesSent[0] != 150 || s.BytesSent[1] != 25 || s.BytesSent[2] != 0 {
		t.Errorf("bytes: %v", s.BytesSent)
	}
	if s.MessagesSent[0] != 2 {
		t.Errorf("messages: %v", s.MessagesSent)
	}
	if s.MaxRound != 2 {
		t.Errorf("max round %d", s.MaxRound)
	}
	if s.TotalBytes() != 175 {
		t.Errorf("total bytes %d", s.TotalBytes())
	}
	tr := f.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0] != (Event{Round: 1, From: 0, To: 1, Bytes: 100}) {
		t.Errorf("trace[0] = %+v", tr[0])
	}
}

func TestWithoutTrace(t *testing.T) {
	f, err := New(2, WithoutTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 0, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if len(f.Trace()) != 0 {
		t.Error("trace recorded despite WithoutTrace")
	}
	if f.Stats().BytesSent[0] != 1 {
		t.Error("stats must still be collected")
	}
}

func TestRecvTimeout(t *testing.T) {
	f, err := New(2, WithRecvTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.Recv(1, 0); err == nil {
		t.Error("expected timeout error")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("returned before the timeout window")
	}
}

func TestDropFilter(t *testing.T) {
	f, err := New(2,
		WithRecvTimeout(20*time.Millisecond),
		WithDropFilter(func(e Event) bool { return e.To == 1 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 0, 1, 1, "dropped"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(1, 0); err == nil {
		t.Error("dropped message was delivered")
	}
	// Stats still count the send attempt.
	if f.Stats().MessagesSent[0] != 1 {
		t.Error("dropped sends must be counted as sent")
	}
}

func TestInvalidEndpoints(t *testing.T) {
	f, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ from, to int }{{-1, 0}, {0, 2}, {1, 1}}
	for _, c := range cases {
		if err := f.Send(0, c.from, c.to, 0, nil); err == nil {
			t.Errorf("Send(%d→%d) accepted", c.from, c.to)
		}
		if _, err := f.Recv(c.to, c.from); err == nil {
			t.Errorf("Recv(%d←%d) accepted", c.to, c.from)
		}
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
}

func TestQueueFull(t *testing.T) {
	f, err := New(2, WithQueueCapacity(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 0, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 0, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(0, 0, 1, 1, nil); err == nil {
		t.Error("expected queue-full error")
	}
}

func TestConcurrentAllToAll(t *testing.T) {
	const n = 8
	f, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := 0; to < n; to++ {
				if to == p {
					continue
				}
				if err := f.Send(0, p, to, 1, p); err != nil {
					errs <- err
					return
				}
			}
			all, err := f.GatherAll(p)
			if err != nil {
				errs <- err
				return
			}
			for from := 0; from < n; from++ {
				if from == p {
					continue
				}
				if all[from].(int) != from {
					errs <- fmt.Errorf("party %d: slot %d = %v", p, from, all[from])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
