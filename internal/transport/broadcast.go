package transport

// broadcastAll is the one shared implementation of best-effort
// broadcast over pairwise channels: n−1 unicasts via send, every leg
// attempted even when one fails, the first error returned after all
// legs. The paper's model has no physical broadcast medium, so every
// Net implements Broadcast through this helper (each supplies its own
// send closure: the in-memory fabric and the TCP meshes a plain Send,
// FaultNet a Send that faults each leg independently, SubView a Send
// that translates indices). Keeping one copy means the consistency
// layer built on top of broadcast (echo.go) has exactly one send path
// to reason about.
func broadcastAll(n, from int, send func(to int) error) error {
	var firstErr error
	for to := 0; to < n; to++ {
		if to == from {
			continue
		}
		if err := send(to); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
