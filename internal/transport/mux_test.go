package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking/internal/leakcheck"
	"groupranking/internal/telemetry"
)

// muxMesh builds an n-daemon mux mesh over loopback and returns the
// endpoints plus a teardown.
func muxMesh(t *testing.T, n int, optsFor func(i int) MuxOptions) []*SessionMux {
	t.Helper()
	addrs, err := FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatalf("reserving addrs: %v", err)
	}
	muxes := make([]*SessionMux, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			muxes[i], errs[i] = NewSessionMux(addrs, i, 5*time.Second, optsFor(i))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mux %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range muxes {
			m.Close()
		}
	})
	return muxes
}

// openAll opens sid on every endpoint of the mesh.
func openAll(t *testing.T, muxes []*SessionMux, sid string) []*MuxSession {
	t.Helper()
	out := make([]*MuxSession, len(muxes))
	for i, m := range muxes {
		s, err := m.Open(sid, 0)
		if err != nil {
			t.Fatalf("open %q on %d: %v", sid, i, err)
		}
		out[i] = s
	}
	return out
}

// ringPass sends one tagged integer around the ring and checks every
// hop sees the session-specific value.
func ringPass(t *testing.T, sess []*MuxSession, base int) {
	t.Helper()
	n := len(sess)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := (i + 1) % n
			prev := (i + n - 1) % n
			if err := sess[i].Send(7, i, next, 8, base+i); err != nil {
				errCh <- fmt.Errorf("party %d send: %w", i, err)
				return
			}
			v, err := sess[i].RecvCtx(context.Background(), i, prev, 7)
			if err != nil {
				errCh <- fmt.Errorf("party %d recv: %w", i, err)
				return
			}
			if got, want := v.(int), base+prev; got != want {
				errCh <- fmt.Errorf("party %d got %d, want %d", i, got, want)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// Two sessions ride the same mesh concurrently; the telemetry link
// counter proves exactly one connection per peer pair was ever made.
func TestMuxSessionsShareOneLink(t *testing.T) {
	defer leakcheck.Check(t)
	// Only party 0 gets the registry: the link counters are per
	// endpoint, and sharing one registry across parties would conflate
	// their views of "peer".
	reg := telemetry.NewRegistry()
	muxes := muxMesh(t, 3, func(i int) MuxOptions {
		if i == 0 {
			return MuxOptions{Telemetry: reg}
		}
		return MuxOptions{}
	})
	a := openAll(t, muxes, "sess-a")
	b := openAll(t, muxes, "sess-b")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ringPass(t, a, 100) }()
	go func() { defer wg.Done(); ringPass(t, b, 200) }()
	wg.Wait()
	for _, s := range append(a, b...) {
		s.Close()
	}
	// Party 0 accepted exactly one connection from each higher peer.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{
		`mux_link_connects_total{peer="1"} 1`,
		`mux_link_connects_total{peer="2"} 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics missing %q:\n%s", want, dump)
		}
	}
}

// Frames sent into a session before the receiver opens it are buffered
// and replayed in order on Open.
func TestMuxPendingReplay(t *testing.T) {
	defer leakcheck.Check(t)
	muxes := muxMesh(t, 2, func(int) MuxOptions { return MuxOptions{} })
	s0, err := muxes[0].Open("early", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	for i := 0; i < 3; i++ {
		if err := s0.Send(i, 0, 1, 4, 10+i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Give the frames time to land in the pending buffer, then open.
	time.Sleep(50 * time.Millisecond)
	s1, err := muxes[1].Open("early", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	for i := 0; i < 3; i++ {
		v, err := s1.RecvCtx(context.Background(), 1, 0, i)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if v.(int) != 10+i {
			t.Fatalf("recv %d: got %v", i, v)
		}
	}
}

// Closing (or abandoning) one session must not disturb another on the
// same link: session A closes mid-flight, B still completes.
func TestMuxCloseIsolation(t *testing.T) {
	defer leakcheck.Check(t)
	muxes := muxMesh(t, 3, func(int) MuxOptions { return MuxOptions{} })
	a := openAll(t, muxes, "doomed")
	b := openAll(t, muxes, "survivor")
	// A few frames in flight for A, then it dies everywhere.
	_ = a[0].Send(1, 0, 1, 4, 1)
	for _, s := range a {
		s.Close()
	}
	ringPass(t, b, 300)
	for _, s := range b {
		s.Close()
	}
	// Receives on the closed session fail with ErrClosed, typed.
	_, err := a[1].RecvCtx(context.Background(), 1, 0, 1)
	var abort *AbortError
	if !errors.As(err, &abort) || !errors.Is(err, ErrClosed) {
		t.Fatalf("closed-session recv: got %v, want AbortError/ErrClosed", err)
	}
}

// A session whose consumer stalls overflows its receive budget and is
// failed alone; the link and its sibling session keep working.
func TestMuxOverflowBudgetIsolation(t *testing.T) {
	defer leakcheck.Check(t)
	muxes := muxMesh(t, 2, func(int) MuxOptions { return MuxOptions{QueueCap: 4} })
	slow := openAll(t, muxes, "slow")
	ok := openAll(t, muxes, "ok")
	// Flood the slow session far past its 4-frame budget; nobody reads.
	for i := 0; i < 32; i++ {
		if err := slow[0].Send(1, 0, 1, 4, i); err != nil {
			t.Fatalf("flood send %d: %v", i, err)
		}
	}
	// The sibling still works both ways.
	ringPass(t, ok, 400)
	// The slow session's receives from peer 0 eventually fail typed —
	// after draining the frames that fit the budget.
	deadline := time.After(5 * time.Second)
	for {
		_, err := slow[1].RecvCtx(context.Background(), 1, 0, -1)
		if err == nil {
			select {
			case <-deadline:
				t.Fatal("overflowed session never failed")
			default:
				continue
			}
		}
		var abort *AbortError
		if !errors.As(err, &abort) {
			t.Fatalf("overflow error not typed: %v", err)
		}
		if !strings.Contains(err.Error(), "budget") {
			t.Fatalf("overflow error does not name the budget: %v", err)
		}
		break
	}
	for _, s := range append(slow, ok...) {
		s.Close()
	}
}

// Control frames bypass sessions and arrive on the control channel.
func TestMuxControlPlane(t *testing.T) {
	defer leakcheck.Check(t)
	muxes := muxMesh(t, 2, func(int) MuxOptions { return MuxOptions{} })
	if err := muxes[0].SendControl(1, 42); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-muxes[1].Control():
		if msg.From != 0 || msg.Payload.(int) != 42 {
			t.Fatalf("control got %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("control frame never arrived")
	}
}

// A session id cannot be reused after close: late frames for its first
// life were dropped, so a second life would start with a hole.
func TestMuxSIDReuseRejected(t *testing.T) {
	defer leakcheck.Check(t)
	muxes := muxMesh(t, 2, func(int) MuxOptions { return MuxOptions{} })
	s, err := muxes[0].Open("once", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := muxes[0].Open("once", 0); err == nil {
		t.Fatal("reopening a closed sid succeeded")
	}
	if _, err := muxes[0].Open("", 0); err == nil {
		t.Fatal("empty sid accepted")
	}
}

// Duplicate mesh addresses are rejected at construction with the typed
// collision error naming both parties, on every fabric constructor.
func TestMeshAddrCollision(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	addrs[2] = addrs[0]
	var collision *AddrCollisionError
	if _, err := NewTCPFabric(addrs, 0, time.Second); !errors.As(err, &collision) {
		t.Fatalf("NewTCPFabric: got %v, want AddrCollisionError", err)
	} else if collision.Parties != [2]int{0, 2} {
		t.Fatalf("collision parties = %v, want [0 2]", collision.Parties)
	}
	if _, err := NewSessionMux(addrs, 1, time.Second, MuxOptions{}); !errors.As(err, &collision) {
		t.Fatalf("NewSessionMux: got %v, want AddrCollisionError", err)
	}
	if _, err := NewRecoveringTCPFabric(addrs, 0, time.Second, RecoverOptions{SessionID: "x"}); !errors.As(err, &collision) {
		t.Fatalf("NewRecoveringTCPFabric: got %v, want AddrCollisionError", err)
	}
	// Equivalent spellings collide too: wildcard vs explicit zero host,
	// localhost vs loopback IP.
	if err := validateMeshAddrs([]string{":9001", "0.0.0.0:9001"}); err == nil {
		t.Fatal("wildcard spellings not caught")
	}
	if err := validateMeshAddrs([]string{"localhost:9001", "127.0.0.1:9001"}); err == nil {
		t.Fatal("localhost aliasing not caught")
	}
	if err := validateMeshAddrs([]string{"hostA:9001", "hostB:9001"}); err != nil {
		t.Fatalf("distinct hosts, same port wrongly rejected: %v", err)
	}
}
