package transport

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/big"
	"testing"
)

// The echo round compares digests computed by DIFFERENT processes: the
// sender digests its in-memory value, receivers digest the gob-decoded
// copy, and any representation drift between the two is reported as an
// equivocation by an honest party. These tests pin the equivalences
// the canonical digest must provide.

type digestMsg struct {
	A, B   int
	Name   string
	Shares []*big.Int
	hidden int // unexported: skipped by gob and by the digest alike
}

type digestOther struct {
	A, B   int
	Name   string
	Shares []*big.Int
}

// gobRoundTrip encodes v as an interface value and decodes it the way
// a receiving fabric does.
func gobRoundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func mustDigest(t *testing.T, v any) []byte {
	t.Helper()
	d, err := PayloadDigest(v)
	if err != nil {
		t.Fatalf("PayloadDigest(%#v): %v", v, err)
	}
	return d
}

// TestPayloadDigestSurvivesGobRoundTrip: the receiver's decoded copy
// must digest identically to the sender's original, including the two
// representations gob does NOT round-trip byte-stably: a nil pointer
// in a slice (decoded as an allocated zero) and a nil versus empty
// slice.
func TestPayloadDigestSurvivesGobRoundTrip(t *testing.T) {
	gob.Register(digestMsg{})
	cases := []any{
		digestMsg{A: 1, B: -7, Name: "x", Shares: []*big.Int{big.NewInt(42), big.NewInt(0)}},
		digestMsg{Shares: []*big.Int{nil, big.NewInt(9)}}, // nil decodes as allocated zero
		digestMsg{},
		digestMsg{Shares: []*big.Int{}}, // empty vs absent slice
	}
	for _, v := range cases {
		want := mustDigest(t, v)
		got := mustDigest(t, gobRoundTrip(t, v))
		if !bytes.Equal(want, got) {
			t.Errorf("digest of %#v changed across a gob round-trip:\n sent %x\n recv %x", v, want, got)
		}
	}
}

// TestPayloadDigestIndependentOfGobState: the digest must not change
// when unrelated gob traffic happens first. Gob's wire type ids come
// from a process-global counter, so hashing a gob stream bakes the
// process's encode history into the digest — the regression this pins
// was an honest party blamed for equivocation because the cheater's
// fault injector had serialised one extra type before its first digest.
func TestPayloadDigestIndependentOfGobState(t *testing.T) {
	gob.Register(digestMsg{})
	v := digestMsg{A: 3, Name: "stable", Shares: []*big.Int{big.NewInt(5)}}
	before := mustDigest(t, v)

	// Simulate a process whose transport serialised other types first.
	type primer struct{ X, Y string }
	gob.Register(primer{})
	var noise any = primer{X: "shift", Y: "ids"}
	if err := gob.NewEncoder(io.Discard).Encode(&noise); err != nil {
		t.Fatal(err)
	}

	after := mustDigest(t, v)
	if !bytes.Equal(before, after) {
		t.Fatalf("digest depends on gob encoder state: %x then %x", before, after)
	}
}

// TestPayloadDigestDistinguishes: values that differ in a field, in a
// concrete type, or in nesting must not collide.
func TestPayloadDigestDistinguishes(t *testing.T) {
	base := digestMsg{A: 1, B: 2, Name: "n", Shares: []*big.Int{big.NewInt(3)}}
	distinct := []any{
		base,
		digestMsg{A: 2, B: 2, Name: "n", Shares: []*big.Int{big.NewInt(3)}},
		digestMsg{A: 1, B: 2, Name: "m", Shares: []*big.Int{big.NewInt(3)}},
		digestMsg{A: 1, B: 2, Name: "n", Shares: []*big.Int{big.NewInt(4)}},
		digestMsg{A: 1, B: 2, Name: "n", Shares: []*big.Int{big.NewInt(3), big.NewInt(0)}},
		digestOther{A: 1, B: 2, Name: "n", Shares: []*big.Int{big.NewInt(3)}}, // same shape, other type
		[]byte("n"),
		"n",
	}
	seen := map[string]any{}
	for _, v := range distinct {
		d := string(mustDigest(t, v))
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between %#v and %#v", prev, v)
		}
		seen[d] = v
	}
}

// TestPayloadDigestRejectsMaps: map iteration order is not canonical,
// so digesting one must fail loudly instead of flaking.
func TestPayloadDigestRejectsMaps(t *testing.T) {
	if _, err := PayloadDigest(map[string]int{"a": 1}); err == nil {
		t.Fatal("map digested without error")
	}
}
