package transport

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"groupranking/internal/telemetry"
	"groupranking/internal/wirecodec"
)

// SessionMux generalizes the RecoveringTCPFabric handshake's sessionID
// into a frame-level route tag: N concurrent ranking sessions share ONE
// persistent TCP connection per peer pair, each session seeing its own
// transport.Net with per-session receive queues. This is the transport
// layer under the rankd coordinator daemon — a long-lived process hosts
// many sessions without paying a mesh formation (or a file descriptor
// pair) per session.
//
// Isolation contract: a session that aborts, overflows its receive
// budget, or closes never tears down the shared link — the other
// sessions keep flowing. Only a link-level failure (connection loss,
// malformed frame) fails every session's receives from that peer, each
// with a typed *AbortError naming the peer.
//
// Besides session data frames the mux carries a small control plane:
// untagged frames a daemon uses to negotiate session admission with its
// peers before any party goroutine spawns (see internal/service).
type SessionMux struct {
	n  int
	me int

	timeout    time.Duration
	queueCap   int
	pendingCap int

	conns []net.Conn
	encMu []sync.Mutex

	mu       sync.Mutex
	sessions map[string]*MuxSession
	pending  map[string]*pendingSession
	closed   map[string]bool
	closedQ  []string
	linkErr  []error

	ctrl chan ControlMsg
	mm   *muxMetrics

	// rec holds the recovering-mode state (nil when the mux was built
	// without MuxOptions.Recovery; every recovery hook checks it).
	rec *muxRecovery

	// lastSeen[peer] is the unix-nano time of the last frame decoded
	// from that peer (atomic; 0 before first contact).
	lastSeen []int64

	closeOnce sync.Once
	closeCh   chan struct{}
	pumps     sync.WaitGroup
}

// MuxOptions tunes a SessionMux. The zero value is a working default.
type MuxOptions struct {
	// Telemetry, when non-nil, feeds the mux_* metrics family: link
	// connects (exactly one per peer for the mux's whole lifetime — the
	// counter load tests assert on), per-link frame traffic, session
	// open/close counts and pending-buffer drops.
	Telemetry *telemetry.Registry
	// QueueCap bounds each session's per-peer receive queue in frames
	// (default 1024). A session whose consumer falls this far behind one
	// peer is failed — that is its memory budget — without touching the
	// link or any other session.
	QueueCap int
	// PendingCap bounds the frames buffered per session that a peer has
	// started sending into before this daemon opened it (default 1024).
	PendingCap int
	// ControlCap bounds the control-plane delivery channel (default 256).
	ControlCap int
	// Recovery, when non-nil, switches the mux into recovering mode:
	// the listener stays open for the mux's lifetime, lost links are
	// re-dialed and re-accepted instead of failing every session, and
	// journal-backed sessions opened with OpenRecovering survive both
	// peer restarts and a restart of this daemon itself.
	Recovery *MuxRecovery
}

// MuxRecovery configures a recovering SessionMux.
type MuxRecovery struct {
	// Epoch is this daemon's boot epoch (1 = first run), carried in the
	// link handshake so peers can tell a restarted daemon from a stale
	// connection.
	Epoch int
	// Grace bounds how long a lost link may stay down before the mux
	// blames the peer and fails every open session's receives from it
	// (default 30s). A link that re-attaches within the grace resumes
	// every session silently.
	Grace time.Duration
}

// ControlMsg is one control-plane frame: mux-level traffic between
// daemons that belongs to no session.
type ControlMsg struct {
	From    int
	Payload any
}

// muxHello introduces a daemon endpoint on a freshly dialed mux link.
// Epoch is the dialing daemon's boot epoch (0 when recovery is off):
// a recovering acceptor uses it to reject stale connections from
// before a peer's restart.
type muxHello struct {
	Party int
	Epoch int
}

// muxEnv is the mux wire frame: the TCP envelope extended with the
// session route tag. Kind separates per-session protocol data from the
// daemons' control plane (whose frames carry an empty SID). Seq is the
// per-(session,peer) send sequence number recovering sessions stamp on
// data frames (1-based; 0 marks an unsequenced frame from a session
// running without recovery) and the resume cursor on resume frames.
type muxEnv struct {
	SID     string
	Kind    uint8
	Round   int
	Bytes   int
	Seq     uint64
	Payload any
}

const (
	muxKindData    uint8 = 1
	muxKindControl uint8 = 2
	// muxKindResume is a per-session retransmission request: "I hold
	// Seq frames journaled from you for SID — re-send everything after
	// that." Sent after a link re-attach and by restarted daemons when
	// they re-adopt a session.
	muxKindResume uint8 = 3

	defaultMuxQueueCap   = 1024
	defaultMuxPendingCap = 1024
	defaultMuxControlCap = 256

	// muxTombstones bounds the closed-session set that absorbs late
	// frames; beyond it the oldest tombstones are forgotten (a frame for
	// a long-closed session then counts as pending and ages out).
	muxTombstones = 4096
	// muxPendingSessions bounds how many distinct not-yet-opened
	// sessions the mux buffers frames for; pendingTTL ages out entries
	// whose session never opens (e.g. an admission handshake that died
	// between the peer's open and ours).
	muxPendingSessions = 1024
	pendingTTL         = time.Minute
)

// pendingSession buffers data frames for a session a peer is already
// running but this endpoint has not opened yet.
type pendingSession struct {
	frames  []pendingFrame
	dropped bool
	since   time.Time
}

type pendingFrame struct {
	from int
	env  muxEnv
}

// NewSessionMux builds daemon me's endpoint of an n-daemon mesh, one
// persistent connection per peer pair, formed exactly like NewTCPFabric
// (listen on addrs[me], dial lower-indexed peers with backoff, accept
// higher-indexed ones) but with a typed hello frame so the link can
// later evolve independently of the single-session fabric. All daemons
// must call it concurrently. timeout bounds each write and is the
// default per-session receive bound; <= 0 means no bound.
func NewSessionMux(addrs []string, me int, timeout time.Duration, opts MuxOptions) (*SessionMux, error) {
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("transport: mux mesh needs at least two parties")
	}
	if me < 0 || me >= n {
		return nil, fmt.Errorf("transport: party index %d out of range", me)
	}
	if err := validateMeshAddrs(addrs); err != nil {
		return nil, err
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = defaultMuxQueueCap
	}
	if opts.PendingCap <= 0 {
		opts.PendingCap = defaultMuxPendingCap
	}
	if opts.ControlCap <= 0 {
		opts.ControlCap = defaultMuxControlCap
	}
	m := &SessionMux{
		n:          n,
		me:         me,
		timeout:    timeout,
		queueCap:   opts.QueueCap,
		pendingCap: opts.PendingCap,
		conns:      make([]net.Conn, n),
		encMu:      make([]sync.Mutex, n),
		sessions:   make(map[string]*MuxSession),
		pending:    make(map[string]*pendingSession),
		closed:     make(map[string]bool),
		linkErr:    make([]error, n),
		ctrl:       make(chan ControlMsg, opts.ControlCap),
		lastSeen:   make([]int64, n),
		closeCh:    make(chan struct{}),
	}
	m.mm = newMuxMetrics(opts.Telemetry)

	if opts.Recovery != nil {
		if err := m.formRecovering(addrs, *opts.Recovery); err != nil {
			m.Close()
			return nil, err
		}
		return m, nil
	}

	ln, err := net.Listen("tcp", addrs[me])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addrs[me], err)
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(dialDeadline))
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept from higher-indexed peers; each introduces itself with a
	// hello frame under a read deadline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < n-1-me; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			conn.SetReadDeadline(time.Now().Add(handshakeDeadline))
			rd := bufio.NewReader(conn)
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				conn.Close()
				errs <- fmt.Errorf("transport: mux handshake: %w", err)
				return
			}
			conn.SetReadDeadline(time.Time{})
			hello, ok := v.(muxHello)
			if !ok || hello.Party <= me || hello.Party >= n || m.conns[hello.Party] != nil {
				conn.Close()
				errs <- fmt.Errorf("transport: invalid mux handshake from peer %v", v)
				return
			}
			m.attach(hello.Party, conn, rd)
		}
	}()

	// Dial lower-indexed peers with exponential backoff and jitter.
	for peer := 0; peer < me; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			jitter := rand.New(rand.NewSource(int64(me)<<16 | int64(peer)))
			backoff := dialBackoffBase
			deadline := time.Now().Add(dialDeadline)
			for {
				conn, err := net.Dial("tcp", addrs[peer])
				if err != nil {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("transport: dialing party %d: %w", peer, err)
						return
					}
					d := backoff/2 + time.Duration(jitter.Int63n(int64(backoff)))
					time.Sleep(d)
					if backoff *= 2; backoff > dialBackoffMax {
						backoff = dialBackoffMax
					}
					continue
				}
				conn.SetWriteDeadline(time.Now().Add(handshakeDeadline))
				if err := wirecodec.WriteValue(conn, muxHello{Party: me}); err != nil {
					conn.Close()
					errs <- fmt.Errorf("transport: mux handshake: %w", err)
					return
				}
				conn.SetWriteDeadline(time.Time{})
				m.attach(peer, conn, bufio.NewReader(conn))
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// attach wires a handshaken link and starts its reader pump. The pump
// is the only reader of the connection; a read or decode failure fails
// the LINK (and with it every session's receives from that peer), which
// is the one failure a session cannot be isolated from.
func (m *SessionMux) attach(peer int, conn net.Conn, rd *bufio.Reader) {
	m.mu.Lock()
	m.conns[peer] = conn
	m.mu.Unlock()
	lm := m.mm.link(peer)
	lm.connects.inc()
	lm.linkUp.Set(1)
	m.pumps.Add(1)
	go func() {
		defer m.pumps.Done()
		for {
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				m.failLink(peer, err)
				return
			}
			env, ok := v.(muxEnv)
			if !ok {
				m.failLink(peer, fmt.Errorf("transport: party %d sent a %T frame, want mux envelope", peer, v))
				return
			}
			atomic.StoreInt64(&m.lastSeen[peer], time.Now().UnixNano())
			switch env.Kind {
			case muxKindControl:
				m.mm.ctrlFrames.inc()
				select {
				case m.ctrl <- ControlMsg{From: peer, Payload: env.Payload}:
				case <-m.closeCh:
					return
				}
			case muxKindData:
				m.mm.dataFrames.inc()
				m.routeData(peer, env)
			default:
				m.failLink(peer, fmt.Errorf("transport: party %d sent mux frame kind %d", peer, env.Kind))
				return
			}
		}
	}()
}

// routeData delivers one data frame: to its open session, to the
// pending buffer when the session has not been opened here yet, or to
// the floor when the session is already closed (tombstoned).
func (m *SessionMux) routeData(from int, env muxEnv) {
	m.mu.Lock()
	if s, ok := m.sessions[env.SID]; ok {
		m.mu.Unlock()
		s.deliver(from, env)
		return
	}
	if m.closed[env.SID] {
		m.mu.Unlock()
		m.mm.lateFrames.inc()
		return
	}
	p := m.pending[env.SID]
	if p == nil {
		if len(m.pending) >= muxPendingSessions {
			m.prunePendingLocked()
		}
		if len(m.pending) >= muxPendingSessions {
			m.mu.Unlock()
			m.mm.pendingDrops.inc()
			return
		}
		p = &pendingSession{since: time.Now()}
		m.pending[env.SID] = p
	}
	if len(p.frames) >= m.pendingCap {
		p.dropped = true
		m.mu.Unlock()
		m.mm.pendingDrops.inc()
		return
	}
	p.frames = append(p.frames, pendingFrame{from: from, env: env})
	m.mu.Unlock()
}

// prunePendingLocked ages out pending buffers whose session never
// opened. Caller holds m.mu.
func (m *SessionMux) prunePendingLocked() {
	cutoff := time.Now().Add(-pendingTTL)
	for sid, p := range m.pending {
		if p.since.Before(cutoff) {
			delete(m.pending, sid)
		}
	}
}

// failLink records a dead link and fails every open session's receives
// from that peer. Sessions are snapshotted under the lock but failed
// outside it (failPeer takes per-session locks).
func (m *SessionMux) failLink(peer int, cause error) {
	m.mu.Lock()
	if m.linkErr[peer] == nil {
		m.linkErr[peer] = cause
	}
	open := make([]*MuxSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	m.mm.link(peer).linkUp.Set(0)
	for _, s := range open {
		s.failPeer(peer, fmt.Errorf("%w: party %d: %v", ErrPeerDown, peer, cause))
	}
}

// Parties reports the mesh size (initiator + participants).
func (m *SessionMux) Parties() int { return m.n }

// Me reports this endpoint's party index.
func (m *SessionMux) Me() int { return m.me }

// Open registers sid and returns its transport.Net view of the shared
// mesh. Frames a peer sent into the session before this call were
// buffered and are replayed in per-peer FIFO order. timeout bounds this
// session's blocking receives and its writes; <= 0 inherits the mux
// default. A sid can be opened once per mux lifetime — reuse after
// Close is an error, because late frames for the old life were dropped.
func (m *SessionMux) Open(sid string, timeout time.Duration) (*MuxSession, error) {
	return m.open(sid, timeout, nil)
}

// open is the shared session-registration path behind Open and
// OpenRecovering; j is non-nil only for journal-backed sessions.
func (m *SessionMux) open(sid string, timeout time.Duration, j Journaler) (*MuxSession, error) {
	if sid == "" {
		return nil, fmt.Errorf("transport: mux session needs a non-empty id")
	}
	if timeout <= 0 {
		timeout = m.timeout
	}
	select {
	case <-m.closeCh:
		return nil, fmt.Errorf("transport: mux is closed")
	default:
	}
	s := &MuxSession{
		m:        m,
		sid:      sid,
		timeout:  timeout,
		inbox:    make([]chan muxEnv, m.n),
		peerErr:  make([]error, m.n),
		peerDown: make([]chan struct{}, m.n),
		rounds:   make(map[int]RoundStats),
		closeCh:  make(chan struct{}),
	}
	for i := 0; i < m.n; i++ {
		if i == m.me {
			continue
		}
		s.inbox[i] = make(chan muxEnv, m.queueCap)
		s.peerDown[i] = make(chan struct{})
	}
	if j != nil {
		if err := s.loadJournal(j); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	if m.sessions[sid] != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: mux session %q already open", sid)
	}
	if m.closed[sid] {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: mux session id %q was already used and closed", sid)
	}
	p := m.pending[sid]
	delete(m.pending, sid)
	if p != nil && p.dropped {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: mux session %q overflowed its pending buffer before it was opened", sid)
	}
	// Pre-fail peers whose link already died: the session must see the
	// same typed abort a live session would.
	var deadErrs []error
	var deadPeers []int
	for peer, err := range m.linkErr {
		if err != nil && peer != m.me {
			deadPeers = append(deadPeers, peer)
			deadErrs = append(deadErrs, fmt.Errorf("%w: party %d: %v", ErrPeerDown, peer, err))
		}
	}
	m.sessions[sid] = s
	if j != nil && m.rec != nil {
		m.rec.resumable[sid] = j
	}
	m.mu.Unlock()
	for i, peer := range deadPeers {
		s.failPeer(peer, deadErrs[i])
	}
	if p != nil {
		// Replay in arrival order: the single pump per peer appended in
		// order, so per-peer FIFO is preserved.
		for _, f := range p.frames {
			s.deliver(f.from, f.env)
		}
	}
	if j != nil {
		// Ask every connected peer for anything we have not journaled
		// yet; peers that attach later are asked on attach.
		s.announceResume()
	}
	m.mm.onSessionOpen()
	return s, nil
}

// retire tombstones a closed session so late frames for it are dropped
// instead of accumulating as pending.
func (m *SessionMux) retire(sid string) {
	m.mu.Lock()
	delete(m.sessions, sid)
	if !m.closed[sid] {
		m.closed[sid] = true
		m.closedQ = append(m.closedQ, sid)
		if len(m.closedQ) > muxTombstones {
			delete(m.closed, m.closedQ[0])
			m.closedQ = append([]string(nil), m.closedQ[1:]...)
		}
	}
	m.mu.Unlock()
	m.mm.onSessionClose()
}

// Control exposes the mux's control plane: frames peers sent with
// SendControl, in arrival order. The channel is never closed; select
// against Done.
func (m *SessionMux) Control() <-chan ControlMsg { return m.ctrl }

// Done is closed when the mux shuts down.
func (m *SessionMux) Done() <-chan struct{} { return m.closeCh }

// SendControl sends one control-plane frame to a peer daemon. Control
// payloads of unregistered types must be gob-registered (they ride the
// wirecodec gob-fallback frame).
func (m *SessionMux) SendControl(to int, payload any) error {
	if to < 0 || to >= m.n || to == m.me {
		return fmt.Errorf("transport: invalid control destination %d", to)
	}
	return m.writeFrame(to, m.timeout, muxEnv{Kind: muxKindControl, Payload: payload})
}

// writeFrame serializes one frame onto the shared link to a peer.
func (m *SessionMux) writeFrame(to int, timeout time.Duration, env muxEnv) error {
	m.mu.Lock()
	conn := m.conns[to]
	lerr := m.linkErr[to]
	m.mu.Unlock()
	if conn == nil || lerr != nil {
		if lerr == nil {
			lerr = fmt.Errorf("no connection")
		}
		return Abort(to, env.Round, "", fmt.Errorf("%w: party %d: %v", ErrPeerDown, to, lerr))
	}
	m.encMu[to].Lock()
	defer m.encMu[to].Unlock()
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if err := wirecodec.WriteValue(conn, env); err != nil {
		return Abort(to, env.Round, "", fmt.Errorf("%w: sending to party %d: %v", ErrPeerDown, to, err))
	}
	return nil
}

// Health implements telemetry.HealthSource for the daemon's admin
// endpoint: mux links are either connected or dead.
func (m *SessionMux) Health() []telemetry.PeerHealth {
	closed := false
	select {
	case <-m.closeCh:
		closed = true
	default:
	}
	out := make([]telemetry.PeerHealth, 0, m.n-1)
	m.mu.Lock()
	defer m.mu.Unlock()
	for peer := 0; peer < m.n; peer++ {
		if peer == m.me {
			continue
		}
		state := telemetry.StateConnected
		if closed || m.linkErr[peer] != nil || m.conns[peer] == nil {
			state = telemetry.StateDead
			// A recovering link that is down but inside its grace window
			// is reconnecting, not dead.
			if !closed && m.rec != nil && m.linkErr[peer] == nil && !m.rec.blamed[peer] {
				state = telemetry.StateReconnecting
			}
		}
		last := int64(-1)
		if ns := atomic.LoadInt64(&m.lastSeen[peer]); ns != 0 {
			last = time.Since(time.Unix(0, ns)).Milliseconds()
		}
		out = append(out, telemetry.PeerHealth{Peer: peer, State: state, LastContactMS: last})
	}
	return out
}

// Close tears down the mesh: every open session's receives fail with
// ErrClosed, the pumps drain, and no goroutine outlives the mux.
// Safe to call more than once and concurrently with traffic.
func (m *SessionMux) Close() {
	m.closeOnce.Do(func() {
		close(m.closeCh)
		m.mu.Lock()
		if m.rec != nil {
			m.rec.closeLocked()
		}
		for _, c := range m.conns {
			if c != nil {
				c.Close()
			}
		}
		m.mu.Unlock()
		m.pumps.Wait()
	})
}

// MuxSession is one session's view of the shared mesh: a transport.Net
// whose frames carry the session's route tag, with the same endpoint
// statistics TCPFabric reports. Closing it detaches the session from
// the mux (late frames are dropped); it never closes the shared links.
type MuxSession struct {
	m       *SessionMux
	sid     string
	timeout time.Duration

	inbox []chan muxEnv

	peerMu   sync.Mutex
	peerErr  []error
	peerDown []chan struct{}

	statsMu   sync.Mutex
	msgs      int64
	bytes     int64
	maxRound  int
	rounds    map[int]RoundStats
	echoMsgs  int64
	echoBytes int64

	// Journal-backed recovery state (nil/unused when j is nil): see
	// muxrecover.go. sendMu guards the send side (sequence counters and
	// replay suppression), recvMu the receive side (replay queues, the
	// next-expected cursors and the per-peer reorder stash).
	j           Journaler
	sendMu      sync.Mutex
	sendSeq     []uint64
	replaySends [][]JournalMsg
	resuming    []bool
	recvMu      sync.Mutex
	recvNext    []uint64
	replayRecvs [][]JournalMsg
	stash       []map[uint64]muxEnv

	closeOnce sync.Once
	closeCh   chan struct{}
}

var _ Net = (*MuxSession)(nil)

// SID reports the session's route tag.
func (s *MuxSession) SID() string { return s.sid }

// N implements Net.
func (s *MuxSession) N() int { return s.m.n }

// deliver enqueues one inbound frame. The queue is this session's
// receive budget: overflowing it fails THIS session's receives from
// that peer (isolation demands the pump never blocks on a slow
// session), leaving the link and every other session untouched.
func (s *MuxSession) deliver(from int, env muxEnv) {
	if env.Kind == muxKindResume {
		// A retransmission request for this session; served off the pump
		// goroutine so a slow link never blocks other sessions' reads.
		s.serveResume(from, env.Seq)
		return
	}
	s.peerMu.Lock()
	failed := s.peerErr[from] != nil
	s.peerMu.Unlock()
	if failed {
		return
	}
	select {
	case s.inbox[from] <- env:
	default:
		s.failPeer(from, fmt.Errorf("mux session %s: receive queue from party %d overflowed its %d-frame budget", s.sid, from, cap(s.inbox[from])))
	}
}

// failPeer marks receives from one peer as failed for this session.
func (s *MuxSession) failPeer(from int, cause error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peerErr[from] != nil {
		return
	}
	s.peerErr[from] = cause
	close(s.peerDown[from])
}

// Send implements Net: the frame rides the shared link tagged with this
// session's id. Only this party's own index is a valid source.
func (s *MuxSession) Send(round, from, to, bytes int, payload any) error {
	if from != s.m.me {
		return fmt.Errorf("transport: mux party %d cannot send as %d", s.m.me, from)
	}
	if to < 0 || to >= s.m.n || to == s.m.me {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	s.statsMu.Lock()
	if IsEchoRound(round) {
		s.echoMsgs++
		s.echoBytes += int64(bytes)
	} else {
		s.msgs++
		s.bytes += int64(bytes)
		if round > s.maxRound {
			s.maxRound = round
		}
		rs := s.rounds[round]
		rs.Messages++
		rs.Bytes += int64(bytes)
		s.rounds[round] = rs
	}
	s.statsMu.Unlock()
	s.m.mm.onSessionSend(bytes)
	if s.j != nil {
		return s.sendRecovering(round, to, bytes, payload)
	}
	return s.m.writeFrame(to, s.timeout, muxEnv{SID: s.sid, Kind: muxKindData, Round: round, Bytes: bytes, Payload: payload})
}

// Recv implements Net.
func (s *MuxSession) Recv(to, from int) (any, error) {
	return s.RecvCtx(context.Background(), to, from, -1)
}

// RecvCtx implements Net. Frames already queued are drained even after
// the peer failed; a failed peer then surfaces as a typed AbortError
// carrying the first failure cause.
func (s *MuxSession) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if to != s.m.me {
		return nil, fmt.Errorf("transport: mux party %d cannot receive as %d", s.m.me, to)
	}
	if from < 0 || from >= s.m.n || from == s.m.me {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	if s.j != nil {
		return s.recvRecovering(ctx, from, round)
	}
	take := func(env muxEnv) (any, error) {
		if round >= 0 && env.Round != round {
			return nil, roundMismatchAbort(from, round, env.Round)
		}
		return env.Payload, nil
	}
	// Drain queued frames first so a failure never eats data that
	// arrived before it.
	select {
	case env := <-s.inbox[from]:
		return take(env)
	default:
	}
	var timerC <-chan time.Time
	if s.timeout > 0 {
		tm := time.NewTimer(s.timeout)
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		select {
		case env := <-s.inbox[from]:
			return take(env)
		case <-s.peerDown[from]:
			// One more non-blocking drain: the frame may have raced the
			// failure into the queue.
			select {
			case env := <-s.inbox[from]:
				return take(env)
			default:
			}
			s.peerMu.Lock()
			cause := s.peerErr[from]
			s.peerMu.Unlock()
			return nil, Abort(from, round, "", cause)
		case <-done:
			return nil, Abort(from, round, "", ctx.Err())
		case <-timerC:
			return nil, Abort(from, round, "", ErrTimeout)
		case <-s.closeCh:
			return nil, Abort(from, round, "", ErrClosed)
		case <-s.m.closeCh:
			return nil, Abort(from, round, "", ErrClosed)
		}
	}
}

// Broadcast implements Net, best-effort like TCPFabric's.
func (s *MuxSession) Broadcast(round, from, bytes int, payload any) error {
	return broadcastAll(s.m.n, s.m.me, func(to int) error {
		return s.Send(round, from, to, bytes, payload)
	})
}

// GatherAll implements Net.
func (s *MuxSession) GatherAll(to int) ([]any, error) {
	return s.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx implements Net.
func (s *MuxSession) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, s, to, round)
}

// Stats reports this session's endpoint traffic in the same shape as
// TCPFabric.Stats: only this party's slot is populated.
func (s *MuxSession) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := Stats{
		MessagesSent:   make([]int64, s.m.n),
		BytesSent:      make([]int64, s.m.n),
		MaxRound:       s.maxRound,
		DistinctRounds: len(s.rounds),
		PerRound:       make(map[int]RoundStats, len(s.rounds)),
		EchoMessages:   s.echoMsgs,
		EchoBytes:      s.echoBytes,
	}
	out.MessagesSent[s.m.me] = s.msgs
	out.BytesSent[s.m.me] = s.bytes
	for r, rs := range s.rounds {
		out.PerRound[r] = rs
	}
	return out
}

// Close detaches the session from the mux: its receives fail with
// ErrClosed and late frames tagged with its id are dropped. The shared
// links stay up for every other session. Safe to call more than once.
func (s *MuxSession) Close() {
	s.closeOnce.Do(func() {
		close(s.closeCh)
		s.m.retire(s.sid)
	})
}

// muxMetrics is the mux's telemetry bundle. All handles are nil-safe so
// a daemon without telemetry pays one nil check per event.
type muxMetrics struct {
	connects *telemetry.CounterVec
	linkUp   *telemetry.GaugeVec

	dataFrames   nilCounter
	ctrlFrames   nilCounter
	sessionMsgs  nilCounter
	sessionBytes nilCounter
	opened       nilCounter
	closed       nilCounter
	pendingDrops nilCounter
	lateFrames   nilCounter
	resumeFrames nilCounter
	retransmits  nilCounter

	// active mirrors the open-session count into a gauge; the count is
	// kept here because telemetry gauges only support Set.
	activeN int64
	active  *telemetry.Gauge
}

// onSessionOpen / onSessionClose keep the active-session gauge.
func (mm *muxMetrics) onSessionOpen() {
	mm.opened.inc()
	if mm.active != nil {
		mm.active.Set(float64(atomic.AddInt64(&mm.activeN, 1)))
	}
}

func (mm *muxMetrics) onSessionClose() {
	mm.closed.inc()
	if mm.active != nil {
		mm.active.Set(float64(atomic.AddInt64(&mm.activeN, -1)))
	}
}

// nilCounter / nilGauge wrap the telemetry handles so a nil muxMetrics
// receiver (telemetry disabled) stays inert without scattering checks.
type nilCounter struct{ c *telemetry.Counter }

func (c nilCounter) inc() {
	if c.c != nil {
		c.c.Inc()
	}
}

func (c nilCounter) add(v int64) {
	if c.c != nil {
		c.c.Add(v)
	}
}

type muxLinkMetrics struct {
	connects nilCounter
	linkUp   nilLinkGauge
}

type nilLinkGauge struct{ g *telemetry.Gauge }

func (g nilLinkGauge) Set(v float64) {
	if g.g != nil {
		g.g.Set(v)
	}
}

func newMuxMetrics(reg *telemetry.Registry) *muxMetrics {
	if reg == nil {
		return &muxMetrics{}
	}
	return &muxMetrics{
		connects: reg.CounterVec("mux_link_connects_total", "Mux link establishments per peer — stays at 1 per peer for the daemon's lifetime when sessions truly share the connection.", "peer"),
		linkUp:   reg.GaugeVec("mux_link_up", "Mux link state per peer: 1 connected, 0 down.", "peer"),
		dataFrames:   nilCounter{reg.Counter("mux_data_frames_total", "Session data frames received over all mux links.")},
		ctrlFrames:   nilCounter{reg.Counter("mux_control_frames_total", "Control-plane frames received over all mux links.")},
		sessionMsgs:  nilCounter{reg.Counter("mux_session_msgs_total", "Session protocol messages sent by this daemon across all sessions.")},
		sessionBytes: nilCounter{reg.Counter("mux_session_bytes_total", "Session protocol bytes sent by this daemon across all sessions.")},
		opened:       nilCounter{reg.Counter("mux_sessions_opened_total", "Sessions opened on this mux.")},
		closed:       nilCounter{reg.Counter("mux_sessions_closed_total", "Sessions closed on this mux.")},
		pendingDrops: nilCounter{reg.Counter("mux_pending_dropped_total", "Frames dropped because a not-yet-opened session overran its pending buffer.")},
		lateFrames:   nilCounter{reg.Counter("mux_late_frames_total", "Frames dropped because their session was already closed.")},
		resumeFrames: nilCounter{reg.Counter("mux_resume_frames_total", "Resume (retransmission request) frames received over all mux links.")},
		retransmits:  nilCounter{reg.Counter("mux_retransmit_frames_total", "Session frames re-served from a journal after a resume request.")},
		active:       reg.Gauge("mux_sessions_active", "Sessions currently open on this mux."),
	}
}

func (mm *muxMetrics) link(peer int) muxLinkMetrics {
	if mm == nil || mm.connects == nil {
		return muxLinkMetrics{}
	}
	p := strconv.Itoa(peer)
	return muxLinkMetrics{
		connects: nilCounter{mm.connects.With(p)},
		linkUp:   nilLinkGauge{mm.linkUp.With(p)},
	}
}

func (mm *muxMetrics) onSessionSend(bytes int) {
	if mm == nil {
		return
	}
	mm.sessionMsgs.inc()
	mm.sessionBytes.add(int64(bytes))
}
