package transport

import (
	"context"
	"fmt"
)

// Net is the messaging surface protocol code programs against. *Fabric
// implements it directly; SubView implements it over a subset of a
// fabric's parties so multi-phase frameworks can run an n-party
// subprotocol among a subset of n+1 parties while keeping a single
// unified trace for network replay. TCPFabric implements it over a real
// mesh, and FaultNet wraps any implementation with fault injection.
type Net interface {
	// N is the number of addressable parties.
	N() int
	// Send delivers payload from one party to another.
	Send(round, from, to, bytes int, payload any) error
	// Recv blocks until a message from the given peer arrives.
	Recv(to, from int) (any, error)
	// RecvCtx blocks until a message from the given peer arrives, the
	// context is cancelled, the implementation's timeout expires, or
	// the peer is known down. A non-negative round is the tag the
	// receiver expects; a mismatching arrival fails with an AbortError
	// (protocols have static round structure, so a mismatch proves a
	// shifted stream). Failures surface as *AbortError.
	RecvCtx(ctx context.Context, to, from, round int) (any, error)
	// Broadcast sends the payload to every other party.
	Broadcast(round, from, bytes int, payload any) error
	// GatherAll receives one message from every other party, indexed by
	// sender (self slot nil).
	GatherAll(to int) ([]any, error)
	// GatherAllCtx is the cancellable, round-checked form of GatherAll.
	GatherAllCtx(ctx context.Context, to, round int) ([]any, error)
}

var (
	_ Net = (*Fabric)(nil)
	_ Net = (*SubView)(nil)
)

// SubView presents members of a parent Net as a dense [0, len(members))
// party space, with all round tags shifted by roundOffset so phases keep
// distinct round numbers in the shared trace.
type SubView struct {
	parent      Net
	members     []int
	roundOffset int
}

// NewSubView validates the member list (distinct, valid parent indices)
// and returns the restricted view.
func NewSubView(parent Net, members []int, roundOffset int) (*SubView, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("transport: subview needs at least one member")
	}
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if m < 0 || m >= parent.N() {
			return nil, fmt.Errorf("transport: subview member %d outside parent range [0, %d)", m, parent.N())
		}
		if seen[m] {
			return nil, fmt.Errorf("transport: subview member %d duplicated", m)
		}
		seen[m] = true
	}
	cp := make([]int, len(members))
	copy(cp, members)
	return &SubView{parent: parent, members: cp, roundOffset: roundOffset}, nil
}

// N implements Net.
func (s *SubView) N() int { return len(s.members) }

func (s *SubView) check(idx int) error {
	if idx < 0 || idx >= len(s.members) {
		return fmt.Errorf("transport: subview index %d out of range [0, %d)", idx, len(s.members))
	}
	return nil
}

// Send implements Net.
func (s *SubView) Send(round, from, to, bytes int, payload any) error {
	if err := s.check(from); err != nil {
		return err
	}
	if err := s.check(to); err != nil {
		return err
	}
	return s.parent.Send(round+s.roundOffset, s.members[from], s.members[to], bytes, payload)
}

// Recv implements Net.
func (s *SubView) Recv(to, from int) (any, error) {
	if err := s.check(to); err != nil {
		return nil, err
	}
	if err := s.check(from); err != nil {
		return nil, err
	}
	return s.parent.Recv(s.members[to], s.members[from])
}

// RecvCtx implements Net. The expected round is shifted by the view's
// offset; AbortErrors come back naming the parent (global) party index
// and absolute round, which is what failure reports should show.
func (s *SubView) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if err := s.check(to); err != nil {
		return nil, err
	}
	if err := s.check(from); err != nil {
		return nil, err
	}
	if round >= 0 {
		round += s.roundOffset
	}
	return s.parent.RecvCtx(ctx, s.members[to], s.members[from], round)
}

// Broadcast implements Net (n−1 best-effort unicasts within the view:
// every leg is attempted, the first error returned after all legs).
func (s *SubView) Broadcast(round, from, bytes int, payload any) error {
	return broadcastAll(len(s.members), from, func(to int) error {
		return s.Send(round, from, to, bytes, payload)
	})
}

// GatherAll implements Net.
func (s *SubView) GatherAll(to int) ([]any, error) {
	return s.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx implements Net.
func (s *SubView) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, s, to, round)
}
