package transport

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// FaultKind enumerates the channel faults FaultNet can inject.
type FaultKind int

const (
	// FaultDrop silently discards the message.
	FaultDrop FaultKind = iota
	// FaultDelay delivers the message late (breaking per-link FIFO if
	// another message overtakes it).
	FaultDelay
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultReorder holds the message back until the next message on the
	// same link has been delivered.
	FaultReorder
	// FaultCorrupt replaces the payload with a Corrupted marker, the
	// transport-level model of a mangled frame (protocol code's type
	// assertion then fails, which must surface as a clean abort).
	FaultCorrupt
	// FaultSever kills the link permanently: this and every later
	// message on it are discarded.
	FaultSever
	// FaultCrash kills the sending party: every send it attempts from
	// the rule's round onward fails with ErrCrashed, and the party is
	// marked down on the underlying fabric so peers detect the crash.
	FaultCrash
	// FaultEquivocate turns the matching broadcast into an equivocation:
	// at least one leg (and, seeded per leg, roughly half of them)
	// carries a substituted payload while the rest carry the original —
	// the adversarial sender behaviour only the echo sub-round can
	// attribute. Rule-only (no probability field); rules must leave To
	// at -1 since the fault targets the whole broadcast. Echo sub-round
	// broadcasts are never equivocated: the blame model assumes faulty
	// parties tamper with payloads, not with the echoes that convict
	// them (forged echoes would need signatures to attribute; see
	// DESIGN.md §3.6).
	FaultEquivocate
	// FaultReplayStale resends the previous message the link carried —
	// stale round tag and all — in place of the matching message,
	// modelling a replay attack; the receiver's round-tag check convicts
	// the sender. A link with no earlier message delivers unchanged.
	FaultReplayStale
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultCorrupt:
		return "corrupt"
	case FaultSever:
		return "sever"
	case FaultCrash:
		return "crash"
	case FaultEquivocate:
		return "equivocate"
	case FaultReplayStale:
		return "replay-stale"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Corrupted is the payload FaultNet substitutes for a message mangled
// in transit. No protocol type-asserts to it, so a corrupted message is
// always detected as malformed.
type Corrupted struct {
	// Round is the round tag of the original message.
	Round int
}

func init() {
	// So corrupted frames survive a serialising transport too.
	gob.Register(Corrupted{})
}

// FaultRule targets one deterministic fault. Round, From and To may be
// -1 to match any value. A FaultCrash rule matches every round >= Round
// (a crashed party stays crashed); all other kinds match Round exactly.
type FaultRule struct {
	Kind            FaultKind
	Round, From, To int
}

// CrashAt builds the rule that crashes a party at a given round.
func CrashAt(party, round int) FaultRule {
	return FaultRule{Kind: FaultCrash, From: party, Round: round, To: -1}
}

func (r FaultRule) matches(round, from, to int) bool {
	if r.From != -1 && r.From != from {
		return false
	}
	if r.To != -1 && r.To != to {
		return false
	}
	if r.Kind == FaultCrash {
		return r.Round == -1 || round >= r.Round
	}
	return r.Round == -1 || round == r.Round
}

// FaultPlan is a deterministic fault schedule: targeted Rules plus
// per-message probabilities evaluated from a seeded hash of
// (seed, kind, round, src, dst, sequence number), so the same plan over
// the same protocol run injects exactly the same faults — chaos runs
// are reproducible from the seed alone.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Per-message fault probabilities in [0, 1]. Each is evaluated
	// independently; the first that fires (in the order Sever, Drop,
	// Corrupt, Duplicate, Reorder, Delay) decides the message's fate.
	Sever, Drop, Corrupt, Duplicate, Reorder, Delay float64
	// MaxDelay bounds injected delivery delays (default 20ms).
	MaxDelay time.Duration
	// Rules are targeted deterministic faults, evaluated before the
	// probabilities; the first matching rule wins.
	Rules []FaultRule
}

// FaultCounts tallies the faults a FaultNet actually injected.
type FaultCounts struct {
	Drops, Delays, Duplicates, Reorders, Corrupts, Severs, Crashes int64
	// Equivocations counts equivocated broadcasts (once per broadcast,
	// not per tampered leg); Replays counts stale-round substitutions.
	Equivocations, Replays int64
}

// Total sums all injected faults.
func (c FaultCounts) Total() int64 {
	return c.Drops + c.Delays + c.Duplicates + c.Reorders + c.Corrupts + c.Severs + c.Crashes +
		c.Equivocations + c.Replays
}

type linkKey struct{ from, to int }

type heldMsg struct {
	round, bytes int
	payload      any
}

// FaultNet wraps any Net with deterministic, seeded fault injection on
// the send path. Receives pass through untouched: every injected fault
// is observed by the receiver exactly as a real network would present
// it (a missing, late, duplicated, reordered or mangled message, a dead
// link, or a crashed peer).
type FaultNet struct {
	inner Net
	plan  FaultPlan

	mu      sync.Mutex
	seq     map[linkKey]uint64
	severed map[linkKey]bool
	held    map[linkKey]heldMsg
	last    map[linkKey]heldMsg
	crashed map[int]bool
	counts  FaultCounts

	delays sync.WaitGroup
}

var _ Net = (*FaultNet)(nil)

// NewFaultNet wraps inner with the given plan.
func NewFaultNet(inner Net, plan FaultPlan) *FaultNet {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 20 * time.Millisecond
	}
	return &FaultNet{
		inner:   inner,
		plan:    plan,
		seq:     make(map[linkKey]uint64),
		severed: make(map[linkKey]bool),
		held:    make(map[linkKey]heldMsg),
		last:    make(map[linkKey]heldMsg),
		crashed: make(map[int]bool),
	}
}

// Counts returns a snapshot of the injected-fault tallies.
func (f *FaultNet) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// u derives the deterministic uniform variate for one decision.
func (f *FaultNet) u(kind FaultKind, round, from, to int, seq uint64) float64 {
	h := fnv.New64a()
	var buf [8 * 5]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(f.plan.Seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(kind))
	binary.LittleEndian.PutUint64(buf[16:], uint64(round)^uint64(from)<<24)
	binary.LittleEndian.PutUint64(buf[24:], uint64(to))
	binary.LittleEndian.PutUint64(buf[32:], seq)
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// decide picks the fault (if any) for one message.
func (f *FaultNet) decide(round, from, to int, seq uint64) (FaultKind, bool) {
	for _, r := range f.plan.Rules {
		// Equivocation is a broadcast-level fault, applied in Broadcast
		// before the per-leg sends; it must not fire again per leg.
		if r.Kind == FaultEquivocate {
			continue
		}
		if r.matches(round, from, to) {
			return r.Kind, true
		}
	}
	ladder := []struct {
		kind FaultKind
		p    float64
	}{
		{FaultSever, f.plan.Sever},
		{FaultDrop, f.plan.Drop},
		{FaultCorrupt, f.plan.Corrupt},
		{FaultDuplicate, f.plan.Duplicate},
		{FaultReorder, f.plan.Reorder},
		{FaultDelay, f.plan.Delay},
	}
	for _, step := range ladder {
		if step.p > 0 && f.u(step.kind, round, from, to, seq) < step.p {
			return step.kind, true
		}
	}
	return 0, false
}

// markDown propagates a crash to the underlying fabric's failure
// detector when it has one.
func (f *FaultNet) markDown(party int) {
	if md, ok := f.inner.(interface{ MarkDown(int) }); ok {
		md.MarkDown(party)
	}
}

// Send implements Net, applying the fault schedule.
func (f *FaultNet) Send(round, from, to, bytes int, payload any) error {
	link := linkKey{from, to}
	f.mu.Lock()
	if f.crashed[from] {
		f.mu.Unlock()
		return Abort(from, round, "", ErrCrashed)
	}
	seq := f.seq[link]
	f.seq[link] = seq + 1
	if f.severed[link] {
		f.counts.Drops++
		f.mu.Unlock()
		return nil
	}
	kind, faulted := f.decide(round, from, to, seq)
	// A message held for reordering is released right after the next
	// message on its link goes out.
	release, hasHeld := f.held[link]
	if hasHeld {
		delete(f.held, link)
	}
	var after []heldMsg
	if hasHeld {
		after = append(after, release)
	}

	if faulted {
		switch kind {
		case FaultCrash:
			f.crashed[from] = true
			f.counts.Crashes++
			f.mu.Unlock()
			f.markDown(from)
			return Abort(from, round, "", ErrCrashed)
		case FaultSever:
			f.severed[link] = true
			f.counts.Severs++
			f.mu.Unlock()
			f.deliverAll(from, to, after)
			return nil
		case FaultDrop:
			f.counts.Drops++
			f.mu.Unlock()
			f.deliverAll(from, to, after)
			return nil
		case FaultCorrupt:
			f.counts.Corrupts++
			payload = Corrupted{Round: round}
			bytes = 1
		case FaultReplayStale:
			// Resend the link's previous message in place of this one;
			// with no earlier message the send passes through unchanged
			// (a replay needs something to replay).
			if prev, ok := f.last[link]; ok {
				f.counts.Replays++
				round, bytes, payload = prev.round, prev.bytes, prev.payload
			}
		case FaultDuplicate:
			f.counts.Duplicates++
			after = append([]heldMsg{{round, bytes, payload}}, after...)
		case FaultReorder:
			f.counts.Reorders++
			f.held[link] = heldMsg{round, bytes, payload}
			f.mu.Unlock()
			f.deliverAll(from, to, after)
			return nil
		case FaultDelay:
			f.counts.Delays++
			delay := time.Duration(f.u(FaultKind(-1), round, from, to, seq) * float64(f.plan.MaxDelay))
			f.mu.Unlock()
			f.delays.Add(1)
			go func(m heldMsg) {
				defer f.delays.Done()
				time.Sleep(delay)
				// Delivery errors are unobservable to a real network's
				// lost frame too; the receiver-side abort machinery is
				// the detection path.
				_ = f.inner.Send(m.round, from, to, m.bytes, m.payload)
			}(heldMsg{round, bytes, payload})
			f.deliverAll(from, to, after)
			return nil
		}
	}
	// Remember the message about to go out in order, as replay fodder
	// for FaultReplayStale (delayed/reordered messages are skipped: they
	// leave Send before their delivery is decided).
	f.last[link] = heldMsg{round, bytes, payload}
	f.mu.Unlock()
	if err := f.inner.Send(round, from, to, bytes, payload); err != nil {
		return err
	}
	f.deliverAll(from, to, after)
	return nil
}

// deliverAll flushes follow-on deliveries (duplicates, released holds).
func (f *FaultNet) deliverAll(from, to int, msgs []heldMsg) {
	for _, m := range msgs {
		_ = f.inner.Send(m.round, from, to, m.bytes, m.payload)
	}
}

// Flush delivers every message still held back for reordering (a held
// message whose link never carries another message would otherwise stay
// in limbo; the receiver sees it as dropped and aborts cleanly, but
// tests may want the queues emptied).
func (f *FaultNet) Flush() {
	f.mu.Lock()
	held := f.held
	f.held = make(map[linkKey]heldMsg)
	f.mu.Unlock()
	for link, m := range held {
		_ = f.inner.Send(m.round, link.from, link.to, m.bytes, m.payload)
	}
}

// Wait blocks until every delayed delivery has been handed to the
// underlying net. Call it after a run finishes and before asserting on
// goroutine leaks.
func (f *FaultNet) Wait() {
	f.delays.Wait()
}

// N implements Net.
func (f *FaultNet) N() int { return f.inner.N() }

// Recv implements Net.
func (f *FaultNet) Recv(to, from int) (any, error) { return f.inner.Recv(to, from) }

// RecvCtx implements Net.
func (f *FaultNet) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	return f.inner.RecvCtx(ctx, to, from, round)
}

// Broadcast implements Net as n−1 best-effort unicasts so each leg is
// faulted independently (a real broadcast over pairwise channels fails
// per link, not atomically). The first error is returned after every
// leg has been attempted.
//
// A matching FaultEquivocate rule turns the broadcast adversarial: the
// first leg always carries the substituted payload (so every
// equivocated broadcast really equivocates) and each later leg flips a
// seeded coin, while the sender's own echo will still claim the
// original — exactly the split the echo sub-round exists to catch.
func (f *FaultNet) Broadcast(round, from, bytes int, payload any) error {
	equivocate := false
	if !IsEchoRound(round) {
		for _, r := range f.plan.Rules {
			if r.Kind == FaultEquivocate && r.matches(round, from, -1) {
				equivocate = true
				break
			}
		}
	}
	if equivocate {
		f.mu.Lock()
		f.counts.Equivocations++
		f.mu.Unlock()
	}
	first := true
	return broadcastAll(f.N(), from, func(to int) error {
		p, b := payload, bytes
		if equivocate && (first || f.u(FaultEquivocate, round, from, to, 0) < 0.5) {
			p, b = Corrupted{Round: round}, bytes
		}
		first = false
		return f.Send(round, from, to, b, p)
	})
}

// GatherAll implements Net.
func (f *FaultNet) GatherAll(to int) ([]any, error) {
	return f.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx implements Net.
func (f *FaultNet) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, f, to, round)
}
