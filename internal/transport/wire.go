package transport

import (
	"fmt"

	"groupranking/internal/wirecodec"
)

// Wire codecs for the transport's own frames. The TCP fabrics used to
// run one gob encoder/decoder pair per connection; every stream now
// carries self-contained wirecodec frames, so a reconnecting link has
// no encoder state to resynchronise and a frame captured in the
// journal is byte-identical to the frame on the wire.

func init() {
	wirecodec.Register(wirecodec.IDRangeTransport, "echo digest vector",
		[]any{echoMsg{}},
		func(dst []byte, v any) ([]byte, error) {
			ds := v.(echoMsg).Digests
			dst = wirecodec.AppendU32(dst, uint32(len(ds)))
			for _, d := range ds {
				dst = wirecodec.AppendBytes(dst, d)
			}
			return dst, nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			n := r.Count(4)
			ds := make([][]byte, 0, n)
			for i := 0; i < n; i++ {
				ds = append(ds, r.Bytes())
			}
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: echo message: %w", err)
			}
			return echoMsg{Digests: ds}, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+1, "corruption marker",
		[]any{Corrupted{}},
		func(dst []byte, v any) ([]byte, error) {
			return wirecodec.AppendI64(dst, int64(v.(Corrupted).Round)), nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			c := Corrupted{Round: r.Int()}
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: corruption marker: %w", err)
			}
			return c, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+2, "tcp envelope",
		[]any{envelope{}},
		func(dst []byte, v any) ([]byte, error) {
			e := v.(envelope)
			dst = wirecodec.AppendI64(dst, int64(e.Round))
			dst = wirecodec.AppendI64(dst, int64(e.Bytes))
			return wirecodec.AppendValue(dst, e.Payload)
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			var e envelope
			e.Round = r.Int()
			e.Bytes = r.Int()
			e.Payload = r.Value()
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: envelope: %w", err)
			}
			return e, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+3, "recovery envelope",
		[]any{renv{}},
		func(dst []byte, v any) ([]byte, error) {
			e := v.(renv)
			dst = wirecodec.AppendU8(dst, e.Kind)
			dst = wirecodec.AppendI64(dst, int64(e.Round))
			dst = wirecodec.AppendU64(dst, e.Seq)
			dst = wirecodec.AppendI64(dst, int64(e.Bytes))
			dst = wirecodec.AppendU64(dst, e.Ack)
			dst = wirecodec.AppendI64(dst, e.T)
			dst = wirecodec.AppendI64(dst, e.EchoT)
			return wirecodec.AppendValue(dst, e.Payload)
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			var e renv
			e.Kind = r.U8()
			e.Round = r.Int()
			e.Seq = r.U64()
			e.Bytes = r.Int()
			e.Ack = r.U64()
			e.T = r.I64()
			e.EchoT = r.I64()
			e.Payload = r.Value()
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: recovery envelope: %w", err)
			}
			return e, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+4, "recovery hello",
		[]any{rhello{}},
		func(dst []byte, v any) ([]byte, error) {
			h := v.(rhello)
			dst = wirecodec.AppendString(dst, h.SessionID)
			dst = wirecodec.AppendI64(dst, int64(h.Party))
			dst = wirecodec.AppendI64(dst, int64(h.Epoch))
			return wirecodec.AppendU64(dst, h.NextExpected), nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			var h rhello
			h.SessionID = r.String()
			h.Party = r.Int()
			h.Epoch = r.Int()
			h.NextExpected = r.U64()
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: hello: %w", err)
			}
			return h, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+5, "mux hello",
		[]any{muxHello{}},
		func(dst []byte, v any) ([]byte, error) {
			h := v.(muxHello)
			dst = wirecodec.AppendI64(dst, int64(h.Party))
			return wirecodec.AppendI64(dst, int64(h.Epoch)), nil
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			h := muxHello{Party: r.Int(), Epoch: r.Int()}
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: mux hello: %w", err)
			}
			return h, nil
		})

	wirecodec.Register(wirecodec.IDRangeTransport+6, "mux envelope",
		[]any{muxEnv{}},
		func(dst []byte, v any) ([]byte, error) {
			e := v.(muxEnv)
			dst = wirecodec.AppendString(dst, e.SID)
			dst = wirecodec.AppendU8(dst, e.Kind)
			dst = wirecodec.AppendI64(dst, int64(e.Round))
			dst = wirecodec.AppendI64(dst, int64(e.Bytes))
			dst = wirecodec.AppendU64(dst, e.Seq)
			return wirecodec.AppendValue(dst, e.Payload)
		},
		func(data []byte) (any, error) {
			r := wirecodec.NewReader(data)
			var e muxEnv
			e.SID = r.String()
			e.Kind = r.U8()
			e.Round = r.Int()
			e.Bytes = r.Int()
			e.Seq = r.U64()
			e.Payload = r.Value()
			if err := r.Finish(); err != nil {
				return nil, fmt.Errorf("transport: mux envelope: %w", err)
			}
			return e, nil
		})
}
