package transport

import (
	"errors"
	"fmt"
)

// Sentinel causes carried inside an AbortError. Protocol code matches
// them with errors.Is to distinguish why a run aborted.
var (
	// ErrTimeout: a receive waited longer than the configured timeout.
	ErrTimeout = errors.New("transport: receive timed out")
	// ErrPeerDown: the awaited peer is known to have crashed or its
	// connection was lost.
	ErrPeerDown = errors.New("transport: peer down")
	// ErrRoundMismatch: a message arrived carrying a different round tag
	// than the receiver expected — the stream was shifted by a dropped,
	// duplicated or reordered message.
	ErrRoundMismatch = errors.New("transport: unexpected round tag")
	// ErrCrashed: a fault-injection schedule crashed this party.
	ErrCrashed = errors.New("transport: party crashed by fault schedule")
	// ErrClosed: the endpoint was shut down locally.
	ErrClosed = errors.New("transport: endpoint closed")
)

// AbortError is the typed failure every protocol layer surfaces when a
// run cannot complete: a peer crashed, a channel timed out, the stream
// was corrupted, or the run's context was cancelled. It names the party
// whose failure was observed, the protocol phase and round the observer
// was in, and the underlying cause. The safety invariant of the runtime
// is that every faulted run ends in either a correct result or an
// AbortError — never a silently wrong result, never a hang.
type AbortError struct {
	// Party is the index of the party whose failure triggered the abort
	// — usually the peer the observer was waiting on — or -1 if unknown.
	Party int
	// Phase is the protocol phase the observer was executing (filled in
	// by the protocol layer; empty when raised below that layer).
	Phase string
	// Round is the round tag the observer was waiting on, or -1.
	Round int
	// Cause is the underlying error (often one of the sentinels above,
	// or context.Canceled / context.DeadlineExceeded).
	Cause error
	// Cert carries machine-verifiable cheating evidence when the abort
	// identifies a misbehaving party (see BlameCert); nil for benign
	// failures such as timeouts, crashes and cancellations.
	Cert *BlameCert
}

// Error implements error.
func (e *AbortError) Error() string {
	party := "unknown party"
	if e.Party >= 0 {
		party = fmt.Sprintf("party %d", e.Party)
	}
	phase := ""
	if e.Phase != "" {
		phase = fmt.Sprintf(" in phase %q", e.Phase)
	}
	round := ""
	if e.Round >= 0 {
		round = fmt.Sprintf(" (round %d)", e.Round)
	}
	return fmt.Sprintf("transport: abort waiting on %s%s%s: %v", party, phase, round, e.Cause)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *AbortError) Unwrap() error { return e.Cause }

// Abort builds an AbortError.
func Abort(party, round int, phase string, cause error) *AbortError {
	return &AbortError{Party: party, Phase: phase, Round: round, Cause: cause}
}

// WithCert attaches cheating evidence to the abort and returns it.
func (e *AbortError) WithCert(c *BlameCert) *AbortError {
	e.Cert = c
	return e
}

// AnnotatePhase stamps the protocol phase onto err's AbortError if it
// has none yet, and returns err unchanged otherwise. Protocol layers
// call it at every receive site so aborts name the phase they happened
// in without the transport needing protocol knowledge.
func AnnotatePhase(err error, phase string) error {
	var ae *AbortError
	if errors.As(err, &ae) && ae.Phase == "" {
		ae.Phase = phase
		if ae.Cert != nil && ae.Cert.Phase == "" {
			ae.Cert.Phase = phase
		}
	}
	return err
}

// EnsureAbort normalises err into the typed abort form: if err already
// is (or wraps) an AbortError it is returned unchanged; otherwise it is
// wrapped into one attributed to the given party and phase. Runner
// layers use it so every failed run yields a typed *AbortError.
func EnsureAbort(err error, party int, phase string) error {
	if err == nil {
		return nil
	}
	var ae *AbortError
	if errors.As(err, &ae) {
		return err
	}
	return &AbortError{Party: party, Phase: phase, Round: -1, Cause: err}
}

// IsAbort reports whether err is or wraps an AbortError, returning it.
func IsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}
