package transport

import (
	"fmt"
	"net"
	"strings"
)

// Mesh address validation shared by every TCP-backed fabric. A
// duplicated slot in the address list used to surface late and
// confusingly — the accept loop would see a second handshake for an
// already-attached peer index, or a party would dial itself — so the
// constructors now reject the configuration up front with a typed
// error naming the colliding parties.

// AddrCollisionError reports two mesh slots that resolve to the same
// listen address. Since addrs[me] is this party's own listen slot, a
// collision with me also covers the self-dialing misconfiguration.
type AddrCollisionError struct {
	// Addr is the colliding address as configured.
	Addr string
	// Parties are the two party indices whose slots collide, in
	// ascending order.
	Parties [2]int
}

func (e *AddrCollisionError) Error() string {
	return fmt.Sprintf("transport: parties %d and %d share mesh address %q — every party needs its own listen address",
		e.Parties[0], e.Parties[1], e.Addr)
}

// validateMeshAddrs rejects duplicate (and therefore self-dialing)
// entries in a mesh address list. Comparison is on the canonical form,
// so ":9001" vs "0.0.0.0:9001" and "localhost:9001" vs
// "127.0.0.1:9001" are caught, while the same port on two distinct
// hosts stays legal.
func validateMeshAddrs(addrs []string) error {
	seen := make(map[string]int, len(addrs))
	for i, a := range addrs {
		key := canonicalAddr(a)
		if j, dup := seen[key]; dup {
			return &AddrCollisionError{Addr: a, Parties: [2]int{j, i}}
		}
		seen[key] = i
	}
	return nil
}

// canonicalAddr normalizes one host:port for collision comparison:
// the wildcard spellings ("", "0.0.0.0", "::") compare equal, and
// "localhost" compares equal to the loopback IP. Anything that does
// not parse as host:port is compared verbatim (the listener will
// reject it with its own error).
func canonicalAddr(a string) string {
	a = strings.TrimSpace(a)
	host, port, err := net.SplitHostPort(a)
	if err != nil {
		return a
	}
	switch host {
	case "", "0.0.0.0", "::":
		host = "*"
	case "localhost":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
