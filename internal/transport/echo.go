package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
)

// Consistent (echo) broadcast. Over pairwise channels an ordinary
// broadcast is n−1 independent unicasts, so a malicious sender can
// equivocate: announce one histogram, key share or session parameter
// set to some peers and a different one to others, and the honest
// parties disagree without ever identifying the cheater. The classic
// fix (Bracha's echo round) is to have every receiver re-announce a
// digest of what it received; a sender that equivocated is caught by
// any pair of honest parties comparing digests — including the sender
// itself, whose own echo commits it to one payload.
//
// EchoBroadcastCtx implements one such round on top of any Net:
//
//	round           every party broadcasts its payload
//	EchoRound(round) every party broadcasts the digest vector of what
//	                 it received (own slot: what it claims it sent)
//
// and every party cross-checks all digest vectors. A mismatch on
// sender s surfaces as a typed *AbortError whose cause is an
// *EquivocationError naming s with the two conflicting digests, and
// whose certificate lets internal/blame confirm the accusation
// offline.
//
// Fast path: in-process fabrics share one memory space, so a payload
// physically cannot differ between receivers; NeedsEcho reports false
// for them and the echo sub-round is skipped entirely — zero extra
// messages, which keeps in-process message/round counts (and therefore
// `make bench-compare` and the crossval suite) byte-identical to the
// semi-honest protocol. Real fabrics (TCP, recovering TCP) and fault
// nets injecting Byzantine behaviour report true and pay the echo.
//
// Guarantees and non-guarantees: the echo round detects a sender whose
// broadcast legs disagreed, and attributes corruption on a sender's
// channel to that sender (a party is responsible for its own links).
// It does NOT provide Byzantine agreement — a cheater can still split
// the group into parties that abort and parties that finish the round,
// it only cannot make two honest parties accept different payloads
// undetected. It also assumes echoes themselves are delivered intact:
// without per-message signatures a forged echo could frame an honest
// sender, so the deployment model (DESIGN.md §3.6) is covert security
// with identifiable abort, not full malicious security.

// echoRoundBand is the round-tag offset reserved for echo sub-rounds.
// It sits far above every protocol band (gain rounds {1,2}, sort
// rounds [10, 1<<20), submission round 1<<20, plus sub-view offsets),
// so echo traffic can be recognised by tag alone and excluded from the
// per-round protocol statistics.
const echoRoundBand = 1 << 24

// EchoRound maps a broadcast round tag to its paired echo sub-round.
func EchoRound(round int) int { return round + echoRoundBand }

// IsEchoRound reports whether a round tag lies in the reserved echo
// band. Fabrics use it to keep echo traffic out of the protocol
// message/byte/round counters (it is tallied separately in Stats).
func IsEchoRound(round int) bool { return round >= echoRoundBand }

// echoMsg is the digest vector exchanged in the echo sub-round:
// Digests[j] is the sender's SHA-256 digest of the payload it received
// from party j in the paired broadcast round (its own slot holds the
// digest of the payload it claims to have broadcast).
type echoMsg struct {
	Digests [][]byte
}

func init() {
	// So echo frames survive a serialising transport.
	gob.Register(echoMsg{})
}

// echoRequirer is the capability probe a Net implementation exposes to
// opt into the echo sub-round. It is deliberately not part of the Net
// interface: wrappers that embed Net (obsv's counting wrapper) forward
// it explicitly, and implementations that omit it default to the
// zero-message fast path.
type echoRequirer interface{ EchoRequired() bool }

// NeedsEcho reports whether broadcasts over net must run the echo
// sub-round: false for in-process fabrics (one memory space cannot
// equivocate), true for real meshes and for fault nets injecting
// Byzantine behaviour.
func NeedsEcho(net Net) bool {
	if er, ok := net.(echoRequirer); ok {
		return er.EchoRequired()
	}
	return false
}

// EchoRequired opts the TCP mesh into the echo sub-round: a remote
// peer is a separate process that can send every receiver a different
// payload.
func (f *TCPFabric) EchoRequired() bool { return true }

// EchoRequired opts the recovering mesh into the echo sub-round.
func (f *RecoveringTCPFabric) EchoRequired() bool { return true }

// EchoRequired delegates to the parent: a sub-view equivocates exactly
// when its parent fabric can.
func (s *SubView) EchoRequired() bool { return NeedsEcho(s.parent) }

// EchoRequired reports whether the fault plan injects sender-side
// Byzantine behaviour that only the echo sub-round can attribute, or
// the wrapped net itself needs echoes.
func (f *FaultNet) EchoRequired() bool {
	for _, r := range f.plan.Rules {
		if r.Kind == FaultEquivocate {
			return true
		}
	}
	return NeedsEcho(f.inner)
}

// EquivocationError is the cause carried by the typed abort when the
// echo sub-round catches a sender whose broadcast legs disagreed. It
// names the sender and the two conflicting digests: the one the
// reporting party computed locally and the one another party echoed.
type EquivocationError struct {
	// Sender is the accused broadcaster.
	Sender int
	// Round is the broadcast round the equivocation happened in.
	Round int
	// Witness is the party whose echoed digest disagreed with ours.
	Witness int
	// Local is our digest of the payload received from Sender; Echoed
	// is the digest Witness reported for the same broadcast.
	Local, Echoed []byte
}

// Error implements error.
func (e *EquivocationError) Error() string {
	return fmt.Sprintf("transport: party %d equivocated in broadcast round %d: local digest %x, party %d echoed %x",
		e.Sender, e.Round, e.Local, e.Witness, e.Echoed)
}

// EchoBroadcastCtx runs one consistent-broadcast round: every party
// calls it concurrently with its own payload; it broadcasts the
// payload at round, gathers every other party's, and — when the net
// requires echoes — runs the paired digest sub-round and cross-checks
// every reported digest before returning. The gathered payloads come
// back indexed by sender with the self slot nil (the caller already
// holds its own payload), exactly like GatherAllCtx.
//
// On a digest mismatch every honest caller returns an *AbortError
// naming the equivocating sender, carrying an *EquivocationError cause
// and a CheckEquivocation blame certificate.
func EchoBroadcastCtx(ctx context.Context, net Net, me, round, size int, payload any) ([]any, error) {
	if err := net.Broadcast(round, me, size, payload); err != nil {
		return nil, err
	}
	all, err := net.GatherAllCtx(ctx, me, round)
	if err != nil {
		return nil, err
	}
	if !NeedsEcho(net) {
		return all, nil // in-process fast path: zero extra messages
	}

	n := net.N()
	digests := make([][]byte, n)
	for j := 0; j < n; j++ {
		src := all[j]
		if j == me {
			src = payload
		}
		if digests[j], err = PayloadDigest(src); err != nil {
			return nil, err
		}
	}
	echoRound := EchoRound(round)
	echoBytes := n * sha256.Size
	if err := net.Broadcast(echoRound, me, echoBytes, echoMsg{Digests: digests}); err != nil {
		return nil, err
	}
	echoes, err := net.GatherAllCtx(ctx, me, echoRound)
	if err != nil {
		return nil, err
	}
	for w := 0; w < n; w++ {
		if w == me {
			continue
		}
		em, ok := echoes[w].(echoMsg)
		if !ok || len(em.Digests) != n {
			got := fmt.Sprintf("%T", echoes[w])
			return nil, Abort(w, echoRound, "",
				fmt.Errorf("party %d sent a malformed echo (%s)", w, got)).
				WithCert(&BlameCert{
					Version: BlameCertVersion, Accused: w, Reporter: me,
					Round: round, Check: CheckMalformed,
					Detail: "echo digest vector malformed or mis-sized",
					Items: []BlameItem{
						{Name: "type-got", Data: []byte(got)},
						{Name: "type-want", Data: []byte(fmt.Sprintf("%T with %d digests", echoMsg{}, n))},
					},
				})
		}
		// Every slot is checked, including s == w (the witness's claim
		// about its own broadcast versus what we received from it) and
		// s == me (what the witness received from us versus what we
		// sent — a mismatch there attributes tampering on our own
		// outgoing link to us, the party responsible for it).
		for s := 0; s < n; s++ {
			if len(em.Digests[s]) != sha256.Size {
				return nil, Abort(w, echoRound, "",
					fmt.Errorf("party %d sent a malformed echo digest for party %d", w, s)).
					WithCert(&BlameCert{
						Version: BlameCertVersion, Accused: w, Reporter: me,
						Round: round, Check: CheckMalformed,
						Detail: fmt.Sprintf("echo digest for party %d has %d bytes, want %d", s, len(em.Digests[s]), sha256.Size),
						Items: []BlameItem{
							{Name: "type-got", Data: []byte(fmt.Sprintf("%d-byte digest", len(em.Digests[s])))},
							{Name: "type-want", Data: []byte(fmt.Sprintf("%d-byte digest", sha256.Size))},
						},
					})
			}
			if !bytes.Equal(digests[s], em.Digests[s]) {
				eq := &EquivocationError{Sender: s, Round: round, Witness: w, Local: digests[s], Echoed: em.Digests[s]}
				return nil, Abort(s, round, "", eq).WithCert(&BlameCert{
					Version: BlameCertVersion, Accused: s, Reporter: me,
					Round: round, Check: CheckEquivocation,
					Detail: fmt.Sprintf("party %d's echo of party %d's broadcast disagrees with the locally received payload", w, s),
					Items: []BlameItem{
						{Name: "digest-local", Data: digests[s]},
						{Name: "digest-echoed", Data: em.Digests[s]},
					},
				})
			}
		}
	}
	return all, nil
}
