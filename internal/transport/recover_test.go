package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"groupranking/internal/leakcheck"
	"groupranking/internal/wirecodec"
)

// memJournal is an in-memory Journaler for transport-level tests (the
// real durable implementation lives in internal/journal, which imports
// this package and so cannot be used here).
type memJournal struct {
	mu   sync.Mutex
	sent map[int][]JournalMsg
	recv map[int][]JournalMsg
}

func newMemJournal() *memJournal {
	return &memJournal{sent: make(map[int][]JournalMsg), recv: make(map[int][]JournalMsg)}
}

func (m *memJournal) LogSend(peer, round, bytes int, seq uint64, payload any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent[peer] = append(m.sent[peer], JournalMsg{Round: round, Seq: seq, Bytes: bytes, Payload: payload})
	return nil
}

func (m *memJournal) LogRecv(peer, round, bytes int, seq uint64, payload any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recv[peer] = append(m.recv[peer], JournalMsg{Round: round, Seq: seq, Bytes: bytes, Payload: payload})
	return nil
}

func (m *memJournal) SentTo(peer int) ([]JournalMsg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]JournalMsg(nil), m.sent[peer]...), nil
}

func (m *memJournal) RecvFrom(peer int) ([]JournalMsg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]JournalMsg(nil), m.recv[peer]...), nil
}

// buildRecoveryMesh starts an n-party recovery mesh; tweak customises
// each party's options before the fabrics dial.
func buildRecoveryMesh(t *testing.T, n int, tweak func(me int, o *RecoverOptions)) ([]string, []*RecoveringTCPFabric) {
	t.Helper()
	registerWireTest()
	addrs, err := FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*RecoveringTCPFabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := RecoverOptions{SessionID: "test-session", Epoch: 1}
			if tweak != nil {
				tweak(me, &opts)
			}
			fabrics[me], errs[me] = NewRecoveringTCPFabric(addrs, me, 5*time.Second, opts)
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabrics {
			if f != nil {
				f.Close()
			}
		}
	})
	return addrs, fabrics
}

func TestRecoveringMeshSendRecv(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 3, nil)
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if to == from {
				continue
			}
			msg := wirePayload{From: from, Text: fmt.Sprintf("%d->%d", from, to)}
			if err := fabrics[from].Send(1, from, to, 16, msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for to := 0; to < 3; to++ {
		for from := 0; from < 3; from++ {
			if to == from {
				continue
			}
			got, err := fabrics[to].RecvCtx(context.Background(), to, from, 1)
			if err != nil {
				t.Fatal(err)
			}
			if p := got.(wirePayload); p.Text != fmt.Sprintf("%d->%d", from, to) {
				t.Fatalf("party %d from %d: got %#v", to, from, got)
			}
		}
	}
	// Stats count logical sends only, never heartbeats or acks.
	s := fabrics[0].Stats()
	if s.MessagesSent[0] != 2 {
		t.Fatalf("party 0 stats: %d messages, want 2", s.MessagesSent[0])
	}
}

// TestRecoveringReconnect severs the live connection and checks the
// link heals: messages sent while down are buffered and retransmitted,
// and the protocol never notices.
func TestRecoveringReconnect(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, nil)

	if err := fabrics[0].Send(1, 0, 1, 16, wirePayload{Text: "before"}); err != nil {
		t.Fatal(err)
	}
	if got, err := fabrics[1].RecvCtx(context.Background(), 1, 0, 1); err != nil || got.(wirePayload).Text != "before" {
		t.Fatalf("before sever: %v, %v", got, err)
	}

	// Sever the link out from under both endpoints, repeatedly.
	for round := 2; round < 6; round++ {
		l := fabrics[0].links[1]
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
		text := fmt.Sprintf("after-sever-%d", round)
		if err := fabrics[0].Send(round, 0, 1, 16, wirePayload{Text: text}); err != nil {
			t.Fatal(err)
		}
		got, err := fabrics[1].RecvCtx(context.Background(), 1, 0, round)
		if err != nil {
			t.Fatalf("round %d after sever: %v", round, err)
		}
		if got.(wirePayload).Text != text {
			t.Fatalf("round %d: got %#v", round, got)
		}
	}
}

// TestRecoveringDuplicateSuppression injects duplicate and in-order
// frames directly into the receive path: a frame below the expected
// sequence is dropped, the next expected one is delivered exactly once.
func TestRecoveringDuplicateSuppression(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, nil)

	if err := fabrics[0].Send(1, 0, 1, 16, wirePayload{Text: "first"}); err != nil {
		t.Fatal(err)
	}
	if got, err := fabrics[1].RecvCtx(context.Background(), 1, 0, 1); err != nil || got.(wirePayload).Text != "first" {
		t.Fatalf("first: %v, %v", got, err)
	}

	// Replay seq 0 (already consumed) straight into party 1's frame
	// handler — the redial-race shape — then deliver seq 1 normally.
	l := fabrics[1].links[0]
	if !fabrics[1].handleFrame(l, renv{Kind: frameData, Round: 1, Seq: 0, Payload: wirePayload{Text: "dup"}}) {
		t.Fatal("duplicate frame must not kill the pump")
	}
	if !fabrics[1].handleFrame(l, renv{Kind: frameData, Round: 2, Seq: 1, Payload: wirePayload{Text: "second"}}) {
		t.Fatal("in-order frame must not kill the pump")
	}
	got, err := fabrics[1].RecvCtx(context.Background(), 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.(wirePayload).Text != "second" {
		t.Fatalf("duplicate was delivered: got %#v", got)
	}

	// A sequence gap, in contrast, is protocol corruption: fatal.
	if fabrics[1].handleFrame(l, renv{Kind: frameData, Round: 3, Seq: 40, Payload: wirePayload{}}) {
		t.Fatal("gap frame must kill the pump")
	}
	if _, err := fabrics[1].RecvCtx(context.Background(), 1, 0, 3); !errors.Is(err, ErrDesync) {
		t.Fatalf("after gap: %v, want ErrDesync", err)
	}
}

// TestRecoveringAckTrimming: acks (piggybacked and heartbeat-carried)
// must drain the sender's retransmit buffer back to empty.
func TestRecoveringAckTrimming(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, func(me int, o *RecoverOptions) {
		o.Heartbeat = 20 * time.Millisecond
	})
	for i := 0; i < 10; i++ {
		if err := fabrics[0].Send(1, 0, 1, 16, wirePayload{Text: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := fabrics[1].RecvCtx(context.Background(), 1, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	l := fabrics[0].links[1]
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		n := len(l.buf)
		l.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retransmit buffer never drained: %d frames still held", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecoveringRetransmitOverflow: with the peer's link forced down,
// the bounded buffer eventually refuses new sends.
func TestRecoveringRetransmitOverflow(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, func(me int, o *RecoverOptions) {
		o.RetransmitLimit = 4
		o.Heartbeat = -1 // keep control traffic out of the way
	})
	// Close the receiving fabric entirely so acks stop.
	fabrics[1].Close()
	var overflow error
	for i := 0; i < 64 && overflow == nil; i++ {
		overflow = fabrics[0].Send(1, 0, 1, 16, wirePayload{Text: "m"})
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(overflow, ErrRetransmitOverflow) {
		t.Fatalf("got %v, want ErrRetransmitOverflow", overflow)
	}
	var abort *AbortError
	if !errors.As(overflow, &abort) || abort.Party != 1 {
		t.Fatalf("overflow must blame party 1: %v", overflow)
	}
}

// TestRecoveringBlameAfterGrace: a peer that disconnects and stays away
// past the grace window is blamed with ErrPeerDown; one that reconnects
// inside the window is not.
func TestRecoveringBlameAfterGrace(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, fabrics := buildRecoveryMesh(t, 2, func(me int, o *RecoverOptions) {
		o.Grace = 300 * time.Millisecond
	})

	// Reconnect inside the window: no blame. Party 1 "crashes" and a
	// replacement endpoint (epoch 2) comes back before grace runs out.
	fabrics[1].Close()
	time.Sleep(50 * time.Millisecond)
	replacement, err := NewRecoveringTCPFabric(addrs, 1, 5*time.Second, RecoverOptions{
		SessionID: "test-session", Epoch: 2, Grace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("replacement endpoint: %v", err)
	}
	defer replacement.Close()
	if err := replacement.Send(1, 1, 0, 16, wirePayload{Text: "back"}); err != nil {
		t.Fatal(err)
	}
	got, err := fabrics[0].RecvCtx(context.Background(), 0, 1, 1)
	if err != nil {
		t.Fatalf("recv from reconnected peer: %v", err)
	}
	if got.(wirePayload).Text != "back" {
		t.Fatalf("got %#v", got)
	}

	// Now the peer goes away for good: blame after ~grace, well before
	// the 5s fabric timeout.
	replacement.Close()
	start := time.Now()
	_, err = fabrics[0].RecvCtx(context.Background(), 0, 1, 2)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("got %v, want ErrPeerDown", err)
	}
	var abort *AbortError
	if !errors.As(err, &abort) || abort.Party != 1 {
		t.Fatalf("blame must name party 1: %v", err)
	}
	if elapsed < 250*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("blame after %v, want ≈ the 300ms grace window", elapsed)
	}
}

// TestRecoveringSlowIsNotDead: a connected-but-silent peer must hit the
// ordinary receive timeout, never the peer-down blame — heartbeats keep
// the link provably alive.
func TestRecoveringSlowIsNotDead(t *testing.T) {
	defer leakcheck.Check(t)
	registerWireTest()
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*RecoveringTCPFabric, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for me := 0; me < 2; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			fabrics[me], errs[me] = NewRecoveringTCPFabric(addrs, me, 400*time.Millisecond, RecoverOptions{
				SessionID: "slow", Epoch: 1,
				Heartbeat: 50 * time.Millisecond,
				Grace:     100 * time.Millisecond, // shorter than the timeout: blame would win if mis-assigned
			})
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	defer func() {
		for _, f := range fabrics {
			f.Close()
		}
	}()
	_, err = fabrics[0].RecvCtx(context.Background(), 0, 1, 1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent-but-alive peer: got %v, want ErrTimeout", err)
	}
}

// TestRecoveringJournalReplay is the crash-recovery core at transport
// level: party 1 runs half a session, crashes, and a restarted process
// replays its journal — re-issued sends are suppressed, journaled
// receives are served locally, and the surviving peer sees every
// logical message exactly once.
func TestRecoveringJournalReplay(t *testing.T) {
	defer leakcheck.Check(t)
	registerWireTest()
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	journal := newMemJournal()
	mk := func(me, epoch int, j Journaler) (*RecoveringTCPFabric, error) {
		return NewRecoveringTCPFabric(addrs, me, 5*time.Second, RecoverOptions{
			SessionID: "replay", Epoch: epoch, Journal: j,
			Heartbeat: 25 * time.Millisecond, Grace: 5 * time.Second,
		})
	}
	var survivor, victim *RecoveringTCPFabric
	var serr, verr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); survivor, serr = mk(0, 1, nil) }()
	go func() { defer wg.Done(); victim, verr = mk(1, 1, journal) }()
	wg.Wait()
	if serr != nil || verr != nil {
		t.Fatalf("mesh: %v / %v", serr, verr)
	}
	defer func() { survivor.Close() }()

	// First life of party 1: send m1, receive m2, send m3 — all
	// journaled — then crash.
	if err := victim.Send(1, 1, 0, 16, wirePayload{Text: "m1"}); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Send(2, 0, 1, 16, wirePayload{Text: "m2"}); err != nil {
		t.Fatal(err)
	}
	if got, err := victim.RecvCtx(context.Background(), 1, 0, 2); err != nil || got.(wirePayload).Text != "m2" {
		t.Fatalf("victim recv m2: %v, %v", got, err)
	}
	if err := victim.Send(3, 1, 0, 16, wirePayload{Text: "m3"}); err != nil {
		t.Fatal(err)
	}
	if got, err := survivor.RecvCtx(context.Background(), 0, 1, 1); err != nil || got.(wirePayload).Text != "m1" {
		t.Fatalf("survivor recv m1: %v, %v", got, err)
	}
	victim.Close() // crash

	// Second life: deterministic recomputation re-issues the exact same
	// operations against the journal.
	restarted, err := mk(1, 2, journal)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer restarted.Close()
	if err := restarted.Send(1, 1, 0, 16, wirePayload{Text: "m1"}); err != nil {
		t.Fatalf("replayed send m1: %v", err)
	}
	if got, err := restarted.RecvCtx(context.Background(), 1, 0, 2); err != nil || got.(wirePayload).Text != "m2" {
		t.Fatalf("journal-served recv m2: %v, %v", got, err)
	}
	if err := restarted.Send(3, 1, 0, 16, wirePayload{Text: "m3"}); err != nil {
		t.Fatalf("replayed send m3: %v", err)
	}
	// Past the journal: live traffic resumes in both directions.
	if err := restarted.Send(4, 1, 0, 16, wirePayload{Text: "m4"}); err != nil {
		t.Fatal(err)
	}
	if got, err := survivor.RecvCtx(context.Background(), 0, 1, 3); err != nil || got.(wirePayload).Text != "m3" {
		t.Fatalf("survivor recv m3: %v, %v", got, err)
	}
	if got, err := survivor.RecvCtx(context.Background(), 0, 1, 4); err != nil || got.(wirePayload).Text != "m4" {
		t.Fatalf("survivor recv m4: %v, %v", got, err)
	}
	if err := survivor.Send(5, 0, 1, 16, wirePayload{Text: "m5"}); err != nil {
		t.Fatal(err)
	}
	if got, err := restarted.RecvCtx(context.Background(), 1, 0, 5); err != nil || got.(wirePayload).Text != "m5" {
		t.Fatalf("restarted live recv m5: %v, %v", got, err)
	}
	// Stats parity: the restarted endpoint reports every logical send
	// in party 1's script (m1, m3, m4 — replayed or live), exactly as
	// an uninterrupted run of that script would.
	if s := restarted.Stats(); s.MessagesSent[1] != 3 {
		t.Fatalf("restarted stats: %d messages, want 3", s.MessagesSent[1])
	}

	// A divergent replay (wrong round ⇒ different flags or seed) must
	// surface ErrReplayDiverged, not silent corruption. Free party 1's
	// address first.
	restarted.Close()
	journal2 := newMemJournal()
	journal2.LogSend(0, 1, 16, 0, wirePayload{Text: "m1"})
	bad, err := NewRecoveringTCPFabric(addrs, 1, 5*time.Second, RecoverOptions{
		SessionID: "replay", Epoch: 3, Journal: journal2, Grace: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("divergence fixture: %v", err)
	}
	defer bad.Close()
	if err := bad.Send(9, 1, 0, 16, wirePayload{Text: "m1"}); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("divergent replay: %v, want ErrReplayDiverged", err)
	}
}

// TestRecoveringSessionMismatch: endpoints from different sessions must
// never mesh.
func TestRecoveringSessionMismatch(t *testing.T) {
	defer leakcheck.Check(t)
	registerWireTest()
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]error, 2)
	var wg sync.WaitGroup
	for me := 0; me < 2; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := NewRecoveringTCPFabric(addrs, me, time.Second, RecoverOptions{
				SessionID:   fmt.Sprintf("session-%d", me),
				MeshTimeout: 500 * time.Millisecond,
			})
			if f != nil {
				f.Close()
			}
			results[me] = err
		}()
	}
	wg.Wait()
	for me, err := range results {
		if err == nil {
			t.Fatalf("party %d meshed across session IDs", me)
		}
	}
}

// TestRecoveringStaleEpochRejected: a handshake carrying an older epoch
// than the link has already seen is a leftover from before a restart
// and must be refused.
func TestRecoveringStaleEpochRejected(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, nil)
	// Bump the known epoch for party 1 on party 0's link, then replay a
	// stale epoch-1 handshake by hand.
	l := fabrics[0].links[1]
	l.mu.Lock()
	l.peerEpoch = 5
	addr := fabrics[0].ln.Addr().String()
	l.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The accepter replies to the hello before the epoch check, so
	// rejection shows up as the connection being closed without ever
	// carrying a frame (an accepted connection would carry a heartbeat
	// within the default 250ms interval).
	if err := wirecodec.WriteValue(conn, rhello{SessionID: "test-session", Party: 1, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(conn)
	v, err := wirecodec.ReadValue(rd)
	if err != nil {
		t.Fatalf("handshake reply: %v", err)
	}
	if _, ok := v.(rhello); !ok {
		t.Fatalf("handshake reply is a %T, want rhello", v)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if env, err := wirecodec.ReadValue(rd); err == nil {
		t.Fatalf("stale-epoch connection carried traffic: %+v", env)
	}
	// The genuine link is untouched by the stale intruder.
	if err := fabrics[1].Send(1, 1, 0, 16, wirePayload{Text: "still-alive"}); err != nil {
		t.Fatal(err)
	}
	if got, err := fabrics[0].RecvCtx(context.Background(), 0, 1, 1); err != nil || got.(wirePayload).Text != "still-alive" {
		t.Fatalf("genuine link after stale handshake: %v, %v", got, err)
	}
}

// TestRecoveringCloseIdempotent: concurrent and repeated Close calls
// must be safe, including racing in-flight receives.
func TestRecoveringCloseIdempotent(t *testing.T) {
	defer leakcheck.Check(t)
	_, fabrics := buildRecoveryMesh(t, 2, nil)
	recvDone := make(chan error, 1)
	go func() {
		_, err := fabrics[0].RecvCtx(context.Background(), 0, 1, 1)
		recvDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); fabrics[0].Close() }()
	}
	wg.Wait()
	if err := <-recvDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("in-flight recv after Close: %v, want ErrClosed", err)
	}
	fabrics[0].Close() // and once more for good measure
}
