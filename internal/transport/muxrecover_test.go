package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"groupranking/internal/leakcheck"
	"groupranking/internal/wirecodec"
)

// recoveringMesh forms an n-daemon recovering mux mesh on fixed addrs.
func recoveringMesh(t *testing.T, addrs []string, epochs []int, grace time.Duration) []*SessionMux {
	t.Helper()
	n := len(addrs)
	muxes := make([]*SessionMux, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			muxes[i], errs[i] = NewSessionMux(addrs, i, 5*time.Second,
				MuxOptions{Recovery: &MuxRecovery{Epoch: epochs[i], Grace: grace}})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("recovering mux %d: %v", i, err)
		}
	}
	return muxes
}

// A recovering mesh behaves like a plain one when nothing fails: a
// journal-backed session ring-passes and every frame lands in the
// journals with contiguous sequence numbers.
func TestMuxRecoveringRingJournals(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatalf("addrs: %v", err)
	}
	muxes := recoveringMesh(t, addrs, []int{1, 1, 1}, 10*time.Second)
	defer func() {
		for _, m := range muxes {
			m.Close()
		}
	}()
	jrs := make([]*memJournal, 3)
	sess := make([]*MuxSession, 3)
	for i, m := range muxes {
		jrs[i] = newMemJournal()
		s, err := m.OpenRecovering("ring", 0, jrs[i])
		if err != nil {
			t.Fatalf("open recovering on %d: %v", i, err)
		}
		sess[i] = s
	}
	ringPass(t, sess, 100)
	for i := range sess {
		next := (i + 1) % 3
		sent, _ := jrs[i].SentTo(next)
		if len(sent) != 1 || sent[0].Seq != 1 || sent[0].Round != 7 {
			t.Fatalf("party %d journaled sends to %d: %+v", i, next, sent)
		}
		prev := (i + 2) % 3
		recv, _ := jrs[i].RecvFrom(prev)
		if len(recv) != 1 || recv[0].Seq != 1 {
			t.Fatalf("party %d journaled recvs from %d: %+v", i, prev, recv)
		}
	}
	for _, s := range sess {
		s.Close()
	}
}

// The tentpole property at the transport layer: an endpoint dies
// mid-session (its daemon restarts at a new epoch, same journals) and
// the session resumes to the exact same frame stream — journaled
// receives replay first, the peer's outage-window sends arrive by
// resume retransmission, replayed sends are suppressed, and fresh
// traffic flows both ways afterwards.
func TestMuxRecoveringRestartResumes(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatalf("addrs: %v", err)
	}
	muxes := recoveringMesh(t, addrs, []int{1, 1}, 10*time.Second)
	m0, m1 := muxes[0], muxes[1]
	defer m0.Close()
	j0, j1 := newMemJournal(), newMemJournal()
	s0, err := m0.OpenRecovering("job", 0, j0)
	if err != nil {
		t.Fatalf("open on 0: %v", err)
	}
	s1, err := m1.OpenRecovering("job", 0, j1)
	if err != nil {
		t.Fatalf("open on 1: %v", err)
	}

	// Rounds 1..5 in both directions while everything is healthy.
	for r := 1; r <= 5; r++ {
		if err := s0.Send(r, 0, 1, 8, 100+r); err != nil {
			t.Fatalf("s0 send round %d: %v", r, err)
		}
		if v, err := s1.RecvCtx(context.Background(), 1, 0, r); err != nil || v.(int) != 100+r {
			t.Fatalf("s1 recv round %d: %v %v", r, v, err)
		}
		if err := s1.Send(r, 1, 0, 8, 200+r); err != nil {
			t.Fatalf("s1 send round %d: %v", r, err)
		}
		if v, err := s0.RecvCtx(context.Background(), 0, 1, r); err != nil || v.(int) != 200+r {
			t.Fatalf("s0 recv round %d: %v %v", r, v, err)
		}
	}

	// Party 1 "crashes": its whole mux goes away. Party 0 keeps
	// sending rounds 6..8 into the outage — the writes land in the
	// journal and must NOT error (the journal is the retransmit
	// buffer).
	m1.Close()
	time.Sleep(50 * time.Millisecond)
	for r := 6; r <= 8; r++ {
		if err := s0.Send(r, 0, 1, 8, 100+r); err != nil {
			t.Fatalf("s0 send during outage round %d: %v", r, err)
		}
	}

	// Party 1 restarts: a new mux at epoch 2 on the same address,
	// re-adopting the session from the same journal.
	m1b, err := NewSessionMux(addrs, 1, 5*time.Second,
		MuxOptions{Recovery: &MuxRecovery{Epoch: 2, Grace: 10 * time.Second}})
	if err != nil {
		t.Fatalf("restarting mux 1: %v", err)
	}
	defer m1b.Close()
	s1b, err := m1b.OpenRecovering("job", 0, j1)
	if err != nil {
		t.Fatalf("re-adopt on 1: %v", err)
	}

	// Party 1 re-executes its script from the top: rounds 1..5 replay
	// from the journal (and the re-sends are suppressed), rounds 6..8
	// arrive via resume retransmission from party 0's journal.
	for r := 1; r <= 8; r++ {
		v, err := s1b.RecvCtx(context.Background(), 1, 0, r)
		if err != nil {
			t.Fatalf("s1b recv round %d: %v", r, err)
		}
		if v.(int) != 100+r {
			t.Fatalf("s1b recv round %d: got %v, want %d", r, v, 100+r)
		}
		if r <= 5 {
			if err := s1b.Send(r, 1, 0, 8, 200+r); err != nil {
				t.Fatalf("s1b replayed send round %d: %v", r, err)
			}
		}
	}
	// Fresh post-restart traffic in both directions.
	if err := s1b.Send(9, 1, 0, 8, 209); err != nil {
		t.Fatalf("s1b live send: %v", err)
	}
	if v, err := s0.RecvCtx(context.Background(), 0, 1, 9); err != nil || v.(int) != 209 {
		t.Fatalf("s0 recv round 9: %v %v", v, err)
	}
	if err := s0.Send(10, 0, 1, 8, 110); err != nil {
		t.Fatalf("s0 live send: %v", err)
	}
	if v, err := s1b.RecvCtx(context.Background(), 1, 0, 10); err != nil || v.(int) != 110 {
		t.Fatalf("s1b recv round 10: %v %v", v, err)
	}
	// The sequence numbers journaled on the restarted side must be the
	// contiguous continuation of the pre-crash life.
	recv, _ := j1.RecvFrom(0)
	for i, msg := range recv {
		if msg.Seq != uint64(i+1) {
			t.Fatalf("journaled recv %d has seq %d", i, msg.Seq)
		}
	}
	if len(recv) != 9 {
		t.Fatalf("journaled recvs after resume: %d, want 9", len(recv))
	}
	s0.Close()
	s1b.Close()
}

// A link outage that outlives the grace blames the peer: blocked
// receives fail with the typed ErrPeerDown abort naming the party, and
// sessions opened while the peer is gone see the same once their wait
// crosses the grace.
func TestMuxRecoveringGraceBlame(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatalf("addrs: %v", err)
	}
	muxes := recoveringMesh(t, addrs, []int{1, 1}, 300*time.Millisecond)
	m0, m1 := muxes[0], muxes[1]
	defer m0.Close()
	j0 := newMemJournal()
	s0, err := m0.OpenRecovering("doomed", 5*time.Second, j0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m1.Close()
	start := time.Now()
	_, err = s0.RecvCtx(context.Background(), 0, 1, 1)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("recv after grace: %v, want ErrPeerDown", err)
	}
	var ab *AbortError
	if !errors.As(err, &ab) || ab.Party != 1 {
		t.Fatalf("blame does not name party 1: %v", err)
	}
	if waited := time.Since(start); waited < 250*time.Millisecond {
		t.Fatalf("blamed after only %v, inside the grace", waited)
	}
	s0.Close()
}

// Hostile bytes on a recovering mux's lifetime listener must not
// disturb the mesh: a garbage handshake is dropped, and a session
// started afterwards still flows.
func TestMuxRecoveringHostileAccept(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatalf("addrs: %v", err)
	}
	muxes := recoveringMesh(t, addrs, []int{1, 1}, 10*time.Second)
	m0, m1 := muxes[0], muxes[1]
	defer m0.Close()
	defer m1.Close()

	// Garbage pre-hello bytes at party 0's listener.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("hostile dial: %v", err)
	}
	conn.Write([]byte("\xff\xff\xff\xffnot a wirecodec frame at all"))
	conn.Close()

	// A self-declared "party 1" whose first frame is garbage: the link
	// replacement is dropped once the frame fails to decode, and the
	// real dialer re-attaches on its own.
	conn2, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("hostile dial 2: %v", err)
	}
	if err := wirecodec.WriteValue(conn2, muxHello{Party: 1, Epoch: 1}); err != nil {
		t.Fatalf("hostile hello: %v", err)
	}
	conn2.Write([]byte("\x00\x01\x02\x03garbage after a valid hello"))
	conn2.Close()

	assertMeshRecovers(t, m0, m1, "after-hostility")
}

// assertMeshRecovers retries a tiny session across the two-daemon mesh
// until one flows cleanly (the real dialer may need a moment to win
// its link back from a hostile replacement) or the deadline expires.
func assertMeshRecovers(t *testing.T, m0, m1 *SessionMux, prefix string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for attempt := 0; ; attempt++ {
		j0, j1 := newMemJournal(), newMemJournal()
		s0, err := m0.OpenRecovering(fmt.Sprintf("%s-%d", prefix, attempt), 500*time.Millisecond, j0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		s1, err := m1.OpenRecovering(s0.SID(), 500*time.Millisecond, j1)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		sendErr := s1.Send(1, 1, 0, 8, 42)
		v, recvErr := s0.RecvCtx(context.Background(), 0, 1, 1)
		s0.Close()
		s1.Close()
		if sendErr == nil && recvErr == nil && v.(int) == 42 {
			return // mesh healthy despite the hostile connections
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh did not recover from hostility: send=%v recv=%v", sendErr, recvErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Hostile but well-formed frames AFTER a valid handshake: an attacker
// that completes the hello as "party 1" and then floods the control
// lane with malformed envelopes — data for a session that does not
// exist, a resume cursor for an unknown session, an absurd resume
// cursor for a real one, and an unknown frame kind — must never crash
// the daemon or poison other sessions; the link is dropped and the
// real peer re-attaches.
func TestMuxRecoveringHostileControlFrames(t *testing.T) {
	defer leakcheck.Check(t)
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatalf("addrs: %v", err)
	}
	muxes := recoveringMesh(t, addrs, []int{1, 1}, 10*time.Second)
	m0, m1 := muxes[0], muxes[1]
	defer m0.Close()
	defer m1.Close()

	// A live session so the hostile frames have a real target to try to
	// poison.
	j0, j1 := newMemJournal(), newMemJournal()
	s0, err := m0.OpenRecovering("victim", 0, j0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s1, err := m1.OpenRecovering("victim", 0, j1)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Each volley rides its own connection: a frame that kills the link
	// (unknown kind) must not mask the ones after it.
	volleys := [][]muxEnv{
		{ // data for a session nobody opened, with a lying seq
			{SID: "no-such-session", Kind: muxKindData, Round: 1, Bytes: 8, Seq: 999, Payload: 13},
			{SID: "no-such-session", Kind: muxKindData, Round: 2, Bytes: 8, Seq: 1, Payload: 14},
		},
		{ // resume cursors: unknown session, then an absurd cursor for a real one
			{SID: "no-such-session", Kind: muxKindResume, Seq: 1 << 40},
			{SID: "victim", Kind: muxKindResume, Seq: 1 << 40},
		},
		{ // an unknown frame kind, then a data frame the dropped link never delivers
			{Kind: 99, Payload: 0},
			{SID: "victim", Kind: muxKindData, Round: 1, Bytes: 8, Seq: 1, Payload: 666},
		},
	}
	for i, volley := range volleys {
		conn, err := net.Dial("tcp", addrs[0])
		if err != nil {
			t.Fatalf("hostile dial %d: %v", i, err)
		}
		if err := wirecodec.WriteValue(conn, muxHello{Party: 1, Epoch: 1}); err != nil {
			t.Fatalf("hostile hello %d: %v", i, err)
		}
		for _, env := range volley {
			wirecodec.WriteValue(conn, env)
		}
		time.Sleep(20 * time.Millisecond) // let the frames land before hanging up
		conn.Close()
	}

	// The victim session still flows end to end with the true payload —
	// the forged round-1 frame did not poison it (its queue keyed the
	// frames by the hostile link's party claim, and the link was
	// dropped), and fresh sessions work too.
	if err := s1.Send(1, 1, 0, 8, 42); err != nil {
		t.Fatalf("victim send: %v", err)
	}
	v, err := s0.RecvCtx(context.Background(), 0, 1, 1)
	if err != nil {
		t.Fatalf("victim recv: %v", err)
	}
	if v.(int) != 42 {
		t.Fatalf("victim session received %v, want the real payload 42", v)
	}
	s0.Close()
	s1.Close()
	assertMeshRecovers(t, m0, m1, "after-control-hostility")
}
