package transport

import (
	"crypto/sha256"
	"encoding"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"reflect"

	"groupranking/internal/wirecodec"
)

// Canonical broadcast-payload digests for the echo sub-round.
//
// The digest deliberately is NOT a hash of the payload's gob encoding.
// Gob assigns its wire type descriptors ids from a process-global
// counter in first-encode order, and those ids appear in the stream —
// so two processes whose earlier traffic first-encoded different types
// produce different bytes for the SAME value. That is not hypothetical:
// a party whose transport happened to serialise one extra message type
// before its first digest shifts every later type id, its digests stop
// matching everyone else's, and the echo round's own-link attribution
// then accuses an HONEST party of equivocation. A digest exchanged
// between processes must therefore be computed from the value alone.
//
// digestValue walks the payload by reflection and writes a canonical,
// prefix-free byte form:
//
//   - types with a custom gob encoding (gob.GobEncoder, or the
//     encoding.BinaryMarshaler fallback gob itself uses) contribute
//     their type name plus their encoded bytes — big.Int and the group
//     elements take this path, and their encodings are canonical by
//     construction;
//   - structs contribute their type name and exported fields in
//     declaration order (unexported fields are skipped, matching gob);
//   - interface values contribute the concrete type's name plus the
//     concrete value, so the dynamic wire type is part of the digest;
//   - nil pointers digest as their element's zero value, because that
//     is what a gob receiver materialises — sender and receiver agree
//     even when one side holds nil and the other an allocated zero;
//   - nil and empty slices digest identically, for the same reason;
//   - maps (iteration order is not canonical) and other non-wire kinds
//     are rejected loudly.
//
// Every tag is either fixed-width or length-prefixed, so distinct
// values cannot collide by concatenation ambiguity.

// PayloadDigest is the canonical broadcast-payload digest the echo
// sub-round exchanges: SHA-256 over a canonical serialisation of the
// payload that depends only on the value and its (registered wire)
// type — never on gob encoder state, which is process-global and
// order-dependent. A payload containing a map or a channel fails
// loudly here rather than producing an unstable digest.
func PayloadDigest(payload any) ([]byte, error) {
	// Fast path: types with a registered wirecodec codec digest as the
	// SHA-256 of their wire frame. The frame is canonical (fixed-width
	// fields, deterministic encode) and self-describing (the type id is
	// in the header), so it satisfies every property the reflection walk
	// exists to provide — and it is the exact byte string the transport
	// puts on the wire, so "digest matches" and "frame matches" are the
	// same statement. Gob-fallback types keep the reflection walk.
	if data, ok := wirecodec.MarshalRegistered(payload); ok {
		sum := sha256.Sum256(data)
		return sum[:], nil
	}
	h := sha256.New()
	v := reflect.ValueOf(payload)
	if v.IsValid() {
		// The top-level dynamic type is part of the digest, exactly as
		// it is part of the gob frame on the wire.
		name := digestTypeName(v.Type())
		fmt.Fprintf(h, "P%d:%s", len(name), name)
	}
	if err := digestValue(h, v); err != nil {
		return nil, fmt.Errorf("transport: echo digest: %w", err)
	}
	return h.Sum(nil), nil
}

var (
	gobEncoderType      = reflect.TypeOf((*gob.GobEncoder)(nil)).Elem()
	binaryMarshalerType = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()
)

// digestTypeName names a type for the digest: the full import path for
// named types (two same-named types in different packages must not
// collide), reflect's syntactic name otherwise.
func digestTypeName(t reflect.Type) string {
	if t.Kind() == reflect.Pointer {
		return "*" + digestTypeName(t.Elem())
	}
	if t.Name() != "" && t.PkgPath() != "" {
		return t.PkgPath() + "." + t.Name()
	}
	return t.String()
}

// customEncoding returns the type's custom encoder bytes when the type
// (or its pointer) implements gob.GobEncoder or encoding.BinaryMarshaler
// — the same two interfaces gob consults, in the same order.
func customEncoding(v reflect.Value) ([]byte, bool, error) {
	t := v.Type()
	for _, iface := range []reflect.Type{gobEncoderType, binaryMarshalerType} {
		var rcv reflect.Value
		switch {
		case t.Implements(iface):
			rcv = v
		case reflect.PointerTo(t).Implements(iface):
			// The method needs a pointer receiver; v may not be
			// addressable (an interface element), so encode a copy.
			rcv = reflect.New(t)
			rcv.Elem().Set(v)
		default:
			continue
		}
		var data []byte
		var err error
		if iface == gobEncoderType {
			data, err = rcv.Interface().(gob.GobEncoder).GobEncode()
		} else {
			data, err = rcv.Interface().(encoding.BinaryMarshaler).MarshalBinary()
		}
		return data, true, err
	}
	return nil, false, nil
}

// digestValue writes the canonical form of v to w. See the package
// comment above for the encoding rules.
func digestValue(w io.Writer, v reflect.Value) error {
	if !v.IsValid() {
		_, err := io.WriteString(w, "n")
		return err
	}
	t := v.Type()

	if v.Kind() == reflect.Pointer && v.IsNil() {
		// A receiver decodes a nil pointer as an allocated zero value;
		// digest the zero so both representations agree.
		v = reflect.New(t.Elem())
	}
	if t.Kind() != reflect.Interface {
		if data, ok, err := customEncoding(v); ok {
			if err != nil {
				return fmt.Errorf("%s: %w", digestTypeName(t), err)
			}
			name := digestTypeName(t)
			if _, err := fmt.Fprintf(w, "g%d:%s%d:", len(name), name, len(data)); err != nil {
				return err
			}
			_, err = w.Write(data)
			return err
		}
	}

	switch v.Kind() {
	case reflect.Pointer:
		return digestValue(w, v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			_, err := io.WriteString(w, "n")
			return err
		}
		elem := v.Elem()
		name := digestTypeName(elem.Type())
		if _, err := fmt.Fprintf(w, "I%d:%s", len(name), name); err != nil {
			return err
		}
		return digestValue(w, elem)
	case reflect.Bool:
		s := "b0"
		if v.Bool() {
			s = "b1"
		}
		_, err := io.WriteString(w, s)
		return err
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		_, err := fmt.Fprintf(w, "i%d;", v.Int())
		return err
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		_, err := fmt.Fprintf(w, "u%d;", v.Uint())
		return err
	case reflect.Float32, reflect.Float64:
		_, err := fmt.Fprintf(w, "f%x;", math.Float64bits(v.Float()))
		return err
	case reflect.String:
		if _, err := fmt.Fprintf(w, "s%d:", v.Len()); err != nil {
			return err
		}
		_, err := io.WriteString(w, v.String())
		return err
	case reflect.Slice, reflect.Array:
		if t.Elem().Kind() == reflect.Uint8 && v.Kind() == reflect.Slice {
			if _, err := fmt.Fprintf(w, "x%d:", v.Len()); err != nil {
				return err
			}
			_, err := w.Write(v.Bytes())
			return err
		}
		if _, err := fmt.Fprintf(w, "l%d:", v.Len()); err != nil {
			return err
		}
		for i := 0; i < v.Len(); i++ {
			if err := digestValue(w, v.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Struct:
		name := digestTypeName(t)
		if _, err := fmt.Fprintf(w, "t%d:%s{", len(name), name); err != nil {
			return err
		}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue // gob skips unexported fields; so does the digest
			}
			if _, err := fmt.Fprintf(w, "%d:%s", len(f.Name), f.Name); err != nil {
				return err
			}
			if err := digestValue(w, v.Field(i)); err != nil {
				return fmt.Errorf("%s.%s: %w", name, f.Name, err)
			}
		}
		_, err := io.WriteString(w, "}")
		return err
	case reflect.Map:
		return fmt.Errorf("map type %s has no canonical digest (iteration order); broadcast a sorted slice instead", digestTypeName(t))
	default:
		return fmt.Errorf("kind %s (%s) is not a wire type and cannot be digested", v.Kind(), digestTypeName(t))
	}
}
