package transport

import "testing"

func TestSubViewMapsIndicesAndRounds(t *testing.T) {
	f, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	// View of parties {1, 3, 4} as {0, 1, 2}, rounds shifted by 100.
	sv, err := NewSubView(f, []int{1, 3, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sv.N() != 3 {
		t.Fatalf("N = %d", sv.N())
	}
	if err := sv.Send(2, 0, 2, 9, "x"); err != nil {
		t.Fatal(err)
	}
	got, err := sv.Recv(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "x" {
		t.Errorf("payload %v", got)
	}
	// The parent trace must show the mapped endpoints and shifted round.
	tr := f.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0] != (Event{Round: 102, From: 1, To: 4, Bytes: 9}) {
		t.Errorf("trace event %+v", tr[0])
	}
}

func TestSubViewBroadcastGather(t *testing.T) {
	f, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSubView(f, []int{0, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Broadcast(1, 1, 4, "b"); err != nil {
		t.Fatal(err)
	}
	// Member 1 (= parent party 2) sent to members 0 and 2 only.
	for _, to := range []int{0, 2} {
		got, err := sv.Recv(to, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.(string) != "b" {
			t.Errorf("member %d got %v", to, got)
		}
	}
	// GatherAll within the view.
	if err := sv.Send(2, 0, 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := sv.Send(2, 1, 2, 1, 20); err != nil {
		t.Fatal(err)
	}
	all, err := sv.GatherAll(2)
	if err != nil {
		t.Fatal(err)
	}
	if all[0].(int) != 10 || all[1].(int) != 20 || all[2] != nil {
		t.Errorf("gathered %v", all)
	}
}

func TestSubViewValidation(t *testing.T) {
	f, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubView(f, nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewSubView(f, []int{0, 0}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewSubView(f, []int{0, 5}, 0); err == nil {
		t.Error("out-of-range member accepted")
	}
	sv, err := NewSubView(f, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Send(0, 0, 5, 0, nil); err == nil {
		t.Error("out-of-range view index accepted by Send")
	}
	if _, err := sv.Recv(5, 0); err == nil {
		t.Error("out-of-range view index accepted by Recv")
	}
}
