package transport

import (
	"bufio"
	"bytes"
	"testing"

	"groupranking/internal/wirecodec"
)

// FuzzFrameReader drives the exact read path the TCP pumps use —
// wirecodec.ReadValue on a bufio.Reader over an untrusted stream — with
// arbitrary bytes. The contract under test: a hostile or corrupted
// stream must produce an error, never a panic, and any stream ReadValue
// does accept must decode to a value that re-encodes.
func FuzzFrameReader(f *testing.F) {
	seed := func(v any) []byte {
		data, err := wirecodec.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(envelope{Round: 3, Bytes: 40, Payload: "hello"}))
	f.Add(seed(renv{Kind: 1, Round: 2, Seq: 7, Bytes: 16, Payload: 42}))
	f.Add(seed(rhello{SessionID: "sess", Party: 1, Epoch: 2, NextExpected: 9}))
	f.Add(seed(echoMsg{Digests: [][]byte{{1, 2}, nil}}))
	f.Add(seed(Corrupted{Round: 5}))
	// Hostile shapes: truncated header, oversized length, garbage magic.
	f.Add([]byte{'G', 'W'})
	f.Add([]byte{'G', 'W', 1, 0, 82, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bufio.NewReader(bytes.NewReader(data))
		for {
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				return // rejected: the pump turns this into a typed abort
			}
			if _, err := wirecodec.Marshal(v); err != nil {
				t.Fatalf("accepted frame does not re-encode: %v (%#v)", err, v)
			}
		}
	})
}

// FuzzEnvelopeDecode targets the envelope codec alone: arbitrary bytes
// presented as a complete frame payload, exercising the nested-payload
// path (an envelope carries a full inner frame).
func FuzzEnvelopeDecode(f *testing.F) {
	seed := func(v any) []byte {
		data, err := wirecodec.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(envelope{Round: 1, Bytes: 8, Payload: []byte{1, 2, 3}}))
	f.Add(seed(renv{Kind: 2, Round: 0, Seq: 1, Payload: nil}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wirecodec.Unmarshal(data)
		if err != nil {
			return
		}
		redone, err := wirecodec.Marshal(v)
		if err != nil {
			t.Fatalf("accepted value does not re-encode: %v (%#v)", err, v)
		}
		v2, err := wirecodec.Unmarshal(redone)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		_ = v2
	})
}

// FuzzMuxEnvDecode targets the mux frame decode path: the bytes a
// recovering daemon's lifetime listener accepts from anyone who can
// reach its port. Arbitrary input must never panic the decoder, and any
// accepted frame must survive a re-encode round trip — the property the
// mux pumps rely on to turn hostility into a typed link failure instead
// of a crash.
func FuzzMuxEnvDecode(f *testing.F) {
	seed := func(v any) []byte {
		data, err := wirecodec.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(muxEnv{SID: "s1", Kind: muxKindData, Round: 4, Bytes: 32, Seq: 9, Payload: "payload"}))
	f.Add(seed(muxEnv{Kind: muxKindControl, Payload: []byte{1, 2, 3}}))
	f.Add(seed(muxEnv{SID: "s2", Kind: muxKindResume, Seq: 17}))
	f.Add(seed(muxHello{Party: 3, Epoch: 2}))
	// Hostile shapes: truncated SID length, kind out of range, huge seq.
	f.Add([]byte{'G', 'W', 1, 0, 86, 0xFF})
	f.Add(bytes.Repeat([]byte{0x42}, 48))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bufio.NewReader(bytes.NewReader(data))
		v, err := wirecodec.ReadValue(rd)
		if err != nil {
			return // the pump marks the link down; nothing to check
		}
		redone, err := wirecodec.Marshal(v)
		if err != nil {
			t.Fatalf("accepted mux frame does not re-encode: %v (%#v)", err, v)
		}
		v2, err := wirecodec.Unmarshal(redone)
		if err != nil {
			t.Fatalf("re-encoded mux frame does not decode: %v", err)
		}
		if env, ok := v.(muxEnv); ok {
			env2, ok2 := v2.(muxEnv)
			if !ok2 || env2.SID != env.SID || env2.Kind != env.Kind || env2.Seq != env.Seq {
				t.Fatalf("mux envelope did not round-trip: %#v vs %#v", env, v2)
			}
		}
	})
}
