package transport

import (
	"bufio"
	"bytes"
	"testing"

	"groupranking/internal/wirecodec"
)

// FuzzFrameReader drives the exact read path the TCP pumps use —
// wirecodec.ReadValue on a bufio.Reader over an untrusted stream — with
// arbitrary bytes. The contract under test: a hostile or corrupted
// stream must produce an error, never a panic, and any stream ReadValue
// does accept must decode to a value that re-encodes.
func FuzzFrameReader(f *testing.F) {
	seed := func(v any) []byte {
		data, err := wirecodec.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(envelope{Round: 3, Bytes: 40, Payload: "hello"}))
	f.Add(seed(renv{Kind: 1, Round: 2, Seq: 7, Bytes: 16, Payload: 42}))
	f.Add(seed(rhello{SessionID: "sess", Party: 1, Epoch: 2, NextExpected: 9}))
	f.Add(seed(echoMsg{Digests: [][]byte{{1, 2}, nil}}))
	f.Add(seed(Corrupted{Round: 5}))
	// Hostile shapes: truncated header, oversized length, garbage magic.
	f.Add([]byte{'G', 'W'})
	f.Add([]byte{'G', 'W', 1, 0, 82, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bufio.NewReader(bytes.NewReader(data))
		for {
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				return // rejected: the pump turns this into a typed abort
			}
			if _, err := wirecodec.Marshal(v); err != nil {
				t.Fatalf("accepted frame does not re-encode: %v (%#v)", err, v)
			}
		}
	})
}

// FuzzEnvelopeDecode targets the envelope codec alone: arbitrary bytes
// presented as a complete frame payload, exercising the nested-payload
// path (an envelope carries a full inner frame).
func FuzzEnvelopeDecode(f *testing.F) {
	seed := func(v any) []byte {
		data, err := wirecodec.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(seed(envelope{Round: 1, Bytes: 8, Payload: []byte{1, 2, 3}}))
	f.Add(seed(renv{Kind: 2, Round: 0, Seq: 1, Payload: nil}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := wirecodec.Unmarshal(data)
		if err != nil {
			return
		}
		redone, err := wirecodec.Marshal(v)
		if err != nil {
			t.Fatalf("accepted value does not re-encode: %v (%#v)", err, v)
		}
		v2, err := wirecodec.Unmarshal(redone)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		_ = v2
	})
}
