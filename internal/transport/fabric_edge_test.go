package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestZeroCapacityRejected pins the constructor contract: a zero or
// negative queue capacity is a configuration error, not a silently
// unbuffered (and therefore deadlock-prone) fabric.
func TestZeroCapacityRejected(t *testing.T) {
	if _, err := New(2, WithQueueCapacity(0)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(2, WithQueueCapacity(-3)); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(2, WithQueueCapacity(1)); err != nil {
		t.Errorf("capacity 1 rejected: %v", err)
	}
}

// TestRecvAfterMarkDown covers the crash-detection drain contract:
// messages sent before the crash are still delivered, and only then do
// receives fail with a peer-down abort naming the dead party.
func TestRecvAfterMarkDown(t *testing.T) {
	fab, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Send(1, 0, 1, 8, "before-crash"); err != nil {
		t.Fatal(err)
	}
	fab.MarkDown(0)
	got, err := fab.RecvCtx(context.Background(), 1, 0, 1)
	if err != nil || got != "before-crash" {
		t.Fatalf("pre-crash message not drained: %v, %v", got, err)
	}
	_, err = fab.RecvCtx(context.Background(), 1, 0, 2)
	var abort *AbortError
	if !errors.As(err, &abort) || !errors.Is(err, ErrPeerDown) {
		t.Fatalf("want peer-down abort, got %v", err)
	}
	if abort.Party != 0 || abort.Round != 2 {
		t.Errorf("abort names party %d round %d, want party 0 round 2", abort.Party, abort.Round)
	}
	// MarkDown is idempotent and out-of-range indices are ignored.
	fab.MarkDown(0)
	fab.MarkDown(-1)
	fab.MarkDown(99)
}

// TestRecvCtxCancellation verifies a blocked receive unblocks promptly
// on context cancellation with a typed abort, not a hang or a timeout.
func TestRecvCtxCancellation(t *testing.T) {
	fab, err := New(2, WithRecvTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fab.RecvCtx(ctx, 1, 0, 7)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		var abort *AbortError
		if !errors.As(err, &abort) || !errors.Is(err, context.Canceled) {
			t.Fatalf("want cancellation abort, got %v", err)
		}
		if abort.Party != 0 || abort.Round != 7 {
			t.Errorf("abort names party %d round %d, want party 0 round 7", abort.Party, abort.Round)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled receive did not unblock")
	}
}

// TestRoundMismatchAbort verifies the round-tag check: consuming a
// message with the wrong tag is a typed abort, because a shifted stream
// means an earlier message was dropped, duplicated or reordered.
func TestRoundMismatchAbort(t *testing.T) {
	fab, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Send(3, 0, 1, 8, "tagged-3"); err != nil {
		t.Fatal(err)
	}
	_, err = fab.RecvCtx(context.Background(), 1, 0, 5)
	if !errors.Is(err, ErrRoundMismatch) {
		t.Fatalf("want round-mismatch abort, got %v", err)
	}
	// Round -1 accepts any tag (legacy Recv path).
	if err := fab.Send(3, 0, 1, 8, "tagged-again"); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.RecvCtx(context.Background(), 1, 0, -1); err != nil {
		t.Fatalf("wildcard round rejected a message: %v", err)
	}
}

// TestConcurrentSendRecvMarkDown hammers one fabric from many
// goroutines — senders, receivers and a crash marker — to give the race
// detector surface area over the queue, down-channel and stats paths.
func TestConcurrentSendRecvMarkDown(t *testing.T) {
	const n, msgs = 4, 64
	fab, err := New(n, WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			from, to := from, to
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					if err := fab.Send(i, from, to, 8, i); err != nil {
						t.Errorf("send %d→%d: %v", from, to, err)
						return
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					if _, err := fab.RecvCtx(context.Background(), to, from, i); err != nil {
						// The concurrent MarkDown below may race ahead of
						// the last few receives; peer-down is the one
						// acceptable failure.
						if errors.Is(err, ErrPeerDown) {
							return
						}
						t.Errorf("recv %d←%d: %v", to, from, err)
						return
					}
				}
			}()
		}
	}
	// Concurrent stats readers and a late MarkDown exercise the
	// remaining shared state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			fab.Stats()
			fab.Trace()
		}
	}()
	wg.Wait()
	fab.MarkDown(2)
	if _, err := fab.RecvCtx(context.Background(), 0, 2, 999); !errors.Is(err, ErrPeerDown) {
		t.Errorf("post-run receive from downed party: %v", err)
	}
}

// TestGatherAllCtxPartial verifies GatherAllCtx fails with the abort of
// the first unreachable party rather than hanging on later ones.
func TestGatherAllCtxPartial(t *testing.T) {
	fab, err := New(3, WithRecvTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Send(4, 1, 0, 8, "from-1"); err != nil {
		t.Fatal(err)
	}
	fab.MarkDown(2)
	_, err = fab.GatherAllCtx(context.Background(), 0, 4)
	var abort *AbortError
	if !errors.As(err, &abort) || abort.Party != 2 {
		t.Fatalf("want abort naming party 2, got %v", err)
	}
}
