package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPFabric implements Net over real TCP connections, so the protocol
// stack runs unchanged across processes or machines — the deployment
// shape the paper's "fully distributed framework" implies. Each pair of
// parties shares one duplex TCP connection carrying gob-encoded
// envelopes; per-sender FIFO ordering is TCP's ordering.
//
// Payload types that cross a TCPFabric must be gob-registered first
// (each protocol package exposes RegisterWire for its own types).
type TCPFabric struct {
	n  int
	me int

	conns []net.Conn
	encs  []*gob.Encoder
	encMu []sync.Mutex
	inbox []chan any

	timeout time.Duration

	mu       sync.Mutex
	msgs     int64
	bytes    int64
	maxRound int
	rounds   map[int]struct{}

	closeOnce sync.Once
}

var _ Net = (*TCPFabric)(nil)

// envelope is the wire frame.
type envelope struct {
	Round   int
	Bytes   int
	Payload any
}

// NewTCPFabric builds party me's endpoint of an n-party mesh. addrs
// lists every party's listen address (host:port); the function listens
// on addrs[me], dials every lower-indexed party, accepts connections
// from every higher-indexed one, and returns when the mesh is complete.
// All parties must call it concurrently.
func NewTCPFabric(addrs []string, me int, timeout time.Duration) (*TCPFabric, error) {
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("transport: tcp mesh needs at least two parties")
	}
	if me < 0 || me >= n {
		return nil, fmt.Errorf("transport: party index %d out of range", me)
	}
	f := &TCPFabric{
		n:       n,
		me:      me,
		conns:   make([]net.Conn, n),
		encs:    make([]*gob.Encoder, n),
		encMu:   make([]sync.Mutex, n),
		inbox:   make([]chan any, n),
		timeout: timeout,
		rounds:  make(map[int]struct{}),
	}
	for i := range f.inbox {
		f.inbox[i] = make(chan any, 4096)
	}

	ln, err := net.Listen("tcp", addrs[me])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addrs[me], err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept from higher-indexed peers; each introduces itself with its
	// index as the first gob value.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < n-1-me; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			dec := gob.NewDecoder(conn)
			var peer int
			if err := dec.Decode(&peer); err != nil {
				errs <- fmt.Errorf("transport: tcp handshake: %w", err)
				return
			}
			if peer <= me || peer >= n || f.conns[peer] != nil {
				errs <- fmt.Errorf("transport: invalid handshake from peer %d", peer)
				return
			}
			f.attach(peer, conn, dec)
		}
	}()

	// Dial lower-indexed peers (retrying while they come up).
	for peer := 0; peer < me; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(10 * time.Second)
			for {
				conn, err := net.Dial("tcp", addrs[peer])
				if err != nil {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("transport: dialing party %d: %w", peer, err)
						return
					}
					time.Sleep(10 * time.Millisecond)
					continue
				}
				enc := gob.NewEncoder(conn)
				if err := enc.Encode(me); err != nil {
					errs <- fmt.Errorf("transport: tcp handshake: %w", err)
					return
				}
				f.attachWithEncoder(peer, conn, enc, gob.NewDecoder(conn))
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// attach wires an accepted connection (decoder already created).
func (f *TCPFabric) attach(peer int, conn net.Conn, dec *gob.Decoder) {
	f.attachWithEncoder(peer, conn, gob.NewEncoder(conn), dec)
}

func (f *TCPFabric) attachWithEncoder(peer int, conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) {
	f.mu.Lock()
	f.conns[peer] = conn
	f.encs[peer] = enc
	f.mu.Unlock()
	// Reader pump: one goroutine per connection keeps per-sender FIFO
	// order and feeds the inbox.
	go func() {
		for {
			var env envelope
			if err := dec.Decode(&env); err != nil {
				close(f.inbox[peer])
				return
			}
			f.inbox[peer] <- env.Payload
		}
	}()
}

// N implements Net.
func (f *TCPFabric) N() int { return f.n }

// Send implements Net. Only this party's own index is a valid source.
func (f *TCPFabric) Send(round, from, to, bytes int, payload any) error {
	if from != f.me {
		return fmt.Errorf("transport: tcp party %d cannot send as %d", f.me, from)
	}
	if to < 0 || to >= f.n || to == f.me {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	f.mu.Lock()
	f.msgs++
	f.bytes += int64(bytes)
	if round > f.maxRound {
		f.maxRound = round
	}
	f.rounds[round] = struct{}{}
	f.mu.Unlock()

	f.encMu[to].Lock()
	defer f.encMu[to].Unlock()
	if f.encs[to] == nil {
		return fmt.Errorf("transport: no connection to party %d", to)
	}
	if err := f.encs[to].Encode(envelope{Round: round, Bytes: bytes, Payload: payload}); err != nil {
		return fmt.Errorf("transport: sending to party %d: %w", to, err)
	}
	return nil
}

// Recv implements Net. Only this party's own index is a valid receiver.
func (f *TCPFabric) Recv(to, from int) (any, error) {
	if to != f.me {
		return nil, fmt.Errorf("transport: tcp party %d cannot receive as %d", f.me, to)
	}
	if from < 0 || from >= f.n || from == f.me {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	if f.timeout <= 0 {
		p, ok := <-f.inbox[from]
		if !ok {
			return nil, fmt.Errorf("transport: connection to party %d closed", from)
		}
		return p, nil
	}
	select {
	case p, ok := <-f.inbox[from]:
		if !ok {
			return nil, fmt.Errorf("transport: connection to party %d closed", from)
		}
		return p, nil
	case <-time.After(f.timeout):
		return nil, fmt.Errorf("transport: timeout waiting for party %d", from)
	}
}

// Broadcast implements Net.
func (f *TCPFabric) Broadcast(round, from, bytes int, payload any) error {
	for to := 0; to < f.n; to++ {
		if to == f.me {
			continue
		}
		if err := f.Send(round, from, to, bytes, payload); err != nil {
			return err
		}
	}
	return nil
}

// GatherAll implements Net.
func (f *TCPFabric) GatherAll(to int) ([]any, error) {
	out := make([]any, f.n)
	for from := 0; from < f.n; from++ {
		if from == to {
			continue
		}
		p, err := f.Recv(to, from)
		if err != nil {
			return nil, err
		}
		out[from] = p
	}
	return out, nil
}

// LocalStats reports this endpoint's send counters (a TCP endpoint only
// observes its own traffic).
func (f *TCPFabric) LocalStats() (messages, bytes int64, rounds int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.msgs, f.bytes, len(f.rounds)
}

// Close tears down every connection.
func (f *TCPFabric) Close() {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, c := range f.conns {
			if c != nil {
				c.Close()
			}
		}
	})
}

// FreeLoopbackAddrs reserves n distinct loopback addresses for tests
// and demos by briefly listening on port 0.
func FreeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs, nil
}
