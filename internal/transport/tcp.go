package transport

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"groupranking/internal/telemetry"
	"groupranking/internal/wirecodec"
)

// TCPFabric implements Net over real TCP connections, so the protocol
// stack runs unchanged across processes or machines — the deployment
// shape the paper's "fully distributed framework" implies. Each pair of
// parties shares one duplex TCP connection carrying wirecodec envelope
// frames (length-prefixed, versioned binary); per-sender FIFO ordering
// is TCP's ordering.
//
// Failure behaviour: a lost connection or a malformed frame is detected
// by the per-peer reader pump and surfaces on the next receive as a
// typed *AbortError naming the peer (ErrPeerDown), never as a hang or
// a decode panic. Writes carry a deadline so a stalled peer cannot
// block a sender forever. Close drains and tears down every connection
// gracefully.
//
// Payload types that cross a TCPFabric use their registered wirecodec
// codecs; unregistered types ride the gob-fallback frame and must be
// gob-registered first (each protocol package exposes RegisterWire).
type TCPFabric struct {
	n  int
	me int

	conns []net.Conn
	encMu []sync.Mutex
	inbox []chan envelope

	timeout time.Duration

	mu       sync.Mutex
	msgs      int64
	bytes     int64
	maxRound  int
	rounds    map[int]RoundStats
	echoMsgs  int64
	echoBytes int64
	recvErr  []error // first reader-pump error per peer
	tm       *netMetrics

	// lastSeen[peer] is the unix-nano time of the last frame the reader
	// pump decoded from that peer (atomic; 0 before first contact).
	lastSeen []int64

	closeOnce sync.Once
	closeCh   chan struct{}
	pumps     sync.WaitGroup
}

var _ Net = (*TCPFabric)(nil)

// envelope is the wire frame.
type envelope struct {
	Round   int
	Bytes   int
	Payload any
}

// Mesh-formation and handshake limits.
const (
	dialDeadline      = 10 * time.Second
	dialBackoffBase   = 5 * time.Millisecond
	dialBackoffMax    = 250 * time.Millisecond
	handshakeDeadline = 5 * time.Second
)

// NewTCPFabric builds party me's endpoint of an n-party mesh. addrs
// lists every party's listen address (host:port); the function listens
// on addrs[me], dials every lower-indexed party (with exponential
// backoff and jitter while they come up), accepts connections from
// every higher-indexed one, and returns when the mesh is complete.
// All parties must call it concurrently. timeout bounds each receive
// wait and each write; <= 0 means no bound.
func NewTCPFabric(addrs []string, me int, timeout time.Duration) (*TCPFabric, error) {
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("transport: tcp mesh needs at least two parties")
	}
	if me < 0 || me >= n {
		return nil, fmt.Errorf("transport: party index %d out of range", me)
	}
	if err := validateMeshAddrs(addrs); err != nil {
		return nil, err
	}
	f := &TCPFabric{
		n:       n,
		me:      me,
		conns:   make([]net.Conn, n),
		encMu:   make([]sync.Mutex, n),
		inbox:   make([]chan envelope, n),
		timeout:  timeout,
		rounds:   make(map[int]RoundStats),
		recvErr:  make([]error, n),
		lastSeen: make([]int64, n),
		closeCh:  make(chan struct{}),
	}
	for i := range f.inbox {
		f.inbox[i] = make(chan envelope, 4096)
	}

	ln, err := net.Listen("tcp", addrs[me])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addrs[me], err)
	}
	defer ln.Close()
	// Bound mesh formation on the accept side too: a peer that dies
	// before dialing in must surface as an error here, not leave this
	// party blocked in Accept forever.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(dialDeadline))
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept from higher-indexed peers; each introduces itself with its
	// index as the first frame. The handshake carries a read deadline
	// so a connected-but-silent client cannot stall mesh formation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < n-1-me; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			conn.SetReadDeadline(time.Now().Add(handshakeDeadline))
			rd := bufio.NewReader(conn)
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				conn.Close()
				errs <- fmt.Errorf("transport: tcp handshake: %w", err)
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer, ok := v.(int)
			if !ok || peer <= me || peer >= n || f.conns[peer] != nil {
				conn.Close()
				errs <- fmt.Errorf("transport: invalid handshake from peer %v", v)
				return
			}
			f.attach(peer, conn, rd)
		}
	}()

	// Dial lower-indexed peers, backing off exponentially with jitter so
	// n parties starting at once do not hammer a slow listener in
	// lockstep.
	for peer := 0; peer < me; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			jitter := rand.New(rand.NewSource(int64(me)<<16 | int64(peer)))
			backoff := dialBackoffBase
			deadline := time.Now().Add(dialDeadline)
			for {
				conn, err := net.Dial("tcp", addrs[peer])
				if err != nil {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("transport: dialing party %d: %w", peer, err)
						return
					}
					// Sleep backoff ± 50% jitter, then double up to the cap.
					d := backoff/2 + time.Duration(jitter.Int63n(int64(backoff)))
					time.Sleep(d)
					if backoff *= 2; backoff > dialBackoffMax {
						backoff = dialBackoffMax
					}
					continue
				}
				conn.SetWriteDeadline(time.Now().Add(handshakeDeadline))
				if err := wirecodec.WriteValue(conn, me); err != nil {
					conn.Close()
					errs <- fmt.Errorf("transport: tcp handshake: %w", err)
					return
				}
				conn.SetWriteDeadline(time.Time{})
				f.attach(peer, conn, bufio.NewReader(conn))
				return
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// attach wires a handshaken connection: rd is the connection's buffered
// reader (it may already hold bytes past the handshake frame, so the
// pump must read through it, never the bare conn).
func (f *TCPFabric) attach(peer int, conn net.Conn, rd *bufio.Reader) {
	f.mu.Lock()
	f.conns[peer] = conn
	f.mu.Unlock()
	// Reader pump: one goroutine per connection keeps per-sender FIFO
	// order and feeds the inbox. A read or decode failure (connection
	// loss, truncated/garbage/oversized frame) is recorded and the inbox
	// closed, so pending and future receives fail with a typed
	// AbortError naming the sender instead of hanging or panicking.
	// No steady-state read deadline is set here: links are legitimately
	// idle for long stretches (a party receives from a given peer only
	// in certain rounds), and the receive-side timeout already bounds
	// every wait.
	f.pumps.Add(1)
	go func() {
		defer f.pumps.Done()
		fail := func(err error) {
			f.mu.Lock()
			if f.recvErr[peer] == nil {
				f.recvErr[peer] = err
			}
			f.mu.Unlock()
			close(f.inbox[peer])
		}
		for {
			v, err := wirecodec.ReadValue(rd)
			if err != nil {
				fail(err)
				return
			}
			env, ok := v.(envelope)
			if !ok {
				fail(fmt.Errorf("transport: party %d sent a %T frame, want envelope", peer, v))
				return
			}
			atomic.StoreInt64(&f.lastSeen[peer], time.Now().UnixNano())
			select {
			case f.inbox[peer] <- env:
			case <-f.closeCh:
				close(f.inbox[peer])
				return
			}
		}
	}()
}

// N implements Net.
func (f *TCPFabric) N() int { return f.n }

// Send implements Net. Only this party's own index is a valid source.
// When the fabric has a timeout, the write carries it as a deadline so
// a stalled or dead peer surfaces as an error, not a blocked sender.
func (f *TCPFabric) Send(round, from, to, bytes int, payload any) error {
	if from != f.me {
		return fmt.Errorf("transport: tcp party %d cannot send as %d", f.me, from)
	}
	if to < 0 || to >= f.n || to == f.me {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	f.mu.Lock()
	newRound := false
	if IsEchoRound(round) {
		f.echoMsgs++
		f.echoBytes += int64(bytes)
	} else {
		f.msgs++
		f.bytes += int64(bytes)
		if round > f.maxRound {
			f.maxRound = round
		}
		rs, seen := f.rounds[round]
		newRound = !seen
		rs.Messages++
		rs.Bytes += int64(bytes)
		f.rounds[round] = rs
	}
	f.tm.onSendLocked(round, bytes, newRound)
	conn := f.conns[to]
	f.mu.Unlock()

	f.encMu[to].Lock()
	defer f.encMu[to].Unlock()
	if conn == nil {
		return Abort(to, round, "", fmt.Errorf("%w: no connection to party %d", ErrPeerDown, to))
	}
	if f.timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(f.timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	if err := wirecodec.WriteValue(conn, envelope{Round: round, Bytes: bytes, Payload: payload}); err != nil {
		return Abort(to, round, "", fmt.Errorf("%w: sending to party %d: %v", ErrPeerDown, to, err))
	}
	return nil
}

// Recv implements Net.
func (f *TCPFabric) Recv(to, from int) (any, error) {
	return f.RecvCtx(context.Background(), to, from, -1)
}

// RecvCtx implements Net. Only this party's own index is a valid
// receiver. Connection loss surfaces as an AbortError carrying
// ErrPeerDown and the pump's underlying error.
func (f *TCPFabric) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if to != f.me {
		return nil, fmt.Errorf("transport: tcp party %d cannot receive as %d", f.me, to)
	}
	if from < 0 || from >= f.n || from == f.me {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	var timerC <-chan time.Time
	if f.timeout > 0 {
		tm := time.NewTimer(f.timeout)
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case env, ok := <-f.inbox[from]:
		if !ok {
			return nil, f.peerDown(from, round)
		}
		if round >= 0 && env.Round != round {
			return nil, roundMismatchAbort(from, round, env.Round)
		}
		return env.Payload, nil
	case <-done:
		return nil, Abort(from, round, "", ctx.Err())
	case <-timerC:
		return nil, Abort(from, round, "", ErrTimeout)
	}
}

// peerDown builds the abort for a closed inbox, citing the reader
// pump's underlying error (EOF, reset, decode failure) as the cause.
func (f *TCPFabric) peerDown(from, round int) error {
	f.mu.Lock()
	cause := f.recvErr[from]
	f.mu.Unlock()
	select {
	case <-f.closeCh:
		return Abort(from, round, "", ErrClosed)
	default:
	}
	if cause == nil {
		cause = fmt.Errorf("connection closed")
	}
	return Abort(from, round, "", fmt.Errorf("%w: party %d: %v", ErrPeerDown, from, cause))
}

// Broadcast implements Net, best-effort: every leg is attempted even
// when one fails, so a single dead peer does not keep this party's
// message from the survivors (who could otherwise mis-attribute the
// failure to this party). The first error is returned after all legs.
func (f *TCPFabric) Broadcast(round, from, bytes int, payload any) error {
	return broadcastAll(f.n, f.me, func(to int) error {
		return f.Send(round, from, to, bytes, payload)
	})
}

// GatherAll implements Net.
func (f *TCPFabric) GatherAll(to int) ([]any, error) {
	return f.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx implements Net.
func (f *TCPFabric) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, f, to, round)
}

// Stats reports this endpoint's traffic in the same per-party shape as
// Fabric.Stats. A TCP endpoint only observes its own sends, so only the
// slot at this party's index is populated; the other slots are zero.
func (f *TCPFabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		MessagesSent:   make([]int64, f.n),
		BytesSent:      make([]int64, f.n),
		MaxRound:       f.maxRound,
		DistinctRounds: len(f.rounds),
		PerRound:       make(map[int]RoundStats, len(f.rounds)),
		EchoMessages:   f.echoMsgs,
		EchoBytes:      f.echoBytes,
	}
	s.MessagesSent[f.me] = f.msgs
	s.BytesSent[f.me] = f.bytes
	for r, rs := range f.rounds {
		s.PerRound[r] = rs
	}
	return s
}

// SetTelemetry attaches a live metrics registry to this endpoint. Call
// it before protocol traffic starts; a nil registry (or never calling
// it) leaves the hot path with a single nil check per send.
func (f *TCPFabric) SetTelemetry(reg *telemetry.Registry) {
	f.mu.Lock()
	f.tm = newNetMetrics(reg)
	f.mu.Unlock()
}

// Health implements telemetry.HealthSource: the plain fabric's links
// are either connected or dead (there is no reconnect machinery —
// a lost connection stays lost and aborts the session).
func (f *TCPFabric) Health() []telemetry.PeerHealth {
	closed := false
	select {
	case <-f.closeCh:
		closed = true
	default:
	}
	out := make([]telemetry.PeerHealth, 0, f.n-1)
	f.mu.Lock()
	defer f.mu.Unlock()
	for peer := 0; peer < f.n; peer++ {
		if peer == f.me {
			continue
		}
		state := telemetry.StateConnected
		if closed || f.recvErr[peer] != nil || f.conns[peer] == nil {
			state = telemetry.StateDead
		}
		last := int64(-1)
		if ns := atomic.LoadInt64(&f.lastSeen[peer]); ns != 0 {
			last = time.Since(time.Unix(0, ns)).Milliseconds()
		}
		out = append(out, telemetry.PeerHealth{Peer: peer, State: state, LastContactMS: last})
	}
	return out
}

// Close tears down the endpoint gracefully: it stops the reader pumps,
// closes every connection, and waits for the pumps to drain, so no
// goroutine outlives the fabric. Safe to call more than once and
// concurrently with protocol traffic (in-flight receives fail with
// ErrClosed).
func (f *TCPFabric) Close() {
	f.closeOnce.Do(func() {
		close(f.closeCh)
		f.mu.Lock()
		for _, c := range f.conns {
			if c != nil {
				c.Close()
			}
		}
		f.mu.Unlock()
		f.pumps.Wait()
	})
}

// FreeLoopbackAddrs reserves n distinct loopback addresses for tests
// and demos by briefly listening on port 0.
func FreeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs, nil
}
