package transport

import (
	"strconv"
	"time"

	"groupranking/internal/telemetry"
)

// Live telemetry for the TCP fabrics. The obsv layer counts what the
// *protocol* sends (per phase, per party); these metrics cover what the
// *runtime* underneath does — round cadence, redials, retransmissions,
// ack lag, heartbeat RTT — which obsv never sees and the admin
// endpoint exports live. A nil *netMetrics (telemetry disabled) makes
// every hook a single nil check, and no metric ever adds wire traffic:
// the heartbeat RTT rides on frames the recovery link exchanges anyway.

// netMetrics bundles the handles one fabric endpoint feeds.
type netMetrics struct {
	msgs      *telemetry.Counter
	bytes     *telemetry.Counter
	echoMsgs  *telemetry.Counter
	echoBytes *telemetry.Counter
	rounds    *telemetry.Counter

	// roundSeconds observes the wall time between the first sends of
	// successive protocol rounds — the live per-round cadence.
	roundSeconds *telemetry.Histogram
	// hbRTT observes heartbeat round trips (recovering fabric only).
	hbRTT *telemetry.Histogram

	redials     *telemetry.CounterVec
	connects    *telemetry.CounterVec
	retransmits *telemetry.CounterVec
	ackLag      *telemetry.GaugeVec
	linkUp      *telemetry.GaugeVec

	lastRound time.Time // guarded by the owning fabric's stats mutex
}

func newNetMetrics(reg *telemetry.Registry) *netMetrics {
	if reg == nil {
		return nil
	}
	return &netMetrics{
		msgs:      reg.Counter("transport_msgs_total", "Protocol messages sent by this endpoint."),
		bytes:     reg.Counter("transport_bytes_total", "Protocol bytes sent by this endpoint."),
		echoMsgs:  reg.Counter("transport_echo_msgs_total", "Echo-broadcast sub-round messages sent (consistency overhead, outside the protocol counters)."),
		echoBytes: reg.Counter("transport_echo_bytes_total", "Echo-broadcast sub-round bytes sent."),
		rounds:    reg.Counter("transport_rounds_total", "Distinct protocol rounds this endpoint has sent in."),
		roundSeconds: reg.Histogram("transport_round_seconds",
			"Wall time between the first sends of successive protocol rounds.",
			telemetry.ExpBuckets(0.001, 4, 10)), // 1ms .. ~262s
		hbRTT: reg.Histogram("transport_heartbeat_rtt_seconds",
			"Heartbeat round-trip time per link.",
			telemetry.ExpBuckets(0.0001, 4, 10)), // 100µs .. ~26s
		redials:     reg.CounterVec("transport_redials_total", "Dial attempts per peer, including initial mesh formation.", "peer"),
		connects:    reg.CounterVec("transport_link_connects_total", "Successful link (re)establishments per peer.", "peer"),
		retransmits: reg.CounterVec("transport_retransmits_total", "Frames retransmitted to a peer after a reconnect.", "peer"),
		ackLag:      reg.GaugeVec("transport_ack_lag_frames", "Sent frames not yet acknowledged by the peer.", "peer"),
		linkUp:      reg.GaugeVec("transport_link_up", "Link state per peer: 1 connected, 0 down.", "peer"),
	}
}

// onSendLocked feeds the protocol-traffic counters. It must run inside
// the same critical section as the fabric's Stats accounting (the
// caller holds the stats mutex), so the exported counters and Stats can
// never disagree about whether a round has started.
func (m *netMetrics) onSendLocked(round, bytes int, newRound bool) {
	if m == nil {
		return
	}
	if IsEchoRound(round) {
		m.echoMsgs.Inc()
		m.echoBytes.Add(int64(bytes))
		return
	}
	m.msgs.Inc()
	m.bytes.Add(int64(bytes))
	if newRound {
		m.rounds.Inc()
		now := time.Now()
		if !m.lastRound.IsZero() {
			m.roundSeconds.Observe(now.Sub(m.lastRound).Seconds())
		}
		m.lastRound = now
	}
}

// observeRTT records one heartbeat round trip.
func (m *netMetrics) observeRTT(rtt time.Duration) {
	if m == nil {
		return
	}
	m.hbRTT.Observe(rtt.Seconds())
}

// linkMetrics is the per-peer slice of netMetrics a recovery link
// holds. The zero value (telemetry disabled) is fully inert.
type linkMetrics struct {
	redials     *telemetry.Counter
	connects    *telemetry.Counter
	retransmits *telemetry.Counter
	ackLag      *telemetry.Gauge
	linkUp      *telemetry.Gauge
}

func (m *netMetrics) link(peer int) linkMetrics {
	if m == nil {
		return linkMetrics{}
	}
	p := strconv.Itoa(peer)
	return linkMetrics{
		redials:     m.redials.With(p),
		connects:    m.connects.With(p),
		retransmits: m.retransmits.With(p),
		ackLag:      m.ackLag.With(p),
		linkUp:      m.linkUp.With(p),
	}
}
