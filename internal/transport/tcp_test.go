package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"groupranking/internal/leakcheck"
)

type wirePayload struct {
	From int
	Text string
}

var _wireTestOnce sync.Once

func registerWireTest() {
	_wireTestOnce.Do(func() { gob.Register(wirePayload{}) })
}

// buildMesh starts an n-party TCP mesh on loopback and returns the
// endpoints.
func buildMesh(t *testing.T, n int) []*TCPFabric {
	t.Helper()
	registerWireTest()
	addrs, err := FreeLoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*TCPFabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			fabrics[me], errs[me] = NewTCPFabric(addrs, me, 5*time.Second)
		}()
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", me, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabrics {
			f.Close()
		}
	})
	return fabrics
}

func TestTCPMeshSendRecv(t *testing.T) {
	fabrics := buildMesh(t, 3)
	if err := fabrics[0].Send(1, 0, 2, 16, wirePayload{From: 0, Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	got, err := fabrics[2].Recv(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := got.(wirePayload)
	if !ok || p.Text != "hello" {
		t.Fatalf("got %#v", got)
	}
}

func TestTCPOrderingPerSender(t *testing.T) {
	fabrics := buildMesh(t, 2)
	for i := 0; i < 50; i++ {
		if err := fabrics[0].Send(0, 0, 1, 4, wirePayload{From: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, err := fabrics[1].Recv(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.(wirePayload).From != i {
			t.Fatalf("message %d out of order", i)
		}
	}
}

func TestTCPBroadcastGather(t *testing.T) {
	const n = 4
	fabrics := buildMesh(t, n)
	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fabrics[me].Broadcast(1, me, 8, wirePayload{From: me}); err != nil {
				t.Error(err)
				return
			}
			all, err := fabrics[me].GatherAll(me)
			if err != nil {
				t.Error(err)
				return
			}
			for from := 0; from < n; from++ {
				if from == me {
					continue
				}
				if all[from].(wirePayload).From != from {
					t.Errorf("party %d slot %d wrong: %#v", me, from, all[from])
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPEndpointRestrictions(t *testing.T) {
	fabrics := buildMesh(t, 2)
	if err := fabrics[0].Send(0, 1, 0, 0, wirePayload{}); err == nil {
		t.Error("sending as another party accepted")
	}
	if _, err := fabrics[0].Recv(1, 0); err == nil {
		t.Error("receiving as another party accepted")
	}
	if err := fabrics[0].Send(0, 0, 0, 0, wirePayload{}); err == nil {
		t.Error("self send accepted")
	}
}

func TestTCPTimeout(t *testing.T) {
	fabrics := buildMesh(t, 2)
	short := fabrics[0]
	short.timeout = 30 * time.Millisecond
	if _, err := short.Recv(0, 1); err == nil {
		t.Error("expected timeout")
	}
}

func TestTCPStats(t *testing.T) {
	fabrics := buildMesh(t, 2)
	if err := fabrics[0].Send(7, 0, 1, 100, wirePayload{}); err != nil {
		t.Fatal(err)
	}
	s := fabrics[0].Stats()
	if len(s.MessagesSent) != 2 || len(s.BytesSent) != 2 {
		t.Fatalf("stats slices sized %d/%d, want 2/2", len(s.MessagesSent), len(s.BytesSent))
	}
	if s.MessagesSent[0] != 1 || s.BytesSent[0] != 100 {
		t.Errorf("own slot = %d msgs, %d bytes", s.MessagesSent[0], s.BytesSent[0])
	}
	if s.MessagesSent[1] != 0 || s.BytesSent[1] != 0 {
		t.Errorf("peer slot should be zero, got %d msgs, %d bytes", s.MessagesSent[1], s.BytesSent[1])
	}
	if s.MaxRound != 7 || s.DistinctRounds != 1 {
		t.Errorf("rounds: max %d, distinct %d", s.MaxRound, s.DistinctRounds)
	}
	if rs := s.PerRound[7]; rs.Messages != 1 || rs.Bytes != 100 {
		t.Errorf("per-round[7] = %+v", rs)
	}
}

func TestTCPClosedPeerSurfacesError(t *testing.T) {
	fabrics := buildMesh(t, 2)
	fabrics[1].Close()
	// Eventually the reader pump closes the inbox and Recv errors.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fabrics[0].timeout = 50 * time.Millisecond
		if _, err := fabrics[0].Recv(0, 1); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("closed connection never surfaced")
		}
	}
}

func TestTCPConstructorValidation(t *testing.T) {
	if _, err := NewTCPFabric([]string{"127.0.0.1:0"}, 0, time.Second); err == nil {
		t.Error("single party accepted")
	}
	if _, err := NewTCPFabric([]string{"a", "b"}, 5, time.Second); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestFreeLoopbackAddrs(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		seen[a] = true
		if a == "" {
			t.Fatal("empty address")
		}
	}
	_ = fmt.Sprintf("%v", addrs)
}

// TestTCPCloseIdempotentAndGoroutineClean pins the teardown contract the
// abort paths rely on: Close may be called repeatedly and concurrently —
// including while receives are in flight — and when the dust settles no
// reader pump survives and pending receives have failed with ErrClosed
// rather than hanging.
func TestTCPCloseIdempotentAndGoroutineClean(t *testing.T) {
	leakcheck.Check(t)
	fabrics := buildMesh(t, 3)

	recvDone := make(chan error, 1)
	go func() {
		_, err := fabrics[0].RecvCtx(context.Background(), 0, 1, 7)
		recvDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the receive block

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fabrics[0].Close()
		}()
	}
	wg.Wait()
	fabrics[0].Close() // and once more after the storm

	select {
	case err := <-recvDone:
		if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerDown) {
			t.Errorf("in-flight receive got %v, want ErrClosed or ErrPeerDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight receive hung through Close")
	}
	// Sends into a closed endpoint must error, not panic or hang.
	if err := fabrics[0].Send(7, 0, 1, 1, wirePayload{From: 0, Text: "late"}); err == nil {
		t.Error("send after Close succeeded")
	}
	for _, f := range fabrics[1:] {
		f.Close()
	}
}
