package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"groupranking/internal/telemetry"
	"groupranking/internal/wirecodec"
)

// This file implements the crash-recovery transport: a TCP mesh whose
// endpoints survive peer restarts and transient disconnects instead of
// aborting. Three mechanisms compose, all invisible to the protocol
// layers above Net:
//
//   - a session handshake: every connection opens with an rhello frame
//     pinning (sessionID, party, epoch, next-expected seq), so a
//     replacement connection resumes the link exactly where the old one
//     left off and stale or misconfigured connections are rejected;
//   - reliable delivery: every data frame carries a per-link sequence
//     number; senders keep a bounded retransmit buffer trimmed by
//     cumulative acks (piggybacked on every frame and on heartbeats),
//     retransmit un-acked frames after a reconnect, and receivers
//     suppress duplicates, so each logical message is delivered to the
//     protocol exactly once and in order;
//   - liveness: heartbeats distinguish a slow peer (connection up,
//     frames flowing — keep waiting) from a dead one (connection down);
//     blame is assigned only after the peer has failed to reconnect for
//     a full grace window, and the receive-side timeout still bounds
//     every wait, so a peer that never returns aborts the session
//     exactly as the plain TCPFabric would.
//
// With a Journaler attached the fabric is additionally durable: sends
// are journaled before the first wire write (write-ahead), receives are
// journaled before they are acknowledged, and a restarted process
// replays journaled receives to its deterministic recomputation without
// touching the network, resuming live at the first un-journaled
// message.

// Sentinel causes specific to the recovery runtime.
var (
	// ErrRetransmitOverflow: a peer was unreachable for so long that the
	// bounded retransmit buffer filled up.
	ErrRetransmitOverflow = errors.New("transport: retransmit buffer overflow")
	// ErrReplayDiverged: a restarted party's recomputation produced a
	// different message sequence than its journal — the process was
	// restarted with a different seed, flags or binary.
	ErrReplayDiverged = errors.New("transport: journal replay diverged from recomputation")
	// ErrDesync: a peer's frame sequence had a gap, which the retransmit
	// protocol makes impossible for a correct peer.
	ErrDesync = errors.New("transport: link sequence desynchronised")
)

// JournalMsg is one journaled protocol message, as the recovery fabric
// exchanges them with a Journaler.
type JournalMsg struct {
	Round   int
	Seq     uint64
	Bytes   int
	Payload any
}

// Journaler is the durable write-ahead log the recovery fabric records
// protocol messages into (implemented by internal/journal). LogSend is
// called before a message's first wire write; LogRecv before a received
// message is acknowledged. SentTo/RecvFrom replay a previous process's
// records on restart. Implementations must be safe for concurrent use.
type Journaler interface {
	LogSend(peer, round, bytes int, seq uint64, payload any) error
	LogRecv(peer, round, bytes int, seq uint64, payload any) error
	SentTo(peer int) ([]JournalMsg, error)
	RecvFrom(peer int) ([]JournalMsg, error)
}

// RecoverOptions configures a RecoveringTCPFabric.
type RecoverOptions struct {
	// SessionID names the protocol session; all parties must agree (the
	// deployment layer derives it from the pinned session parameters).
	// Connections announcing a different session are rejected.
	SessionID string
	// Epoch is this process's journal epoch (1 = first run), carried in
	// the handshake so peers reject stale connections from before a
	// restart.
	Epoch int
	// Journal, when non-nil, makes the session durable across process
	// crashes. Nil gives reconnect-only recovery (transient disconnects
	// heal; a process restart desynchronises and aborts cleanly).
	Journal Journaler
	// Heartbeat is the idle-link heartbeat interval (default 250ms;
	// negative disables heartbeats and the read-deadline liveness
	// check).
	Heartbeat time.Duration
	// Grace is how long a disconnected peer may take to reconnect before
	// blame is assigned and receives from it abort with ErrPeerDown
	// (default 15s).
	Grace time.Duration
	// RetransmitLimit bounds the per-peer un-acked send buffer
	// (default 16384 frames).
	RetransmitLimit int
	// MeshTimeout bounds initial mesh formation (default 10s).
	MeshTimeout time.Duration
	// Telemetry, when non-nil, feeds the live metrics registry: redials,
	// reconnects, retransmissions, ack lag, heartbeat RTT and per-round
	// wall time. Nil disables instrumentation at zero cost.
	Telemetry *telemetry.Registry
}

func (o RecoverOptions) withDefaults() RecoverOptions {
	if o.Heartbeat == 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.Grace <= 0 {
		o.Grace = 15 * time.Second
	}
	if o.RetransmitLimit <= 0 {
		o.RetransmitLimit = 1 << 14
	}
	if o.MeshTimeout <= 0 {
		o.MeshTimeout = dialDeadline
	}
	return o
}

// Redial backoff for re-establishing a lost link (distinct from the
// initial-dial constants in tcp.go: reconnects may wait much longer,
// so the cap is higher).
const (
	redialBackoffBase = 10 * time.Millisecond
	redialBackoffMax  = time.Second
)

// Frame kinds on a recovery link.
const (
	frameData uint8 = iota + 1
	frameHeartbeat
	frameAck
)

// rhello opens every connection, in both directions: the dialer sends
// its hello, the accepter validates it and replies with its own. Each
// side then retransmits its buffered frames from the peer's
// NextExpected onward.
type rhello struct {
	SessionID    string
	Party        int
	Epoch        int
	NextExpected uint64
}

// renv is the recovery link's wire frame. Ack piggybacks the sender's
// cumulative receive progress on every frame. T/EchoT implement the
// heartbeat RTT probe on frames the link exchanges anyway: a heartbeat
// stamps T with the sender's clock, the receiver echoes it back in the
// EchoT of its ack, and the original sender — reading its own clock
// again — observes the round trip. No extra frames, no protocol-stat
// drift (control frames are never counted).
type renv struct {
	Kind    uint8
	Round   int
	Seq     uint64
	Bytes   int
	Ack     uint64
	T       int64 // heartbeat send time (sender's unix nanos), 0 otherwise
	EchoT   int64 // echoed T from the heartbeat being acknowledged
	Payload any
}

// rlink is the per-peer state of one recovery link: the live
// connection (if any), the retransmit buffer, sequence counters, the
// journal replay queues, and the blame machinery.
type rlink struct {
	peer int

	mu        sync.Mutex
	conn      net.Conn
	up        bool
	peerEpoch int

	sendSeq uint64 // seq assigned to the next new data frame
	acked   uint64 // everything below this is delivered and trimmed
	buf     []renv // un-acked data frames, ascending seq

	recvNext uint64 // next data seq expected from the peer

	replaySends []JournalMsg // journaled sends not yet re-issued by the recomputation
	replayRecvs []JournalMsg // journaled receives not yet consumed by the recomputation

	// blame is closed when the peer has been down for a full grace
	// window (a fresh channel is installed on every reconnect);
	// blameCancel stops the pending grace timer.
	blame       chan struct{}
	blameCancel chan struct{}
	fatal       error // unrecoverable link error (desync, replay divergence)

	// downNotify wakes the dialer-side maintainer to redial.
	downNotify chan struct{}

	// Liveness telemetry, guarded by mu like the link state it mirrors.
	lastContact time.Time     // last frame of any kind from the peer
	lastRTT     time.Duration // most recent heartbeat round trip
	tm          linkMetrics
}

// RecoveringTCPFabric implements Net over a self-healing TCP mesh with
// optional journal-backed crash recovery. See the file comment for the
// mechanism; see NewTCPFabric for the plain fail-fast mesh.
type RecoveringTCPFabric struct {
	n, me   int
	addrs   []string
	timeout time.Duration
	opts    RecoverOptions

	links []*rlink
	inbox []chan renv
	tm    *netMetrics

	ln net.Listener

	mu       sync.Mutex
	msgs      int64
	bytes     int64
	maxRound  int
	rounds    map[int]RoundStats
	echoMsgs  int64
	echoBytes int64

	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup
}

var _ Net = (*RecoveringTCPFabric)(nil)

// NewRecoveringTCPFabric builds party me's endpoint of an n-party
// recovery mesh. Topology matches NewTCPFabric: the endpoint listens on
// addrs[me], dials every lower-indexed party and accepts from every
// higher-indexed one — and keeps doing both for the fabric's lifetime,
// so severed links heal and restarted peers rejoin. timeout bounds each
// receive wait and each write, exactly as on the plain fabric.
func NewRecoveringTCPFabric(addrs []string, me int, timeout time.Duration, opts RecoverOptions) (*RecoveringTCPFabric, error) {
	n := len(addrs)
	if n < 2 {
		return nil, fmt.Errorf("transport: tcp mesh needs at least two parties")
	}
	if me < 0 || me >= n {
		return nil, fmt.Errorf("transport: party index %d out of range", me)
	}
	if err := validateMeshAddrs(addrs); err != nil {
		return nil, err
	}
	if opts.SessionID == "" {
		return nil, fmt.Errorf("transport: recovery mesh needs a session ID")
	}
	if opts.Epoch < 1 {
		opts.Epoch = 1
	}
	opts = opts.withDefaults()
	f := &RecoveringTCPFabric{
		n: n, me: me,
		addrs:   addrs,
		timeout: timeout,
		opts:    opts,
		links:   make([]*rlink, n),
		inbox:   make([]chan renv, n),
		rounds:  make(map[int]RoundStats),
		closeCh: make(chan struct{}),
	}
	f.tm = newNetMetrics(opts.Telemetry)
	for peer := 0; peer < n; peer++ {
		if peer == me {
			continue
		}
		l := &rlink{
			peer:       peer,
			blame:      make(chan struct{}),
			downNotify: make(chan struct{}, 1),
			tm:         f.tm.link(peer),
		}
		if opts.Journal != nil {
			sent, err := opts.Journal.SentTo(peer)
			if err != nil {
				return nil, err
			}
			recv, err := opts.Journal.RecvFrom(peer)
			if err != nil {
				return nil, err
			}
			l.sendSeq = uint64(len(sent))
			l.replaySends = sent
			l.recvNext = uint64(len(recv))
			l.replayRecvs = recv
			// Every journaled send goes back into the retransmit buffer;
			// the reconnect handshake trims the prefix each peer already
			// has, and only the remainder is retransmitted.
			for _, m := range sent {
				l.buf = append(l.buf, renv{Kind: frameData, Round: m.Round, Seq: m.Seq, Bytes: m.Bytes, Payload: m.Payload})
			}
			l.tm.ackLag.Set(float64(len(l.buf)))
		}
		f.links[peer] = l
		f.inbox[peer] = make(chan renv, 4096)
	}

	ln, err := net.Listen("tcp", addrs[me])
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addrs[me], err)
	}
	f.ln = ln

	f.wg.Add(1)
	go f.acceptLoop()
	for peer := 0; peer < me; peer++ {
		f.wg.Add(1)
		go f.maintain(f.links[peer])
	}
	if opts.Heartbeat > 0 {
		f.wg.Add(1)
		go f.heartbeatLoop()
	}

	// Mesh formation. A first run (epoch 1) requires every link up
	// before the protocol starts. A restarted process must not: peers
	// that already finished their role and drained may be gone for good,
	// and everything they ever sent is replayable from the journal — so
	// links come up lazily as peers accept or redial, and each link
	// still down starts its grace clock immediately (a peer that neither
	// reconnects nor is fully journaled gets blamed, not waited on
	// forever).
	if opts.Epoch > 1 {
		for _, l := range f.links {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if !l.up {
				f.armBlameLocked(l)
			}
			l.mu.Unlock()
		}
		return f, nil
	}
	deadline := time.Now().Add(opts.MeshTimeout)
	for {
		if f.allUp() {
			return f, nil
		}
		if time.Now().After(deadline) {
			missing := f.downPeers()
			f.Close()
			return nil, fmt.Errorf("transport: recovery mesh formation timed out; peers not connected: %v", missing)
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-f.closeCh:
			return nil, fmt.Errorf("transport: fabric closed during mesh formation")
		}
	}
}

func (f *RecoveringTCPFabric) allUp() bool {
	for _, l := range f.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		up := l.up
		l.mu.Unlock()
		if !up {
			return false
		}
	}
	return true
}

func (f *RecoveringTCPFabric) downPeers() []int {
	var out []int
	for _, l := range f.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if !l.up {
			out = append(out, l.peer)
		}
		l.mu.Unlock()
	}
	return out
}

// Health reports the live state of every peer link for the /healthz
// endpoint: connected, reconnecting (down but within the grace
// window), or dead (blame assigned or the link hit a fatal error).
func (f *RecoveringTCPFabric) Health() []telemetry.PeerHealth {
	out := make([]telemetry.PeerHealth, 0, f.n-1)
	for _, l := range f.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		h := telemetry.PeerHealth{Peer: l.peer, LastContactMS: -1}
		if !l.lastContact.IsZero() {
			h.LastContactMS = time.Since(l.lastContact).Milliseconds()
		}
		if l.lastRTT > 0 {
			h.HeartbeatRTTMS = float64(l.lastRTT) / float64(time.Millisecond)
		}
		switch {
		case l.fatal != nil:
			h.State = telemetry.StateDead
		case l.up:
			h.State = telemetry.StateConnected
		default:
			h.State = telemetry.StateReconnecting
			select {
			case <-l.blame:
				h.State = telemetry.StateDead
			default:
			}
		}
		l.mu.Unlock()
		out = append(out, h)
	}
	return out
}

// acceptLoop accepts connections from higher-indexed peers for the
// fabric's lifetime, so a peer that loses its link (or restarts) can
// always dial back in.
func (f *RecoveringTCPFabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			select {
			case <-f.closeCh:
				return
			default:
			}
			// Transient accept failure: a malformed client must not kill
			// the accept loop for the whole session.
			select {
			case <-time.After(10 * time.Millisecond):
				continue
			case <-f.closeCh:
				return
			}
		}
		f.wg.Add(1)
		go f.handleAccept(conn)
	}
}

// handleAccept runs the accept side of the session handshake: read the
// dialer's hello, validate it, reply, then attach.
func (f *RecoveringTCPFabric) handleAccept(conn net.Conn) {
	defer f.wg.Done()
	conn.SetDeadline(time.Now().Add(handshakeDeadline))
	rd := bufio.NewReader(conn)
	v, err := wirecodec.ReadValue(rd)
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := v.(rhello)
	if !ok || hello.SessionID != f.opts.SessionID || hello.Party <= f.me || hello.Party >= f.n {
		conn.Close()
		return
	}
	l := f.links[hello.Party]
	l.mu.Lock()
	mine := rhello{SessionID: f.opts.SessionID, Party: f.me, Epoch: f.opts.Epoch, NextExpected: l.recvNext}
	l.mu.Unlock()
	if err := wirecodec.WriteValue(conn, mine); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	f.attach(l, conn, rd, hello)
}

// maintain owns the dial side of one link (to a lower-indexed peer): it
// dials with exponential backoff and jitter, runs the handshake, and
// redials whenever the link goes down — forever, until the fabric
// closes (receivers decide blame; the dialer just keeps trying).
func (f *RecoveringTCPFabric) maintain(l *rlink) {
	defer f.wg.Done()
	jitter := rand.New(rand.NewSource(int64(f.me)<<20 ^ int64(l.peer)<<4 ^ int64(f.opts.Epoch)))
	backoff := redialBackoffBase
	for {
		select {
		case <-f.closeCh:
			return
		default:
		}
		if f.dialPeer(l) {
			backoff = redialBackoffBase
			select {
			case <-f.closeCh:
				return
			case <-l.downNotify:
				continue
			}
		}
		// Sleep backoff ± 50% jitter, then double up to the cap.
		d := backoff/2 + time.Duration(jitter.Int63n(int64(backoff)))
		select {
		case <-time.After(d):
		case <-f.closeCh:
			return
		}
		if backoff *= 2; backoff > redialBackoffMax {
			backoff = redialBackoffMax
		}
	}
}

// dialPeer attempts one connection + handshake to a lower-indexed peer.
func (f *RecoveringTCPFabric) dialPeer(l *rlink) bool {
	l.tm.redials.Inc()
	conn, err := net.DialTimeout("tcp", f.addrs[l.peer], handshakeDeadline)
	if err != nil {
		return false
	}
	conn.SetDeadline(time.Now().Add(handshakeDeadline))
	l.mu.Lock()
	mine := rhello{SessionID: f.opts.SessionID, Party: f.me, Epoch: f.opts.Epoch, NextExpected: l.recvNext}
	l.mu.Unlock()
	if err := wirecodec.WriteValue(conn, mine); err != nil {
		conn.Close()
		return false
	}
	rd := bufio.NewReader(conn)
	v, err := wirecodec.ReadValue(rd)
	if err != nil {
		conn.Close()
		return false
	}
	hello, ok := v.(rhello)
	if !ok || hello.SessionID != f.opts.SessionID || hello.Party != l.peer {
		conn.Close()
		return false
	}
	conn.SetDeadline(time.Time{})
	return f.attach(l, conn, rd, hello)
}

// attach installs a handshaken connection on its link: it rejects
// stale epochs, replaces any previous connection, trims the retransmit
// buffer to the peer's next-expected seq, retransmits the rest in
// order, clears pending blame, and starts the reader pump.
func (f *RecoveringTCPFabric) attach(l *rlink, conn net.Conn, rd *bufio.Reader, hello rhello) bool {
	l.mu.Lock()
	if hello.Epoch < l.peerEpoch {
		// A connection from before the peer's restart, delivered late.
		l.mu.Unlock()
		conn.Close()
		return false
	}
	l.peerEpoch = hello.Epoch
	if l.conn != nil {
		l.conn.Close() // the old pump exits; markDown ignores the stale conn
	}
	l.conn = conn
	// The peer holds everything below NextExpected; treat it as acked.
	l.trimAckLocked(hello.NextExpected)
	// Retransmit the remainder before any new traffic, preserving order.
	for _, env := range l.buf {
		if f.timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(f.timeout))
		}
		if err := wirecodec.WriteValue(conn, env); err != nil {
			l.conn = nil
			l.mu.Unlock()
			conn.Close()
			return false
		}
	}
	conn.SetWriteDeadline(time.Time{})
	l.up = true
	l.tm.connects.Inc()
	l.tm.retransmits.Add(int64(len(l.buf)))
	l.tm.linkUp.Set(1)
	// A reconnect within the grace window cancels pending blame.
	if l.blameCancel != nil {
		close(l.blameCancel)
		l.blameCancel = nil
	}
	l.blame = make(chan struct{})
	l.mu.Unlock()

	f.wg.Add(1)
	go f.pump(l, conn, rd)
	return true
}

// markDown records a lost connection and arms the blame timer: if the
// peer does not reconnect within the grace window, receives from it
// fail with ErrPeerDown. Stale connections (already replaced) are
// ignored.
func (f *RecoveringTCPFabric) markDown(l *rlink, conn net.Conn) {
	l.mu.Lock()
	f.markDownLocked(l, conn)
	l.mu.Unlock()
}

func (f *RecoveringTCPFabric) markDownLocked(l *rlink, conn net.Conn) {
	if l.conn != conn || conn == nil {
		return
	}
	conn.Close()
	l.conn = nil
	l.up = false
	l.tm.linkUp.Set(0)
	f.armBlameLocked(l)
	select {
	case l.downNotify <- struct{}{}:
	default:
	}
}

// armBlameLocked starts the grace clock for a down link (idempotent per
// outage): if the peer is still away when it expires, receives from it
// are blamed. A reconnect cancels it (attach).
func (f *RecoveringTCPFabric) armBlameLocked(l *rlink) {
	if l.blameCancel != nil {
		return
	}
	cancel := make(chan struct{})
	l.blameCancel = cancel
	blame := l.blame
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTimer(f.opts.Grace)
		defer t.Stop()
		select {
		case <-t.C:
			close(blame)
		case <-cancel:
		case <-f.closeCh:
		}
	}()
}

// fatalLocked records an unrecoverable link error and releases every
// waiter immediately (no grace: the error is protocol-level, not a
// transient outage).
func (f *RecoveringTCPFabric) fatalLocked(l *rlink, err error) {
	if l.fatal == nil {
		l.fatal = err
	}
	if conn := l.conn; conn != nil {
		conn.Close()
		l.conn = nil
	}
	l.up = false
	l.tm.linkUp.Set(0)
	select {
	case <-l.blame:
	default:
		close(l.blame)
	}
}

// pump reads frames off one connection until it dies. With heartbeats
// enabled a read deadline of several intervals doubles as the liveness
// check: a connection that goes silent (severed link, frozen peer) is
// torn down and enters the redial/grace path.
func (f *RecoveringTCPFabric) pump(l *rlink, conn net.Conn, rd *bufio.Reader) {
	defer f.wg.Done()
	for {
		if f.opts.Heartbeat > 0 {
			conn.SetReadDeadline(time.Now().Add(4*f.opts.Heartbeat + time.Second))
		}
		v, err := wirecodec.ReadValue(rd)
		if err != nil {
			f.markDown(l, conn)
			return
		}
		env, ok := v.(renv)
		if !ok {
			// A peer speaking the right session but the wrong frame type
			// is beyond a redial's help; the desync path names it.
			l.mu.Lock()
			f.fatalLocked(l, fmt.Errorf("%w: party %d sent a %T frame, want recovery envelope",
				ErrDesync, l.peer, v))
			l.mu.Unlock()
			return
		}
		if !f.handleFrame(l, env) {
			return
		}
	}
}

// handleFrame processes one decoded frame; false stops the pump.
func (f *RecoveringTCPFabric) handleFrame(l *rlink, env renv) bool {
	now := time.Now()
	l.mu.Lock()
	l.lastContact = now
	l.trimAckLocked(env.Ack)
	if env.EchoT != 0 {
		// Our own heartbeat stamp coming back: both clock reads are ours,
		// so the difference is a true round trip (guarded against a wall
		// clock stepping backwards between them).
		if rtt := now.Sub(time.Unix(0, env.EchoT)); rtt >= 0 {
			l.lastRTT = rtt
			f.tm.observeRTT(rtt)
		}
	}
	if env.Kind != frameData {
		reply := renv{}
		if env.Kind == frameHeartbeat && env.T != 0 {
			reply = renv{Kind: frameAck, Ack: l.recvNext, EchoT: env.T}
		}
		l.mu.Unlock()
		if reply.Kind != 0 {
			f.sendControl(l, reply)
		}
		return true
	}
	switch {
	case env.Seq == l.recvNext:
		if f.opts.Journal != nil {
			// Journal before delivering or acking: an un-journaled message
			// is still owed by the peer after a crash, never lost.
			if err := f.opts.Journal.LogRecv(l.peer, env.Round, env.Bytes, env.Seq, env.Payload); err != nil {
				f.fatalLocked(l, err)
				l.mu.Unlock()
				return false
			}
		}
		l.recvNext++
		ack := l.recvNext
		// Deliver under the lock so racing pumps (old + replacement
		// connection) cannot reorder the inbox.
		select {
		case f.inbox[l.peer] <- env:
		case <-f.closeCh:
			l.mu.Unlock()
			return false
		}
		l.mu.Unlock()
		f.sendControl(l, renv{Kind: frameAck, Ack: ack})
	case env.Seq < l.recvNext:
		// Duplicate (redial race or over-eager retransmit): suppress, and
		// re-ack so the peer can trim.
		ack := l.recvNext
		l.mu.Unlock()
		f.sendControl(l, renv{Kind: frameAck, Ack: ack})
	default:
		// A gap is impossible for a correct peer (retransmission resumes
		// exactly at our NextExpected): the link is beyond repair.
		f.fatalLocked(l, fmt.Errorf("%w: party %d jumped to seq %d, expected %d",
			ErrDesync, l.peer, env.Seq, l.recvNext))
		l.mu.Unlock()
		return false
	}
	return true
}

// trimAckLocked drops retransmit-buffer frames the peer has
// acknowledged (cumulative, so stale acks are no-ops).
func (l *rlink) trimAckLocked(ack uint64) {
	if ack <= l.acked {
		return
	}
	l.acked = ack
	i := 0
	for i < len(l.buf) && l.buf[i].Seq < ack {
		i++
	}
	l.buf = append([]renv(nil), l.buf[i:]...)
	l.tm.ackLag.Set(float64(len(l.buf)))
}

// sendControl writes a heartbeat or ack frame, best-effort: control
// frames carry no protocol payload, so a failed write just tears the
// connection down into the normal redial path.
func (f *RecoveringTCPFabric) sendControl(l *rlink, env renv) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.up || l.conn == nil {
		return
	}
	if f.timeout > 0 {
		l.conn.SetWriteDeadline(time.Now().Add(f.timeout))
		defer func() {
			if l.conn != nil {
				l.conn.SetWriteDeadline(time.Time{})
			}
		}()
	}
	if err := wirecodec.WriteValue(l.conn, env); err != nil {
		f.markDownLocked(l, l.conn)
	}
}

// heartbeatLoop keeps every link warm: each interval it sends a
// heartbeat carrying the cumulative ack, so idle links prove liveness
// and peers trim their retransmit buffers promptly.
func (f *RecoveringTCPFabric) heartbeatLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-f.closeCh:
			return
		case <-t.C:
			for _, l := range f.links {
				if l == nil {
					continue
				}
				l.mu.Lock()
				ack := l.recvNext
				l.mu.Unlock()
				f.sendControl(l, renv{Kind: frameHeartbeat, Ack: ack, T: time.Now().UnixNano()})
			}
		}
	}
}

// N implements Net.
func (f *RecoveringTCPFabric) N() int { return f.n }

// Send implements Net. A send to a disconnected peer is buffered and
// retransmitted on reconnect, so connection loss is invisible here;
// the only failures are a full retransmit buffer, a journal error, or
// a replay divergence. During a journal replay, sends the previous
// process already journaled are suppressed (they are already in the
// retransmit buffer) after a determinism check against the journal.
func (f *RecoveringTCPFabric) Send(round, from, to, bytes int, payload any) error {
	if from != f.me {
		return fmt.Errorf("transport: tcp party %d cannot send as %d", f.me, from)
	}
	if to < 0 || to >= f.n || to == f.me {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	// Count every logical send — including replayed ones — so a
	// restarted endpoint reports the same stats as a fault-free run.
	// Echo sub-round traffic is consistency-layer overhead, tallied
	// apart from the protocol counters.
	f.mu.Lock()
	newRound := false
	if IsEchoRound(round) {
		f.echoMsgs++
		f.echoBytes += int64(bytes)
	} else {
		f.msgs++
		f.bytes += int64(bytes)
		if round > f.maxRound {
			f.maxRound = round
		}
		rs, seen := f.rounds[round]
		newRound = !seen
		rs.Messages++
		rs.Bytes += int64(bytes)
		f.rounds[round] = rs
	}
	f.tm.onSendLocked(round, bytes, newRound)
	f.mu.Unlock()

	l := f.links[to]
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fatal != nil {
		return Abort(to, round, "", l.fatal)
	}
	if len(l.replaySends) > 0 {
		exp := l.replaySends[0]
		l.replaySends = l.replaySends[1:]
		if exp.Round != round {
			err := fmt.Errorf("%w: recomputed send to party %d has round %d, journal recorded %d (restarted with different flags or seed?)",
				ErrReplayDiverged, to, round, exp.Round)
			f.fatalLocked(l, err)
			return Abort(to, round, "", err)
		}
		return nil
	}
	seq := l.sendSeq
	if f.opts.Journal != nil {
		// Write-ahead: once journaled, the message survives a crash of
		// this process and is retransmitted from the reloaded buffer.
		if err := f.opts.Journal.LogSend(to, round, bytes, seq, payload); err != nil {
			return Abort(to, round, "", err)
		}
	}
	l.sendSeq++
	env := renv{Kind: frameData, Round: round, Seq: seq, Bytes: bytes, Ack: l.recvNext, Payload: payload}
	if len(l.buf) >= f.opts.RetransmitLimit {
		return Abort(to, round, "", fmt.Errorf("%w: %d un-acked messages to party %d",
			ErrRetransmitOverflow, len(l.buf), to))
	}
	l.buf = append(l.buf, env)
	l.tm.ackLag.Set(float64(len(l.buf)))
	if l.up && l.conn != nil {
		if f.timeout > 0 {
			l.conn.SetWriteDeadline(time.Now().Add(f.timeout))
		}
		if err := wirecodec.WriteValue(l.conn, env); err != nil {
			// Buffered already; the redial path retransmits it.
			f.markDownLocked(l, l.conn)
		} else if l.conn != nil {
			l.conn.SetWriteDeadline(time.Time{})
		}
	}
	return nil
}

// Recv implements Net.
func (f *RecoveringTCPFabric) Recv(to, from int) (any, error) {
	return f.RecvCtx(context.Background(), to, from, -1)
}

// RecvCtx implements Net. Journaled receives are served first (the
// restarted recomputation consumes them without touching the network);
// live receives wait out disconnects up to the grace window before
// blaming the peer, and are bounded by ctx and the fabric timeout as
// on the plain fabric.
func (f *RecoveringTCPFabric) RecvCtx(ctx context.Context, to, from, round int) (any, error) {
	if to != f.me {
		return nil, fmt.Errorf("transport: tcp party %d cannot receive as %d", f.me, to)
	}
	if from < 0 || from >= f.n || from == f.me {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	l := f.links[from]
	l.mu.Lock()
	if len(l.replayRecvs) > 0 {
		m := l.replayRecvs[0]
		l.replayRecvs = l.replayRecvs[1:]
		l.mu.Unlock()
		if round >= 0 && m.Round != round {
			return nil, Abort(from, round, "", fmt.Errorf(
				"%w: recomputation expects round %d from party %d, journal recorded %d (restarted with different flags or seed?)",
				ErrReplayDiverged, round, from, m.Round))
		}
		return m.Payload, nil
	}
	l.mu.Unlock()

	var timerC <-chan time.Time
	if f.timeout > 0 {
		tm := time.NewTimer(f.timeout)
		defer tm.Stop()
		timerC = tm.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	q := f.inbox[from]
	for {
		// Drain preference: frames already delivered beat any failure
		// signal, like buffered TCP data before EOF.
		select {
		case env := <-q:
			return f.acceptData(env, from, round)
		default:
		}
		l.mu.Lock()
		blame := l.blame
		fatal := l.fatal
		l.mu.Unlock()
		if fatal != nil {
			select {
			case env := <-q:
				return f.acceptData(env, from, round)
			default:
			}
			return nil, Abort(from, round, "", fatal)
		}
		select {
		case env := <-q:
			return f.acceptData(env, from, round)
		case <-blame:
			select {
			case env := <-q:
				return f.acceptData(env, from, round)
			default:
			}
			l.mu.Lock()
			up, cur, fatal := l.up, l.blame, l.fatal
			l.mu.Unlock()
			if fatal != nil {
				return nil, Abort(from, round, "", fatal)
			}
			if up || cur != blame {
				continue // the peer reconnected while we waited
			}
			return nil, Abort(from, round, "", fmt.Errorf(
				"%w: party %d did not reconnect within the %v grace window",
				ErrPeerDown, from, f.opts.Grace))
		case <-done:
			return nil, Abort(from, round, "", ctx.Err())
		case <-timerC:
			return nil, Abort(from, round, "", ErrTimeout)
		case <-f.closeCh:
			return nil, Abort(from, round, "", ErrClosed)
		}
	}
}

func (f *RecoveringTCPFabric) acceptData(env renv, from, round int) (any, error) {
	if round >= 0 && env.Round != round {
		return nil, roundMismatchAbort(from, round, env.Round)
	}
	return env.Payload, nil
}

// Broadcast implements Net, best-effort like the other fabrics.
func (f *RecoveringTCPFabric) Broadcast(round, from, bytes int, payload any) error {
	return broadcastAll(f.n, f.me, func(to int) error {
		return f.Send(round, from, to, bytes, payload)
	})
}

// GatherAll implements Net.
func (f *RecoveringTCPFabric) GatherAll(to int) ([]any, error) {
	return f.GatherAllCtx(context.Background(), to, -1)
}

// GatherAllCtx implements Net.
func (f *RecoveringTCPFabric) GatherAllCtx(ctx context.Context, to, round int) ([]any, error) {
	return gatherAll(ctx, f, to, round)
}

// Stats reports this endpoint's logical protocol traffic in the same
// shape as TCPFabric.Stats. Control frames (heartbeats, acks, hellos)
// and retransmissions are transport overhead and are not counted, and
// replayed sends are counted once per logical send — so a recovered
// run reports exactly the stats of a fault-free one.
func (f *RecoveringTCPFabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		MessagesSent:   make([]int64, f.n),
		BytesSent:      make([]int64, f.n),
		MaxRound:       f.maxRound,
		DistinctRounds: len(f.rounds),
		PerRound:       make(map[int]RoundStats, len(f.rounds)),
		EchoMessages:   f.echoMsgs,
		EchoBytes:      f.echoBytes,
	}
	s.MessagesSent[f.me] = f.msgs
	s.BytesSent[f.me] = f.bytes
	for r, rs := range f.rounds {
		s.PerRound[r] = rs
	}
	return s
}

// Drain blocks until every frame this endpoint ever sent has been
// acknowledged by (and therefore durably received at) its peer, or
// until bound expires (bound ≤ 0 uses the grace window). While
// draining, the endpoint keeps accepting reconnects and retransmitting
// — so a party whose role has completed gives a crashed peer's
// replacement the full blame window to come back and collect what it
// missed, instead of taking the only copy of those messages down with
// it. Returns true when every link drained. Links with a fatal error
// are not waited on.
func (f *RecoveringTCPFabric) Drain(bound time.Duration) bool {
	if bound <= 0 {
		bound = f.opts.Grace
	}
	deadline := time.Now().Add(bound)
	for {
		if f.allAcked() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-f.closeCh:
			return f.allAcked()
		}
	}
}

func (f *RecoveringTCPFabric) allAcked() bool {
	for _, l := range f.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		pending := len(l.buf) > 0 && l.fatal == nil
		l.mu.Unlock()
		if pending {
			return false
		}
	}
	return true
}

// Close tears the endpoint down: the listener, every connection, and
// every maintainer, pump, heartbeat and blame-timer goroutine. Safe to
// call more than once and concurrently with protocol traffic
// (in-flight receives fail with ErrClosed).
func (f *RecoveringTCPFabric) Close() {
	f.closeOnce.Do(func() {
		close(f.closeCh)
		f.ln.Close()
		for _, l := range f.links {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if l.conn != nil {
				l.conn.Close()
				l.conn = nil
			}
			l.up = false
			l.mu.Unlock()
		}
		f.wg.Wait()
	})
}
