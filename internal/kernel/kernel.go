// Package kernel provides the bounded worker pool the protocol's hot
// crypto loops fan out on: per-bit encryption of β_i, the per-peer τ
// circuit construction, the decrypt-blind-shuffle chain over n·l
// ciphertexts, secret-sharing recombination batches and the dot-product
// kernels.
//
// Design constraints, in order:
//
//  1. Determinism. A run with the same seed must produce bit-identical
//     results at any worker count. Callers therefore pre-draw all
//     randomness serially and hand the pool pure arithmetic; the pool
//     itself guarantees output slot i always holds the result of input
//     i, regardless of which worker computed it.
//  2. Abort-runtime compatibility. Cancellation of the party context
//     stops workers promptly, and the first error by INDEX order (not
//     wall-clock order) wins, so the typed abort a failing run surfaces
//     does not depend on goroutine scheduling.
//  3. Boundedness. At most Workers goroutines run, with work handed out
//     by an atomic counter — no per-item goroutine, no channel per item.
package kernel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: 0 selects NumCPU (the "use
// the hardware" default), any other non-positive value or 1 is serial,
// and values above n are clamped by Map itself (claiming is atomic, so
// surplus workers just exit).
func Workers(w int) int {
	if w == 0 {
		return runtime.NumCPU()
	}
	if w < 1 {
		return 1
	}
	return w
}

// Map runs f(0), …, f(n−1) on at most Workers(workers) goroutines and
// returns the first error in index order, or ctx's error if the context
// was cancelled before all items completed. With an effective worker
// count of one (or n ≤ 1) it degenerates to a plain serial loop on the
// calling goroutine — zero overhead and no scheduling nondeterminism,
// which keeps the workers=1 path byte-for-byte the reference execution.
//
// f writes its result into caller-owned slot i; distinct indices touch
// distinct slots, so no synchronisation is needed beyond Map's own
// completion barrier.
func Map(ctx context.Context, workers, n int, f func(i int) error) error {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next unclaimed index
		failed atomic.Bool  // fast-path stop flag once any error exists
		mu     sync.Mutex
		errAt  = -1 // lowest failing index seen
		firstE error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errAt == -1 || i < errAt {
			errAt, firstE = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	done := ctx.Done()
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	return ctx.Err()
}
