package kernel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapComputesAllSlots(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16, 0} {
		out := make([]int, 100)
		err := Map(context.Background(), w, len(out), func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	boom := func(i int) error {
		if i >= 3 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	}
	for _, w := range []int{1, 2, 8, 64} {
		err := Map(context.Background(), w, 50, boom)
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: got %v, want item 3's error", w, err)
		}
	}
}

func TestMapStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	err := Map(context.Background(), 4, 10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d items ran after an early error; pool did not stop claiming", n)
	}
}

func TestMapHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Map(ctx, 4, 10_000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 1_000 {
		t.Fatalf("%d items ran after cancellation", n)
	}
}

func TestMapSerialFastPathChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Map(ctx, 1, 5, func(i int) error {
		t.Fatal("item ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	for _, w := range []int{-3, 1} {
		if got := Workers(w); got != 1 {
			t.Fatalf("Workers(%d) = %d, want 1", w, got)
		}
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}
