package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"groupranking/internal/api"
)

// The durable session table: one append-only JSONL file per daemon
// under the journal directory, recording every fact the daemon must
// not forget across a crash — which sessions it admitted (with their
// resolved spec, so a restart re-derives the same parameters), which
// profiles its clients already submitted, which idempotency keys are
// bound, and every terminal outcome (so GET /result keeps answering
// after a restart). The per-session protocol transcripts live in the
// per-session transport journals (internal/journal); this table is
// only the daemon's index over them.
//
// Records are one JSON object per line. A crash can tear the final
// line mid-write; the loader drops an undecodable tail but refuses
// corruption anywhere earlier, mirroring the transport journal's
// torn-tail rule. The table is compacted on every open — terminal
// sessions collapse to open+done, purged ones vanish — and the boot
// record's epoch counts this daemon's process lives, which is exactly
// the epoch the session mux carries in its reconnect handshake.

// storeRec is one JSONL line of the session table.
type storeRec struct {
	// T discriminates: "boot", "open", "submit", "done", "purge".
	T string `json:"t"`
	// Epoch is this process life's number (boot records only).
	Epoch int `json:"epoch,omitempty"`
	// ID names the session (all but boot).
	ID string `json:"id,omitempty"`
	// Spec is the admitted spec, criterion included at the initiator
	// daemon — the table is that daemon's own private disk, and the
	// criterion is required to resume an interrupted session. Scrubbed
	// specs arrive already criterion-free at participant daemons.
	Spec *api.SessionSpec `json:"spec,omitempty"`
	// CreatedMS is the admission time (open records), Unix milliseconds.
	CreatedMS int64 `json:"created_ms,omitempty"`
	// Values is the submitted profile (submit records).
	Values []int64 `json:"values,omitempty"`
	// Result is the terminal outcome (done records; aborts included).
	Result *api.ResultResponse `json:"result,omitempty"`
}

// storedSession is one session folded out of the table.
type storedSession struct {
	Spec       api.SessionSpec
	Created    time.Time
	HasProfile bool
	Values     []int64
	Result     *api.ResultResponse
}

// store is the open session table. Appends are fsync'd: an outcome a
// client may already have polled can never un-happen across a restart.
type store struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// storePath names the daemon's session table inside the journal dir.
func storePath(dir string, me int) string {
	return filepath.Join(dir, fmt.Sprintf("sessions-p%d.table", me))
}

// openStore loads (or creates) the table at path, bumps the boot
// epoch, compacts the file, and returns the surviving sessions. The
// returned epoch counts this process life (1 on the first boot).
func openStore(path string) (*store, map[string]*storedSession, int, error) {
	sessions, epoch, err := loadTable(path)
	if err != nil {
		return nil, nil, 0, err
	}
	epoch++
	if err := compactTable(path, epoch, sessions); err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("service: reopening session table: %w", err)
	}
	return &store{f: f, path: path}, sessions, epoch, nil
}

// loadTable folds the JSONL file into per-session state. A missing
// file is an empty table; an undecodable FINAL line is a torn append
// and is dropped; an undecodable earlier line is corruption and an
// error.
func loadTable(path string) (map[string]*storedSession, int, error) {
	sessions := make(map[string]*storedSession)
	epoch := 0
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return sessions, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: reading session table: %w", err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	// Trailing newline yields one empty final element; ignore it.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, line := range lines {
		var rec storeRec
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final append: the crash signature, drop it
			}
			return nil, 0, fmt.Errorf("service: session table %s corrupt at line %d: %w", path, i+1, err)
		}
		switch rec.T {
		case "boot":
			if rec.Epoch > epoch {
				epoch = rec.Epoch
			}
		case "open":
			if rec.Spec == nil {
				return nil, 0, fmt.Errorf("service: session table %s: open record for %s has no spec", path, rec.ID)
			}
			sessions[rec.ID] = &storedSession{
				Spec:    *rec.Spec,
				Created: time.UnixMilli(rec.CreatedMS),
			}
		case "submit":
			if s := sessions[rec.ID]; s != nil {
				s.HasProfile = true
				s.Values = rec.Values
			}
		case "done":
			if s := sessions[rec.ID]; s != nil {
				s.Result = rec.Result
			}
		case "purge":
			delete(sessions, rec.ID)
		default:
			return nil, 0, fmt.Errorf("service: session table %s: unknown record kind %q at line %d", path, rec.T, i+1)
		}
	}
	return sessions, epoch, nil
}

// compactTable rewrites the table as boot + the minimal record set per
// surviving session, atomically (tmp, fsync, rename).
func compactTable(path string, epoch int, sessions map[string]*storedSession) error {
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := sessions[ids[i]], sessions[ids[j]]
		if !a.Created.Equal(b.Created) {
			return a.Created.Before(b.Created)
		}
		return ids[i] < ids[j]
	})
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: compacting session table: %w", err)
	}
	w := bufio.NewWriter(f)
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: compacting session table: %w", err)
	}
	writeRec := func(rec storeRec) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
		return nil
	}
	if err := writeRec(storeRec{T: "boot", Epoch: epoch}); err != nil {
		return fail(err)
	}
	for _, id := range ids {
		s := sessions[id]
		spec := s.Spec
		if err := writeRec(storeRec{T: "open", ID: id, Spec: &spec, CreatedMS: s.Created.UnixMilli()}); err != nil {
			return fail(err)
		}
		if s.HasProfile {
			if err := writeRec(storeRec{T: "submit", ID: id, Values: s.Values}); err != nil {
				return fail(err)
			}
		}
		if s.Result != nil {
			if err := writeRec(storeRec{T: "done", ID: id, Result: s.Result}); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting session table: %w", err)
	}
	return nil
}

// append writes and fsyncs one record.
func (st *store) append(rec storeRec) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: encoding session table record: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("service: session table %s is closed", st.path)
	}
	if _, err := st.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: appending to session table: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing session table: %w", err)
	}
	return nil
}

// logOpen durably admits a session.
func (st *store) logOpen(id string, spec api.SessionSpec, created time.Time) error {
	return st.append(storeRec{T: "open", ID: id, Spec: &spec, CreatedMS: created.UnixMilli()})
}

// logSubmit durably records this daemon's participant profile.
func (st *store) logSubmit(id string, values []int64) error {
	return st.append(storeRec{T: "submit", ID: id, Values: values})
}

// logDone durably records a terminal outcome (done or aborted).
func (st *store) logDone(id string, res *api.ResultResponse) error {
	return st.append(storeRec{T: "done", ID: id, Result: res})
}

// logPurge durably forgets a session the janitor retired.
func (st *store) logPurge(id string) error {
	return st.append(storeRec{T: "purge", ID: id})
}

// Close releases the file. Idempotent.
func (st *store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	return st.f.Close()
}
