package service

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/transport"
)

// peerRejectError carries a participant daemon's typed nack back to
// the creation flow, so handleCreate can map a peer's draining or
// admission_full to the matching retryable HTTP response.
type peerRejectError struct {
	code   string
	reason string
}

func (e *peerRejectError) Error() string {
	return fmt.Sprintf("service: peer daemon rejected the session (%s): %s", e.code, e.reason)
}

// The daemon control plane rides the session mux's control lane (one
// frame kind on the same multiplexed connections the sessions use, so
// no extra sockets): the initiator daemon announces a new session to
// every participant daemon with ctlOpen, each answers with its
// admission verdict in ctlOpenAck, and whichever daemon aborts a
// session first fans the cause out with ctlAbort so its peers cancel
// their runners instead of waiting out the session budget.
//
// The announced spec is scrubbed: the client's criterion is the
// initiator's private input and never crosses the mesh. The seed does
// travel — like the CLI party runners, a deterministic session needs
// every daemon deriving from the same seed.

// ctlOpen announces a session to a participant daemon.
type ctlOpen struct {
	ID   string
	Spec api.SessionSpec // Criterion scrubbed
}

// ctlOpenAck is a participant daemon's admission verdict. Code is the
// api.Code* cause on a rejection, so the initiator daemon can surface
// a peer's admission_full or draining to the client as the retryable
// condition it is (instead of a generic peer_rejected).
type ctlOpenAck struct {
	ID     string
	OK     bool
	Code   string
	Reason string
}

// ctlAbort tells peers a session is dead and why.
type ctlAbort struct {
	ID     string
	Reason string
}

// The control payloads cross the wire through the codec's gob
// fallback, which encodes them behind an `any` slot — gob needs the
// concrete types registered.
func init() {
	gob.Register(ctlOpen{})
	gob.Register(ctlOpenAck{})
	gob.Register(ctlAbort{})
}

// controlLoop dispatches incoming control frames until shutdown.
func (d *Daemon) controlLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-d.mux.Done():
			return
		case msg := <-d.mux.Control():
			switch p := msg.Payload.(type) {
			case ctlOpen:
				d.onOpen(msg.From, p)
			case ctlOpenAck:
				d.onOpenAck(p)
			case ctlAbort:
				d.onAbort(p)
			}
		}
	}
}

// onOpen handles a session announcement at a participant daemon:
// validate the spec, admit under the cap, register the pending session
// and return the verdict to the initiator daemon.
func (d *Daemon) onOpen(from int, open ctlOpen) {
	ack := ctlOpenAck{ID: open.ID, OK: true}
	if err := d.admitAnnounced(open); err != nil {
		ack.OK = false
		ack.Reason = err.Error()
		switch {
		case errors.Is(err, errDraining):
			ack.Code = api.CodeDraining
		case errors.Is(err, errAdmissionFull):
			ack.Code = api.CodeAdmissionFull
		default:
			ack.Code = api.CodePeerRejected
		}
	}
	// Best effort: if the link back to the initiator died the sessions
	// on it are already failing with a typed peer-down abort.
	if err := d.mux.SendControl(from, ack); err != nil && ack.OK {
		if s := d.lookup(open.ID); s != nil {
			d.terminate(s, fmt.Errorf("service: acking session open to daemon %d: %w", from, err))
		}
	}
}

// admitAnnounced validates and registers an announced session.
func (d *Daemon) admitAnnounced(open ctlOpen) error {
	if d.cfg.Me == 0 {
		return fmt.Errorf("service: the initiator daemon does not take session announcements")
	}
	if open.ID == "" {
		return fmt.Errorf("service: empty session id")
	}
	params, q, timeout, err := d.resolveSpec(open.Spec)
	if err != nil {
		return err
	}
	s := &session{
		id:      open.ID,
		spec:    open.Spec,
		params:  params,
		q:       q,
		timeout: timeout,
		created: time.Now(),
		state:   api.StatePending,
	}
	if err := d.register(s); err != nil {
		return err
	}
	// Durable mode: the admission must survive a crash — a participant
	// that forgot an announced session could never serve its resume
	// half. A failed table write refuses the session cleanly.
	if d.store != nil {
		if err := d.store.logOpen(s.id, s.spec, s.created); err != nil {
			d.unregister(s)
			return err
		}
	}
	return nil
}

// onOpenAck routes a participant's verdict to the creation flow
// waiting on it.
func (d *Daemon) onOpenAck(ack ctlOpenAck) {
	d.mu.Lock()
	ch := d.acks[ack.ID]
	d.mu.Unlock()
	if ch != nil {
		select {
		case ch <- ack:
		default: // creation flow gave up; verdict is moot
		}
	}
}

// onAbort cancels the local half of a session a peer daemon declared
// dead.
func (d *Daemon) onAbort(ab ctlAbort) {
	if s := d.lookup(ab.ID); s != nil {
		d.terminate(s, fmt.Errorf("service: peer abort: %s", ab.Reason))
	}
}

// broadcastAbort fans a session's death out to every peer daemon.
// Best effort: a dead link means the peer is already aborting on its
// own timeout or peer-down signal.
func (d *Daemon) broadcastAbort(id string, cause error) {
	ab := ctlAbort{ID: id, Reason: cause.Error()}
	for peer := 0; peer < len(d.cfg.Addrs); peer++ {
		if peer == d.cfg.Me {
			continue
		}
		_ = d.mux.SendControl(peer, ab)
	}
}

// announceSession runs the initiator daemon's creation fan-out: every
// participant daemon gets the scrubbed spec and must ack admission
// before the session is considered open mesh-wide. A single nack,
// a dead peer or an ack timeout kills the creation; peers that already
// admitted are told to drop it.
func (d *Daemon) announceSession(ctx context.Context, s *session) error {
	scrubbed := s.spec
	scrubbed.Criterion = api.Criterion{}
	peers := len(d.cfg.Addrs) - 1
	ackCh := make(chan ctlOpenAck, peers)
	d.mu.Lock()
	d.acks[s.id] = ackCh
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.acks, s.id)
		d.mu.Unlock()
	}()
	fail := func(err error) error {
		d.broadcastAbort(s.id, err)
		return err
	}
	for peer := 1; peer < len(d.cfg.Addrs); peer++ {
		if err := d.mux.SendControl(peer, ctlOpen{ID: s.id, Spec: scrubbed}); err != nil {
			return fail(fmt.Errorf("service: announcing session to daemon %d: %w", peer, err))
		}
	}
	deadline := time.NewTimer(s.timeout)
	defer deadline.Stop()
	for got := 0; got < peers; got++ {
		select {
		case ack := <-ackCh:
			if !ack.OK {
				code := ack.Code
				if code == "" {
					code = api.CodePeerRejected
				}
				return fail(&peerRejectError{code: code, reason: ack.Reason})
			}
		case <-deadline.C:
			return fail(fmt.Errorf("service: %w: session announcement unacked after %v", transport.ErrTimeout, s.timeout))
		case <-ctx.Done():
			return fail(ctx.Err())
		case <-d.ctx.Done():
			return fail(fmt.Errorf("service: %w: daemon shutting down", transport.ErrClosed))
		}
	}
	return nil
}
