// Package service implements rankd, the long-running ranking
// coordinator daemon: one process per mesh slot (daemon 0 plays the
// initiator, daemon j the j-th participant) hosting many concurrent
// ranking sessions over a single multiplexed connection per peer pair
// (transport.SessionMux). Clients drive it through the submit/poll
// HTTP API defined in internal/api; the per-session protocol execution
// is exactly the existing core machinery — a seeded service session is
// byte-identical to the in-process groupranking.Rank run with the same
// seed.
//
// Lifecycle: a session is created pending at every daemon (the
// initiator's POST /v1/sessions fans a control-plane open out to the
// participant daemons and waits for their admission acks), moves to
// establishing once the daemon's runner joins the pre-crypto session
// handshake — immediately for the initiator, on profile submission for
// a participant — to running when the handshake agrees, and ends done
// or aborted. Finished sessions are retained for Config.ResultTTL so
// clients can poll the outcome, then purged by the janitor.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"groupranking"
	"groupranking/internal/api"
	"groupranking/internal/core"
	"groupranking/internal/group"
	"groupranking/internal/telemetry"
	"groupranking/internal/transport"
	"groupranking/internal/workload"
)

// Config tunes one rankd daemon. The zero value of every knob takes a
// sensible default; Addrs and Me are required.
type Config struct {
	// Addrs is the daemon mesh: addrs[0] is the initiator daemon,
	// addrs[j] participant daemon j, each listening on its own slot.
	// Every daemon of a deployment must agree on the list.
	Addrs []string
	// Me is this daemon's slot in Addrs.
	Me int
	// MaxSessions is the admission cap: the most sessions this daemon
	// will host concurrently in a non-terminal state (default 64).
	// Creations and control-plane opens beyond it are rejected with
	// api.CodeAdmissionFull — the client retries or backs off.
	MaxSessions int
	// ResultTTL is how long a finished session's result stays pollable
	// before the janitor purges it (default 5 minutes).
	ResultTTL time.Duration
	// QueueCap is the per-session memory budget, in frames per peer
	// link, enforced by the session mux: a session whose receive queue
	// overflows is aborted alone, its siblings and the shared links
	// untouched (default transport's 1024).
	QueueCap int

	// Runtime is the shared execution-knob block, embedded verbatim
	// from the public API: Timeout is the default (and ceiling) for
	// each session's budget — a SessionSpec.TimeoutMS may shrink it,
	// never exceed it (default 2 minutes); Workers bounds each
	// session's crypto parallelism; Telemetry collects the mux link and
	// service session metrics; Observer collects per-phase spans across
	// sessions. Recovery, when set, makes the daemon durable: every
	// session journals its transcript and lifecycle under Recovery.Dir,
	// the mesh runs the reconnecting epoch'd mux, and a restarted
	// daemon re-adopts its sessions — terminal results stay pollable,
	// interrupted sessions resume byte-identically (Recovery.Heartbeat
	// is unused here; the mux grace alone bounds peer outages). Faults
	// are ignored — fault injection enters the daemon only through the
	// FaultPlanner test hook.
	groupranking.Runtime
}

// defaultSessionTimeout mirrors the CLI party runners' default budget.
const defaultSessionTimeout = 2 * time.Minute

// withDefaults resolves the config and validates it.
func (c Config) withDefaults() (Config, error) {
	if c.Me < 0 || c.Me >= len(c.Addrs) {
		return c, fmt.Errorf("service: me=%d outside the %d-address mesh", c.Me, len(c.Addrs))
	}
	if len(c.Addrs) < 3 {
		return c, fmt.Errorf("service: need the initiator plus at least two participant daemons, got %d addresses", len(c.Addrs))
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxSessions < 0 {
		return c, fmt.Errorf("service: MaxSessions=%d negative", c.MaxSessions)
	}
	if c.ResultTTL == 0 {
		c.ResultTTL = 5 * time.Minute
	}
	if c.ResultTTL < 0 {
		return c, fmt.Errorf("service: ResultTTL=%v negative", c.ResultTTL)
	}
	if c.Timeout == 0 {
		c.Timeout = defaultSessionTimeout
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("service: Timeout=%v negative", c.Timeout)
	}
	return c, nil
}

// Daemon is one rankd process's state: the shared session mux, the
// session table, and the control-plane plumbing. Create with NewDaemon,
// serve Handler() over HTTP, Close() to shut down.
type Daemon struct {
	cfg Config
	mux *transport.SessionMux

	// FaultPlanner, when set before any session is created, lets tests
	// inject a per-session fault plan: it is consulted once per session
	// with its ID and spec, and the returned plan (nil for none) wraps
	// that session's net in a FaultNet. Production daemons leave it
	// nil.
	FaultPlanner func(sessionID string, spec api.SessionSpec) *transport.FaultPlan

	mu       sync.Mutex
	sessions map[string]*session
	acks     map[string]chan ctlOpenAck
	keys     map[string]string // idempotency key -> session id
	draining bool

	// Durable state (nil with Config.Recovery unset).
	store *store
	lock  *os.File // flock'd journal-dir slot lock
	epoch int      // this process life's number, 1-based

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once

	met serviceMetrics
}

// Typed admission outcomes. register wraps them so the HTTP and
// control planes can map the cause to the right client-visible code
// (429 admission_full vs 503 draining, both with Retry-After).
var (
	errAdmissionFull = errors.New("admission cap reached")
	errDraining      = errors.New("draining")
)

// session is one ranking session's slot in the daemon table.
type session struct {
	id      string
	spec    api.SessionSpec
	params  core.Params
	q       *workload.Questionnaire
	timeout time.Duration
	created time.Time

	// Role inputs: criterion at daemon 0, profile at daemon j (set on
	// submit).
	criterion workload.Criterion
	profile   workload.Profile

	mu          sync.Mutex
	state       string
	started     bool // runner spawned (participant: profile consumed)
	cancel      context.CancelFunc
	abortReason string
	result      *api.ResultResponse
	doneAt      time.Time
}

// serviceMetrics is the daemon's slice of the telemetry registry. All
// fields are nil (and every operation a no-op) with telemetry disabled.
type serviceMetrics struct {
	created  *telemetry.Counter
	done     *telemetry.Counter
	aborted  *telemetry.Counter
	rejected *telemetry.Counter
	live     *telemetry.Gauge
	liveN    int64 // guarded by Daemon.mu
}

func newServiceMetrics(reg *telemetry.Registry) serviceMetrics {
	return serviceMetrics{
		created:  reg.Counter("service_sessions_created_total", "Sessions admitted by this daemon."),
		done:     reg.Counter("service_sessions_done_total", "Sessions that completed successfully."),
		aborted:  reg.Counter("service_sessions_aborted_total", "Sessions that ended in an abort."),
		rejected: reg.Counter("service_admission_rejects_total", "Session creations refused by the admission cap."),
		live:     reg.Gauge("service_sessions_live", "Sessions currently in a non-terminal state."),
	}
}

// NewDaemon joins the daemon mesh (blocking until every peer daemon is
// up, exactly like the party runners' mesh formation) and starts the
// control-plane and janitor loops. The caller serves Handler() and
// must Close() the daemon to release the mesh.
func NewDaemon(cfg Config) (*Daemon, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	core.RegisterWire()

	// Durable mode boots before the mesh: validate and lock the journal
	// dir, load the session table, and carry the boot epoch into the
	// mux's reconnect handshake so peers can tell this life's
	// connections from the last one's.
	var (
		st     *store
		lock   *os.File
		stored map[string]*storedSession
		epoch  int
	)
	if cfg.Recovery != nil {
		if err := validateJournalDir(cfg.Recovery.Dir); err != nil {
			return nil, err
		}
		if lock, err = lockJournalDir(cfg.Recovery.Dir, cfg.Me); err != nil {
			return nil, err
		}
		if st, stored, epoch, err = openStore(storePath(cfg.Recovery.Dir, cfg.Me)); err != nil {
			lock.Close()
			return nil, err
		}
	}

	muxOpts := transport.MuxOptions{
		Telemetry: cfg.Telemetry,
		QueueCap:  cfg.QueueCap,
	}
	if cfg.Recovery != nil {
		muxOpts.Recovery = &transport.MuxRecovery{Epoch: epoch, Grace: cfg.Recovery.Grace}
	}
	mux, err := transport.NewSessionMux(cfg.Addrs, cfg.Me, cfg.Timeout, muxOpts)
	if err != nil {
		if st != nil {
			st.Close()
			lock.Close()
		}
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:      cfg,
		mux:      mux,
		sessions: make(map[string]*session),
		acks:     make(map[string]chan ctlOpenAck),
		keys:     make(map[string]string),
		store:    st,
		lock:     lock,
		epoch:    epoch,
		ctx:      ctx,
		cancel:   cancel,
		met:      newServiceMetrics(cfg.Telemetry),
	}
	cfg.Telemetry.SetHealthSource(mux)
	cfg.Telemetry.SetServiceStatus(d.Status)
	if stored != nil {
		d.readopt(stored)
	}
	d.wg.Add(2)
	go d.controlLoop()
	go d.janitor()
	return d, nil
}

// Me returns this daemon's mesh slot (0 = initiator daemon).
func (d *Daemon) Me() int { return d.cfg.Me }

// Parties returns the mesh size (initiator + participants).
func (d *Daemon) Parties() int { return len(d.cfg.Addrs) }

// Close shuts the daemon down: every in-flight session aborts (in
// durable mode their terminal state is NOT recorded — a restart
// re-adopts and resumes them instead), the mesh connections close,
// and all daemon goroutines exit before Close returns.
func (d *Daemon) Close() {
	d.closeOnce.Do(func() {
		d.cancel()
		d.mux.Close()
		d.wg.Wait()
		if d.store != nil {
			d.store.Close()
			d.lock.Close()
		}
	})
}

// BeginDrain closes admission: creations, announcements and first
// profile submissions are rejected with the typed draining code (and a
// Retry-After) from here on, while already-running sessions keep
// going. Idempotent; there is no way back short of a restart.
func (d *Daemon) BeginDrain() {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
}

// Draining reports whether BeginDrain was called.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Drain is the graceful-shutdown front half: stop admitting, give the
// sessions whose runners are already executing up to budget to finish,
// and return how many non-terminal sessions remain. In durable mode
// the remainder is parked — the store still holds them non-terminal,
// so the next life re-adopts and resumes them; without recovery the
// caller's Close simply aborts them. Callers follow with Close.
func (d *Daemon) Drain(budget time.Duration) int {
	d.BeginDrain()
	deadline := time.Now().Add(budget)
	for {
		d.mu.Lock()
		running, live := 0, 0
		for _, s := range d.sessions {
			s.mu.Lock()
			if !api.Terminal(s.state) {
				live++
				if s.started {
					running++
				}
			}
			s.mu.Unlock()
		}
		d.mu.Unlock()
		if running == 0 || time.Now().After(deadline) {
			return live
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Status is the service block /healthz renders: per-state session
// counts, the drain flag, and (in durable mode) the boot epoch.
func (d *Daemon) Status() telemetry.ServiceStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	counts := map[string]int{
		api.StatePending: 0, api.StateEstablishing: 0, api.StateRunning: 0,
		api.StateDone: 0, api.StateAborted: 0,
	}
	for _, s := range d.sessions {
		counts[s.snapshotState()]++
	}
	return telemetry.ServiceStatus{Draining: d.draining, Epoch: d.epoch, Sessions: counts}
}

// Handler returns the daemon's HTTP API (see internal/api for the
// contract); the caller owns the listener.
func (d *Daemon) Handler() http.Handler { return d.routes() }

// newSessionID draws a fresh 64-bit random session identifier.
func newSessionID() (string, error) {
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("service: drawing session id: %w", err)
	}
	return hex.EncodeToString(raw[:]), nil
}

// resolveSpec validates a session spec against this daemon's mesh and
// resolves the defaulted protocol parameters, questionnaire and
// timeout budget every daemon of the session must agree on.
func (d *Daemon) resolveSpec(spec api.SessionSpec) (core.Params, *workload.Questionnaire, time.Duration, error) {
	fail := func(err error) (core.Params, *workload.Questionnaire, time.Duration, error) {
		return core.Params{}, nil, 0, err
	}
	attrs := make([]workload.Attribute, len(spec.Attributes))
	for i, a := range spec.Attributes {
		switch a.Kind {
		case api.KindEqualTo:
			attrs[i] = workload.Attribute{Name: a.Name, Kind: workload.EqualTo}
		case api.KindGreaterThan:
			attrs[i] = workload.Attribute{Name: a.Name, Kind: workload.GreaterThan}
		default:
			return fail(fmt.Errorf("service: attribute %q has unknown kind %q (want %q or %q)", a.Name, a.Kind, api.KindEqualTo, api.KindGreaterThan))
		}
	}
	q, err := workload.NewQuestionnaire(attrs)
	if err != nil {
		return fail(err)
	}
	n := len(d.cfg.Addrs) - 1 // participants
	o := spec
	if o.K == 0 {
		o.K = 3
	}
	if o.K > n {
		o.K = n
	}
	if o.D1 == 0 {
		o.D1 = 15
	}
	if o.D2 == 0 {
		o.D2 = 10
	}
	if o.H == 0 {
		o.H = 15
	}
	if o.GroupName == "" {
		o.GroupName = "secp160r1"
	}
	g, err := group.ByName(o.GroupName)
	if err != nil {
		return fail(err)
	}
	var sorter core.Sorter
	switch o.Sorter {
	case "", api.SorterUnlinkable:
		sorter = core.SorterUnlinkable
	case api.SorterSecretSharing:
		sorter = core.SorterSecretSharing
	default:
		return fail(fmt.Errorf("service: unknown sorter %q (want %q or %q)", o.Sorter, api.SorterUnlinkable, api.SorterSecretSharing))
	}
	params := core.Params{
		N: n, M: q.M(), T: q.T(),
		D1: o.D1, D2: o.D2, H: o.H, K: o.K,
		Group: g, Sorter: sorter, SkipProofs: o.SkipProofs,
		ProveDecryption: o.ProveDecryption, Workers: d.cfg.Workers,
	}
	if err := params.Validate(); err != nil {
		return fail(err)
	}
	// The daemon's configured budget is a hard ceiling: a spec may
	// shrink its session's budget, never extend it.
	timeout := d.cfg.Timeout
	if spec.TimeoutMS < 0 {
		return fail(fmt.Errorf("service: timeout_ms=%d negative", spec.TimeoutMS))
	}
	if t := time.Duration(spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	return params, q, timeout, nil
}

// register admits a new session under the cap, or reports the reason
// it cannot (wrapping errDraining / errAdmissionFull so callers can
// map the cause to the right reject code). A non-empty idempotency
// key is bound atomically with the admission.
func (d *Daemon) register(s *session) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		d.met.rejected.Inc()
		return fmt.Errorf("service: daemon %d is %w and admits no new sessions", d.cfg.Me, errDraining)
	}
	live := 0
	for _, other := range d.sessions {
		if !api.Terminal(other.snapshotState()) {
			live++
		}
	}
	if live >= d.cfg.MaxSessions {
		d.met.rejected.Inc()
		return fmt.Errorf("service: daemon %d is at its %d-session admission cap: %w", d.cfg.Me, d.cfg.MaxSessions, errAdmissionFull)
	}
	if _, dup := d.sessions[s.id]; dup {
		return fmt.Errorf("service: session %s already exists", s.id)
	}
	d.sessions[s.id] = s
	if key := s.spec.IdempotencyKey; key != "" {
		d.keys[key] = s.id
	}
	d.met.created.Inc()
	d.met.liveN++
	d.met.live.Set(float64(d.met.liveN))
	return nil
}

// unregister rolls an admission back (store write failed after
// register succeeded); the session never existed as far as clients
// are concerned.
func (d *Daemon) unregister(s *session) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.sessions[s.id]; !ok {
		return
	}
	delete(d.sessions, s.id)
	if key := s.spec.IdempotencyKey; key != "" && d.keys[key] == s.id {
		delete(d.keys, key)
	}
	d.met.liveN--
	d.met.live.Set(float64(d.met.liveN))
}

// lookupKey resolves an idempotency key to its bound session.
func (d *Daemon) lookupKey(key string) *session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.keys[key]; ok {
		return d.sessions[id]
	}
	return nil
}

// lookup finds a session by ID (nil when unknown or already purged).
func (d *Daemon) lookup(id string) *session {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sessions[id]
}

// janitor is the retention loop: finished sessions past the result TTL
// are purged, and pending sessions that never received their profile
// within the session budget are aborted so they cannot pin the
// admission cap forever.
func (d *Daemon) janitor() {
	defer d.wg.Done()
	tick := d.cfg.ResultTTL / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case now := <-t.C:
			d.sweep(now)
		}
	}
}

// sweep runs one janitor pass.
func (d *Daemon) sweep(now time.Time) {
	d.mu.Lock()
	var purge []string
	var stale []*session
	for id, s := range d.sessions {
		s.mu.Lock()
		terminal := api.Terminal(s.state)
		doneAt := s.doneAt
		pendingPastBudget := s.state == api.StatePending && !s.started && now.Sub(s.created) > s.timeout
		s.mu.Unlock()
		switch {
		case terminal && now.Sub(doneAt) > d.cfg.ResultTTL:
			purge = append(purge, id)
		case pendingPastBudget:
			stale = append(stale, s)
		}
	}
	for _, id := range purge {
		s := d.sessions[id]
		delete(d.sessions, id)
		if s != nil {
			if key := s.spec.IdempotencyKey; key != "" && d.keys[key] == id {
				delete(d.keys, key)
			}
		}
	}
	d.mu.Unlock()
	for _, id := range purge {
		// Durable mode: the purge is durable too — the table forgets the
		// session, its transport journal is deleted, and the mux stops
		// answering resume requests for it.
		if d.store != nil {
			_ = d.store.logPurge(id)
			d.mux.DropResumable(id)
			os.Remove(d.sessionJournalPath(id))
		}
	}
	for _, s := range stale {
		d.terminate(s, fmt.Errorf("service: no profile submitted within the session's %v budget", s.timeout))
	}
}

// snapshotState reads the session state under its lock.
func (s *session) snapshotState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// info builds the session's SessionInfo snapshot.
func (s *session) info(parties int) api.SessionInfo {
	return api.SessionInfo{ID: s.id, State: s.snapshotState(), Parties: parties}
}

// terminate force-aborts a session whose runner never started (or, if
// one did, cancels it and lets the runner record the abort). Used by
// the control-plane abort path and the janitor.
func (d *Daemon) terminate(s *session, cause error) {
	s.mu.Lock()
	if api.Terminal(s.state) {
		s.mu.Unlock()
		return
	}
	if s.abortReason == "" {
		s.abortReason = cause.Error()
	}
	if s.started {
		// The runner owns the terminal transition; cancelling its
		// context makes it record the abort with the stored reason.
		cancel := s.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return
	}
	s.state = api.StateAborted
	s.result = &api.ResultResponse{ID: s.id, State: api.StateAborted, Error: s.abortReason}
	res := s.result
	s.doneAt = time.Now()
	s.mu.Unlock()
	if d.store != nil && d.ctx.Err() == nil {
		_ = d.store.logDone(s.id, res)
	}
	d.sessionEnded(false)
}

// sessionEnded updates the live gauge and outcome counters once per
// session reaching a terminal state.
func (d *Daemon) sessionEnded(ok bool) {
	d.mu.Lock()
	d.met.liveN--
	d.met.live.Set(float64(d.met.liveN))
	d.mu.Unlock()
	if ok {
		d.met.done.Inc()
	} else {
		d.met.aborted.Inc()
	}
}
