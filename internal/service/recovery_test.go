package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking"
	"groupranking/internal/leakcheck"
	"groupranking/internal/service"
	"groupranking/internal/telemetry"
	"groupranking/internal/transport"
)

// The durable-daemon suite: a real 4-daemon mesh running in recovery
// mode (per-daemon journal dirs), exercising the tentpole properties —
// a daemon crash mid-session recovers to the byte-identical outcome, a
// terminal result survives a restart, creation is idempotent across
// restarts, and a draining daemon sheds typed, retryable rejections.

// durableMesh is a restartable daemon mesh: unlike testMesh it keeps
// each slot's config so a test can kill one daemon and boot its next
// life with the same flags and journal dir.
type durableMesh struct {
	cfgs    []service.Config
	daemons []*service.Daemon
	servers []*httptest.Server
	clients []*groupranking.Client
	hc      *http.Client
	tel     *groupranking.Telemetry // daemon 0's registry
}

// startDurable boots a recovery-mode mesh, one journal dir per daemon.
func startDurable(t *testing.T, size int, mutate func(i int, cfg *service.Config)) *durableMesh {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(size)
	if err != nil {
		t.Fatal(err)
	}
	m := &durableMesh{
		cfgs:    make([]service.Config, size),
		daemons: make([]*service.Daemon, size),
		servers: make([]*httptest.Server, size),
		clients: make([]*groupranking.Client, size),
		hc:      &http.Client{},
		tel:     groupranking.NewTelemetry(),
	}
	t.Cleanup(m.hc.CloseIdleConnections)
	for i := 0; i < size; i++ {
		m.cfgs[i] = service.Config{
			Addrs: addrs,
			Me:    i,
			Runtime: groupranking.Runtime{
				Timeout:  30 * time.Second,
				Recovery: &groupranking.RecoveryOptions{Dir: t.TempDir(), Grace: 15 * time.Second},
			},
		}
		if i == 0 {
			m.cfgs[i].Telemetry = m.tel
		}
		if mutate != nil {
			mutate(i, &m.cfgs[i])
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.daemons[i], errs[i] = service.NewDaemon(m.cfgs[i])
		}(i)
	}
	wg.Wait()
	t.Cleanup(m.close)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("durable daemon %d: %v", i, err)
		}
	}
	for i := range m.daemons {
		m.attach(i)
	}
	return m
}

// attach (re)binds slot i's HTTP server and client to its daemon.
func (m *durableMesh) attach(i int) {
	m.servers[i] = httptest.NewServer(m.daemons[i].Handler())
	m.clients[i] = groupranking.NewClient(m.servers[i].URL, m.hc)
}

// crash kills slot i's daemon (its sessions are parked, not aborted:
// Close cancels them without recording a terminal state in the table).
func (m *durableMesh) crash(i int) {
	m.servers[i].Close()
	m.daemons[i].Close()
}

// restart boots slot i's next life from the same config and journals.
func (m *durableMesh) restart(t *testing.T, i int) {
	t.Helper()
	d, err := service.NewDaemon(m.cfgs[i])
	if err != nil {
		t.Fatalf("restarting daemon %d: %v", i, err)
	}
	m.daemons[i] = d
	m.attach(i)
}

func (m *durableMesh) close() {
	for _, srv := range m.servers {
		if srv != nil {
			srv.Close()
		}
	}
	for _, d := range m.daemons {
		if d != nil {
			d.Close()
		}
	}
}

// TestServiceRestartRecovers is the service-tier tentpole: a
// participant daemon dies mid-session and its next life re-adopts the
// session from its journals and resumes it to the byte-identical
// outcome; afterwards the initiator daemon is restarted too and must
// still serve the terminal result and honor the creation idempotency
// key — both straight from the durable session table.
func TestServiceRestartRecovers(t *testing.T) {
	leakcheck.Check(t)
	m := startDurable(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := testSpec("durable-restart")
	spec.IdempotencyKey = "restart-key-1"
	id, err := m.clients[0].CreateSession(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 4; j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			t.Fatalf("submit to daemon %d: %v", j, err)
		}
	}
	// Crash participant daemon 1 immediately: the session is mid-flight
	// (or, in the fastest runs, just finished — either way the next
	// life must converge on the same outcome).
	m.crash(1)
	m.restart(t, 1)

	res, err := m.clients[0].WaitResult(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("initiator result after restart: %v", err)
	}
	if res.State != groupranking.SessionDone {
		t.Fatalf("session ended %q after the restart: %s", res.State, res.Error)
	}
	views := make([]*groupranking.SessionResult, 3)
	for j := 1; j < 4; j++ {
		if views[j-1], err = m.clients[j].WaitResult(ctx, id, 5*time.Millisecond); err != nil {
			t.Fatalf("participant %d result: %v", j, err)
		}
	}
	assertMatchesRank(t, res, views, inProcessRank(t, testSpec("durable-restart")))

	// The terminal result must survive a restart of the daemon serving
	// it: kill the initiator daemon AFTER completion and poll its next
	// life.
	m.crash(0)
	m.restart(t, 0)
	res2, err := m.clients[0].Result(ctx, id)
	if err != nil {
		t.Fatalf("result across initiator restart: %v", err)
	}
	if res2.State != groupranking.SessionDone || len(res2.Submissions) != len(res.Submissions) {
		t.Fatalf("restarted daemon serves %q with %d submissions, first life said %q with %d",
			res2.State, len(res2.Submissions), res.State, len(res.Submissions))
	}
	// And the idempotency key must still be bound: a retried create
	// returns the existing session instead of a duplicate.
	id2, err := m.clients[0].CreateSession(ctx, spec)
	if err != nil {
		t.Fatalf("idempotent create across restart: %v", err)
	}
	if id2 != id {
		t.Fatalf("idempotency key bound a new session %s across the restart, want %s", id2, id)
	}
}

// TestServiceRestartPendingSubmit: a session whose participant never
// got its profile before the daemon died is re-adopted pending, and
// the submission after the restart completes it normally. Also proves
// the daemon-drawn seed (empty client seed in durable mode) survives
// into the next life.
func TestServiceRestartPendingSubmit(t *testing.T) {
	leakcheck.Check(t)
	m := startDurable(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := testSpec("") // durable mode draws a seed at creation
	id, err := m.clients[0].CreateSession(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Profiles for daemons 2 and 3 only; daemon 1 dies still pending.
	for j := 2; j < 4; j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			t.Fatalf("submit to daemon %d: %v", j, err)
		}
	}
	m.crash(1)
	m.restart(t, 1)
	if err := m.clients[1].Submit(ctx, id, testProfiles[0].Values); err != nil {
		t.Fatalf("submit to daemon 1's next life: %v", err)
	}
	res, err := m.clients[0].WaitResult(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != groupranking.SessionDone {
		t.Fatalf("session ended %q: %s", res.State, res.Error)
	}
}

// TestServiceDrain checks the graceful-drain surface: a draining
// daemon rejects new work with the typed draining code and a
// Retry-After, reports non-200 draining on /healthz, and Drain lets a
// running session finish inside the budget.
func TestServiceDrain(t *testing.T) {
	leakcheck.Check(t)
	m := startDurable(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A session created before the drain, with every profile in: its
	// runners are executing when the drain begins.
	id, err := m.clients[0].CreateSession(ctx, testSpec("drain-finishes"))
	if err != nil {
		t.Fatal(err)
	}
	// An announced session whose participant 1 has NOT submitted yet.
	lateID, err := m.clients[0].CreateSession(ctx, testSpec("drain-late"))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 4; j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			t.Fatalf("submit to daemon %d: %v", j, err)
		}
	}
	for _, d := range m.daemons {
		d.BeginDrain()
	}

	// New creations shed with the typed, retryable draining code.
	_, err = m.clients[0].CreateSession(ctx, testSpec("drain-rejected"))
	if !groupranking.IsDraining(err) {
		t.Fatalf("create while draining returned %v, want the draining rejection", err)
	}
	if apiErr, ok := err.(*groupranking.APIError); !ok || apiErr.RetryAfter <= 0 {
		t.Fatalf("draining rejection carries no Retry-After: %#v", err)
	}
	// First profile submissions are new work too.
	if err := m.clients[1].Submit(ctx, lateID, testProfiles[0].Values); !groupranking.IsDraining(err) {
		t.Fatalf("submit while draining returned %v, want the draining rejection", err)
	}

	// /healthz flips to 503 "draining" with the session census.
	admin := httptest.NewServer(telemetry.AdminMux(m.tel))
	defer admin.Close()
	resp, err := m.hc.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Status  string `json:"status"`
		Service *struct {
			Draining bool           `json:"draining"`
			Epoch    int            `json:"epoch"`
			Sessions map[string]int `json:"sessions"`
		} `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || report.Status != "draining" {
		t.Fatalf("/healthz while draining: %d %q, want 503 draining", resp.StatusCode, report.Status)
	}
	if report.Service == nil || !report.Service.Draining || report.Service.Epoch != 1 {
		t.Fatalf("/healthz service block: %+v", report.Service)
	}
	total := 0
	for _, n := range report.Service.Sessions {
		total += n
	}
	if total < 2 {
		t.Fatalf("/healthz session census counts %d sessions, want at least the 2 hosted ones", total)
	}

	// The running session finishes inside the drain budget; only the
	// profile-less one remains parked (so daemon 0, which started it at
	// creation, waits out its whole budget — keep it short).
	for _, d := range m.daemons {
		if left := d.Drain(3 * time.Second); left > 1 {
			t.Fatalf("daemon %d drained with %d sessions left, want at most the pending one", d.Me(), left)
		}
	}
	res, err := m.clients[0].Result(ctx, id)
	if err != nil || res.State != groupranking.SessionDone {
		t.Fatalf("drained session: %v / %+v", err, res)
	}
}

// TestServiceIdempotentSubmit: a byte-identical resubmission is
// acknowledged again instead of conflicting; a different profile under
// the same session still conflicts.
func TestServiceIdempotentSubmit(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := m.clients[0].CreateSession(ctx, testSpec("idem-submit"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.clients[1].Submit(ctx, id, testProfiles[0].Values); err != nil {
		t.Fatal(err)
	}
	if err := m.clients[1].Submit(ctx, id, testProfiles[0].Values); err != nil {
		t.Fatalf("identical resubmission: %v, want the idempotent ack", err)
	}
	err = m.clients[1].Submit(ctx, id, []int64{99, 99})
	apiErr, ok := err.(*groupranking.APIError)
	if !ok || apiErr.Code != "conflict" {
		t.Fatalf("conflicting resubmission returned %v, want conflict", err)
	}
	// Finish the session so nothing lingers.
	for j := 2; j < 4; j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := m.clients[0].WaitResult(ctx, id, 5*time.Millisecond); err != nil || res.State != groupranking.SessionDone {
		t.Fatalf("session after resubmissions: %v / %+v", err, res)
	}
}

// TestServiceBadJournalDir: an unusable journal directory is the typed
// ErrBadJournalDir, detected before the daemon ever touches the mesh.
func TestServiceBadJournalDir(t *testing.T) {
	addrs, err := transport.FreeLoopbackAddrs(3)
	if err != nil {
		t.Fatal(err)
	}
	// A regular file where the directory should be.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"", file} {
		cfg := service.Config{
			Addrs: addrs,
			Me:    0,
			Runtime: groupranking.Runtime{
				Timeout:  5 * time.Second,
				Recovery: &groupranking.RecoveryOptions{Dir: dir},
			},
		}
		_, err := service.NewDaemon(cfg)
		if !errors.Is(err, service.ErrBadJournalDir) {
			t.Fatalf("Recovery.Dir=%q: NewDaemon returned %v, want ErrBadJournalDir", dir, err)
		}
		if !strings.Contains(err.Error(), "journal directory") {
			t.Fatalf("error does not explain itself: %v", err)
		}
	}
}
