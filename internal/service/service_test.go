package service_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"groupranking"
	"groupranking/internal/api"
	"groupranking/internal/leakcheck"
	"groupranking/internal/service"
	"groupranking/internal/transport"
)

// The service-level suite: a real in-process daemon mesh (4 daemons
// over loopback TCP, httptest API servers) driven through the public
// groupranking.Client, checking the tentpole properties — concurrent
// sessions share one mux'd connection per peer pair, a faulted
// session's abort is isolated from its siblings, seeded sessions
// reproduce the in-process Rank run exactly, and daemon shutdown leaks
// nothing.

// testMesh is one running daemon mesh plus its API clients.
type testMesh struct {
	daemons []*service.Daemon
	servers []*httptest.Server
	clients []*groupranking.Client
	tel     *groupranking.Telemetry // daemon 0's registry
}

// startMesh boots a daemon mesh with the given config tweak applied
// per slot. Daemon 0 always gets a telemetry registry so tests can
// read the mux link counters.
func startMesh(t *testing.T, size int, mutate func(i int, cfg *service.Config)) *testMesh {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(size)
	if err != nil {
		t.Fatal(err)
	}
	m := &testMesh{
		daemons: make([]*service.Daemon, size),
		servers: make([]*httptest.Server, size),
		clients: make([]*groupranking.Client, size),
		tel:     groupranking.NewTelemetry(),
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		cfg := service.Config{
			Addrs: addrs,
			Me:    i,
			Runtime: groupranking.Runtime{
				Timeout: 30 * time.Second,
			},
		}
		if i == 0 {
			cfg.Telemetry = m.tel
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		wg.Add(1)
		go func(i int, cfg service.Config) {
			defer wg.Done()
			m.daemons[i], errs[i] = service.NewDaemon(cfg)
		}(i, cfg)
	}
	wg.Wait()
	t.Cleanup(m.close)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
	}
	hc := &http.Client{}
	t.Cleanup(hc.CloseIdleConnections)
	for i, d := range m.daemons {
		m.servers[i] = httptest.NewServer(d.Handler())
		m.clients[i] = groupranking.NewClient(m.servers[i].URL, hc)
	}
	return m
}

// close shuts the mesh down (idempotent; registered as cleanup).
func (m *testMesh) close() {
	for _, srv := range m.servers {
		if srv != nil {
			srv.Close()
		}
	}
	for _, d := range m.daemons {
		if d != nil {
			d.Close()
		}
	}
}

// testSpec is the suite's standard 3-participant session.
func testSpec(seed string) groupranking.SessionSpec {
	return groupranking.SessionSpec{
		Attributes: []groupranking.ClientAttribute{
			{Name: "age", Kind: groupranking.AttrEqualTo},
			{Name: "activity", Kind: groupranking.AttrGreaterThan},
		},
		Criterion: groupranking.ClientCriterion{Values: []int64{30, 0}, Weights: []int64{2, 1}},
		K:         2, D1: 7, D2: 3, H: 5,
		GroupName: "toy-dl-256",
		Seed:      seed,
	}
}

// testProfiles are the suite's standard participant inputs.
var testProfiles = []groupranking.Profile{
	{Values: []int64{30, 50}},
	{Values: []int64{25, 60}},
	{Values: []int64{45, 90}},
}

// driveSession runs one full session through the public API and
// returns the initiator-side result plus each participant daemon's
// own view.
func driveSession(ctx context.Context, m *testMesh, spec groupranking.SessionSpec) (*groupranking.SessionResult, []*groupranking.SessionResult, error) {
	id, err := m.clients[0].CreateSession(ctx, spec)
	if err != nil {
		return nil, nil, fmt.Errorf("create: %w", err)
	}
	for j := 1; j < len(m.clients); j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			return nil, nil, fmt.Errorf("submit to daemon %d: %w", j, err)
		}
	}
	res, err := m.clients[0].WaitResult(ctx, id, 5*time.Millisecond)
	if err != nil {
		return nil, nil, fmt.Errorf("initiator result: %w", err)
	}
	views := make([]*groupranking.SessionResult, len(m.clients)-1)
	for j := 1; j < len(m.clients); j++ {
		views[j-1], err = m.clients[j].WaitResult(ctx, id, 5*time.Millisecond)
		if err != nil {
			return nil, nil, fmt.Errorf("participant %d result: %w", j, err)
		}
	}
	return res, views, nil
}

// inProcessRank runs the same session with the in-process harness.
func inProcessRank(t *testing.T, spec groupranking.SessionSpec) *groupranking.Result {
	t.Helper()
	q, err := groupranking.NewQuestionnaire([]groupranking.Attribute{
		{Name: "age", Kind: groupranking.EqualTo},
		{Name: "activity", Kind: groupranking.GreaterThan},
	})
	if err != nil {
		t.Fatal(err)
	}
	crit := groupranking.Criterion{Values: spec.Criterion.Values, Weights: spec.Criterion.Weights}
	res, err := groupranking.Rank(context.Background(), q, crit, testProfiles, groupranking.Options{
		K: spec.K, D1: spec.D1, D2: spec.D2, H: spec.H,
		GroupName: spec.GroupName,
		Seed:      spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertMatchesRank checks a service session's outcome against the
// in-process run with the same seed: identical submissions (claimed
// rank, participant, profile, recomputed gain) and identical
// per-participant ranks.
func assertMatchesRank(t *testing.T, res *groupranking.SessionResult, views []*groupranking.SessionResult, want *groupranking.Result) {
	t.Helper()
	if len(res.Submissions) != len(want.Submissions) {
		t.Fatalf("service run got %d submissions, in-process run %d", len(res.Submissions), len(want.Submissions))
	}
	for i, got := range res.Submissions {
		exp := want.Submissions[i]
		if got.Participant != exp.Participant || got.ClaimedRank != exp.ClaimedRank || got.Gain != exp.Gain.String() {
			t.Errorf("submission %d: got participant %d rank %d gain %s, want participant %d rank %d gain %v",
				i, got.Participant, got.ClaimedRank, got.Gain, exp.Participant, exp.ClaimedRank, exp.Gain)
		}
	}
	if len(res.Suspicious) != len(want.Suspicious) {
		t.Errorf("suspicious lists differ: %v vs %v", res.Suspicious, want.Suspicious)
	}
	for j, view := range views {
		if view.State != groupranking.SessionDone {
			t.Fatalf("participant %d view ended %s: %s", j+1, view.State, view.Error)
		}
		if view.Rank != want.Ranks[j] {
			t.Errorf("participant %d rank %d, in-process run says %d", j+1, view.Rank, want.Ranks[j])
		}
	}
}

// linkConnects reads mux_link_connects_total per peer from daemon 0's
// registry.
func linkConnects(t *testing.T, m *testMesh) map[string]string {
	t.Helper()
	var sb strings.Builder
	if err := m.tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, `mux_link_connects_total{peer="`); ok {
			peer, val, _ := strings.Cut(rest, `"} `)
			out[peer] = val
		}
	}
	return out
}

// TestServiceConcurrentIsolation is the tentpole acceptance test: two
// concurrent sessions share the mux'd mesh; one of them is killed by
// an injected crash and must abort cleanly at every daemon while its
// sibling completes byte-identically to the solo in-process run — and
// the whole episode uses exactly one connection per peer pair.
func TestServiceConcurrentIsolation(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, func(i int, cfg *service.Config) {})
	// Every daemon crashes session "iso-doomed"'s party 2 from round 6
	// on; the plan is keyed off the seed so no daemon needs to learn
	// the randomly drawn session ID first.
	for _, d := range m.daemons {
		d.FaultPlanner = func(_ string, spec api.SessionSpec) *transport.FaultPlan {
			if spec.Seed != "iso-doomed" {
				return nil
			}
			return &transport.FaultPlan{Rules: []transport.FaultRule{transport.CrashAt(2, 6)}}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type outcome struct {
		res   *groupranking.SessionResult
		views []*groupranking.SessionResult
		err   error
	}
	results := make(map[string]*outcome)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, seed := range []string{"iso-survivor", "iso-doomed"} {
		wg.Add(1)
		go func(seed string) {
			defer wg.Done()
			res, views, err := driveSession(ctx, m, testSpec(seed))
			mu.Lock()
			results[seed] = &outcome{res, views, err}
			mu.Unlock()
		}(seed)
	}
	wg.Wait()

	doomed := results["iso-doomed"]
	if doomed.err != nil {
		t.Fatalf("doomed session must still be pollable end to end: %v", doomed.err)
	}
	if doomed.res.State != groupranking.SessionAborted {
		t.Fatalf("doomed session ended %q, want aborted (error %q)", doomed.res.State, doomed.res.Error)
	}
	if doomed.res.Error == "" {
		t.Error("doomed session aborted without a cause")
	}
	for j, view := range doomed.views {
		if view.State != groupranking.SessionAborted {
			t.Errorf("doomed session at participant daemon %d ended %q, want aborted", j+1, view.State)
		}
	}

	survivor := results["iso-survivor"]
	if survivor.err != nil {
		t.Fatalf("survivor session: %v", survivor.err)
	}
	if survivor.res.State != groupranking.SessionDone {
		t.Fatalf("survivor session ended %q: %s", survivor.res.State, survivor.res.Error)
	}
	assertMatchesRank(t, survivor.res, survivor.views, inProcessRank(t, testSpec("iso-survivor")))

	connects := linkConnects(t, m)
	if len(connects) != 3 {
		t.Fatalf("mux_link_connects_total covers %d peers, want 3:\n%v", len(connects), connects)
	}
	for peer, v := range connects {
		if v != "1" {
			t.Errorf("daemon 0 dialed peer %s %s times; both sessions must share one connection per pair", peer, v)
		}
	}
}

// TestServiceSeededSessionMatchesRank checks the plain path: one
// seeded service session reproduces groupranking.Rank exactly.
func TestServiceSeededSessionMatchesRank(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, views, err := driveSession(ctx, m, testSpec("service-vs-rank"))
	if err != nil {
		t.Fatal(err)
	}
	if res.State != groupranking.SessionDone {
		t.Fatalf("session ended %q: %s", res.State, res.Error)
	}
	assertMatchesRank(t, res, views, inProcessRank(t, testSpec("service-vs-rank")))
	if res.TraceID == "" || res.BytesOnWire <= 0 || res.Rounds <= 0 {
		t.Errorf("result is missing transport facts: trace %q, %d bytes, %d rounds", res.TraceID, res.BytesOnWire, res.Rounds)
	}
}

// TestServiceAdmissionCap checks the admission control: a daemon at
// its cap refuses creation with the typed admission_full error, and
// admits again once the blocking session finishes.
func TestServiceAdmissionCap(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, func(i int, cfg *service.Config) {
		cfg.MaxSessions = 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// First session admitted but left profile-less: it pins the cap.
	id, err := m.clients[0].CreateSession(ctx, testSpec("cap-pinned"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.clients[0].CreateSession(ctx, testSpec("cap-rejected"))
	if !groupranking.IsAdmissionFull(err) {
		t.Fatalf("create over the cap returned %v, want the admission_full rejection", err)
	}
	// Finish the pinned session; the cap frees up.
	for j := 1; j < len(m.clients); j++ {
		if err := m.clients[j].Submit(ctx, id, testProfiles[j-1].Values); err != nil {
			t.Fatalf("submit to daemon %d: %v", j, err)
		}
	}
	if res, err := m.clients[0].WaitResult(ctx, id, 5*time.Millisecond); err != nil || res.State != groupranking.SessionDone {
		t.Fatalf("pinned session: %v / %+v", err, res)
	}
	if _, err := m.clients[0].CreateSession(ctx, testSpec("cap-after")); err != nil {
		t.Fatalf("create after the cap freed up: %v", err)
	}
}

// TestServiceResultTTL checks retention: a finished session's result
// stays pollable until the TTL, then 404s.
func TestServiceResultTTL(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, func(i int, cfg *service.Config) {
		cfg.ResultTTL = 200 * time.Millisecond
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, _, err := driveSession(ctx, m, testSpec("ttl"))
	if err != nil {
		t.Fatal(err)
	}
	if res.State != groupranking.SessionDone {
		t.Fatalf("session ended %q: %s", res.State, res.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.clients[0].Result(ctx, res.ID)
		var apiErr *groupranking.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			return // purged
		}
		if time.Now().After(deadline) {
			t.Fatalf("result still pollable long after the 200ms TTL (last: %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceWrongRoleAndValidation checks the typed HTTP error
// surface: misdirected requests and malformed specs fail loudly with
// stable codes instead of hanging a session.
func TestServiceWrongRoleAndValidation(t *testing.T) {
	leakcheck.Check(t)
	m := startMesh(t, 4, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var apiErr *groupranking.APIError
	if _, err := m.clients[1].CreateSession(ctx, testSpec("wrong-role")); !errors.As(err, &apiErr) || apiErr.Code != api.CodeWrongRole {
		t.Errorf("create at a participant daemon returned %v, want %s", err, api.CodeWrongRole)
	}
	if err := m.clients[0].Submit(ctx, "whatever", []int64{1, 2}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeWrongRole {
		t.Errorf("submit at the initiator daemon returned %v, want %s", err, api.CodeWrongRole)
	}
	bad := testSpec("bad-attr")
	bad.Attributes[1].Kind = "between"
	if _, err := m.clients[0].CreateSession(ctx, bad); !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Errorf("unknown attribute kind returned %v, want %s", err, api.CodeBadRequest)
	}
	short := testSpec("bad-criterion")
	short.Criterion.Values = []int64{30}
	if _, err := m.clients[0].CreateSession(ctx, short); !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Errorf("short criterion returned %v, want %s", err, api.CodeBadRequest)
	}
	if _, err := m.clients[0].Result(ctx, "no-such-session"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Errorf("unknown session result returned %v, want %s", err, api.CodeNotFound)
	}
	// A sane session still works on the same mesh afterwards.
	res, _, err := driveSession(ctx, m, testSpec("still-works"))
	if err != nil || res.State != groupranking.SessionDone {
		t.Fatalf("session after the error volley: %v / %+v", err, res)
	}
}
