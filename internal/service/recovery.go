package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/journal"
	"groupranking/internal/workload"
)

// The durable half of the daemon: with Config.Recovery set, every
// session journals its protocol transcript (internal/journal) and its
// lifecycle facts (store.go) under Recovery.Dir, the session mux runs
// in its reconnecting epoch'd mode, and a restarted daemon re-adopts
// everything the previous life left behind — terminal results keep
// answering GET /result, interrupted sessions re-execute from their
// journals and resume byte-identically on the wire.

// ErrBadJournalDir is the typed startup failure for an unusable
// journal directory: missing, not a directory, unwritable, or already
// locked by another live daemon for the same mesh slot. cmd/rankd
// maps it to exit code 2 — an operator mistake, not a runtime fault.
var ErrBadJournalDir = errors.New("unusable journal directory")

// validateJournalDir creates the directory if needed and proves it is
// actually writable before the daemon commits to depending on it.
func validateJournalDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("service: %w: Recovery.Dir is empty", ErrBadJournalDir)
	}
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return fmt.Errorf("service: %w: %s exists and is not a directory", ErrBadJournalDir, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: %w: creating %s: %v", ErrBadJournalDir, dir, err)
	}
	probe := filepath.Join(dir, ".rankd-probe")
	f, err := os.CreateTemp(dir, ".rankd-probe-*")
	if err != nil {
		return fmt.Errorf("service: %w: %s is not writable: %v", ErrBadJournalDir, dir, err)
	}
	probe = f.Name()
	f.Close()
	os.Remove(probe)
	return nil
}

// lockJournalDir takes this mesh slot's advisory lock inside dir, so
// two daemons cannot corrupt one slot's table by sharing it. The lock
// dies with the process (flock), so a SIGKILL'd daemon never leaves a
// stale lock behind.
func lockJournalDir(dir string, me int) (*os.File, error) {
	path := filepath.Join(dir, fmt.Sprintf("rankd-p%d.lock", me))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: %w: opening lock %s: %v", ErrBadJournalDir, path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: %w: %s is already locked by a live daemon for slot %d", ErrBadJournalDir, dir, me)
	}
	return f, nil
}

// drawSeed draws the random seed a recovering session runs under when
// the client did not pin one: deterministic re-execution from the
// journal needs SOME seed, so the initiator daemon draws it at
// creation and shares it with the mesh like any client seed.
func drawSeed() (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("service: drawing session seed: %w", err)
	}
	return "svc-" + hex.EncodeToString(raw[:]), nil
}

// sessionJournalPath names one session's transport journal for this
// daemon.
func (d *Daemon) sessionJournalPath(id string) string {
	return journal.SessionPath(d.cfg.Recovery.Dir, id, d.cfg.Me)
}

// openSessionJournal opens (or reopens) a session's transport journal,
// pins its identity, resolves the seed and begins a new journal epoch.
func (d *Daemon) openSessionJournal(s *session) (*journal.Journal, error) {
	j, err := journal.Open(d.sessionJournalPath(s.id))
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*journal.Journal, error) {
		j.Close()
		return nil, err
	}
	j.SetTelemetry(d.cfg.Telemetry)
	if err := j.PinSession([]byte(fmt.Sprintf("%s|party=%d", s.id, d.cfg.Me))); err != nil {
		return fail(err)
	}
	if _, err := j.SessionSeed(s.spec.Seed); err != nil {
		return fail(err)
	}
	if _, err := j.BeginEpoch(); err != nil {
		return fail(err)
	}
	return j, nil
}

// readopt rebuilds the daemon's session table from the store after a
// restart: terminal sessions go back to serving their results (and
// their journals back to answering peers' resume requests), non-
// terminal ones are re-registered and — once their role input is on
// hand — re-spawned to resume from their journals. Runs before the
// HTTP handler or control loop see traffic, so it needs no admission
// checks.
func (d *Daemon) readopt(stored map[string]*storedSession) {
	for id, st := range stored {
		params, q, timeout, err := d.resolveSpec(st.Spec)
		if err != nil {
			// The spec was valid when admitted; a failure here means the
			// binary or mesh shape changed under the journal dir. Drop the
			// session rather than refuse to boot.
			continue
		}
		s := &session{
			id:      id,
			spec:    st.Spec,
			params:  params,
			q:       q,
			timeout: timeout,
			created: st.Created,
			state:   api.StatePending,
		}
		if d.cfg.Me == 0 {
			s.criterion = workload.Criterion{Values: st.Spec.Criterion.Values, Weights: st.Spec.Criterion.Weights}
		} else if st.HasProfile {
			s.profile = workload.Profile{Values: st.Values}
		}
		if key := st.Spec.IdempotencyKey; key != "" {
			d.keys[key] = id
		}
		if st.Result != nil {
			// Terminal: the result answers polls until the TTL (restarted
			// fresh — a crash must not shorten a client's polling window),
			// and the journal keeps serving retransmissions to peers whose
			// halves are still catching up.
			s.state = st.Result.State
			s.result = st.Result
			s.doneAt = time.Now()
			d.sessions[id] = s
			if j, err := journal.Open(d.sessionJournalPath(id)); err == nil {
				j.Close() // the in-memory transcript is all resume serving needs
				d.mux.ServeResumable(id, j)
			}
			continue
		}
		d.sessions[id] = s
		d.met.liveN++
		d.met.live.Set(float64(d.met.liveN))
		if d.cfg.Me == 0 || st.HasProfile {
			s.started = true
			s.state = api.StateEstablishing
			d.spawn(s)
		}
	}
}
