package service

import (
	"context"
	"crypto/rand"
	"errors"
	"io"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
)

// The per-session runner: one goroutine per hosted session executing
// this daemon's role with the existing core machinery over a mux'd
// session net. Everything here mirrors the single-session CLI party
// harness (runRankParty) — same seed derivation, same handshake, same
// role entry points — so a seeded service session reproduces the
// in-process groupranking.Rank run byte for byte.

// spawn launches the session runner; the caller has already marked the
// session started (and stored its role input) under the session lock.
func (d *Daemon) spawn(s *session) {
	d.wg.Add(1)
	go d.runSession(s)
}

// sessionRNG picks the session's randomness source for this daemon's
// role, exactly as the CLI party runners do: the in-process harness's
// derivation when the spec pins a seed, crypto/rand otherwise.
func (d *Daemon) sessionRNG(seed string) io.Reader {
	if seed == "" {
		return rand.Reader
	}
	if d.cfg.Me == 0 {
		return fixedbig.NewDRBG(core.InitiatorSeed(seed))
	}
	return fixedbig.NewDRBG(core.ParticipantSeed(seed, d.cfg.Me))
}

// runSession executes one session end to end and records its terminal
// state.
func (d *Daemon) runSession(s *session) {
	defer d.wg.Done()
	start := time.Now()
	ctx, cancel := context.WithTimeout(d.ctx, s.timeout)
	defer cancel()
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()

	snet, err := d.mux.Open(s.id, s.timeout)
	if err != nil {
		d.finish(s, nil, err, start)
		return
	}
	defer snet.Close()
	var net transport.Net = snet
	if d.FaultPlanner != nil {
		if plan := d.FaultPlanner(s.id, s.spec); plan != nil {
			net = transport.NewFaultNet(net, *plan)
		}
	}
	if obs := d.cfg.Observer; obs != nil {
		ctx = obsv.WithRegistry(ctx, obs)
		ctx = obsv.WithParty(ctx, obs.Party(d.cfg.Me))
	}
	traceID, err := core.EstablishSessionCtx(ctx, s.params, d.cfg.Me, net, core.DeriveTraceID(s.spec.Seed))
	if err != nil {
		d.finish(s, nil, err, start)
		return
	}
	s.mu.Lock()
	if !api.Terminal(s.state) {
		s.state = api.StateRunning
	}
	s.mu.Unlock()

	res := &api.ResultResponse{ID: s.id, TraceID: traceID}
	rng := d.sessionRNG(s.spec.Seed)
	if d.cfg.Me == 0 {
		subs, flagged, rerr := core.RunInitiatorCtx(ctx, s.params, s.q, s.criterion, net, rng)
		err = rerr
		if err == nil {
			res.Suspicious = flagged
			res.Submissions = make([]api.Submission, len(subs))
			for i, sub := range subs {
				res.Submissions[i] = api.Submission{
					Participant: sub.Participant,
					ClaimedRank: sub.ClaimedRank,
					Values:      sub.Profile.Values,
					Gain:        sub.Gain.String(),
				}
			}
		}
	} else {
		out, rerr := core.RunParticipantCtx(ctx, s.params, d.cfg.Me, s.q, s.profile, net, rng)
		err = rerr
		if err == nil {
			res.Rank = out.Rank
		}
	}
	if err != nil {
		d.finish(s, nil, transport.EnsureAbort(err, -1, "framework"), start)
		return
	}
	stats := snet.Stats()
	res.BytesOnWire = stats.TotalBytes()
	res.Rounds = stats.DistinctRounds
	d.finish(s, res, nil, start)
}

// finish records a session's terminal state exactly once, fans an
// abort out to the peer daemons when this daemon failed first, and
// updates the outcome metrics.
func (d *Daemon) finish(s *session, res *api.ResultResponse, err error, start time.Time) {
	elapsed := time.Since(start).Milliseconds()
	s.mu.Lock()
	if api.Terminal(s.state) {
		s.mu.Unlock()
		return
	}
	if err == nil {
		s.state = api.StateDone
		res.State = api.StateDone
		res.ElapsedMS = elapsed
		s.result = res
	} else {
		s.state = api.StateAborted
		reason := err.Error()
		// A runner cancelled by a peer abort (or the janitor) dies with
		// a bare context error; the stored reason says why.
		if s.abortReason != "" && errors.Is(err, context.Canceled) {
			reason = s.abortReason
		}
		s.result = &api.ResultResponse{ID: s.id, State: api.StateAborted, Error: reason, ElapsedMS: elapsed}
	}
	s.doneAt = time.Now()
	broadcast := err != nil && s.abortReason == "" && d.ctx.Err() == nil
	s.mu.Unlock()
	if broadcast {
		d.broadcastAbort(s.id, err)
	}
	d.sessionEnded(err == nil)
}
