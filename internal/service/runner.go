package service

import (
	"context"
	"crypto/rand"
	"errors"
	"io"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/core"
	"groupranking/internal/fixedbig"
	"groupranking/internal/obsv"
	"groupranking/internal/transport"
)

// The per-session runner: one goroutine per hosted session executing
// this daemon's role with the existing core machinery over a mux'd
// session net. Everything here mirrors the single-session CLI party
// harness (runRankParty) — same seed derivation, same handshake, same
// role entry points — so a seeded service session reproduces the
// in-process groupranking.Rank run byte for byte.

// spawn launches the session runner; the caller has already marked the
// session started (and stored its role input) under the session lock.
func (d *Daemon) spawn(s *session) {
	d.wg.Add(1)
	go d.runSession(s)
}

// sessionRNG picks the session's randomness source for this daemon's
// role, exactly as the CLI party runners do: the in-process harness's
// derivation when the spec pins a seed, crypto/rand otherwise.
func (d *Daemon) sessionRNG(seed string) io.Reader {
	if seed == "" {
		return rand.Reader
	}
	if d.cfg.Me == 0 {
		return fixedbig.NewDRBG(core.InitiatorSeed(seed))
	}
	return fixedbig.NewDRBG(core.ParticipantSeed(seed, d.cfg.Me))
}

// runSession executes one session end to end and records its terminal
// state.
func (d *Daemon) runSession(s *session) {
	defer d.wg.Done()
	start := time.Now()
	ctx, cancel := context.WithTimeout(d.ctx, s.timeout)
	defer cancel()
	s.mu.Lock()
	s.cancel = cancel
	s.mu.Unlock()

	// Durable mode: open (or reopen) this session's transport journal
	// and join the mux in recovering mode — journaled receives replay
	// without the network, journaled sends are suppressed against the
	// deterministic re-execution, and the journal answers peers' resume
	// requests. The journal file handle closes with the runner, but the
	// mux keeps serving retransmissions from its in-memory transcript
	// until the janitor purges the session.
	var snet *transport.MuxSession
	var err error
	if d.cfg.Recovery != nil {
		j, jerr := d.openSessionJournal(s)
		if jerr != nil {
			d.finish(s, nil, jerr, start)
			return
		}
		defer j.Close()
		snet, err = d.mux.OpenRecovering(s.id, s.timeout, j)
	} else {
		snet, err = d.mux.Open(s.id, s.timeout)
	}
	if err != nil {
		d.finish(s, nil, err, start)
		return
	}
	defer snet.Close()
	var net transport.Net = snet
	if d.FaultPlanner != nil {
		if plan := d.FaultPlanner(s.id, s.spec); plan != nil {
			net = transport.NewFaultNet(net, *plan)
		}
	}
	if obs := d.cfg.Observer; obs != nil {
		ctx = obsv.WithRegistry(ctx, obs)
		ctx = obsv.WithParty(ctx, obs.Party(d.cfg.Me))
	}
	traceID, err := core.EstablishSessionCtx(ctx, s.params, d.cfg.Me, net, core.DeriveTraceID(s.spec.Seed))
	if err != nil {
		d.finish(s, nil, err, start)
		return
	}
	s.mu.Lock()
	if !api.Terminal(s.state) {
		s.state = api.StateRunning
	}
	s.mu.Unlock()

	res := &api.ResultResponse{ID: s.id, TraceID: traceID}
	rng := d.sessionRNG(s.spec.Seed)
	if d.cfg.Me == 0 {
		subs, flagged, rerr := core.RunInitiatorCtx(ctx, s.params, s.q, s.criterion, net, rng)
		err = rerr
		if err == nil {
			res.Suspicious = flagged
			res.Submissions = make([]api.Submission, len(subs))
			for i, sub := range subs {
				res.Submissions[i] = api.Submission{
					Participant: sub.Participant,
					ClaimedRank: sub.ClaimedRank,
					Values:      sub.Profile.Values,
					Gain:        sub.Gain.String(),
				}
			}
		}
	} else {
		out, rerr := core.RunParticipantCtx(ctx, s.params, d.cfg.Me, s.q, s.profile, net, rng)
		err = rerr
		if err == nil {
			res.Rank = out.Rank
		}
	}
	if err != nil {
		d.finish(s, nil, transport.EnsureAbort(err, -1, "framework"), start)
		return
	}
	stats := snet.Stats()
	res.BytesOnWire = stats.TotalBytes()
	res.Rounds = stats.DistinctRounds
	d.finish(s, res, nil, start)
}

// finish records a session's terminal state exactly once, fans an
// abort out to the peer daemons when this daemon failed first, and
// updates the outcome metrics. In durable mode the outcome is also
// written to the session table — EXCEPT when the abort is only this
// daemon shutting down (drain parked the session or Close cancelled
// it): the table then still holds the session non-terminal, so the
// next life re-adopts and resumes it instead of serving a spurious
// abort.
func (d *Daemon) finish(s *session, res *api.ResultResponse, err error, start time.Time) {
	elapsed := time.Since(start).Milliseconds()
	s.mu.Lock()
	if api.Terminal(s.state) {
		s.mu.Unlock()
		return
	}
	if err == nil {
		s.state = api.StateDone
		res.State = api.StateDone
		res.ElapsedMS = elapsed
		s.result = res
	} else {
		s.state = api.StateAborted
		reason := err.Error()
		// A runner cancelled by a peer abort (or the janitor) dies with
		// a bare context error; the stored reason says why.
		if s.abortReason != "" && errors.Is(err, context.Canceled) {
			reason = s.abortReason
		}
		s.result = &api.ResultResponse{ID: s.id, State: api.StateAborted, Error: reason, ElapsedMS: elapsed}
	}
	terminal := s.result
	s.doneAt = time.Now()
	broadcast := err != nil && s.abortReason == "" && d.ctx.Err() == nil
	parked := err != nil && d.ctx.Err() != nil
	s.mu.Unlock()
	if broadcast {
		d.broadcastAbort(s.id, err)
	}
	if d.store != nil && !parked {
		_ = d.store.logDone(s.id, terminal)
	}
	d.sessionEnded(err == nil)
}
