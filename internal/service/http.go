package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/workload"
)

// The submit/poll HTTP API (contract in internal/api). Every daemon
// serves the same routes; role-specific endpoints answer
// api.CodeWrongRole at the wrong daemon so a misdirected client learns
// where to go instead of timing out.

// maxBodyBytes bounds request bodies; specs and profiles are tiny.
const maxBodyBytes = 1 << 20

// routes builds the daemon's ServeMux.
func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSessions, d.handleCreate)
	mux.HandleFunc("GET "+api.PathSessions, d.handleList)
	mux.HandleFunc("GET "+api.PathSessions+"/{id}", d.handleInfo)
	mux.HandleFunc("POST "+api.PathSessions+"/{id}/submit", d.handleSubmit)
	mux.HandleFunc("GET "+api.PathSessions+"/{id}/result", d.handleResult)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes the typed JSON error body.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

// Retry-After hints for the two retryable reject codes: admission
// pressure clears as fast as sessions finish; a drain only clears once
// the restarted daemon is back.
const (
	retryAfterAdmission = 1 * time.Second
	retryAfterDraining  = 2 * time.Second
)

// writeRetryErr is writeErr plus a Retry-After header — the overload
// and drain rejects, which the client's retry helper backs off on.
func writeRetryErr(w http.ResponseWriter, status int, code string, after time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int(after/time.Second)))
	writeErr(w, status, code, format, args...)
}

// writeAdmissionErr maps a register/announce failure to its HTTP
// shape: draining and admission_full are retryable (503/429 with
// Retry-After), anything else falls through to the given default.
func writeAdmissionErr(w http.ResponseWriter, err error, defStatus int, defCode string) {
	var pr *peerRejectError
	code := ""
	switch {
	case errors.Is(err, errDraining):
		code = api.CodeDraining
	case errors.Is(err, errAdmissionFull):
		code = api.CodeAdmissionFull
	case errors.As(err, &pr):
		code = pr.code
	}
	switch code {
	case api.CodeDraining:
		writeRetryErr(w, http.StatusServiceUnavailable, api.CodeDraining, retryAfterDraining, "%v", err)
	case api.CodeAdmissionFull:
		writeRetryErr(w, http.StatusTooManyRequests, api.CodeAdmissionFull, retryAfterAdmission, "%v", err)
	default:
		writeErr(w, defStatus, defCode, "%v", err)
	}
}

// decodeBody decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleCreate is POST /v1/sessions at the initiator daemon: validate
// the spec, admit locally, fan the (criterion-scrubbed) announcement
// out to every participant daemon, and start the initiator runner once
// all of them acked admission.
func (d *Daemon) handleCreate(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Me != 0 {
		writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongRole,
			"sessions are created at the initiator daemon (mesh slot 0); this is daemon %d", d.cfg.Me)
		return
	}
	var spec api.SessionSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "decoding session spec: %v", err)
		return
	}
	params, q, timeout, err := d.resolveSpec(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if len(spec.Criterion.Values) != q.M() || len(spec.Criterion.Weights) != q.M() {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			"criterion needs %d values and %d weights, got %d and %d",
			q.M(), q.M(), len(spec.Criterion.Values), len(spec.Criterion.Weights))
		return
	}
	// An already-bound idempotency key means a retried POST: answer
	// with the session it created the first time, creating nothing.
	if spec.IdempotencyKey != "" {
		if prior := d.lookupKey(spec.IdempotencyKey); prior != nil {
			writeJSON(w, http.StatusOK, prior.info(len(d.cfg.Addrs)))
			return
		}
	}
	// Durable sessions re-execute deterministically from their journal,
	// which requires a seed; draw one for the client when it pinned
	// none (shared with the mesh like any client seed).
	if d.cfg.Recovery != nil && spec.Seed == "" {
		if spec.Seed, err = drawSeed(); err != nil {
			writeErr(w, http.StatusInternalServerError, api.CodeBadRequest, "%v", err)
			return
		}
	}
	id, err := newSessionID()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeBadRequest, "%v", err)
		return
	}
	s := &session{
		id:        id,
		spec:      spec,
		params:    params,
		q:         q,
		timeout:   timeout,
		created:   time.Now(),
		state:     api.StatePending,
		criterion: workload.Criterion{Values: spec.Criterion.Values, Weights: spec.Criterion.Weights},
	}
	if err := d.register(s); err != nil {
		writeAdmissionErr(w, err, http.StatusTooManyRequests, api.CodeAdmissionFull)
		return
	}
	if err := d.announceSession(r.Context(), s); err != nil {
		d.terminate(s, err)
		writeAdmissionErr(w, err, http.StatusBadGateway, api.CodePeerRejected)
		return
	}
	// Durably admit before the runner starts: a crash after this line
	// re-adopts and resumes the session, a crash before it loses a
	// session no client was ever told about.
	if d.store != nil {
		if err := d.store.logOpen(s.id, s.spec, s.created); err != nil {
			d.broadcastAbort(s.id, err)
			d.terminate(s, err)
			writeErr(w, http.StatusInternalServerError, api.CodeBadRequest, "%v", err)
			return
		}
	}
	s.mu.Lock()
	if api.Terminal(s.state) {
		state := s.state
		reason := s.abortReason
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already %s: %s", id, state, reason)
		return
	}
	s.started = true
	s.state = api.StateEstablishing
	s.mu.Unlock()
	d.spawn(s)
	writeJSON(w, http.StatusCreated, s.info(len(d.cfg.Addrs)))
}

// handleSubmit is POST /v1/sessions/{id}/submit at a participant
// daemon: store this participant's private profile and start its
// runner. A profile never crosses the mesh — it enters the protocol
// only through this daemon's own role execution.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Me == 0 {
		writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongRole,
			"the initiator daemon takes no profile submissions; submit to participant daemon %s's own endpoint", r.PathValue("id"))
		return
	}
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var req api.SubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "decoding submission: %v", err)
		return
	}
	if len(req.Values) != s.q.M() {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			"profile needs %d values, got %d", s.q.M(), len(req.Values))
		return
	}
	draining := d.Draining() // before s.mu: lock order is d.mu -> s.mu
	s.mu.Lock()
	if api.Terminal(s.state) {
		state, reason := s.state, s.abortReason
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already %s: %s", s.id, state, reason)
		return
	}
	if s.started {
		// A byte-identical resubmission is a client retry, not a
		// conflict: acknowledge it again (idempotent submit).
		same := slices.Equal(s.profile.Values, req.Values)
		s.mu.Unlock()
		if same {
			writeJSON(w, http.StatusAccepted, s.info(len(d.cfg.Addrs)))
			return
		}
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already has this participant's profile", s.id)
		return
	}
	// A draining daemon starts no new runners; the announced session
	// stays pending in the table and takes the profile after restart.
	if draining {
		s.mu.Unlock()
		writeRetryErr(w, http.StatusServiceUnavailable, api.CodeDraining, retryAfterDraining,
			"service: daemon %d is draining and starts no new session runners", d.cfg.Me)
		return
	}
	s.profile = workload.Profile{Values: req.Values}
	s.started = true
	s.state = api.StateEstablishing
	s.mu.Unlock()
	// Durable mode: the profile must survive a crash before the runner
	// depends on it — a restarted daemon cannot re-ask the client.
	if d.store != nil {
		if err := d.store.logSubmit(s.id, req.Values); err != nil {
			s.mu.Lock()
			s.profile = workload.Profile{}
			s.started = false
			s.state = api.StatePending
			s.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, api.CodeBadRequest, "%v", err)
			return
		}
	}
	d.spawn(s)
	writeJSON(w, http.StatusAccepted, s.info(len(d.cfg.Addrs)))
}

// handleResult is GET /v1/sessions/{id}/result: the poll half of the
// submit/poll contract. Non-terminal sessions answer with just the
// state; terminal ones with the full outcome until the TTL purges
// them.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound,
			"unknown session %q (finished sessions are purged after %v)", r.PathValue("id"), d.cfg.ResultTTL)
		return
	}
	s.mu.Lock()
	res := api.ResultResponse{ID: s.id, State: s.state}
	if s.result != nil {
		res = *s.result
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &res)
}

// handleInfo is GET /v1/sessions/{id}.
func (d *Daemon) handleInfo(w http.ResponseWriter, r *http.Request) {
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.info(len(d.cfg.Addrs)))
}

// handleList is GET /v1/sessions: every hosted session, oldest first.
func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	all := make([]*session, 0, len(d.sessions))
	for _, s := range d.sessions {
		all = append(all, s)
	}
	d.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if !all[i].created.Equal(all[j].created) {
			return all[i].created.Before(all[j].created)
		}
		return all[i].id < all[j].id
	})
	infos := make([]api.SessionInfo, len(all))
	for i, s := range all {
		infos[i] = s.info(len(d.cfg.Addrs))
	}
	writeJSON(w, http.StatusOK, infos)
}
