package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"groupranking/internal/api"
	"groupranking/internal/workload"
)

// The submit/poll HTTP API (contract in internal/api). Every daemon
// serves the same routes; role-specific endpoints answer
// api.CodeWrongRole at the wrong daemon so a misdirected client learns
// where to go instead of timing out.

// maxBodyBytes bounds request bodies; specs and profiles are tiny.
const maxBodyBytes = 1 << 20

// routes builds the daemon's ServeMux.
func (d *Daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathSessions, d.handleCreate)
	mux.HandleFunc("GET "+api.PathSessions, d.handleList)
	mux.HandleFunc("GET "+api.PathSessions+"/{id}", d.handleInfo)
	mux.HandleFunc("POST "+api.PathSessions+"/{id}/submit", d.handleSubmit)
	mux.HandleFunc("GET "+api.PathSessions+"/{id}/result", d.handleResult)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes the typed JSON error body.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleCreate is POST /v1/sessions at the initiator daemon: validate
// the spec, admit locally, fan the (criterion-scrubbed) announcement
// out to every participant daemon, and start the initiator runner once
// all of them acked admission.
func (d *Daemon) handleCreate(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Me != 0 {
		writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongRole,
			"sessions are created at the initiator daemon (mesh slot 0); this is daemon %d", d.cfg.Me)
		return
	}
	var spec api.SessionSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "decoding session spec: %v", err)
		return
	}
	params, q, timeout, err := d.resolveSpec(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	if len(spec.Criterion.Values) != q.M() || len(spec.Criterion.Weights) != q.M() {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			"criterion needs %d values and %d weights, got %d and %d",
			q.M(), q.M(), len(spec.Criterion.Values), len(spec.Criterion.Weights))
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeBadRequest, "%v", err)
		return
	}
	s := &session{
		id:        id,
		spec:      spec,
		params:    params,
		q:         q,
		timeout:   timeout,
		created:   time.Now(),
		state:     api.StatePending,
		criterion: workload.Criterion{Values: spec.Criterion.Values, Weights: spec.Criterion.Weights},
	}
	if err := d.register(s); err != nil {
		writeErr(w, http.StatusTooManyRequests, api.CodeAdmissionFull, "%v", err)
		return
	}
	if err := d.announceSession(r.Context(), s); err != nil {
		d.terminate(s, err)
		writeErr(w, http.StatusBadGateway, api.CodePeerRejected, "%v", err)
		return
	}
	s.mu.Lock()
	if api.Terminal(s.state) {
		state := s.state
		reason := s.abortReason
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already %s: %s", id, state, reason)
		return
	}
	s.started = true
	s.state = api.StateEstablishing
	s.mu.Unlock()
	d.spawn(s)
	writeJSON(w, http.StatusCreated, s.info(len(d.cfg.Addrs)))
}

// handleSubmit is POST /v1/sessions/{id}/submit at a participant
// daemon: store this participant's private profile and start its
// runner. A profile never crosses the mesh — it enters the protocol
// only through this daemon's own role execution.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if d.cfg.Me == 0 {
		writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongRole,
			"the initiator daemon takes no profile submissions; submit to participant daemon %s's own endpoint", r.PathValue("id"))
		return
	}
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var req api.SubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "decoding submission: %v", err)
		return
	}
	if len(req.Values) != s.q.M() {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			"profile needs %d values, got %d", s.q.M(), len(req.Values))
		return
	}
	s.mu.Lock()
	if api.Terminal(s.state) {
		state, reason := s.state, s.abortReason
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already %s: %s", s.id, state, reason)
		return
	}
	if s.started {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session %s already has this participant's profile", s.id)
		return
	}
	s.profile = workload.Profile{Values: req.Values}
	s.started = true
	s.state = api.StateEstablishing
	s.mu.Unlock()
	d.spawn(s)
	writeJSON(w, http.StatusAccepted, s.info(len(d.cfg.Addrs)))
}

// handleResult is GET /v1/sessions/{id}/result: the poll half of the
// submit/poll contract. Non-terminal sessions answer with just the
// state; terminal ones with the full outcome until the TTL purges
// them.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound,
			"unknown session %q (finished sessions are purged after %v)", r.PathValue("id"), d.cfg.ResultTTL)
		return
	}
	s.mu.Lock()
	res := api.ResultResponse{ID: s.id, State: s.state}
	if s.result != nil {
		res = *s.result
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &res)
}

// handleInfo is GET /v1/sessions/{id}.
func (d *Daemon) handleInfo(w http.ResponseWriter, r *http.Request) {
	s := d.lookup(r.PathValue("id"))
	if s == nil {
		writeErr(w, http.StatusNotFound, api.CodeNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.info(len(d.cfg.Addrs)))
}

// handleList is GET /v1/sessions: every hosted session, oldest first.
func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	all := make([]*session, 0, len(d.sessions))
	for _, s := range d.sessions {
		all = append(all, s)
	}
	d.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if !all[i].created.Equal(all[j].created) {
			return all[i].created.Before(all[j].created)
		}
		return all[i].id < all[j].id
	})
	infos := make([]api.SessionInfo, len(all))
	for i, s := range all {
		infos[i] = s.info(len(d.cfg.Addrs))
	}
	writeJSON(w, http.StatusOK, infos)
}
