// Package api defines the JSON wire contract of the rankd
// ranking-as-a-service HTTP API: the session spec a client posts to the
// initiator daemon, the profile submission it posts to each participant
// daemon, and the poll-able result either side serves. It is a leaf
// package — both the root groupranking.Client and internal/service
// import it, so neither has to import the other.
package api

// API paths. Session-scoped endpoints use Go 1.22 ServeMux patterns
// with an {id} segment; SubmitPath/ResultPath build the concrete URLs.
const (
	// PathSessions is the collection endpoint: POST creates a session
	// (initiator daemon only), GET lists the live and retained ones.
	PathSessions = "/v1/sessions"
)

// SessionPath returns the info URL for one session.
func SessionPath(id string) string { return PathSessions + "/" + id }

// SubmitPath returns the profile-submission URL for one session
// (participant daemons only).
func SubmitPath(id string) string { return SessionPath(id) + "/submit" }

// ResultPath returns the poll URL for one session's outcome.
func ResultPath(id string) string { return SessionPath(id) + "/result" }

// Attribute kinds, matching the framework's questionnaire model.
const (
	// KindEqualTo attributes score best near the criterion value.
	KindEqualTo = "eq"
	// KindGreaterThan attributes score best above the criterion value.
	KindGreaterThan = "gt"
)

// Attribute names one questionnaire dimension.
type Attribute struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Criterion is the initiator's private criterion/weight vectors. It
// travels only from the client to the initiator daemon; the control
// plane scrubs it before announcing a session to participant daemons.
type Criterion struct {
	Values  []int64 `json:"values"`
	Weights []int64 `json:"weights"`
}

// Sorter names for SessionSpec.Sorter.
const (
	// SorterUnlinkable is the paper's identity-unlinkable protocol
	// (default, also selected by an empty Sorter).
	SorterUnlinkable = "unlinkable"
	// SorterSecretSharing is the secret-sharing baseline.
	SorterSecretSharing = "secretsharing"
)

// SessionSpec is the body of POST /v1/sessions: everything a ranking
// session needs beyond the participants' private profiles (those arrive
// at each participant daemon separately via SubmitRequest). Zero-value
// knobs take the framework defaults (k=3, d1=15, d2=10, h=15,
// secp160r1, unlinkable sorter).
type SessionSpec struct {
	// Attributes is the published questionnaire (eq attributes first).
	Attributes []Attribute `json:"attributes"`
	// Criterion is the initiator's private input. Initiator-daemon only;
	// never forwarded to participants.
	Criterion Criterion `json:"criterion"`
	// K is the top-k cut.
	K int `json:"k,omitempty"`
	// D1, D2, H are the attribute/weight/mask bit widths.
	D1 int `json:"d1,omitempty"`
	D2 int `json:"d2,omitempty"`
	H  int `json:"h,omitempty"`
	// GroupName picks the DDH group.
	GroupName string `json:"group,omitempty"`
	// Sorter picks the phase-2 protocol ("unlinkable" default).
	Sorter string `json:"sorter,omitempty"`
	// Seed makes the whole session deterministic: like the CLI party
	// runners, every daemon derives its per-role RNG from this one
	// value, so a seeded service run reproduces the in-process Rank
	// byte for byte. Empty draws fresh randomness per daemon. The seed
	// is shared with every daemon of the mesh.
	Seed string `json:"seed,omitempty"`
	// SkipProofs disables the key-knowledge proofs (benchmark-only).
	SkipProofs bool `json:"skip_proofs,omitempty"`
	// ProveDecryption enables the decryption-integrity extension.
	ProveDecryption bool `json:"prove_decryption,omitempty"`
	// TimeoutMS overrides the daemon's per-session timeout budget for
	// this session; 0 takes the daemon default. The daemon's configured
	// budget is a hard ceiling — a spec cannot ask for more.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey, when non-empty, makes creation idempotent: a
	// retried POST carrying a key the daemon has already bound returns
	// the existing session instead of creating a duplicate. Keys are
	// persisted with the durable session table, so the guarantee holds
	// across a daemon restart.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Session states. A session is created pending, moves to establishing
// once its runner joins the mesh handshake (for a participant daemon:
// once the profile arrives), to running when the handshake agrees, and
// ends done or aborted. Finished sessions are retained for the daemon's
// result TTL, then purged (result polls return 404).
const (
	StatePending      = "pending"
	StateEstablishing = "establishing"
	StateRunning      = "running"
	StateDone         = "done"
	StateAborted      = "aborted"
)

// Terminal reports whether a state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateAborted
}

// SessionInfo is the creation/submit/list response.
type SessionInfo struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Parties is the mesh size (initiator + participants).
	Parties int `json:"parties"`
}

// SubmitRequest is the body of POST /v1/sessions/{id}/submit: one
// participant's private information vector, posted to that
// participant's own daemon (it never crosses the mesh in the clear).
type SubmitRequest struct {
	Values []int64 `json:"values"`
}

// Submission is one top-k disclosure as the initiator daemon reports it.
type Submission struct {
	// Participant is the 0-based participant index.
	Participant int `json:"participant"`
	// ClaimedRank is the rank the participant reported.
	ClaimedRank int `json:"claimed_rank"`
	// Values is the submitted information vector.
	Values []int64 `json:"values"`
	// Gain is the initiator's recomputed gain, in decimal (gains exceed
	// int64 at realistic bit widths).
	Gain string `json:"gain"`
}

// ResultResponse is the body of GET /v1/sessions/{id}/result. State is
// always set; the outcome fields are filled only once Terminal(State).
// The initiator daemon reports Submissions/Suspicious, a participant
// daemon reports its own Rank — each endpoint only ever learns (and
// serves) its own role's view.
type ResultResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error is the abort cause when State is "aborted".
	Error string `json:"error,omitempty"`
	// Submissions/Suspicious: initiator-daemon view.
	Submissions []Submission `json:"submissions,omitempty"`
	Suspicious  []int        `json:"suspicious,omitempty"`
	// Rank: participant-daemon view (1 = best; 0 until done).
	Rank int `json:"rank,omitempty"`
	// TraceID is the run-level trace identifier the session agreed on.
	TraceID string `json:"trace_id,omitempty"`
	// BytesOnWire counts the bytes this daemon sent for the session.
	BytesOnWire int64 `json:"bytes_on_wire,omitempty"`
	// Rounds is the number of distinct communication rounds.
	Rounds int `json:"rounds,omitempty"`
	// ElapsedMS is the session's wall time at this daemon.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	// Code is a stable machine-readable cause: "bad_request",
	// "not_found", "wrong_role", "conflict", "admission_full",
	// "peer_rejected", "draining".
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes. Responses carrying CodeAdmissionFull or CodeDraining
// also set a Retry-After header (seconds) — the client's retry helper
// honors it.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeWrongRole     = "wrong_role"
	CodeConflict      = "conflict"
	CodeAdmissionFull = "admission_full"
	CodePeerRejected  = "peer_rejected"
	// CodeDraining: the daemon is shutting down gracefully and admits
	// no new work; running sessions finish or are parked for restart.
	CodeDraining = "draining"
)
