// Package workload models the paper's questionnaire domain (Section
// III-A): m-dimensional attribute vectors whose first t dimensions are
// "equal to" attributes (the initiator prefers values near her criterion)
// and whose remaining m−t are "greater than" attributes (the more above
// the threshold the better), plus the gain and partial-gain arithmetic of
// Definition 1 and the dot-product vector encodings of Section V. It
// also generates random workloads for benchmarks and examples.
package workload

import (
	"fmt"
	"io"
	"math"
	"math/big"

	"groupranking/internal/fixedbig"
)

// Kind distinguishes the two attribute classes of Section III-A.
type Kind int

const (
	// EqualTo attributes are best near the criterion value (age, blood
	// pressure level in the motivating example).
	EqualTo Kind = iota + 1
	// GreaterThan attributes are best above the criterion value (number
	// of friends, annual income).
	GreaterThan
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EqualTo:
		return "equal-to"
	case GreaterThan:
		return "greater-than"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute names one questionnaire dimension.
type Attribute struct {
	Name string
	Kind Kind
}

// Questionnaire is the published attribute-name vector. The paper's
// convention (without loss of generality) is that the first T dimensions
// are EqualTo and the rest GreaterThan; NewQuestionnaire enforces it.
type Questionnaire struct {
	attrs []Attribute
	t     int // number of EqualTo attributes
}

// NewQuestionnaire validates the attribute ordering and returns the
// questionnaire.
func NewQuestionnaire(attrs []Attribute) (*Questionnaire, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("workload: questionnaire needs at least one attribute")
	}
	t := 0
	seenGreater := false
	for i, a := range attrs {
		switch a.Kind {
		case EqualTo:
			if seenGreater {
				return nil, fmt.Errorf("workload: attribute %d (%s) is equal-to after a greater-than attribute; the paper's layout requires equal-to attributes first", i, a.Name)
			}
			t++
		case GreaterThan:
			seenGreater = true
		default:
			return nil, fmt.Errorf("workload: attribute %d (%s) has invalid kind", i, a.Name)
		}
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return &Questionnaire{attrs: cp, t: t}, nil
}

// Uniform builds an unnamed questionnaire with t equal-to attributes
// followed by m−t greater-than attributes, the shape used by benchmarks.
func Uniform(m, t int) (*Questionnaire, error) {
	if t < 0 || t > m {
		return nil, fmt.Errorf("workload: t=%d outside [0, %d]", t, m)
	}
	attrs := make([]Attribute, m)
	for i := range attrs {
		if i < t {
			attrs[i] = Attribute{Name: fmt.Sprintf("eq%d", i), Kind: EqualTo}
		} else {
			attrs[i] = Attribute{Name: fmt.Sprintf("gt%d", i), Kind: GreaterThan}
		}
	}
	return NewQuestionnaire(attrs)
}

// M returns the attribute dimension.
func (q *Questionnaire) M() int { return len(q.attrs) }

// T returns the number of equal-to attributes (the paper's t).
func (q *Questionnaire) T() int { return q.t }

// Attributes returns a copy of the attribute list.
func (q *Questionnaire) Attributes() []Attribute {
	cp := make([]Attribute, len(q.attrs))
	copy(cp, q.attrs)
	return cp
}

// Criterion is the initiator's private pair (v₀, w).
type Criterion struct {
	Values  []int64 // v₀, d1-bit unsigned attribute values
	Weights []int64 // w, d2-bit unsigned weights
}

// Profile is one participant's information vector v_j.
type Profile struct {
	Values []int64
}

func (q *Questionnaire) checkDim(name string, n int) error {
	if n != q.M() {
		return fmt.Errorf("workload: %s has %d entries, questionnaire has %d attributes", name, n, q.M())
	}
	return nil
}

// Gain evaluates Definition 1:
//
//	g = Σ_{k>t} w_k·(v_k − v⁰_k) − Σ_{k≤t} w_k·(v_k − v⁰_k)².
func (q *Questionnaire) Gain(c Criterion, p Profile) (*big.Int, error) {
	if err := q.checkDim("criterion values", len(c.Values)); err != nil {
		return nil, err
	}
	if err := q.checkDim("criterion weights", len(c.Weights)); err != nil {
		return nil, err
	}
	if err := q.checkDim("profile", len(p.Values)); err != nil {
		return nil, err
	}
	g := new(big.Int)
	for k := 0; k < q.M(); k++ {
		diff := big.NewInt(p.Values[k] - c.Values[k])
		w := big.NewInt(c.Weights[k])
		if k < q.t {
			term := new(big.Int).Mul(diff, diff)
			term.Mul(term, w)
			g.Sub(g, term)
		} else {
			g.Add(g, new(big.Int).Mul(w, diff))
		}
	}
	return g, nil
}

// PartialGain evaluates the ranking-equivalent partial gain of Section
// III-A:
//
//	p = Σ_{k>t} w_k·v_k − Σ_{k≤t} (w_k·v_k² − 2·w_k·v_k·v⁰_k),
//
// which differs from Gain by a profile-independent constant, so it
// induces the same ranking while hiding part of the criterion.
func (q *Questionnaire) PartialGain(c Criterion, p Profile) (*big.Int, error) {
	if err := q.checkDim("criterion values", len(c.Values)); err != nil {
		return nil, err
	}
	if err := q.checkDim("criterion weights", len(c.Weights)); err != nil {
		return nil, err
	}
	if err := q.checkDim("profile", len(p.Values)); err != nil {
		return nil, err
	}
	out := new(big.Int)
	for k := 0; k < q.M(); k++ {
		w := big.NewInt(c.Weights[k])
		v := big.NewInt(p.Values[k])
		if k < q.t {
			sq := new(big.Int).Mul(v, v)
			sq.Mul(sq, w)
			out.Sub(out, sq)
			cross := new(big.Int).Mul(w, v)
			cross.Mul(cross, big.NewInt(2*c.Values[k]))
			out.Add(out, cross)
		} else {
			out.Add(out, new(big.Int).Mul(w, v))
		}
	}
	return out, nil
}

// GainConstant returns Gain − PartialGain, the profile-independent
// constant Σ_{k>t} w_k·v⁰_k + Σ_{k≤t} w_k·(v⁰_k)² (with the sign such
// that Gain = PartialGain − GainConstant).
func (q *Questionnaire) GainConstant(c Criterion) (*big.Int, error) {
	if err := q.checkDim("criterion values", len(c.Values)); err != nil {
		return nil, err
	}
	if err := q.checkDim("criterion weights", len(c.Weights)); err != nil {
		return nil, err
	}
	out := new(big.Int)
	for k := 0; k < q.M(); k++ {
		w := big.NewInt(c.Weights[k])
		v0 := big.NewInt(c.Values[k])
		if k < q.t {
			term := new(big.Int).Mul(v0, v0)
			out.Add(out, term.Mul(term, w))
		} else {
			out.Add(out, new(big.Int).Mul(w, v0))
		}
	}
	return out, nil
}

// ParticipantVector builds the participant's dot-product input
// [vg, ve*ve, ve] (Section V, step 2). The paper's w'_j carries a
// trailing 1 that pairs with the initiator's ρ_j; in our dot-product
// implementation that dimension is the protocol's built-in offset slot
// (Bob's appended 1 and Alice's α), so it is omitted here.
func (q *Questionnaire) ParticipantVector(p Profile) ([]*big.Int, error) {
	if err := q.checkDim("profile", len(p.Values)); err != nil {
		return nil, err
	}
	t, m := q.t, q.M()
	out := make([]*big.Int, 0, m+t)
	for k := t; k < m; k++ { // vg
		out = append(out, big.NewInt(p.Values[k]))
	}
	for k := 0; k < t; k++ { // ve * ve
		out = append(out, new(big.Int).Mul(big.NewInt(p.Values[k]), big.NewInt(p.Values[k])))
	}
	for k := 0; k < t; k++ { // ve
		out = append(out, big.NewInt(p.Values[k]))
	}
	return out, nil
}

// InitiatorVector builds v'_j = [ρ·wg, −ρ·we, 2ρ(we*ve₀), ρ_j] (Section
// V, step 3) without the final ρ_j entry, which the dot-product protocol
// carries as its offset α.
func (q *Questionnaire) InitiatorVector(c Criterion, rho *big.Int) ([]*big.Int, error) {
	if err := q.checkDim("criterion values", len(c.Values)); err != nil {
		return nil, err
	}
	if err := q.checkDim("criterion weights", len(c.Weights)); err != nil {
		return nil, err
	}
	t, m := q.t, q.M()
	out := make([]*big.Int, 0, m+t)
	for k := t; k < m; k++ { // ρ·wg
		out = append(out, new(big.Int).Mul(rho, big.NewInt(c.Weights[k])))
	}
	for k := 0; k < t; k++ { // −ρ·we
		v := new(big.Int).Mul(rho, big.NewInt(c.Weights[k]))
		out = append(out, v.Neg(v))
	}
	for k := 0; k < t; k++ { // 2ρ·(we*ve₀)
		v := new(big.Int).Mul(rho, big.NewInt(2*c.Weights[k]*c.Values[k]))
		out = append(out, v)
	}
	return out, nil
}

// PartialGainBits returns a provably sufficient signed bit width for any
// partial gain under the given dimensions: |p| ≤ m·2^{d2}·(2^{2·d1}+2^{d1+1}·2^{d1})
// < m·2^{2·d1+d2+2}, so ⌈log m⌉ + 2·d1 + d2 + 3 bits (sign included)
// always suffice. The paper states (⌈log m⌉ + d1 + 2·d2 + 2); we use the
// conservative bound for protocol correctness and keep the paper's
// formula in the analytic cost model (see EXPERIMENTS.md).
func PartialGainBits(m, d1, d2 int) int {
	return ceilLog2(m) + 2*d1 + d2 + 3
}

// BetaBits returns the bit width l of the masked partial gain
// β = ρ·p + ρ_j for an h-bit ρ.
func BetaBits(m, d1, d2, h int) int {
	return h + PartialGainBits(m, d1, d2)
}

// PaperBetaBits is the paper's published formula
// l = h + ⌈log m⌉ + d1 + 2·d2 + 2, used by the analytic cost model.
func PaperBetaBits(m, d1, d2, h int) int {
	return h + ceilLog2(m) + d1 + 2*d2 + 2
}

func ceilLog2(m int) int {
	if m <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(m))))
}

// RandomCriterion samples a criterion with d1-bit values and d2-bit
// non-zero weights.
func RandomCriterion(q *Questionnaire, d1, d2 int, rng io.Reader) (Criterion, error) {
	values, err := randomVec(q.M(), d1, rng)
	if err != nil {
		return Criterion{}, err
	}
	weights, err := randomNonZeroVec(q.M(), d2, rng)
	if err != nil {
		return Criterion{}, err
	}
	return Criterion{Values: values, Weights: weights}, nil
}

// RandomProfile samples a participant profile with d1-bit values.
func RandomProfile(q *Questionnaire, d1 int, rng io.Reader) (Profile, error) {
	values, err := randomVec(q.M(), d1, rng)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Values: values}, nil
}

// RandomProfiles samples n participant profiles.
func RandomProfiles(q *Questionnaire, n, d1 int, rng io.Reader) ([]Profile, error) {
	out := make([]Profile, n)
	for i := range out {
		p, err := RandomProfile(q, d1, rng)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func randomVec(m, bits int, rng io.Reader) ([]int64, error) {
	if bits <= 0 || bits > 62 {
		return nil, fmt.Errorf("workload: bit width %d outside (0, 62]", bits)
	}
	out := make([]int64, m)
	for i := range out {
		v, err := fixedbig.RandBits(rng, bits)
		if err != nil {
			return nil, err
		}
		out[i] = v.Int64()
	}
	return out, nil
}

func randomNonZeroVec(m, bits int, rng io.Reader) ([]int64, error) {
	out, err := randomVec(m, bits, rng)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return out, nil
}
