package workload

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"groupranking/internal/dotprod"
	"groupranking/internal/fixedbig"
)

func testQuestionnaire(t *testing.T, m, tEq int) *Questionnaire {
	t.Helper()
	q, err := Uniform(m, tEq)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQuestionnaireOrdering(t *testing.T) {
	ok := []Attribute{
		{Name: "age", Kind: EqualTo},
		{Name: "bp", Kind: EqualTo},
		{Name: "friends", Kind: GreaterThan},
	}
	q, err := NewQuestionnaire(ok)
	if err != nil {
		t.Fatal(err)
	}
	if q.M() != 3 || q.T() != 2 {
		t.Errorf("M=%d T=%d, want 3, 2", q.M(), q.T())
	}
	bad := []Attribute{
		{Name: "friends", Kind: GreaterThan},
		{Name: "age", Kind: EqualTo},
	}
	if _, err := NewQuestionnaire(bad); err == nil {
		t.Error("equal-to after greater-than accepted")
	}
	if _, err := NewQuestionnaire(nil); err == nil {
		t.Error("empty questionnaire accepted")
	}
	if _, err := NewQuestionnaire([]Attribute{{Name: "x"}}); err == nil {
		t.Error("zero-kind attribute accepted")
	}
}

func TestUniformBounds(t *testing.T) {
	if _, err := Uniform(5, 6); err == nil {
		t.Error("t > m accepted")
	}
	if _, err := Uniform(5, -1); err == nil {
		t.Error("negative t accepted")
	}
	q, err := Uniform(4, 0)
	if err != nil || q.T() != 0 {
		t.Error("all-greater-than questionnaire failed")
	}
	q, err = Uniform(4, 4)
	if err != nil || q.T() != 4 {
		t.Error("all-equal-to questionnaire failed")
	}
}

func TestGainHandComputed(t *testing.T) {
	// m=3, t=1: g = −w0(v0−c0)² + w1(v1−c1) + w2(v2−c2).
	q := testQuestionnaire(t, 3, 1)
	c := Criterion{Values: []int64{10, 5, 0}, Weights: []int64{2, 3, 4}}
	p := Profile{Values: []int64{13, 9, 7}}
	// g = −2·9 + 3·4 + 4·7 = −18 + 12 + 28 = 22.
	g, err := q.Gain(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Int64() != 22 {
		t.Errorf("gain = %s, want 22", g)
	}
}

func TestPartialGainDiffersByConstant(t *testing.T) {
	q := testQuestionnaire(t, 6, 3)
	rng := fixedbig.NewDRBG("pg-const")
	c, err := RandomCriterion(q, 10, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var prevDiff *big.Int
	for i := 0; i < 8; i++ {
		p, err := RandomProfile(q, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		g, err := q.Gain(c, p)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := q.PartialGain(c, p)
		if err != nil {
			t.Fatal(err)
		}
		diff := new(big.Int).Sub(pg, g)
		if prevDiff != nil && diff.Cmp(prevDiff) != 0 {
			t.Fatalf("partial gain offset is profile dependent: %s vs %s", diff, prevDiff)
		}
		prevDiff = diff
		// The constant must match GainConstant.
		k, err := q.GainConstant(c)
		if err != nil {
			t.Fatal(err)
		}
		if diff.Cmp(k) != 0 {
			t.Fatalf("GainConstant %s, observed offset %s", k, diff)
		}
	}
}

func TestPartialGainPreservesOrderQuick(t *testing.T) {
	q := testQuestionnaire(t, 4, 2)
	c := Criterion{Values: []int64{100, 50, 0, 0}, Weights: []int64{3, 1, 2, 5}}
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint8) bool {
		pa := Profile{Values: []int64{int64(a0), int64(a1), int64(a2), int64(a3)}}
		pb := Profile{Values: []int64{int64(b0), int64(b1), int64(b2), int64(b3)}}
		ga, err := q.Gain(c, pa)
		if err != nil {
			return false
		}
		gb, err := q.Gain(c, pb)
		if err != nil {
			return false
		}
		pga, err := q.PartialGain(c, pa)
		if err != nil {
			return false
		}
		pgb, err := q.PartialGain(c, pb)
		if err != nil {
			return false
		}
		return ga.Cmp(gb) == pga.Cmp(pgb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVectorsReproducePartialGainViaDotProduct(t *testing.T) {
	// The crucial Section V identity: running the secure dot product on
	// ParticipantVector and InitiatorVector with offset ρ_j yields
	// β = ρ·PartialGain + ρ_j.
	q := testQuestionnaire(t, 5, 2)
	rng := fixedbig.NewDRBG("vectors")
	c, err := RandomCriterion(q, 8, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RandomProfile(q, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	rho := big.NewInt(1000)
	rhoJ := big.NewInt(123)

	w, err := q.ParticipantVector(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.InitiatorVector(c, rho)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(v) {
		t.Fatalf("vector lengths differ: %d vs %d", len(w), len(v))
	}
	prime, err := rand.Prime(rng, 128)
	if err != nil {
		t.Fatal(err)
	}
	params := dotprod.DefaultSRange(prime)
	beta, err := dotprod.Compute(params, w, v, rhoJ, rng)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := q.PartialGain(c, p)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(rho, pg)
	want.Add(want, rhoJ)
	want.Mod(want, prime)
	if beta.Cmp(want) != 0 {
		t.Errorf("β = %s, want %s", beta, want)
	}
}

func TestBitWidthBounds(t *testing.T) {
	// PartialGainBits must bound every partial gain reachable with the
	// given widths.
	q := testQuestionnaire(t, 8, 4)
	rng := fixedbig.NewDRBG("widths")
	const d1, d2 = 6, 4
	bits := PartialGainBits(8, d1, d2)
	for trial := 0; trial < 50; trial++ {
		c, err := RandomCriterion(q, d1, d2, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RandomProfile(q, d1, rng)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := q.PartialGain(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if pg.BitLen() >= bits {
			t.Fatalf("partial gain %s needs %d bits, bound is %d", pg, pg.BitLen()+1, bits)
		}
	}
	if BetaBits(8, d1, d2, 10) != 10+bits {
		t.Error("BetaBits must be h + PartialGainBits")
	}
	// The paper's formula for the defaults of Section VII.
	if got := PaperBetaBits(10, 15, 10, 15); got != 15+4+15+20+2 {
		t.Errorf("PaperBetaBits = %d, want 56", got)
	}
}

func TestDimensionMismatches(t *testing.T) {
	q := testQuestionnaire(t, 3, 1)
	good := Criterion{Values: []int64{1, 2, 3}, Weights: []int64{1, 1, 1}}
	short := Profile{Values: []int64{1}}
	if _, err := q.Gain(good, short); err == nil {
		t.Error("short profile accepted by Gain")
	}
	if _, err := q.PartialGain(good, short); err == nil {
		t.Error("short profile accepted by PartialGain")
	}
	if _, err := q.ParticipantVector(short); err == nil {
		t.Error("short profile accepted by ParticipantVector")
	}
	badC := Criterion{Values: []int64{1}, Weights: []int64{1, 1, 1}}
	if _, err := q.InitiatorVector(badC, big.NewInt(1)); err == nil {
		t.Error("short criterion accepted by InitiatorVector")
	}
	if _, err := q.GainConstant(badC); err == nil {
		t.Error("short criterion accepted by GainConstant")
	}
}

func TestRandomGenerators(t *testing.T) {
	q := testQuestionnaire(t, 10, 5)
	rng := fixedbig.NewDRBG("gens")
	c, err := RandomCriterion(q, 15, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range c.Weights {
		if w <= 0 || w >= 1<<10 {
			t.Errorf("weight %d = %d outside (0, 2^10)", i, w)
		}
	}
	for i, v := range c.Values {
		if v < 0 || v >= 1<<15 {
			t.Errorf("value %d = %d outside [0, 2^15)", i, v)
		}
	}
	ps, err := RandomProfiles(q, 7, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 7 {
		t.Fatalf("got %d profiles", len(ps))
	}
	if _, err := RandomProfile(q, 0, rng); err == nil {
		t.Error("zero bit width accepted")
	}
	if _, err := RandomProfile(q, 63, rng); err == nil {
		t.Error("oversized bit width accepted")
	}
}

func TestKindString(t *testing.T) {
	if EqualTo.String() != "equal-to" || GreaterThan.String() != "greater-than" {
		t.Error("Kind.String labels wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still print")
	}
}
