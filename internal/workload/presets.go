package workload

import (
	"fmt"
	"io"
	"sort"
)

// Preset is a named, self-contained scenario: a questionnaire with
// domain semantics, realistic value ranges per attribute, and a
// plausible initiator criterion. Presets back the examples, the
// grouprank CLI and scenario-driven benchmarks with workloads that look
// like the paper's motivating applications instead of uniform noise.
type Preset struct {
	// Name identifies the preset (see Presets for the registry).
	Name string
	// Description says what the scenario models.
	Description string

	questionnaire *Questionnaire
	criterion     Criterion
	// ranges bounds each attribute's participant values [min, max].
	ranges [][2]int64
	// d1, d2 are the bit widths covering the ranges and weights.
	d1, d2 int
}

// Questionnaire returns the preset's attribute layout.
func (p *Preset) Questionnaire() *Questionnaire { return p.questionnaire }

// Criterion returns the canonical initiator criterion of the scenario.
func (p *Preset) Criterion() Criterion {
	return Criterion{
		Values:  append([]int64(nil), p.criterion.Values...),
		Weights: append([]int64(nil), p.criterion.Weights...),
	}
}

// Bits returns the value/weight bit widths (d1, d2) that cover the
// preset's ranges.
func (p *Preset) Bits() (d1, d2 int) { return p.d1, p.d2 }

// SampleProfiles draws n participant profiles with attribute values
// uniform within each attribute's realistic range.
func (p *Preset) SampleProfiles(n int, rng io.Reader) ([]Profile, error) {
	out := make([]Profile, n)
	for i := range out {
		vals := make([]int64, len(p.ranges))
		for k, r := range p.ranges {
			span := r[1] - r[0] + 1
			v, err := randomVec(1, 62, rng)
			if err != nil {
				return nil, err
			}
			vals[k] = r[0] + ((v[0]%span + span) % span)
		}
		out[i] = Profile{Values: vals}
	}
	return out, nil
}

// mustPreset builds a preset, panicking on construction errors (the
// definitions are compile-time constants validated by tests).
func mustPreset(name, desc string, attrs []Attribute, crit Criterion, ranges [][2]int64, d1, d2 int) *Preset {
	q, err := NewQuestionnaire(attrs)
	if err != nil {
		panic(fmt.Sprintf("workload: invalid preset %s: %v", name, err))
	}
	if len(crit.Values) != q.M() || len(crit.Weights) != q.M() || len(ranges) != q.M() {
		panic(fmt.Sprintf("workload: preset %s has inconsistent dimensions", name))
	}
	return &Preset{
		Name: name, Description: desc,
		questionnaire: q, criterion: crit, ranges: ranges, d1: d1, d2: d2,
	}
}

// Presets returns the registry of built-in scenarios, keyed by name.
func Presets() map[string]*Preset {
	return map[string]*Preset{
		"marketing": mustPreset(
			"marketing",
			"the paper's motivating online-marketing campaign: a health product trial targeting a demographic profile with marketing reach",
			[]Attribute{
				{Name: "age", Kind: EqualTo},
				{Name: "blood_pressure", Kind: EqualTo},
				{Name: "friends", Kind: GreaterThan},
				{Name: "annual_income_k", Kind: GreaterThan},
			},
			Criterion{Values: []int64{45, 130, 0, 0}, Weights: []int64{8, 4, 3, 1}},
			[][2]int64{{18, 90}, {90, 180}, {0, 1000}, {10, 250}},
			10, 4,
		),
		"matchmaking": mustPreset(
			"matchmaking",
			"interest matching over sensitive positions: a match is someone close to the seeker on every 0..100 scale",
			[]Attribute{
				{Name: "political_leaning", Kind: EqualTo},
				{Name: "religiosity", Kind: EqualTo},
				{Name: "outdoor_lifestyle", Kind: EqualTo},
				{Name: "night_owl", Kind: EqualTo},
			},
			Criterion{Values: []int64{35, 20, 80, 60}, Weights: []int64{5, 2, 4, 1}},
			[][2]int64{{0, 100}, {0, 100}, {0, 100}, {0, 100}},
			7, 3,
		),
		"recruiting": mustPreset(
			"recruiting",
			"business-network recruiting with a health-profile requirement plus experience and certification count",
			[]Attribute{
				{Name: "fitness_score", Kind: EqualTo},
				{Name: "resting_heart_rate", Kind: EqualTo},
				{Name: "years_experience", Kind: GreaterThan},
				{Name: "certifications", Kind: GreaterThan},
			},
			Criterion{Values: []int64{75, 60, 0, 0}, Weights: []int64{6, 3, 5, 2}},
			[][2]int64{{30, 100}, {40, 100}, {0, 40}, {0, 12}},
			7, 3,
		),
	}
}

// PresetNames lists the registry keys in stable order.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PresetByName resolves a preset or reports the available names.
func PresetByName(name string) (*Preset, error) {
	p, ok := Presets()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown preset %q (available: %v)", name, PresetNames())
	}
	return p, nil
}
