package workload

import (
	"testing"

	"groupranking/internal/fixedbig"
)

func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if len(names) != 3 {
		t.Fatalf("expected 3 presets, got %v", names)
	}
	for _, name := range names {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatalf("PresetByName(%q): %v", name, err)
		}
		if p.Name != name || p.Description == "" {
			t.Errorf("preset %q metadata incomplete", name)
		}
		if p.Questionnaire().M() < 2 {
			t.Errorf("preset %q too small", name)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetCriterionConsistent(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		crit := p.Criterion()
		q := p.Questionnaire()
		if len(crit.Values) != q.M() || len(crit.Weights) != q.M() {
			t.Errorf("preset %q criterion dimensions wrong", name)
		}
		d1, d2 := p.Bits()
		for k, v := range crit.Values {
			if v < 0 || v >= 1<<uint(d1) {
				t.Errorf("preset %q criterion value %d (%d) outside d1=%d bits", name, k, v, d1)
			}
		}
		for k, w := range crit.Weights {
			if w <= 0 || w >= 1<<uint(d2) {
				t.Errorf("preset %q weight %d (%d) outside d2=%d bits", name, k, w, d2)
			}
		}
		// Criterion must be usable: the criterion itself scores as a
		// profile (a perfect equal-to match).
		if _, err := q.Gain(crit, Profile{Values: crit.Values}); err != nil {
			t.Errorf("preset %q criterion not gain-evaluable: %v", name, err)
		}
	}
}

func TestPresetSampling(t *testing.T) {
	rng := fixedbig.NewDRBG("presets")
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles, err := p.SampleProfiles(20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(profiles) != 20 {
			t.Fatalf("preset %q: got %d profiles", name, len(profiles))
		}
		d1, _ := p.Bits()
		q := p.Questionnaire()
		distinct := map[int64]bool{}
		for _, prof := range profiles {
			if len(prof.Values) != q.M() {
				t.Fatalf("preset %q: profile dimension %d", name, len(prof.Values))
			}
			for k, v := range prof.Values {
				if v < p.ranges[k][0] || v > p.ranges[k][1] {
					t.Errorf("preset %q: attribute %d value %d outside range %v", name, k, v, p.ranges[k])
				}
				if v < 0 || v >= 1<<uint(d1) {
					t.Errorf("preset %q: value %d exceeds d1=%d bits", name, v, d1)
				}
			}
			distinct[prof.Values[0]] = true
			// Sampled profiles must be gain-evaluable against the
			// canonical criterion.
			if _, err := q.Gain(p.Criterion(), prof); err != nil {
				t.Fatalf("preset %q: profile not evaluable: %v", name, err)
			}
		}
		if len(distinct) < 3 {
			t.Errorf("preset %q: sampling looks degenerate (%d distinct first attributes)", name, len(distinct))
		}
	}
}

func TestPresetCriterionCopyIsolated(t *testing.T) {
	p, err := PresetByName("marketing")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Criterion()
	c.Values[0] = -999
	if p.Criterion().Values[0] == -999 {
		t.Error("Criterion() must return a copy")
	}
}
