package ssmpc

import (
	"fmt"
	"math/big"

	"groupranking/internal/fixedbig"
)

// RandomElements produces k shared field elements unknown to any
// coalition of up to Degree parties: every party deals a random
// contribution and the results are summed. One communication round.
func (e *Engine) RandomElements(k int) ([]Share, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ssmpc: RandomElements needs k > 0, got %d", k)
	}
	round := e.nextRound()

	// Deal my contributions.
	perParty := make([][]*big.Int, e.cfg.N)
	for j := range perParty {
		perParty[j] = make([]*big.Int, k)
	}
	for i := 0; i < k; i++ {
		r, err := fixedbig.RandInt(e.rng, e.cfg.P)
		if err != nil {
			return nil, err
		}
		pieces, err := splitSecret(e, r)
		if err != nil {
			return nil, err
		}
		for j := range pieces {
			perParty[j][i] = pieces[j]
		}
	}
	for j := 0; j < e.cfg.N; j++ {
		if j == e.me {
			continue
		}
		if err := e.fab.Send(round, e.me, j, k*e.fieldBytes(), perParty[j]); err != nil {
			return nil, err
		}
	}
	all, err := e.gather(round)
	if err != nil {
		return nil, err
	}
	out := make([]Share, k)
	for i := 0; i < k; i++ {
		acc := new(big.Int).Set(perParty[e.me][i])
		for j := 0; j < e.cfg.N; j++ {
			if j == e.me {
				continue
			}
			ys, ok := all[j].([]*big.Int)
			if !ok || len(ys) != k {
				return nil, fmt.Errorf("ssmpc: malformed random batch from party %d", j)
			}
			acc.Add(acc, ys[i])
		}
		out[i] = Share{y: acc.Mod(acc, e.cfg.P)}
	}
	return out, nil
}

// RandomBits produces k uniformly random shared bits via the classic
// square-and-open construction: draw shared r, open r², reject zero,
// and set b = (r/√(r²) + 1)/2, which is a uniform bit because r/√(r²)
// is a uniform sign. Constant number of rounds per retry batch.
func (e *Engine) RandomBits(k int) ([]Share, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ssmpc: RandomBits needs k > 0, got %d", k)
	}
	out := make([]Share, 0, k)
	inv2 := new(big.Int).ModInverse(big.NewInt(2), e.cfg.P)
	need := k
	for attempts := 0; need > 0; attempts++ {
		if attempts > 64 {
			return nil, fmt.Errorf("ssmpc: RandomBits failed to converge")
		}
		rs, err := e.RandomElements(need)
		if err != nil {
			return nil, err
		}
		sqs, err := e.MulBatch(rs, rs)
		if err != nil {
			return nil, err
		}
		opened, err := e.OpenBatch(sqs)
		if err != nil {
			return nil, err
		}
		for i, v := range opened {
			if v.Sign() == 0 {
				continue // r was zero (probability 1/p); retry that slot
			}
			w := new(big.Int).ModSqrt(v, e.cfg.P)
			if w == nil {
				return nil, fmt.Errorf("ssmpc: opened square %s has no root", v)
			}
			// Canonicalise the root so every party picks the same sign.
			other := new(big.Int).Sub(e.cfg.P, w)
			if w.Cmp(other) > 0 {
				w = other
			}
			wInv := new(big.Int).ModInverse(w, e.cfg.P)
			// b = (r·w⁻¹ + 1)/2.
			b := e.Scale(rs[i], wInv)
			b = e.AddConst(b, big.NewInt(1))
			b = e.Scale(b, inv2)
			out = append(out, b)
		}
		need = k - len(out)
	}
	return out, nil
}
